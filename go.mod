module ahq

go 1.22
