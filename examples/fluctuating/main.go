// Command fluctuating demonstrates the controller under a load swing (the
// paper's Fig. 13 scenario, shortened): Xapian's load steps 10% -> 70% ->
// 90% -> 20% while ARQ adapts the isolated/shared split. It prints a
// timeline of the entropy signal and the allocation so the adaptation is
// visible epoch by epoch.
//
//	go run ./examples/fluctuating
package main

import (
	"fmt"
	"log"

	"ahq/internal/machine"
	"ahq/internal/sim"
	"ahq/internal/trace"
	"ahq/internal/workload"

	"ahq"
)

func main() {
	profile, err := trace.NewSteps(
		trace.Step{StartMs: 0, Frac: 0.10},
		trace.Step{StartMs: 20_000, Frac: 0.70},
		trace.Step{StartMs: 40_000, Frac: 0.90},
		trace.Step{StartMs: 60_000, Frac: 0.20},
	)
	if err != nil {
		log.Fatal(err)
	}

	xapian := workload.MustLC("xapian")
	engine, err := sim.New(sim.Config{
		Spec: machine.DefaultSpec(),
		Seed: 11,
		Apps: []sim.AppConfig{
			{LC: &xapian, Load: profile},
			ahq.LCAppAt("moses", 0.20),
			ahq.LCAppAt("img-dnn", 0.20),
			ahq.BEApp("stream"),
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := ahq.Run(engine, ahq.NewARQ(), ahq.RunOptions{
		WarmupMs:       -1, // measure from the start
		DurationMs:     80_000,
		RecordTimeline: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("t(s)  load  E_LC   E_BE   E_S    allocation")
	for i, rec := range res.Timeline {
		if i%8 != 0 { // print every 4 s
			continue
		}
		fmt.Printf("%4.0f  %3.0f%%  %.3f  %.3f  %.3f  %s\n",
			rec.TimeMs/1000, 100*profile.At(rec.TimeMs),
			rec.ELC, rec.EBE, rec.ES, rec.Allocation)
	}
	fmt.Printf("\nviolation epochs: %d of %d; adjustments: %d\n",
		res.TotalViolationEpochs, res.Epochs, res.Adjustments)
}
