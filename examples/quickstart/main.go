// Command quickstart is the smallest end-to-end use of the Ah-Q library:
// collocate three latency-critical Tailbench services with one best-effort
// PARSEC application on a simulated 10-core node, run the Unmanaged baseline
// and the ARQ strategy, and compare their system entropy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sched/arq"
	"ahq/internal/sched/static"
	"ahq/internal/sim"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

func main() {
	spec := machine.DefaultSpec()

	strategies := []sched.Strategy{static.Unmanaged{}, arq.Default()}
	for _, strat := range strategies {
		engine, err := sim.New(sim.Config{
			Spec: spec,
			Seed: 42,
			Apps: []sim.AppConfig{
				lc("xapian", 0.20),
				lc("moses", 0.20),
				lc("img-dnn", 0.20),
				{BE: ptrBE(workload.MustBE("fluidanimate"))},
			},
		})
		if err != nil {
			log.Fatalf("building engine: %v", err)
		}
		res, err := core.Run(engine, strat, core.Options{DurationMs: 20_000})
		if err != nil {
			log.Fatalf("running %s: %v", strat.Name(), err)
		}

		fmt.Printf("=== %s ===\n", strat.Name())
		fmt.Printf("E_LC=%.3f  E_BE=%.3f  E_S=%.3f  yield=%.0f%%\n",
			res.MeanELC, res.MeanEBE, res.MeanES, 100*res.Yield)
		for _, a := range res.Apps {
			if a.Spec.Class == workload.LC {
				fmt.Printf("  %-10s p95=%7.2f ms (target %6.2f ms, ideal %5.2f ms) violations=%d/%d epochs\n",
					a.Spec.Name, a.MeanP95Ms, a.Spec.QoSTargetMs, a.Spec.IdealP95Ms,
					a.ViolationEpochs, res.Epochs)
			} else {
				fmt.Printf("  %-10s IPC=%.2f (solo %.2f)\n", a.Spec.Name, a.MeanIPC, a.Spec.SoloIPC)
			}
		}
		fmt.Printf("  final allocation: %s\n\n", res.FinalAllocation)
	}
}

// lc builds an LC application at a constant fraction of its max load.
func lc(name string, load float64) sim.AppConfig {
	app := workload.MustLC(name)
	return sim.AppConfig{LC: &app, Load: trace.Constant(load)}
}

func ptrBE(b workload.BEApp) *workload.BEApp { return &b }
