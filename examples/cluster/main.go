// Command cluster demonstrates the datacenter-level reading of system
// entropy: eight applications spread over two simulated nodes, each node
// managed by its own ARQ controller, with E_S aggregated over the whole
// fleet. Three placements are compared — the same metric that ranks
// schedulers ranks placements.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"ahq/internal/cluster"
	"ahq/internal/sched"

	"ahq"
)

func main() {
	apps := []ahq.AppConfig{
		ahq.LCAppAt("xapian", 0.50),
		ahq.LCAppAt("moses", 0.20),
		ahq.LCAppAt("img-dnn", 0.30),
		ahq.LCAppAt("silo", 0.20),
		ahq.LCAppAt("masstree", 0.20),
		ahq.BEApp("fluidanimate"),
		ahq.BEApp("stream"),
	}

	placements := map[string][][]ahq.AppConfig{}
	var err error
	if placements["round-robin"], err = cluster.RoundRobin(apps, 2); err != nil {
		log.Fatal(err)
	}
	if placements["balanced"], err = ahq.BalancedPlacement(apps, 2); err != nil {
		log.Fatal(err)
	}
	if placements["packed"], err = cluster.Pack(apps, 2, 10); err != nil {
		log.Fatal(err)
	}

	fmt.Println("placement    node sizes  global E_LC  global E_BE  global E_S  yield")
	for _, name := range []string{"packed", "round-robin", "balanced"} {
		res, err := ahq.RunCluster(ahq.ClusterConfig{
			Spec:        ahq.DefaultSpec(),
			Seed:        21,
			NewStrategy: func(int) sched.Strategy { return ahq.NewARQ() },
			Placement:   placements[name],
		}, ahq.RunOptions{WarmupMs: 4_000, DurationMs: 12_000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %d+%d         %.3f        %.3f        %.3f       %.0f%%\n",
			name, len(placements[name][0]), len(placements[name][1]),
			res.GlobalELC, res.GlobalEBE, res.GlobalES, 100*res.GlobalYield)
	}
	fmt.Println("\nlower E_S is a better overall user experience (paper Eq. 7, RI=0.8)")
}
