// Command equivalence demonstrates the "resource equivalence" concept of
// the paper's Section II-C: how many cores a better scheduling strategy is
// worth. It measures E_S for Unmanaged and ARQ across core counts, inverts
// the two curves at equal entropy, and prints the saving — the paper's
// Fig. 3(a) in miniature.
//
//	go run ./examples/equivalence
package main

import (
	"fmt"
	"log"

	"ahq"
)

func main() {
	strategies := map[string]func() ahq.Strategy{
		"unmanaged": ahq.NewUnmanaged,
		"arq":       ahq.NewARQ,
	}

	curves := map[string]*ahq.EquivalenceCurve{}
	fmt.Println("cores  unmanaged E_S  arq E_S")
	points := map[string][]ahq.EquivalencePoint{}
	for cores := 4; cores <= 10; cores++ {
		row := fmt.Sprintf("%5d", cores)
		for _, name := range []string{"unmanaged", "arq"} {
			spec := ahq.DefaultSpec()
			spec.Cores = cores
			engine, err := ahq.NewEngine(ahq.EngineConfig{
				Spec: spec,
				Seed: 3,
				Apps: []ahq.AppConfig{
					ahq.LCAppAt("xapian", 0.20),
					ahq.LCAppAt("moses", 0.20),
					ahq.LCAppAt("img-dnn", 0.20),
					ahq.BEApp("fluidanimate"),
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := ahq.Run(engine, strategies[name](), ahq.RunOptions{DurationMs: 15_000})
			if err != nil {
				log.Fatal(err)
			}
			points[name] = append(points[name], ahq.EquivalencePoint{
				Resource: float64(cores), ES: res.MeanES,
			})
			row += fmt.Sprintf("  %12.3f", res.MeanES)
		}
		fmt.Println(row)
	}
	for name, pts := range points {
		curve, err := ahq.NewEquivalenceCurve(pts)
		if err != nil {
			log.Fatal(err)
		}
		curves[name] = curve
	}

	fmt.Println()
	for _, target := range []float64{0.25, 0.40} {
		saved, err := ahq.ResourceEquivalence(curves["unmanaged"], curves["arq"], target)
		if err != nil {
			fmt.Printf("E_S=%.2f: %v\n", target, err)
			continue
		}
		fmt.Printf("at E_S=%.2f, ARQ is worth %.2f extra cores over Unmanaged\n", target, saved)
	}
	fmt.Println("(paper Fig. 3(a): ~2.0 cores at E_S=0.25, ~1.83 at E_S=0.40)")
}
