// Command whatif demonstrates the closed-form predictor: before committing
// resources, ask analytically how an application's p95 responds to cores,
// cache ways and bandwidth, and how much load each share can sustain —
// the screening step a planner runs before simulating (or deploying).
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"

	"ahq/internal/predict"
	"ahq/internal/workload"
)

func main() {
	app := workload.MustLC("xapian")
	fmt.Printf("what-if analysis for %s (target %.2f ms, max load %.0f QPS)\n\n",
		app.Name, app.QoSTargetMs, app.MaxLoadQPS)

	fmt.Println("predicted p95 (ms) at 50% load:")
	fmt.Println("cores\\ways      4       8      12      20")
	for _, cores := range []float64{2, 4, 6, 10} {
		fmt.Printf("%5.0f      ", cores)
		for _, ways := range []float64{4, 8, 12, 20} {
			sh := predict.Share{Cores: cores, Ways: ways, BWSatisfaction: 1}
			p95, err := predict.P95(app, sh, 0.50)
			if err != nil {
				fmt.Printf("%7s ", "sat")
				continue
			}
			marker := " "
			if p95 > app.QoSTargetMs {
				marker = "!"
			}
			fmt.Printf("%6.2f%s ", p95, marker)
		}
		fmt.Println()
	}
	fmt.Println("(! = predicted QoS violation; sat = share saturates)")

	fmt.Println("\nmax sustainable load per share:")
	for _, sh := range []predict.Share{
		{Cores: 10, Ways: 20, BWSatisfaction: 1},
		{Cores: 4, Ways: 8, BWSatisfaction: 1},
		{Cores: 4, Ways: 8, BWSatisfaction: 0.7},
		{Cores: 2, Ways: 4, BWSatisfaction: 0.7},
	} {
		max, err := predict.MaxLoad(app, sh)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.0f cores, %4.0f ways, bw %.0f%%  ->  %3.0f%% of max load (%.0f QPS)\n",
			sh.Cores, sh.Ways, 100*orOne(sh.BWSatisfaction), 100*max, max*app.MaxLoadQPS)
	}
}

func orOne(v float64) float64 {
	if v <= 0 || v > 1 {
		return 1
	}
	return v
}
