// Command colocation reproduces the heart of the paper's evaluation at
// example scale: a high-load latency-critical service (Xapian at 70%)
// collocated with two mid-load services and the STREAM bandwidth hog, run
// under all five strategies. It prints the per-strategy entropy breakdown
// and per-application outcomes, showing why partial sharing (ARQ) beats
// both pure sharing (Unmanaged, LC-first) and strict isolation (PARTIES,
// CLITE).
//
//	go run ./examples/colocation
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"ahq/internal/workload"

	"ahq"
)

func main() {
	strategies := []ahq.Strategy{
		ahq.NewUnmanaged(),
		ahq.NewLCFirst(),
		ahq.NewPARTIES(),
		ahq.NewCLITE(7),
		ahq.NewARQ(),
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tE_LC\tE_BE\tE_S\tyield\txapian p95\tstream IPC\tadjustments")
	for _, strat := range strategies {
		engine, err := ahq.NewEngine(ahq.EngineConfig{
			Spec: ahq.DefaultSpec(),
			Seed: 7,
			Apps: []ahq.AppConfig{
				ahq.LCAppAt("xapian", 0.70),
				ahq.LCAppAt("moses", 0.20),
				ahq.LCAppAt("img-dnn", 0.20),
				ahq.BEApp("stream"),
			},
		})
		if err != nil {
			log.Fatalf("building engine: %v", err)
		}
		res, err := ahq.Run(engine, strat, ahq.RunOptions{DurationMs: 25_000})
		if err != nil {
			log.Fatalf("running %s: %v", strat.Name(), err)
		}
		var xapianP95, streamIPC float64
		for _, a := range res.Apps {
			switch {
			case a.Spec.Name == "xapian":
				xapianP95 = a.MeanP95Ms
			case a.Spec.Name == "stream" && a.Spec.Class == workload.BE:
				streamIPC = a.MeanIPC
			}
		}
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.0f%%\t%.2f ms\t%.2f\t%d\n",
			strat.Name(), res.MeanELC, res.MeanEBE, res.MeanES, 100*res.Yield,
			xapianP95, streamIPC, res.Adjustments)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nxapian QoS target: 4.22 ms; lower E_S is better (paper Eq. 7, RI=0.8)")
}
