package ahq_test

import (
	"fmt"

	"ahq"
)

// Example_entropy computes the system entropy from measurements taken on
// any system — here the Unmanaged 6-core row of the paper's Table II.
func Example_entropy() {
	lc := []ahq.LCSample{
		{Name: "xapian", IdealMs: 2.77, MeasuredMs: 23.99, TargetMs: 4.22},
		{Name: "moses", IdealMs: 2.80, MeasuredMs: 16.54, TargetMs: 10.53},
		{Name: "img-dnn", IdealMs: 1.41, MeasuredMs: 14.35, TargetMs: 3.98},
	}
	elc, err := ahq.ELC(lc)
	if err != nil {
		panic(err)
	}
	yield, err := ahq.Yield(lc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("E_LC = %.2f, yield = %.0f%%\n", elc, 100*yield)
	// Output:
	// E_LC = 0.64, yield = 0%
}

// Example_interferenceQuantities shows the per-application quantities that
// give ARQ its name: tolerance A, suffered interference R, remaining
// tolerance ReT and intolerable interference Q.
func Example_interferenceQuantities() {
	s := ahq.LCSample{Name: "moses", IdealMs: 2.80, MeasuredMs: 6.78, TargetMs: 10.53}
	fmt.Printf("A = %.2f, R = %.2f, ReT = %.2f, Q = %.2f, satisfied = %v\n",
		s.Tolerance(), s.Interference(), s.RemainingTolerance(), s.Intolerable(), s.Satisfied())
	// Output:
	// A = 0.73, R = 0.59, ReT = 0.36, Q = 0.00, satisfied = true
}

// ExampleRun collocates two Tailbench services with STREAM on the paper's
// node and drives them under the ARQ strategy.
func ExampleRun() {
	engine, err := ahq.NewEngine(ahq.EngineConfig{
		Spec: ahq.DefaultSpec(),
		Seed: 42,
		Apps: []ahq.AppConfig{
			ahq.LCAppAt("xapian", 0.30),
			ahq.LCAppAt("moses", 0.20),
			ahq.BEApp("stream"),
		},
	})
	if err != nil {
		panic(err)
	}
	res, err := ahq.Run(engine, ahq.NewARQ(), ahq.RunOptions{
		WarmupMs: 4_000, DurationMs: 10_000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("strategy=%s epochs=%d\n", res.Strategy, res.Epochs)
	fmt.Printf("entropy in range: %v\n", res.MeanES >= 0 && res.MeanES <= 1)
	// Output:
	// strategy=arq epochs=20
	// entropy in range: true
}

// ExampleResourceEquivalence inverts two measured E_S(cores) curves to ask
// how many cores a better strategy is worth (paper Section II-C).
func ExampleResourceEquivalence() {
	unmanaged, _ := ahq.NewEquivalenceCurve([]ahq.EquivalencePoint{
		{Resource: 4, ES: 0.86}, {Resource: 6, ES: 0.66},
		{Resource: 8, ES: 0.16}, {Resource: 10, ES: 0.05},
	})
	arq, _ := ahq.NewEquivalenceCurve([]ahq.EquivalencePoint{
		{Resource: 4, ES: 0.56}, {Resource: 6, ES: 0.18},
		{Resource: 8, ES: 0.11}, {Resource: 10, ES: 0.07},
	})
	saved, err := ahq.ResourceEquivalence(unmanaged, arq, 0.25)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ARQ saves %.1f cores at E_S = 0.25\n", saved)
	// Output:
	// ARQ saves 2.0 cores at E_S = 0.25
}
