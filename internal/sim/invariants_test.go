package sim

import (
	"math/rand"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

// randomAllocation builds a random but valid ARQ-shaped allocation over the
// default node for the standard four applications.
func randomAllocation(rng *rand.Rand) machine.Allocation {
	spec := machine.DefaultSpec()
	lc := []string{"xapian", "moses", "img-dnn"}
	// Random isolated slices, remainder shared.
	coresLeft, waysLeft, bwLeft := spec.Cores-1, spec.LLCWays-1, spec.MemBWUnits
	alloc := machine.Allocation{}
	for _, name := range lc {
		c := rng.Intn(min(3, coresLeft+1))
		w := rng.Intn(min(5, waysLeft+1))
		b := rng.Intn(min(3, bwLeft+1))
		coresLeft -= c
		waysLeft -= w
		bwLeft -= b
		alloc.Regions = append(alloc.Regions, machine.Region{
			Name: "iso:" + name, Kind: machine.Isolated,
			Cores: c, Ways: w, BWUnits: b, Apps: []string{name},
		})
	}
	policy := machine.FairShare
	if rng.Intn(2) == 1 {
		policy = machine.LCPriority
	}
	alloc.Regions = append(alloc.Regions, machine.Region{
		Name: "shared", Kind: machine.Shared, Policy: policy,
		Cores: coresLeft + 1, Ways: waysLeft + 1, BWUnits: bwLeft,
		Apps: []string{"img-dnn", "moses", "stream", "xapian"},
	})
	return alloc
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestTickInvariantsUnderRandomAllocations fuzzes the contention resolver:
// for random valid allocations and random loads, every tick must conserve
// cores (no application group uses more core time than exists), keep
// effective ways within the node, and keep slowdowns sane.
func TestTickInvariantsUnderRandomAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < 30; trial++ {
		x, m, i := workload.MustLC("xapian"), workload.MustLC("moses"), workload.MustLC("img-dnn")
		s := workload.MustBE("stream")
		e, err := New(Config{
			Spec: machine.DefaultSpec(),
			Seed: rng.Int63(),
			Apps: []AppConfig{
				{LC: &x, Load: trace.Constant(rng.Float64())},
				{LC: &m, Load: trace.Constant(rng.Float64())},
				{LC: &i, Load: trace.Constant(rng.Float64())},
				{BE: &s},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		alloc := randomAllocation(rng)
		if err := alloc.Validate(e.Spec(), e.AppNames()); err != nil {
			t.Fatalf("trial %d: generator produced invalid allocation: %v", trial, err)
		}
		if err := e.SetAllocation(alloc); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for tick := 0; tick < 2000; tick++ {
			e.Step()
			var coreShare, effWays float64
			for _, a := range e.apps {
				if a.totalCoreShare < -1e-9 {
					t.Fatalf("trial %d: negative core share for %s", trial, a.name)
				}
				coreShare += a.totalCoreShare
				effWays += a.effWays
				if a.slowdown < 0.5 {
					t.Fatalf("trial %d: slowdown %.3f < 0.5 for %s (faster than solo reference?)",
						trial, a.slowdown, a.name)
				}
				if a.slowdown > 1000 {
					t.Fatalf("trial %d: slowdown exploded (%.1f) for %s", trial, a.slowdown, a.name)
				}
			}
			if coreShare > float64(e.Spec().Cores)+1e-6 {
				t.Fatalf("trial %d tick %d: total core share %.3f exceeds %d cores",
					trial, tick, coreShare, e.Spec().Cores)
			}
			if effWays > float64(e.Spec().LLCWays)+1e-6 {
				t.Fatalf("trial %d tick %d: effective ways %.3f exceed %d",
					trial, tick, effWays, e.Spec().LLCWays)
			}
		}
		// Latencies must be positive and finite.
		for _, a := range e.apps {
			for _, l := range a.runLat {
				if !(l > 0) || l > 1e7 {
					t.Fatalf("trial %d: bad latency %g for %s", trial, l, a.name)
				}
			}
		}
	}
}

// TestLatencyNeverNegative hammers the slot-based progress path with a
// tiny-service application (sub-tick requests), where mid-tick arrival
// accounting is most delicate.
func TestLatencyNeverNegative(t *testing.T) {
	app := workload.MustLC("masstree") // 0.45 ms mean service, sub-tick
	e, err := New(Config{
		Spec: machine.DefaultSpec(),
		Seed: 42,
		Apps: []AppConfig{{LC: &app, Load: trace.Constant(0.9)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for e.NowMs() < 10_000 {
		e.Step()
	}
	a := e.apps[0]
	if len(a.runLat) == 0 {
		t.Fatal("no completions")
	}
	minLat := a.runLat[0]
	for _, l := range a.runLat {
		if l < minLat {
			minLat = l
		}
	}
	if minLat <= 0 {
		t.Fatalf("non-positive latency %g recorded", minLat)
	}
	// Sub-tick services must be able to complete faster than one tick —
	// the work-conserving slot model, not tick-quantised service.
	if minLat >= 1 {
		t.Errorf("fastest completion %.3f ms >= tick; slot model not work-conserving", minLat)
	}
}

// TestThroughputNotTickQuantised verifies a single thread can finish many
// sub-tick requests within one tick.
func TestThroughputNotTickQuantised(t *testing.T) {
	app := workload.MustLC("silo") // 0.5 ms mean service
	e, err := New(Config{
		Spec: machine.DefaultSpec(),
		Seed: 4,
		Apps: []AppConfig{{LC: &app, Load: trace.Constant(1.0)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for e.NowMs() < 2_000 {
		e.Step()
	}
	e.ResetRunStats()
	for e.NowMs() < 8_000 {
		e.Step()
	}
	// At 100% load = 0.85*threads/serviceMean, throughput per second is
	// maxLoad; with tick-quantised service it would cap at
	// threads/tick = 4000/s < maxLoad for silo (6800/s).
	gotQPS := float64(len(e.apps[0].runLat)) / 6.0
	if gotQPS < app.MaxLoadQPS*0.9 {
		t.Errorf("throughput %.0f QPS, want ~%.0f (tick quantisation?)", gotQPS, app.MaxLoadQPS)
	}
}
