package sim

import (
	"fmt"

	"ahq/internal/machine"
)

// allocTopology is the indexed form of the applied allocation. SetAllocation
// compiles it once per repartition so the per-tick resolvers never walk
// region membership lists or compare application-name strings: every lookup
// the tick loop needs — "what are app i's isolated resources", "who are the
// members of shared region g" — becomes a slice index.
//
// The compiled form mirrors the resolvers' access patterns exactly:
//
//   - byApp[i] caches app i's *first* isolated region's resources (the same
//     first-match rule as Allocation.IsolatedRegionOf) plus its static way
//     entitlement across all regions (the warm-up trigger in SetAllocation).
//   - shared lists the shared regions in allocation order, each with its
//     member app indices in engine configuration order — the iteration
//     order the resolvers used when they filtered e.apps by Region.Has,
//     preserved so every float accumulation happens in the identical order.
type allocTopology struct {
	byApp  []topoApp
	shared []topoShared
}

// topoApp is one application's isolated-resource view of the allocation.
type topoApp struct {
	// isoCores, isoWays and isoBWUnits are the resources of the app's
	// first isolated region; zero when it has none. hasIso pins the
	// first-match rule even for a resourceless first region.
	isoCores   int
	isoWays    float64
	isoBWUnits int
	hasIso     bool
	// entitledWays is the static way upper bound (isolated plus full
	// shared) summed over every region the app belongs to, the quantity
	// whose change re-triggers cache warm-up.
	entitledWays float64
	// sharedIdx indexes allocTopology.shared for the app's shared region,
	// or -1 when it belongs to none.
	sharedIdx int
}

// topoShared is one shared region plus its member index list.
type topoShared struct {
	// region points into Engine.alloc.Regions; stable because the engine
	// owns a private clone of the applied allocation.
	region *machine.Region
	// members holds engine app indices in configuration order.
	members []int
}

// compileTopology indexes alloc against the engine's application set. It
// also enforces the one-shared-region-per-app rule, which previously lived
// in SetAllocation as a membership scan. alloc must already be validated
// and must be the engine-owned clone (the topology keeps pointers into it).
func (e *Engine) compileTopology(alloc *machine.Allocation) (allocTopology, error) {
	t := allocTopology{byApp: make([]topoApp, len(e.apps))}
	for i := range t.byApp {
		t.byApp[i].sharedIdx = -1
	}
	for gi := range alloc.Regions {
		g := &alloc.Regions[gi]
		if g.Kind == machine.Isolated {
			// Validate guarantees exactly one member.
			i := e.byIdx[g.Apps[0]]
			ta := &t.byApp[i]
			if !ta.hasIso {
				ta.hasIso = true
				ta.isoCores = g.Cores
				ta.isoWays = float64(g.Ways)
				ta.isoBWUnits = g.BWUnits
			}
			ta.entitledWays += float64(g.Ways)
			continue
		}
		si := len(t.shared)
		ts := topoShared{region: g, members: make([]int, 0, len(g.Apps))}
		for i, a := range e.apps {
			if !g.Has(a.name) {
				continue
			}
			if t.byApp[i].sharedIdx >= 0 {
				return allocTopology{}, fmt.Errorf("sim: app %q is in 2 shared regions, max 1", a.name)
			}
			t.byApp[i].sharedIdx = si
			t.byApp[i].entitledWays += float64(g.Ways)
			ts.members = append(ts.members, i)
		}
		t.shared = append(t.shared, ts)
	}
	return t, nil
}
