package sim

import (
	"fmt"
	"math"

	"ahq/internal/machine"
	"ahq/internal/metrics"
	"ahq/internal/sched"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

// Config describes one simulation.
type Config struct {
	// Spec is the node being simulated.
	Spec machine.Spec
	// Seed makes the run reproducible; every application derives its own
	// deterministic stream from it.
	Seed int64
	// TickMs is the simulation step; 0 means 1 ms.
	TickMs float64
	// Tunables are the contention-model constants; zero value means
	// DefaultTunables.
	Tunables Tunables
	// Apps are the collocated applications.
	Apps []AppConfig
	// DisableFastForward forces RunWindow through the naive one-Step-per-
	// tick march even over provably eventless stretches. The skip-ahead is
	// an exact fast-forward, so results are identical either way; the
	// differential tests pin that by running both forms side by side.
	DisableFastForward bool
	// SharedSolves optionally connects the engine to an experiment-scoped
	// cross-engine contention solve cache (solvecache.go). Sharing is
	// bit-exact — the cache key covers every resolver input — so a run
	// with the cache is identical to one without; nil disables sharing.
	SharedSolves *SolveCache
}

// wayChangeEpsilon is the smallest change in an application's static way
// entitlement (isolated plus full shared ways) that re-triggers cache
// warm-up on repartition. Entitlements are integral sums of region way
// counts, so any real repartition moves at least one whole way; the named
// threshold keeps float accumulation noise from re-warming applications
// whose entitlement did not actually change. Tests share this constant to
// pin the boundary: a delta of exactly one way warms up, a reshuffle that
// preserves the total does not.
const wayChangeEpsilon = 1.0

// Engine simulates the node. It is not safe for concurrent use.
type Engine struct {
	spec  machine.Spec
	tun   Tunables
	tick  float64
	nowMs float64
	apps  []*appState
	byIdx map[string]int
	alloc machine.Allocation
	// topo is the indexed form of alloc, recompiled on SetAllocation so
	// the tick loop never walks region membership lists (topology.go).
	topo allocTopology
	// memo caches contention solves keyed on the active-thread vector
	// (memo.go); invalidated when the allocation changes.
	memo resolveMemo
	// warmupMaxUntilMs is the latest warm-up deadline across applications;
	// the memo is bypassed until simulation time passes it.
	warmupMaxUntilMs float64
	// tickCount counts completed ticks since construction. Simulation time
	// is derived as tickCount*tick rather than accumulated with repeated
	// += tick, so nowMs carries one rounding at most and cannot drift over
	// long horizons (for the integral millisecond ticks every experiment
	// uses, both forms are exact and identical).
	tickCount int64
	// skippedTicks counts ticks the event-driven clock elided via
	// fastForward (instrumentation for tests and benchmarks).
	skippedTicks int64

	// Reusable per-tick scratch for the contention resolvers.
	scratchMembers  []*appState
	scratchShare    []float64
	scratchPressure []float64
	scratchMiss     []float64
	scratchReqs     []bwReq
	// snapBuf backs the AppWindow slice returned by RunWindow; reused
	// across windows.
	snapBuf []sched.AppWindow

	// windowStartMs is the simulation time at which the window being
	// accumulated began; snapshot normalises offered rates and BE IPC by
	// the actual elapsed window (nowMs - windowStartMs), which differs
	// from the nominal window length when windowMs is not an integral
	// multiple of the tick.
	windowStartMs float64

	// everyTickArrivals is set when any application draws from its arrival
	// stream every tick (open loop under a possibly-always-positive load);
	// eliding any tick would then change the random stream, so the
	// event-driven clock stands down for the whole run.
	everyTickArrivals bool
	// noFastForward mirrors Config.DisableFastForward.
	noFastForward bool

	// shared is the optional cross-engine solve cache (solvecache.go).
	// solveStatic/solvePrefix/solveKey are its key-building buffers: the
	// engine-static part, the part including the compiled topology, and
	// the per-tick scratch for the complete key.
	shared      *SolveCache
	solveStatic []byte
	solvePrefix []byte
	solveKey    []byte
}

// New validates the configuration and builds an engine. The engine starts
// with an Unmanaged allocation (everything shared, CFS policy) until a
// strategy installs its own.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("sim: no applications configured")
	}
	tick := cfg.TickMs
	if tick <= 0 {
		tick = 1
	}
	tun := cfg.Tunables
	if tun == (Tunables{}) {
		tun = DefaultTunables()
	}
	e := &Engine{
		spec:  cfg.Spec,
		tun:   tun,
		tick:  tick,
		byIdx: make(map[string]int, len(cfg.Apps)),
	}
	for i, ac := range cfg.Apps {
		if (ac.LC == nil) == (ac.BE == nil) {
			return nil, fmt.Errorf("sim: app %d must set exactly one of LC or BE", i)
		}
		if ac.LC != nil {
			if err := ac.LC.Validate(); err != nil {
				return nil, err
			}
			if ac.Load == nil && ac.ClosedLoopUsers <= 0 {
				return nil, fmt.Errorf("sim: LC app %q has neither a load trace nor closed-loop users", ac.LC.Name)
			}
			if ac.ClosedLoopUsers < 0 || ac.ThinkTimeMs < 0 {
				return nil, fmt.Errorf("sim: LC app %q has negative closed-loop parameters", ac.LC.Name)
			}
		} else if err := ac.BE.Validate(); err != nil {
			return nil, err
		}
		name := ac.Name()
		if _, dup := e.byIdx[name]; dup {
			return nil, fmt.Errorf("sim: duplicate app name %q", name)
		}
		e.byIdx[name] = i
		as := newAppState(ac, cfg.Seed+int64(i+1)*0x9E3779B97F4A7C)
		as.refMiss = as.cache().MissRatio(tun.RefWays)
		as.cacheDenom = 1 + as.sens().CacheSens*as.refMiss
		if as.arrivals == arrivalsEveryTick {
			e.everyTickArrivals = true
		}
		e.apps = append(e.apps, as)
	}
	e.noFastForward = cfg.DisableFastForward
	e.shared = cfg.SharedSolves
	if err := e.SetAllocation(machine.AllShared(cfg.Spec, machine.FairShare, e.AppNames())); err != nil {
		return nil, err
	}
	return e, nil
}

// AppNames returns the configured application names in order.
func (e *Engine) AppNames() []string {
	names := make([]string, len(e.apps))
	for i, a := range e.apps {
		names[i] = a.name
	}
	return names
}

// Spec returns the node spec being simulated.
func (e *Engine) Spec() machine.Spec { return e.spec }

// NowMs returns the current simulation time.
func (e *Engine) NowMs() float64 { return e.nowMs }

// Allocation returns (a copy of) the allocation currently applied.
func (e *Engine) Allocation() machine.Allocation { return e.alloc.Clone() }

// SetAllocation validates and applies a new partitioning, compiling its
// indexed topology and triggering cache warm-up for every application whose
// effective way entitlement changed. Applying an allocation equal to the
// current one is free.
func (e *Engine) SetAllocation(a machine.Allocation) error {
	if err := a.Validate(e.spec, e.AppNames()); err != nil {
		return err
	}
	if e.alloc.Equal(a) {
		return nil
	}
	clone := a.Clone()
	topo, err := e.compileTopology(&clone)
	if err != nil {
		return err
	}
	e.alloc = clone
	e.topo = topo
	e.memo.invalidate()
	e.refreshSolvePrefix()
	// Trigger warm-up where the way entitlement changed. Entitlement here
	// is the static upper bound (isolated + full shared), which changes
	// exactly when the partitioning moved ways around this application.
	for i, app := range e.apps {
		entitled := topo.byApp[i].entitledWays
		if app.haveAllocation && math.Abs(entitled-app.lastWays) >= wayChangeEpsilon {
			app.warmupStartMs = e.nowMs
			app.warmupUntilMs = e.nowMs + e.tun.WarmupMs
		}
		app.lastWays = entitled
		app.haveAllocation = true
		if app.warmupUntilMs > e.warmupMaxUntilMs {
			e.warmupMaxUntilMs = app.warmupUntilMs
		}
	}
	return nil
}

// Step advances the simulation by one tick.
func (e *Engine) Step() {
	dt := e.tick
	tickEnd := float64(e.tickCount+1) * e.tick
	for _, a := range e.apps {
		a.arrive(e.nowMs, dt)
	}
	e.resolveContention()
	e.progress(dt, tickEnd)
	e.tickCount++
	e.nowMs = tickEnd
}

// advance moves the simulation forward by at least one tick but never past
// endTick: it fast-forwards over the run of provably eventless ticks ahead
// of the clock, if any, then processes one real tick if one remains before
// the boundary.
func (e *Engine) advance(endTick int64) {
	if !e.everyTickArrivals && !e.noFastForward {
		if j := e.nextEventTick(endTick); j > e.tickCount {
			e.fastForward(j)
			if e.tickCount >= endTick {
				return
			}
		}
	}
	e.Step()
}

// nextEventTick returns the first tick index in (tickCount, endTick] that
// could contain an event — an arrival, a closed-loop issue, in-flight LC
// work, a warm-up transient, or randomness consumption of any kind — or
// tickCount itself when the current tick cannot be proven eventless. Every
// tick strictly before the returned index performs exactly the constant
// best-effort accumulation that fastForward applies, so skipping there is
// an exact fast-forward, not an approximation.
func (e *Engine) nextEventTick(endTick int64) int64 {
	cur := e.tickCount
	// During warm-up the contention solve depends continuously on time.
	if e.nowMs < e.warmupMaxUntilMs {
		return cur
	}
	// The elided ticks never call resolveContention, so the per-app fields
	// must already hold the steady-state solve of the current vector — and
	// that vector must be what the elided ticks would present.
	if !e.memo.lastOK {
		return cur
	}
	for i, a := range e.apps {
		rt := a.runnableThreads()
		if a.class == workload.LC && rt > 0 {
			return cur // backlog: dispatch must run every tick
		}
		if e.memo.lastVec[i] != uint16(rt) {
			return cur
		}
	}
	t := endTick
	for _, a := range e.apps {
		switch a.arrivals {
		case arrivalsNone:
			// No arrival source; nothing to wait for.
		case arrivalsEveryTick:
			return cur // unreachable: New sets everyTickArrivals
		case arrivalsClosedLoop:
			if a.nextIssue == nil {
				return cur // first tick seeds the users' staggered starts
			}
			for _, due := range a.nextIssue {
				if due < 0 {
					continue // outstanding; its completion needs pending > 0
				}
				if k := e.issueTick(due, endTick); k < t {
					t = k
				}
			}
		case arrivalsSparse:
			z := trace.NextPositive(a.cfg.Load, e.nowMs)
			if !math.IsInf(z, 1) {
				if k := e.loadTick(z, endTick); k < t {
					t = k
				}
			}
		}
		if t <= cur {
			return cur
		}
	}
	return t
}

// issueTick returns the first tick (never past endTick) whose arrive call
// would fire a closed-loop user due at dueMs: the smallest k with
// dueMs < float64(k)*tick + tick, evaluated with the exact float arithmetic
// arrive uses, so skipping to it reproduces the naive march bit for bit.
func (e *Engine) issueTick(dueMs float64, endTick int64) int64 {
	if !(dueMs < float64(endTick)*e.tick+e.tick) {
		return endTick
	}
	k := int64(dueMs / e.tick)
	for k > e.tickCount && dueMs < float64(k-1)*e.tick+e.tick {
		k--
	}
	for !(dueMs < float64(k)*e.tick+e.tick) {
		k++
	}
	if k < e.tickCount {
		k = e.tickCount
	}
	return k
}

// loadTick returns the first tick (never past endTick) whose start time
// samples the load profile at or after fromMs — the smallest k with
// float64(k)*tick >= fromMs — again under arrive's exact float arithmetic.
func (e *Engine) loadTick(fromMs float64, endTick int64) int64 {
	if !(float64(endTick)*e.tick >= fromMs) {
		return endTick
	}
	k := int64(fromMs / e.tick)
	for k > e.tickCount && float64(k-1)*e.tick >= fromMs {
		k--
	}
	for float64(k)*e.tick < fromMs {
		k++
	}
	if k < e.tickCount {
		k = e.tickCount
	}
	return k
}

// fastForward advances the clock to tick `to`, applying the per-tick
// best-effort accumulation each elided tick would have performed. The ticks
// were proven eventless by nextEventTick, so the per-tick work increment is
// the same constant throughout the run; it is still applied as repeated
// additions — float addition is not distributive, and a single multiply
// would diverge from the naive march in the last bits.
func (e *Engine) fastForward(to int64) {
	n := to - e.tickCount
	if n <= 0 {
		return
	}
	dt := e.tick
	for _, a := range e.apps {
		if a.class != workload.BE {
			continue
		}
		if a.totalCoreShare > 0 && a.slowdown > 0 {
			work := a.totalCoreShare * dt / a.slowdown
			for i := int64(0); i < n; i++ {
				a.workWin.Add(work)
				a.runWork += work
				a.runMs += dt
			}
		} else {
			for i := int64(0); i < n; i++ {
				a.runMs += dt
			}
		}
	}
	e.memo.hits += uint64(n)
	e.skippedTicks += n
	e.tickCount = to
	e.nowMs = float64(to) * e.tick
}

// RunWindow advances the simulation by one monitoring interval and returns
// each application's observation for it.
//
// The returned slice is backed by an engine-owned buffer that the next
// RunWindow call reuses; callers that retain observations across windows
// must copy them first.
//
//ahq:hotpath
func (e *Engine) RunWindow(windowMs float64) []sched.AppWindow {
	e.windowStartMs = e.nowMs
	endTick := e.tickCount + windowTicks(windowMs, e.tick)
	for e.tickCount < endTick {
		e.advance(endTick)
	}
	return e.snapshot(e.nowMs - e.windowStartMs)
}

// windowTicks converts a window length into a whole number of ticks: the
// count of tick starts in [0, windowMs) after rounding the boundary to the
// nearest tick (ties toward fewer ticks, the same choice the previous
// float guard `nowMs < end - tick/2` made). Deriving window ends from
// integer tick counts keeps window boundaries exact tick multiples at any
// windowMs/tick ratio, so they cannot drift over long horizons.
func windowTicks(windowMs, tick float64) int64 {
	n := int64(math.Ceil(windowMs/tick - 0.5))
	if n < 0 {
		n = 0
	}
	return n
}

// snapshot drains the per-window accumulators into AppWindow observations.
// elapsedMs is the simulated time the window actually covered, the
// normaliser for offered rates and BE IPC.
func (e *Engine) snapshot(elapsedMs float64) []sched.AppWindow {
	out := e.snapBuf[:0]
	for _, a := range e.apps {
		w := sched.AppWindow{Spec: e.specOf(a)}
		if a.class == workload.LC {
			st := a.latWin.TailSnapshot()
			w.P95Ms, w.MeanMs = st.P95, st.Mean
			w.Completed, w.Dropped = st.Completed, st.Dropped
			w.QueueLen = a.pendingLen()
			w.OfferedQPS = float64(a.offered) / elapsedMs * 1000
			a.offered = 0
			// A starved application completes nothing; report the age of
			// its oldest waiting request as a latency lower bound so the
			// controller still sees the violation.
			if st.Completed == 0 {
				if age := a.oldestAgeMs(e.nowMs); !math.IsNaN(age) {
					w.P95Ms, w.MeanMs = age, age
				}
			}
		} else {
			work := a.workWin.Snapshot()
			w.IPC = a.cfg.BE.SoloIPC * work / (float64(a.threads()) * elapsedMs)
		}
		out = append(out, w) //ahqlint:allow hotpath amortized: snapBuf reuses its backing array across windows
	}
	e.snapBuf = out
	return out
}

// specOf builds the static AppSpec for telemetry.
func (e *Engine) specOf(a *appState) sched.AppSpec {
	s := sched.AppSpec{Name: a.name, Class: a.class, Threads: a.threads()}
	if a.cfg.LC != nil {
		s.QoSTargetMs = a.cfg.LC.QoSTargetMs
		s.IdealP95Ms = a.cfg.LC.IdealP95Ms
		s.MaxLoadQPS = a.cfg.LC.MaxLoadQPS
	} else {
		s.SoloIPC = a.cfg.BE.SoloIPC
	}
	return s
}

// AppSpecs returns the telemetry specs for all applications, LC first then
// BE, preserving configuration order within each class.
func (e *Engine) AppSpecs() []sched.AppSpec {
	var lc, be []sched.AppSpec
	for _, a := range e.apps {
		if a.class == workload.LC {
			lc = append(lc, e.specOf(a))
		} else {
			be = append(be, e.specOf(a))
		}
	}
	return append(lc, be...)
}

// QueueLen exposes an application's backlog, for tests and the daemon.
func (e *Engine) QueueLen(app string) int {
	if i, ok := e.byIdx[app]; ok {
		return e.apps[i].pendingLen()
	}
	return 0
}

// ResetRunStats clears the cumulative run-level accumulators; the
// controller calls it when the warm-up period ends.
func (e *Engine) ResetRunStats() {
	for _, a := range e.apps {
		a.runLat = a.runLat[:0]
		a.runWork = 0
		a.runMs = 0
	}
}

// RunP95 returns the exact p95 over every request completed since the last
// ResetRunStats (NaN if none completed). For a starved application with a
// non-empty backlog it returns the age of the oldest waiting request, the
// same lower bound the per-window telemetry reports.
func (e *Engine) RunP95(app string) float64 {
	i, ok := e.byIdx[app]
	if !ok {
		return math.NaN()
	}
	a := e.apps[i]
	if len(a.runLat) == 0 {
		return a.oldestAgeMs(e.nowMs)
	}
	// In-place selection reorders runLat but preserves its multiset, so
	// repeated RunP95 calls (and any later percentile) are unaffected —
	// and the run-length copy the out-of-place form would make is not.
	return metrics.PercentileInPlace(a.runLat, 0.95)
}

// RunIPC returns the average IPC over the period since the last
// ResetRunStats (NaN before any time has elapsed; LC applications return
// NaN).
func (e *Engine) RunIPC(app string) float64 {
	i, ok := e.byIdx[app]
	if !ok || e.apps[i].class != workload.BE {
		return math.NaN()
	}
	a := e.apps[i]
	if a.runMs <= 0 {
		return math.NaN()
	}
	return a.cfg.BE.SoloIPC * a.runWork / (float64(a.threads()) * a.runMs)
}
