package sim

import (
	"fmt"
	"math"

	"ahq/internal/machine"
	"ahq/internal/metrics"
	"ahq/internal/sched"
	"ahq/internal/workload"
)

// Config describes one simulation.
type Config struct {
	// Spec is the node being simulated.
	Spec machine.Spec
	// Seed makes the run reproducible; every application derives its own
	// deterministic stream from it.
	Seed int64
	// TickMs is the simulation step; 0 means 1 ms.
	TickMs float64
	// Tunables are the contention-model constants; zero value means
	// DefaultTunables.
	Tunables Tunables
	// Apps are the collocated applications.
	Apps []AppConfig
}

// wayChangeEpsilon is the smallest change in an application's static way
// entitlement (isolated plus full shared ways) that re-triggers cache
// warm-up on repartition. Entitlements are integral sums of region way
// counts, so any real repartition moves at least one whole way; the named
// threshold keeps float accumulation noise from re-warming applications
// whose entitlement did not actually change. Tests share this constant to
// pin the boundary: a delta of exactly one way warms up, a reshuffle that
// preserves the total does not.
const wayChangeEpsilon = 1.0

// Engine simulates the node. It is not safe for concurrent use.
type Engine struct {
	spec  machine.Spec
	tun   Tunables
	tick  float64
	nowMs float64
	apps  []*appState
	byIdx map[string]int
	alloc machine.Allocation
	// topo is the indexed form of alloc, recompiled on SetAllocation so
	// the tick loop never walks region membership lists (topology.go).
	topo allocTopology
	// memo caches contention solves keyed on the active-thread vector
	// (memo.go); invalidated when the allocation changes.
	memo resolveMemo
	// warmupMaxUntilMs is the latest warm-up deadline across applications;
	// the memo is bypassed until simulation time passes it.
	warmupMaxUntilMs float64
	// tickCount counts completed ticks since construction. Simulation time
	// is derived as tickCount*tick rather than accumulated with repeated
	// += tick, so nowMs carries one rounding at most and cannot drift over
	// long horizons (for the integral millisecond ticks every experiment
	// uses, both forms are exact and identical).
	tickCount int64

	// Reusable per-tick scratch for the contention resolvers.
	scratchMembers  []*appState
	scratchShare    []float64
	scratchPressure []float64
	scratchMiss     []float64
	scratchReqs     []bwReq
	// snapBuf backs the AppWindow slice returned by RunWindow; reused
	// across windows.
	snapBuf []sched.AppWindow

	// windowMs tracks the length of the window being accumulated, for
	// offered-rate and IPC normalisation.
	windowStartMs float64
}

// New validates the configuration and builds an engine. The engine starts
// with an Unmanaged allocation (everything shared, CFS policy) until a
// strategy installs its own.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("sim: no applications configured")
	}
	tick := cfg.TickMs
	if tick <= 0 {
		tick = 1
	}
	tun := cfg.Tunables
	if tun == (Tunables{}) {
		tun = DefaultTunables()
	}
	e := &Engine{
		spec:  cfg.Spec,
		tun:   tun,
		tick:  tick,
		byIdx: make(map[string]int, len(cfg.Apps)),
	}
	for i, ac := range cfg.Apps {
		if (ac.LC == nil) == (ac.BE == nil) {
			return nil, fmt.Errorf("sim: app %d must set exactly one of LC or BE", i)
		}
		if ac.LC != nil {
			if err := ac.LC.Validate(); err != nil {
				return nil, err
			}
			if ac.Load == nil && ac.ClosedLoopUsers <= 0 {
				return nil, fmt.Errorf("sim: LC app %q has neither a load trace nor closed-loop users", ac.LC.Name)
			}
			if ac.ClosedLoopUsers < 0 || ac.ThinkTimeMs < 0 {
				return nil, fmt.Errorf("sim: LC app %q has negative closed-loop parameters", ac.LC.Name)
			}
		} else if err := ac.BE.Validate(); err != nil {
			return nil, err
		}
		name := ac.Name()
		if _, dup := e.byIdx[name]; dup {
			return nil, fmt.Errorf("sim: duplicate app name %q", name)
		}
		e.byIdx[name] = i
		as := newAppState(ac, cfg.Seed+int64(i+1)*0x9E3779B97F4A7C)
		as.refMiss = as.cache().MissRatio(tun.RefWays)
		as.cacheDenom = 1 + as.sens().CacheSens*as.refMiss
		e.apps = append(e.apps, as)
	}
	if err := e.SetAllocation(machine.AllShared(cfg.Spec, machine.FairShare, e.AppNames())); err != nil {
		return nil, err
	}
	return e, nil
}

// AppNames returns the configured application names in order.
func (e *Engine) AppNames() []string {
	names := make([]string, len(e.apps))
	for i, a := range e.apps {
		names[i] = a.name
	}
	return names
}

// Spec returns the node spec being simulated.
func (e *Engine) Spec() machine.Spec { return e.spec }

// NowMs returns the current simulation time.
func (e *Engine) NowMs() float64 { return e.nowMs }

// Allocation returns (a copy of) the allocation currently applied.
func (e *Engine) Allocation() machine.Allocation { return e.alloc.Clone() }

// SetAllocation validates and applies a new partitioning, compiling its
// indexed topology and triggering cache warm-up for every application whose
// effective way entitlement changed. Applying an allocation equal to the
// current one is free.
func (e *Engine) SetAllocation(a machine.Allocation) error {
	if err := a.Validate(e.spec, e.AppNames()); err != nil {
		return err
	}
	if e.alloc.Equal(a) {
		return nil
	}
	clone := a.Clone()
	topo, err := e.compileTopology(&clone)
	if err != nil {
		return err
	}
	e.alloc = clone
	e.topo = topo
	e.memo.invalidate()
	// Trigger warm-up where the way entitlement changed. Entitlement here
	// is the static upper bound (isolated + full shared), which changes
	// exactly when the partitioning moved ways around this application.
	for i, app := range e.apps {
		entitled := topo.byApp[i].entitledWays
		if app.haveAllocation && math.Abs(entitled-app.lastWays) >= wayChangeEpsilon {
			app.warmupStartMs = e.nowMs
			app.warmupUntilMs = e.nowMs + e.tun.WarmupMs
		}
		app.lastWays = entitled
		app.haveAllocation = true
		if app.warmupUntilMs > e.warmupMaxUntilMs {
			e.warmupMaxUntilMs = app.warmupUntilMs
		}
	}
	return nil
}

// Step advances the simulation by one tick.
func (e *Engine) Step() {
	dt := e.tick
	tickEnd := float64(e.tickCount+1) * e.tick
	for _, a := range e.apps {
		a.arrive(e.nowMs, dt)
	}
	e.resolveContention()
	e.progress(dt, tickEnd)
	e.tickCount++
	e.nowMs = tickEnd
}

// RunWindow advances the simulation by one monitoring interval and returns
// each application's observation for it.
//
// The returned slice is backed by an engine-owned buffer that the next
// RunWindow call reuses; callers that retain observations across windows
// must copy them first.
func (e *Engine) RunWindow(windowMs float64) []sched.AppWindow {
	e.windowStartMs = e.nowMs
	end := e.nowMs + windowMs
	for e.nowMs < end-e.tick/2 {
		e.Step()
	}
	return e.snapshot(windowMs)
}

// snapshot drains the per-window accumulators into AppWindow observations.
func (e *Engine) snapshot(windowMs float64) []sched.AppWindow {
	out := e.snapBuf[:0]
	for _, a := range e.apps {
		w := sched.AppWindow{Spec: e.specOf(a)}
		if a.class == workload.LC {
			st := a.latWin.Snapshot()
			w.P95Ms, w.MeanMs = st.P95, st.Mean
			w.Completed, w.Dropped = st.Completed, st.Dropped
			w.QueueLen = a.pendingLen()
			w.OfferedQPS = float64(a.offered) / windowMs * 1000
			a.offered = 0
			// A starved application completes nothing; report the age of
			// its oldest waiting request as a latency lower bound so the
			// controller still sees the violation.
			if st.Completed == 0 {
				if age := a.oldestAgeMs(e.nowMs); !math.IsNaN(age) {
					w.P95Ms, w.MeanMs = age, age
				}
			}
		} else {
			work := a.workWin.Snapshot()
			w.IPC = a.cfg.BE.SoloIPC * work / (float64(a.threads()) * windowMs)
		}
		out = append(out, w)
	}
	e.snapBuf = out
	return out
}

// specOf builds the static AppSpec for telemetry.
func (e *Engine) specOf(a *appState) sched.AppSpec {
	s := sched.AppSpec{Name: a.name, Class: a.class, Threads: a.threads()}
	if a.cfg.LC != nil {
		s.QoSTargetMs = a.cfg.LC.QoSTargetMs
		s.IdealP95Ms = a.cfg.LC.IdealP95Ms
		s.MaxLoadQPS = a.cfg.LC.MaxLoadQPS
	} else {
		s.SoloIPC = a.cfg.BE.SoloIPC
	}
	return s
}

// AppSpecs returns the telemetry specs for all applications, LC first then
// BE, preserving configuration order within each class.
func (e *Engine) AppSpecs() []sched.AppSpec {
	var lc, be []sched.AppSpec
	for _, a := range e.apps {
		if a.class == workload.LC {
			lc = append(lc, e.specOf(a))
		} else {
			be = append(be, e.specOf(a))
		}
	}
	return append(lc, be...)
}

// QueueLen exposes an application's backlog, for tests and the daemon.
func (e *Engine) QueueLen(app string) int {
	if i, ok := e.byIdx[app]; ok {
		return e.apps[i].pendingLen()
	}
	return 0
}

// ResetRunStats clears the cumulative run-level accumulators; the
// controller calls it when the warm-up period ends.
func (e *Engine) ResetRunStats() {
	for _, a := range e.apps {
		a.runLat = a.runLat[:0]
		a.runWork = 0
		a.runMs = 0
	}
}

// RunP95 returns the exact p95 over every request completed since the last
// ResetRunStats (NaN if none completed). For a starved application with a
// non-empty backlog it returns the age of the oldest waiting request, the
// same lower bound the per-window telemetry reports.
func (e *Engine) RunP95(app string) float64 {
	i, ok := e.byIdx[app]
	if !ok {
		return math.NaN()
	}
	a := e.apps[i]
	if len(a.runLat) == 0 {
		return a.oldestAgeMs(e.nowMs)
	}
	return metrics.P95(a.runLat)
}

// RunIPC returns the average IPC over the period since the last
// ResetRunStats (NaN before any time has elapsed; LC applications return
// NaN).
func (e *Engine) RunIPC(app string) float64 {
	i, ok := e.byIdx[app]
	if !ok || e.apps[i].class != workload.BE {
		return math.NaN()
	}
	a := e.apps[i]
	if a.runMs <= 0 {
		return math.NaN()
	}
	return a.cfg.BE.SoloIPC * a.runWork / (float64(a.threads()) * a.runMs)
}
