package sim

// The three contention resolvers — resolveCores, resolveCache, resolveMemBW
// — are a pure function of three inputs: the applied allocation, each
// application's active-thread count, and the cache warm-up state. The first
// changes only at SetAllocation, the second takes a handful of values per
// application at steady load, and the third is a bounded transient after a
// repartition. So the common-case tick repeats a solve the engine has
// already done, fixed point and all.
//
// resolveMemo caches those solves. The key is the active-thread vector
// (two little-endian bytes per application, in configuration order); the
// allocation "epoch" is represented by clearing the table whenever the
// allocation actually changes, and warm-up is handled by refusing to
// consult the table while any application's warm-up window is still open
// (during warm-up the miss ratio depends continuously on simulation time).
// A hit restores the stored per-application outputs verbatim — the floats
// were produced by the very computation being skipped, never recomputed in
// a different order — so a memoized tick is bit-for-bit identical to a
// fresh solve (pinned by TestMemoizedTickMatchesFreshSolve).

// memoMaxEntries bounds the table. The active-thread vector takes few
// distinct values at steady load, so the bound exists only to keep
// adversarial load patterns (wildly varying thread counts across many
// applications) from growing the table without limit. Once full, new
// solves simply go uncached: the entries that got in first are the
// vectors of the early steady state — exactly the hot ones — and
// retaining them avoids the permanent insert-and-evict churn (one slice
// and one key allocation per tick, forever) that dropping the table
// would cause under a high-entropy load that refills it immediately.
const memoMaxEntries = 1 << 12

// appResolve is the complete resolver output for one application — every
// appState field the three resolvers write. Restoring it must leave the
// application exactly as a fresh solve would.
type appResolve struct {
	isoCores       int
	isoShare       float64
	sharedThreads  int
	sharedShare    float64
	sharedCrowded  bool
	sharedPolluted bool
	dispatchDelay  float64
	totalCoreShare float64
	isoWays        float64
	effWays        float64
	slowdown       float64
}

// resolveMemo is the engine's solve cache plus its reusable key buffer.
type resolveMemo struct {
	entries map[string][]appResolve
	key     []byte
	// hits and misses instrument the cache for tests and benchmarks.
	hits, misses uint64
	// disabled forces every tick through the fresh solve; the differential
	// tests use it to compare memoized and unmemoized engines.
	disabled bool
}

// invalidate drops every cached solve; called when the allocation changes.
func (m *resolveMemo) invalidate() {
	if m.entries != nil {
		clear(m.entries)
	}
}

// buildKey serialises the active-thread vector into the reusable buffer.
func (m *resolveMemo) buildKey(apps []*appState) []byte {
	k := m.key[:0]
	for _, a := range apps {
		t := a.activeThreads
		k = append(k, byte(t), byte(t>>8))
	}
	m.key = k
	return k
}

// capture copies the resolver outputs out of the application state.
func (a *appState) capture() appResolve {
	return appResolve{
		isoCores:       a.isoCores,
		isoShare:       a.isoShare,
		sharedThreads:  a.sharedThreads,
		sharedShare:    a.sharedShare,
		sharedCrowded:  a.sharedCrowded,
		sharedPolluted: a.sharedPolluted,
		dispatchDelay:  a.dispatchDelay,
		totalCoreShare: a.totalCoreShare,
		isoWays:        a.isoWays,
		effWays:        a.effWays,
		slowdown:       a.slowdown,
	}
}

// restore writes a cached solve back into the application state.
func (a *appState) restore(r *appResolve) {
	a.isoCores = r.isoCores
	a.isoShare = r.isoShare
	a.sharedThreads = r.sharedThreads
	a.sharedShare = r.sharedShare
	a.sharedCrowded = r.sharedCrowded
	a.sharedPolluted = r.sharedPolluted
	a.dispatchDelay = r.dispatchDelay
	a.totalCoreShare = r.totalCoreShare
	a.isoWays = r.isoWays
	a.effWays = r.effWays
	a.slowdown = r.slowdown
}

// resolveContention computes the tick's contention state, through the memo
// when possible. Memoization is skipped while any application is warming up
// (the transient makes the solve time-dependent) and while disabled.
func (e *Engine) resolveContention() {
	for _, a := range e.apps {
		a.activeThreads = a.runnableThreads()
	}
	memoOK := !e.memo.disabled && e.nowMs >= e.warmupMaxUntilMs
	if memoOK {
		key := e.memo.buildKey(e.apps)
		if st, ok := e.memo.entries[string(key)]; ok {
			e.memo.hits++
			for i, a := range e.apps {
				a.restore(&st[i])
			}
			return
		}
	}
	e.resolveCores()
	e.resolveCache()
	e.resolveMemBW()
	if memoOK {
		e.memo.misses++
		if e.memo.entries == nil {
			e.memo.entries = make(map[string][]appResolve)
		}
		if len(e.memo.entries) < memoMaxEntries {
			st := make([]appResolve, len(e.apps))
			for i, a := range e.apps {
				st[i] = a.capture()
			}
			e.memo.entries[string(e.memo.key)] = st
		}
	}
}
