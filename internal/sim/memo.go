package sim

// The three contention resolvers — resolveCores, resolveCache, resolveMemBW
// — are a pure function of three inputs: the applied allocation, each
// application's active-thread count, and the cache warm-up state. The first
// changes only at SetAllocation, the second takes a handful of values per
// application at steady load, and the third is a bounded transient after a
// repartition. So the common-case tick repeats a solve the engine has
// already done, fixed point and all.
//
// resolveMemo caches those solves. The key is the active-thread vector
// (two little-endian bytes per application, in configuration order); the
// allocation "epoch" is represented by clearing the table whenever the
// allocation actually changes, and warm-up is handled by refusing to
// consult the table while any application's warm-up window is still open
// (during warm-up the miss ratio depends continuously on simulation time).
// A hit restores the stored per-application outputs verbatim — the floats
// were produced by the very computation being skipped, never recomputed in
// a different order — so a memoized tick is bit-for-bit identical to a
// fresh solve (pinned by TestMemoizedTickMatchesFreshSolve).

// memoMaxEntries bounds the table. The active-thread vector takes few
// distinct values at steady load, so the bound exists only to keep
// adversarial load patterns (wildly varying thread counts across many
// applications) from growing the table without limit. Once full, new
// solves simply go uncached: the entries that got in first are the
// vectors of the early steady state — exactly the hot ones — and
// retaining them avoids the permanent insert-and-evict churn (one slice
// and one key allocation per tick, forever) that dropping the table
// would cause under a high-entropy load that refills it immediately.
const memoMaxEntries = 1 << 12

// appResolve is the complete resolver output for one application — every
// appState field the three resolvers write. Restoring it must leave the
// application exactly as a fresh solve would.
type appResolve struct {
	isoCores       int
	isoShare       float64
	sharedThreads  int
	sharedShare    float64
	sharedCrowded  bool
	sharedPolluted bool
	dispatchDelay  float64
	totalCoreShare float64
	isoWays        float64
	effWays        float64
	slowdown       float64
	rateIso        float64
	rateShared     float64
}

// memoSmallApps is the largest application count whose active-thread
// vector fits packed into a uint64 (16 bits per app); those configurations
// — including every catalog mix — key the memo on the packed integer,
// avoiding the string-key hash and equality walk on every tick.
const memoSmallApps = 4

// resolveMemo is the engine's solve cache plus its reusable key buffer.
// Exactly one of entries64/entries is populated, chosen by app count.
type resolveMemo struct {
	entries64 map[uint64][]appResolve
	entries   map[string][]appResolve
	key       []byte
	// lastVec/lastOK record the active-thread vector whose solve the
	// per-app contention fields currently hold, valid only outside warm-up
	// and under the current allocation. When the next tick presents the
	// same vector the fields are already exactly right — the steady-state
	// common case — and resolveContention returns without touching the
	// table at all. lastOK doubles as the event-driven clock's licence to
	// elide resolves entirely (engine.go: nextEventTick).
	lastVec []uint16
	lastOK  bool
	// hits and misses instrument the cache for tests and benchmarks;
	// sharedHits counts solves adopted from the cross-engine cache.
	hits, misses, sharedHits uint64
	// disabled forces every tick through the fresh solve; the differential
	// tests use it to compare memoized and unmemoized engines.
	disabled bool
	// free recycles value slices across invalidations. Every allocation
	// change clears the table, and the following window re-captures a
	// solve per active-thread vector; without recycling that is a slice
	// allocation per vector per epoch for the life of the run.
	free [][]appResolve
}

// invalidate drops every cached solve; called when the allocation changes.
// The value slices are kept for reuse by the next epoch's captures.
func (m *resolveMemo) invalidate() {
	for k, v := range m.entries {
		m.free = append(m.free, v)
		delete(m.entries, k)
	}
	for k, v := range m.entries64 {
		m.free = append(m.free, v)
		delete(m.entries64, k)
	}
	m.lastOK = false
}

// grab returns a capture slice of length n, recycled when one is free.
func (m *resolveMemo) grab(n int) []appResolve {
	if k := len(m.free); k > 0 {
		st := m.free[k-1]
		m.free = m.free[:k-1]
		if cap(st) >= n {
			return st[:n]
		}
	}
	//ahqlint:allow hotpath miss-path-only: runs once per new vector per epoch when the freelist is empty
	return make([]appResolve, n)
}

// noteVector records the current active-thread vector as the one whose
// solve the per-app contention fields now hold.
func (m *resolveMemo) noteVector(apps []*appState) {
	if cap(m.lastVec) < len(apps) {
		m.lastVec = make([]uint16, len(apps)) //ahqlint:allow hotpath capacity-guarded: allocates once, first call
	}
	m.lastVec = m.lastVec[:len(apps)]
	for i, a := range apps {
		m.lastVec[i] = uint16(a.activeThreads)
	}
	m.lastOK = true
}

// buildKey serialises the active-thread vector into the reusable buffer.
func (m *resolveMemo) buildKey(apps []*appState) []byte {
	k := m.key[:0]
	for _, a := range apps {
		t := a.activeThreads
		k = append(k, byte(t), byte(t>>8)) //ahqlint:allow hotpath amortized: the key buffer reuses its backing array across ticks
	}
	m.key = k
	return k
}

// capture copies the resolver outputs out of the application state.
func (a *appState) capture() appResolve {
	return appResolve{
		isoCores:       a.isoCores,
		isoShare:       a.isoShare,
		sharedThreads:  a.sharedThreads,
		sharedShare:    a.sharedShare,
		sharedCrowded:  a.sharedCrowded,
		sharedPolluted: a.sharedPolluted,
		dispatchDelay:  a.dispatchDelay,
		totalCoreShare: a.totalCoreShare,
		isoWays:        a.isoWays,
		effWays:        a.effWays,
		slowdown:       a.slowdown,
		rateIso:        a.rateIso,
		rateShared:     a.rateShared,
	}
}

// restore writes a cached solve back into the application state.
func (a *appState) restore(r *appResolve) {
	a.isoCores = r.isoCores
	a.isoShare = r.isoShare
	a.sharedThreads = r.sharedThreads
	a.sharedShare = r.sharedShare
	a.sharedCrowded = r.sharedCrowded
	a.sharedPolluted = r.sharedPolluted
	a.dispatchDelay = r.dispatchDelay
	a.totalCoreShare = r.totalCoreShare
	a.isoWays = r.isoWays
	a.effWays = r.effWays
	a.slowdown = r.slowdown
	a.rateIso = r.rateIso
	a.rateShared = r.rateShared
}

// resolveContention computes the tick's contention state, through the memo
// when possible. Memoization is skipped while any application is warming up
// (the transient makes the solve time-dependent) and while disabled.
//
//ahq:hotpath
func (e *Engine) resolveContention() {
	memoOK := !e.memo.disabled && e.nowMs >= e.warmupMaxUntilMs
	same := memoOK && e.memo.lastOK
	for i, a := range e.apps {
		t := a.runnableThreads()
		a.activeThreads = t
		if same && e.memo.lastVec[i] != uint16(t) {
			same = false
		}
	}
	if same {
		// The fields already hold this exact vector's solve; restoring the
		// cached entry would write back the values that are already there.
		e.memo.hits++
		return
	}
	small := len(e.apps) <= memoSmallApps
	var key64 uint64
	if memoOK {
		if small {
			for i, a := range e.apps {
				key64 |= uint64(uint16(a.activeThreads)) << (16 * uint(i))
			}
			if st, ok := e.memo.entries64[key64]; ok {
				e.memo.hits++
				for i, a := range e.apps {
					a.restore(&st[i])
				}
				e.memo.noteVector(e.apps)
				return
			}
		} else {
			key := e.memo.buildKey(e.apps)
			if st, ok := e.memo.entries[string(key)]; ok {
				e.memo.hits++
				for i, a := range e.apps {
					a.restore(&st[i])
				}
				e.memo.noteVector(e.apps)
				return
			}
		}
		// Local miss: another engine of the experiment may already have
		// this exact solve (same resolver inputs, bit for bit).
		if e.shared != nil {
			if st, ok := e.shared.lookup(e.sharedSolveKey()); ok {
				e.memo.sharedHits++
				for i, a := range e.apps {
					a.restore(&st[i])
				}
				e.adoptSolve(small, key64, st)
				e.memo.noteVector(e.apps)
				return
			}
		}
	}
	e.resolveCores()
	e.resolveCache()
	e.resolveMemBW()
	if !memoOK {
		// A warm-up (or disabled) solve is time-dependent; the fields do
		// not represent the vector's steady-state solve.
		e.memo.lastOK = false
		return
	}
	e.memo.misses++
	st := e.memo.grab(len(e.apps))
	for i, a := range e.apps {
		st[i] = a.capture()
	}
	if e.shared != nil {
		// sharedSolveKey was built by the lookup above on this same path.
		e.shared.store(e.solveKey, st)
	}
	stored := false
	if small {
		if e.memo.entries64 == nil {
			e.memo.entries64 = make(map[uint64][]appResolve) //ahqlint:allow hotpath miss-path-only: lazily builds the table once per run
		}
		if len(e.memo.entries64) < memoMaxEntries {
			e.memo.entries64[key64] = st
			stored = true
		}
	} else {
		if e.memo.entries == nil {
			e.memo.entries = make(map[string][]appResolve) //ahqlint:allow hotpath miss-path-only: lazily builds the table once per run
		}
		if len(e.memo.entries) < memoMaxEntries {
			e.memo.entries[string(e.memo.key)] = st
			stored = true
		}
	}
	if !stored {
		e.memo.free = append(e.memo.free, st) //ahqlint:allow hotpath miss-path-only: freelist push when a full table rejects a capture
	}
	e.memo.noteVector(e.apps)
}

// adoptSolve copies a shared-cache hit into the per-engine table so
// subsequent ticks on this vector stay lock-free.
func (e *Engine) adoptSolve(small bool, key64 uint64, st []appResolve) {
	cp := e.memo.grab(len(st))
	copy(cp, st)
	if small {
		if e.memo.entries64 == nil {
			e.memo.entries64 = make(map[uint64][]appResolve) //ahqlint:allow hotpath miss-path-only: lazily builds the table once per run
		}
		if len(e.memo.entries64) < memoMaxEntries {
			e.memo.entries64[key64] = cp
			return
		}
	} else {
		if e.memo.entries == nil {
			e.memo.entries = make(map[string][]appResolve) //ahqlint:allow hotpath miss-path-only: lazily builds the table once per run
		}
		if len(e.memo.entries) < memoMaxEntries {
			e.memo.entries[string(e.memo.key)] = cp
			return
		}
	}
	e.memo.free = append(e.memo.free, cp) //ahqlint:allow hotpath miss-path-only: freelist push when a full table rejects a capture
}
