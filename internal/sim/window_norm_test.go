package sim

import (
	"math"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

func buildCoarseTickEngine(t *testing.T) *Engine {
	t.Helper()
	x := workload.MustLC("xapian")
	b := workload.MustBE("stream")
	e, err := New(Config{
		Spec:   machine.DefaultSpec(),
		Seed:   42,
		TickMs: 3,
		Apps: []AppConfig{
			{LC: &x, Load: trace.Constant(0.5)},
			{BE: &b},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestWindowRateNormalizationAtCoarseTick is the regression test for the
// window-rate fix: a 3 ms tick cannot tile a 500 ms window, so RunWindow
// actually spans 167 ticks = 501 ms, and OfferedQPS and BE IPC must be
// normalised by that actual elapsed time — not the nominal 500 ms, which
// silently inflated every rate by 0.2% at this tick. The expectation is
// built from an identically-seeded engine stepped tick by tick, whose raw
// arrival and work counters are read directly.
func TestWindowRateNormalizationAtCoarseTick(t *testing.T) {
	const ticksPerWindow = 167 // ceil(500/3 - 0.5)
	const elapsedMs = ticksPerWindow * 3.0

	ref := buildCoarseTickEngine(t)
	for i := 0; i < ticksPerWindow; i++ {
		ref.Step()
	}
	offered := ref.apps[0].offered
	if offered == 0 {
		t.Fatal("reference run offered no load; the test needs arrivals")
	}
	beWork := ref.apps[1].workWin.Snapshot()

	e := buildCoarseTickEngine(t)
	w := e.RunWindow(500)
	if got := e.NowMs(); got != elapsedMs {
		t.Fatalf("RunWindow(500) at 3 ms tick advanced to %v ms, want %v", got, elapsedMs)
	}

	wantQPS := float64(offered) / elapsedMs * 1000
	if w[0].OfferedQPS != wantQPS {
		t.Errorf("OfferedQPS = %v, want %v (offered %d over the actual %v ms)",
			w[0].OfferedQPS, wantQPS, offered, elapsedMs)
	}
	beCfg := e.apps[1].cfg.BE
	wantIPC := beCfg.SoloIPC * beWork / (float64(beCfg.Threads) * elapsedMs)
	if w[1].IPC != wantIPC {
		t.Errorf("BE IPC = %v, want %v (work %v over the actual %v ms)",
			w[1].IPC, wantIPC, beWork, elapsedMs)
	}

	// Second window: the start moves to 501 ms and the same normalisation
	// must hold relative to that start.
	for i := 0; i < ticksPerWindow; i++ {
		ref.Step()
	}
	offered2 := ref.apps[0].offered - offered
	w2 := e.RunWindow(500)
	wantQPS2 := float64(offered2) / elapsedMs * 1000
	if w2[0].OfferedQPS != wantQPS2 {
		t.Errorf("window 2 OfferedQPS = %v, want %v", w2[0].OfferedQPS, wantQPS2)
	}
}

// TestWindowStartsAreExactTickMultiples pins the integer tick window ends:
// every window boundary must land exactly on a tick, with no float guard
// drift, for ticks both dividing and not dividing the window length.
func TestWindowStartsAreExactTickMultiples(t *testing.T) {
	for _, tick := range []float64{0.5, 1, 3, 7} {
		x := workload.MustLC("xapian")
		e, err := New(Config{
			Spec:   machine.DefaultSpec(),
			Seed:   9,
			TickMs: tick,
			Apps:   []AppConfig{{LC: &x, Load: trace.Constant(0.3)}},
		})
		if err != nil {
			t.Fatal(err)
		}
		prevTicks := int64(0)
		for w := 0; w < 20; w++ {
			e.RunWindow(500)
			if e.windowStartMs != float64(prevTicks)*tick {
				t.Fatalf("tick %v window %d: start %v is not the tick multiple %v",
					tick, w, e.windowStartMs, float64(prevTicks)*tick)
			}
			k := e.windowStartMs / tick
			if k != math.Trunc(k) {
				t.Fatalf("tick %v window %d: start %v is not an exact tick multiple", tick, w, e.windowStartMs)
			}
			if e.nowMs != float64(e.tickCount)*tick {
				t.Fatalf("tick %v window %d: nowMs %v drifted from tickCount %d", tick, w, e.nowMs, e.tickCount)
			}
			prevTicks = e.tickCount
		}
	}
}
