package sim

import (
	"testing"

	"ahq/internal/machine"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

func TestContentionSnapshot(t *testing.T) {
	x := workload.MustLC("xapian")
	s := workload.MustBE("stream")
	e, err := New(Config{
		Spec: machine.DefaultSpec(),
		Seed: 2,
		Apps: []AppConfig{
			{LC: &x, Load: trace.Constant(0.5)},
			{BE: &s},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	alloc := machine.Allocation{Regions: []machine.Region{
		{Name: "iso:xapian", Kind: machine.Isolated, Cores: 4, Ways: 8, BWUnits: 4, Apps: []string{"xapian"}},
		{Name: "shared", Kind: machine.Shared, Cores: 6, Ways: 12, BWUnits: 6, Apps: []string{"stream", "xapian"}},
	}}
	if err := e.SetAllocation(alloc); err != nil {
		t.Fatal(err)
	}
	for e.NowMs() < 1_000 {
		e.Step()
	}
	snap := e.Contention()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d apps", len(snap))
	}
	xc, sc := snap[0], snap[1]
	if xc.Name != "xapian" || xc.Class != workload.LC {
		t.Errorf("first entry = %+v", xc)
	}
	if xc.IsolatedCores != 4 {
		t.Errorf("xapian isolated cores = %d", xc.IsolatedCores)
	}
	// Isolated ways are exclusive, so xapian's effective ways must be at
	// least its isolated count.
	if xc.EffectiveWays < 8 {
		t.Errorf("xapian effective ways = %.2f, want >= 8", xc.EffectiveWays)
	}
	if sc.ActiveThreads != 10 {
		t.Errorf("stream active threads = %d, want 10", sc.ActiveThreads)
	}
	if sc.TotalCoreShare <= 0 || sc.TotalCoreShare > 6+1e-9 {
		t.Errorf("stream core share = %.2f, want (0, 6]", sc.TotalCoreShare)
	}
	if sc.Slowdown < 1 {
		t.Errorf("stream slowdown = %.2f under bandwidth pressure", sc.Slowdown)
	}
}

func TestWarmupTriggersOnWayChange(t *testing.T) {
	x := workload.MustLC("xapian")
	e, err := New(Config{
		Spec: machine.DefaultSpec(),
		Seed: 3,
		Apps: []AppConfig{{LC: &x, Load: trace.Constant(0.3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for e.NowMs() < 500 {
		e.Step()
	}
	app := e.apps[0]
	if e.nowMs < app.warmupUntilMs {
		t.Fatal("warm-up active before any repartition")
	}
	// Repartition: shrink the ways xapian may touch.
	alloc := machine.Allocation{Regions: []machine.Region{{
		Name: "iso:xapian", Kind: machine.Isolated, Cores: 10, Ways: 6, BWUnits: 10,
		Apps: []string{"xapian"},
	}}}
	if err := e.SetAllocation(alloc); err != nil {
		t.Fatal(err)
	}
	if app.warmupUntilMs <= e.nowMs {
		t.Error("way change did not trigger warm-up")
	}
	// Re-applying the identical allocation is free: no new warm-up.
	until := app.warmupUntilMs
	for e.NowMs() < until+100 {
		e.Step()
	}
	if err := e.SetAllocation(alloc); err != nil {
		t.Fatal(err)
	}
	if app.warmupUntilMs > until {
		t.Error("identical allocation re-triggered warm-up")
	}
}
