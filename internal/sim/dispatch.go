package sim

// LC request dispatch. Each of an application's worker threads is a
// sequential service "slot" with its own wall clock; dispatching a request
// means finding the slot that frees up earliest (lowest clock, lowest index
// on ties). The original implementation rescanned every slot per request —
// O(queue × slots); dispatchHeap keeps the slots in an index-tie-broken
// binary min-heap over their clocks instead, so each dispatch costs
// O(log slots). Two structural facts keep the heap cheap to maintain:
//
//   - Slot rates take only two values — isolated slots run at 1/slowdown,
//     shared-region slots at sharedShare/slowdown — and the isolated slots
//     form a prefix of the slot array. When the shared rate is zero the
//     usable slots are exactly that prefix, so "slots with a usable rate"
//     is always slots [0, usable) and no per-slot rate array is needed.
//   - All clocks start the tick equal (at nowMs), so the identity
//     permutation [0, 1, …] is already a valid heap; only the slot that
//     just served a request ever moves, and only downward.
//
// dispatchLinear preserves the original scan verbatim as the reference
// implementation; TestHeapDispatchMatchesLinear drives both over
// randomized queues and slot configurations and demands identical
// completion sequences, clocks, and leftover queues.

// dispatchHeap serves a's queued requests on its slots for the tick
// [nowMs, tickEnd), completing what fits and carrying the rest.
//
//ahq:hotpath
func (a *appState) dispatchHeap(nowMs, tickEnd float64) {
	nSlots := a.threads()
	isoSlots := a.isoCores
	if isoSlots > nSlots {
		isoSlots = nSlots
	}
	rIso := a.rateIso
	rShared := a.rateShared
	usable := nSlots
	if rShared <= 0 {
		usable = isoSlots
	}
	if usable == 0 {
		// No slot can run; every request waits as-is.
		return
	}
	if usable <= smallSlotCount {
		a.dispatchSmall(nowMs, tickEnd, usable, isoSlots, rIso, rShared)
		return
	}
	if cap(a.slotClock) < usable {
		//ahqlint:allow hotpath capacity-guarded: the slot arrays grow to the widest slot count once, then are reused
		a.slotClock = make([]float64, usable)
		a.slotHeap = make([]int32, usable) //ahqlint:allow hotpath capacity-guarded: the slot arrays grow to the widest slot count once, then are reused
	}
	clocks := a.slotClock[:usable]
	h := a.slotHeap[:usable]
	for i := range clocks {
		clocks[i] = nowMs
		h[i] = int32(i)
	}
	q := a.queue
	kept := a.keptBuf[:0]
	qi := a.qHead
	for ; qi < len(q); qi++ {
		req := q[qi]
		top := h[0]
		if clocks[top] >= tickEnd {
			// Every slot is booked past the tick (start can only grow with
			// the clock), so every remaining request waits: leave the tail
			// [qi, len(q)) in place instead of walking it.
			break
		}
		start := clocks[top]
		if req.arrivalMs > start {
			start = req.arrivalMs
		}
		if req.notBefore > start {
			start = req.notBefore
		}
		if start >= tickEnd {
			// This request cannot start before the tick ends even on the
			// earliest slot; wait it out.
			kept = append(kept, req) //ahqlint:allow hotpath amortized: keptBuf reuses its backing array across ticks
			continue
		}
		rate := rIso
		if int(top) >= isoSlots {
			rate = rShared
		}
		can := (tickEnd - start) * rate
		if req.remainMs <= can {
			done := start + req.remainMs/rate
			clocks[top] = done
			a.complete(req, done)
		} else {
			req.remainMs -= can
			clocks[top] = tickEnd
			kept = append(kept, req) //ahqlint:allow hotpath amortized: keptBuf reuses its backing array across ticks
		}
		siftDown(h, clocks)
	}
	// Write the carried requests back right-aligned against the untouched
	// tail: the pending queue becomes kept ++ q[qi:] by advancing qHead,
	// without moving the tail. When nothing was carried, this is free.
	newHead := qi - len(kept)
	copy(q[newHead:qi], kept)
	a.qHead = newHead
	a.keptBuf = kept[:0]
}

// smallSlotCount is the widest slot array served by dispatchSmall's linear
// scan. Catalog applications run 4 worker threads, so virtually every
// dispatch lands here; at these widths scanning a handful of clocks held in
// a stack array beats maintaining the heap (no index array, no siftDown
// calls, no per-tick heap initialisation).
const smallSlotCount = 8

// dispatchSmall is dispatchHeap's fast path for small slot counts: the
// earliest-slot-lowest-index selection is a strict < scan over the clocks,
// which picks exactly the slot the heap's (clock, index) order would. All
// arithmetic on the chosen slot is identical, so completions, clocks and
// leftover queues match the heap and linear paths bit for bit.
func (a *appState) dispatchSmall(nowMs, tickEnd float64, usable, isoSlots int, rIso, rShared float64) {
	var clocks [smallSlotCount]float64
	for i := 0; i < usable; i++ {
		clocks[i] = nowMs
	}
	q := a.queue
	kept := a.keptBuf[:0]
	qi := a.qHead
	for ; qi < len(q); qi++ {
		top := 0
		c := clocks[0]
		for i := 1; i < usable; i++ {
			if clocks[i] < c {
				top, c = i, clocks[i]
			}
		}
		if c >= tickEnd {
			// Every slot is booked past the tick; the tail [qi, len(q))
			// waits in place.
			break
		}
		req := &q[qi]
		start := c
		if req.arrivalMs > start {
			start = req.arrivalMs
		}
		if req.notBefore > start {
			start = req.notBefore
		}
		if start >= tickEnd {
			kept = append(kept, *req) //ahqlint:allow hotpath amortized: keptBuf reuses its backing array across ticks
			continue
		}
		rate := rIso
		if top >= isoSlots {
			rate = rShared
		}
		can := (tickEnd - start) * rate
		if req.remainMs <= can {
			done := start + req.remainMs/rate
			clocks[top] = done
			a.complete(*req, done)
		} else {
			r := *req
			r.remainMs -= can
			clocks[top] = tickEnd
			kept = append(kept, r) //ahqlint:allow hotpath amortized: keptBuf reuses its backing array across ticks
		}
	}
	newHead := qi - len(kept)
	copy(q[newHead:qi], kept)
	a.qHead = newHead
	a.keptBuf = kept[:0]
}

// siftDown restores the heap property after the root slot's clock grew.
// Ordering is (clock, slot index) lexicographic, expressed with < only so
// equal clocks fall through to the index comparison.
func siftDown(h []int32, clocks []float64) {
	i := 0
	n := len(h)
	for {
		s := i
		if l := 2*i + 1; l < n && slotLess(h[l], h[s], clocks) {
			s = l
		}
		if r := 2*i + 2; r < n && slotLess(h[r], h[s], clocks) {
			s = r
		}
		if s == i {
			return
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

// slotLess orders slots by clock, breaking ties toward the lower index —
// exactly the choice the linear scan's strict < comparison made.
func slotLess(x, y int32, clocks []float64) bool {
	if clocks[x] < clocks[y] {
		return true
	}
	if clocks[y] < clocks[x] {
		return false
	}
	return x < y
}

// complete records one finished request: latency bookkeeping plus the
// closed-loop user's next-issue reschedule.
func (a *appState) complete(req request, done float64) {
	lat := done - req.arrivalMs
	a.latWin.Observe(lat)
	a.runLat = append(a.runLat, lat) //ahqlint:allow hotpath amortized: the run-level accumulator grows toward the run length once
	if req.user >= 0 && req.user < len(a.nextIssue) {
		// Closed loop: the user thinks, then reissues.
		a.nextIssue[req.user] = done + a.rng.ExpFloat64()*a.thinkMean()
	}
}

// dispatchLinear is the pre-heap dispatcher, kept verbatim as the reference
// for the differential test: for each request, rescan every slot for the
// earliest one with a usable rate.
func (a *appState) dispatchLinear(nowMs, tickEnd float64) {
	nSlots := a.threads()
	clocks := make([]float64, nSlots)
	rates := make([]float64, nSlots)
	isoSlots := a.isoCores
	if isoSlots > nSlots {
		isoSlots = nSlots
	}
	for i := 0; i < nSlots; i++ {
		clocks[i] = nowMs
		speed := a.sharedShare
		if i < isoSlots {
			speed = 1
		}
		rates[i] = speed / a.slowdown // work per wall-clock ms
	}
	q := a.pending()
	kept := q[:0]
	for _, req := range q {
		// Earliest-available slot with a usable rate.
		slot := -1
		for i := 0; i < nSlots; i++ {
			if rates[i] <= 0 {
				continue
			}
			if slot == -1 || clocks[i] < clocks[slot] {
				slot = i
			}
		}
		if slot == -1 {
			kept = append(kept, req)
			continue
		}
		start := clocks[slot]
		if req.arrivalMs > start {
			start = req.arrivalMs
		}
		if req.notBefore > start {
			start = req.notBefore
		}
		if start >= tickEnd {
			kept = append(kept, req)
			continue
		}
		can := (tickEnd - start) * rates[slot]
		if req.remainMs <= can {
			done := start + req.remainMs/rates[slot]
			clocks[slot] = done
			a.complete(req, done)
			continue
		}
		req.remainMs -= can
		clocks[slot] = tickEnd
		kept = append(kept, req)
	}
	a.queue = a.queue[:a.qHead+len(kept)]
}
