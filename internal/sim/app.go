package sim

import (
	"math"
	"math/rand"

	"ahq/internal/metrics"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

// AppConfig attaches a workload model to the simulated node. Exactly one of
// LC or BE must be set; Load drives an LC application's offered load and is
// ignored for BE applications.
//
// Setting ClosedLoopUsers switches the LC application from the default
// open-loop Poisson source to Tailbench's closed-loop mode: that many
// emulated users each issue one request, wait for its completion, think
// for an exponential time with mean ThinkTimeMs, and repeat. Load is
// ignored in closed-loop mode.
type AppConfig struct {
	LC   *workload.LCApp
	BE   *workload.BEApp
	Load trace.Load
	// ClosedLoopUsers enables closed-loop load with that many users.
	ClosedLoopUsers int
	// ThinkTimeMs is the closed-loop mean think time (0 means 10x the
	// service mean, a moderate per-user duty cycle).
	ThinkTimeMs float64
}

// Name returns the configured application's name.
func (c AppConfig) Name() string {
	if c.LC != nil {
		return c.LC.Name
	}
	if c.BE != nil {
		return c.BE.Name
	}
	return ""
}

// Class returns the configured application's class.
func (c AppConfig) Class() workload.Class {
	if c.LC != nil {
		return workload.LC
	}
	return workload.BE
}

// arrivalKind classifies an application's arrival process for the
// event-driven clock (engine.go: nextEventTick): what, if anything, the
// process could deposit into a future tick, and whether proving a tick
// arrival-free requires consuming randomness.
type arrivalKind uint8

const (
	// arrivalsNone never deposits requests: BE applications, and LC
	// applications over a provably always-zero load profile.
	arrivalsNone arrivalKind = iota
	// arrivalsEveryTick draws from the arrival stream every tick (open
	// loop under a load that is, or may be, positive at any instant), so
	// no tick can be elided without changing the random stream.
	arrivalsEveryTick
	// arrivalsSparse is open loop over a trace.SparseLoad profile: the
	// profile can prove stretches of zero load during which no draw
	// happens.
	arrivalsSparse
	// arrivalsClosedLoop issues requests at the users' known next-issue
	// times and consumes randomness only when one fires.
	arrivalsClosedLoop
)

// request is one in-flight LC request.
type request struct {
	arrivalMs float64
	remainMs  float64 // outstanding service demand at solo speed
	notBefore float64 // earliest dispatch time (CFS wakeup delay)
	user      int     // closed-loop user index, or -1 for open loop
}

// appState is the runtime state of one application inside the engine.
type appState struct {
	cfg   AppConfig
	name  string
	class workload.Class
	rng   *rand.Rand
	// arrivals is the arrival-process classification, fixed at construction.
	arrivals arrivalKind

	// LC state. The waiting requests are queue[qHead:]: dispatch consumes
	// from the front by advancing qHead instead of compacting the slice, so
	// a tick that completes a few head requests of a deep backlog does not
	// memmove the whole tail (see dispatchHeap). arrive re-normalises the
	// backing array once the dispatched prefix dominates it, which keeps the
	// memory bounded at amortised O(1) moves per request.
	queue   []request
	qHead   int
	offered int // arrivals this window, including drops
	latWin  metrics.LatencyWindow
	// nextIssue holds each closed-loop user's next request time (empty
	// in open-loop mode).
	nextIssue []float64
	// runLat accumulates latencies across windows for run-level
	// percentiles (reset by Engine.ResetRunStats).
	runLat []float64

	// BE state.
	workWin metrics.WorkWindow
	// runWork and runMs accumulate BE work across windows.
	runWork float64
	runMs   float64

	// Per-tick contention scratch, recomputed by the engine.
	activeThreads  int
	isoCores       int
	isoShare       float64 // per-thread share on isolated cores (0 or 1)
	sharedThreads  int
	sharedShare    float64 // per-thread share in shared regions
	sharedCrowded  bool    // region timeshared at all
	sharedPolluted bool    // region timeshared with foreign threads
	totalCoreShare float64 // sum of all thread shares this tick
	isoWays        float64
	effWays        float64
	slowdown       float64
	dispatchDelay  float64 // CFS wakeup delay applied to new arrivals
	// rateIso and rateShared are the dispatch slot rates 1/slowdown and
	// sharedShare/slowdown, divided once per solve instead of once per
	// dispatch call (the divisions are the same ones dispatch used to do,
	// so the rates are bit-identical).
	rateIso    float64
	rateShared float64

	// Warm-up tracking after repartitioning.
	lastWays       float64
	warmupUntilMs  float64
	warmupStartMs  float64
	haveAllocation bool

	// refMiss and cacheDenom are tick-invariant slowdown inputs — the miss
	// ratio at the reference way count and the cache-factor denominator it
	// induces — precomputed at engine construction (see resolveMemBW).
	refMiss    float64
	cacheDenom float64
	// svcMu is the LC service distribution's log-normal mu, precomputed so
	// sampleService does not pay a math.Log per draw.
	svcMu float64

	// Reusable per-tick service-slot scratch (see dispatch.go).
	slotClock []float64
	slotHeap  []int32

	// pLambdaBits/pExpNegLambda cache exp(-lambda) for the Poisson arrival
	// draw across ticks (see poissonDraw).
	pLambdaBits   uint64
	pExpNegLambda float64

	// keptBuf is dispatchHeap's scratch for requests served partially this
	// tick, reused across ticks.
	keptBuf []request
}

// pending returns the requests waiting for service, oldest dispatch
// position first.
func (a *appState) pending() []request { return a.queue[a.qHead:] }

// pendingLen returns how many requests are waiting for service.
func (a *appState) pendingLen() int { return len(a.queue) - a.qHead }

func newAppState(cfg AppConfig, seed int64) *appState {
	a := &appState{
		cfg:   cfg,
		name:  cfg.Name(),
		class: cfg.Class(),
		rng:   rand.New(rand.NewSource(seed)),
	}
	if cfg.LC != nil {
		a.svcMu = cfg.LC.ServiceMu()
	}
	a.arrivals = classifyArrivals(cfg)
	return a
}

// classifyArrivals derives an application's arrivalKind from its
// configuration. A positive constant load draws every tick, so it pins the
// whole engine to naive ticking; a zero constant never offers load at all.
// Unknown Load implementations that cannot prove zero stretches are treated
// as possibly positive at every instant.
func classifyArrivals(cfg AppConfig) arrivalKind {
	if cfg.LC == nil {
		return arrivalsNone
	}
	if cfg.ClosedLoopUsers > 0 {
		return arrivalsClosedLoop
	}
	switch ld := cfg.Load.(type) {
	case nil:
		return arrivalsNone
	case trace.Constant:
		if ld <= 0 {
			return arrivalsNone
		}
		return arrivalsEveryTick
	default:
		if _, ok := cfg.Load.(trace.SparseLoad); ok {
			return arrivalsSparse
		}
		return arrivalsEveryTick
	}
}

// threads returns the application's worker/compute thread count.
func (a *appState) threads() int {
	if a.cfg.LC != nil {
		return a.cfg.LC.Threads
	}
	return a.cfg.BE.Threads
}

// cache returns the application's miss-ratio curve.
func (a *appState) cache() workload.CacheProfile {
	if a.cfg.LC != nil {
		return a.cfg.LC.Cache
	}
	return a.cfg.BE.Cache
}

// sens returns the application's sensitivity parameters.
func (a *appState) sens() workload.Sensitivity {
	if a.cfg.LC != nil {
		return a.cfg.LC.Sens
	}
	return a.cfg.BE.Sens
}

// runnableThreads returns how many threads want a core this tick.
func (a *appState) runnableThreads() int {
	if a.class == workload.BE {
		return a.threads()
	}
	n := a.pendingLen()
	if t := a.threads(); n > t {
		n = t
	}
	return n
}

// sampleService draws one request's service demand (solo-speed core-ms):
// a log-normal base multiplied by the Zipfian content factor when the
// application has a term mix.
func (a *appState) sampleService() float64 {
	lc := a.cfg.LC
	demand := lc.ServiceMeanMs
	if lc.ServiceSigma > 0 {
		demand = math.Exp(a.svcMu + lc.ServiceSigma*a.rng.NormFloat64())
	}
	if lc.Terms != nil {
		demand *= lc.Terms.Sample(a.rng)
	}
	return demand
}

// thinkMean returns the closed-loop mean think time.
func (a *appState) thinkMean() float64 {
	if a.cfg.ThinkTimeMs > 0 {
		return a.cfg.ThinkTimeMs
	}
	return 10 * a.cfg.LC.ServiceMeanMs
}

// arrive admits arrivals for the tick [now, now+dt). In open-loop mode the
// count is Poisson with the trace's current rate, and arrivals beyond the
// client queue cap are dropped (finite connection pool backpressure). In
// closed-loop mode each emulated user whose think time has elapsed issues
// its next request.
func (a *appState) arrive(nowMs, dtMs float64) {
	lc := a.cfg.LC
	if lc == nil {
		return
	}
	if a.qHead > 0 && 2*a.qHead >= len(a.queue) {
		// The dispatched prefix dominates the backing array; slide the
		// waiting requests back to the front before appending more.
		n := copy(a.queue, a.queue[a.qHead:])
		a.queue = a.queue[:n]
		a.qHead = 0
	}
	if a.cfg.ClosedLoopUsers > 0 {
		if a.nextIssue == nil {
			//ahqlint:allow hotpath first-tick-only: seeds the closed-loop users once per run
			a.nextIssue = make([]float64, a.cfg.ClosedLoopUsers)
			for u := range a.nextIssue {
				// Stagger the first round across one think period.
				a.nextIssue[u] = a.rng.Float64() * a.thinkMean()
			}
		}
		for u, t := range a.nextIssue {
			if t < nowMs+dtMs && t >= 0 {
				a.offered++
				at := t
				if at < nowMs {
					at = nowMs
				}
				//ahqlint:allow hotpath amortized: the queue's backing array is reused across ticks (qHead compaction)
				a.queue = append(a.queue, request{
					arrivalMs: at,
					remainMs:  a.sampleService(),
					notBefore: at + a.dispatchDelay*a.rng.Float64(),
					user:      u,
				})
				a.nextIssue[u] = -1 // outstanding; rescheduled on completion
			}
		}
		return
	}
	if a.cfg.Load == nil {
		return
	}
	frac := a.cfg.Load.At(nowMs)
	if frac <= 0 {
		return
	}
	lambda := frac * lc.MaxLoadQPS / 1000 * dtMs // expected arrivals this tick
	n := a.poissonDraw(lambda)
	if n == 0 {
		return
	}
	a.offered += n
	for i := 0; i < n; i++ {
		if a.pendingLen() >= lc.ClientQueueCap {
			a.latWin.Drop()
			continue
		}
		at := nowMs + a.rng.Float64()*dtMs
		//ahqlint:allow hotpath amortized: the queue's backing array is reused across ticks (qHead compaction)
		a.queue = append(a.queue, request{
			arrivalMs: at,
			remainMs:  a.sampleService(),
			notBefore: at + a.dispatchDelay*a.rng.Float64(),
			user:      -1,
		})
	}
}

// oldestAgeMs returns the age of the oldest waiting request, or NaN if
// idle. The queue is not sorted by arrival time — same-tick arrivals are
// appended in draw order (open loop) or user order (closed loop) — so the
// head of the queue is not necessarily the oldest; scan for the minimum.
func (a *appState) oldestAgeMs(nowMs float64) float64 {
	q := a.pending()
	if len(q) == 0 {
		return math.NaN()
	}
	oldest := q[0].arrivalMs
	for _, r := range q[1:] {
		if r.arrivalMs < oldest {
			oldest = r.arrivalMs
		}
	}
	return nowMs - oldest
}

// poissonDraw draws from the application's arrival stream. It is poisson
// with one addition: exp(-lambda) is cached across ticks, keyed on
// lambda's exact bit pattern, because under a constant or slowly varying
// load trace lambda repeats every tick and that exponential is the
// draw's only transcendental. Any real change in lambda recomputes, so
// the draw is bit-identical to the uncached form.
func (a *appState) poissonDraw(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		return poissonNormal(a.rng, lambda)
	}
	if bits := math.Float64bits(lambda); bits != a.pLambdaBits {
		a.pLambdaBits = bits
		a.pExpNegLambda = math.Exp(-lambda)
	}
	return poissonKnuth(a.rng, a.pExpNegLambda)
}

// poisson draws a Poisson variate. Tick-level means here are small (a few
// arrivals per ms at most), so Knuth's method with a normal fallback for
// large means is plenty.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		return poissonNormal(rng, lambda)
	}
	return poissonKnuth(rng, math.Exp(-lambda))
}

// poissonNormal is the large-mean normal approximation with continuity
// correction.
func poissonNormal(rng *rand.Rand, lambda float64) int {
	n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
	if n < 0 {
		return 0
	}
	return n
}

// poissonKnuth is Knuth's multiplication method given l = exp(-lambda).
func poissonKnuth(rng *rand.Rand, l float64) int {
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
