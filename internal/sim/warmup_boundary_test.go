package sim

import (
	"testing"

	"ahq/internal/machine"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

// TestWarmupBoundaryOneWay pins the wayChangeEpsilon boundary: shrinking
// an application's way entitlement by exactly one way (a delta equal to
// the epsilon) re-triggers cache warm-up, while a repartition that
// reshuffles regions but preserves the total entitlement does not.
func TestWarmupBoundaryOneWay(t *testing.T) {
	x := workload.MustLC("xapian")
	e, err := New(Config{
		Spec: machine.DefaultSpec(),
		Seed: 3,
		Apps: []AppConfig{{LC: &x, Load: trace.Constant(0.3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	app := e.apps[0]

	iso := func(ways int) machine.Allocation {
		return machine.Allocation{Regions: []machine.Region{{
			Name: "iso:xapian", Kind: machine.Isolated, Cores: 10, Ways: ways, BWUnits: 10,
			Apps: []string{"xapian"},
		}}}
	}

	settle := func() {
		for end := app.warmupUntilMs + 100; e.NowMs() < end; {
			e.Step()
		}
	}

	if err := e.SetAllocation(iso(6)); err != nil {
		t.Fatal(err)
	}
	settle()

	// Delta of exactly one way — the epsilon itself — must re-warm.
	if err := e.SetAllocation(iso(5)); err != nil {
		t.Fatal(err)
	}
	if app.warmupUntilMs <= e.nowMs {
		t.Errorf("one-way entitlement change (delta == wayChangeEpsilon = %v) did not trigger warm-up", wayChangeEpsilon)
	}
	settle()

	// Reshuffle: 2 isolated + 3 shared ways keeps the entitlement at 5.
	// The partitioning changed but the delta is 0 < wayChangeEpsilon, so
	// no new warm-up may start.
	split := machine.Allocation{Regions: []machine.Region{
		{Name: "iso:xapian", Kind: machine.Isolated, Cores: 5, Ways: 2, BWUnits: 5,
			Apps: []string{"xapian"}},
		{Name: "shared", Kind: machine.Shared, Cores: 5, Ways: 3, BWUnits: 5,
			Policy: machine.FairShare, Apps: []string{"xapian"}},
	}}
	before := app.warmupUntilMs
	if err := e.SetAllocation(split); err != nil {
		t.Fatal(err)
	}
	if app.warmupUntilMs != before {
		t.Errorf("entitlement-preserving reshuffle re-triggered warm-up (until %v -> %v)",
			before, app.warmupUntilMs)
	}
}
