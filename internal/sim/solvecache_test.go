package sim

import (
	"sync"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

func solveCacheMix(t *testing.T, shared *SolveCache) *Engine {
	t.Helper()
	x, m := workload.MustLC("xapian"), workload.MustLC("moses")
	b := workload.MustBE("stream")
	e, err := New(Config{
		Spec: machine.DefaultSpec(),
		Seed: 11,
		Apps: []AppConfig{
			{LC: &x, Load: trace.Constant(0.4)},
			{LC: &m, Load: trace.Constant(0.2)},
			{BE: &b},
		},
		SharedSolves: shared,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func driveAndCollect(e *Engine, horizonMs float64) []float64 {
	for e.NowMs() < horizonMs {
		e.RunWindow(500)
	}
	return e.apps[0].runLat
}

// TestSharedSolveCacheIsBitExact: an engine backed by the cross-engine
// solve cache — including one that adopts every solve another engine
// already computed — must produce bit-identical latencies to an isolated
// engine. The second engine must actually hit the shared cache (otherwise
// the equivalence holds vacuously).
func TestSharedSolveCacheIsBitExact(t *testing.T) {
	isolated := driveAndCollect(solveCacheMix(t, nil), 4_000)

	cache := NewSolveCache()
	first := solveCacheMix(t, cache)
	firstLat := driveAndCollect(first, 4_000)
	second := solveCacheMix(t, cache)
	secondLat := driveAndCollect(second, 4_000)

	if cache.Len() == 0 {
		t.Fatal("shared cache stayed empty")
	}
	if second.memo.sharedHits == 0 {
		t.Fatal("second engine never hit the shared cache")
	}
	for name, lat := range map[string][]float64{"first": firstLat, "second": secondLat} {
		if len(lat) != len(isolated) {
			t.Fatalf("%s engine: %d completions vs %d isolated", name, len(lat), len(isolated))
		}
		for i := range lat {
			if lat[i] != isolated[i] {
				t.Fatalf("%s engine: latency %d is %v, isolated %v", name, i, lat[i], isolated[i])
			}
		}
	}
}

// TestSharedSolveCacheConcurrent hammers one cache from many engines at
// once (the sweep-pool shape); under -race this doubles as the data-race
// gate, and every engine must still match the isolated baseline exactly.
func TestSharedSolveCacheConcurrent(t *testing.T) {
	isolated := driveAndCollect(solveCacheMix(t, nil), 3_000)

	cache := NewSolveCache()
	const workers = 8
	results := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = driveAndCollect(solveCacheMix(t, cache), 3_000)
		}(w)
	}
	wg.Wait()
	for w, lat := range results {
		if len(lat) != len(isolated) {
			t.Fatalf("worker %d: %d completions vs %d isolated", w, len(lat), len(isolated))
		}
		for i := range lat {
			if lat[i] != isolated[i] {
				t.Fatalf("worker %d: latency %d is %v, isolated %v", w, i, lat[i], isolated[i])
			}
		}
	}
}

// TestSolveCacheBounded: a shard that is full stops accepting inserts
// instead of evicting or growing without limit.
func TestSolveCacheBounded(t *testing.T) {
	c := NewSolveCache()
	vals := []appResolve{{slowdown: 1}}
	key := make([]byte, 8)
	for i := 0; i < solveShards*solveShardMaxEntries*2; i++ {
		for j := 0; j < 8; j++ {
			key[j] = byte(i >> (8 * j))
		}
		c.store(key, vals)
	}
	if got, max := c.Len(), solveShards*solveShardMaxEntries; got > max {
		t.Fatalf("cache grew to %d entries, bound is %d", got, max)
	}
	if c.Len() == 0 {
		t.Fatal("cache stored nothing")
	}
}
