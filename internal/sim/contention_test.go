package sim

import (
	"math"
	"testing"
	"testing/quick"

	"ahq/internal/machine"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

// mixEngine builds the paper's standard 3 LC + 1 BE mix.
func mixEngine(t *testing.T, spec machine.Spec, be string, loads [3]float64, seed int64) *Engine {
	t.Helper()
	x, m, i := workload.MustLC("xapian"), workload.MustLC("moses"), workload.MustLC("img-dnn")
	b := workload.MustBE(be)
	e, err := New(Config{
		Spec: spec,
		Seed: seed,
		Apps: []AppConfig{
			{LC: &x, Load: trace.Constant(loads[0])},
			{LC: &m, Load: trace.Constant(loads[1])},
			{LC: &i, Load: trace.Constant(loads[2])},
			{BE: &b},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// measure runs warm-up plus a horizon and returns (xapian p95, BE IPC).
func measure(e *Engine, beName string) (float64, float64) {
	for e.NowMs() < 3_000 {
		e.RunWindow(500)
	}
	e.ResetRunStats()
	for e.NowMs() < 15_000 {
		e.RunWindow(500)
	}
	return e.RunP95("xapian"), e.RunIPC(beName)
}

func TestStreamInterferesMoreThanFluidanimate(t *testing.T) {
	// The Fig. 8 vs Fig. 9 contrast: under full sharing, STREAM (10
	// threads, no cache reuse, bandwidth-bound) must hurt the LC tail
	// more than Fluidanimate.
	spec := machine.DefaultSpec()
	pFluid, _ := measure(mixEngine(t, spec, "fluidanimate", [3]float64{0.3, 0.2, 0.2}, 11), "fluidanimate")
	pStream, _ := measure(mixEngine(t, spec, "stream", [3]float64{0.3, 0.2, 0.2}, 11), "stream")
	if pStream <= pFluid {
		t.Errorf("stream p95 %.2f <= fluidanimate p95 %.2f; severe interference missing", pStream, pFluid)
	}
}

func TestIsolationProtectsAgainstStream(t *testing.T) {
	// Partitioning xapian away from STREAM must cut its tail latency
	// versus full sharing — the premise of every isolation strategy.
	spec := machine.DefaultSpec()
	shared := mixEngine(t, spec, "stream", [3]float64{0.5, 0.2, 0.2}, 13)
	pShared, _ := measure(shared, "stream")

	iso := mixEngine(t, spec, "stream", [3]float64{0.5, 0.2, 0.2}, 13)
	alloc := machine.Allocation{Regions: []machine.Region{
		{Name: "iso:xapian", Kind: machine.Isolated, Cores: 4, Ways: 8, BWUnits: 3, Apps: []string{"xapian"}},
		{Name: "shared", Kind: machine.Shared, Policy: machine.LCPriority, Cores: 6, Ways: 12, BWUnits: 7,
			Apps: []string{"img-dnn", "moses", "stream"}},
	}}
	if err := iso.SetAllocation(alloc); err != nil {
		t.Fatal(err)
	}
	pIso, _ := measure(iso, "stream")
	if pIso >= pShared {
		t.Errorf("isolated p95 %.2f >= shared p95 %.2f; CAT partitioning has no effect", pIso, pShared)
	}
}

func TestLCPrioritySharingBeatsFairForLC(t *testing.T) {
	// LC-first's premise: priority in the shared region cuts LC latency
	// relative to CFS, at the BE application's expense.
	spec := machine.DefaultSpec().Shrink(6, 20)
	fair := mixEngine(t, spec, "fluidanimate", [3]float64{0.3, 0.2, 0.2}, 17)
	pFair, ipcFair := measure(fair, "fluidanimate")

	prio := mixEngine(t, spec, "fluidanimate", [3]float64{0.3, 0.2, 0.2}, 17)
	if err := prio.SetAllocation(machine.AllShared(spec, machine.LCPriority, prio.AppNames())); err != nil {
		t.Fatal(err)
	}
	pPrio, ipcPrio := measure(prio, "fluidanimate")
	if pPrio >= pFair {
		t.Errorf("LC-priority p95 %.2f >= fair p95 %.2f", pPrio, pFair)
	}
	if ipcPrio >= ipcFair {
		t.Errorf("LC-priority BE IPC %.2f >= fair %.2f; priority should cost BE", ipcPrio, ipcFair)
	}
}

func TestMoreWaysHelpCacheSensitiveApp(t *testing.T) {
	// Growing img-dnn's isolated ways (at fixed cores) must not hurt,
	// and should help substantially from 1 way to 10.
	spec := machine.DefaultSpec()
	p95 := func(ways int) float64 {
		e := mixEngine(t, spec, "stream", [3]float64{0.2, 0.2, 0.5}, 23)
		alloc := machine.Allocation{Regions: []machine.Region{
			{Name: "iso:img-dnn", Kind: machine.Isolated, Cores: 3, Ways: ways, BWUnits: 3, Apps: []string{"img-dnn"}},
			{Name: "shared", Kind: machine.Shared, Policy: machine.LCPriority, Cores: 7, Ways: spec.LLCWays - ways, BWUnits: 7,
				Apps: []string{"moses", "stream", "xapian"}},
		}}
		if err := e.SetAllocation(alloc); err != nil {
			t.Fatal(err)
		}
		for e.NowMs() < 3_000 {
			e.RunWindow(500)
		}
		e.ResetRunStats()
		for e.NowMs() < 12_000 {
			e.RunWindow(500)
		}
		return e.RunP95("img-dnn")
	}
	narrow, wide := p95(1), p95(10)
	if wide >= narrow {
		t.Errorf("img-dnn p95 with 10 ways (%.2f) >= with 1 way (%.2f)", wide, narrow)
	}
}

func TestMemBWSaturationSlowsVictim(t *testing.T) {
	// Shrinking the node's memory bandwidth with STREAM present must
	// slow the bandwidth-sensitive LC applications.
	wide := machine.DefaultSpec()
	narrow := wide
	narrow.MemBWGBps = 15
	pWide, _ := measure(mixEngine(t, wide, "stream", [3]float64{0.4, 0.2, 0.2}, 29), "stream")
	pNarrow, _ := measure(mixEngine(t, narrow, "stream", [3]float64{0.4, 0.2, 0.2}, 29), "stream")
	if pNarrow <= pWide {
		t.Errorf("p95 with 15 GB/s (%.2f) <= with 40 GB/s (%.2f)", pNarrow, pWide)
	}
}

func TestRepartitionWarmupCostsLatency(t *testing.T) {
	// Flip the way partition every epoch: the warm-up penalty must make
	// the flapping configuration worse than the stable one.
	spec := machine.DefaultSpec()
	allocA := machine.Allocation{Regions: []machine.Region{
		{Name: "iso:xapian", Kind: machine.Isolated, Cores: 4, Ways: 10, BWUnits: 5, Apps: []string{"xapian"}},
		{Name: "shared", Kind: machine.Shared, Policy: machine.LCPriority, Cores: 6, Ways: 10, BWUnits: 5,
			Apps: []string{"img-dnn", "moses", "stream"}},
	}}
	allocB := allocA.Clone()
	allocB.Regions[0].Ways = 4
	allocB.Regions[1].Ways = 16

	runWith := func(flap bool) float64 {
		e := mixEngine(t, spec, "stream", [3]float64{0.5, 0.2, 0.2}, 31)
		if err := e.SetAllocation(allocA); err != nil {
			t.Fatal(err)
		}
		for e.NowMs() < 2_000 {
			e.RunWindow(500)
		}
		e.ResetRunStats()
		i := 0
		for e.NowMs() < 12_000 {
			e.RunWindow(500)
			if flap {
				i++
				next := allocA
				if i%2 == 1 {
					next = allocB
				}
				if err := e.SetAllocation(next); err != nil {
					t.Fatal(err)
				}
			}
		}
		return e.RunP95("xapian")
	}
	stable, flapping := runWith(false), runWith(true)
	if flapping <= stable {
		t.Errorf("flapping p95 %.2f <= stable p95 %.2f; repartition cost missing", flapping, stable)
	}
}

func TestPoissonProperties(t *testing.T) {
	f := func(seed int64, lamRaw uint16) bool {
		lam := float64(lamRaw%5000) / 100 // [0, 50)
		e := newAppState(AppConfig{}, seed)
		n := 10_000
		sum := 0
		for i := 0; i < n; i++ {
			k := poisson(e.rng, lam)
			if k < 0 {
				return false
			}
			sum += k
		}
		if lam == 0 {
			return sum == 0
		}
		mean := float64(sum) / float64(n)
		return math.Abs(mean-lam) < math.Max(0.2, lam*0.1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCacheOccupancyConserved(t *testing.T) {
	// After resolveCache, the members' shared-way shares must sum to the
	// region's ways (no cache is created or destroyed).
	e := mixEngine(t, machine.DefaultSpec(), "stream", [3]float64{0.5, 0.5, 0.5}, 37)
	for e.NowMs() < 1_000 {
		e.Step()
	}
	totalIso := 0.0
	totalEff := 0.0
	active := 0
	for _, a := range e.apps {
		totalEff += a.effWays
		totalIso += a.isoWays
		if a.activeThreads > 0 {
			active++
		}
	}
	if active < 2 {
		t.Skip("not enough active apps this tick")
	}
	if totalEff > float64(e.spec.LLCWays)+1e-6 {
		t.Errorf("effective ways sum %.3f exceeds node ways %d", totalEff, e.spec.LLCWays)
	}
}
