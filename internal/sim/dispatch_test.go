package sim

import (
	"math"
	"math/rand"
	"testing"

	"ahq/internal/workload"
)

// deriveRates mirrors resolveMemBW's slot-rate precomputation for the
// hand-built contention snapshots below: the dispatchers consume the
// resolver-owned rateIso/rateShared fields, never the raw slowdown.
func (a *appState) deriveRates() {
	a.rateIso = 1 / a.slowdown
	a.rateShared = a.sharedShare / a.slowdown
}

// dispatchApp builds an appState with a randomized contention snapshot and
// request queue, ready to dispatch one tick. Every draw comes from rng, so
// two calls with identically seeded sources produce identical states.
func dispatchApp(rng *rand.Rand, nowMs float64) *appState {
	lc := workload.MustLC("xapian")
	a := newAppState(AppConfig{LC: &lc}, 1)
	// Randomize the slot configuration across the interesting shapes:
	// iso-only (shared share zero), shared-only, mixed, and more isolated
	// cores than threads.
	a.isoCores = rng.Intn(lc.Threads + 3)
	a.slowdown = 1 + 3*rng.Float64()
	switch rng.Intn(3) {
	case 0:
		a.sharedShare = 0
	default:
		a.sharedShare = rng.Float64()
	}
	a.deriveRates()
	n := rng.Intn(24)
	for i := 0; i < n; i++ {
		at := nowMs - 3*rng.Float64() // some backlog, some fresh
		a.queue = append(a.queue, request{
			arrivalMs: at,
			remainMs:  0.05 + 2.5*rng.Float64(),
			notBefore: at + 0.4*rng.Float64(),
			user:      -1,
		})
	}
	return a
}

// TestHeapDispatchMatchesLinear drives the heap dispatcher and the original
// linear scan over randomized queues and slot configurations and demands
// identical completion sequences (latency by latency, bit for bit) and
// identical leftover queues.
func TestHeapDispatchMatchesLinear(t *testing.T) {
	for trial := 0; trial < 2000; trial++ {
		seed := int64(trial + 1)
		nowMs := float64(trial % 7)
		h := dispatchApp(rand.New(rand.NewSource(seed)), nowMs)
		l := dispatchApp(rand.New(rand.NewSource(seed)), nowMs)
		tickEnd := nowMs + 1

		h.dispatchHeap(nowMs, tickEnd)
		l.dispatchLinear(nowMs, tickEnd)

		if len(h.runLat) != len(l.runLat) {
			t.Fatalf("trial %d: heap completed %d requests, linear %d",
				trial, len(h.runLat), len(l.runLat))
		}
		for i := range h.runLat {
			if h.runLat[i] != l.runLat[i] {
				t.Fatalf("trial %d: completion %d latency %v (heap) != %v (linear)",
					trial, i, h.runLat[i], l.runLat[i])
			}
		}
		hq, lq := h.pending(), l.pending()
		if len(hq) != len(lq) {
			t.Fatalf("trial %d: heap kept %d requests, linear kept %d",
				trial, len(hq), len(lq))
		}
		for i := range hq {
			if hq[i] != lq[i] {
				t.Fatalf("trial %d: kept request %d differs: %+v (heap) != %+v (linear)",
					trial, i, hq[i], lq[i])
			}
		}
	}
}

// TestHeapDispatchClosedLoopReschedules pins the closed-loop path through
// the heap dispatcher: completions must consume identical rng draws and
// produce identical next-issue times in both implementations.
func TestHeapDispatchClosedLoopReschedules(t *testing.T) {
	build := func() *appState {
		lc := workload.MustLC("xapian")
		a := newAppState(AppConfig{LC: &lc, ClosedLoopUsers: 6}, 42)
		a.isoCores = 2
		a.slowdown = 1.5
		a.sharedShare = 0.6
		a.deriveRates()
		a.nextIssue = make([]float64, 6)
		for u := 0; u < 6; u++ {
			a.queue = append(a.queue, request{
				arrivalMs: float64(u) * 0.1,
				remainMs:  0.3 + 0.2*float64(u),
				user:      u,
			})
			a.nextIssue[u] = -1
		}
		return a
	}
	h, l := build(), build()
	h.dispatchHeap(0, 1)
	l.dispatchLinear(0, 1)
	for u := range h.nextIssue {
		if h.nextIssue[u] != l.nextIssue[u] {
			t.Fatalf("user %d: next issue %v (heap) != %v (linear)",
				u, h.nextIssue[u], l.nextIssue[u])
		}
	}
}

// TestOldestAgeMsScansWholeQueue is the regression test for the starved-app
// latency bound: same-tick arrivals are appended in draw order, so the head
// of the queue is not necessarily the oldest request.
func TestOldestAgeMsScansWholeQueue(t *testing.T) {
	lc := workload.MustLC("xapian")
	a := newAppState(AppConfig{LC: &lc}, 1)
	a.queue = []request{
		{arrivalMs: 10.7},
		{arrivalMs: 10.2}, // older than the head
		{arrivalMs: 10.9},
	}
	if got, want := a.oldestAgeMs(20), 20-10.2; got != want {
		t.Errorf("oldestAgeMs = %v, want %v (the queue minimum, not the head)", got, want)
	}
	// The head index must not hide dispatched entries' successors.
	a.qHead = 1
	if got, want := a.oldestAgeMs(20), 20-10.2; got != want {
		t.Errorf("oldestAgeMs with qHead=1 = %v, want %v", got, want)
	}
	a.queue = a.queue[:0]
	a.qHead = 0
	if got := a.oldestAgeMs(20); !math.IsNaN(got) {
		t.Errorf("oldestAgeMs on empty queue = %v, want NaN", got)
	}
}

// TestQueueHeadCompaction pins the head-indexed queue's invariants: pending
// order survives dispatch-and-refill cycles and the backing array is
// re-normalised once the dispatched prefix dominates.
func TestQueueHeadCompaction(t *testing.T) {
	lc := workload.MustLC("xapian")
	lc.ServiceSigma = 0
	lc.Terms = nil
	a := newAppState(AppConfig{LC: &lc}, 1)
	a.isoCores = 1
	a.slowdown = 1
	a.deriveRates()
	// 8 requests of 1 ms each on one slot: each tick completes exactly one.
	for i := 0; i < 8; i++ {
		a.queue = append(a.queue, request{arrivalMs: 0, remainMs: 1, user: -1})
	}
	for tick := 0; tick < 8; tick++ {
		now := float64(tick)
		a.arrive(now, 1) // no load trace: only runs the compaction step
		wantLen := 8 - tick
		if got := a.pendingLen(); got != wantLen {
			t.Fatalf("tick %d: pendingLen = %d, want %d", tick, got, wantLen)
		}
		if 2*a.qHead >= len(a.queue) && a.qHead != 0 {
			t.Fatalf("tick %d: compaction missed: qHead=%d len=%d", tick, a.qHead, len(a.queue))
		}
		a.dispatchHeap(now, now+1)
	}
	if a.pendingLen() != 0 {
		t.Fatalf("queue not drained: %d pending", a.pendingLen())
	}
}

// TestHeapDispatchNotBeforeStraddlesTick pins the boundary the dispatch
// delay creates: requests whose earliest-dispatch time lands exactly on,
// one ulp before, or one ulp after a tick boundary must be dispatched (or
// held) identically by the heap and linear dispatchers — across the tick
// in which they become eligible, not just within one tick.
func TestHeapDispatchNotBeforeStraddlesTick(t *testing.T) {
	for trial := 0; trial < 500; trial++ {
		seed := int64(trial + 10_001)
		build := func() *appState {
			rng := rand.New(rand.NewSource(seed))
			a := dispatchApp(rng, 0)
			// Rewrite the queue so every notBefore hugs a tick boundary:
			// exactly at tick 1, one ulp either side, exactly at the tick
			// start, and far beyond the horizon.
			boundary := 1.0
			for i := range a.queue {
				req := &a.queue[i]
				switch i % 5 {
				case 0:
					req.notBefore = boundary
				case 1:
					req.notBefore = math.Nextafter(boundary, 0)
				case 2:
					req.notBefore = math.Nextafter(boundary, 2)
				case 3:
					req.notBefore = 0
				default:
					req.notBefore = 2.5
				}
			}
			return a
		}
		h, l := build(), build()
		// Two consecutive ticks, so the boundary cases transition from
		// "held" to "eligible" between dispatch calls.
		h.dispatchHeap(0, 1)
		h.dispatchHeap(1, 2)
		l.dispatchLinear(0, 1)
		l.dispatchLinear(1, 2)

		if len(h.runLat) != len(l.runLat) {
			t.Fatalf("trial %d: heap completed %d, linear %d", trial, len(h.runLat), len(l.runLat))
		}
		for i := range h.runLat {
			if h.runLat[i] != l.runLat[i] {
				t.Fatalf("trial %d: completion %d latency %v (heap) != %v (linear)",
					trial, i, h.runLat[i], l.runLat[i])
			}
		}
		hq, lq := h.pending(), l.pending()
		if len(hq) != len(lq) {
			t.Fatalf("trial %d: heap kept %d, linear kept %d", trial, len(hq), len(lq))
		}
		for i := range hq {
			if hq[i] != lq[i] {
				t.Fatalf("trial %d: kept %d differs: %+v vs %+v", trial, i, hq[i], lq[i])
			}
		}
	}
}
