package sim

import (
	"math"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/workload"
)

func closedEngine(t *testing.T, users int, thinkMs float64, cores int) *Engine {
	t.Helper()
	app := workload.MustLC("xapian")
	spec := machine.DefaultSpec()
	spec.Cores = cores
	e, err := New(Config{
		Spec: spec,
		Seed: 17,
		Apps: []AppConfig{{LC: &app, ClosedLoopUsers: users, ThinkTimeMs: thinkMs}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestClosedLoopValidation(t *testing.T) {
	app := workload.MustLC("xapian")
	if _, err := New(Config{
		Spec: machine.DefaultSpec(),
		Apps: []AppConfig{{LC: &app, ClosedLoopUsers: -1}},
	}); err == nil {
		t.Error("negative users accepted")
	}
	if _, err := New(Config{
		Spec: machine.DefaultSpec(),
		Apps: []AppConfig{{LC: &app}},
	}); err == nil {
		t.Error("LC app without any load source accepted")
	}
}

func TestClosedLoopThroughputMatchesLittlesLaw(t *testing.T) {
	// N users, think time Z, response time R: throughput = N/(R+Z).
	users, think := 8, 20.0
	e := closedEngine(t, users, think, 10)
	for e.NowMs() < 3_000 {
		e.RunWindow(500)
	}
	e.ResetRunStats()
	for e.NowMs() < 23_000 {
		e.RunWindow(500)
	}
	n := len(e.apps[0].runLat)
	if n == 0 {
		t.Fatal("no completions")
	}
	meanLat := 0.0
	for _, l := range e.apps[0].runLat {
		meanLat += l
	}
	meanLat /= float64(n)
	gotQPS := float64(n) / 20.0 // completions over a 20 s horizon
	wantQPS := float64(users) / (meanLat + think) * 1000
	if math.Abs(gotQPS-wantQPS)/wantQPS > 0.1 {
		t.Errorf("throughput %.0f QPS, Little's law predicts %.0f (R=%.2f ms)",
			gotQPS, wantQPS, meanLat)
	}
}

func TestClosedLoopBoundsOutstanding(t *testing.T) {
	// The queue can never exceed the user count, even on one core —
	// closed loops self-throttle instead of dropping.
	users := 6
	e := closedEngine(t, users, 1.0, 1)
	maxQ, drops := 0, 0
	for i := 0; i < 40; i++ {
		ws := e.RunWindow(500)
		drops += ws[0].Dropped
		if q := e.QueueLen("xapian"); q > maxQ {
			maxQ = q
		}
	}
	if maxQ > users {
		t.Errorf("outstanding %d exceeds %d users", maxQ, users)
	}
	if drops != 0 {
		t.Errorf("closed loop dropped %d requests", drops)
	}
}

func TestClosedLoopMoreUsersMoreLoad(t *testing.T) {
	qps := func(users int) float64 {
		e := closedEngine(t, users, 10, 10)
		for e.NowMs() < 2_000 {
			e.RunWindow(500)
		}
		e.ResetRunStats()
		for e.NowMs() < 10_000 {
			e.RunWindow(500)
		}
		return float64(len(e.apps[0].runLat)) / 8.0
	}
	few, many := qps(2), qps(16)
	if many <= few*2 {
		t.Errorf("throughput barely scaled with users: %.1f -> %.1f req/s", few, many)
	}
}
