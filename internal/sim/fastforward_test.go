package sim

import (
	"math"
	"math/rand"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

// sameF64 reports bitwise sameness, treating NaN as equal to NaN.
func sameF64(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// buildRandomApps draws a random mix of the arrival shapes the event-driven
// clock has to reason about: closed-loop users (idle until think times
// expire), sparse open-loop loads with genuinely zero stretches, and
// best-effort batch work (no arrivals at all). Every shape must fast-forward
// exactly or not at all.
func buildRandomApps(gen *rand.Rand) []AppConfig {
	lcNames := []string{"xapian", "moses", "img-dnn"}
	beNames := []string{"stream", "fluidanimate", "streamcluster"}
	nApps := 1 + gen.Intn(3)
	apps := make([]AppConfig, 0, nApps)
	for i := 0; i < nApps; i++ {
		switch gen.Intn(3) {
		case 0: // closed loop: arrivals only when a user's think time lapses
			lc := workload.MustLC(lcNames[i%len(lcNames)])
			apps = append(apps, AppConfig{
				LC:              &lc,
				ClosedLoopUsers: 1 + gen.Intn(3),
				ThinkTimeMs:     20 + 60*gen.Float64(),
			})
		case 1: // sparse open loop: alternating idle and busy segments
			lc := workload.MustLC(lcNames[i%len(lcNames)])
			var steps trace.Steps
			at := 0.0
			for s := 0; s < 4; s++ {
				frac := 0.0
				if s%2 == 1 {
					frac = 0.1 + 0.3*gen.Float64()
				}
				steps = append(steps, trace.Step{StartMs: at, Frac: frac})
				at += 10 + 25*gen.Float64()
			}
			apps = append(apps, AppConfig{LC: &lc, Load: steps})
		default: // best effort: no arrival stream
			be := workload.MustBE(beNames[i])
			apps = append(apps, AppConfig{BE: &be})
		}
	}
	return apps
}

// TestSkipAheadMatchesNaiveOnRandomTraces is the tentpole's differential
// gate: over thousands of randomized idle/busy traces, the event-driven
// clock (RunWindow skipping provably eventless tick stretches) must produce
// bit-identical windows, request latencies and simulation time to the naive
// one-Step-per-tick march. Any divergence — a skipped RNG draw, a
// reordered float addition, an off-by-one event tick — shows up here.
func TestSkipAheadMatchesNaiveOnRandomTraces(t *testing.T) {
	gen := rand.New(rand.NewSource(0xFA57))
	spec := machine.DefaultSpec()
	for trial := 0; trial < 2000; trial++ {
		seed := gen.Int63()
		tick := []float64{0.5, 1, 2}[gen.Intn(3)]
		apps := buildRandomApps(gen)

		mk := func(disable bool) *Engine {
			e, err := New(Config{
				Spec:               spec,
				Seed:               seed,
				TickMs:             tick,
				Apps:               apps,
				DisableFastForward: disable,
			})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			return e
		}
		fast, naive := mk(false), mk(true)

		nWindows := 2 + gen.Intn(3)
		reallocAfter := -1
		if gen.Intn(2) == 0 {
			reallocAfter = gen.Intn(nWindows)
		}
		for w := 0; w < nWindows; w++ {
			windowMs := 30 + 60*gen.Float64()
			fw := fast.RunWindow(windowMs)
			nw := naive.RunWindow(windowMs)
			if len(fw) != len(nw) {
				t.Fatalf("trial %d window %d: app counts differ", trial, w)
			}
			for i := range fw {
				f, n := fw[i], nw[i]
				if !sameF64(f.P95Ms, n.P95Ms) || !sameF64(f.MeanMs, n.MeanMs) ||
					f.Completed != n.Completed || f.Dropped != n.Dropped ||
					f.QueueLen != n.QueueLen ||
					!sameF64(f.OfferedQPS, n.OfferedQPS) || !sameF64(f.IPC, n.IPC) {
					t.Fatalf("trial %d window %d app %d: skip-ahead window diverged\nfast:  %+v\nnaive: %+v",
						trial, w, i, f, n)
				}
			}
			if fast.NowMs() != naive.NowMs() {
				t.Fatalf("trial %d window %d: NowMs %v vs %v", trial, w, fast.NowMs(), naive.NowMs())
			}
			if w == reallocAfter {
				// A repartition invalidates the solve and opens warm-up,
				// during which skipping must stand down; flip the shared
				// policy so the allocation genuinely changes.
				alloc := machine.AllShared(spec, machine.LCPriority, fast.AppNames())
				if err := fast.SetAllocation(alloc); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if err := naive.SetAllocation(alloc); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
			}
		}
		for i := range fast.apps {
			fa, na := fast.apps[i], naive.apps[i]
			if len(fa.runLat) != len(na.runLat) {
				t.Fatalf("trial %d app %d: %d vs %d completions", trial, i, len(fa.runLat), len(na.runLat))
			}
			for j := range fa.runLat {
				if fa.runLat[j] != na.runLat[j] {
					t.Fatalf("trial %d app %d latency %d: %v vs %v", trial, i, j, fa.runLat[j], na.runLat[j])
				}
			}
		}
	}
}

// TestSkipAheadActuallySkips guards the optimisation itself: an all-idle
// closed-loop configuration must fast-forward most of its ticks (otherwise
// the differential test above would pass vacuously with the skip never
// firing).
func TestSkipAheadActuallySkips(t *testing.T) {
	lc := workload.MustLC("xapian")
	e, err := New(Config{
		Spec: machine.DefaultSpec(),
		Seed: 7,
		Apps: []AppConfig{{LC: &lc, ClosedLoopUsers: 2, ThinkTimeMs: 200}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for e.NowMs() < 5_000 {
		e.RunWindow(500)
	}
	if e.skippedTicks < e.tickCount/2 {
		t.Fatalf("skip-ahead barely fired: %d of %d ticks elided", e.skippedTicks, e.tickCount)
	}
}
