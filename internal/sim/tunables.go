// Package sim is the datacenter-node simulator that substitutes for the
// paper's physical testbed (Xeon E5-2630 v4 + Intel CAT). It advances time
// in 1 ms ticks; within each tick it admits Poisson request arrivals, shares
// cores among runnable threads (CFS-like within fair regions, strict
// priority in LC-priority regions), resolves LLC-way occupancy and memory
// bandwidth contention, and progresses individual requests so that tail
// percentiles are real order statistics.
//
// The contention phenomenology — per-thread core sharing, concave miss-ratio
// curves, a bandwidth roofline, and switch/warm-up overheads — is what
// produces every qualitative result in the paper; see DESIGN.md §3.
package sim

// Tunables collects the contention-model constants. Defaults reproduce the
// paper's qualitative behaviour; the ablation benchmarks sweep them.
type Tunables struct {
	// SwitchOverhead is the fractional speed loss of a thread that
	// timeshares a core with other threads (context switching and
	// scheduler overhead under CFS).
	SwitchOverhead float64
	// PollutionOverhead is the extra fractional speed loss when the
	// co-resident threads belong to a *different* application (cache and
	// TLB pollution on the private levels, which way partitioning cannot
	// isolate).
	PollutionOverhead float64
	// WarmupMs is how long an application runs degraded after its LLC
	// ways change (cache warm-up after CAT repartitioning).
	WarmupMs float64
	// WarmupMissBoost is the additive miss-ratio penalty at the start of
	// warm-up, decaying linearly to zero over WarmupMs.
	WarmupMissBoost float64
	// MinBWSatisfaction floors the modelled bandwidth satisfaction ratio
	// to keep slowdowns finite.
	MinBWSatisfaction float64
	// RefWays is the way count against which service times are
	// normalised: the "ample resources" configuration used to profile
	// TL_i0 and solo IPC.
	RefWays float64
	// TimesliceMs models the CFS scheduling granularity: in a crowded
	// fair-share region a freshly arrived LC request waits roughly
	// TimesliceMs*((runnable-cores)/cores)^2 before first getting a core
	// (wakeup-to-dispatch delay, superlinear in crowding). LC-priority
	// regions dispatch LC work immediately, which is exactly the
	// LC-first advantage the paper shows.
	TimesliceMs float64
	// DispatchDelayCapMs bounds the modelled dispatch delay.
	DispatchDelayCapMs float64
	// BatchDrag is how strongly an always-runnable best-effort thread
	// competes with latency-critical threads under CFS. Sleeper fairness
	// lets a waking LC thread preempt batch work promptly, so each batch
	// thread costs LC threads only a fraction of a fair-share slot;
	// 1 would be strict per-thread fairness, 0 would be strict priority.
	BatchDrag float64
}

// DefaultTunables returns the constants used throughout the evaluation.
func DefaultTunables() Tunables {
	return Tunables{
		SwitchOverhead:     0.04,
		PollutionOverhead:  0.06,
		WarmupMs:           50,
		WarmupMissBoost:    0.25,
		MinBWSatisfaction:  0.05,
		RefWays:            20,
		TimesliceMs:        4,
		DispatchDelayCapMs: 15,
		BatchDrag:          0.5,
	}
}
