package sim

import (
	"testing"

	"ahq/internal/machine"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

// memoPairEngine builds one engine of the standard four-application mix.
func memoPairEngine(t *testing.T) *Engine {
	t.Helper()
	x, m, i := workload.MustLC("xapian"), workload.MustLC("moses"), workload.MustLC("img-dnn")
	s := workload.MustBE("stream")
	e, err := New(Config{
		Spec: machine.DefaultSpec(),
		Seed: 11,
		Apps: []AppConfig{
			{LC: &x, Load: trace.Constant(0.5)},
			{LC: &m, Load: trace.Constant(0.3)},
			{LC: &i, Load: trace.Constant(0.2)},
			{BE: &s},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestMemoizedTickMatchesFreshSolve runs two identically configured engines
// — one with the solve memo, one forced through the fresh resolvers every
// tick — through steady state, an allocation change, the warm-up decay it
// triggers, and steady state again, demanding bit-for-bit identical
// resolver outputs and simulation time at every tick.
func TestMemoizedTickMatchesFreshSolve(t *testing.T) {
	memo := memoPairEngine(t)
	fresh := memoPairEngine(t)
	fresh.memo.disabled = true

	names := memo.AppNames()
	repartition := machine.Allocation{Regions: []machine.Region{
		{Name: "iso", Kind: machine.Isolated, Cores: 4, Ways: 8, BWUnits: 4,
			Apps: []string{names[0]}},
		{Name: "shared", Kind: machine.Shared, Policy: machine.LCPriority,
			Cores: memo.Spec().Cores - 4, Ways: memo.Spec().LLCWays - 8,
			BWUnits: memo.Spec().MemBWUnits - 4, Apps: names},
	}}

	compare := func(phase string) {
		t.Helper()
		if memo.nowMs != fresh.nowMs {
			t.Fatalf("%s: time diverged: %v (memo) != %v (fresh)", phase, memo.nowMs, fresh.nowMs)
		}
		for i := range memo.apps {
			if m, f := memo.apps[i].capture(), fresh.apps[i].capture(); m != f {
				t.Fatalf("%s, t=%v, app %s: resolver outputs diverged:\nmemo:  %+v\nfresh: %+v",
					phase, memo.nowMs, names[i], m, f)
			}
		}
	}

	step := func(phase string, ticks int) {
		for i := 0; i < ticks; i++ {
			memo.Step()
			fresh.Step()
			compare(phase)
		}
	}

	step("initial steady state", 400)
	if err := memo.SetAllocation(repartition); err != nil {
		t.Fatal(err)
	}
	if err := fresh.SetAllocation(repartition); err != nil {
		t.Fatal(err)
	}
	// WarmupMs is 50 by default: cover the decay and well past it.
	step("warm-up decay", 60)
	step("post-warm-up steady state", 400)

	if memo.memo.hits == 0 {
		t.Fatal("memo never hit; the test exercised nothing")
	}
	if fresh.memo.hits != 0 || fresh.memo.misses != 0 {
		t.Fatalf("disabled memo touched the cache: hits=%d misses=%d",
			fresh.memo.hits, fresh.memo.misses)
	}
}

// TestMemoBypassedDuringWarmup pins the warm-up gate: while any
// application's warm-up window is open the solve is time-dependent, so the
// memo must neither serve nor store entries.
func TestMemoBypassedDuringWarmup(t *testing.T) {
	e := memoPairEngine(t)
	for e.NowMs() < 200 {
		e.Step()
	}
	names := e.AppNames()
	alloc := machine.Allocation{Regions: []machine.Region{
		{Name: "iso", Kind: machine.Isolated, Cores: 2, Ways: 6, BWUnits: 2,
			Apps: []string{names[1]}},
		{Name: "shared", Kind: machine.Shared, Policy: machine.FairShare,
			Cores: e.Spec().Cores - 2, Ways: e.Spec().LLCWays - 6,
			BWUnits: e.Spec().MemBWUnits - 2, Apps: names},
	}}
	if err := e.SetAllocation(alloc); err != nil {
		t.Fatal(err)
	}
	if e.warmupMaxUntilMs <= e.nowMs {
		t.Fatal("repartition did not open a warm-up window; test is vacuous")
	}
	solves := e.memo.hits + e.memo.misses
	for e.nowMs < e.warmupMaxUntilMs {
		e.Step()
	}
	if got := e.memo.hits + e.memo.misses; got != solves {
		t.Errorf("memo consulted %d times during warm-up, want 0", got-solves)
	}
	e.Step()
	if got := e.memo.hits + e.memo.misses; got == solves {
		t.Error("memo still bypassed after warm-up closed")
	}
}

// TestMemoStopsStoringAtCapacity pins the overflow policy: at
// memoMaxEntries the table keeps its existing entries and simply stops
// caching new vectors, rather than churning through clear-and-refill.
func TestMemoStopsStoringAtCapacity(t *testing.T) {
	e := memoPairEngine(t)
	e.memo.entries = make(map[string][]appResolve, memoMaxEntries)
	for i := 0; i < memoMaxEntries; i++ {
		e.memo.entries[string(rune(i))] = nil
	}
	for e.NowMs() < 100 {
		e.Step()
	}
	if len(e.memo.entries) != memoMaxEntries {
		t.Errorf("full table changed size to %d, want %d kept as-is",
			len(e.memo.entries), memoMaxEntries)
	}
	if e.memo.misses == 0 {
		t.Error("no fresh solves recorded at capacity; test is vacuous")
	}
}

// TestTickTimeIsDerivedNotAccumulated pins the drift fix: simulation time
// is tickCount*tick (one rounding total), not repeated += tick. With a
// fractional tick the accumulated form drifts measurably within ten
// thousand ticks; the derived form must stay exact.
func TestTickTimeIsDerivedNotAccumulated(t *testing.T) {
	x := workload.MustLC("xapian")
	e, err := New(Config{
		Spec:   machine.DefaultSpec(),
		Seed:   3,
		TickMs: 0.1,
		Apps:   []AppConfig{{LC: &x, Load: trace.Constant(0.2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	accumulated := 0.0
	for w := 0; w < 20; w++ {
		e.RunWindow(50)
	}
	for i := int64(0); i < e.tickCount; i++ {
		accumulated += e.tick
	}
	if want := float64(e.tickCount) * e.tick; e.nowMs != want {
		t.Errorf("nowMs = %v, want tickCount*tick = %v", e.nowMs, want)
	}
	if accumulated == e.nowMs {
		t.Skip("accumulation happens to be exact at this tick; drift not observable")
	}
	// The two forms genuinely differ at this tick size, so the invariant
	// above is load-bearing, not vacuous.
}
