package sim

import "ahq/internal/workload"

// AppContention is an instantaneous view of one application's contention
// state — what a profiling tool (perf counters, resctrl occupancy monitors)
// would expose on real hardware. The daemon serves it for observability,
// and the white-box tests assert conservation invariants over it.
type AppContention struct {
	// Name and Class identify the application.
	Name  string
	Class workload.Class
	// ActiveThreads is how many threads wanted a core in the last tick.
	ActiveThreads int
	// IsolatedCores is the application's exclusive core count.
	IsolatedCores int
	// SharedShare is the per-thread core fraction its spill-over threads
	// received in the shared region.
	SharedShare float64
	// TotalCoreShare is the application's total core time last tick, in
	// cores.
	TotalCoreShare float64
	// EffectiveWays is its isolated plus occupancy-shared LLC ways.
	EffectiveWays float64
	// Slowdown is its combined cache+bandwidth service inflation relative
	// to the solo full-resource reference.
	Slowdown float64
	// DispatchDelayMs is the CFS wakeup delay its new requests currently
	// suffer.
	DispatchDelayMs float64
	// QueueLen is the request backlog (LC only).
	QueueLen int
}

// SolveStats reports the contention-solve cache counters: per-engine memo
// hits, full fixed-point solves, and solves adopted from the cross-engine
// shared cache. The counters are instrumentation — when a shared cache is
// attached, the hit/adopt split depends on which engine got to a vector
// first, i.e. on worker scheduling — so they must never feed deterministic
// output; the solved values themselves are bit-identical either way.
func (e *Engine) SolveStats() (hits, solves, sharedHits uint64) {
	return e.memo.hits, e.memo.misses, e.memo.sharedHits
}

// Contention returns the per-application contention snapshot from the most
// recent tick, in configuration order.
func (e *Engine) Contention() []AppContention {
	out := make([]AppContention, 0, len(e.apps))
	for _, a := range e.apps {
		out = append(out, AppContention{
			Name:            a.name,
			Class:           a.class,
			ActiveThreads:   a.activeThreads,
			IsolatedCores:   a.isoCores,
			SharedShare:     a.sharedShare,
			TotalCoreShare:  a.totalCoreShare,
			EffectiveWays:   a.effWays,
			Slowdown:        a.slowdown,
			DispatchDelayMs: a.dispatchDelay,
			QueueLen:        a.pendingLen(),
		})
	}
	return out
}
