package sim

import (
	"math"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

// soloEngine builds an engine with one LC application alone on the node.
func soloEngine(t *testing.T, name string, load float64, cores int, seed int64) *Engine {
	t.Helper()
	app := workload.MustLC(name)
	spec := machine.DefaultSpec()
	spec.Cores = cores
	e, err := New(Config{
		Spec: spec,
		Seed: seed,
		Apps: []AppConfig{{LC: &app, Load: trace.Constant(load)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// run advances the engine and returns the run-level p95 over the horizon.
func run(e *Engine, warmMs, measureMs float64) float64 {
	for e.NowMs() < warmMs {
		e.RunWindow(500)
	}
	e.ResetRunStats()
	end := e.NowMs() + measureMs
	for e.NowMs() < end {
		e.RunWindow(500)
	}
	return e.RunP95(e.AppNames()[0])
}

func TestSoloLowLoadMatchesIdealP95(t *testing.T) {
	// At 20% load with ample resources the p95 must approach the
	// calibrated TL_i0 (paper Table II methodology).
	for _, name := range []string{"xapian", "moses", "img-dnn"} {
		app := workload.MustLC(name)
		e := soloEngine(t, name, 0.20, 10, 7)
		p95 := run(e, 3_000, 15_000)
		if rel := math.Abs(p95-app.IdealP95Ms) / app.IdealP95Ms; rel > 0.15 {
			t.Errorf("%s: solo p95 = %.3f, want ~TL_i0 %.3f (rel err %.2f)",
				name, p95, app.IdealP95Ms, rel)
		}
	}
}

func TestSoloKneeNearMaxLoad(t *testing.T) {
	// The latency-load curve must knee at max load: comfortably below
	// target at 60%, and well above it by 130%.
	app := workload.MustLC("xapian")
	low := run(soloEngine(t, "xapian", 0.60, 10, 7), 3_000, 15_000)
	if low > app.QoSTargetMs {
		t.Errorf("p95 at 60%% load = %.2f, exceeds target %.2f", low, app.QoSTargetMs)
	}
	high := run(soloEngine(t, "xapian", 1.30, 10, 7), 3_000, 15_000)
	if high < app.QoSTargetMs*1.3 {
		t.Errorf("p95 at 130%% load = %.2f, expected well past target %.2f", high, app.QoSTargetMs)
	}
}

func TestSoloMoreCoresNeverHurts(t *testing.T) {
	// Hockey-stick family of Fig. 7: p95 at fixed load is non-increasing
	// in core count (up to noise).
	prev := math.Inf(1)
	for _, cores := range []int{1, 2, 4} {
		p95 := run(soloEngine(t, "img-dnn", 0.50, cores, 3), 2_000, 10_000)
		if p95 > prev*1.10 {
			t.Errorf("p95 grew with cores: %d cores -> %.2f (prev %.2f)", cores, p95, prev)
		}
		prev = p95
	}
}

func TestDeterminism(t *testing.T) {
	a := run(soloEngine(t, "xapian", 0.50, 4, 42), 2_000, 8_000)
	b := run(soloEngine(t, "xapian", 0.50, 4, 42), 2_000, 8_000)
	if a != b {
		t.Errorf("same seed, different p95: %g vs %g", a, b)
	}
	c := run(soloEngine(t, "xapian", 0.50, 4, 43), 2_000, 8_000)
	if a == c {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestConfigValidation(t *testing.T) {
	app := workload.MustLC("xapian")
	be := workload.MustBE("stream")
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no apps", Config{Spec: machine.DefaultSpec()}},
		{"bad spec", Config{Spec: machine.Spec{}, Apps: []AppConfig{{BE: &be}}}},
		{"both classes", Config{Spec: machine.DefaultSpec(),
			Apps: []AppConfig{{LC: &app, BE: &be, Load: trace.Constant(0.5)}}}},
		{"neither class", Config{Spec: machine.DefaultSpec(), Apps: []AppConfig{{}}}},
		{"LC without load", Config{Spec: machine.DefaultSpec(), Apps: []AppConfig{{LC: &app}}}},
		{"duplicate names", Config{Spec: machine.DefaultSpec(),
			Apps: []AppConfig{{BE: &be}, {BE: &be}}}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSetAllocationValidates(t *testing.T) {
	e := soloEngine(t, "xapian", 0.20, 10, 1)
	over := machine.Allocation{Regions: []machine.Region{{
		Name: "shared", Kind: machine.Shared, Cores: 99, Ways: 20, BWUnits: 10,
		Apps: []string{"xapian"},
	}}}
	if err := e.SetAllocation(over); err == nil {
		t.Error("overcommitted allocation accepted")
	}
	// Two shared regions for one app are rejected.
	two := machine.Allocation{Regions: []machine.Region{
		{Name: "s1", Kind: machine.Shared, Cores: 5, Ways: 10, BWUnits: 5, Apps: []string{"xapian"}},
		{Name: "s2", Kind: machine.Shared, Cores: 5, Ways: 10, BWUnits: 5, Apps: []string{"xapian"}},
	}}
	if err := e.SetAllocation(two); err == nil {
		t.Error("app in two shared regions accepted")
	}
}

func TestBEIPCSoloIsCalibrated(t *testing.T) {
	// A BE application alone on the full node must achieve its solo IPC.
	for _, name := range []string{"fluidanimate", "streamcluster"} {
		be := workload.MustBE(name)
		e, err := New(Config{Spec: machine.DefaultSpec(), Seed: 1, Apps: []AppConfig{{BE: &be}}})
		if err != nil {
			t.Fatal(err)
		}
		for e.NowMs() < 2_000 {
			e.RunWindow(500)
		}
		e.ResetRunStats()
		for e.NowMs() < 6_000 {
			e.RunWindow(500)
		}
		got := e.RunIPC(name)
		if rel := math.Abs(got-be.SoloIPC) / be.SoloIPC; rel > 0.05 {
			t.Errorf("%s: solo IPC = %.3f, want %.3f", name, got, be.SoloIPC)
		}
	}
}

func TestStarvedAppReportsQueueAge(t *testing.T) {
	// An LC application with zero shared cores cannot run; the window
	// must report the head-of-line age as a latency lower bound rather
	// than NaN, so controllers still see the violation.
	app := workload.MustLC("xapian")
	be := workload.MustBE("stream")
	e, err := New(Config{
		Spec: machine.DefaultSpec(),
		Seed: 5,
		Apps: []AppConfig{
			{LC: &app, Load: trace.Constant(0.5)},
			{BE: &be},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// All cores to stream; xapian gets one way and no usable cores is
	// invalid, so give it a region with cores but zero... instead: give
	// xapian an isolated region with cores that is then crushed: use
	// 1 core for xapian at 50% load of max -> overload -> ages grow.
	alloc := machine.Allocation{Regions: []machine.Region{
		{Name: "iso:xapian", Kind: machine.Isolated, Cores: 1, Ways: 1, BWUnits: 1, Apps: []string{"xapian"}},
		{Name: "iso:stream", Kind: machine.Isolated, Cores: 9, Ways: 19, BWUnits: 9, Apps: []string{"stream"}},
	}}
	if err := e.SetAllocation(alloc); err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 10; i++ {
		ws := e.RunWindow(500)
		last = ws[0].P95Ms
	}
	if math.IsNaN(last) {
		t.Fatal("overloaded app reported NaN p95")
	}
	if last < 10 {
		t.Errorf("overloaded p95 = %.2f ms, expected large backlog latency", last)
	}
}

func TestDropsUnderOverload(t *testing.T) {
	// Past the client queue cap, the finite connection pool drops
	// arrivals instead of queueing forever.
	e := soloEngine(t, "xapian", 1.30, 1, 9)
	drops := 0
	for i := 0; i < 20; i++ {
		for _, w := range e.RunWindow(500) {
			drops += w.Dropped
		}
	}
	if drops == 0 {
		t.Error("sustained overload produced no drops")
	}
	if q := e.QueueLen("xapian"); q > workload.MustLC("xapian").ClientQueueCap {
		t.Errorf("queue %d exceeds client cap", q)
	}
}

func TestWindowAccounting(t *testing.T) {
	e := soloEngine(t, "moses", 0.40, 10, 2)
	total := 0
	var offered float64
	for i := 0; i < 40; i++ {
		ws := e.RunWindow(500)
		total += ws[0].Completed + ws[0].Dropped
		offered += ws[0].OfferedQPS * 0.5
	}
	// Everything offered is eventually completed or dropped (modulo the
	// residual queue).
	if math.Abs(float64(total)+float64(e.QueueLen("moses"))-offered) > offered*0.02+5 {
		t.Errorf("conservation: completed+dropped+queued = %d+%d, offered ~ %.0f",
			total, e.QueueLen("moses"), offered)
	}
	// Offered rate tracks the trace: 40% of max load.
	want := 0.4 * workload.MustLC("moses").MaxLoadQPS * 20 // 20 s worth
	if math.Abs(offered-want)/want > 0.1 {
		t.Errorf("offered = %.0f requests, want ~%.0f", offered, want)
	}
}

func TestAppSpecsOrderLCFirst(t *testing.T) {
	lc := workload.MustLC("xapian")
	be := workload.MustBE("stream")
	e, err := New(Config{
		Spec: machine.DefaultSpec(),
		Seed: 1,
		Apps: []AppConfig{
			{BE: &be},
			{LC: &lc, Load: trace.Constant(0.1)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := e.AppSpecs()
	if specs[0].Class != workload.LC || specs[1].Class != workload.BE {
		t.Errorf("AppSpecs order: %v", specs)
	}
}
