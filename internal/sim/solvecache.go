package sim

import (
	"math"
	"strconv"
	"sync"

	"ahq/internal/workload"
)

// A sweep runs dozens of engines whose rows differ only in load level or
// controller strategy. The contention solve, however, depends on neither:
// it is a pure function of the tunables, the node's bandwidth figures, the
// applications' contention parameters, the compiled allocation topology and
// the active-thread vector. Rows therefore keep re-deriving each other's
// solves — every strategy starts from the same even partition, and the
// steady-state vectors repeat across load levels.
//
// SolveCache shares those solves across engines. The key is a canonical,
// bit-exact serialisation of every input the three resolvers read (floats
// are serialised by their IEEE bit patterns, so two engines collide only
// when their solves would run the exact same float operations), and the
// value is the same appResolve capture the per-engine memo stores. A hit
// restores values the identical computation produced elsewhere, so a
// shared-cache run is bit-for-bit identical to an isolated one — only the
// hit counters depend on worker scheduling, never the simulation output.
//
// The cache is safe for concurrent use. It is sharded to keep parallel
// sweep rows from serialising on one lock, and each shard is bounded the
// same way the per-engine memo is: once full it stops accepting inserts,
// retaining the early steady-state entries instead of churning.

// solveShards is the shard count; a small power of two keeps the modulo
// free while comfortably exceeding the worker counts experiments use.
const solveShards = 8

// solveShardMaxEntries bounds each shard; the bound exists to cap memory
// under adversarial key diversity, not to evict.
const solveShardMaxEntries = 1 << 13

// SolveCache is a concurrency-safe, bounded, experiment-scoped contention
// solve cache shared by every engine of one experiment invocation.
type SolveCache struct {
	shards [solveShards]solveShard
}

type solveShard struct {
	mu      sync.RWMutex
	entries map[string][]appResolve // guarded by mu
}

// NewSolveCache returns an empty cache ready for concurrent use.
func NewSolveCache() *SolveCache {
	c := &SolveCache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[string][]appResolve) //ahqlint:allow lockcheck construction precedes sharing; no other goroutine can hold the cache yet
	}
	return c
}

// Len reports the total number of cached solves (for tests and telemetry).
func (c *SolveCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

// lookup returns the cached solve for key, if any. The returned slice is
// owned by the cache and must not be mutated.
//
//ahq:hotpath
func (c *SolveCache) lookup(key []byte) ([]appResolve, bool) {
	s := &c.shards[solveShard64(key)%solveShards]
	s.mu.RLock()
	v, ok := s.entries[string(key)]
	s.mu.RUnlock()
	return v, ok
}

// store inserts a solve under key, copying vals (callers recycle their
// capture slices). Full shards and already-present keys are left alone.
func (c *SolveCache) store(key []byte, vals []appResolve) {
	s := &c.shards[solveShard64(key)%solveShards]
	s.mu.Lock()
	if _, ok := s.entries[string(key)]; !ok && len(s.entries) < solveShardMaxEntries {
		s.entries[string(key)] = append([]appResolve(nil), vals...) //ahqlint:allow hotpath miss-path-only: copies a new solve into the shared cache once per vector
	}
	s.mu.Unlock()
}

// solveShard64 is FNV-1a over the key, used only to pick a shard.
func solveShard64(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// appendBits serialises a float by its IEEE-754 bit pattern: two inputs
// get the same encoding exactly when the resolvers would compute on
// identical values.
func appendBits(b []byte, v float64) []byte {
	b = strconv.AppendUint(b, math.Float64bits(v), 16)
	return append(b, ',')
}

func appendInt(b []byte, v int) []byte {
	b = strconv.AppendInt(b, int64(v), 10)
	return append(b, ',')
}

// staticSolveKey serialises the engine inputs the resolvers read that are
// fixed for the engine's lifetime: the tunables, the node's bandwidth
// figures and each application's contention parameters, in configuration
// order. Allocation-dependent state is appended by refreshSolvePrefix.
func (e *Engine) staticSolveKey() []byte {
	b := make([]byte, 0, 64+48*len(e.apps))
	t := e.tun
	for _, v := range [...]float64{
		t.SwitchOverhead, t.PollutionOverhead, t.WarmupMs, t.WarmupMissBoost,
		t.MinBWSatisfaction, t.RefWays, t.TimesliceMs, t.DispatchDelayCapMs,
		t.BatchDrag,
	} {
		b = appendBits(b, v)
	}
	b = appendBits(b, e.spec.MemBWGBps)
	b = appendInt(b, e.spec.MemBWUnits)
	for _, a := range e.apps {
		if a.class == workload.LC {
			b = append(b, 'L')
		} else {
			b = append(b, 'B')
		}
		b = appendInt(b, a.threads())
		cache := a.cache()
		b = appendBits(b, cache.WorkingSetWays)
		b = appendBits(b, cache.MinMissRatio)
		sens := a.sens()
		b = appendBits(b, sens.CacheSens)
		b = appendBits(b, sens.MemSens)
		b = appendBits(b, sens.MemGBpsPerThread)
		b = appendBits(b, a.cacheDenom)
	}
	return b
}

// refreshSolvePrefix rebuilds the shared-cache key prefix — the static
// engine inputs plus the compiled topology of the allocation in force.
// Called by SetAllocation, so the per-tick path only appends the
// active-thread vector.
func (e *Engine) refreshSolvePrefix() {
	if e.shared == nil {
		return
	}
	if e.solveStatic == nil {
		e.solveStatic = e.staticSolveKey()
	}
	b := append(e.solvePrefix[:0], e.solveStatic...)
	b = append(b, '|')
	for i := range e.topo.byApp {
		ta := &e.topo.byApp[i]
		if ta.hasIso {
			b = append(b, 'i')
		}
		b = appendInt(b, ta.isoCores)
		b = appendBits(b, ta.isoWays)
		b = appendInt(b, ta.isoBWUnits)
		b = appendInt(b, ta.sharedIdx)
	}
	for si := range e.topo.shared {
		g := e.topo.shared[si].region
		b = append(b, 'g')
		b = appendInt(b, g.Cores)
		b = appendInt(b, g.Ways)
		b = appendInt(b, g.BWUnits)
		b = appendInt(b, int(g.Policy))
		for _, ai := range e.topo.shared[si].members {
			b = appendInt(b, ai)
		}
	}
	e.solvePrefix = b
}

// sharedSolveKey appends the current active-thread vector to the prefix,
// completing the cross-engine key for this tick's solve.
func (e *Engine) sharedSolveKey() []byte {
	b := append(e.solveKey[:0], e.solvePrefix...)
	b = append(b, '|') //ahqlint:allow hotpath amortized: solveKey reuses its backing array across ticks
	for _, a := range e.apps {
		t := a.activeThreads
		b = append(b, byte(t), byte(t>>8)) //ahqlint:allow hotpath amortized: solveKey reuses its backing array across ticks
	}
	e.solveKey = b
	return b
}
