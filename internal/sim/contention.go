package sim

import (
	"math"

	"ahq/internal/machine"
	"ahq/internal/workload"
)

// The resolvers below are the fresh-solve path of resolveContention
// (memo.go). They read region structure exclusively through the compiled
// topology (topology.go) — per-app isolated resources and per-region member
// index lists — so the per-tick cost is linear in members, with no string
// comparisons. Member lists preserve engine configuration order, keeping
// every float accumulation in the exact order of the original membership
// scans.

// resolveCores distributes core time for the current tick. Threads first
// fill their application's isolated cores one-to-one; the remainder spill
// into the application's shared region, where capacity is divided per
// thread — equally under FairShare (CFS) or latency-critical-first under
// LCPriority (real-time priority / the ARQ shared region).
func (e *Engine) resolveCores() {
	for i, a := range e.apps {
		a.isoCores = e.topo.byApp[i].isoCores
		a.isoShare = 0
		a.sharedThreads = 0
		a.sharedShare = 0
		a.sharedCrowded = false
		a.sharedPolluted = false
		a.dispatchDelay = 0
		used := a.activeThreads
		if used > a.isoCores {
			used = a.isoCores
		}
		if used > 0 {
			a.isoShare = 1
		}
		a.sharedThreads = a.activeThreads - used
	}

	for si := range e.topo.shared {
		g := e.topo.shared[si].region
		members := e.scratchMembers[:0]
		lcThreads, beThreads, appsPresent := 0, 0, 0
		for _, ai := range e.topo.shared[si].members {
			a := e.apps[ai]
			if a.sharedThreads == 0 {
				continue
			}
			members = append(members, a) //ahqlint:allow hotpath amortized: scratchMembers reuses its backing array across ticks
			appsPresent++
			if a.class == workload.LC {
				lcThreads += a.sharedThreads
			} else {
				beThreads += a.sharedThreads
			}
		}
		if len(members) == 0 {
			continue
		}
		total := lcThreads + beThreads
		capacity := float64(g.Cores)
		crowded := float64(total) > capacity
		polluted := crowded && appsPresent > 1

		var lcShare, beShare float64
		switch {
		case g.Policy == machine.LCPriority && lcThreads > 0:
			// Strict real-time priority: LC threads first, BE threads
			// split whatever is left.
			lcShare = math.Min(1, capacity/float64(lcThreads))
			rest := capacity - lcShare*float64(lcThreads)
			if beThreads > 0 && rest > 0 {
				beShare = math.Min(1, rest/float64(beThreads))
			}
		case lcThreads > 0:
			// CFS with sleeper fairness: waking LC threads preempt batch
			// work promptly, so each batch thread exerts only BatchDrag
			// of a fair-share slot against LC; BE absorbs the leftover.
			drag := float64(lcThreads) + e.tun.BatchDrag*float64(beThreads)
			lcShare = math.Min(1, capacity/drag)
			rest := capacity - lcShare*float64(lcThreads)
			if beThreads > 0 && rest > 0 {
				beShare = math.Min(1, rest/float64(beThreads))
			}
		case beThreads > 0:
			beShare = math.Min(1, capacity/float64(beThreads))
		}
		// CFS wakeup-to-dispatch delay for LC work in a crowded fair
		// region; LC-priority regions dispatch LC work immediately.
		dispatch := 0.0
		if g.Policy == machine.FairShare && crowded {
			over := (float64(total) - capacity) / capacity
			dispatch = e.tun.TimesliceMs * over * over
			if dispatch > e.tun.DispatchDelayCapMs {
				dispatch = e.tun.DispatchDelayCapMs
			}
		}
		for _, a := range members {
			if a.class == workload.LC {
				a.sharedShare = lcShare
				a.dispatchDelay = dispatch
			} else {
				a.sharedShare = beShare
			}
			a.sharedCrowded = crowded
			a.sharedPolluted = polluted
		}
		e.scratchMembers = members[:0]
	}

	// Apply timesharing overheads to the shared-region share and total up
	// each application's core time for bandwidth accounting.
	for _, a := range e.apps {
		if a.sharedCrowded && a.sharedShare > 0 {
			penalty := e.tun.SwitchOverhead
			if a.sharedPolluted {
				penalty += e.tun.PollutionOverhead
			}
			a.sharedShare *= 1 - penalty
		}
		isoUsed := a.activeThreads
		if isoUsed > a.isoCores {
			isoUsed = a.isoCores
		}
		a.totalCoreShare = float64(isoUsed)*a.isoShare + float64(a.sharedThreads)*a.sharedShare
	}
}

// resolveCache computes each application's effective LLC ways: its isolated
// ways plus a share of every shared region it belongs to (the CLOS mask
// union of the ARQ design).
//
// Shared ways are divided by *insertion pressure*, the LRU steady state:
// an application fills cache in proportion to the miss traffic it generates,
// which itself depends on how much cache it holds. The fixed point of
//
//	w_i = W * p_i / sum(p),  p_i = threads_i * gbps_i * miss_i(w_i + iso_i)
//
// captures the crucial asymmetry of the paper's Fig. 8 vs Fig. 9: an
// application whose working set fits (Fluidanimate) stops missing and stops
// evicting others, while a streaming application (STREAM) never stops
// inserting and floods any cache it can touch.
func (e *Engine) resolveCache() {
	for i, a := range e.apps {
		a.isoWays = e.topo.byApp[i].isoWays
		a.effWays = a.isoWays
	}
	for si := range e.topo.shared {
		g := e.topo.shared[si].region
		if g.Ways == 0 {
			continue
		}
		members := e.scratchMembers[:0]
		for _, ai := range e.topo.shared[si].members {
			if a := e.apps[ai]; a.activeThreads > 0 {
				members = append(members, a) //ahqlint:allow hotpath amortized: scratchMembers reuses its backing array across ticks
			}
		}
		e.scratchMembers = members
		if len(members) == 0 {
			continue
		}
		w := float64(g.Ways)
		// Warm-start from an even split and iterate the pressure fixed
		// point; three rounds are plenty at this granularity.
		share := growScratch(&e.scratchShare, len(members))
		pressure := growScratch(&e.scratchPressure, len(members))
		for i := range share {
			share[i] = w / float64(len(members))
		}
		for iter := 0; iter < 3; iter++ {
			total := 0.0
			for i, a := range members {
				miss := a.cache().MissRatio(a.isoWays + share[i])
				p := float64(a.activeThreads) * a.sens().MemGBpsPerThread * miss
				if p < 1e-9 {
					p = 1e-9
				}
				pressure[i] = p
				total += p
			}
			for i := range members {
				share[i] = w * pressure[i] / total
			}
		}
		for i, a := range members {
			a.effWays += share[i]
		}
	}
}

// missRatio returns the application's miss ratio at its current effective
// ways, including the transient warm-up penalty after repartitioning.
func (e *Engine) missRatio(a *appState) float64 {
	m := a.cache().MissRatio(a.effWays)
	if e.nowMs < a.warmupUntilMs {
		frac := (a.warmupUntilMs - e.nowMs) / e.tun.WarmupMs
		m += e.tun.WarmupMissBoost * frac
	}
	if m > 1 {
		m = 1
	}
	return m
}

// resolveMemBW grants memory bandwidth (isolated MBA units first, then the
// shared pool divided proportionally to residual demand) and combines the
// cache and bandwidth effects into each application's service slowdown,
// normalised so the solo full-resource configuration is 1.
func (e *Engine) resolveMemBW() {
	unitGBps := e.spec.MemBWGBps / float64(e.spec.MemBWUnits)

	reqs := growScratchReq(&e.scratchReqs, len(e.apps))
	miss := growScratch(&e.scratchMiss, len(e.apps))
	for i, a := range e.apps {
		miss[i] = e.missRatio(a)
		demand := a.sens().MemGBpsPerThread * miss[i] * a.totalCoreShare
		isoBW := float64(e.topo.byApp[i].isoBWUnits) * unitGBps
		granted := math.Min(demand, isoBW)
		reqs[i] = bwReq{demand: demand, spill: demand - granted, grant: granted}
	}

	for si := range e.topo.shared {
		g := e.topo.shared[si].region
		if g.BWUnits == 0 {
			continue
		}
		pool := float64(g.BWUnits) * unitGBps
		totalSpill := 0.0
		for _, ai := range e.topo.shared[si].members {
			totalSpill += reqs[ai].spill
		}
		if totalSpill <= 0 {
			continue
		}
		frac := math.Min(1, pool/totalSpill)
		for _, ai := range e.topo.shared[si].members {
			reqs[ai].grant += reqs[ai].spill * frac
			reqs[ai].spill = 0
		}
	}

	for i, a := range e.apps {
		sens := a.sens()
		sat := 1.0
		if reqs[i].demand > 0 {
			sat = reqs[i].grant / reqs[i].demand
		}
		if sat < e.tun.MinBWSatisfaction {
			sat = e.tun.MinBWSatisfaction
		}
		memFactor := 1 + sens.MemSens*(1/sat-1)
		cacheFactor := (1 + sens.CacheSens*miss[i]) / a.cacheDenom
		a.slowdown = cacheFactor * memFactor
		a.rateIso = 1 / a.slowdown
		a.rateShared = a.sharedShare / a.slowdown
	}
}

// bwReq tracks one application's bandwidth demand resolution for a tick,
// indexed by engine application order.
type bwReq struct {
	demand float64
	spill  float64
	grant  float64
}

// growScratch returns a zeroed float scratch slice of length n, reusing the
// backing array across ticks.
func growScratch(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n) //ahqlint:allow hotpath capacity-guarded: runs only when the reusable scratch must grow
		return *buf
	}
	s := (*buf)[:n]
	clear(s)
	return s
}

// growScratchReq is growScratch for bandwidth requests.
func growScratchReq(buf *[]bwReq, n int) []bwReq {
	if cap(*buf) < n {
		*buf = make([]bwReq, n) //ahqlint:allow hotpath capacity-guarded: runs only when the reusable scratch must grow
		return *buf
	}
	s := (*buf)[:n]
	clear(s)
	return s
}

// progress advances every in-service request and accumulates best-effort
// work for the tick. LC requests are served by worker-thread "slots"; see
// dispatch.go for the earliest-slot heap. A slot that finishes a short
// request picks up the next queued one within the same tick (the
// simulator's throughput is not quantised by the tick), mid-tick arrivals
// only receive service after they arrive, and a request never runs on more
// than one core at a time.
func (e *Engine) progress(dt, tickEnd float64) {
	for _, a := range e.apps {
		if a.class == workload.BE {
			if a.totalCoreShare > 0 && a.slowdown > 0 {
				work := a.totalCoreShare * dt / a.slowdown
				a.workWin.Add(work)
				a.runWork += work
			}
			a.runMs += dt
			continue
		}
		if a.pendingLen() == 0 {
			continue
		}
		a.dispatchHeap(e.nowMs, tickEnd)
	}
}
