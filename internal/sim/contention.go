package sim

import (
	"math"

	"ahq/internal/machine"
	"ahq/internal/workload"
)

// resolveCores distributes core time for the current tick. Threads first
// fill their application's isolated cores one-to-one; the remainder spill
// into the application's shared region, where capacity is divided per
// thread — equally under FairShare (CFS) or latency-critical-first under
// LCPriority (real-time priority / the ARQ shared region).
func (e *Engine) resolveCores() {
	for _, a := range e.apps {
		a.activeThreads = a.runnableThreads()
		a.isoCores = 0
		a.isoShare = 0
		a.sharedThreads = 0
		a.sharedShare = 0
		a.sharedCrowded = false
		a.sharedPolluted = false
		a.dispatchDelay = 0
		if g := e.alloc.IsolatedRegionOf(a.name); g != nil {
			a.isoCores = g.Cores
		}
		used := a.activeThreads
		if used > a.isoCores {
			used = a.isoCores
		}
		if used > 0 {
			a.isoShare = 1
		}
		a.sharedThreads = a.activeThreads - used
	}

	for gi := range e.alloc.Regions {
		g := &e.alloc.Regions[gi]
		if g.Kind != machine.Shared {
			continue
		}
		members := e.scratchMembers[:0]
		lcThreads, beThreads, appsPresent := 0, 0, 0
		for _, a := range e.apps {
			if !g.Has(a.name) || a.sharedThreads == 0 {
				continue
			}
			members = append(members, a)
			appsPresent++
			if a.class == workload.LC {
				lcThreads += a.sharedThreads
			} else {
				beThreads += a.sharedThreads
			}
		}
		if len(members) == 0 {
			continue
		}
		total := lcThreads + beThreads
		capacity := float64(g.Cores)
		crowded := float64(total) > capacity
		polluted := crowded && appsPresent > 1

		var lcShare, beShare float64
		switch {
		case g.Policy == machine.LCPriority && lcThreads > 0:
			// Strict real-time priority: LC threads first, BE threads
			// split whatever is left.
			lcShare = math.Min(1, capacity/float64(lcThreads))
			rest := capacity - lcShare*float64(lcThreads)
			if beThreads > 0 && rest > 0 {
				beShare = math.Min(1, rest/float64(beThreads))
			}
		case lcThreads > 0:
			// CFS with sleeper fairness: waking LC threads preempt batch
			// work promptly, so each batch thread exerts only BatchDrag
			// of a fair-share slot against LC; BE absorbs the leftover.
			drag := float64(lcThreads) + e.tun.BatchDrag*float64(beThreads)
			lcShare = math.Min(1, capacity/drag)
			rest := capacity - lcShare*float64(lcThreads)
			if beThreads > 0 && rest > 0 {
				beShare = math.Min(1, rest/float64(beThreads))
			}
		case beThreads > 0:
			beShare = math.Min(1, capacity/float64(beThreads))
		}
		// CFS wakeup-to-dispatch delay for LC work in a crowded fair
		// region; LC-priority regions dispatch LC work immediately.
		dispatch := 0.0
		if g.Policy == machine.FairShare && crowded {
			over := (float64(total) - capacity) / capacity
			dispatch = e.tun.TimesliceMs * over * over
			if dispatch > e.tun.DispatchDelayCapMs {
				dispatch = e.tun.DispatchDelayCapMs
			}
		}
		for _, a := range members {
			if a.class == workload.LC {
				a.sharedShare = lcShare
				a.dispatchDelay = dispatch
			} else {
				a.sharedShare = beShare
			}
			a.sharedCrowded = crowded
			a.sharedPolluted = polluted
		}
		e.scratchMembers = members[:0]
	}

	// Apply timesharing overheads to the shared-region share and total up
	// each application's core time for bandwidth accounting.
	for _, a := range e.apps {
		if a.sharedCrowded && a.sharedShare > 0 {
			penalty := e.tun.SwitchOverhead
			if a.sharedPolluted {
				penalty += e.tun.PollutionOverhead
			}
			a.sharedShare *= 1 - penalty
		}
		isoUsed := a.activeThreads
		if isoUsed > a.isoCores {
			isoUsed = a.isoCores
		}
		a.totalCoreShare = float64(isoUsed)*a.isoShare + float64(a.sharedThreads)*a.sharedShare
	}
}

// resolveCache computes each application's effective LLC ways: its isolated
// ways plus a share of every shared region it belongs to (the CLOS mask
// union of the ARQ design).
//
// Shared ways are divided by *insertion pressure*, the LRU steady state:
// an application fills cache in proportion to the miss traffic it generates,
// which itself depends on how much cache it holds. The fixed point of
//
//	w_i = W * p_i / sum(p),  p_i = threads_i * gbps_i * miss_i(w_i + iso_i)
//
// captures the crucial asymmetry of the paper's Fig. 8 vs Fig. 9: an
// application whose working set fits (Fluidanimate) stops missing and stops
// evicting others, while a streaming application (STREAM) never stops
// inserting and floods any cache it can touch.
func (e *Engine) resolveCache() {
	for _, a := range e.apps {
		a.isoWays = 0
		if g := e.alloc.IsolatedRegionOf(a.name); g != nil {
			a.isoWays = float64(g.Ways)
		}
		a.effWays = a.isoWays
	}
	for gi := range e.alloc.Regions {
		g := &e.alloc.Regions[gi]
		if g.Kind != machine.Shared || g.Ways == 0 {
			continue
		}
		members := e.scratchMembers[:0]
		for _, a := range e.apps {
			if g.Has(a.name) && a.activeThreads > 0 {
				members = append(members, a)
			}
		}
		e.scratchMembers = members
		if len(members) == 0 {
			continue
		}
		w := float64(g.Ways)
		// Warm-start from an even split and iterate the pressure fixed
		// point; three rounds are plenty at this granularity.
		share := growScratch(&e.scratchShare, len(members))
		pressure := growScratch(&e.scratchPressure, len(members))
		for i := range share {
			share[i] = w / float64(len(members))
		}
		for iter := 0; iter < 3; iter++ {
			total := 0.0
			for i, a := range members {
				miss := a.cache().MissRatio(a.isoWays + share[i])
				p := float64(a.activeThreads) * a.sens().MemGBpsPerThread * miss
				if p < 1e-9 {
					p = 1e-9
				}
				pressure[i] = p
				total += p
			}
			for i := range members {
				share[i] = w * pressure[i] / total
			}
		}
		for i, a := range members {
			a.effWays += share[i]
		}
	}
}

// missRatio returns the application's miss ratio at its current effective
// ways, including the transient warm-up penalty after repartitioning.
func (e *Engine) missRatio(a *appState) float64 {
	m := a.cache().MissRatio(a.effWays)
	if e.nowMs < a.warmupUntilMs {
		frac := (a.warmupUntilMs - e.nowMs) / e.tun.WarmupMs
		m += e.tun.WarmupMissBoost * frac
	}
	if m > 1 {
		m = 1
	}
	return m
}

// resolveMemBW grants memory bandwidth (isolated MBA units first, then the
// shared pool divided proportionally to residual demand) and combines the
// cache and bandwidth effects into each application's service slowdown,
// normalised so the solo full-resource configuration is 1.
func (e *Engine) resolveMemBW() {
	unitGBps := e.spec.MemBWGBps / float64(e.spec.MemBWUnits)

	reqs := growScratchReq(&e.scratchReqs, len(e.apps))
	miss := growScratch(&e.scratchMiss, len(e.apps))
	for i, a := range e.apps {
		miss[i] = e.missRatio(a)
		demand := a.sens().MemGBpsPerThread * miss[i] * a.totalCoreShare
		isoBW := 0.0
		if g := e.alloc.IsolatedRegionOf(a.name); g != nil {
			isoBW = float64(g.BWUnits) * unitGBps
		}
		granted := math.Min(demand, isoBW)
		reqs[i] = bwReq{app: a, demand: demand, spill: demand - granted, grant: granted}
	}

	for gi := range e.alloc.Regions {
		g := &e.alloc.Regions[gi]
		if g.Kind != machine.Shared || g.BWUnits == 0 {
			continue
		}
		pool := float64(g.BWUnits) * unitGBps
		totalSpill := 0.0
		for i := range reqs {
			if g.Has(reqs[i].app.name) {
				totalSpill += reqs[i].spill
			}
		}
		if totalSpill <= 0 {
			continue
		}
		frac := math.Min(1, pool/totalSpill)
		for i := range reqs {
			if g.Has(reqs[i].app.name) {
				reqs[i].grant += reqs[i].spill * frac
				reqs[i].spill = 0
			}
		}
	}

	for i, a := range e.apps {
		sens := a.sens()
		sat := 1.0
		if reqs[i].demand > 0 {
			sat = reqs[i].grant / reqs[i].demand
		}
		if sat < e.tun.MinBWSatisfaction {
			sat = e.tun.MinBWSatisfaction
		}
		memFactor := 1 + sens.MemSens*(1/sat-1)
		refMiss := a.cache().MissRatio(e.tun.RefWays)
		cacheFactor := (1 + sens.CacheSens*miss[i]) / (1 + sens.CacheSens*refMiss)
		a.slowdown = cacheFactor * memFactor
	}
}

// bwReq tracks one application's bandwidth demand resolution for a tick.
type bwReq struct {
	app    *appState
	demand float64
	spill  float64
	grant  float64
}

// growScratch returns a zeroed float scratch slice of length n, reusing the
// backing array across ticks.
func growScratch(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// growScratchReq is growScratch for bandwidth requests.
func growScratchReq(buf *[]bwReq, n int) []bwReq {
	if cap(*buf) < n {
		*buf = make([]bwReq, n)
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = bwReq{}
	}
	return s
}

// progress advances every in-service request and accumulates best-effort
// work for the tick. LC requests are served by worker-thread "slots": each
// slot is a sequential server with its own wall clock, so a slot that
// finishes a short request picks up the next queued one within the same
// tick (the simulator's throughput is not quantised by the tick), mid-tick
// arrivals only receive service after they arrive, and a request never runs
// on more than one core at a time.
func (e *Engine) progress(dt float64) {
	tickEnd := e.nowMs + dt
	for _, a := range e.apps {
		if a.class == workload.BE {
			if a.totalCoreShare > 0 && a.slowdown > 0 {
				work := a.totalCoreShare * dt / a.slowdown
				a.workWin.Add(work)
				a.runWork += work
			}
			a.runMs += dt
			continue
		}
		if len(a.queue) == 0 {
			continue
		}
		nSlots := a.threads()
		if cap(a.slotClock) < nSlots {
			a.slotClock = make([]float64, nSlots)
			a.slotRate = make([]float64, nSlots)
		}
		clocks := a.slotClock[:nSlots]
		rates := a.slotRate[:nSlots]
		isoSlots := a.isoCores
		if isoSlots > nSlots {
			isoSlots = nSlots
		}
		for i := 0; i < nSlots; i++ {
			clocks[i] = e.nowMs
			speed := a.sharedShare
			if i < isoSlots {
				speed = 1
			}
			rates[i] = speed / a.slowdown // work per wall-clock ms
		}

		kept := a.queue[:0]
		for _, req := range a.queue {
			// Earliest-available slot with a usable rate.
			slot := -1
			for i := 0; i < nSlots; i++ {
				if rates[i] <= 0 {
					continue
				}
				if slot == -1 || clocks[i] < clocks[slot] {
					slot = i
				}
			}
			if slot == -1 {
				kept = append(kept, req)
				continue
			}
			start := clocks[slot]
			if req.arrivalMs > start {
				start = req.arrivalMs
			}
			if req.notBefore > start {
				start = req.notBefore
			}
			if start >= tickEnd {
				kept = append(kept, req)
				continue
			}
			can := (tickEnd - start) * rates[slot]
			if req.remainMs <= can {
				done := start + req.remainMs/rates[slot]
				clocks[slot] = done
				lat := done - req.arrivalMs
				a.latWin.Observe(lat)
				a.runLat = append(a.runLat, lat)
				if req.user >= 0 && req.user < len(a.nextIssue) {
					// Closed loop: the user thinks, then reissues.
					a.nextIssue[req.user] = done + a.rng.ExpFloat64()*a.thinkMean()
				}
				continue
			}
			req.remainMs -= can
			clocks[slot] = tickEnd
			kept = append(kept, req)
		}
		a.queue = kept
	}
}
