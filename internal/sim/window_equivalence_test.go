package sim

import (
	"testing"

	"ahq/internal/machine"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

// TestWindowSizeDoesNotChangeDynamics: the monitoring window is an
// observation boundary, not a simulation boundary — running the same seed
// with 250 ms windows and with 500 ms windows must produce identical
// request-level latencies as long as no allocation changes.
func TestWindowSizeDoesNotChangeDynamics(t *testing.T) {
	build := func() *Engine {
		x, m := workload.MustLC("xapian"), workload.MustLC("moses")
		b := workload.MustBE("stream")
		e, err := New(Config{
			Spec: machine.DefaultSpec(),
			Seed: 77,
			Apps: []AppConfig{
				{LC: &x, Load: trace.Constant(0.5)},
				{LC: &m, Load: trace.Constant(0.2)},
				{BE: &b},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	coarse := build()
	for coarse.NowMs() < 10_000 {
		coarse.RunWindow(500)
	}
	fine := build()
	for fine.NowMs() < 10_000 {
		fine.RunWindow(250)
	}
	stepped := build()
	for stepped.NowMs() < 10_000 {
		stepped.Step()
	}

	a, b, c := coarse.apps[0].runLat, fine.apps[0].runLat, stepped.apps[0].runLat
	if len(a) != len(b) || len(a) != len(c) {
		t.Fatalf("completion counts differ: 500ms=%d 250ms=%d step=%d", len(a), len(b), len(c))
	}
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("latency %d differs: %.6f vs %.6f vs %.6f", i, a[i], b[i], c[i])
		}
	}
}
