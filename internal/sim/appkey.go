package sim

import (
	"strconv"

	"ahq/internal/trace"
)

// Canonical cache-key serialisation of engine inputs, exported next to the
// SolveCache serialiser (solvecache.go) for callers that key work on whole
// node configurations rather than single solves — most importantly the
// fleet engine's node-outcome cache (internal/cluster), whose key must
// cover every input a node simulation reads. The encoding rules are the
// SolveCache's: floats by their IEEE-754 bit patterns (two configurations
// key equal exactly when a simulation would compute on identical values),
// strings length-prefixed so adjacent fields cannot alias.

// AppendKeyFloat appends one float's bit-pattern encoding to b.
func AppendKeyFloat(b []byte, v float64) []byte { return appendBits(b, v) }

// AppendKeyInt appends one integer's encoding to b.
func AppendKeyInt(b []byte, v int) []byte { return appendInt(b, v) }

// AppendKeyInt64 appends one 64-bit integer's encoding to b.
func AppendKeyInt64(b []byte, v int64) []byte {
	b = strconv.AppendInt(b, v, 10)
	return append(b, ',')
}

// AppendKeyString appends a length-prefixed string encoding to b.
func AppendKeyString(b []byte, s string) []byte {
	b = strconv.AppendInt(b, int64(len(s)), 10)
	b = append(b, ':')
	b = append(b, s...)
	return append(b, ',')
}

// AppendTunablesKey appends the canonical encoding of every contention
// tunable to b — the same fields, in the same order, that staticSolveKey
// feeds the cross-engine solve cache.
func AppendTunablesKey(b []byte, t Tunables) []byte {
	for _, v := range [...]float64{
		t.SwitchOverhead, t.PollutionOverhead, t.WarmupMs, t.WarmupMissBoost,
		t.MinBWSatisfaction, t.RefWays, t.TimesliceMs, t.DispatchDelayCapMs,
		t.BatchDrag,
	} {
		b = appendBits(b, v)
	}
	return b
}

// AppendAppKey appends one application configuration's canonical encoding
// to b: the workload model (via its own AppendKey — only the workload
// package sees all of its state), the closed-loop parameters, and the load
// profile. It reports ok=false when the configuration is not
// key-serialisable — a load profile that does not implement trace.Keyed —
// in which case the returned slice must not be used as a key (callers
// treat such configurations as uncacheable rather than guessing).
func AppendAppKey(b []byte, a AppConfig) (_ []byte, ok bool) {
	switch {
	case a.LC != nil:
		b = append(b, 'L')
		b = a.LC.AppendKey(b)
	case a.BE != nil:
		b = append(b, 'B')
		b = a.BE.AppendKey(b)
	default:
		b = append(b, 'N', ',')
	}
	b = appendInt(b, a.ClosedLoopUsers)
	b = appendBits(b, a.ThinkTimeMs)
	switch ld := a.Load.(type) {
	case nil:
		b = append(b, 'n', ',')
	case trace.Keyed:
		b = ld.AppendLoadKey(b)
	default:
		return b, false
	}
	return b, true
}
