package sim

import (
	"testing"

	"ahq/internal/trace"
	"ahq/internal/workload"
)

func keyedLC(name string, load float64) AppConfig {
	app := workload.MustLC(name)
	return AppConfig{LC: &app, Load: trace.Constant(load)}
}

func keyedBE(name string) AppConfig {
	app := workload.MustBE(name)
	return AppConfig{BE: &app}
}

// TestAppendAppKeyInjective spot-checks the property the node cache rests
// on: configurations that would simulate differently serialise differently,
// and equal configurations serialise identically.
func TestAppendAppKeyInjective(t *testing.T) {
	key := func(a AppConfig) (string, bool) {
		b, ok := AppendAppKey(nil, a)
		return string(b), ok
	}
	a1, ok1 := key(keyedLC("xapian", 0.5))
	a2, ok2 := key(keyedLC("xapian", 0.5))
	if !ok1 || !ok2 {
		t.Fatal("catalog LC app must be key-serialisable")
	}
	if a1 != a2 {
		t.Error("equal LC configs got different keys")
	}
	closed := keyedLC("xapian", 0.5)
	closed.ClosedLoopUsers = 16
	closed.ThinkTimeMs = 5
	diurnal := keyedLC("xapian", 0.5)
	diurnal.Load = trace.Diurnal{Lo: 0.2, Hi: 0.8, PeriodMs: 60_000}
	distinct := []AppConfig{
		keyedLC("xapian", 0.7),
		keyedLC("moses", 0.5),
		keyedBE("stream"),
		closed,
		diurnal,
	}
	seen := map[string]int{a1: -1}
	for i, a := range distinct {
		k, ok := key(a)
		if !ok {
			t.Fatalf("variant %d must be key-serialisable", i)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("variants %d and %d share a key", prev, i)
		}
		seen[k] = i
	}
}

// unkeyedLoad is a load profile outside trace's Keyed catalog.
type unkeyedLoad struct{}

func (unkeyedLoad) At(tMs float64) float64 { return 1 }

// TestAppendAppKeyRefusesUnknownLoad pins the conservative fallback: an LC
// app driven by a load profile the key encoding does not know is reported
// uncacheable rather than silently colliding.
func TestAppendAppKeyRefusesUnknownLoad(t *testing.T) {
	app := workload.MustLC("xapian")
	cfg := AppConfig{LC: &app, Load: unkeyedLoad{}}
	if _, ok := AppendAppKey(nil, cfg); ok {
		t.Error("unknown load profile was serialised")
	}
}

// TestAppendTunablesKeyCoversEveryField perturbs each tunable in turn and
// checks the key moves — a field added to Tunables without extending the
// encoding would let two differently-tuned engines share node-cache
// records.
func TestAppendTunablesKeyCoversEveryField(t *testing.T) {
	base := string(AppendTunablesKey(nil, DefaultTunables()))
	perturb := []func(*Tunables){
		func(tu *Tunables) { tu.SwitchOverhead += 0.01 },
		func(tu *Tunables) { tu.PollutionOverhead += 0.01 },
		func(tu *Tunables) { tu.WarmupMs += 0.01 },
		func(tu *Tunables) { tu.WarmupMissBoost += 0.01 },
		func(tu *Tunables) { tu.MinBWSatisfaction += 0.01 },
		func(tu *Tunables) { tu.RefWays += 0.01 },
		func(tu *Tunables) { tu.TimesliceMs += 0.01 },
		func(tu *Tunables) { tu.DispatchDelayCapMs += 0.01 },
		func(tu *Tunables) { tu.BatchDrag += 0.01 },
	}
	for i, f := range perturb {
		tu := DefaultTunables()
		f(&tu)
		if string(AppendTunablesKey(nil, tu)) == base {
			t.Errorf("perturbing tunable %d did not change the key", i)
		}
	}
}
