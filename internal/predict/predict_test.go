package predict

import (
	"errors"
	"math"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/sim"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

// fullShare is the profiling configuration: all cores, all ways, no
// bandwidth contention.
func fullShare() Share {
	return Share{Cores: 10, Ways: 20, BWSatisfaction: 1, RefWays: 20}
}

func TestSlowdownAtReferenceIsOne(t *testing.T) {
	for _, name := range workload.LCNames() {
		app := workload.MustLC(name)
		if got := Slowdown(app, fullShare()); math.Abs(got-1) > 1e-9 {
			t.Errorf("%s: reference slowdown = %g, want 1", name, got)
		}
	}
}

func TestSlowdownGrowsAsResourcesShrink(t *testing.T) {
	app := workload.MustLC("xapian")
	prev := 0.0
	for _, ways := range []float64{20, 10, 5, 2, 1} {
		s := Slowdown(app, Share{Cores: 10, Ways: ways, BWSatisfaction: 1})
		if s < prev {
			t.Fatalf("slowdown shrank as ways dropped to %g", ways)
		}
		prev = s
	}
	sat := Slowdown(app, Share{Cores: 10, Ways: 20, BWSatisfaction: 0.5})
	if sat <= 1 {
		t.Errorf("bandwidth starvation slowdown = %g, want > 1", sat)
	}
}

func TestP95LowLoadApproachesIdeal(t *testing.T) {
	for _, name := range []string{"xapian", "moses", "img-dnn"} {
		app := workload.MustLC(name)
		p95, err := P95(app, fullShare(), 0.10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rel := math.Abs(p95-app.IdealP95Ms) / app.IdealP95Ms; rel > 0.10 {
			t.Errorf("%s: predicted low-load p95 = %.3f, ideal %.3f", name, p95, app.IdealP95Ms)
		}
	}
}

func TestP95MonotoneInLoad(t *testing.T) {
	app := workload.MustLC("xapian")
	prev := 0.0
	for frac := 0.1; frac < 1.1; frac += 0.1 {
		p95, err := P95(app, fullShare(), frac)
		if errors.Is(err, ErrOverloaded) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if p95 < prev-1e-9 {
			t.Fatalf("p95 fell with load at %.0f%%", 100*frac)
		}
		prev = p95
	}
}

func TestOverloadDetection(t *testing.T) {
	app := workload.MustLC("xapian")
	// 100% load on a 0.5-core share is far beyond saturation.
	_, err := P95(app, Share{Cores: 0.5, Ways: 20, BWSatisfaction: 1}, 1.0)
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("err = %v, want ErrOverloaded", err)
	}
	ok, err := Satisfies(app, Share{Cores: 0.5, Ways: 20, BWSatisfaction: 1}, 1.0)
	if err != nil || ok {
		t.Errorf("Satisfies on overload = (%v, %v)", ok, err)
	}
}

// TestPredictionTracksSimulator is the package's contract: across loads and
// resource shares, the analytic p95 must stay within a factor of two of the
// simulated p95 while both are in the stable regime (the predictor is a
// screening model, not a replacement).
func TestPredictionTracksSimulator(t *testing.T) {
	app := workload.MustLC("xapian")
	cases := []struct {
		cores int
		load  float64
	}{
		{10, 0.2}, {10, 0.5}, {10, 0.7},
		{4, 0.2}, {4, 0.5},
		{2, 0.2},
	}
	for _, c := range cases {
		pred, err := P95(app, Share{Cores: float64(c.cores), Ways: 20, BWSatisfaction: 1}, c.load)
		if err != nil {
			t.Fatalf("cores=%d load=%.1f: %v", c.cores, c.load, err)
		}
		simP95 := simulateSolo(t, c.cores, c.load)
		ratio := pred / simP95
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("cores=%d load=%.1f: predicted %.2f vs simulated %.2f (ratio %.2f)",
				c.cores, c.load, pred, simP95, ratio)
		}
	}
}

func simulateSolo(t *testing.T, cores int, load float64) float64 {
	t.Helper()
	app := workload.MustLC("xapian")
	spec := machine.DefaultSpec()
	spec.Cores = cores
	e, err := sim.New(sim.Config{
		Spec: spec,
		Seed: 8,
		Apps: []sim.AppConfig{{LC: &app, Load: trace.Constant(load)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for e.NowMs() < 3_000 {
		e.RunWindow(500)
	}
	e.ResetRunStats()
	for e.NowMs() < 15_000 {
		e.RunWindow(500)
	}
	return e.RunP95("xapian")
}

func TestMaxLoadOrdering(t *testing.T) {
	app := workload.MustLC("xapian")
	rich, err := MaxLoad(app, fullShare())
	if err != nil {
		t.Fatal(err)
	}
	poor, err := MaxLoad(app, Share{Cores: 2, Ways: 4, BWSatisfaction: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if poor >= rich {
		t.Errorf("poor share sustains %.2f >= rich share %.2f", poor, rich)
	}
	if rich < 0.7 || rich > 1.3 {
		t.Errorf("full-share max load = %.2f, expected near 1.0 (the calibrated knee)", rich)
	}
}

func TestP95Validation(t *testing.T) {
	if _, err := P95(workload.LCApp{}, fullShare(), 0.5); err == nil {
		t.Error("invalid app accepted")
	}
	if _, err := P95(workload.MustLC("xapian"), fullShare(), -1); err == nil {
		t.Error("negative load accepted")
	}
}
