// Package predict is a closed-form what-if analyser: given an LC
// application, a tentative resource share and a load, it predicts the p95
// tail latency analytically (log-normal service percentile plus an
// Allen-Cunneen M/G/c queueing correction, both inflated by the same
// cache/bandwidth slowdown model the simulator uses). Predictions are
// validated against the simulator in tests; a controller can use them to
// pre-screen candidate allocations without paying for a simulation — the
// kind of model CLITE's Bayesian optimiser could bootstrap from.
package predict

import (
	"errors"
	"fmt"
	"math"

	"ahq/internal/queueing"
	"ahq/internal/workload"
)

// Share is the resource share a prediction assumes for the application.
type Share struct {
	// Cores is the core capacity available to the application's threads
	// (fractional when shared).
	Cores float64
	// Ways is the effective LLC ways available.
	Ways float64
	// BWSatisfaction is the fraction of demanded memory bandwidth granted
	// (1 when uncontended).
	BWSatisfaction float64
	// RefWays is the normalisation reference (the profiling
	// configuration); 0 means 20, the default node's full LLC.
	RefWays float64
}

// ErrOverloaded is returned when the predicted utilisation reaches 1.
var ErrOverloaded = errors.New("predict: offered load saturates the share")

// Slowdown returns the service inflation the share implies, matching the
// simulator's steady-state model (cache factor times bandwidth factor,
// normalised to the reference configuration).
func Slowdown(app workload.LCApp, sh Share) float64 {
	ref := sh.RefWays
	if ref <= 0 {
		ref = 20
	}
	miss := app.Cache.MissRatio(sh.Ways)
	refMiss := app.Cache.MissRatio(ref)
	cacheFactor := (1 + app.Sens.CacheSens*miss) / (1 + app.Sens.CacheSens*refMiss)
	sat := sh.BWSatisfaction
	if sat <= 0 || sat > 1 {
		sat = 1
	}
	memFactor := 1 + app.Sens.MemSens*(1/sat-1)
	return cacheFactor * memFactor
}

// P95 predicts the application's p95 latency in ms at the given load
// fraction under the share.
func P95(app workload.LCApp, sh Share, loadFrac float64) (float64, error) {
	if err := app.Validate(); err != nil {
		return 0, err
	}
	if loadFrac < 0 {
		return 0, fmt.Errorf("predict: negative load %.3g", loadFrac)
	}
	if sh.Cores <= 0 {
		return math.Inf(1), ErrOverloaded
	}
	slow := Slowdown(app, sh)
	// When the share provides fewer cores than worker threads, the
	// threads timeshare and every request's service stretches in place.
	meanService := app.ServiceMeanMs * slow * stretch(app, sh)

	lambda := loadFrac * app.MaxLoadQPS / 1000
	q := queueing.MGc{
		Servers:       app.Threads,
		ArrivalRate:   lambda,
		MeanServiceMs: meanService,
		ServiceCV2:    queueing.LogNormalCV2(app.ServiceSigma),
	}
	if q.Rho() >= 1 {
		return math.Inf(1), ErrOverloaded
	}
	wait, err := q.WaitPercentile(0.80)
	if err != nil {
		return math.Inf(1), err
	}
	// p95 of (service + wait): approximate by the slowed service p95 plus
	// a high-but-not-extreme wait quantile; the two maxima rarely
	// coincide, and this split tracks the simulator well at the loads the
	// evaluation uses (see tests).
	return app.ServiceP95()*slow*stretch(app, sh) + wait, nil
}

// stretch is the thread-timesharing factor applied to the service
// percentile when the share provides fewer cores than threads.
func stretch(app workload.LCApp, sh Share) float64 {
	if sh.Cores >= float64(app.Threads) || sh.Cores <= 0 {
		return 1
	}
	return float64(app.Threads) / sh.Cores
}

// Satisfies predicts whether the application would meet its QoS target.
func Satisfies(app workload.LCApp, sh Share, loadFrac float64) (bool, error) {
	p95, err := P95(app, sh, loadFrac)
	if errors.Is(err, ErrOverloaded) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return p95 <= app.QoSTargetMs, nil
}

// MaxLoad predicts the largest load fraction (within [0, 1.5], 1%
// resolution) at which the application still meets its target under the
// share; 0 when even idle load violates.
func MaxLoad(app workload.LCApp, sh Share) (float64, error) {
	lo := 0.0
	for frac := 0.01; frac <= 1.5; frac += 0.01 {
		ok, err := Satisfies(app, sh, frac)
		if err != nil {
			return 0, err
		}
		if !ok {
			return lo, nil
		}
		lo = frac
	}
	return lo, nil
}
