package entropy_test

import (
	"fmt"

	"ahq/internal/entropy"
)

// ExampleELC reproduces the Unmanaged/6-core row of the paper's Table II.
func ExampleELC() {
	samples := []entropy.LCSample{
		{Name: "xapian", IdealMs: 2.77, MeasuredMs: 23.99, TargetMs: 4.22},
		{Name: "moses", IdealMs: 2.80, MeasuredMs: 16.54, TargetMs: 10.53},
		{Name: "img-dnn", IdealMs: 1.41, MeasuredMs: 14.35, TargetMs: 3.98},
	}
	elc, err := entropy.ELC(samples)
	if err != nil {
		panic(err)
	}
	fmt.Printf("E_LC = %.2f\n", elc)
	// Output:
	// E_LC = 0.64
}

// ExampleSystem shows the Eq. 7 combination with the paper's RI = 0.8.
func ExampleSystem() {
	lc := []entropy.LCSample{{Name: "xapian", IdealMs: 2.77, MeasuredMs: 6.0, TargetMs: 4.22}}
	be := []entropy.BESample{{Name: "stream", SoloIPC: 0.60, MeasuredIPC: 0.30}}
	elc, ebe, es, err := entropy.System{RI: 0.8}.Compute(lc, be)
	if err != nil {
		panic(err)
	}
	fmt.Printf("E_LC=%.3f E_BE=%.3f E_S=%.3f\n", elc, ebe, es)
	// Output:
	// E_LC=0.297 E_BE=0.500 E_S=0.337
}

// ExampleCurve demonstrates resource equivalence: how many cores the
// Unmanaged strategy needs beyond ARQ to reach the same entropy.
func ExampleCurve() {
	unmanaged, _ := entropy.NewCurve([]entropy.Point{
		{Resource: 4, ES: 0.86}, {Resource: 7, ES: 0.40}, {Resource: 10, ES: 0.05},
	})
	arq, _ := entropy.NewCurve([]entropy.Point{
		{Resource: 4, ES: 0.56}, {Resource: 7, ES: 0.15}, {Resource: 10, ES: 0.05},
	})
	saved, err := entropy.Equivalence(unmanaged, arq, 0.30)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ARQ saves %.1f cores at E_S = 0.30\n", saved)
	// Output:
	// ARQ saves 2.0 cores at E_S = 0.30
}

// ExampleLCSample_RemainingTolerance shows the ARQ signal quantities.
func ExampleLCSample_RemainingTolerance() {
	s := entropy.LCSample{Name: "moses", IdealMs: 2.80, MeasuredMs: 6.78, TargetMs: 10.53}
	fmt.Printf("ReT = %.2f, Q = %.2f\n", s.RemainingTolerance(), s.Intolerable())
	// Output:
	// ReT = 0.36, Q = 0.00
}
