package entropy

import (
	"math"
	"testing"
	"testing/quick"
)

func mustCurve(t *testing.T, pts []Point) *Curve {
	t.Helper()
	c, err := NewCurve(pts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCurveInterpolation(t *testing.T) {
	c := mustCurve(t, []Point{{4, 0.8}, {6, 0.4}, {8, 0.2}, {10, 0.1}})
	cases := []struct {
		r, want float64
	}{
		{4, 0.8}, {5, 0.6}, {6, 0.4}, {7, 0.3}, {10, 0.1},
		{3, 0.8},  // clamp low
		{12, 0.1}, // clamp high
	}
	for _, cse := range cases {
		if got := c.ESAt(cse.r); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("ESAt(%g) = %g, want %g", cse.r, got, cse.want)
		}
	}
}

func TestResourceFor(t *testing.T) {
	c := mustCurve(t, []Point{{4, 0.8}, {6, 0.4}, {8, 0.2}})
	r, err := c.ResourceFor(0.4)
	if err != nil || math.Abs(r-6) > 1e-9 {
		t.Errorf("ResourceFor(0.4) = %g (%v), want 6", r, err)
	}
	r, err = c.ResourceFor(0.6)
	if err != nil || math.Abs(r-5) > 1e-9 {
		t.Errorf("ResourceFor(0.6) = %g (%v), want 5", r, err)
	}
	// Already satisfied at the scarce end.
	r, err = c.ResourceFor(0.9)
	if err != nil || r != 4 {
		t.Errorf("ResourceFor(0.9) = %g (%v), want 4", r, err)
	}
	// Unreachable.
	if _, err := c.ResourceFor(0.05); err == nil {
		t.Error("unreachable entropy accepted")
	}
}

func TestEquivalenceMatchesPaperShape(t *testing.T) {
	// Synthetic version of Fig. 3(a): the better strategy's curve sits
	// left of the baseline's, so the equivalence is positive.
	unmanaged := mustCurve(t, []Point{{4, 0.9}, {6, 0.6}, {8, 0.25}, {10, 0.05}})
	arq := mustCurve(t, []Point{{4, 0.5}, {6, 0.2}, {8, 0.1}, {10, 0.04}})
	eq, err := Equivalence(unmanaged, arq, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if eq <= 0 {
		t.Errorf("equivalence = %g, want positive (ARQ saves resources)", eq)
	}
	// Swapping roles negates it.
	rev, err := Equivalence(arq, unmanaged, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eq+rev) > 1e-9 {
		t.Errorf("equivalence not antisymmetric: %g vs %g", eq, rev)
	}
}

func TestCurveValidation(t *testing.T) {
	if _, err := NewCurve([]Point{{1, 0.5}}); err == nil {
		t.Error("single-point curve accepted")
	}
	if _, err := NewCurve([]Point{{1, 0.5}, {1, 0.4}}); err == nil {
		t.Error("duplicate resource amounts accepted")
	}
}

func TestMonotoneViolation(t *testing.T) {
	flat := mustCurve(t, []Point{{4, 0.8}, {6, 0.4}, {8, 0.2}})
	if v := flat.MonotoneViolation(); v != 0 {
		t.Errorf("monotone curve violation = %g", v)
	}
	bumpy := mustCurve(t, []Point{{4, 0.8}, {6, 0.4}, {8, 0.45}})
	if v := bumpy.MonotoneViolation(); math.Abs(v-0.05) > 1e-9 {
		t.Errorf("violation = %g, want 0.05", v)
	}
}

func TestCurveProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		// Build a strictly decreasing curve over distinct resources.
		pts := make([]Point, len(raw))
		for i := range raw {
			pts[i] = Point{
				Resource: float64(i + 1),
				ES:       1 / (1 + float64(i) + float64(raw[i]%100)/1000),
			}
		}
		c, err := NewCurve(pts)
		if err != nil {
			return false
		}
		// ResourceFor inverts ESAt on the curve's range.
		target := (pts[0].ES + pts[len(pts)-1].ES) / 2
		r, err := c.ResourceFor(target)
		if err != nil {
			return false
		}
		return math.Abs(c.ESAt(r)-target) < 1e-6 && c.Min() == pts[len(pts)-1].ES
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPoints(t *testing.T) {
	in := []Point{{8, 0.2}, {4, 0.8}}
	c := mustCurve(t, in)
	pts := c.Points()
	if len(pts) != 2 || pts[0].Resource != 4 || pts[1].Resource != 8 {
		t.Errorf("Points() = %v", pts)
	}
	pts[0].ES = 99
	if c.ESAt(4) == 99 {
		t.Error("Points() exposes internal storage")
	}
}
