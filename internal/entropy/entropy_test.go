package entropy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// table2Row6Cores is one verbatim row set from the paper's Table II
// (Unmanaged, 6 cores): the per-application quantities and entropies our
// expressions must reproduce from the raw latencies.
func table2Row6Cores() []LCSample {
	return []LCSample{
		{Name: "xapian", IdealMs: 2.77, MeasuredMs: 23.99, TargetMs: 4.22},
		{Name: "moses", IdealMs: 2.80, MeasuredMs: 16.54, TargetMs: 10.53},
		{Name: "img-dnn", IdealMs: 1.41, MeasuredMs: 14.35, TargetMs: 3.98},
	}
}

func TestTableIIQuantities(t *testing.T) {
	rows := table2Row6Cores()
	// Paper values: A = {0.34, 0.73, 0.65}, R = {0.88, 0.83, 0.90},
	// Q = {0.82, 0.36, 0.72}, all ReT = 0, E_LC = 0.64.
	wantA := []float64{0.34, 0.73, 0.65}
	wantR := []float64{0.88, 0.83, 0.90}
	wantQ := []float64{0.82, 0.36, 0.72}
	for i, s := range rows {
		if got := s.Tolerance(); math.Abs(got-wantA[i]) > 0.01 {
			t.Errorf("%s: A = %.3f, want %.2f", s.Name, got, wantA[i])
		}
		if got := s.Interference(); math.Abs(got-wantR[i]) > 0.01 {
			t.Errorf("%s: R = %.3f, want %.2f", s.Name, got, wantR[i])
		}
		if got := s.Intolerable(); math.Abs(got-wantQ[i]) > 0.01 {
			t.Errorf("%s: Q = %.3f, want %.2f", s.Name, got, wantQ[i])
		}
		if got := s.RemainingTolerance(); got != 0 {
			t.Errorf("%s: ReT = %.3f, want 0", s.Name, got)
		}
		if s.Satisfied() {
			t.Errorf("%s reported satisfied while violating", s.Name)
		}
	}
	elc, err := ELC(rows)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(elc-0.64) > 0.01 {
		t.Errorf("E_LC = %.3f, want 0.64 (Table II)", elc)
	}
}

func TestTableII8CoresSatisfied(t *testing.T) {
	// At 8 cores the paper's latencies all sit below target: E_LC = 0.
	rows := []LCSample{
		{Name: "xapian", IdealMs: 2.77, MeasuredMs: 4.18, TargetMs: 4.22},
		{Name: "moses", IdealMs: 2.80, MeasuredMs: 4.43, TargetMs: 10.53},
		{Name: "img-dnn", IdealMs: 1.41, MeasuredMs: 3.53, TargetMs: 3.98},
	}
	elc, err := ELC(rows)
	if err != nil {
		t.Fatal(err)
	}
	if elc != 0 {
		t.Errorf("E_LC = %g, want 0", elc)
	}
	wantReT := []float64{0.01, 0.58, 0.11}
	for i, s := range rows {
		if got := s.RemainingTolerance(); math.Abs(got-wantReT[i]) > 0.01 {
			t.Errorf("%s: ReT = %.3f, want %.2f", s.Name, got, wantReT[i])
		}
	}
	y, err := Yield(rows)
	if err != nil {
		t.Fatal(err)
	}
	if y != 1 {
		t.Errorf("yield = %g, want 1", y)
	}
}

func TestEBE(t *testing.T) {
	// Single BE app at half speed: E_BE = 1 - 1/2 = 0.5.
	ebe, err := EBE([]BESample{{SoloIPC: 2, MeasuredIPC: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ebe-0.5) > 1e-12 {
		t.Errorf("E_BE = %g, want 0.5", ebe)
	}
	// No interference: 0. Faster than solo clamps to 0 too.
	for _, m := range []float64{2.0, 2.5} {
		ebe, err = EBE([]BESample{{SoloIPC: 2, MeasuredIPC: m}})
		if err != nil {
			t.Fatal(err)
		}
		if ebe != 0 {
			t.Errorf("E_BE(measured=%g) = %g, want 0", m, ebe)
		}
	}
	// Harmonic combination: slowdowns 1 and 3 -> E_BE = 1 - 2/4 = 0.5.
	ebe, err = EBE([]BESample{
		{SoloIPC: 1, MeasuredIPC: 1},
		{SoloIPC: 3, MeasuredIPC: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ebe-0.5) > 1e-12 {
		t.Errorf("harmonic E_BE = %g, want 0.5", ebe)
	}
}

func TestSystemCombination(t *testing.T) {
	lc := []LCSample{{IdealMs: 1, MeasuredMs: 4, TargetMs: 2}} // Q = 0.5
	be := []BESample{{SoloIPC: 2, MeasuredIPC: 1}}             // E_BE = 0.5
	elc, ebe, es, err := System{RI: 0.8}.Compute(lc, be)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(elc-0.5) > 1e-12 || math.Abs(ebe-0.5) > 1e-12 {
		t.Fatalf("elc=%g ebe=%g", elc, ebe)
	}
	if math.Abs(es-0.5) > 1e-12 {
		t.Errorf("E_S = %g, want 0.5", es)
	}

	// Scenario 1: LC only forces RI -> 1.
	_, _, es, err = System{RI: 0.3}.Compute(lc, nil)
	if err != nil || math.Abs(es-0.5) > 1e-12 {
		t.Errorf("LC-only E_S = %g (err %v), want E_LC", es, err)
	}
	// Scenario 2: BE only forces RI -> 0.
	_, _, es, err = System{RI: 0.9}.Compute(nil, be)
	if err != nil || math.Abs(es-0.5) > 1e-12 {
		t.Errorf("BE-only E_S = %g (err %v), want E_BE", es, err)
	}
}

func TestSystemErrors(t *testing.T) {
	if _, _, _, err := (System{RI: 1.5}).Compute(nil, []BESample{{SoloIPC: 1, MeasuredIPC: 1}}); err == nil {
		t.Error("RI out of range accepted")
	}
	if _, _, _, err := (System{RI: 0.8}).Compute(nil, nil); !errors.Is(err, ErrNoSamples) {
		t.Error("empty compute should return ErrNoSamples")
	}
	if _, err := ELC(nil); !errors.Is(err, ErrNoSamples) {
		t.Error("empty ELC should return ErrNoSamples")
	}
	if _, err := EBE(nil); !errors.Is(err, ErrNoSamples) {
		t.Error("empty EBE should return ErrNoSamples")
	}
	if _, err := Yield(nil); !errors.Is(err, ErrNoSamples) {
		t.Error("empty Yield should return ErrNoSamples")
	}
}

func TestLCSampleValidate(t *testing.T) {
	bad := []LCSample{
		{IdealMs: 0, MeasuredMs: 1, TargetMs: 2},
		{IdealMs: 2, MeasuredMs: 1, TargetMs: 2}, // target <= ideal
		{IdealMs: 1, MeasuredMs: 0, TargetMs: 2}, // bad measurement
		{IdealMs: 1, MeasuredMs: math.NaN(), TargetMs: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad sample %d accepted", i)
		}
	}
	if err := (LCSample{IdealMs: 1, MeasuredMs: 0.5, TargetMs: 2}).Validate(); err != nil {
		t.Errorf("faster-than-ideal measurement rejected: %v", err)
	}
}

func TestBESampleValidate(t *testing.T) {
	for i, s := range []BESample{
		{SoloIPC: 0, MeasuredIPC: 1},
		{SoloIPC: 1, MeasuredIPC: 0},
		{SoloIPC: 1, MeasuredIPC: math.NaN()},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("bad sample %d accepted", i)
		}
	}
}

// Property ①: dimensionless, in [0,1], for any valid measurements.
func TestPropertyDimensionless(t *testing.T) {
	f := func(idealRaw, gapRaw, measRaw uint16, soloRaw, realRaw uint16) bool {
		ideal := float64(idealRaw%1000)/100 + 0.01
		target := ideal + float64(gapRaw%1000)/100 + 0.01
		measured := float64(measRaw%10000)/100 + 0.001
		solo := float64(soloRaw%400)/100 + 0.01
		real := float64(realRaw%400)/100 + 0.01
		lc := []LCSample{{IdealMs: ideal, MeasuredMs: measured, TargetMs: target}}
		be := []BESample{{SoloIPC: solo, MeasuredIPC: real}}
		elc, ebe, es, err := System{RI: 0.8}.Compute(lc, be)
		if err != nil {
			return false
		}
		in01 := func(v float64) bool { return v >= 0 && v <= 1 }
		s := lc[0]
		return in01(elc) && in01(ebe) && in01(es) &&
			in01(s.Tolerance()) && in01(s.Interference()) &&
			in01(s.RemainingTolerance()) && in01(s.Intolerable())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Q and ReT are complementary: exactly one is nonzero unless both are zero
// at the boundary, and Q grows with measured latency.
func TestPropertyQReTComplementary(t *testing.T) {
	f := func(measRaw uint16) bool {
		s := LCSample{IdealMs: 1, TargetMs: 3, MeasuredMs: float64(measRaw%1000)/100 + 0.01}
		q, ret := s.Intolerable(), s.RemainingTolerance()
		if q > 0 && ret > 0 {
			return false
		}
		// Monotonicity: more latency, no less intolerable interference.
		worse := s
		worse.MeasuredMs += 1
		return worse.Intolerable() >= q-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// E_S is monotone in RI when E_LC > E_BE (and vice versa).
func TestPropertyRIMonotone(t *testing.T) {
	lc := []LCSample{{IdealMs: 1, MeasuredMs: 10, TargetMs: 2}} // high E_LC
	be := []BESample{{SoloIPC: 1, MeasuredIPC: 0.95}}           // low E_BE
	prev := -1.0
	for ri := 0.0; ri <= 1.0; ri += 0.1 {
		_, _, es, err := System{RI: ri}.Compute(lc, be)
		if err != nil {
			t.Fatal(err)
		}
		if es < prev-1e-12 {
			t.Fatalf("E_S not monotone in RI at %g", ri)
		}
		prev = es
	}
}

func TestESConvenience(t *testing.T) {
	lc := []LCSample{{IdealMs: 1, MeasuredMs: 4, TargetMs: 2}}
	be := []BESample{{SoloIPC: 2, MeasuredIPC: 1}}
	es, err := ES(lc, be)
	if err != nil {
		t.Fatal(err)
	}
	_, _, want, _ := System{RI: DefaultRI}.Compute(lc, be)
	if es != want {
		t.Errorf("ES = %g, want %g", es, want)
	}
}
