package entropy

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Curve is an empirical E_S(resource) relation: entropy measured at a set
// of resource amounts under one scheduling strategy. Resource equivalence
// questions ("how many cores does strategy p2 save over p1 at the same
// E_S?", Section II-C) are answered by inverting such curves.
type Curve struct {
	points []Point
}

// Point is one (resource amount, entropy) measurement.
type Point struct {
	Resource float64
	ES       float64
}

// NewCurve builds a curve from measurements; points are sorted by resource
// amount. At least two points are required to interpolate.
func NewCurve(points []Point) (*Curve, error) {
	if len(points) < 2 {
		return nil, errors.New("entropy: equivalence curve needs at least two points")
	}
	ps := append([]Point(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Resource < ps[j].Resource })
	for i := 1; i < len(ps); i++ {
		//ahqlint:allow floatcmp exact duplicate detection on caller-supplied amounts, not computed values
		if ps[i].Resource == ps[i-1].Resource {
			return nil, fmt.Errorf("entropy: duplicate resource amount %.4g in curve", ps[i].Resource)
		}
	}
	return &Curve{points: ps}, nil
}

// ESAt linearly interpolates the entropy at the given resource amount,
// clamping outside the measured range.
func (c *Curve) ESAt(resource float64) float64 {
	ps := c.points
	if resource <= ps[0].Resource {
		return ps[0].ES
	}
	if resource >= ps[len(ps)-1].Resource {
		return ps[len(ps)-1].ES
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Resource >= resource }) - 1
	a, b := ps[i], ps[i+1]
	t := (resource - a.Resource) / (b.Resource - a.Resource)
	return a.ES*(1-t) + b.ES*t
}

// ResourceFor returns the smallest resource amount at which the curve
// reaches entropy es, interpolating between measurements. Entropy decreases
// (weakly) with resources, so this inverts the curve from the high-entropy
// side. It returns an error when the curve never reaches es.
func (c *Curve) ResourceFor(es float64) (float64, error) {
	ps := c.points
	// Walk from the scarce-resource end; find the first segment that
	// crosses es going down.
	if ps[0].ES <= es {
		return ps[0].Resource, nil
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].ES <= es {
			a, b := ps[i-1], ps[i]
			//ahqlint:allow floatcmp guards the exact-zero denominator of the interpolation below
			if a.ES == b.ES {
				return b.Resource, nil
			}
			t := (a.ES - es) / (a.ES - b.ES)
			return a.Resource + t*(b.Resource-a.Resource), nil
		}
	}
	return 0, fmt.Errorf("entropy: curve never reaches E_S = %.3g (min %.3g)", es, ps[len(ps)-1].ES)
}

// Equivalence returns the resource equivalence of strategy "better" relative
// to strategy "baseline" at system entropy es: how many more resource units
// the baseline needs to match the better strategy's entropy,
// Delta R = R_baseline(es) - R_better(es). Positive values mean "better"
// saves resources.
func Equivalence(baseline, better *Curve, es float64) (float64, error) {
	rb, err := baseline.ResourceFor(es)
	if err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	rg, err := better.ResourceFor(es)
	if err != nil {
		return 0, fmt.Errorf("better: %w", err)
	}
	return rb - rg, nil
}

// MonotoneViolation returns the largest increase of entropy between
// consecutive points as resources grow (0 for a perfectly monotone curve).
// The paper's property ② requires E_S to not increase with resources;
// simulation noise permits small violations, which tests bound.
func (c *Curve) MonotoneViolation() float64 {
	worst := 0.0
	for i := 1; i < len(c.points); i++ {
		if d := c.points[i].ES - c.points[i-1].ES; d > worst {
			worst = d
		}
	}
	return worst
}

// Min returns the smallest entropy on the curve.
func (c *Curve) Min() float64 {
	m := math.Inf(1)
	for _, p := range c.points {
		if p.ES < m {
			m = p.ES
		}
	}
	return m
}

// Points returns a copy of the curve's points, sorted by resource amount.
func (c *Curve) Points() []Point {
	return append([]Point(nil), c.points...)
}
