package entropy

import (
	"errors"
	"fmt"
)

// The paper notes (end of Section II-B) that the E_S model "can be extended
// to involve different RI factors among the same type of applications".
// WeightedSystem is that extension: per-application importance weights
// within each class, reducing to the plain model when all weights are
// equal.

// Weighted pairs a sample with its relative importance within its class.
// Weights are normalised internally, so only ratios matter.
type Weighted[T any] struct {
	Sample T
	Weight float64
}

// ErrBadWeight is returned for non-positive weights.
var ErrBadWeight = errors.New("entropy: weights must be positive")

// WeightedELC generalises Eq. 5 to a weighted mean of the intolerable
// interference Q_i.
func WeightedELC(samples []Weighted[LCSample]) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	var sum, wsum float64
	for _, s := range samples {
		if err := s.Sample.Validate(); err != nil {
			return 0, err
		}
		if s.Weight <= 0 {
			return 0, fmt.Errorf("%w: %s has weight %.3g", ErrBadWeight, s.Sample.labelled(), s.Weight)
		}
		sum += s.Weight * s.Sample.Intolerable()
		wsum += s.Weight
	}
	return sum / wsum, nil
}

// WeightedEBE generalises Eq. 6: one minus the weighted harmonic mean of
// IPC retention.
func WeightedEBE(samples []Weighted[BESample]) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	var sum, wsum float64
	for _, s := range samples {
		if err := s.Sample.Validate(); err != nil {
			return 0, err
		}
		if s.Weight <= 0 {
			label := s.Sample.Name
			if label == "" {
				label = "BE app"
			}
			return 0, fmt.Errorf("%w: %s has weight %.3g", ErrBadWeight, label, s.Weight)
		}
		sum += s.Weight * s.Sample.Slowdown()
		wsum += s.Weight
	}
	return 1 - wsum/sum, nil
}

// WeightedSystem combines the weighted class entropies with the LC/BE
// relative importance, exactly as Eq. 7 does for the unweighted ones.
type WeightedSystem struct {
	// RI is the relative importance of the LC class, in [0,1].
	RI float64
}

// Compute returns (E_LC, E_BE, E_S) under per-application weights. Class
// degeneration follows the plain model: with one class absent, E_S is the
// other class's entropy.
func (sys WeightedSystem) Compute(lc []Weighted[LCSample], be []Weighted[BESample]) (elc, ebe, es float64, err error) {
	if sys.RI < 0 || sys.RI > 1 {
		return 0, 0, 0, fmt.Errorf("entropy: relative importance %.3g outside [0,1]", sys.RI)
	}
	if len(lc) == 0 && len(be) == 0 {
		return 0, 0, 0, ErrNoSamples
	}
	ri := sys.RI
	if len(lc) == 0 {
		ri = 0
	} else {
		elc, err = WeightedELC(lc)
		if err != nil {
			return 0, 0, 0, err
		}
	}
	if len(be) == 0 {
		ri = 1
	} else {
		ebe, err = WeightedEBE(be)
		if err != nil {
			return 0, 0, 0, err
		}
	}
	return elc, ebe, ri*elc + (1-ri)*ebe, nil
}

// EvenLCWeights adapts plain samples to the weighted form with weight 1.
func EvenLCWeights(samples []LCSample) []Weighted[LCSample] {
	out := make([]Weighted[LCSample], len(samples))
	for i, s := range samples {
		out[i] = Weighted[LCSample]{Sample: s, Weight: 1}
	}
	return out
}

// EvenBEWeights adapts plain samples to the weighted form with weight 1.
func EvenBEWeights(samples []BESample) []Weighted[BESample] {
	out := make([]Weighted[BESample], len(samples))
	for i, s := range samples {
		out[i] = Weighted[BESample]{Sample: s, Weight: 1}
	}
	return out
}
