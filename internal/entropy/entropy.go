// Package entropy implements the system-entropy theory of the Ah-Q paper
// (Section II): the per-application interference quantities A, R, ReT and Q
// (Eqs. 1-4), the LC and BE entropies E_LC and E_BE (Eqs. 5-6), their
// combination into the system entropy E_S (Eq. 7), the yield metric, and
// the derived notion of resource equivalence (Section II-C).
//
// All quantities are dimensionless and lie in [0, 1]; 0 means no
// intolerable interference and values near 1 mean severe interference.
package entropy

import (
	"errors"
	"fmt"
	"math"
)

// DefaultRI is the relative importance of LC over BE applications used
// throughout the paper's evaluation.
const DefaultRI = 0.8

// ThresholdElasticity is the relative elasticity the paper assumes for the
// user-defined tail-latency threshold M_i (Section II-B): violations within
// 5% of M_i are considered within the threshold's slack.
const ThresholdElasticity = 0.05

// LCSample is one latency-critical application's measurement triple.
type LCSample struct {
	// Name identifies the application (optional; used in reports).
	Name string
	// IdealMs is TL_i0: the p95 with ample resources and no co-runners.
	IdealMs float64
	// MeasuredMs is TL_i1: the p95 under collocation.
	MeasuredMs float64
	// TargetMs is M_i: the maximum tolerable p95.
	TargetMs float64
}

// Validate reports whether the sample is usable: the ideal latency must be
// positive and below the target (an application whose ideal latency already
// violates its own target is misconfigured, cf. A_i in [0,1]).
func (s LCSample) Validate() error {
	if s.IdealMs <= 0 {
		return fmt.Errorf("entropy: %s: ideal latency %.4g must be positive", s.labelled(), s.IdealMs)
	}
	if s.TargetMs <= s.IdealMs {
		return fmt.Errorf("entropy: %s: target %.4g must exceed ideal latency %.4g",
			s.labelled(), s.TargetMs, s.IdealMs)
	}
	if s.MeasuredMs <= 0 || math.IsNaN(s.MeasuredMs) {
		return fmt.Errorf("entropy: %s: measured latency %.4g must be positive", s.labelled(), s.MeasuredMs)
	}
	return nil
}

func (s LCSample) labelled() string {
	if s.Name == "" {
		return "LC app"
	}
	return s.Name
}

// Tolerance returns A_i = 1 - TL_i0/M_i (Eq. 1): how much interference the
// application can absorb before violating its target. Range [0, 1).
func (s LCSample) Tolerance() float64 {
	return 1 - s.IdealMs/s.TargetMs
}

// Interference returns R_i = 1 - TL_i0/TL_i1 (Eq. 2): the interference the
// application actually suffered. Clamped at 0 when the measured latency
// dips below the ideal (sampling noise).
func (s LCSample) Interference() float64 {
	if s.MeasuredMs <= s.IdealMs {
		return 0
	}
	return 1 - s.IdealMs/s.MeasuredMs
}

// RemainingTolerance returns ReT_i (Eq. 3): the headroom 1 - TL_i1/M_i left
// before the target is hit, or 0 once the suffered interference exceeds the
// tolerance. ARQ's victim/beneficiary selection keys off this value.
func (s LCSample) RemainingTolerance() float64 {
	if s.Tolerance() > s.Interference() {
		return 1 - s.MeasuredMs/s.TargetMs
	}
	return 0
}

// Intolerable returns Q_i (Eq. 4): the part of the interference the
// application could not absorb, 1 - M_i/TL_i1 when R_i > A_i and 0
// otherwise.
func (s LCSample) Intolerable() float64 {
	if s.Interference() > s.Tolerance() {
		return 1 - s.TargetMs/s.MeasuredMs
	}
	return 0
}

// Satisfied reports whether the application met its QoS target, i.e. its
// intolerable interference is zero.
func (s LCSample) Satisfied() bool { return s.Intolerable() == 0 }

// BESample is one best-effort application's measurement pair.
type BESample struct {
	// Name identifies the application (optional; used in reports).
	Name string
	// SoloIPC is the IPC running alone on the full node.
	SoloIPC float64
	// MeasuredIPC is the IPC under collocation.
	MeasuredIPC float64
}

// Validate reports whether the sample is usable.
func (s BESample) Validate() error {
	label := s.Name
	if label == "" {
		label = "BE app"
	}
	if s.SoloIPC <= 0 {
		return fmt.Errorf("entropy: %s: solo IPC %.4g must be positive", label, s.SoloIPC)
	}
	if s.MeasuredIPC <= 0 || math.IsNaN(s.MeasuredIPC) {
		return fmt.Errorf("entropy: %s: measured IPC %.4g must be positive", label, s.MeasuredIPC)
	}
	return nil
}

// Slowdown returns IPC_solo/IPC_real, clamped at 1 when the collocated IPC
// exceeds the solo IPC (noise).
func (s BESample) Slowdown() float64 {
	sl := s.SoloIPC / s.MeasuredIPC
	if sl < 1 {
		return 1
	}
	return sl
}

// ErrNoSamples is returned when an entropy is requested for an empty class.
var ErrNoSamples = errors.New("entropy: no samples")

// ELC returns the LC entropy (Eq. 5): the mean intolerable interference of
// the latency-critical applications.
func ELC(samples []LCSample) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	sum := 0.0
	for _, s := range samples {
		if err := s.Validate(); err != nil {
			return 0, err
		}
		sum += s.Intolerable()
	}
	return sum / float64(len(samples)), nil
}

// EBE returns the BE entropy (Eq. 6): one minus the harmonic mean of the
// best-effort applications' IPC retention.
func EBE(samples []BESample) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	sum := 0.0
	for _, s := range samples {
		if err := s.Validate(); err != nil {
			return 0, err
		}
		sum += s.Slowdown()
	}
	return 1 - float64(len(samples))/sum, nil
}

// Yield returns the ratio of satisfied LC applications — the paper's yield
// metric.
func Yield(samples []LCSample) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	ok := 0
	for _, s := range samples {
		if err := s.Validate(); err != nil {
			return 0, err
		}
		if s.Satisfied() {
			ok++
		}
	}
	return float64(ok) / float64(len(samples)), nil
}

// System combines the class entropies per Eq. 7 with relative importance
// ri. The two degenerate scenarios of the paper fall out naturally: pass
// only LC samples (E_S = E_LC regardless of ri's BE weight… see SystemRI)
// or only BE samples.
type System struct {
	// RI is the relative importance of the LC class, in [0,1]; the paper
	// uses 0.8 and restricts to [0.5,1] when resources are scarce.
	RI float64
}

// Compute returns (E_LC, E_BE, E_S) for a mixed collocation. When one class
// is absent its entropy is 0 and the weighting collapses to the other class
// alone (RI is forced to 1 for LC-only and 0 for BE-only, Scenario 1 and 2
// of Section II-B).
func (sys System) Compute(lc []LCSample, be []BESample) (elc, ebe, es float64, err error) {
	if sys.RI < 0 || sys.RI > 1 {
		return 0, 0, 0, fmt.Errorf("entropy: relative importance %.3g outside [0,1]", sys.RI)
	}
	if len(lc) == 0 && len(be) == 0 {
		return 0, 0, 0, ErrNoSamples
	}
	ri := sys.RI
	if len(lc) == 0 {
		ri = 0
	} else {
		elc, err = ELC(lc)
		if err != nil {
			return 0, 0, 0, err
		}
	}
	if len(be) == 0 {
		ri = 1
	} else {
		ebe, err = EBE(be)
		if err != nil {
			return 0, 0, 0, err
		}
	}
	es = ri*elc + (1-ri)*ebe
	return elc, ebe, es, nil
}

// ES is a convenience wrapper over System{RI: DefaultRI}.Compute returning
// only the system entropy.
func ES(lc []LCSample, be []BESample) (float64, error) {
	_, _, es, err := System{RI: DefaultRI}.Compute(lc, be)
	return es, err
}
