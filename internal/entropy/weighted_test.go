package entropy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedReducesToPlainWithEqualWeights(t *testing.T) {
	lc := table2Row6Cores()
	be := []BESample{{SoloIPC: 2.7, MeasuredIPC: 1.3}, {SoloIPC: 0.6, MeasuredIPC: 0.2}}

	plainELC, _ := ELC(lc)
	plainEBE, _ := EBE(be)
	_, _, plainES, _ := System{RI: 0.8}.Compute(lc, be)

	welc, err := WeightedELC(EvenLCWeights(lc))
	if err != nil {
		t.Fatal(err)
	}
	webe, err := WeightedEBE(EvenBEWeights(be))
	if err != nil {
		t.Fatal(err)
	}
	_, _, wes, err := WeightedSystem{RI: 0.8}.Compute(EvenLCWeights(lc), EvenBEWeights(be))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(welc-plainELC) > 1e-12 || math.Abs(webe-plainEBE) > 1e-12 || math.Abs(wes-plainES) > 1e-12 {
		t.Errorf("weighted (%.4f, %.4f, %.4f) != plain (%.4f, %.4f, %.4f)",
			welc, webe, wes, plainELC, plainEBE, plainES)
	}
}

func TestWeightedELCShiftsTowardHeavyApp(t *testing.T) {
	good := LCSample{Name: "ok", IdealMs: 1, MeasuredMs: 1.5, TargetMs: 3} // Q = 0
	bad := LCSample{Name: "bad", IdealMs: 1, MeasuredMs: 10, TargetMs: 2}  // Q = 0.8
	up := []Weighted[LCSample]{{good, 1}, {bad, 9}}
	down := []Weighted[LCSample]{{good, 9}, {bad, 1}}
	hi, err := WeightedELC(up)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := WeightedELC(down)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < hi) {
		t.Errorf("weighting the violator up should raise E_LC: %g vs %g", lo, hi)
	}
	if math.Abs(hi-0.9*bad.Intolerable()) > 1e-12 {
		t.Errorf("hi = %g, want %g", hi, 0.9*bad.Intolerable())
	}
}

func TestWeightedScaleInvariance(t *testing.T) {
	// Multiplying all weights by a constant must not change anything.
	f := func(w1Raw, w2Raw, kRaw uint16) bool {
		w1 := float64(w1Raw%100) + 1
		w2 := float64(w2Raw%100) + 1
		k := float64(kRaw%50) + 1
		lc := []Weighted[LCSample]{
			{LCSample{IdealMs: 1, MeasuredMs: 5, TargetMs: 2}, w1},
			{LCSample{IdealMs: 1, MeasuredMs: 1.2, TargetMs: 2}, w2},
		}
		scaled := []Weighted[LCSample]{
			{lc[0].Sample, w1 * k},
			{lc[1].Sample, w2 * k},
		}
		a, err1 := WeightedELC(lc)
		b, err2 := WeightedELC(scaled)
		return err1 == nil && err2 == nil && math.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWeightedValidation(t *testing.T) {
	lc := []Weighted[LCSample]{{LCSample{IdealMs: 1, MeasuredMs: 2, TargetMs: 3}, 0}}
	if _, err := WeightedELC(lc); !errors.Is(err, ErrBadWeight) {
		t.Errorf("zero weight: %v", err)
	}
	be := []Weighted[BESample]{{BESample{SoloIPC: 1, MeasuredIPC: 1}, -1}}
	if _, err := WeightedEBE(be); !errors.Is(err, ErrBadWeight) {
		t.Errorf("negative weight: %v", err)
	}
	if _, err := WeightedELC(nil); !errors.Is(err, ErrNoSamples) {
		t.Error("empty weighted ELC")
	}
	if _, _, _, err := (WeightedSystem{RI: 2}).Compute(nil, EvenBEWeights([]BESample{{SoloIPC: 1, MeasuredIPC: 1}})); err == nil {
		t.Error("bad RI accepted")
	}
}

func TestWeightedSystemDegeneration(t *testing.T) {
	lc := EvenLCWeights([]LCSample{{IdealMs: 1, MeasuredMs: 4, TargetMs: 2}})
	be := EvenBEWeights([]BESample{{SoloIPC: 2, MeasuredIPC: 1}})
	_, _, es, err := WeightedSystem{RI: 0.3}.Compute(lc, nil)
	if err != nil || math.Abs(es-0.5) > 1e-12 {
		t.Errorf("LC-only: es=%g err=%v", es, err)
	}
	_, _, es, err = WeightedSystem{RI: 0.9}.Compute(nil, be)
	if err != nil || math.Abs(es-0.5) > 1e-12 {
		t.Errorf("BE-only: es=%g err=%v", es, err)
	}
	if _, _, _, err := (WeightedSystem{RI: 0.5}).Compute(nil, nil); !errors.Is(err, ErrNoSamples) {
		t.Error("empty compute")
	}
}
