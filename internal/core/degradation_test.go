package core

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sched/static"
	"ahq/internal/sim"
)

// hookEngine wraps the simulator with overridable failure points so the
// degradation paths can be exercised without importing the faults package
// (which imports core and would cycle).
type hookEngine struct {
	*sim.Engine
	epoch     int
	setAlloc  func(epoch int, a machine.Allocation) error
	runWindow func(epoch int, win []sched.AppWindow) []sched.AppWindow
	nowMs     func(epoch int, now float64) float64
	applies   int
}

// SetAllocation passes the controller epoch of the window that preceded
// this apply to the hook (-1 for the initial pre-loop apply).
func (h *hookEngine) SetAllocation(a machine.Allocation) error {
	h.applies++
	if h.setAlloc != nil {
		if err := h.setAlloc(h.epoch-1, a); err != nil {
			return err
		}
	}
	return h.Engine.SetAllocation(a)
}

func (h *hookEngine) RunWindow(windowMs float64) []sched.AppWindow {
	h.epoch++
	win := h.Engine.RunWindow(windowMs)
	if h.runWindow != nil {
		return h.runWindow(h.epoch-1, win)
	}
	return win
}

func (h *hookEngine) NowMs() float64 {
	now := h.Engine.NowMs()
	if h.nowMs != nil {
		return h.nowMs(h.epoch-1, now)
	}
	return now
}

// flipflop forces an adjustment every epoch: whatever allocation is in
// force, it proposes the other of two valid layouts, so apply-path faults
// always have an apply to hit even when earlier applies were rejected.
type flipflop struct {
	spec machine.Spec
	lc   []string
	be   []string
}

func (*flipflop) Name() string { return "flipflop" }

func (f *flipflop) Init(spec machine.Spec, apps []sched.AppSpec) machine.Allocation {
	f.spec, f.lc, f.be = spec, sched.LCNamesOf(apps), sched.BENamesOf(apps)
	return machine.EvenPartition(spec, f.lc, f.be)
}

func (f *flipflop) Decide(_ sched.Telemetry, cur machine.Allocation) machine.Allocation {
	even := machine.EvenPartition(f.spec, f.lc, f.be)
	if !reflect.DeepEqual(cur, even) {
		return even
	}
	return machine.AllShared(f.spec, machine.FairShare, append(append([]string{}, f.lc...), f.be...))
}

// recorder observes every telemetry handed to Decide without adjusting.
type recorder struct {
	static.Unmanaged
	seen []sched.Telemetry
}

func (r *recorder) Decide(t sched.Telemetry, cur machine.Allocation) machine.Allocation {
	r.seen = append(r.seen, t)
	return cur
}

// panicAt panics inside Decide at the chosen epochs; Init delegates.
type panicAt struct {
	inner  sched.Strategy
	epochs map[int]bool
}

func (p *panicAt) Name() string { return p.inner.Name() }
func (p *panicAt) Init(spec machine.Spec, apps []sched.AppSpec) machine.Allocation {
	return p.inner.Init(spec, apps)
}
func (p *panicAt) Decide(t sched.Telemetry, cur machine.Allocation) machine.Allocation {
	if p.epochs[t.Epoch] {
		panic("test: injected decide panic")
	}
	return p.inner.Decide(t, cur)
}

// panicInit panics during Init itself.
type panicInit struct{ static.Unmanaged }

func (panicInit) Init(machine.Spec, []sched.AppSpec) machine.Allocation {
	panic("test: injected init panic")
}

func TestInitialAllocationRejectedIsAnError(t *testing.T) {
	h := &hookEngine{Engine: testEngine(t, 1)}
	h.setAlloc = func(int, machine.Allocation) error {
		return errors.New("node down")
	}
	if _, err := Run(h, static.Unmanaged{}, quickOpts()); err == nil {
		t.Fatal("want error when the initial allocation is rejected")
	}
}

func TestInitPanicDegradesToCurrentAllocation(t *testing.T) {
	h := &hookEngine{Engine: testEngine(t, 1)}
	res, err := Run(h, panicInit{}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CountIncidents(IncidentStrategyPanic); got != 1 {
		t.Fatalf("panic incidents = %d, want 1", got)
	}
	if res.Incidents[0].Epoch != -1 {
		t.Errorf("init panic recorded at epoch %d, want -1", res.Incidents[0].Epoch)
	}
	if res.Epochs == 0 {
		t.Error("run did not complete after init panic")
	}
}

func TestDecidePanicHoldsAllocation(t *testing.T) {
	h := &hookEngine{Engine: testEngine(t, 1)}
	res, err := Run(h, &panicAt{inner: &flipflop{}, epochs: map[int]bool{5: true}}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CountIncidents(IncidentStrategyPanic); got != 1 {
		t.Fatalf("panic incidents = %d, want 1", got)
	}
	if res.Incidents[0].Epoch != 5 {
		t.Errorf("panic recorded at epoch %d, want 5", res.Incidents[0].Epoch)
	}
	if res.DegradedEpochs != 1 {
		t.Errorf("DegradedEpochs = %d, want 1", res.DegradedEpochs)
	}
}

func TestMidRunRejectionFallsBackAndBacksOff(t *testing.T) {
	h := &hookEngine{Engine: testEngine(t, 1)}
	// Every apply after the initial one fails, including the fallback to
	// last-known-good: the actuator is persistently down.
	h.setAlloc = func(epoch int, _ machine.Allocation) error {
		if epoch >= 0 {
			return errors.New("node down")
		}
		return nil
	}
	res, err := Run(h, &flipflop{}, quickOpts())
	if err != nil {
		t.Fatalf("mid-run rejection must degrade, not abort: %v", err)
	}
	rejected := res.CountIncidents(IncidentAllocationRejected)
	fallback := res.CountIncidents(IncidentFallbackRejected)
	if rejected == 0 || fallback == 0 {
		t.Fatalf("rejected = %d, fallback = %d; want both > 0", rejected, fallback)
	}
	// quickOpts runs 16 epochs total (2 s warm-up + 6 s at 500 ms) and
	// flipflop proposes a change on every one of them; with a dead
	// actuator each epoch is degraded, but exponential backoff must have
	// suppressed some of those applies instead of hammering the node.
	const totalEpochs = 16
	if res.DegradedEpochs != totalEpochs {
		t.Errorf("DegradedEpochs = %d, want %d", res.DegradedEpochs, totalEpochs)
	}
	if rejected+fallback >= totalEpochs {
		t.Errorf("%d apply incidents over %d epochs; backoff never engaged",
			rejected+fallback, totalEpochs)
	}
	if res.Adjustments != 0 {
		t.Errorf("Adjustments = %d, want 0 when every apply fails", res.Adjustments)
	}
}

func TestFallbackRestoresLastKnownGood(t *testing.T) {
	h := &hookEngine{Engine: testEngine(t, 1)}
	// The first three applies from epoch 4 on fail — exactly enough to
	// exhaust the retry budget — and the fallback apply that follows
	// succeeds, restoring the last accepted allocation.
	fails := 0
	h.setAlloc = func(epoch int, _ machine.Allocation) error {
		if epoch >= 4 && fails < 3 {
			fails++
			return errors.New("transient")
		}
		return nil
	}
	res, err := Run(h, &flipflop{}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CountIncidents(IncidentAllocationRejected); got != 3 {
		t.Errorf("rejected incidents = %d, want 3", got)
	}
	if got := res.CountIncidents(IncidentFallbackRejected); got != 0 {
		t.Errorf("fallback-rejected incidents = %d, want 0 (fallback succeeds)", got)
	}
	if err := res.FinalAllocation.Validate(h.Spec(), appNames(h.AppSpecs())); err != nil {
		t.Errorf("final allocation invalid: %v", err)
	}
}

func TestDroppedTelemetryIsHeldNotNaN(t *testing.T) {
	h := &hookEngine{Engine: testEngine(t, 1)}
	h.runWindow = func(epoch int, win []sched.AppWindow) []sched.AppWindow {
		if epoch == 6 {
			return nil
		}
		return win
	}
	rec := &recorder{}
	res, err := Run(h, rec, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CountIncidents(IncidentTelemetryDropped); got != 1 {
		t.Fatalf("dropped incidents = %d, want 1", got)
	}
	tel := rec.seen[6]
	if tel.TelemetryOK {
		t.Error("epoch 6: TelemetryOK = true for a dropped window")
	}
	if math.IsNaN(tel.ES) {
		t.Error("epoch 6: held ES is NaN after healthy epochs")
	}
	if len(tel.Apps) == 0 {
		t.Error("epoch 6: held Apps empty after healthy epochs")
	}
	if tel.ES != rec.seen[5].ES {
		t.Errorf("held ES = %g, want previous epoch's %g", tel.ES, rec.seen[5].ES)
	}
	if !rec.seen[7].TelemetryOK {
		t.Error("epoch 7: telemetry did not recover after the dropout")
	}
}

func TestStaleTelemetryIsDetected(t *testing.T) {
	h := &hookEngine{Engine: testEngine(t, 1)}
	var prev []sched.AppWindow
	h.runWindow = func(epoch int, win []sched.AppWindow) []sched.AppWindow {
		if epoch == 6 {
			return prev
		}
		prev = append(prev[:0], win...)
		return win
	}
	h.nowMs = func(epoch int, now float64) float64 {
		if epoch == 6 {
			return now - 500 // clock did not advance: replayed snapshot
		}
		return now
	}
	res, err := Run(h, &recorder{}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CountIncidents(IncidentTelemetryStale); got != 1 {
		t.Errorf("stale incidents = %d, want 1", got)
	}
}

func TestCorruptTelemetryIsDetected(t *testing.T) {
	h := &hookEngine{Engine: testEngine(t, 1)}
	h.runWindow = func(epoch int, win []sched.AppWindow) []sched.AppWindow {
		if epoch != 6 {
			return win
		}
		out := append([]sched.AppWindow(nil), win...)
		for i := range out {
			out[i].IPC = math.NaN()
			if out[i].Completed > 0 {
				out[i].P95Ms = math.NaN()
			}
		}
		return out
	}
	rec := &recorder{}
	res, err := Run(h, rec, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CountIncidents(IncidentTelemetryCorrupt); got != 1 {
		t.Errorf("corrupt incidents = %d, want 1", got)
	}
	for _, tel := range rec.seen {
		if tel.Epoch > 0 && math.IsNaN(tel.ES) {
			t.Errorf("epoch %d: strategy saw NaN ES", tel.Epoch)
		}
	}
}

func TestZeroMeasuredEpochsAggregatesClean(t *testing.T) {
	// 9999 ms warm-up and a 1 ms horizon round to the same epoch count:
	// nothing is measured, and the aggregation must stay finite.
	opts := Options{EpochMs: 500, WarmupMs: 9_999, DurationMs: 1}
	res, err := Run(testEngine(t, 1), static.Unmanaged{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 0 {
		t.Fatalf("measured epochs = %d, want 0", res.Epochs)
	}
	for _, v := range []float64{res.MeanELC, res.MeanEBE, res.MeanES} {
		if math.IsNaN(v) {
			t.Error("measured-epoch mean is NaN with zero measured epochs")
		}
	}
}

func appNames(specs []sched.AppSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
