package core

import (
	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sim"
)

// Engine is the node the controller drives: the simulator (*sim.Engine) in
// this reproduction, or a fault-injecting wrapper around it
// (internal/faults). On the paper's testbed it would be the resctrl-backed
// host. The controller only assumes the contract below; in particular
// RunWindow may return no windows (telemetry dropped) and NowMs may fail to
// advance (telemetry replayed stale), both of which Run degrades through
// instead of aborting.
type Engine interface {
	// Spec describes the controllable node.
	Spec() machine.Spec
	// AppSpecs returns the telemetry specs, LC first then BE.
	AppSpecs() []sched.AppSpec
	// Allocation returns (a copy of) the allocation currently in force.
	Allocation() machine.Allocation
	// SetAllocation validates and applies a new partitioning. A failed
	// apply must leave the previous allocation in force.
	SetAllocation(machine.Allocation) error
	// RunWindow advances one monitoring interval and returns each
	// application's observation for it. The returned slice may be backed
	// by an engine-owned buffer that the next call reuses.
	RunWindow(windowMs float64) []sched.AppWindow
	// NowMs is the timestamp of the most recent observation.
	NowMs() float64
	// ResetRunStats clears the run-level accumulators at warm-up end.
	ResetRunStats()
	// RunP95 and RunIPC report run-level aggregates since ResetRunStats.
	RunP95(app string) float64
	RunIPC(app string) float64
}

var _ Engine = (*sim.Engine)(nil)
