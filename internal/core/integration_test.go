package core

import (
	"testing"

	"ahq/internal/machine"
	"ahq/internal/sched/arq"
	"ahq/internal/sched/parties"
	"ahq/internal/sched/static"
	"ahq/internal/sim"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

// These integration tests drive the full stack — engine, controller,
// entropy, strategy — and assert the paper's qualitative outcomes, the
// behaviours the reproduction stands on.

func mix(t *testing.T, seed int64, xapianLoad float64, be string) *sim.Engine {
	t.Helper()
	x, m, i := workload.MustLC("xapian"), workload.MustLC("moses"), workload.MustLC("img-dnn")
	b := workload.MustBE(be)
	e, err := sim.New(sim.Config{
		Spec: machine.DefaultSpec(),
		Seed: seed,
		Apps: []sim.AppConfig{
			{LC: &x, Load: trace.Constant(xapianLoad)},
			{LC: &m, Load: trace.Constant(0.2)},
			{LC: &i, Load: trace.Constant(0.2)},
			{BE: &b},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func opts() Options { return Options{WarmupMs: 6_000, DurationMs: 12_000} }

// TestARQLowLoadKeepsSharing: at low load ARQ should stay close to its
// all-shared initial allocation (Fig. 5's left half) — no isolated cores
// hoarded, BE IPC close to LC-first's.
func TestARQLowLoadKeepsSharing(t *testing.T) {
	res, err := Run(mix(t, 3, 0.10, "fluidanimate"), arq.Default(), opts())
	if err != nil {
		t.Fatal(err)
	}
	shared := res.FinalAllocation.SharedRegion()
	if shared == nil {
		t.Fatal("ARQ lost its shared region")
	}
	if shared.Cores < 7 {
		t.Errorf("at 10%% load ARQ pooled only %d cores; expected most of the node shared", shared.Cores)
	}
	if res.MeanELC > 0.1 {
		t.Errorf("E_LC = %.3f at low load", res.MeanELC)
	}
}

// TestARQHighLoadIsolatesViolator: at 90% Xapian load with Stream, ARQ
// must grow Xapian's isolated region (Fig. 6).
func TestARQHighLoadIsolatesViolator(t *testing.T) {
	res, err := Run(mix(t, 3, 0.90, "stream"), arq.Default(), opts())
	if err != nil {
		t.Fatal(err)
	}
	iso := res.FinalAllocation.IsolatedRegionOf("xapian")
	if iso == nil || iso.Empty() {
		t.Fatalf("ARQ did not isolate the pressed application: %s", res.FinalAllocation)
	}
	if iso.Cores+iso.Ways < 3 {
		t.Errorf("xapian isolation too small: %+v", iso)
	}
}

// TestARQBeatsPartiesOnStream: the headline comparison on the severe mix.
func TestARQBeatsPartiesOnStream(t *testing.T) {
	arqRes, err := Run(mix(t, 7, 0.50, "stream"), arq.Default(), opts())
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := Run(mix(t, 7, 0.50, "stream"), parties.Default(), opts())
	if err != nil {
		t.Fatal(err)
	}
	if arqRes.MeanES >= parRes.MeanES {
		t.Errorf("ARQ E_S %.3f >= PARTIES %.3f", arqRes.MeanES, parRes.MeanES)
	}
	// ARQ's BE throughput advantage at non-extreme load.
	var arqIPC, parIPC float64
	for _, a := range arqRes.Apps {
		if a.Spec.Class == workload.BE {
			arqIPC = a.MeanIPC
		}
	}
	for _, a := range parRes.Apps {
		if a.Spec.Class == workload.BE {
			parIPC = a.MeanIPC
		}
	}
	if arqIPC <= parIPC {
		t.Errorf("ARQ BE IPC %.3f <= PARTIES %.3f", arqIPC, parIPC)
	}
}

// TestUnmanagedDegradesWithLoad: property ③'s flip side — without
// management, entropy rises steeply with load.
func TestUnmanagedDegradesWithLoad(t *testing.T) {
	low, err := Run(mix(t, 5, 0.10, "fluidanimate"), static.Unmanaged{}, opts())
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(mix(t, 5, 0.90, "fluidanimate"), static.Unmanaged{}, opts())
	if err != nil {
		t.Fatal(err)
	}
	if high.MeanELC <= low.MeanELC+0.05 {
		t.Errorf("Unmanaged E_LC barely moved with load: %.3f -> %.3f", low.MeanELC, high.MeanELC)
	}
}

// TestLCFirstTradesBEForLC: strict priority lowers E_LC but raises E_BE
// versus CFS.
func TestLCFirstTradesBEForLC(t *testing.T) {
	cfs, err := Run(mix(t, 9, 0.70, "fluidanimate"), static.Unmanaged{}, opts())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Run(mix(t, 9, 0.70, "fluidanimate"), static.LCFirst{}, opts())
	if err != nil {
		t.Fatal(err)
	}
	if rt.MeanELC >= cfs.MeanELC {
		t.Errorf("LC-first E_LC %.3f >= Unmanaged %.3f", rt.MeanELC, cfs.MeanELC)
	}
	if rt.MeanEBE < cfs.MeanEBE-0.02 {
		t.Errorf("LC-first E_BE %.3f noticeably below Unmanaged %.3f", rt.MeanEBE, cfs.MeanEBE)
	}
}

// TestEntropyPropertySchedulingSensitivity: the paper's property ③ —
// with resources fixed, a strategy that reduces contention must lower the
// measured E_S. On the scarce 6-core node (the Fig. 3(a) regime), ARQ must
// land well below Unmanaged.
func TestEntropyPropertySchedulingSensitivity(t *testing.T) {
	spec := machine.DefaultSpec().Shrink(6, 20)
	build := func() *sim.Engine {
		x, m, i := workload.MustLC("xapian"), workload.MustLC("moses"), workload.MustLC("img-dnn")
		b := workload.MustBE("fluidanimate")
		e, err := sim.New(sim.Config{
			Spec: spec,
			Seed: 21,
			Apps: []sim.AppConfig{
				{LC: &x, Load: trace.Constant(0.2)},
				{LC: &m, Load: trace.Constant(0.2)},
				{LC: &i, Load: trace.Constant(0.2)},
				{BE: &b},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	un, err := Run(build(), static.Unmanaged{}, opts())
	if err != nil {
		t.Fatal(err)
	}
	ar, err := Run(build(), arq.Default(), opts())
	if err != nil {
		t.Fatal(err)
	}
	if ar.MeanES >= un.MeanES-0.05 {
		t.Errorf("property ③: ARQ E_S %.3f not clearly below Unmanaged %.3f on the scarce node",
			ar.MeanES, un.MeanES)
	}
}

// TestEntropyPropertyResourceSensitivity: property ② end-to-end — more
// cores never raise the measured E_S by more than noise.
func TestEntropyPropertyResourceSensitivity(t *testing.T) {
	var prev float64 = 2
	for _, cores := range []int{5, 7, 9} {
		spec := machine.DefaultSpec().Shrink(cores, 20)
		x, m := workload.MustLC("xapian"), workload.MustLC("moses")
		b := workload.MustBE("fluidanimate")
		e, err := sim.New(sim.Config{
			Spec: spec,
			Seed: 13,
			Apps: []sim.AppConfig{
				{LC: &x, Load: trace.Constant(0.3)},
				{LC: &m, Load: trace.Constant(0.3)},
				{BE: &b},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(e, static.Unmanaged{}, opts())
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanES > prev+0.03 {
			t.Errorf("E_S rose with resources: %.3f at %d cores (prev %.3f)", res.MeanES, cores, prev)
		}
		prev = res.MeanES
	}
}
