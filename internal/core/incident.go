package core

// IncidentKind classifies one degradation event the controller survived.
// The taxonomy (DESIGN.md §7) covers the three unreliable boundaries of a
// production interference controller: the strategy (panics), the
// enforcement actuator (rejected applies), and the telemetry pipeline
// (dropped, stale, or corrupt windows).
type IncidentKind int

const (
	// IncidentStrategyPanic: Init or Decide panicked; the controller
	// recovered and held the in-force allocation (Epoch -1 marks Init).
	IncidentStrategyPanic IncidentKind = iota
	// IncidentAllocationRejected: SetAllocation failed mid-run; the
	// controller keeps running on the previous allocation and retries.
	IncidentAllocationRejected
	// IncidentFallbackRejected: after maxApplyRetries consecutive
	// rejections even the last-known-good allocation was rejected; the
	// controller enters exponential apply backoff.
	IncidentFallbackRejected
	// IncidentTelemetryDropped: RunWindow delivered no windows; the
	// previous epoch's telemetry and entropy were held.
	IncidentTelemetryDropped
	// IncidentTelemetryStale: the window timestamp did not advance (a
	// replayed sample); held as for a drop.
	IncidentTelemetryStale
	// IncidentTelemetryCorrupt: a window carried impossible metrics (NaN
	// p95 with completions, NaN or negative IPC); held as for a drop.
	IncidentTelemetryCorrupt
	// IncidentEntropyHeld: the windows were plausible but the entropy
	// computation failed (e.g. no usable samples); strategies received the
	// previous entropy instead of NaN.
	IncidentEntropyHeld
)

var incidentKindNames = [...]string{
	"strategy-panic",
	"allocation-rejected",
	"fallback-rejected",
	"telemetry-dropped",
	"telemetry-stale",
	"telemetry-corrupt",
	"entropy-held",
}

func (k IncidentKind) String() string {
	if k < 0 || int(k) >= len(incidentKindNames) {
		return "unknown"
	}
	return incidentKindNames[k]
}

// Incident is one recorded degradation event.
type Incident struct {
	// Epoch is the controller epoch the incident occurred in; -1 means it
	// happened during strategy initialisation, before the first window.
	Epoch int
	Kind  IncidentKind
	// Detail carries the recovered panic value or the rejection error.
	Detail string
}

// CountIncidents returns how many incidents of the kind the run recorded.
func (r *Result) CountIncidents(kind IncidentKind) int {
	n := 0
	for _, in := range r.Incidents {
		if in.Kind == kind {
			n++
		}
	}
	return n
}
