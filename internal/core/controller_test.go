package core

import (
	"math"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sched/arq"
	"ahq/internal/sched/parties"
	"ahq/internal/sched/static"
	"ahq/internal/sim"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

func testEngine(t *testing.T, seed int64) *sim.Engine {
	t.Helper()
	x, m := workload.MustLC("xapian"), workload.MustLC("moses")
	b := workload.MustBE("fluidanimate")
	e, err := sim.New(sim.Config{
		Spec: machine.DefaultSpec(),
		Seed: seed,
		Apps: []sim.AppConfig{
			{LC: &x, Load: trace.Constant(0.3)},
			{LC: &m, Load: trace.Constant(0.2)},
			{BE: &b},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func quickOpts() Options {
	return Options{EpochMs: 500, WarmupMs: 2_000, DurationMs: 6_000}
}

func TestRunProducesCoherentResult(t *testing.T) {
	res, err := Run(testEngine(t, 1), static.Unmanaged{}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "unmanaged" {
		t.Errorf("Strategy = %q", res.Strategy)
	}
	if res.Epochs != 12 {
		t.Errorf("Epochs = %d, want 12 (6 s / 500 ms)", res.Epochs)
	}
	if len(res.Apps) != 3 {
		t.Fatalf("Apps = %d", len(res.Apps))
	}
	// LC apps first.
	if res.Apps[0].Spec.Class != workload.LC || res.Apps[2].Spec.Class != workload.BE {
		t.Error("app order not LC-first")
	}
	for _, a := range res.Apps[:2] {
		if math.IsNaN(a.MeanP95Ms) || a.MeanP95Ms <= 0 {
			t.Errorf("%s: MeanP95Ms = %g", a.Spec.Name, a.MeanP95Ms)
		}
		if a.Completed == 0 {
			t.Errorf("%s: no completions", a.Spec.Name)
		}
	}
	if res.Apps[2].MeanIPC <= 0 {
		t.Errorf("BE IPC = %g", res.Apps[2].MeanIPC)
	}
	for _, v := range []float64{res.MeanELC, res.MeanEBE, res.MeanES, res.RunELC, res.RunEBE, res.RunES} {
		if math.IsNaN(v) || v < 0 || v > 1 {
			t.Errorf("entropy out of range: %g", v)
		}
	}
	if res.Yield < 0 || res.Yield > 1 {
		t.Errorf("Yield = %g", res.Yield)
	}
	if res.Timeline != nil {
		t.Error("timeline recorded without RecordTimeline")
	}
}

func TestRunTimeline(t *testing.T) {
	opts := quickOpts()
	opts.RecordTimeline = true
	res, err := Run(testEngine(t, 2), arq.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	wantEpochs := int((opts.WarmupMs + opts.DurationMs) / opts.EpochMs)
	if len(res.Timeline) != wantEpochs {
		t.Fatalf("timeline has %d records, want %d", len(res.Timeline), wantEpochs)
	}
	prev := 0.0
	for _, rec := range res.Timeline {
		if rec.TimeMs <= prev {
			t.Fatal("timeline not monotone in time")
		}
		prev = rec.TimeMs
		if len(rec.Apps) != 3 {
			t.Fatalf("timeline record has %d apps", len(rec.Apps))
		}
		if err := rec.Allocation.Validate(machine.DefaultSpec(),
			[]string{"xapian", "moses", "fluidanimate"}); err != nil {
			t.Fatalf("timeline allocation invalid: %v", err)
		}
	}
}

func TestTimelineEndsAtFinalAllocation(t *testing.T) {
	opts := quickOpts()
	opts.RecordTimeline = true
	res, err := Run(testEngine(t, 4), arq.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Timeline[len(res.Timeline)-1].Allocation
	if !last.Equal(res.FinalAllocation) {
		t.Errorf("timeline tail %s != final %s", last, res.FinalAllocation)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(testEngine(t, 7), parties.Default(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testEngine(t, 7), parties.Default(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanES != b.MeanES || a.Adjustments != b.Adjustments {
		t.Errorf("non-deterministic: ES %g vs %g, adj %d vs %d",
			a.MeanES, b.MeanES, a.Adjustments, b.Adjustments)
	}
}

func TestViolationAccounting(t *testing.T) {
	res, err := Run(testEngine(t, 3), static.Unmanaged{}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, a := range res.Apps {
		sum += a.ViolationEpochs
	}
	if sum != res.TotalViolationEpochs {
		t.Errorf("per-app violations %d != total %d", sum, res.TotalViolationEpochs)
	}
}

func TestSamplesFromWindows(t *testing.T) {
	apps := []sched.AppWindow{
		{Spec: sched.AppSpec{Name: "x", Class: workload.LC, IdealP95Ms: 1, QoSTargetMs: 2}, P95Ms: 1.5},
		{Spec: sched.AppSpec{Name: "idle", Class: workload.LC, IdealP95Ms: 1, QoSTargetMs: 2}, P95Ms: math.NaN()},
		{Spec: sched.AppSpec{Name: "b", Class: workload.BE, SoloIPC: 2}, IPC: 1},
		{Spec: sched.AppSpec{Name: "starved", Class: workload.BE, SoloIPC: 2}, IPC: 0},
	}
	lc, be := SamplesFromWindows(apps)
	if len(lc) != 1 || lc[0].Name != "x" {
		t.Errorf("lc samples = %v", lc)
	}
	if len(be) != 2 {
		t.Fatalf("be samples = %v", be)
	}
	// The starved BE app is clamped, not dropped: its slowdown saturates
	// E_BE instead of erroring.
	if be[1].MeasuredIPC <= 0 {
		t.Error("starved BE sample not clamped")
	}
}

// A starved LC application with no usable latency observation must emit a
// saturated sample (measured latency far above target), not disappear from
// E_LC — dropping it understates the worst interference case.
func TestSamplesFromWindowsStarvedLC(t *testing.T) {
	spec := sched.AppSpec{Name: "s", Class: workload.LC, IdealP95Ms: 1, QoSTargetMs: 2}
	cases := []struct {
		label string
		win   sched.AppWindow
	}{
		{"NaN p95, queued backlog", sched.AppWindow{Spec: spec, P95Ms: math.NaN(), QueueLen: 3}},
		{"zero p95, queued backlog", sched.AppWindow{Spec: spec, P95Ms: 0, QueueLen: 1}},
		{"NaN p95, all dropped", sched.AppWindow{Spec: spec, P95Ms: math.NaN(), Dropped: 7}},
	}
	for _, c := range cases {
		lc, _ := SamplesFromWindows([]sched.AppWindow{c.win})
		if len(lc) != 1 {
			t.Errorf("%s: starved LC app dropped (samples = %v)", c.label, lc)
			continue
		}
		s := lc[0]
		if err := s.Validate(); err != nil {
			t.Errorf("%s: saturated sample invalid: %v", c.label, err)
		}
		if s.MeasuredMs <= s.TargetMs {
			t.Errorf("%s: measured %.3g not above target %.3g", c.label, s.MeasuredMs, s.TargetMs)
		}
		if q := s.Intolerable(); q < 0.99 {
			t.Errorf("%s: Q_i = %.3g, want saturated (~1)", c.label, q)
		}
	}
	// A genuinely idle application (nothing offered, nothing queued) still
	// yields no sample.
	idle := sched.AppWindow{Spec: spec, P95Ms: math.NaN()}
	if lc, _ := SamplesFromWindows([]sched.AppWindow{idle}); len(lc) != 0 {
		t.Errorf("idle LC app produced samples: %v", lc)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.EpochMs != 500 || o.WarmupMs != 10000 || o.DurationMs != 20000 || o.RI != 0.8 {
		t.Errorf("defaults = %+v", o)
	}
	// Negative warm-up means "measure from the start".
	o = Options{WarmupMs: -1}.withDefaults()
	if o.WarmupMs != 0 {
		t.Errorf("WarmupMs = %g, want 0", o.WarmupMs)
	}
}
