package core

import (
	"math"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sched/arq"
	"ahq/internal/sim"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

// sameF64 is bitwise sameness with NaN treated equal to NaN — idle epochs
// legitimately report NaN latencies, which reflect.DeepEqual would reject.
func sameF64(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func sameWindows(a, b []sched.AppWindow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Spec != y.Spec || !sameF64(x.P95Ms, y.P95Ms) || !sameF64(x.MeanMs, y.MeanMs) ||
			x.Completed != y.Completed || x.Dropped != y.Dropped || x.QueueLen != y.QueueLen ||
			!sameF64(x.OfferedQPS, y.OfferedQPS) || !sameF64(x.IPC, y.IPC) {
			return false
		}
	}
	return true
}

func sameResults(a, b []AppResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Spec != y.Spec || !sameF64(x.MeanP95Ms, y.MeanP95Ms) ||
			x.ViolationEpochs != y.ViolationEpochs ||
			x.Completed != y.Completed || x.Dropped != y.Dropped ||
			!sameF64(x.MeanIPC, y.MeanIPC) ||
			x.LCSample.Name != y.LCSample.Name ||
			!sameF64(x.LCSample.IdealMs, y.LCSample.IdealMs) ||
			!sameF64(x.LCSample.MeasuredMs, y.LCSample.MeasuredMs) ||
			!sameF64(x.LCSample.TargetMs, y.LCSample.TargetMs) ||
			x.BESample.Name != y.BESample.Name ||
			!sameF64(x.BESample.SoloIPC, y.BESample.SoloIPC) ||
			!sameF64(x.BESample.MeasuredIPC, y.BESample.MeasuredIPC) {
			return false
		}
	}
	return true
}

// closedLoopMix builds a mostly-idle mix — closed-loop users with long
// think times plus a sparse stepped load — so the engine's event-driven
// clock elides real stretches of ticks between epochs.
func closedLoopMix(t *testing.T, disableFF bool) *sim.Engine {
	t.Helper()
	x, m := workload.MustLC("xapian"), workload.MustLC("moses")
	b := workload.MustBE("fluidanimate")
	steps := trace.Steps{
		{StartMs: 0, Frac: 0},
		{StartMs: 2_000, Frac: 0.25},
		{StartMs: 5_000, Frac: 0},
		{StartMs: 9_000, Frac: 0.4},
	}
	e, err := sim.New(sim.Config{
		Spec: machine.DefaultSpec(),
		Seed: 21,
		Apps: []sim.AppConfig{
			{LC: &x, ClosedLoopUsers: 3, ThinkTimeMs: 120},
			{LC: &m, Load: steps},
			{BE: &b},
		},
		DisableFastForward: disableFF,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEpochPacingToleratesSkippedTicks: the controller's epoch loop — its
// monitoring cadence, strategy decisions and allocation changes — must be
// oblivious to whether the engine marched every tick or fast-forwarded
// across idle stretches. An allocation change mid-run re-opens warm-up and
// suspends skipping; the runs must still agree bit for bit.
func TestEpochPacingToleratesSkippedTicks(t *testing.T) {
	opts := Options{WarmupMs: 2_000, DurationMs: 10_000, RecordTimeline: true}
	fast, err := Run(closedLoopMix(t, false), arq.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Run(closedLoopMix(t, true), arq.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}

	if fast.Epochs != naive.Epochs || fast.Adjustments != naive.Adjustments {
		t.Fatalf("pacing diverged: %d epochs/%d adjustments (skip) vs %d/%d (naive)",
			fast.Epochs, fast.Adjustments, naive.Epochs, naive.Adjustments)
	}
	for _, cmp := range []struct {
		name       string
		fast, nave float64
	}{
		{"MeanELC", fast.MeanELC, naive.MeanELC},
		{"MeanEBE", fast.MeanEBE, naive.MeanEBE},
		{"MeanES", fast.MeanES, naive.MeanES},
		{"RunELC", fast.RunELC, naive.RunELC},
		{"RunEBE", fast.RunEBE, naive.RunEBE},
		{"RunES", fast.RunES, naive.RunES},
		{"Yield", fast.Yield, naive.Yield},
	} {
		same := cmp.fast == cmp.nave || (math.IsNaN(cmp.fast) && math.IsNaN(cmp.nave))
		if !same {
			t.Errorf("%s: %v (skip) vs %v (naive)", cmp.name, cmp.fast, cmp.nave)
		}
	}
	if !sameResults(fast.Apps, naive.Apps) {
		t.Errorf("per-app summaries diverged:\nskip:  %+v\nnaive: %+v", fast.Apps, naive.Apps)
	}
	if !fast.FinalAllocation.Equal(naive.FinalAllocation) {
		t.Errorf("final allocations diverged:\nskip:  %+v\nnaive: %+v",
			fast.FinalAllocation, naive.FinalAllocation)
	}
	if len(fast.Timeline) != len(naive.Timeline) {
		t.Fatalf("timeline lengths differ: %d vs %d", len(fast.Timeline), len(naive.Timeline))
	}
	for i := range fast.Timeline {
		f, n := fast.Timeline[i], naive.Timeline[i]
		if f.TimeMs != n.TimeMs || f.Adjusted != n.Adjusted ||
			!sameWindows(f.Apps, n.Apps) || !f.Allocation.Equal(n.Allocation) {
			t.Fatalf("epoch %d diverged:\nskip:  %+v\nnaive: %+v", i, f, n)
		}
	}
}
