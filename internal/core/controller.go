// Package core implements the Ah-Q controller: the daemon loop that every
// monitoring epoch (500 ms in the paper) reads tail latency and IPC from the
// node, computes the system entropy, hands the telemetry to the plugged-in
// scheduling strategy, and applies the allocation the strategy returns.
// It also aggregates the run-level results the evaluation reports: average
// entropies, per-application latency and IPC, yield, and QoS violations.
package core

import (
	"fmt"
	"math"

	"ahq/internal/entropy"
	"ahq/internal/machine"
	"ahq/internal/metrics"
	"ahq/internal/sched"
	"ahq/internal/sim"
	"ahq/internal/workload"
)

// Options configure one controlled run.
type Options struct {
	// EpochMs is the monitoring interval; 0 means the paper's 500 ms.
	EpochMs float64
	// WarmupMs is discarded from run-level statistics (the system needs a
	// few epochs to converge); 0 means 10000 ms, negative means no
	// warm-up.
	WarmupMs float64
	// DurationMs is the measured horizon after warm-up; 0 means 20000 ms.
	DurationMs float64
	// RI is the relative importance of LC applications; 0 means the
	// paper's 0.8.
	RI float64
	// RecordTimeline retains per-epoch windows and allocations in the
	// result (needed by the Fig. 13 experiment; off by default to keep
	// sweeps lean).
	RecordTimeline bool
}

func (o Options) withDefaults() Options {
	if o.EpochMs <= 0 {
		o.EpochMs = 500
	}
	if o.WarmupMs < 0 {
		o.WarmupMs = 0
	} else if o.WarmupMs == 0 {
		o.WarmupMs = 10000
	}
	if o.DurationMs <= 0 {
		o.DurationMs = 20000
	}
	if o.RI == 0 {
		o.RI = entropy.DefaultRI
	}
	return o
}

// EpochRecord is one monitoring interval's observation and decision.
type EpochRecord struct {
	TimeMs       float64
	Apps         []sched.AppWindow
	ELC, EBE, ES float64
	Allocation   machine.Allocation
	Adjusted     bool
	LCViolations int
	QueuedTotal  int
	DroppedTotal int
}

// AppResult is the run-level summary for one application.
type AppResult struct {
	Spec sched.AppSpec
	// MeanP95Ms averages the epoch p95 values over the measured horizon
	// (TL_i1 of the paper's tables). LC only.
	MeanP95Ms float64
	// ViolationEpochs counts measured epochs whose p95 exceeded the
	// target. LC only.
	ViolationEpochs int
	// Completed and Dropped total over the measured horizon. LC only.
	Completed, Dropped int
	// MeanIPC averages the epoch IPC values. BE only.
	MeanIPC float64
	// Sample is the run-level entropy input derived from the above.
	LCSample entropy.LCSample
	BESample entropy.BESample
}

// Result is the outcome of one controlled run.
type Result struct {
	Strategy string
	// MeanELC/MeanEBE/MeanES average the per-epoch entropies over the
	// measured horizon (the values the paper's bar charts report).
	MeanELC, MeanEBE, MeanES float64
	// RunELC/RunEBE/RunES are computed from run-level mean latencies and
	// IPCs (the values the paper's Table II reports).
	RunELC, RunEBE, RunES float64
	// Yield is the ratio of LC applications whose run-level Q_i is zero.
	Yield float64
	// Apps holds per-application summaries, LC first.
	Apps []AppResult
	// Epochs counts measured monitoring intervals; Adjustments counts
	// epochs in which the strategy changed the allocation.
	Epochs, Adjustments int
	// TotalViolationEpochs sums LC violation epochs over applications
	// (the "tail latency violations" count of Fig. 13).
	TotalViolationEpochs int
	// Timeline holds per-epoch records when Options.RecordTimeline.
	Timeline []EpochRecord
	// FinalAllocation is the allocation in force when the run ended.
	FinalAllocation machine.Allocation
}

// Run drives the engine under the strategy for warm-up plus the measured
// horizon and aggregates the results.
func Run(engine *sim.Engine, strategy sched.Strategy, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	specs := engine.AppSpecs()
	alloc := strategy.Init(engine.Spec(), specs)
	if err := engine.SetAllocation(alloc); err != nil {
		return nil, fmt.Errorf("core: %s initial allocation rejected: %w", strategy.Name(), err)
	}
	sys := entropy.System{RI: opts.RI}

	totalEpochs := int(math.Ceil((opts.WarmupMs + opts.DurationMs) / opts.EpochMs))
	warmEpochs := int(math.Ceil(opts.WarmupMs / opts.EpochMs))

	res := &Result{Strategy: strategy.Name()}
	type accum struct {
		p95   []float64
		ipc   []float64
		compl int
		drops int
		viol  int
	}
	acc := make(map[string]*accum, len(specs))
	for _, s := range specs {
		acc[s.Name] = &accum{}
	}
	var esSum, elcSum, ebeSum float64
	measured := 0

	for epoch := 0; epoch < totalEpochs; epoch++ {
		if epoch == warmEpochs {
			engine.ResetRunStats()
		}
		windows := engine.RunWindow(opts.EpochMs)
		tel := sched.Telemetry{
			TimeMs: engine.NowMs(),
			Epoch:  epoch,
			Apps:   orderWindows(windows, specs),
		}
		lcS, beS := SamplesFromWindows(tel.Apps)
		elc, ebe, es, err := sys.Compute(lcS, beS)
		if err == nil {
			tel.ELC, tel.EBE, tel.ES = elc, ebe, es
		} else {
			tel.ELC, tel.EBE, tel.ES = math.NaN(), math.NaN(), math.NaN()
		}

		inMeasure := epoch >= warmEpochs
		if inMeasure && err == nil {
			elcSum += elc
			ebeSum += ebe
			esSum += es
			measured++
		}

		violations := 0
		queued, dropped := 0, 0
		for _, w := range tel.Apps {
			a := acc[w.Spec.Name]
			if w.Spec.Class == workload.LC {
				queued += w.QueueLen
				dropped += w.Dropped
				if inMeasure {
					if !math.IsNaN(w.P95Ms) {
						a.p95 = append(a.p95, w.P95Ms)
					}
					a.compl += w.Completed
					a.drops += w.Dropped
					if w.Violates() {
						a.viol++
						violations++
					}
				} else if w.Violates() {
					violations++
				}
			} else if inMeasure {
				a.ipc = append(a.ipc, w.IPC)
			}
		}
		if inMeasure {
			res.Epochs++
			res.TotalViolationEpochs += violations
		}

		cur := engine.Allocation()
		next := strategy.Decide(tel, cur)
		adjusted := !next.Equal(cur)
		if adjusted {
			if err := engine.SetAllocation(next); err != nil {
				return nil, fmt.Errorf("core: %s allocation rejected at epoch %d: %w",
					strategy.Name(), epoch, err)
			}
			if inMeasure {
				res.Adjustments++
			}
		}
		if opts.RecordTimeline {
			res.Timeline = append(res.Timeline, EpochRecord{
				TimeMs:       tel.TimeMs,
				Apps:         tel.Apps,
				ELC:          tel.ELC,
				EBE:          tel.EBE,
				ES:           tel.ES,
				Allocation:   engine.Allocation(),
				Adjusted:     adjusted,
				LCViolations: violations,
				QueuedTotal:  queued,
				DroppedTotal: dropped,
			})
		}
	}

	if measured > 0 {
		res.MeanELC = elcSum / float64(measured)
		res.MeanEBE = ebeSum / float64(measured)
		res.MeanES = esSum / float64(measured)
	}

	// Run-level summaries and entropies from mean latencies/IPCs.
	var lcRun []entropy.LCSample
	var beRun []entropy.BESample
	for _, s := range specs {
		a := acc[s.Name]
		ar := AppResult{Spec: s}
		if s.Class == workload.LC {
			// Run-level tail latency is the exact percentile over every
			// completion in the measured horizon; the windowed mean is a
			// fallback for starved runs.
			ar.MeanP95Ms = engine.RunP95(s.Name)
			if math.IsNaN(ar.MeanP95Ms) {
				ar.MeanP95Ms = metrics.Mean(a.p95)
			}
			ar.ViolationEpochs = a.viol
			ar.Completed, ar.Dropped = a.compl, a.drops
			ar.LCSample = entropy.LCSample{
				Name: s.Name, IdealMs: s.IdealP95Ms,
				MeasuredMs: ar.MeanP95Ms, TargetMs: s.QoSTargetMs,
			}
			if !math.IsNaN(ar.MeanP95Ms) {
				lcRun = append(lcRun, ar.LCSample)
			}
		} else {
			ar.MeanIPC = engine.RunIPC(s.Name)
			if math.IsNaN(ar.MeanIPC) {
				ar.MeanIPC = metrics.Mean(a.ipc)
			}
			ar.BESample = entropy.BESample{Name: s.Name, SoloIPC: s.SoloIPC, MeasuredIPC: ar.MeanIPC}
			if !math.IsNaN(ar.MeanIPC) && ar.MeanIPC > 0 {
				beRun = append(beRun, ar.BESample)
			}
		}
		res.Apps = append(res.Apps, ar)
	}
	if elc, ebe, es, err := sys.Compute(lcRun, beRun); err == nil {
		res.RunELC, res.RunEBE, res.RunES = elc, ebe, es
	}
	if y, err := entropy.Yield(lcRun); err == nil {
		res.Yield = y
	}
	res.FinalAllocation = engine.Allocation()
	return res, nil
}

// SamplesFromWindows converts epoch telemetry into entropy inputs, skipping
// idle applications (no measurement) and treating a starved application's
// lower-bound latency as its measured latency; a starved application with
// no observable lower bound is clamped to a saturated, target-exceeding
// latency so it still counts against E_LC.
func SamplesFromWindows(apps []sched.AppWindow) ([]entropy.LCSample, []entropy.BESample) {
	var lc []entropy.LCSample
	var be []entropy.BESample
	for _, w := range apps {
		if w.Spec.Class == workload.LC {
			if math.IsNaN(w.P95Ms) || w.P95Ms <= 0 {
				if w.QueueLen == 0 && w.Dropped == 0 && w.Completed == 0 {
					continue // idle: nothing offered, nothing to measure
				}
				// Starved with no usable latency observation (e.g. the
				// backlog arrived at the window boundary, so even the
				// oldest-request age is zero): saturate the sample at a
				// target-exceeding lower bound, mirroring the BE zero-IPC
				// clamp below, so the worst interference case raises E_LC
				// instead of vanishing from it.
				w.P95Ms = w.Spec.QoSTargetMs * 1e3
			}
			lc = append(lc, entropy.LCSample{
				Name: w.Spec.Name, IdealMs: w.Spec.IdealP95Ms,
				MeasuredMs: w.P95Ms, TargetMs: w.Spec.QoSTargetMs,
			})
		} else {
			if w.IPC <= 0 {
				// A fully starved BE application has zero measured IPC;
				// clamp to a sliver so E_BE saturates instead of erroring.
				w.IPC = w.Spec.SoloIPC * 1e-3
			}
			be = append(be, entropy.BESample{
				Name: w.Spec.Name, SoloIPC: w.Spec.SoloIPC, MeasuredIPC: w.IPC,
			})
		}
	}
	return lc, be
}

// orderWindows reorders engine windows into spec order (LC first).
func orderWindows(windows []sched.AppWindow, specs []sched.AppSpec) []sched.AppWindow {
	byName := make(map[string]sched.AppWindow, len(windows))
	for _, w := range windows {
		byName[w.Spec.Name] = w
	}
	out := make([]sched.AppWindow, 0, len(specs))
	for _, s := range specs {
		out = append(out, byName[s.Name])
	}
	return out
}
