// Package core implements the Ah-Q controller: the daemon loop that every
// monitoring epoch (500 ms in the paper) reads tail latency and IPC from the
// node, computes the system entropy, hands the telemetry to the plugged-in
// scheduling strategy, and applies the allocation the strategy returns.
// It also aggregates the run-level results the evaluation reports: average
// entropies, per-application latency and IPC, yield, and QoS violations.
package core

import (
	"fmt"
	"math"

	"ahq/internal/entropy"
	"ahq/internal/machine"
	"ahq/internal/metrics"
	"ahq/internal/sched"
	"ahq/internal/workload"
)

// Options configure one controlled run.
type Options struct {
	// EpochMs is the monitoring interval; 0 means the paper's 500 ms.
	EpochMs float64
	// WarmupMs is discarded from run-level statistics (the system needs a
	// few epochs to converge); 0 means 10000 ms, negative means no
	// warm-up.
	WarmupMs float64
	// DurationMs is the measured horizon after warm-up; 0 means 20000 ms.
	DurationMs float64
	// RI is the relative importance of LC applications; 0 means the
	// paper's 0.8.
	RI float64
	// RecordTimeline retains per-epoch windows and allocations in the
	// result (needed by the Fig. 13 experiment; off by default to keep
	// sweeps lean).
	RecordTimeline bool
}

// WithDefaults returns the options as Run will actually interpret them,
// zero fields replaced by the documented defaults. Exported for callers
// that key work on the effective options — the fleet engine's node-outcome
// cache serialises the normalised form so that a default spelled
// explicitly and a zero value cannot split a cache key.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.EpochMs <= 0 {
		o.EpochMs = 500
	}
	if o.WarmupMs < 0 {
		o.WarmupMs = 0
	} else if o.WarmupMs == 0 {
		o.WarmupMs = 10000
	}
	if o.DurationMs <= 0 {
		o.DurationMs = 20000
	}
	if o.RI == 0 {
		o.RI = entropy.DefaultRI
	}
	return o
}

// EpochRecord is one monitoring interval's observation and decision.
type EpochRecord struct {
	TimeMs       float64
	Apps         []sched.AppWindow
	ELC, EBE, ES float64
	Allocation   machine.Allocation
	Adjusted     bool
	LCViolations int
	QueuedTotal  int
	DroppedTotal int
	// TelemetryOK is false when this epoch's observation was dropped,
	// stale, or corrupt and the previous one was held instead.
	TelemetryOK bool
	// Degraded reports whether the controller operated degraded this epoch
	// (any incident, or an apply suppressed by backoff).
	Degraded bool
	// Incidents are this epoch's degradation events, if any.
	Incidents []Incident
}

// AppResult is the run-level summary for one application.
type AppResult struct {
	Spec sched.AppSpec
	// MeanP95Ms averages the epoch p95 values over the measured horizon
	// (TL_i1 of the paper's tables). LC only.
	MeanP95Ms float64
	// ViolationEpochs counts measured epochs whose p95 exceeded the
	// target. LC only.
	ViolationEpochs int
	// Completed and Dropped total over the measured horizon. LC only.
	Completed, Dropped int
	// MeanIPC averages the epoch IPC values. BE only.
	MeanIPC float64
	// Sample is the run-level entropy input derived from the above.
	LCSample entropy.LCSample
	BESample entropy.BESample
}

// Result is the outcome of one controlled run.
type Result struct {
	Strategy string
	// MeanELC/MeanEBE/MeanES average the per-epoch entropies over the
	// measured horizon (the values the paper's bar charts report).
	MeanELC, MeanEBE, MeanES float64
	// RunELC/RunEBE/RunES are computed from run-level mean latencies and
	// IPCs (the values the paper's Table II reports).
	RunELC, RunEBE, RunES float64
	// Yield is the ratio of LC applications whose run-level Q_i is zero.
	Yield float64
	// Apps holds per-application summaries, LC first.
	Apps []AppResult
	// Epochs counts measured monitoring intervals; Adjustments counts
	// epochs in which the strategy changed the allocation.
	Epochs, Adjustments int
	// TotalViolationEpochs sums LC violation epochs over applications
	// (the "tail latency violations" count of Fig. 13).
	TotalViolationEpochs int
	// Timeline holds per-epoch records when Options.RecordTimeline.
	Timeline []EpochRecord
	// FinalAllocation is the allocation in force when the run ended.
	FinalAllocation machine.Allocation
	// Incidents records every degradation event the run survived, in
	// epoch order (empty on a healthy run).
	Incidents []Incident
	// DegradedEpochs counts monitoring intervals (warm-up included) in
	// which the controller operated degraded: an incident occurred or a
	// wanted adjustment was suppressed by apply backoff.
	DegradedEpochs int
}

// Degradation policy bounds (DESIGN.md §7). An allocation rejection is
// retried on the strategy's next decisions for maxApplyRetries consecutive
// epochs before the controller re-asserts the last-known-good allocation;
// if even that is rejected the actuator itself is down and applies are
// suppressed for an exponentially growing, capped number of epochs.
const (
	maxApplyRetries  = 3
	maxBackoffEpochs = 8
)

// safeInit calls strategy.Init, converting a panic into a recorded message
// so a misbehaving strategy cannot crash the run before it starts.
func safeInit(s sched.Strategy, spec machine.Spec, apps []sched.AppSpec) (alloc machine.Allocation, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprint(r)
		}
	}()
	return s.Init(spec, apps), ""
}

// safeDecide calls strategy.Decide, converting a panic into a recorded
// message; the caller holds the current allocation in that case.
func safeDecide(s sched.Strategy, t sched.Telemetry, cur machine.Allocation) (next machine.Allocation, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprint(r)
		}
	}()
	return s.Decide(t, cur), ""
}

// corruptWindows reports why an epoch's windows are physically impossible
// ("" when plausible): completions with NaN latency, negative latency, or
// NaN/negative BE IPC. Such windows come from a corrupted telemetry path
// and must not reach the entropy computation or be mistaken for starvation.
func corruptWindows(ws []sched.AppWindow) string {
	for _, w := range ws {
		if w.Spec.Class == workload.LC {
			if w.Completed > 0 && math.IsNaN(w.P95Ms) {
				return w.Spec.Name + ": completions with NaN p95"
			}
			if !math.IsNaN(w.P95Ms) && w.P95Ms < 0 {
				return w.Spec.Name + ": negative p95"
			}
		} else if math.IsNaN(w.IPC) || w.IPC < 0 {
			return w.Spec.Name + ": NaN or negative IPC"
		}
	}
	return ""
}

// Run drives the engine under the strategy for warm-up plus the measured
// horizon and aggregates the results.
//
// Run degrades instead of dying: a strategy panic holds the in-force
// allocation, a mid-run allocation rejection is retried and then replaced
// by the last-known-good allocation, and dropped/stale/corrupt telemetry
// holds the previous epoch's observation and entropy rather than feeding
// NaN to strategies. Every such event is recorded in Result.Incidents. The
// only remaining error return after a successful start is impossible input
// (an initial allocation the node rejects), which is a configuration error
// rather than a runtime fault.
func Run(engine Engine, strategy sched.Strategy, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	specs := engine.AppSpecs()
	res := &Result{Strategy: strategy.Name()}
	alloc, initPanic := safeInit(strategy, engine.Spec(), specs)
	if initPanic != "" {
		// Degrade to the allocation already in force (the engine starts
		// unmanaged), the safest state we can guarantee exists.
		res.Incidents = append(res.Incidents, Incident{Epoch: -1, Kind: IncidentStrategyPanic, Detail: initPanic})
		alloc = engine.Allocation()
	}
	if err := engine.SetAllocation(alloc); err != nil {
		return nil, fmt.Errorf("core: %s initial allocation rejected: %w", strategy.Name(), err)
	}
	sys := entropy.System{RI: opts.RI}

	totalEpochs := int(math.Ceil((opts.WarmupMs + opts.DurationMs) / opts.EpochMs))
	warmEpochs := int(math.Ceil(opts.WarmupMs / opts.EpochMs))

	type accum struct {
		p95   []float64
		ipc   []float64
		compl int
		drops int
		viol  int
	}
	acc := make(map[string]*accum, len(specs))
	for _, s := range specs {
		acc[s.Name] = &accum{}
	}
	var esSum, elcSum, ebeSum float64
	measured := 0

	// Degradation state: the last allocation the node accepted, the last
	// healthy telemetry (held over fault epochs), and the retry/backoff
	// counters of the apply path.
	lastGood := engine.Allocation()
	heldELC, heldEBE, heldES := math.NaN(), math.NaN(), math.NaN()
	var heldApps []sched.AppWindow
	lastNowMs := engine.NowMs()
	rejectStreak, backoffLen, backoffUntil := 0, 0, 0

	for epoch := 0; epoch < totalEpochs; epoch++ {
		if epoch == warmEpochs {
			engine.ResetRunStats()
		}
		epochIncidents := len(res.Incidents)
		windows := engine.RunWindow(opts.EpochMs)
		nowMs := engine.NowMs()

		winOK := true
		switch {
		case len(windows) == 0:
			winOK = false
			res.Incidents = append(res.Incidents, Incident{Epoch: epoch,
				Kind: IncidentTelemetryDropped, Detail: "no windows delivered"})
		case nowMs <= lastNowMs:
			winOK = false
			res.Incidents = append(res.Incidents, Incident{Epoch: epoch,
				Kind: IncidentTelemetryStale, Detail: fmt.Sprintf("window timestamp %.0f ms did not advance", nowMs)})
		default:
			if why := corruptWindows(windows); why != "" {
				winOK = false
				res.Incidents = append(res.Incidents, Incident{Epoch: epoch,
					Kind: IncidentTelemetryCorrupt, Detail: why})
			}
		}
		if nowMs > lastNowMs {
			lastNowMs = nowMs
		}

		tel := sched.Telemetry{Epoch: epoch, TelemetryOK: winOK}
		if winOK {
			tel.TimeMs = nowMs
			tel.Apps = orderWindows(windows, specs)
			lcS, beS := SamplesFromWindows(tel.Apps)
			elc, ebe, es, err := sys.Compute(lcS, beS)
			if err == nil {
				tel.ELC, tel.EBE, tel.ES = elc, ebe, es
				heldELC, heldEBE, heldES = elc, ebe, es
			} else {
				// Plausible windows but no computable entropy: hold the
				// previous value so strategies never see NaN mid-run.
				tel.TelemetryOK = false
				tel.ELC, tel.EBE, tel.ES = heldELC, heldEBE, heldES
				res.Incidents = append(res.Incidents, Incident{Epoch: epoch,
					Kind: IncidentEntropyHeld, Detail: err.Error()})
			}
			heldApps = tel.Apps
		} else {
			// Hold the previous healthy observation; before any healthy
			// epoch exists the apps are empty and the entropies NaN.
			tel.TimeMs = lastNowMs
			tel.Apps = heldApps
			tel.ELC, tel.EBE, tel.ES = heldELC, heldEBE, heldES
		}

		inMeasure := epoch >= warmEpochs
		entropyOK := winOK && tel.TelemetryOK
		if inMeasure && entropyOK {
			elcSum += tel.ELC
			ebeSum += tel.EBE
			esSum += tel.ES
			measured++
		}

		// Per-application accumulation only for genuinely fresh windows;
		// held (replayed) observations must not be double counted.
		violations := 0
		queued, dropped := 0, 0
		if winOK {
			for _, w := range tel.Apps {
				a := acc[w.Spec.Name]
				if w.Spec.Class == workload.LC {
					queued += w.QueueLen
					dropped += w.Dropped
					if inMeasure {
						if !math.IsNaN(w.P95Ms) {
							a.p95 = append(a.p95, w.P95Ms)
						}
						a.compl += w.Completed
						a.drops += w.Dropped
						if w.Violates() {
							a.viol++
							violations++
						}
					} else if w.Violates() {
						violations++
					}
				} else if inMeasure {
					a.ipc = append(a.ipc, w.IPC)
				}
			}
		}
		if inMeasure {
			res.Epochs++
			res.TotalViolationEpochs += violations
		}

		cur := engine.Allocation()
		next, panicMsg := safeDecide(strategy, tel, cur)
		if panicMsg != "" {
			res.Incidents = append(res.Incidents, Incident{Epoch: epoch,
				Kind: IncidentStrategyPanic, Detail: panicMsg})
			next = cur // hold the in-force allocation
		}
		adjusted := !next.Equal(cur)
		suppressed := false
		if adjusted {
			if epoch < backoffUntil {
				// The actuator was recently rejecting even the known-good
				// allocation; do not hammer it.
				adjusted, suppressed = false, true
			} else if err := engine.SetAllocation(next); err == nil {
				rejectStreak, backoffLen = 0, 0
				lastGood = engine.Allocation()
				if inMeasure {
					res.Adjustments++
				}
			} else {
				adjusted = false
				rejectStreak++
				res.Incidents = append(res.Incidents, Incident{Epoch: epoch,
					Kind: IncidentAllocationRejected, Detail: err.Error()})
				if rejectStreak >= maxApplyRetries {
					rejectStreak = 0
					if fbErr := engine.SetAllocation(lastGood); fbErr != nil {
						res.Incidents = append(res.Incidents, Incident{Epoch: epoch,
							Kind: IncidentFallbackRejected, Detail: fbErr.Error()})
						if backoffLen == 0 {
							backoffLen = 1
						} else if backoffLen*2 <= maxBackoffEpochs {
							backoffLen *= 2
						} else {
							backoffLen = maxBackoffEpochs
						}
						backoffUntil = epoch + 1 + backoffLen
					}
				}
			}
		}
		degraded := suppressed || len(res.Incidents) > epochIncidents
		if degraded {
			res.DegradedEpochs++
		}
		if opts.RecordTimeline {
			res.Timeline = append(res.Timeline, EpochRecord{
				TimeMs:       tel.TimeMs,
				Apps:         tel.Apps,
				ELC:          tel.ELC,
				EBE:          tel.EBE,
				ES:           tel.ES,
				Allocation:   engine.Allocation(),
				Adjusted:     adjusted,
				LCViolations: violations,
				QueuedTotal:  queued,
				DroppedTotal: dropped,
				TelemetryOK:  tel.TelemetryOK,
				Degraded:     degraded,
				Incidents:    res.Incidents[epochIncidents:len(res.Incidents):len(res.Incidents)],
			})
		}
	}

	if measured > 0 {
		res.MeanELC = elcSum / float64(measured)
		res.MeanEBE = ebeSum / float64(measured)
		res.MeanES = esSum / float64(measured)
	}

	// Run-level summaries and entropies from mean latencies/IPCs.
	var lcRun []entropy.LCSample
	var beRun []entropy.BESample
	for _, s := range specs {
		a := acc[s.Name]
		ar := AppResult{Spec: s}
		if s.Class == workload.LC {
			// Run-level tail latency is the exact percentile over every
			// completion in the measured horizon; the windowed mean is a
			// fallback for starved runs.
			ar.MeanP95Ms = engine.RunP95(s.Name)
			if math.IsNaN(ar.MeanP95Ms) {
				ar.MeanP95Ms = metrics.Mean(a.p95)
			}
			ar.ViolationEpochs = a.viol
			ar.Completed, ar.Dropped = a.compl, a.drops
			ar.LCSample = entropy.LCSample{
				Name: s.Name, IdealMs: s.IdealP95Ms,
				MeasuredMs: ar.MeanP95Ms, TargetMs: s.QoSTargetMs,
			}
			if !math.IsNaN(ar.MeanP95Ms) {
				lcRun = append(lcRun, ar.LCSample)
			}
		} else {
			ar.MeanIPC = engine.RunIPC(s.Name)
			if math.IsNaN(ar.MeanIPC) {
				ar.MeanIPC = metrics.Mean(a.ipc)
			}
			ar.BESample = entropy.BESample{Name: s.Name, SoloIPC: s.SoloIPC, MeasuredIPC: ar.MeanIPC}
			if !math.IsNaN(ar.MeanIPC) && ar.MeanIPC > 0 {
				beRun = append(beRun, ar.BESample)
			}
		}
		res.Apps = append(res.Apps, ar)
	}
	if elc, ebe, es, err := sys.Compute(lcRun, beRun); err == nil {
		res.RunELC, res.RunEBE, res.RunES = elc, ebe, es
	}
	if y, err := entropy.Yield(lcRun); err == nil {
		res.Yield = y
	}
	res.FinalAllocation = engine.Allocation()
	return res, nil
}

// SamplesFromWindows converts epoch telemetry into entropy inputs, skipping
// idle applications (no measurement) and treating a starved application's
// lower-bound latency as its measured latency; a starved application with
// no observable lower bound is clamped to a saturated, target-exceeding
// latency so it still counts against E_LC.
func SamplesFromWindows(apps []sched.AppWindow) ([]entropy.LCSample, []entropy.BESample) {
	var lc []entropy.LCSample
	var be []entropy.BESample
	for _, w := range apps {
		if w.Spec.Class == workload.LC {
			if math.IsNaN(w.P95Ms) || w.P95Ms <= 0 {
				if w.QueueLen == 0 && w.Dropped == 0 && w.Completed == 0 {
					continue // idle: nothing offered, nothing to measure
				}
				// Starved with no usable latency observation (e.g. the
				// backlog arrived at the window boundary, so even the
				// oldest-request age is zero): saturate the sample at a
				// target-exceeding lower bound, mirroring the BE zero-IPC
				// clamp below, so the worst interference case raises E_LC
				// instead of vanishing from it.
				w.P95Ms = w.Spec.QoSTargetMs * 1e3
			}
			lc = append(lc, entropy.LCSample{
				Name: w.Spec.Name, IdealMs: w.Spec.IdealP95Ms,
				MeasuredMs: w.P95Ms, TargetMs: w.Spec.QoSTargetMs,
			})
		} else {
			if w.IPC <= 0 {
				// A fully starved BE application has zero measured IPC;
				// clamp to a sliver so E_BE saturates instead of erroring.
				w.IPC = w.Spec.SoloIPC * 1e-3
			}
			be = append(be, entropy.BESample{
				Name: w.Spec.Name, SoloIPC: w.Spec.SoloIPC, MeasuredIPC: w.IPC,
			})
		}
	}
	return lc, be
}

// orderWindows reorders engine windows into spec order (LC first).
func orderWindows(windows []sched.AppWindow, specs []sched.AppSpec) []sched.AppWindow {
	byName := make(map[string]sched.AppWindow, len(windows))
	for _, w := range windows {
		byName[w.Spec.Name] = w
	}
	out := make([]sched.AppWindow, 0, len(specs))
	for _, s := range specs {
		out = append(out, byName[s.Name])
	}
	return out
}
