package faults

import (
	"fmt"
	"math"

	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/rdt"
	"ahq/internal/sched"
	"ahq/internal/workload"
)

// Stats counts the faults an Injector actually injected (a planned event is
// only counted when something was there to fail — e.g. a StrategyPanic
// epoch fires once per Decide call, and a TelemetryStale epoch before any
// healthy window has nothing to replay and injects nothing).
type Stats struct {
	ApplyFailures     int
	TelemetryDrops    int
	TelemetryStales   int
	MetricCorruptions int
	StrategyPanics    int
}

// Total sums the injected fault counts.
func (s Stats) Total() int {
	return s.ApplyFailures + s.TelemetryDrops + s.TelemetryStales +
		s.MetricCorruptions + s.StrategyPanics
}

// Injector owns one fault plan and hands out the wrappers that enact it.
// One injector is meant to wrap the pieces of one run (engine + strategy,
// or host); its Stats then account for every fault that run absorbed. Not
// safe for concurrent use, matching the engine it wraps.
type Injector struct {
	plan  *Plan
	stats Stats
}

// NewInjector returns an injector for the plan (nil means no faults).
func NewInjector(plan *Plan) *Injector {
	if plan == nil {
		plan = &Plan{}
	}
	return &Injector{plan: plan}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() *Plan { return in.plan }

// Stats returns the faults injected so far.
func (in *Injector) Stats() Stats { return in.stats }

// Engine wraps a core.Engine with the plan's telemetry and enforcement
// faults. Controller epochs are counted by RunWindow calls; the initial
// allocation a controller applies before its first window is never faulted
// (the daemon comes up healthy, then the actuator degrades mid-run). With
// an empty plan every method is a verbatim pass-through.
type Engine struct {
	inner core.Engine
	in    *Injector
	// epoch counts completed RunWindow calls; the window that call n
	// delivers (and the applies that follow it) belong to epoch n.
	epoch    int
	prev     []sched.AppWindow
	prevTime float64
	havePrev bool
	// staleNow overrides NowMs with prevTime while the current epoch's
	// window is a stale replay.
	staleNow bool
}

// Engine wraps an engine with this injector's plan.
func (in *Injector) Engine(inner core.Engine) *Engine {
	return &Engine{inner: inner, in: in}
}

// Spec implements core.Engine.
func (e *Engine) Spec() machine.Spec { return e.inner.Spec() }

// AppSpecs implements core.Engine.
func (e *Engine) AppSpecs() []sched.AppSpec { return e.inner.AppSpecs() }

// Allocation implements core.Engine.
func (e *Engine) Allocation() machine.Allocation { return e.inner.Allocation() }

// ResetRunStats implements core.Engine.
func (e *Engine) ResetRunStats() { e.inner.ResetRunStats() }

// RunP95 implements core.Engine.
func (e *Engine) RunP95(app string) float64 { return e.inner.RunP95(app) }

// RunIPC implements core.Engine.
func (e *Engine) RunIPC(app string) float64 { return e.inner.RunIPC(app) }

// NowMs implements core.Engine; during a stale-replay epoch it reports the
// replayed snapshot's timestamp, which is how the controller detects it.
func (e *Engine) NowMs() float64 {
	if e.staleNow {
		return e.prevTime
	}
	return e.inner.NowMs()
}

// RunWindow implements core.Engine: the node always advances, but the
// delivered observation may be dropped, replayed stale, or NaN-corrupted.
func (e *Engine) RunWindow(windowMs float64) []sched.AppWindow {
	epoch := e.epoch
	e.epoch++
	e.staleNow = false
	win := e.inner.RunWindow(windowMs)
	if !e.in.plan.Empty() {
		switch {
		case e.in.plan.ActiveAt(epoch, TelemetryDrop):
			e.in.stats.TelemetryDrops++
			return nil
		case e.in.plan.ActiveAt(epoch, TelemetryStale) && e.havePrev:
			e.in.stats.TelemetryStales++
			e.staleNow = true
			return append([]sched.AppWindow(nil), e.prev...)
		case e.in.plan.ActiveAt(epoch, MetricNaN):
			e.in.stats.MetricCorruptions++
			out := append([]sched.AppWindow(nil), win...)
			for i := range out {
				if out[i].Spec.Class == workload.LC {
					out[i].P95Ms = math.NaN()
					out[i].MeanMs = math.NaN()
				} else {
					out[i].IPC = math.NaN()
				}
			}
			return out
		}
		// Healthy delivery: remember it for a later stale replay.
		e.prev = append(e.prev[:0], win...)
		e.prevTime = e.inner.NowMs()
		e.havePrev = true
	}
	return win
}

// SetAllocation implements core.Engine, failing at the plan's ApplyFail
// epochs. The failed apply leaves the inner engine untouched.
func (e *Engine) SetAllocation(a machine.Allocation) error {
	if epoch := e.epoch - 1; epoch >= 0 && e.in.plan.ActiveAt(epoch, ApplyFail) {
		e.in.stats.ApplyFailures++
		return fmt.Errorf("faults: injected apply failure at epoch %d", epoch)
	}
	return e.inner.SetAllocation(a)
}

var _ core.Engine = (*Engine)(nil)

// Strategy wraps a sched.Strategy, panicking inside Decide at the plan's
// StrategyPanic epochs to exercise the controller's recover path. Init and
// healthy epochs pass through untouched.
type Strategy struct {
	inner sched.Strategy
	in    *Injector
}

// Strategy wraps a strategy with this injector's plan.
func (in *Injector) Strategy(inner sched.Strategy) *Strategy {
	return &Strategy{inner: inner, in: in}
}

// Name implements sched.Strategy.
func (s *Strategy) Name() string { return s.inner.Name() }

// Init implements sched.Strategy.
func (s *Strategy) Init(spec machine.Spec, apps []sched.AppSpec) machine.Allocation {
	return s.inner.Init(spec, apps)
}

// Decide implements sched.Strategy.
func (s *Strategy) Decide(t sched.Telemetry, current machine.Allocation) machine.Allocation {
	if s.in.plan.ActiveAt(t.Epoch, StrategyPanic) {
		s.in.stats.StrategyPanics++
		panic(fmt.Sprintf("faults: injected strategy panic at epoch %d", t.Epoch))
	}
	return s.inner.Decide(t, current)
}

var _ sched.Strategy = (*Strategy)(nil)

// Host wraps an rdt.Host with epoch-indexed Apply failures, for callers
// that drive the host directly instead of through core.Run (the ahqd
// daemon). The caller advances the epoch once per monitoring interval.
type Host struct {
	inner rdt.Host
	in    *Injector
	epoch int
}

// Host wraps a host with this injector's plan.
func (in *Injector) Host(inner rdt.Host) *Host {
	return &Host{inner: inner, in: in}
}

// SetEpoch positions the host at a controller epoch.
func (h *Host) SetEpoch(epoch int) { h.epoch = epoch }

// Spec implements rdt.Host.
func (h *Host) Spec() machine.Spec { return h.inner.Spec() }

// Apply implements rdt.Host, failing at the plan's ApplyFail epochs.
func (h *Host) Apply(a machine.Allocation) error {
	if h.in.plan.ActiveAt(h.epoch, ApplyFail) {
		h.in.stats.ApplyFailures++
		return fmt.Errorf("faults: injected apply failure at epoch %d", h.epoch)
	}
	return h.inner.Apply(a)
}

var _ rdt.Host = (*Host)(nil)
