// Package faults provides deterministic fault injection for the Ah-Q
// controller: a seeded, epoch-indexed fault plan plus wrappers for the
// engine (core.Engine), the enforcement host (rdt.Host), and the strategy
// (sched.Strategy) that make the planned faults happen — rejected applies,
// dropped/stale/NaN-corrupted telemetry windows, and strategy panics.
// Everything is reproducible from the plan alone: the same plan against the
// same seeded engine yields byte-identical runs, and an empty plan makes
// every wrapper a pass-through, so the zero-fault path is a true no-op.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// ApplyFail makes SetAllocation/Apply return an error.
	ApplyFail Kind = iota
	// TelemetryDrop makes RunWindow deliver no windows.
	TelemetryDrop
	// TelemetryStale makes RunWindow replay the previous healthy snapshot
	// with its old timestamp (the engine still advances underneath).
	TelemetryStale
	// MetricNaN corrupts the delivered windows' latency/IPC metrics to NaN.
	MetricNaN
	// StrategyPanic makes the wrapped strategy panic inside Decide.
	StrategyPanic
	numKinds
)

var kindNames = [numKinds]string{"apply", "drop", "stale", "nan", "panic"}

func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return "unknown"
	}
	return kindNames[k]
}

// Event is one planned fault: a kind active over a controller-epoch range.
type Event struct {
	Kind Kind
	// Epoch is the first controller epoch (0-based) the fault is active in.
	Epoch int
	// Epochs is the duration in epochs (>= 1); ignored when Persistent.
	Epochs int
	// Persistent keeps the fault active from Epoch until the run ends.
	Persistent bool
}

// ActiveAt reports whether the event covers the epoch.
func (e Event) ActiveAt(epoch int) bool {
	if epoch < e.Epoch {
		return false
	}
	if e.Persistent {
		return true
	}
	n := e.Epochs
	if n < 1 {
		n = 1
	}
	return epoch < e.Epoch+n
}

// String renders the event in plan-spec form: "apply@5", "drop@8x3",
// "apply@10+".
func (e Event) String() string {
	s := fmt.Sprintf("%s@%d", e.Kind, e.Epoch)
	switch {
	case e.Persistent:
		return s + "+"
	case e.Epochs > 1:
		return fmt.Sprintf("%sx%d", s, e.Epochs)
	}
	return s
}

// Plan is a deterministic, epoch-indexed fault schedule. The zero value
// (and nil) is the empty plan: no faults.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// ActiveAt reports whether any event of the kind covers the epoch.
func (p *Plan) ActiveAt(epoch int, k Kind) bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		if e.Kind == k && e.ActiveAt(epoch) {
			return true
		}
	}
	return false
}

// String renders the plan as a comma-joined spec parseable by Parse; the
// empty plan renders as "-".
func (p *Plan) String() string {
	if p.Empty() {
		return "-"
	}
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// Parse reads a plan spec: comma-separated events of the form
// kind@epoch[xN|+], where kind is one of apply, drop, stale, nan, panic.
// "", "-" and "none" parse to the empty plan.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "-" || spec == "none" {
		return &Plan{}, nil
	}
	p := &Plan{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, at, ok := strings.Cut(item, "@")
		if !ok {
			return nil, fmt.Errorf("faults: event %q needs kind@epoch", item)
		}
		ev := Event{Kind: -1, Epochs: 1}
		for k := Kind(0); k < numKinds; k++ {
			if kindNames[k] == name {
				ev.Kind = k
				break
			}
		}
		if ev.Kind < 0 {
			return nil, fmt.Errorf("faults: unknown fault kind %q (want %s)",
				name, strings.Join(kindNames[:], "|"))
		}
		if rest, ok := strings.CutSuffix(at, "+"); ok {
			ev.Persistent = true
			at = rest
		} else if epochStr, durStr, ok := strings.Cut(at, "x"); ok {
			n, err := strconv.Atoi(durStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faults: event %q: bad duration %q", item, durStr)
			}
			ev.Epochs = n
			at = epochStr
		}
		epoch, err := strconv.Atoi(at)
		if err != nil || epoch < 0 {
			return nil, fmt.Errorf("faults: event %q: bad epoch %q", item, at)
		}
		ev.Epoch = epoch
		p.Events = append(p.Events, ev)
	}
	sortEvents(p.Events)
	return p, nil
}

// Generate draws a reproducible random plan over a horizon of controller
// epochs: for each fault kind up to two events at random epochs in
// [1, horizon) with durations of one to three epochs; ApplyFail events are
// occasionally persistent. Equal seeds yield equal plans.
func Generate(seed int64, horizon int) *Plan {
	if horizon < 2 {
		horizon = 2
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{}
	for k := Kind(0); k < numKinds; k++ {
		for i, n := 0, rng.Intn(3); i < n; i++ {
			ev := Event{Kind: k, Epoch: 1 + rng.Intn(horizon-1), Epochs: 1 + rng.Intn(3)}
			if k == ApplyFail && rng.Intn(5) == 0 {
				ev.Persistent = true
			}
			p.Events = append(p.Events, ev)
		}
	}
	sortEvents(p.Events)
	return p
}

// sortEvents orders events by epoch, then kind, then duration, so that
// String output (and everything derived from it) is canonical.
func sortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Persistent != b.Persistent {
			return b.Persistent
		}
		return a.Epochs < b.Epochs
	})
}
