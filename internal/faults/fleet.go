package faults

// Fleet-scope faults. A Plan (plan.go) schedules faults inside one node's
// controller run; a FleetPlan schedules faults across a *fleet* of nodes —
// whole-node crashes, capacity degradations, and telemetry blackouts — in
// the same epoch-indexed spec DSL, extended with a victim selector:
//
//	crash@120x3/nodes=2%     2% of the fleet dead for epochs 120-122
//	degrade@200+/node=17     node 17 loses half its capacity from epoch 200
//	blackout@50x10/nodes=5   5 nodes deliver no telemetry for 10 epochs
//
// Selectors come in three spellings: node=K pins one explicit node,
// nodes=N draws N distinct victims, nodes=P% draws ⌈P% of the fleet⌉
// victims (at least one). Drawn selectors are resolved deterministically
// from a seed (Resolve, GenerateFleet), so the same plan against the same
// fleet always hurts the same nodes. Everything downstream — the cluster
// engine's phase schedule, the supervisor's re-placements — is a pure
// function of the resolved plan.

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"ahq/internal/machine"
)

// FleetKind enumerates the fleet-scope fault classes.
type FleetKind int

const (
	// NodeCrash kills the victim nodes at the event epoch: their
	// applications stop running and deliver nothing. A bounded event
	// (xN) restarts the node after N epochs; a persistent event (+)
	// keeps it dead for the rest of the run.
	NodeCrash FleetKind = iota
	// NodeDegrade shrinks the victim nodes' capacity (cores, LLC ways,
	// memory bandwidth — see DegradedSpec) from the event epoch, restored
	// when the event ends unless persistent.
	NodeDegrade
	// NodeBlackout silences the victim nodes' telemetry for the event's
	// epochs: every application's window is dropped (the PR 4 drop
	// injector applied node-wide), while the node itself keeps running.
	NodeBlackout
	numFleetKinds
)

var fleetKindNames = [numFleetKinds]string{"crash", "degrade", "blackout"}

func (k FleetKind) String() string {
	if k < 0 || k >= numFleetKinds {
		return "unknown"
	}
	return fleetKindNames[k]
}

// Selector picks an event's victim nodes. Exactly one field is set.
type Selector struct {
	// Node pins one explicit node index; -1 when unused.
	Node int
	// Count draws that many distinct victims; 0 when unused.
	Count int
	// Percent draws ⌈Percent% of the fleet⌉ victims (at least one);
	// 0 when unused.
	Percent float64
}

// String renders the selector in spec form.
func (s Selector) String() string {
	switch {
	case s.Node >= 0:
		return fmt.Sprintf("node=%d", s.Node)
	case s.Percent > 0:
		return fmt.Sprintf("nodes=%g%%", s.Percent)
	default:
		return fmt.Sprintf("nodes=%d", s.Count)
	}
}

// victims returns how many nodes the selector draws from a fleet of n.
func (s Selector) victims(n int) int {
	switch {
	case s.Node >= 0:
		return 1
	case s.Percent > 0:
		c := int(s.Percent*float64(n)/100 + 0.5)
		if c < 1 {
			c = 1
		}
		if c > n {
			c = n
		}
		return c
	default:
		c := s.Count
		if c > n {
			c = n
		}
		return c
	}
}

// FleetEvent is one planned fleet fault: a kind active over an epoch range
// on a set of victim nodes.
type FleetEvent struct {
	Kind FleetKind
	// Epoch is the first controller epoch (0-based) the fault is active in.
	Epoch int
	// Epochs is the duration in epochs (>= 1); ignored when Persistent.
	Epochs int
	// Persistent keeps the fault active from Epoch until the run ends.
	Persistent bool
	// Sel picks the victims; ignored once Victims is resolved.
	Sel Selector
	// Victims holds the resolved victim node indices, ascending; nil until
	// Resolve (or GenerateFleet) assigns them.
	Victims []int
}

// ActiveAt reports whether the event covers the epoch.
func (e FleetEvent) ActiveAt(epoch int) bool {
	if epoch < e.Epoch {
		return false
	}
	if e.Persistent {
		return true
	}
	n := e.Epochs
	if n < 1 {
		n = 1
	}
	return epoch < e.Epoch+n
}

// Hits reports whether the resolved event covers the node.
func (e FleetEvent) Hits(node int) bool {
	// Victims are sorted ascending; events hit a handful of nodes, so a
	// linear scan beats a binary search's branches at fleet scale.
	for _, v := range e.Victims {
		if v == node {
			return true
		}
		if v > node {
			return false
		}
	}
	return false
}

// String renders the event in plan-spec form: "crash@120x3/nodes=2%".
func (e FleetEvent) String() string {
	s := fmt.Sprintf("%s@%d", e.Kind, e.Epoch)
	switch {
	case e.Persistent:
		s += "+"
	case e.Epochs > 1:
		s = fmt.Sprintf("%sx%d", s, e.Epochs)
	}
	return s + "/" + e.Sel.String()
}

// FleetPlan is a deterministic, epoch-indexed fleet fault schedule. The
// zero value (and nil) is the empty plan: no faults.
type FleetPlan struct {
	Events []FleetEvent
}

// Empty reports whether the plan injects nothing.
func (p *FleetPlan) Empty() bool { return p == nil || len(p.Events) == 0 }

// String renders the plan as a comma-joined spec parseable by ParseFleet;
// the empty plan renders as "-".
func (p *FleetPlan) String() string {
	if p.Empty() {
		return "-"
	}
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// ParseFleet reads a fleet plan spec: comma-separated events of the form
// kind@epoch[xN|+]/selector, where kind is one of crash, degrade, blackout
// and selector is node=K, nodes=N or nodes=P%. A missing selector means
// nodes=1. "", "-" and "none" parse to the empty plan. Victims are not
// assigned here; Resolve draws them against a concrete fleet.
func ParseFleet(spec string) (*FleetPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "-" || spec == "none" {
		return &FleetPlan{}, nil
	}
	p := &FleetPlan{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		evPart, selPart, hasSel := strings.Cut(item, "/")
		name, at, ok := strings.Cut(evPart, "@")
		if !ok {
			return nil, fmt.Errorf("faults: fleet event %q needs kind@epoch", item)
		}
		ev := FleetEvent{Kind: -1, Epochs: 1, Sel: Selector{Node: -1, Count: 1}}
		for k := FleetKind(0); k < numFleetKinds; k++ {
			if fleetKindNames[k] == name {
				ev.Kind = k
				break
			}
		}
		if ev.Kind < 0 {
			return nil, fmt.Errorf("faults: unknown fleet fault kind %q (want %s)",
				name, strings.Join(fleetKindNames[:], "|"))
		}
		if rest, ok := strings.CutSuffix(at, "+"); ok {
			ev.Persistent = true
			at = rest
		} else if epochStr, durStr, ok := strings.Cut(at, "x"); ok {
			n, err := strconv.Atoi(durStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faults: fleet event %q: bad duration %q", item, durStr)
			}
			ev.Epochs = n
			at = epochStr
		}
		epoch, err := strconv.Atoi(at)
		if err != nil || epoch < 0 {
			return nil, fmt.Errorf("faults: fleet event %q: bad epoch %q", item, at)
		}
		ev.Epoch = epoch
		if hasSel {
			sel, err := parseSelector(selPart)
			if err != nil {
				return nil, fmt.Errorf("faults: fleet event %q: %w", item, err)
			}
			ev.Sel = sel
		}
		p.Events = append(p.Events, ev)
	}
	sortFleetEvents(p.Events)
	return p, nil
}

// parseSelector reads "node=K", "nodes=N" or "nodes=P%".
func parseSelector(s string) (Selector, error) {
	key, val, ok := strings.Cut(strings.TrimSpace(s), "=")
	if !ok {
		return Selector{}, fmt.Errorf("bad selector %q (want node=K, nodes=N or nodes=P%%)", s)
	}
	switch key {
	case "node":
		k, err := strconv.Atoi(val)
		if err != nil || k < 0 {
			return Selector{}, fmt.Errorf("bad node index %q", val)
		}
		return Selector{Node: k}, nil
	case "nodes":
		if pctStr, ok := strings.CutSuffix(val, "%"); ok {
			pct, err := strconv.ParseFloat(pctStr, 64)
			if err != nil || pct <= 0 || pct > 100 {
				return Selector{}, fmt.Errorf("bad percentage %q (want 0 < P <= 100)", val)
			}
			return Selector{Node: -1, Percent: pct}, nil
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return Selector{}, fmt.Errorf("bad node count %q", val)
		}
		return Selector{Node: -1, Count: n}, nil
	default:
		return Selector{}, fmt.Errorf("bad selector key %q (want node or nodes)", key)
	}
}

// Resolve draws every event's victim nodes against a fleet of n nodes,
// returning a new plan whose events carry sorted Victims. The draw is a
// pure function of (plan, seed, n): events are processed in canonical
// order, each consuming from one seeded stream, so equal inputs always
// pick equal victims. Events that already carry victims keep them
// (GenerateFleet pre-resolves; a plan may mix both), but every victim is
// validated against the fleet size.
func (p *FleetPlan) Resolve(seed int64, n int) (*FleetPlan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("faults: fleet plan needs a positive fleet size, got %d", n)
	}
	if p.Empty() {
		return &FleetPlan{}, nil
	}
	events := append([]FleetEvent(nil), p.Events...)
	sortFleetEvents(events)
	rng := rand.New(rand.NewSource(seed ^ 0x5eedf1ee7))
	for i := range events {
		ev := &events[i]
		if ev.Victims != nil {
			for _, v := range ev.Victims {
				if v < 0 || v >= n {
					return nil, fmt.Errorf("faults: fleet event %s: victim %d outside fleet of %d", ev, v, n)
				}
			}
			continue
		}
		if ev.Sel.Node >= 0 {
			if ev.Sel.Node >= n {
				return nil, fmt.Errorf("faults: fleet event %s: node %d outside fleet of %d", ev, ev.Sel.Node, n)
			}
			ev.Victims = []int{ev.Sel.Node}
			continue
		}
		k := ev.Sel.victims(n)
		perm := rng.Perm(n)[:k]
		sort.Ints(perm)
		ev.Victims = perm
	}
	return &FleetPlan{Events: events}, nil
}

// Resolved reports whether every event carries victims.
func (p *FleetPlan) Resolved() bool {
	if p == nil {
		return true
	}
	for _, e := range p.Events {
		if e.Victims == nil {
			return false
		}
	}
	return true
}

// GenerateFleet draws a reproducible random fleet plan over a fleet of n
// nodes and a default 120-epoch horizon: for each fault kind up to two
// events at random epochs with durations of two to eight epochs hitting up
// to 5% of the fleet; crash events are occasionally persistent. Victims
// are resolved from the same seed, so equal (seed, n) yield equal plans.
func GenerateFleet(seed int64, n int) *FleetPlan {
	const horizon = 120
	rng := rand.New(rand.NewSource(seed))
	p := &FleetPlan{}
	maxVictims := n / 20
	if maxVictims < 1 {
		maxVictims = 1
	}
	for k := FleetKind(0); k < numFleetKinds; k++ {
		for i, cnt := 0, rng.Intn(3); i < cnt; i++ {
			ev := FleetEvent{
				Kind:   k,
				Epoch:  1 + rng.Intn(horizon-1),
				Epochs: 2 + rng.Intn(7),
				Sel:    Selector{Node: -1, Count: 1 + rng.Intn(maxVictims)},
			}
			if k == NodeCrash && rng.Intn(5) == 0 {
				ev.Persistent = true
			}
			p.Events = append(p.Events, ev)
		}
	}
	sortFleetEvents(p.Events)
	resolved, err := p.Resolve(seed, n)
	if err != nil {
		// Unreachable: generated selectors are always within bounds.
		panic(err)
	}
	return resolved
}

// sortFleetEvents orders events canonically: by epoch, kind, duration,
// then selector rendering, so String output — and the victim draw, which
// consumes the seeded stream in event order — is stable.
func sortFleetEvents(events []FleetEvent) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Persistent != b.Persistent {
			return b.Persistent
		}
		if a.Epochs != b.Epochs {
			return a.Epochs < b.Epochs
		}
		return a.Sel.String() < b.Sel.String()
	})
}

// DownAt reports whether the node is crashed at the epoch. The plan must
// be resolved.
func (p *FleetPlan) DownAt(node, epoch int) bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		if e.Kind == NodeCrash && e.ActiveAt(epoch) && e.Hits(node) {
			return true
		}
	}
	return false
}

// DegradedAt reports whether the node runs with shrunken capacity at the
// epoch. The plan must be resolved.
func (p *FleetPlan) DegradedAt(node, epoch int) bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		if e.Kind == NodeDegrade && e.ActiveAt(epoch) && e.Hits(node) {
			return true
		}
	}
	return false
}

// Boundaries returns the sorted distinct epochs in (0, total) at which any
// crash or degrade event starts or ends — the epochs where the fleet's
// physical configuration changes and a phased simulation must cut a new
// segment. Blackout events are excluded: they lower to node-local
// telemetry faults inside a segment and never change the configuration.
func (p *FleetPlan) Boundaries(total int) []int {
	if p.Empty() {
		return nil
	}
	set := map[int]bool{}
	add := func(e int) {
		if e > 0 && e < total {
			set[e] = true
		}
	}
	for _, e := range p.Events {
		if e.Kind == NodeBlackout {
			continue
		}
		add(e.Epoch)
		if !e.Persistent {
			n := e.Epochs
			if n < 1 {
				n = 1
			}
			add(e.Epoch + n)
		}
	}
	out := make([]int, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// BlackoutPlan lowers the node's blackout coverage inside the epoch range
// [from, to) to a node-local telemetry fault plan: one TelemetryDrop event
// per blacked-out epoch, re-based to the range start (the segment's own
// epoch 0). Returns nil when the node has no blackout in the range. The
// plan must be resolved.
func (p *FleetPlan) BlackoutPlan(node, from, to int) *Plan {
	if p.Empty() {
		return nil
	}
	var out *Plan
	start, run := -1, 0
	flush := func() {
		if run == 0 {
			return
		}
		if out == nil {
			out = &Plan{}
		}
		out.Events = append(out.Events, Event{Kind: TelemetryDrop, Epoch: start, Epochs: run})
		start, run = -1, 0
	}
	for e := from; e < to; e++ {
		dark := false
		for _, ev := range p.Events {
			if ev.Kind == NodeBlackout && ev.ActiveAt(e) && ev.Hits(node) {
				dark = true
				break
			}
		}
		if dark {
			if run == 0 {
				start = e - from
			}
			run++
		} else {
			flush()
		}
	}
	flush()
	if out != nil {
		sortEvents(out.Events)
	}
	return out
}

// DegradeShrinkFactor is the capacity a degraded node retains: a degrade
// event halves the node's cores, LLC ways and memory bandwidth (floored at
// one unit of each). The DSL deliberately carries no magnitude — a fleet
// plan names *which* nodes lose capacity *when*; how much a degraded
// machine keeps is a property of the failure model, pinned here.
const DegradeShrinkFactor = 0.5

// DegradedSpec returns the capacity a degraded node retains.
func DegradedSpec(s machine.Spec) machine.Spec {
	half := func(v int) int {
		v = int(float64(v) * DegradeShrinkFactor)
		if v < 1 {
			v = 1
		}
		return v
	}
	return machine.Spec{
		Cores:      half(s.Cores),
		LLCWays:    half(s.LLCWays),
		MemBWUnits: half(s.MemBWUnits),
		MemBWGBps:  s.MemBWGBps * DegradeShrinkFactor,
	}
}
