package faults_test

import (
	"reflect"
	"testing"

	"ahq/internal/core"
	"ahq/internal/faults"
	"ahq/internal/machine"
	"ahq/internal/rdt"
	"ahq/internal/sched/arq"
	"ahq/internal/sim"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

func TestParseStringRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"", "-"},
		{"-", "-"},
		{"none", "-"},
		{"apply@5", "apply@5"},
		{"drop@8x3", "drop@8x3"},
		{"apply@10+", "apply@10+"},
		{" panic@2 , nan@4x2 ", "panic@2,nan@4x2"},
		// Canonical ordering: by epoch first, kind second.
		{"stale@7,drop@3,apply@3", "apply@3,drop@3,stale@7"},
	}
	for _, c := range cases {
		p, err := faults.Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if got := p.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.spec, got, c.want)
		}
		// String output must itself parse back to the same plan.
		again, err := faults.Parse(p.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", p.String(), err)
		}
		if !reflect.DeepEqual(p, again) {
			t.Errorf("round trip of %q: %+v != %+v", c.spec, p, again)
		}
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"apply", "apply@", "apply@-1", "apply@x", "frob@3",
		"drop@2x0", "drop@2xq", "apply@2.5",
	} {
		if _, err := faults.Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

func TestEventActiveAt(t *testing.T) {
	burst := faults.Event{Kind: faults.ApplyFail, Epoch: 4, Epochs: 3}
	for epoch, want := range map[int]bool{3: false, 4: true, 6: true, 7: false} {
		if got := burst.ActiveAt(epoch); got != want {
			t.Errorf("burst.ActiveAt(%d) = %v, want %v", epoch, got, want)
		}
	}
	persist := faults.Event{Kind: faults.ApplyFail, Epoch: 4, Persistent: true}
	for epoch, want := range map[int]bool{3: false, 4: true, 1000: true} {
		if got := persist.ActiveAt(epoch); got != want {
			t.Errorf("persist.ActiveAt(%d) = %v, want %v", epoch, got, want)
		}
	}
}

func TestGenerateIsSeedDeterministic(t *testing.T) {
	a, b := faults.Generate(42, 40), faults.Generate(42, 40)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%s\n%s", a, b)
	}
	// A generated plan must survive the spec round trip too.
	back, err := faults.Parse(a.String())
	if err != nil {
		t.Fatalf("Parse(Generate(...)): %v", err)
	}
	if a.String() != back.String() {
		t.Fatalf("generated plan not canonical: %q vs %q", a, back)
	}
	if c := faults.Generate(43, 40); reflect.DeepEqual(a, c) && !a.Empty() {
		t.Errorf("seeds 42 and 43 produced identical non-empty plans: %s", a)
	}
}

func testEngine(t *testing.T, seed int64) *sim.Engine {
	t.Helper()
	x, m := workload.MustLC("xapian"), workload.MustLC("moses")
	b := workload.MustBE("stream")
	e, err := sim.New(sim.Config{
		Spec: machine.DefaultSpec(),
		Seed: seed,
		Apps: []sim.AppConfig{
			{LC: &x, Load: trace.Constant(0.4)},
			{LC: &m, Load: trace.Constant(0.2)},
			{BE: &b},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func quickOpts() core.Options {
	return core.Options{EpochMs: 500, WarmupMs: 2_000, DurationMs: 6_000}
}

// TestEmptyPlanIsNoOp: with no faults planned, a wrapped run must equal the
// unwrapped run exactly — the zero-fault path is a true pass-through.
func TestEmptyPlanIsNoOp(t *testing.T) {
	bare, err := core.Run(testEngine(t, 7), arq.New(arq.Config{}), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(&faults.Plan{})
	wrapped, err := core.Run(inj.Engine(testEngine(t, 7)),
		inj.Strategy(arq.New(arq.Config{})), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if inj.Stats().Total() != 0 {
		t.Fatalf("empty plan injected faults: %+v", inj.Stats())
	}
	if !reflect.DeepEqual(bare, wrapped) {
		t.Errorf("wrapped zero-fault run differs from bare run:\n%+v\n%+v", bare, wrapped)
	}
}

// TestCombinedPlanSurvivesAndAccounts is the PR's acceptance scenario: one
// plan combining a strategy panic, a persistent apply failure and a
// telemetry dropout. The run must complete without error, end on a valid
// allocation, and report exactly the injected incidents; and it must be
// reproducible run to run.
func TestCombinedPlanSurvivesAndAccounts(t *testing.T) {
	plan, err := faults.Parse("panic@4x2,apply@6+,drop@8")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*core.Result, faults.Stats) {
		inj := faults.NewInjector(plan)
		res, err := core.Run(inj.Engine(testEngine(t, 11)),
			inj.Strategy(arq.New(arq.Config{})), quickOpts())
		if err != nil {
			t.Fatalf("Run under combined plan: %v", err)
		}
		return res, inj.Stats()
	}
	res, stats := run()

	if err := res.FinalAllocation.Validate(machine.DefaultSpec(),
		[]string{"xapian", "moses", "stream"}); err != nil {
		t.Errorf("final allocation invalid after faults: %v", err)
	}
	if stats.StrategyPanics != 2 {
		t.Errorf("StrategyPanics = %d, want 2", stats.StrategyPanics)
	}
	if stats.TelemetryDrops != 1 {
		t.Errorf("TelemetryDrops = %d, want 1", stats.TelemetryDrops)
	}
	if stats.ApplyFailures == 0 {
		t.Error("persistent apply fault never fired")
	}
	if got := res.CountIncidents(core.IncidentStrategyPanic); got != stats.StrategyPanics {
		t.Errorf("panic incidents = %d, injected %d", got, stats.StrategyPanics)
	}
	if got := res.CountIncidents(core.IncidentTelemetryDropped); got != stats.TelemetryDrops {
		t.Errorf("drop incidents = %d, injected %d", got, stats.TelemetryDrops)
	}
	applyIncidents := res.CountIncidents(core.IncidentAllocationRejected) +
		res.CountIncidents(core.IncidentFallbackRejected)
	if applyIncidents != stats.ApplyFailures {
		t.Errorf("apply incidents = %d, injected %d", applyIncidents, stats.ApplyFailures)
	}
	if res.DegradedEpochs == 0 {
		t.Error("DegradedEpochs = 0 under a three-way fault plan")
	}

	res2, stats2 := run()
	if !reflect.DeepEqual(res, res2) {
		t.Error("identical seeded chaos runs differ")
	}
	if stats != stats2 {
		t.Errorf("identical runs injected different faults: %+v vs %+v", stats, stats2)
	}
}

// TestStaleReplayIsDetected: a stale epoch replays the previous window with
// a non-advancing clock, which the controller must flag and hold through.
func TestStaleReplayIsDetected(t *testing.T) {
	plan, err := faults.Parse("stale@5,nan@7")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(plan)
	opts := quickOpts()
	opts.RecordTimeline = true
	res, err := core.Run(inj.Engine(testEngine(t, 3)),
		inj.Strategy(arq.New(arq.Config{})), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.Stats().TelemetryStales; got != 1 {
		t.Fatalf("TelemetryStales = %d, want 1", got)
	}
	if got := res.CountIncidents(core.IncidentTelemetryStale); got != 1 {
		t.Errorf("stale incidents = %d, want 1", got)
	}
	if got := res.CountIncidents(core.IncidentTelemetryCorrupt); got != 1 {
		t.Errorf("corrupt incidents = %d, want 1", got)
	}
	// Timeline index is the epoch number (warm-up epochs are recorded too).
	for epoch, rec := range res.Timeline {
		if wantOK := epoch != 5 && epoch != 7; rec.TelemetryOK != wantOK {
			t.Errorf("epoch %d: TelemetryOK = %v, want %v", epoch, rec.TelemetryOK, wantOK)
		}
	}
}

// TestStaleBeforeFirstWindowInjectsNothing: with nothing to replay, a
// stale event on epoch 0 must not fire (and must not be counted).
func TestStaleBeforeFirstWindowInjectsNothing(t *testing.T) {
	plan, err := faults.Parse("stale@0")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(plan)
	res, err := core.Run(inj.Engine(testEngine(t, 5)),
		inj.Strategy(arq.New(arq.Config{})), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.Stats().Total(); got != 0 {
		t.Errorf("injected %d faults, want 0", got)
	}
	if got := len(res.Incidents); got != 0 {
		t.Errorf("incidents = %d, want 0", got)
	}
}

// TestHostWrapperFailsAtPlannedEpochs covers the rdt.Host path used by the
// daemon: Apply fails exactly at the plan's epochs.
func TestHostWrapperFailsAtPlannedEpochs(t *testing.T) {
	plan, err := faults.Parse("apply@2x2")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(plan)
	host := inj.Host(rdt.NewSimHost(testEngine(t, 9)))
	alloc := machine.AllShared(machine.DefaultSpec(), machine.FairShare,
		[]string{"xapian", "moses", "stream"})
	for epoch := 0; epoch < 5; epoch++ {
		host.SetEpoch(epoch)
		err := host.Apply(alloc)
		if wantFail := epoch == 2 || epoch == 3; (err != nil) != wantFail {
			t.Errorf("epoch %d: Apply err = %v, want failure=%v", epoch, err, wantFail)
		}
	}
	if got := inj.Stats().ApplyFailures; got != 2 {
		t.Errorf("ApplyFailures = %d, want 2", got)
	}
}
