package faults

import (
	"reflect"
	"strings"
	"testing"

	"ahq/internal/machine"
)

func TestParseFleetRoundTrip(t *testing.T) {
	cases := []string{
		"crash@120x3/nodes=2%",
		"degrade@200+/node=17",
		"blackout@50x10/nodes=5",
		"crash@4+/nodes=1",
		"crash@10/nodes=1,degrade@10x4/nodes=3,blackout@12x2/nodes=10%",
	}
	for _, spec := range cases {
		p, err := ParseFleet(spec)
		if err != nil {
			t.Fatalf("ParseFleet(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("round-trip %q -> %q", spec, got)
		}
		// Parse(String(Parse(x))) must be a fixed point.
		again, err := ParseFleet(p.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p.String(), err)
		}
		if !reflect.DeepEqual(p, again) {
			t.Errorf("re-parse of %q not a fixed point: %+v vs %+v", spec, p, again)
		}
	}
}

func TestParseFleetEmpty(t *testing.T) {
	for _, spec := range []string{"", "-", "none", "  "} {
		p, err := ParseFleet(spec)
		if err != nil {
			t.Fatalf("ParseFleet(%q): %v", spec, err)
		}
		if !p.Empty() {
			t.Errorf("ParseFleet(%q) not empty: %v", spec, p)
		}
		if p.String() != "-" {
			t.Errorf("empty plan renders %q, want -", p.String())
		}
	}
}

func TestParseFleetDefaultSelector(t *testing.T) {
	p, err := ParseFleet("crash@5x2")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "crash@5x2/nodes=1" {
		t.Errorf("default selector renders %q, want crash@5x2/nodes=1", got)
	}
}

func TestParseFleetRejects(t *testing.T) {
	cases := []string{
		"melt@5/nodes=1",        // unknown kind
		"crash@-1/nodes=1",      // bad epoch
		"crash@5x0/nodes=1",     // bad duration
		"crash@5/nodes=0",       // bad count
		"crash@5/nodes=0%",      // bad percent
		"crash@5/nodes=150%",    // percent > 100
		"crash@5/node=-2",       // negative node
		"crash@5/victims=3",     // bad selector key
		"crash",                 // missing epoch
		"crash@5/nodes=2%extra", // trailing junk in percent
	}
	for _, spec := range cases {
		if _, err := ParseFleet(spec); err == nil {
			t.Errorf("ParseFleet(%q) accepted, want error", spec)
		}
	}
}

func TestResolveDeterministic(t *testing.T) {
	p, err := ParseFleet("crash@10x3/nodes=5%,blackout@20x2/nodes=3")
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Resolve(42, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Resolve(42, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Resolve not deterministic:\n%+v\n%+v", a, b)
	}
	if !a.Resolved() {
		t.Fatal("Resolve left events without victims")
	}
	// 5% of 200 = 10 victims; all distinct, in range, sorted.
	crash := a.Events[0]
	if crash.Kind != NodeCrash || len(crash.Victims) != 10 {
		t.Fatalf("crash event: %+v, want 10 victims", crash)
	}
	seen := map[int]bool{}
	prev := -1
	for _, v := range crash.Victims {
		if v < 0 || v >= 200 {
			t.Errorf("victim %d outside fleet", v)
		}
		if seen[v] {
			t.Errorf("duplicate victim %d", v)
		}
		if v <= prev {
			t.Errorf("victims not strictly ascending: %v", crash.Victims)
		}
		seen[v] = true
		prev = v
	}
	// A different seed must (overwhelmingly) draw different victims.
	c, err := p.Resolve(43, 200)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events[0].Victims, c.Events[0].Victims) {
		t.Errorf("seeds 42 and 43 drew identical victims %v", a.Events[0].Victims)
	}
}

func TestResolveExplicitNodeAndBounds(t *testing.T) {
	p, err := ParseFleet("degrade@5+/node=17")
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Resolve(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Events[0].Victims, []int{17}) {
		t.Errorf("victims = %v, want [17]", r.Events[0].Victims)
	}
	if _, err := p.Resolve(1, 10); err == nil {
		t.Error("node=17 accepted against a fleet of 10, want error")
	}
	// Percent of a tiny fleet still draws at least one victim.
	p2, _ := ParseFleet("crash@5/nodes=1%")
	r2, err := p2.Resolve(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Events[0].Victims) != 1 {
		t.Errorf("1%% of 3 nodes drew %d victims, want 1", len(r2.Events[0].Victims))
	}
}

func TestGenerateFleetDeterministic(t *testing.T) {
	a := GenerateFleet(7, 100)
	b := GenerateFleet(7, 100)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("GenerateFleet not deterministic:\n%+v\n%+v", a, b)
	}
	if !a.Resolved() {
		t.Fatal("GenerateFleet returned unresolved events")
	}
	c := GenerateFleet(8, 100)
	if reflect.DeepEqual(a, c) && !a.Empty() {
		t.Error("seeds 7 and 8 generated identical non-empty plans")
	}
	// Re-resolving a generated (already resolved) plan keeps its victims.
	re, err := a.Resolve(999, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, re.Events) {
		t.Error("Resolve re-drew victims of an already resolved plan")
	}
}

func TestDownAtAndDegradedAt(t *testing.T) {
	p, err := ParseFleet("crash@10x3/node=2,degrade@5+/node=4")
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Resolve(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		node, epoch int
		down        bool
	}{
		{2, 9, false}, {2, 10, true}, {2, 12, true}, {2, 13, false},
		{3, 11, false}, {4, 11, false},
	} {
		if got := r.DownAt(tc.node, tc.epoch); got != tc.down {
			t.Errorf("DownAt(%d,%d) = %v, want %v", tc.node, tc.epoch, got, tc.down)
		}
	}
	if r.DegradedAt(4, 4) || !r.DegradedAt(4, 5) || !r.DegradedAt(4, 1000) {
		t.Error("DegradedAt wrong for persistent degrade@5 on node 4")
	}
	if r.DegradedAt(2, 6) {
		t.Error("DegradedAt hit an un-degraded node")
	}
}

func TestBoundaries(t *testing.T) {
	p, err := ParseFleet("crash@10x3/node=0,degrade@5+/node=1,blackout@2x4/node=0")
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Resolve(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// crash contributes 10 and 13; persistent degrade contributes 5 only;
	// blackout contributes nothing (no configuration change).
	got := r.Boundaries(40)
	want := []int{5, 10, 13}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Boundaries(40) = %v, want %v", got, want)
	}
	// Boundaries at or past the horizon are dropped.
	got = r.Boundaries(12)
	want = []int{5, 10}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Boundaries(12) = %v, want %v", got, want)
	}
}

func TestBlackoutPlan(t *testing.T) {
	p, err := ParseFleet("blackout@4x3/node=1,blackout@9x2/node=1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Resolve(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Full range: two runs, re-based to segment epoch 0 at fleet epoch 2.
	local := r.BlackoutPlan(1, 2, 12)
	if local == nil {
		t.Fatal("BlackoutPlan returned nil for a blacked-out node")
	}
	if got, want := local.String(), "drop@2x3,drop@7x2"; got != want {
		t.Errorf("BlackoutPlan(1,2,12) = %q, want %q", got, want)
	}
	// A range cutting through the first run keeps only the covered epochs.
	local = r.BlackoutPlan(1, 5, 7)
	if got, want := local.String(), "drop@0x2"; got != want {
		t.Errorf("BlackoutPlan(1,5,7) = %q, want %q", got, want)
	}
	// Untouched node and uncovered range yield nil.
	if r.BlackoutPlan(0, 0, 12) != nil {
		t.Error("BlackoutPlan hit an untouched node")
	}
	if r.BlackoutPlan(1, 0, 4) != nil {
		t.Error("BlackoutPlan hit an uncovered range")
	}
}

func TestDegradedSpec(t *testing.T) {
	s := machine.Spec{Cores: 10, LLCWays: 20, MemBWUnits: 10, MemBWGBps: 40}
	d := DegradedSpec(s)
	if d.Cores != 5 || d.LLCWays != 10 || d.MemBWUnits != 5 || d.MemBWGBps != 20 {
		t.Errorf("DegradedSpec(%+v) = %+v", s, d)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("degraded spec invalid: %v", err)
	}
	// Tiny specs floor at one unit and stay valid.
	tiny := DegradedSpec(machine.Spec{Cores: 1, LLCWays: 1, MemBWUnits: 1, MemBWGBps: 1})
	if tiny.Cores != 1 || tiny.LLCWays != 1 || tiny.MemBWUnits != 1 {
		t.Errorf("tiny degraded spec = %+v, want floors of 1", tiny)
	}
	if err := tiny.Validate(); err != nil {
		t.Errorf("tiny degraded spec invalid: %v", err)
	}
}

func TestFleetEventHits(t *testing.T) {
	e := FleetEvent{Victims: []int{2, 5, 9}}
	for node, want := range map[int]bool{0: false, 2: true, 3: false, 5: true, 9: true, 10: false} {
		if got := e.Hits(node); got != want {
			t.Errorf("Hits(%d) = %v, want %v", node, got, want)
		}
	}
}

func TestGenerateFleetVictimCap(t *testing.T) {
	// At any size, no generated event selects more than ~5% of the fleet
	// (floored at one victim).
	for _, n := range []int{1, 10, 100, 1000} {
		p := GenerateFleet(3, n)
		cap := n / 20
		if cap < 1 {
			cap = 1
		}
		for _, e := range p.Events {
			if len(e.Victims) > cap {
				t.Errorf("n=%d: event %s has %d victims, cap %d", n, e, len(e.Victims), cap)
			}
		}
		// String stays parseable.
		if _, err := ParseFleet(p.String()); err != nil && !strings.Contains(p.String(), "-") {
			t.Errorf("n=%d: generated plan %q not parseable: %v", n, p.String(), err)
		}
	}
}
