// Package units holds the sanctioned conversions between the
// simulation's float64 millisecond timebase and time.Duration. Every
// quantity inside the simulator carries an explicit Ms suffix; crossing
// into wall-clock types happens only here, so the scale factor is named
// exactly once. ahqlint's unitcheck analyzer flags bare time.Duration
// conversions anywhere else in the module.
package units

import "time"

// MsToDuration converts simulation milliseconds to a wall-clock
// duration, e.g. for pacing a daemon's epoch loop.
func MsToDuration(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// DurationToMs converts a wall-clock duration to simulation
// milliseconds.
func DurationToMs(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
