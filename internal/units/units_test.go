package units

import (
	"testing"
	"time"
)

func TestMsToDuration(t *testing.T) {
	cases := []struct {
		ms   float64
		want time.Duration
	}{
		{0, 0},
		{1, time.Millisecond},
		{500, 500 * time.Millisecond},
		{0.25, 250 * time.Microsecond},
		{1000, time.Second},
	}
	for _, c := range cases {
		if got := MsToDuration(c.ms); got != c.want {
			t.Errorf("MsToDuration(%v) = %v, want %v", c.ms, got, c.want)
		}
	}
}

func TestDurationToMsRoundTrip(t *testing.T) {
	for _, ms := range []float64{0, 1, 2.5, 500, 10000} {
		if got := DurationToMs(MsToDuration(ms)); got != ms {
			t.Errorf("round trip %v ms = %v ms", ms, got)
		}
	}
}
