package workload

import (
	"fmt"
	"sync"
)

// The catalog instantiates the paper's nine applications. LC service-time
// parameters are calibrated (see Calibrate) so that each application's solo
// latency-load curve reproduces the paper's profile: ideal p95 TL_i0 at low
// load, the QoS threshold M_i of Table IV at the knee, and the knee at 85%
// thread-pool utilisation, which pins max load. For Xapian, Moses, Img-dnn
// and Sphinx the resulting max loads land on the paper's Table IV values
// (3400, 1800, 5300, 4.8 QPS); Masstree and Silo are documented deviations
// (their Table IV load/latency pairs are not reachable by a 4-thread queue;
// all experiments use load *fractions*, so no figure shape depends on it).
//
// Cache and memory parameters are qualitative stand-ins chosen to reproduce
// the relative pressure each benchmark is known for: Img-dnn and Masstree
// are cache-hungry, Sphinx is compute-bound, STREAM has no cache reuse and
// saturates memory bandwidth with 10 threads.

// kneeRho is the thread-pool utilisation at which the latency-load curve
// knees; 85% matches the hockey-stick position in the paper's Fig. 7.
const kneeRho = 0.85

// lcSpec bundles the catalog inputs for one LC application.
type lcSpec struct {
	threads                   int
	serviceMeanMs             float64
	idealP95Ms                float64
	qosTargetMs               float64
	cache                     CacheProfile
	cacheSens, memSens, gbpsT float64
	// terms describes the request-content skew, if any.
	terms *termSpec
}

// termSpec is the catalog form of a TermMix.
type termSpec struct {
	n          int
	skew       float64
	coldFactor float64
}

var lcCatalog = map[string]lcSpec{
	// Search engine over a Wikipedia index; queries drawn Zipfian over
	// the vocabulary — popular terms hit warm postings.
	"xapian": {4, 1.00, 2.77, 4.22, CacheProfile{8, 0.15}, 1.4, 0.7, 1.6,
		&termSpec{n: 10_000, skew: 1.2, coldFactor: 2.0}},
	// Statistical machine translation; random dialogue snippets from the
	// English-Spanish corpus, mild length skew.
	"moses": {4, 1.89, 2.80, 10.53, CacheProfile{6, 0.20}, 1.2, 0.6, 1.2,
		&termSpec{n: 2_000, skew: 1.4, coldFactor: 1.3}},
	// MNIST handwriting recognition; near-uniform sample cost.
	"img-dnn": {4, 0.64, 1.41, 3.98, CacheProfile{10, 0.10}, 1.8, 0.8, 2.2, nil},
	// In-memory key-value store driven by YCSB's Zipfian key popularity.
	"masstree": {4, 0.45, 0.70, 1.05, CacheProfile{12, 0.25}, 1.7, 0.9, 2.8,
		&termSpec{n: 100_000, skew: 1.1, coldFactor: 1.4}},
	// Speech recognition; long compute-bound requests.
	"sphinx": {4, 708, 1500, 2682, CacheProfile{4, 0.10}, 0.8, 0.4, 0.8, nil},
	// In-memory transactional database; short transactions.
	"silo": {4, 0.50, 0.85, 1.27, CacheProfile{8, 0.20}, 1.5, 0.8, 2.0, nil},
}

var beCatalog = map[string]BEApp{
	// PARSEC liquid simulation (Navier-Stokes); compute-leaning.
	"fluidanimate": {
		Name: "fluidanimate", Threads: 4, SoloIPC: 2.70,
		Cache: CacheProfile{WorkingSetWays: 6, MinMissRatio: 0.15},
		Sens:  Sensitivity{CacheSens: 0.9, MemSens: 0.6, MemGBpsPerThread: 2.0},
	},
	// PARSEC online clustering; larger working set, cache-sensitive.
	"streamcluster": {
		Name: "streamcluster", Threads: 4, SoloIPC: 1.80,
		Cache: CacheProfile{WorkingSetWays: 10, MinMissRatio: 0.30},
		Sens:  Sensitivity{CacheSens: 1.6, MemSens: 0.9, MemGBpsPerThread: 3.5},
	},
	// STREAM with 10 threads: no cache reuse, saturates memory bandwidth;
	// the paper's "severe interference" generator.
	"stream": {
		Name: "stream", Threads: 10, SoloIPC: 0.60,
		Cache: CacheProfile{WorkingSetWays: 1.5, MinMissRatio: 0.95},
		Sens:  Sensitivity{CacheSens: 0.2, MemSens: 1.2, MemGBpsPerThread: 3.6},
	},
}

// lcCache memoises the calibrated models: fitting a term mix runs a short
// Monte-Carlo bisection, and sweeps construct applications thousands of
// times — concurrently, since the experiment harness fans runs out over a
// worker pool. Each name calibrates exactly once behind a sync.Once, so
// racing callers share one model (and one read-only *TermMix) instead of
// repeating the fit.
var lcCache sync.Map // name -> *lcCacheEntry

type lcCacheEntry struct {
	once sync.Once
	app  LCApp // guarded by once
	err  error // guarded by once
}

// LCByName returns the calibrated model of one LC application. It is safe
// for concurrent use.
func LCByName(name string) (LCApp, error) {
	v, _ := lcCache.LoadOrStore(name, &lcCacheEntry{})
	e := v.(*lcCacheEntry)
	e.once.Do(func() { e.app, e.err = calibrateCatalog(name) })
	return e.app, e.err
}

// calibrateCatalog builds one LC model from its catalog entry.
func calibrateCatalog(name string) (LCApp, error) {
	s, ok := lcCatalog[name]
	if !ok {
		return LCApp{}, fmt.Errorf("workload: unknown LC app %q", name)
	}
	app, err := Calibrate(name, s.threads, s.serviceMeanMs, s.idealP95Ms, s.qosTargetMs, kneeRho)
	if err != nil {
		return LCApp{}, err
	}
	app.Cache = s.cache
	app.Sens = Sensitivity{CacheSens: s.cacheSens, MemSens: s.memSens, MemGBpsPerThread: s.gbpsT}
	if s.terms != nil {
		mix, err := NewTermMix(s.terms.n, s.terms.skew, s.terms.coldFactor)
		if err != nil {
			return LCApp{}, fmt.Errorf("workload: %s: %w", name, err)
		}
		app.Terms = mix
		if err := FitSigmaWithTerms(&app); err != nil {
			return LCApp{}, err
		}
	}
	return app, nil
}

// MustLC is LCByName but panics on unknown names; for use with the
// catalog's own constants.
func MustLC(name string) LCApp {
	app, err := LCByName(name)
	if err != nil {
		panic(err)
	}
	return app
}

// BEByName returns the model of one BE application.
func BEByName(name string) (BEApp, error) {
	app, ok := beCatalog[name]
	if !ok {
		return BEApp{}, fmt.Errorf("workload: unknown BE app %q", name)
	}
	return app, nil
}

// MustBE is BEByName but panics on unknown names.
func MustBE(name string) BEApp {
	app, err := BEByName(name)
	if err != nil {
		panic(err)
	}
	return app
}

// LCNames returns the catalog's LC application names in the order the paper
// introduces them.
func LCNames() []string {
	return []string{"xapian", "moses", "img-dnn", "masstree", "sphinx", "silo"}
}

// BENames returns the catalog's BE application names.
func BENames() []string {
	return []string{"fluidanimate", "stream", "streamcluster"}
}
