package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Calibrate derives the free parameters of an LC model from three observable
// targets, the way the paper derives them from profiling (Section V, Fig. 7):
//
//   - idealP95 is TL_i0, the p95 at low load with ample resources;
//   - qosTarget is M_i, the tail-latency threshold at the knee (Table IV);
//   - serviceMean positions the knee: max load is where the thread pool
//     reaches kneeRho utilisation, i.e. maxLoad = kneeRho*threads/serviceMean.
//
// The log-normal sigma is solved from the ratio idealP95/serviceMean:
//
//	exp(1.645*sigma - sigma^2/2) = idealP95/serviceMean
//
// which has a valid root whenever 1 < ratio < exp(1.645^2/2) ~ 3.87; outside
// that, the ideal tail cannot be produced by a log-normal with the given
// mean and Calibrate returns an error.
func Calibrate(name string, threads int, serviceMeanMs, idealP95Ms, qosTargetMs, kneeRho float64) (LCApp, error) {
	if !(serviceMeanMs < idealP95Ms && idealP95Ms < qosTargetMs) {
		return LCApp{}, fmt.Errorf("workload: calibrate %s: need mean < ideal p95 < target, got %.3g, %.3g, %.3g",
			name, serviceMeanMs, idealP95Ms, qosTargetMs)
	}
	if kneeRho <= 0 || kneeRho >= 1 {
		return LCApp{}, fmt.Errorf("workload: calibrate %s: knee utilisation %.3g outside (0,1)", name, kneeRho)
	}
	ratio := idealP95Ms / serviceMeanMs
	sigma, err := sigmaForTailRatio(ratio)
	if err != nil {
		return LCApp{}, fmt.Errorf("workload: calibrate %s: %w", name, err)
	}
	app := LCApp{
		Name:           name,
		Threads:        threads,
		ServiceMeanMs:  serviceMeanMs,
		ServiceSigma:   sigma,
		MaxLoadQPS:     kneeRho * float64(threads) / (serviceMeanMs / 1000),
		QoSTargetMs:    qosTargetMs,
		IdealP95Ms:     idealP95Ms,
		ClientQueueCap: 16 * threads,
	}
	return app, nil
}

// calibrationSeed fixes the Monte-Carlo stream used by FitSigmaWithTerms.
// The fit is part of the deterministic build of every workload catalogue
// entry, so the seed is a package-level constant rather than a config
// knob: changing it would shift every calibrated sigma and with it every
// paper table. The value is the original 0x5EED ("seed") literal, kept
// so historical outputs remain byte-identical.
const calibrationSeed int64 = 0x5EED

// FitSigmaWithTerms refits the log-normal sigma of an application that has
// a term mix attached so that the *combined* service distribution —
// log-normal times the Zipfian content factor — still has the calibrated
// ideal p95. The mix's mean factor is 1, so the service mean (and max load)
// are unchanged; only the split of variance between the log-normal and the
// content factor moves. The fit is a deterministic Monte-Carlo bisection.
func FitSigmaWithTerms(app *LCApp) error {
	if app.Terms == nil {
		return nil
	}
	target := app.IdealP95Ms

	p95at := func(sigma float64) float64 {
		rng := rand.New(rand.NewSource(calibrationSeed))
		mu := math.Log(app.ServiceMeanMs) - sigma*sigma/2
		const n = 20000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Exp(mu+sigma*rng.NormFloat64()) * app.Terms.Sample(rng)
		}
		sort.Float64s(xs)
		return xs[int(0.95*float64(n))]
	}

	if floor := p95at(0); floor > target {
		return fmt.Errorf("workload: %s: term mix alone puts p95 at %.3g, above ideal %.3g; reduce ColdFactor",
			app.Name, floor, target)
	}
	lo, hi := 0.0, app.ServiceSigma
	if p95at(hi) < target {
		// The original sigma plus the mix undershoots (possible when the
		// mix is very mild); widen upward.
		for p95at(hi) < target && hi < 3 {
			hi *= 1.5
		}
	}
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		if p95at(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	app.ServiceSigma = (lo + hi) / 2
	return nil
}

// sigmaForTailRatio solves exp(z*sigma - sigma^2/2) = ratio for the smaller
// root, with z the standard normal 95th percentile. The smaller root keeps
// the distribution realistic (larger roots put nearly all mass near zero).
func sigmaForTailRatio(ratio float64) (float64, error) {
	const z = 1.6448536269514722
	if ratio <= 1 {
		return 0, fmt.Errorf("tail ratio %.3g must exceed 1", ratio)
	}
	c := math.Log(ratio)
	disc := z*z - 2*c
	if disc < 0 {
		return 0, fmt.Errorf("tail ratio %.3g too large for a log-normal tail (max %.3g)",
			ratio, math.Exp(z*z/2))
	}
	return z - math.Sqrt(disc), nil
}
