// Package workload defines the application models that stand in for the
// paper's benchmarks: the six Tailbench latency-critical (LC) services
// (Xapian, Moses, Img-dnn, Masstree, Sphinx, Silo) and the three best-effort
// (BE) programs (Fluidanimate, Streamcluster from PARSEC, and STREAM).
//
// An LC application is an open-loop Poisson request source served by a fixed
// worker-thread pool, with log-normally distributed per-request service
// demand. A BE application is an always-runnable bundle of compute threads.
// Both carry a miss-ratio curve (cache footprint) and a memory-bandwidth
// intensity, which is where collocation interference comes from.
package workload

import (
	"fmt"
	"math"
)

// Class distinguishes latency-critical from best-effort applications.
type Class int

const (
	// LC marks latency-critical applications, judged by p95 tail latency.
	LC Class = iota
	// BE marks best-effort applications, judged by IPC.
	BE
)

// String returns "LC" or "BE".
func (c Class) String() string {
	if c == BE {
		return "BE"
	}
	return "LC"
}

// CacheProfile is a compact miss-ratio curve: the fraction of accesses that
// miss in the LLC as a function of the number of ways available to the
// application. The concave-exponential form captures the usual shape:
// rapid improvement up to the working set, then a floor of compulsory
// misses.
type CacheProfile struct {
	// WorkingSetWays is the e-folding scale of the curve; around 2-3x this
	// many ways the curve is essentially flat.
	WorkingSetWays float64
	// MinMissRatio is the floor reached with unlimited cache (compulsory
	// and coherence misses). STREAM has a floor near 1: it has no reuse.
	MinMissRatio float64
}

// MissRatio returns the LLC miss ratio given the effective number of ways,
// which may be fractional when ways are shared.
func (c CacheProfile) MissRatio(ways float64) float64 {
	if ways < 0 {
		ways = 0
	}
	if c.WorkingSetWays <= 0 {
		return c.MinMissRatio
	}
	return c.MinMissRatio + (1-c.MinMissRatio)*math.Exp(-ways/c.WorkingSetWays)
}

// Sensitivity describes how an application's execution speed reacts to the
// memory hierarchy. Per-request service demand (LC) or per-cycle progress
// (BE) is scaled by
//
//	slow = (1 + CacheSens*miss) * (1 + MemSens*(1/bwSat - 1))
//
// normalised so that the solo, full-resource configuration has slow == 1.
type Sensitivity struct {
	// CacheSens is the service-time inflation per unit LLC miss ratio.
	CacheSens float64
	// MemSens scales the penalty of unsatisfied memory bandwidth demand.
	MemSens float64
	// MemGBpsPerThread is the bandwidth one running thread of the
	// application would draw if it missed on every access.
	MemGBpsPerThread float64
}

// LCApp is the model of one latency-critical service.
type LCApp struct {
	// Name identifies the application ("xapian", "moses", ...).
	Name string
	// Threads is the worker pool size; Tailbench instances use 4.
	Threads int
	// ServiceMeanMs is the mean per-request service demand at full
	// resources, in core-milliseconds.
	ServiceMeanMs float64
	// ServiceSigma is the sigma of the log-normal service distribution.
	ServiceSigma float64
	// MaxLoadQPS is the maximum sustainable load (Table IV); experiment
	// loads are expressed as fractions of it.
	MaxLoadQPS float64
	// QoSTargetMs is M_i, the maximum tolerable p95 (Table IV).
	QoSTargetMs float64
	// IdealP95Ms is TL_i0, the p95 with ample resources and no co-runners.
	IdealP95Ms float64
	// ClientQueueCap bounds outstanding requests, modelling the finite
	// connection pool of the load generator; arrivals beyond it are
	// rejected (counted as drops) rather than queued forever.
	ClientQueueCap int
	// Terms, when set, multiplies each request's service demand by a
	// Zipfian content factor (Xapian's query-term mix, YCSB's key skew).
	// Construction refits ServiceSigma so the ideal p95 is preserved.
	Terms *TermMix
	Cache CacheProfile
	Sens  Sensitivity
}

// Validate reports whether the model parameters are coherent.
func (a LCApp) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("workload: LC app with empty name")
	}
	if a.Threads <= 0 {
		return fmt.Errorf("workload: %s: threads must be positive", a.Name)
	}
	if a.ServiceMeanMs <= 0 {
		return fmt.Errorf("workload: %s: service mean must be positive", a.Name)
	}
	if a.ServiceSigma < 0 {
		return fmt.Errorf("workload: %s: service sigma must be non-negative", a.Name)
	}
	if a.MaxLoadQPS <= 0 {
		return fmt.Errorf("workload: %s: max load must be positive", a.Name)
	}
	if !(a.ServiceMeanMs < a.IdealP95Ms && a.IdealP95Ms < a.QoSTargetMs) {
		return fmt.Errorf("workload: %s: need service mean (%.3g) < ideal p95 (%.3g) < QoS target (%.3g)",
			a.Name, a.ServiceMeanMs, a.IdealP95Ms, a.QoSTargetMs)
	}
	if a.ClientQueueCap <= 0 {
		return fmt.Errorf("workload: %s: client queue cap must be positive", a.Name)
	}
	return nil
}

// ServiceMu returns the mu parameter of the log-normal service distribution
// (so that the mean equals ServiceMeanMs).
func (a LCApp) ServiceMu() float64 {
	return math.Log(a.ServiceMeanMs) - a.ServiceSigma*a.ServiceSigma/2
}

// ServiceP95 returns the p95 of the pure service-time distribution: the
// latency floor the application approaches at very low load.
func (a LCApp) ServiceP95() float64 {
	return math.Exp(a.ServiceMu() + 1.6448536269514722*a.ServiceSigma)
}

// BEApp is the model of one best-effort application.
type BEApp struct {
	// Name identifies the application ("fluidanimate", ...).
	Name string
	// Threads is the number of compute threads (STREAM uses 10).
	Threads int
	// SoloIPC is the IPC measured running alone on the full node.
	SoloIPC float64
	Cache   CacheProfile
	Sens    Sensitivity
}

// Validate reports whether the model parameters are coherent.
func (a BEApp) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("workload: BE app with empty name")
	}
	if a.Threads <= 0 {
		return fmt.Errorf("workload: %s: threads must be positive", a.Name)
	}
	if a.SoloIPC <= 0 {
		return fmt.Errorf("workload: %s: solo IPC must be positive", a.Name)
	}
	return nil
}
