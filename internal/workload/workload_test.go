package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMissRatioShape(t *testing.T) {
	c := CacheProfile{WorkingSetWays: 8, MinMissRatio: 0.15}
	if got := c.MissRatio(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("MissRatio(0) = %g, want 1", got)
	}
	if got := c.MissRatio(1e6); math.Abs(got-0.15) > 1e-6 {
		t.Errorf("MissRatio(inf) = %g, want floor 0.15", got)
	}
	if got := c.MissRatio(-3); got != c.MissRatio(0) {
		t.Errorf("negative ways should clamp to 0")
	}
}

func TestMissRatioProperties(t *testing.T) {
	f := func(wsRaw, floorRaw, w1Raw, w2Raw uint16) bool {
		c := CacheProfile{
			WorkingSetWays: float64(wsRaw%200)/10 + 0.1,
			MinMissRatio:   float64(floorRaw%1000) / 1000,
		}
		w1 := float64(w1Raw%400) / 10
		w2 := float64(w2Raw%400) / 10
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		m1, m2 := c.MissRatio(w1), c.MissRatio(w2)
		// Bounded in [floor, 1] and monotone non-increasing in ways.
		return m1 >= c.MinMissRatio-1e-12 && m1 <= 1+1e-12 && m2 <= m1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCalibrateHitsTargets(t *testing.T) {
	app, err := Calibrate("test", 4, 1.0, 2.77, 4.22, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	// The service distribution's p95 must equal the requested ideal p95.
	if got := app.ServiceP95(); math.Abs(got-2.77) > 1e-6 {
		t.Errorf("ServiceP95 = %g, want 2.77", got)
	}
	// The knee position pins the max load: rho = 0.85 at max load.
	rho := app.MaxLoadQPS * app.ServiceMeanMs / 1000 / float64(app.Threads)
	if math.Abs(rho-0.85) > 1e-9 {
		t.Errorf("knee rho = %g, want 0.85", rho)
	}
}

func TestCalibrateRejectsBadInputs(t *testing.T) {
	cases := []struct {
		mean, ideal, target, rho float64
	}{
		{2, 1, 4, 0.85},    // mean > ideal
		{1, 5, 4, 0.85},    // ideal > target
		{1, 2.77, 4, 0},    // bad rho
		{1, 2.77, 4, 1},    // bad rho
		{0.1, 3.9, 4, 0.8}, // tail ratio beyond log-normal reach
	}
	for _, c := range cases {
		if _, err := Calibrate("bad", 4, c.mean, c.ideal, c.target, c.rho); err == nil {
			t.Errorf("Calibrate(%v) accepted", c)
		}
	}
}

func TestCatalogLCApps(t *testing.T) {
	// Table IV anchors for the four apps whose max loads the calibration
	// reproduces directly.
	wantLoad := map[string]float64{
		"xapian":  3400,
		"moses":   1800,
		"img-dnn": 5300,
		"sphinx":  4.8,
	}
	wantTarget := map[string]float64{
		"xapian": 4.22, "moses": 10.53, "img-dnn": 3.98,
		"masstree": 1.05, "sphinx": 2682, "silo": 1.27,
	}
	for _, name := range LCNames() {
		app, err := LCByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := app.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if want, ok := wantLoad[name]; ok {
			if math.Abs(app.MaxLoadQPS-want)/want > 0.02 {
				t.Errorf("%s: MaxLoadQPS = %.0f, want ~%.0f (Table IV)", name, app.MaxLoadQPS, want)
			}
		}
		if want := wantTarget[name]; math.Abs(app.QoSTargetMs-want) > 1e-9 {
			t.Errorf("%s: QoSTargetMs = %g, want %g (Table IV)", name, app.QoSTargetMs, want)
		}
	}
}

func TestCatalogBEApps(t *testing.T) {
	for _, name := range BENames() {
		app, err := BEByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := app.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	stream := MustBE("stream")
	if stream.Threads != 10 {
		t.Errorf("stream threads = %d, want 10 (paper Section V)", stream.Threads)
	}
	if stream.Cache.MinMissRatio < 0.9 {
		t.Errorf("stream miss floor = %g, want ~1 (no reuse)", stream.Cache.MinMissRatio)
	}
}

func TestCatalogUnknownNames(t *testing.T) {
	if _, err := LCByName("nope"); err == nil {
		t.Error("unknown LC accepted")
	}
	if _, err := BEByName("nope"); err == nil {
		t.Error("unknown BE accepted")
	}
}

func TestMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLC(unknown) did not panic")
		}
	}()
	MustLC("nope")
}

func TestLCValidateCatchesEverything(t *testing.T) {
	good := MustLC("xapian")
	mutations := []func(*LCApp){
		func(a *LCApp) { a.Name = "" },
		func(a *LCApp) { a.Threads = 0 },
		func(a *LCApp) { a.ServiceMeanMs = 0 },
		func(a *LCApp) { a.ServiceSigma = -1 },
		func(a *LCApp) { a.MaxLoadQPS = 0 },
		func(a *LCApp) { a.IdealP95Ms = a.ServiceMeanMs / 2 },
		func(a *LCApp) { a.QoSTargetMs = a.IdealP95Ms },
		func(a *LCApp) { a.ClientQueueCap = 0 },
	}
	for i, mut := range mutations {
		app := good
		mut(&app)
		if err := app.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestServiceMuConsistency(t *testing.T) {
	// exp(mu + sigma^2/2) must equal the configured mean.
	for _, name := range LCNames() {
		app := MustLC(name)
		mean := math.Exp(app.ServiceMu() + app.ServiceSigma*app.ServiceSigma/2)
		if math.Abs(mean-app.ServiceMeanMs)/app.ServiceMeanMs > 1e-9 {
			t.Errorf("%s: log-normal mean %g != configured %g", name, mean, app.ServiceMeanMs)
		}
	}
}

func TestClassString(t *testing.T) {
	if LC.String() != "LC" || BE.String() != "BE" {
		t.Error("Class strings wrong")
	}
}
