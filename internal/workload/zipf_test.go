package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTermMixValidation(t *testing.T) {
	if _, err := NewTermMix(1, 1.2, 2); err == nil {
		t.Error("1 term accepted")
	}
	if _, err := NewTermMix(100, 1.0, 2); err == nil {
		t.Error("skew 1.0 accepted")
	}
	if _, err := NewTermMix(100, 1.2, 0.5); err == nil {
		t.Error("cold factor < 1 accepted")
	}
}

func TestTermMixMeanIsOne(t *testing.T) {
	f := func(nRaw, skewRaw, coldRaw uint16) bool {
		n := int(nRaw)%5000 + 2
		skew := 1.01 + float64(skewRaw%200)/100
		cold := 1 + float64(coldRaw%500)/100
		m, err := NewTermMix(n, skew, cold)
		if err != nil {
			return false
		}
		return math.Abs(m.MeanFactor()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTermMixFactorsMonotone(t *testing.T) {
	m, err := NewTermMix(1000, 1.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for r := 0; r < 1000; r++ {
		f := m.Factor(r)
		if f < prev {
			t.Fatalf("factor not monotone at rank %d: %g < %g", r, f, prev)
		}
		prev = f
	}
	// Rank clamping.
	if m.Factor(-5) != m.Factor(0) || m.Factor(9999) != m.Factor(999) {
		t.Error("rank clamping broken")
	}
	// Cold/hot ratio matches the configured factor.
	if ratio := m.Factor(999) / m.Factor(0); math.Abs(ratio-3) > 1e-9 {
		t.Errorf("cold/hot ratio = %g, want 3", ratio)
	}
}

func TestTermMixSampleStatistics(t *testing.T) {
	m, err := NewTermMix(10_000, 1.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sum := 0.0
	const n = 200_000
	hot := 0
	for i := 0; i < n; i++ {
		f := m.Sample(rng)
		sum += f
		if f == m.Factor(0) {
			hot++
		}
	}
	if mean := sum / n; math.Abs(mean-1) > 0.01 {
		t.Errorf("empirical mean factor = %g, want ~1", mean)
	}
	// The most popular term must dominate: with skew 1.2 its probability
	// is far above uniform (1e-4).
	if frac := float64(hot) / n; frac < 0.05 {
		t.Errorf("hottest term drawn %.4f of the time; Zipf skew missing", frac)
	}
}

func TestFitSigmaPreservesIdealP95(t *testing.T) {
	app := MustLC("xapian")
	if app.Terms == nil {
		t.Fatal("xapian should carry a term mix")
	}
	// Monte-Carlo the combined service distribution and check its p95
	// sits on the calibrated TL_i0 while the mean stays on target.
	rng := rand.New(rand.NewSource(7))
	const n = 100_000
	xs := make([]float64, n)
	sum := 0.0
	for i := range xs {
		xs[i] = math.Exp(app.ServiceMu()+app.ServiceSigma*rng.NormFloat64()) * app.Terms.Sample(rng)
		sum += xs[i]
	}
	if mean := sum / n; math.Abs(mean-app.ServiceMeanMs)/app.ServiceMeanMs > 0.02 {
		t.Errorf("service mean = %g, want %g", mean, app.ServiceMeanMs)
	}
	sort.Float64s(xs)
	p95 := xs[int(0.95*float64(len(xs)))]
	if math.Abs(p95-app.IdealP95Ms)/app.IdealP95Ms > 0.05 {
		t.Errorf("combined service p95 = %g, want ~%g", p95, app.IdealP95Ms)
	}
}
