// Canonical cache-key serialisation of the workload models. The fleet
// engine's node-outcome cache (internal/cluster) keys a completed node
// simulation on a bit-exact encoding of every input the simulation reads;
// the application models are the largest such input, and only this package
// can see all of their state. Floats are encoded by their IEEE-754 bit
// patterns — two models key equal exactly when a simulation would compute
// on identical values — and strings are length-prefixed so adjacent fields
// cannot alias across an encoding boundary.
package workload

import (
	"math"
	"strconv"
)

// appendKeyBits encodes one float by its bit pattern.
func appendKeyBits(b []byte, v float64) []byte {
	b = strconv.AppendUint(b, math.Float64bits(v), 16)
	return append(b, ',')
}

// appendKeyInt encodes one integer.
func appendKeyInt(b []byte, v int) []byte {
	b = strconv.AppendInt(b, int64(v), 10)
	return append(b, ',')
}

// appendKeyString encodes a string with a length prefix.
func appendKeyString(b []byte, s string) []byte {
	b = strconv.AppendInt(b, int64(len(s)), 10)
	b = append(b, ':')
	b = append(b, s...)
	return append(b, ',')
}

// AppendKey appends the curve's canonical encoding to b.
func (c CacheProfile) AppendKey(b []byte) []byte {
	b = appendKeyBits(b, c.WorkingSetWays)
	return appendKeyBits(b, c.MinMissRatio)
}

// AppendKey appends the sensitivity's canonical encoding to b.
func (s Sensitivity) AppendKey(b []byte) []byte {
	b = appendKeyBits(b, s.CacheSens)
	b = appendKeyBits(b, s.MemSens)
	return appendKeyBits(b, s.MemGBpsPerThread)
}

// AppendKey appends the term mix's canonical encoding to b. The derived
// sampling tables (factors, cdf, guide) are pure functions of the three
// public parameters when the mix was built by NewTermMix, so encoding the
// parameters covers them; the table length is included as a tag so a mix
// built by NewTermMix never keys equal to a hand-rolled literal whose
// tables were left empty.
func (m *TermMix) AppendKey(b []byte) []byte {
	if m == nil {
		return append(b, 'n', ',')
	}
	b = append(b, 't')
	b = appendKeyInt(b, m.Terms)
	b = appendKeyBits(b, m.Skew)
	b = appendKeyBits(b, m.ColdFactor)
	return appendKeyInt(b, len(m.factors))
}

// AppendKey appends the LC model's canonical encoding to b: every field
// the simulator reads, including the name (it is replicated into samples
// and region memberships, so renamed clones are distinct templates).
func (a *LCApp) AppendKey(b []byte) []byte {
	b = appendKeyString(b, a.Name)
	b = appendKeyInt(b, a.Threads)
	b = appendKeyBits(b, a.ServiceMeanMs)
	b = appendKeyBits(b, a.ServiceSigma)
	b = appendKeyBits(b, a.MaxLoadQPS)
	b = appendKeyBits(b, a.QoSTargetMs)
	b = appendKeyBits(b, a.IdealP95Ms)
	b = appendKeyInt(b, a.ClientQueueCap)
	b = a.Terms.AppendKey(b)
	b = a.Cache.AppendKey(b)
	return a.Sens.AppendKey(b)
}

// AppendKey appends the BE model's canonical encoding to b.
func (a *BEApp) AppendKey(b []byte) []byte {
	b = appendKeyString(b, a.Name)
	b = appendKeyInt(b, a.Threads)
	b = appendKeyBits(b, a.SoloIPC)
	b = a.Cache.AppendKey(b)
	return a.Sens.AppendKey(b)
}
