package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// TermMix models the request-content skew of the paper's load generators:
// Xapian queries are drawn from a Zipfian distribution over index terms,
// and Moses translates randomly chosen corpus snippets. Popular terms hit
// warm index structures and finish faster; rare terms walk cold postings
// and take longer. The mix multiplies each request's sampled service demand
// by a rank-dependent factor whose mean is exactly 1, so the calibrated
// mean service time (and therefore max load) is preserved while the tail
// gains content-dependent weight.
type TermMix struct {
	// Terms is the vocabulary size.
	Terms int
	// Skew is the Zipf exponent s (> 1); the paper's generators use a
	// Zipfian query mix, conventionally s in (1, 2].
	Skew float64
	// ColdFactor is the service multiplier of the rarest term relative
	// to the most popular one (>= 1).
	ColdFactor float64

	factors []float64 // per-rank multiplier, normalised to mean 1
	cdf     []float64 // cumulative rank probabilities
	// guide[j] is the smallest rank whose cdf reaches j/guideBuckets; a
	// draw u then needs only a binary search of [guide[j], guide[j+1]]
	// with j = floor(u*guideBuckets). The comparisons are the same ones
	// the unguided search would make, so the sampled rank is identical —
	// the guide only shrinks the range they run over.
	guide []int32
}

// guideBuckets sizes the Sample guide table. A power of two keeps
// u*guideBuckets exact (the multiplication only shifts the exponent), so
// bucket membership is exact float arithmetic, not an approximation.
const guideBuckets = 256

// NewTermMix builds and normalises a term mix.
func NewTermMix(terms int, skew, coldFactor float64) (*TermMix, error) {
	if terms < 2 {
		return nil, fmt.Errorf("workload: term mix needs at least 2 terms, got %d", terms)
	}
	if skew <= 1 {
		return nil, fmt.Errorf("workload: zipf skew %.3g must exceed 1", skew)
	}
	if coldFactor < 1 {
		return nil, fmt.Errorf("workload: cold factor %.3g must be >= 1", coldFactor)
	}
	m := &TermMix{Terms: terms, Skew: skew, ColdFactor: coldFactor}

	// Rank probabilities p(r) ~ 1/r^s and raw factors rising
	// logarithmically from 1 (hot) to ColdFactor (cold).
	probs := make([]float64, terms)
	raw := make([]float64, terms)
	var z float64
	for r := 0; r < terms; r++ {
		probs[r] = 1 / math.Pow(float64(r+1), skew)
		z += probs[r]
		raw[r] = 1 + (coldFactor-1)*math.Log(float64(r+1))/math.Log(float64(terms))
	}
	mean := 0.0
	for r := 0; r < terms; r++ {
		probs[r] /= z
		mean += probs[r] * raw[r]
	}
	m.factors = make([]float64, terms)
	m.cdf = make([]float64, terms)
	cum := 0.0
	for r := 0; r < terms; r++ {
		m.factors[r] = raw[r] / mean
		cum += probs[r]
		m.cdf[r] = cum
	}
	m.cdf[terms-1] = 1 // guard against rounding

	// Build the sampling guide: for each bucket boundary j/guideBuckets,
	// the first rank whose cumulative probability reaches it.
	m.guide = make([]int32, guideBuckets+1)
	r := int32(0)
	for j := 0; j <= guideBuckets; j++ {
		bound := float64(j) / guideBuckets
		for int(r) < terms-1 && m.cdf[r] < bound {
			r++
		}
		m.guide[j] = r
	}
	return m, nil
}

// Sample draws a term rank and returns its service-demand multiplier. The
// rank is the smallest one whose cumulative probability reaches the draw;
// the guide table narrows the binary search to a handful of ranks, and a
// Zipfian's head-heavy buckets usually pin it outright.
func (m *TermMix) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	j := int(u * guideBuckets) // exact: u in [0,1), power-of-two scale
	lo, hi := int(m.guide[j]), int(m.guide[j+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if m.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return m.factors[lo]
}

// MeanFactor returns the probability-weighted mean multiplier; 1 by
// construction (exposed for tests).
func (m *TermMix) MeanFactor() float64 {
	mean := 0.0
	prev := 0.0
	for r, c := range m.cdf {
		mean += (c - prev) * m.factors[r]
		prev = c
	}
	return mean
}

// Factor returns the multiplier of a given rank (0 = most popular).
func (m *TermMix) Factor(rank int) float64 {
	if rank < 0 {
		rank = 0
	}
	if rank >= len(m.factors) {
		rank = len(m.factors) - 1
	}
	return m.factors[rank]
}
