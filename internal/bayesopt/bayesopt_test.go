package bayesopt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGPInterpolatesObservations(t *testing.T) {
	gp, err := NewGP(1, 0.3, 1.0, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	ys := []float64{0, 0.5, 1.0, 0.5, 0}
	if err := gp.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mean, sd, err := gp.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-ys[i]) > 0.02 {
			t.Errorf("Predict(%v) mean = %.3f, want ~%.3f", x, mean, ys[i])
		}
		if sd > 0.05 {
			t.Errorf("Predict(%v) sd = %.3f, want near 0 at observation", x, sd)
		}
	}
	// Uncertainty grows away from the data.
	_, sdAt, _ := gp.Predict([]float64{0.5})
	_, sdFar, _ := gp.Predict([]float64{3})
	if sdFar <= sdAt {
		t.Errorf("sd far (%.3f) <= sd at data (%.3f)", sdFar, sdAt)
	}
}

func TestGPValidation(t *testing.T) {
	if _, err := NewGP(0, 0.3, 1, 1e-4); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := NewGP(1, 0, 1, 1e-4); err == nil {
		t.Error("zero length scale accepted")
	}
	gp, _ := NewGP(2, 0.3, 1, 1e-4)
	if err := gp.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("wrong-dimension point accepted")
	}
	if err := gp.Fit([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := gp.Predict([]float64{1}); err == nil {
		t.Error("wrong-dimension query accepted")
	}
}

func TestGPEmptyPredictsPrior(t *testing.T) {
	gp, _ := NewGP(1, 0.3, 2.0, 1e-4)
	mean, sd, err := gp.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if mean != 0 || math.Abs(sd-math.Sqrt(2)) > 1e-9 {
		t.Errorf("prior = (%g, %g), want (0, sqrt(2))", mean, sd)
	}
}

func TestCholeskySolvesSPD(t *testing.T) {
	// A = L L^T for a known SPD matrix; forward+backward solve must
	// invert it.
	n := 3
	a := []float64{4, 2, 0, 2, 5, 1, 0, 1, 3}
	l, err := cholesky(a, n)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3}
	y := forwardSolve(l, b, n)
	x := backwardSolve(l, y, n)
	// Check A x = b.
	for i := 0; i < n; i++ {
		got := 0.0
		for j := 0; j < n; j++ {
			got += a[i*n+j] * x[j]
		}
		if math.Abs(got-b[i]) > 1e-9 {
			t.Errorf("Ax[%d] = %g, want %g", i, got, b[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := []float64{1, 2, 2, 1} // eigenvalues 3, -1
	if _, err := cholesky(a, 2); err == nil {
		t.Error("indefinite matrix accepted")
	}
}

func TestExpectedImprovementProperties(t *testing.T) {
	// EI is non-negative, increasing in mean, increasing in sd when
	// mean <= best.
	f := func(meanRaw, sdRaw, bestRaw int16) bool {
		mean := float64(meanRaw) / 1000
		sd := math.Abs(float64(sdRaw)) / 1000
		best := float64(bestRaw) / 1000
		ei := ExpectedImprovement(mean, sd, best, 0)
		if ei < 0 {
			return false
		}
		if ExpectedImprovement(mean+0.1, sd, best, 0) < ei-1e-12 {
			return false
		}
		if mean <= best && sd > 0 {
			return ExpectedImprovement(mean, sd+0.1, best, 0) >= ei-1e-12
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestExpectedImprovementZeroSD(t *testing.T) {
	if got := ExpectedImprovement(2, 0, 1, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("EI(2,0,1) = %g, want 1", got)
	}
	if got := ExpectedImprovement(0.5, 0, 1, 0); got != 0 {
		t.Errorf("EI(0.5,0,1) = %g, want 0", got)
	}
}

func TestOptimizerFindsMaximumOf1DFunction(t *testing.T) {
	// Maximise f(x) = -(x-0.7)^2 over [0,1] by sequential EI.
	opt, err := NewOptimizer(1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x float64) float64 { return -(x - 0.7) * (x - 0.7) }
	rng := rand.New(rand.NewSource(1))
	// Seed with a few random points.
	for i := 0; i < 4; i++ {
		x := rng.Float64()
		if err := opt.Observe([]float64{x}, f(x)); err != nil {
			t.Fatal(err)
		}
	}
	for iter := 0; iter < 20; iter++ {
		cands := make([][]float64, 50)
		for i := range cands {
			cands[i] = []float64{rng.Float64()}
		}
		idx, _, err := opt.Suggest(cands)
		if err != nil {
			t.Fatal(err)
		}
		x := cands[idx][0]
		if err := opt.Observe([]float64{x}, f(x)); err != nil {
			t.Fatal(err)
		}
	}
	best, val, err := opt.Best()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best[0]-0.7) > 0.1 {
		t.Errorf("best x = %.3f (f=%.4f), want ~0.7", best[0], val)
	}
}

func TestOptimizerEdgeCases(t *testing.T) {
	opt, _ := NewOptimizer(1)
	if _, _, err := opt.Best(); err == nil {
		t.Error("Best on empty optimizer should error")
	}
	if _, _, err := opt.Suggest(nil); err == nil {
		t.Error("Suggest with no candidates should error")
	}
	if err := opt.Observe([]float64{0.5}, 1); err != nil {
		t.Fatal(err)
	}
	opt.Reset()
	if opt.Len() != 0 {
		t.Error("Reset did not clear observations")
	}
}
