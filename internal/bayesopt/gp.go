// Package bayesopt is the Bayesian-optimisation substrate underlying the
// CLITE reproduction: Gaussian-process regression with an RBF kernel
// (Cholesky-factorised, stdlib only) and the expected-improvement
// acquisition function. CLITE samples resource partitionings, fits a GP to
// the observed objective, and evaluates the candidate with the highest
// expected improvement next.
package bayesopt

import (
	"errors"
	"fmt"
	"math"
)

// GP is a Gaussian-process regressor over points in [0,1]^dim.
type GP struct {
	dim         int
	lengthScale float64
	signalVar   float64
	noiseVar    float64

	xs    [][]float64
	ys    []float64
	yMean float64
	chol  []float64 // lower-triangular factor of K, row-major n*n
	alpha []float64 // K^{-1} (y - mean)

	// ks and v are Predict's scratch vectors, reused across calls: the
	// acquisition loop predicts at hundreds of candidates per decision and
	// neither vector outlives the call.
	ks, v []float64
}

// NewGP returns a GP with an RBF kernel
// k(a,b) = signalVar * exp(-|a-b|^2 / (2 lengthScale^2)) and observation
// noise noiseVar.
func NewGP(dim int, lengthScale, signalVar, noiseVar float64) (*GP, error) {
	if dim <= 0 {
		return nil, errors.New("bayesopt: dimension must be positive")
	}
	if lengthScale <= 0 || signalVar <= 0 || noiseVar <= 0 {
		return nil, errors.New("bayesopt: kernel hyperparameters must be positive")
	}
	return &GP{dim: dim, lengthScale: lengthScale, signalVar: signalVar, noiseVar: noiseVar}, nil
}

// Len returns the number of observations fitted.
func (g *GP) Len() int { return len(g.ys) }

// kernel evaluates the RBF kernel.
func (g *GP) kernel(a, b []float64) float64 {
	d2 := 0.0
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return g.signalVar * math.Exp(-d2/(2*g.lengthScale*g.lengthScale))
}

// Fit replaces the GP's observations and refactorises. Points must have the
// GP's dimension.
func (g *GP) Fit(xs [][]float64, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("bayesopt: %d points but %d observations", len(xs), len(ys))
	}
	if len(xs) == 0 {
		g.xs, g.ys, g.chol, g.alpha = nil, nil, nil, nil
		return nil
	}
	for i, x := range xs {
		if len(x) != g.dim {
			return fmt.Errorf("bayesopt: point %d has dimension %d, want %d", i, len(x), g.dim)
		}
	}
	n := len(xs)
	g.xs = xs
	g.ys = ys
	g.yMean = 0
	for _, y := range ys {
		g.yMean += y
	}
	g.yMean /= float64(n)

	k := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.kernel(xs[i], xs[j])
			if i == j {
				v += g.noiseVar
			}
			k[i*n+j] = v
			k[j*n+i] = v
		}
	}
	chol, err := cholesky(k, n)
	if err != nil {
		return err
	}
	g.chol = chol

	centered := make([]float64, n)
	for i, y := range ys {
		centered[i] = y - g.yMean
	}
	// alpha = K^{-1} centered via two triangular solves.
	tmp := forwardSolve(chol, centered, n)
	g.alpha = backwardSolve(chol, tmp, n)
	return nil
}

// Predict returns the posterior mean and standard deviation at x.
func (g *GP) Predict(x []float64) (mean, sd float64, err error) {
	if len(x) != g.dim {
		return 0, 0, fmt.Errorf("bayesopt: query has dimension %d, want %d", len(x), g.dim)
	}
	n := len(g.ys)
	if n == 0 {
		return 0, math.Sqrt(g.signalVar), nil
	}
	if cap(g.ks) < n {
		g.ks = make([]float64, n)
		g.v = make([]float64, n)
	}
	ks := g.ks[:n]
	for i, xi := range g.xs {
		ks[i] = g.kernel(x, xi)
	}
	mean = g.yMean
	for i := range ks {
		mean += ks[i] * g.alpha[i]
	}
	v := forwardSolveInto(g.v[:n], g.chol, ks, n)
	variance := g.kernel(x, x)
	for i := range v {
		variance -= v[i] * v[i]
	}
	if variance < 1e-12 {
		variance = 1e-12
	}
	return mean, math.Sqrt(variance), nil
}

// cholesky factorises a symmetric positive-definite matrix (row-major n*n),
// returning the lower-triangular factor. A tiny jitter is added on the
// diagonal if the matrix is borderline.
func cholesky(a []float64, n int) ([]float64, error) {
	l := make([]float64, n*n)
	jitter := 0.0
	for attempt := 0; attempt < 4; attempt++ {
		ok := true
		for i := 0; i < n && ok; i++ {
			for j := 0; j <= i; j++ {
				sum := a[i*n+j]
				if i == j {
					sum += jitter
				}
				for k := 0; k < j; k++ {
					sum -= l[i*n+k] * l[j*n+k]
				}
				if i == j {
					if sum <= 0 {
						ok = false
						break
					}
					l[i*n+i] = math.Sqrt(sum)
				} else {
					l[i*n+j] = sum / l[j*n+j]
				}
			}
		}
		if ok {
			return l, nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
		for i := range l {
			l[i] = 0
		}
	}
	return nil, errors.New("bayesopt: kernel matrix not positive definite")
}

// forwardSolve solves L x = b for lower-triangular L.
func forwardSolve(l, b []float64, n int) []float64 {
	return forwardSolveInto(make([]float64, n), l, b, n)
}

// forwardSolveInto is forwardSolve writing into a caller-provided vector.
func forwardSolveInto(x, l, b []float64, n int) []float64 {
	for i := 0; i < n; i++ {
		sum := b[i]
		for j := 0; j < i; j++ {
			sum -= l[i*n+j] * x[j]
		}
		x[i] = sum / l[i*n+i]
	}
	return x
}

// backwardSolve solves L^T x = b for lower-triangular L.
func backwardSolve(l, b []float64, n int) []float64 {
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= l[j*n+i] * x[j]
		}
		x[i] = sum / l[i*n+i]
	}
	return x
}
