package bayesopt

import (
	"errors"
	"math"
)

// ExpectedImprovement returns EI(x) for a maximisation problem: the expected
// amount by which a draw from N(mean, sd^2) exceeds best (plus an optional
// exploration margin xi).
func ExpectedImprovement(mean, sd, best, xi float64) float64 {
	if sd <= 0 {
		if d := mean - best - xi; d > 0 {
			return d
		}
		return 0
	}
	z := (mean - best - xi) / sd
	ei := (mean-best-xi)*normCDF(z) + sd*normPDF(z)
	if ei < 0 {
		// Floating-point cancellation deep in the tail can leave a tiny
		// negative residue; EI is non-negative by definition.
		return 0
	}
	return ei
}

// normCDF is the standard normal CDF.
func normCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// normPDF is the standard normal density.
func normPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// Optimizer runs sequential model-based optimisation over a fixed-dimension
// space in [0,1]^dim: observe points, fit the GP, and rank candidates by
// expected improvement.
type Optimizer struct {
	gp *GP
	xs [][]float64
	ys []float64
	// Xi is the EI exploration margin.
	Xi float64
}

// NewOptimizer returns an optimiser with reasonable GP hyperparameters for
// unit-cube inputs.
func NewOptimizer(dim int) (*Optimizer, error) {
	gp, err := NewGP(dim, 0.3, 1.0, 1e-4)
	if err != nil {
		return nil, err
	}
	return &Optimizer{gp: gp, Xi: 0.01}, nil
}

// Observe records one evaluated point and refits the model.
func (o *Optimizer) Observe(x []float64, y float64) error {
	o.xs = append(o.xs, append([]float64(nil), x...))
	o.ys = append(o.ys, y)
	return o.gp.Fit(o.xs, o.ys)
}

// Len returns the number of observations.
func (o *Optimizer) Len() int { return len(o.ys) }

// Best returns the best observed point and value.
func (o *Optimizer) Best() ([]float64, float64, error) {
	if len(o.ys) == 0 {
		return nil, 0, errors.New("bayesopt: no observations")
	}
	bi := 0
	for i, y := range o.ys {
		if y > o.ys[bi] {
			bi = i
		}
	}
	return o.xs[bi], o.ys[bi], nil
}

// Suggest ranks the candidates by expected improvement and returns the
// index of the best one alongside its EI value.
func (o *Optimizer) Suggest(candidates [][]float64) (int, float64, error) {
	if len(candidates) == 0 {
		return -1, 0, errors.New("bayesopt: no candidates")
	}
	_, best, err := o.Best()
	if err != nil {
		return 0, math.Inf(1), nil // nothing observed: any candidate is fine
	}
	bestIdx, bestEI := -1, math.Inf(-1)
	for i, c := range candidates {
		mean, sd, err := o.gp.Predict(c)
		if err != nil {
			return -1, 0, err
		}
		ei := ExpectedImprovement(mean, sd, best, o.Xi)
		if ei > bestEI {
			bestIdx, bestEI = i, ei
		}
	}
	return bestIdx, bestEI, nil
}

// Reset forgets all observations (used when the workload shifts and the
// model is stale).
func (o *Optimizer) Reset() {
	o.xs, o.ys = nil, nil
	_ = o.gp.Fit(nil, nil)
}
