package machine

import (
	"fmt"
	"sort"
	"strings"
)

// RegionKind distinguishes the two region flavours of the ARQ model.
type RegionKind int

const (
	// Isolated regions hold resources dedicated to exactly one application.
	Isolated RegionKind = iota
	// Shared regions hold resources usable by every member application.
	Shared
)

// String returns "isolated" or "shared".
func (k RegionKind) String() string {
	if k == Shared {
		return "shared"
	}
	return "isolated"
}

// SharePolicy selects how core time is divided inside a shared region.
type SharePolicy int

const (
	// FairShare models Linux CFS: every runnable thread gets an equal
	// share of the region's cores regardless of application class.
	FairShare SharePolicy = iota
	// LCPriority models real-time priority (and the ARQ shared region):
	// latency-critical threads are served first; best-effort threads
	// consume only the leftover capacity.
	LCPriority
)

// String returns a human-readable policy name.
func (p SharePolicy) String() string {
	if p == LCPriority {
		return "lc-priority"
	}
	return "fair-share"
}

// Region is a set of resources plus the applications entitled to use them.
// An isolated region has exactly one member; a shared region may have many.
type Region struct {
	// Name identifies the region in snapshots and logs, e.g. "iso:xapian"
	// or "shared".
	Name string
	// Kind is Isolated or Shared.
	Kind RegionKind
	// Policy governs core sharing for Shared regions; ignored for
	// Isolated ones.
	Policy SharePolicy
	// Cores, Ways and BWUnits are the resources held by the region.
	Cores   int
	Ways    int
	BWUnits int
	// Apps lists the names of member applications.
	Apps []string
}

// Amount returns the region's holding of resource r.
func (g Region) Amount(r Resource) int {
	switch r {
	case Cores:
		return g.Cores
	case LLCWays:
		return g.Ways
	case MemBW:
		return g.BWUnits
	default:
		return 0
	}
}

// SetAmount sets the region's holding of resource r.
func (g *Region) SetAmount(r Resource, v int) {
	switch r {
	case Cores:
		g.Cores = v
	case LLCWays:
		g.Ways = v
	case MemBW:
		g.BWUnits = v
	}
}

// Has reports whether app is a member of the region.
func (g Region) Has(app string) bool {
	for _, a := range g.Apps {
		if a == app {
			return true
		}
	}
	return false
}

// Empty reports whether the region holds no resources at all.
func (g Region) Empty() bool {
	return g.Cores == 0 && g.Ways == 0 && g.BWUnits == 0
}

// Allocation is a complete partitioning of a node into regions. It is the
// value a scheduling strategy hands to the resource-control host every epoch.
type Allocation struct {
	Regions []Region
}

// Clone returns a deep copy, so strategies can mutate tentative allocations
// without aliasing the applied one.
func (a Allocation) Clone() Allocation {
	out := Allocation{Regions: make([]Region, len(a.Regions))}
	for i, g := range a.Regions {
		out.Regions[i] = g
		out.Regions[i].Apps = append([]string(nil), g.Apps...)
	}
	return out
}

// Region returns a pointer to the named region, or nil.
func (a *Allocation) Region(name string) *Region {
	for i := range a.Regions {
		if a.Regions[i].Name == name {
			return &a.Regions[i]
		}
	}
	return nil
}

// SharedRegion returns a pointer to the first shared region, or nil.
func (a *Allocation) SharedRegion() *Region {
	for i := range a.Regions {
		if a.Regions[i].Kind == Shared {
			return &a.Regions[i]
		}
	}
	return nil
}

// IsolatedRegionOf returns a pointer to the isolated region of app, or nil.
func (a *Allocation) IsolatedRegionOf(app string) *Region {
	for i := range a.Regions {
		if a.Regions[i].Kind == Isolated && a.Regions[i].Has(app) {
			return &a.Regions[i]
		}
	}
	return nil
}

// RegionsOf returns the indices of all regions app belongs to.
func (a Allocation) RegionsOf(app string) []int {
	var idx []int
	for i, g := range a.Regions {
		if g.Has(app) {
			idx = append(idx, i)
		}
	}
	return idx
}

// Used returns the total amount of resource r assigned across all regions.
func (a Allocation) Used(r Resource) int {
	total := 0
	for _, g := range a.Regions {
		total += g.Amount(r)
	}
	return total
}

// Validate checks the allocation against the node spec and the application
// set: no resource dimension may be overcommitted, isolated regions must
// have exactly one member, and every application must belong to at least one
// region that holds cores (otherwise it could never run).
func (a Allocation) Validate(spec Spec, apps []string) error {
	for r := Cores; r < Resource(NumResources); r++ {
		if used := a.Used(r); used > spec.Capacity(r) {
			return fmt.Errorf("%w: %d %s assigned, node has %d",
				ErrOverCommit, used, r, spec.Capacity(r))
		}
	}
	for _, g := range a.Regions {
		if g.Kind == Isolated && len(g.Apps) != 1 {
			return fmt.Errorf("machine: isolated region %q has %d members, want 1",
				g.Name, len(g.Apps))
		}
		for _, m := range g.Apps {
			if !contains(apps, m) {
				return fmt.Errorf("machine: region %q references unknown app %q", g.Name, m)
			}
		}
	}
	for _, app := range apps {
		hasCores := false
		for _, g := range a.Regions {
			if g.Has(app) && g.Cores > 0 {
				hasCores = true
				break
			}
		}
		if !hasCores {
			return fmt.Errorf("machine: app %q has no region with cores", app)
		}
	}
	return nil
}

// String renders the allocation as a compact single-line summary, e.g.
// "iso:xapian{c2 w5} shared{c8 w15 bw10: moses,img-dnn,stream}".
func (a Allocation) String() string {
	parts := make([]string, 0, len(a.Regions))
	for _, g := range a.Regions {
		members := ""
		if g.Kind == Shared {
			members = ": " + strings.Join(g.Apps, ",")
		}
		parts = append(parts, fmt.Sprintf("%s{c%d w%d bw%d%s}", g.Name, g.Cores, g.Ways, g.BWUnits, members))
	}
	return strings.Join(parts, " ")
}

// Equal reports whether two allocations assign identical resources and
// memberships (region order matters; strategies keep stable ordering).
func (a Allocation) Equal(b Allocation) bool {
	if len(a.Regions) != len(b.Regions) {
		return false
	}
	for i := range a.Regions {
		x, y := a.Regions[i], b.Regions[i]
		if x.Name != y.Name || x.Kind != y.Kind || x.Policy != y.Policy ||
			x.Cores != y.Cores || x.Ways != y.Ways || x.BWUnits != y.BWUnits ||
			len(x.Apps) != len(y.Apps) {
			return false
		}
		for j := range x.Apps {
			if x.Apps[j] != y.Apps[j] {
				return false
			}
		}
	}
	return true
}

// AllShared builds the Unmanaged-style allocation: one shared region holding
// the entire node, with the given policy and all applications as members.
func AllShared(spec Spec, policy SharePolicy, apps []string) Allocation {
	members := append([]string(nil), apps...)
	sort.Strings(members)
	return Allocation{Regions: []Region{{
		Name:    "shared",
		Kind:    Shared,
		Policy:  policy,
		Cores:   spec.Cores,
		Ways:    spec.LLCWays,
		BWUnits: spec.MemBWUnits,
		Apps:    members,
	}}}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
