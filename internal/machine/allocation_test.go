package machine

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

var testApps = []string{"xapian", "moses", "stream"}

func validAlloc() Allocation {
	return Allocation{Regions: []Region{
		{Name: "iso:xapian", Kind: Isolated, Cores: 2, Ways: 5, BWUnits: 2, Apps: []string{"xapian"}},
		{Name: "shared", Kind: Shared, Policy: LCPriority, Cores: 8, Ways: 15, BWUnits: 8,
			Apps: []string{"moses", "stream", "xapian"}},
	}}
}

func TestAllocationValidateOK(t *testing.T) {
	if err := validAlloc().Validate(DefaultSpec(), testApps); err != nil {
		t.Fatalf("valid allocation rejected: %v", err)
	}
}

func TestAllocationOvercommit(t *testing.T) {
	for _, r := range []Resource{Cores, LLCWays, MemBW} {
		a := validAlloc()
		g := a.Region("shared")
		g.SetAmount(r, g.Amount(r)+1)
		err := a.Validate(DefaultSpec(), testApps)
		if !errors.Is(err, ErrOverCommit) {
			t.Errorf("overcommit of %s: err = %v, want ErrOverCommit", r, err)
		}
	}
}

func TestAllocationIsolatedMembership(t *testing.T) {
	a := validAlloc()
	a.Regions[0].Apps = []string{"xapian", "moses"}
	if err := a.Validate(DefaultSpec(), testApps); err == nil {
		t.Error("isolated region with two members accepted")
	}
	a = validAlloc()
	a.Regions[0].Apps = nil
	if err := a.Validate(DefaultSpec(), testApps); err == nil {
		t.Error("isolated region with no member accepted")
	}
}

func TestAllocationUnknownApp(t *testing.T) {
	a := validAlloc()
	a.Regions[1].Apps = append(a.Regions[1].Apps, "ghost")
	if err := a.Validate(DefaultSpec(), testApps); err == nil {
		t.Error("unknown member accepted")
	}
}

func TestAllocationAppNeedsCores(t *testing.T) {
	// moses/stream live only in the shared region; draining its cores
	// strands them.
	a := validAlloc()
	a.Region("shared").Cores = 0
	if err := a.Validate(DefaultSpec(), testApps); err == nil {
		t.Error("allocation stranding moses accepted")
	}
}

func TestAllocationCloneIsDeep(t *testing.T) {
	a := validAlloc()
	b := a.Clone()
	b.Regions[0].Cores = 9
	b.Regions[1].Apps[0] = "other"
	if a.Regions[0].Cores != 2 {
		t.Error("Clone shares region storage")
	}
	if a.Regions[1].Apps[0] != "moses" {
		t.Error("Clone shares member slices")
	}
}

func TestAllocationEqual(t *testing.T) {
	a, b := validAlloc(), validAlloc()
	if !a.Equal(b) {
		t.Error("identical allocations not Equal")
	}
	b.Regions[0].Ways++
	if a.Equal(b) {
		t.Error("differing allocations Equal")
	}
	c := validAlloc()
	c.Regions[1].Apps[1] = "other"
	if a.Equal(c) {
		t.Error("differing memberships Equal")
	}
}

func TestAllocationLookups(t *testing.T) {
	a := validAlloc()
	if g := a.IsolatedRegionOf("xapian"); g == nil || g.Name != "iso:xapian" {
		t.Errorf("IsolatedRegionOf(xapian) = %v", g)
	}
	if g := a.IsolatedRegionOf("moses"); g != nil {
		t.Errorf("IsolatedRegionOf(moses) = %v, want nil", g)
	}
	if g := a.SharedRegion(); g == nil || g.Name != "shared" {
		t.Errorf("SharedRegion() = %v", g)
	}
	if got := a.RegionsOf("xapian"); len(got) != 2 {
		t.Errorf("RegionsOf(xapian) = %v, want both regions", got)
	}
	if g := a.Region("nope"); g != nil {
		t.Errorf("Region(nope) = %v", g)
	}
}

func TestAllocationString(t *testing.T) {
	s := validAlloc().String()
	for _, want := range []string{"iso:xapian{c2 w5 bw2}", "shared{c8 w15 bw8: moses,stream,xapian}"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestAllSharedCoversNode(t *testing.T) {
	a := AllShared(DefaultSpec(), FairShare, testApps)
	if err := a.Validate(DefaultSpec(), testApps); err != nil {
		t.Fatalf("AllShared invalid: %v", err)
	}
	g := a.SharedRegion()
	if g == nil || g.Cores != 10 || g.Ways != 20 || g.BWUnits != 10 {
		t.Fatalf("AllShared region = %+v", g)
	}
	for _, app := range testApps {
		if !g.Has(app) {
			t.Errorf("AllShared missing %q", app)
		}
	}
}

func TestUsedSumsRegions(t *testing.T) {
	a := validAlloc()
	if got := a.Used(Cores); got != 10 {
		t.Errorf("Used(Cores) = %d, want 10", got)
	}
	if got := a.Used(LLCWays); got != 20 {
		t.Errorf("Used(LLCWays) = %d, want 20", got)
	}
}

func TestRegionAmountRoundTrip(t *testing.T) {
	f := func(c, w, b uint8) bool {
		var g Region
		g.SetAmount(Cores, int(c))
		g.SetAmount(LLCWays, int(w))
		g.SetAmount(MemBW, int(b))
		return g.Amount(Cores) == int(c) && g.Amount(LLCWays) == int(w) && g.Amount(MemBW) == int(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindAndPolicyStrings(t *testing.T) {
	if Isolated.String() != "isolated" || Shared.String() != "shared" {
		t.Error("RegionKind strings wrong")
	}
	if FairShare.String() != "fair-share" || LCPriority.String() != "lc-priority" {
		t.Error("SharePolicy strings wrong")
	}
}
