// Package machine models the server node that a scheduling strategy manages:
// its processing units, last-level-cache ways and memory bandwidth, and the
// partitioning of those resources into isolated and shared regions.
//
// The model mirrors the experimental platform of the Ah-Q paper (Table III):
// an Intel Xeon E5-2630 v4 with 10 cores and a 20-way LLC, with Intel CAT
// used for way partitioning and taskset for core affinity. Memory bandwidth
// is modelled in MBA-style units (tenths of the node's peak bandwidth).
package machine

import (
	"errors"
	"fmt"
)

// Resource identifies one schedulable resource dimension. Feedback
// schedulers such as PARTIES and ARQ cycle through resource kinds with a
// finite state machine when picking what to move next.
type Resource int

const (
	// Cores is the processing-unit dimension (taskset granularity: 1 core).
	Cores Resource = iota
	// LLCWays is the last-level-cache dimension (CAT granularity: 1 way).
	LLCWays
	// MemBW is the memory-bandwidth dimension (MBA granularity: 1 unit,
	// one tenth of node peak bandwidth).
	MemBW
	numResources
)

// NumResources is the count of schedulable resource dimensions.
const NumResources = int(numResources)

// String returns the conventional short name of the resource.
func (r Resource) String() string {
	switch r {
	case Cores:
		return "cores"
	case LLCWays:
		return "ways"
	case MemBW:
		return "membw"
	default:
		return fmt.Sprintf("resource(%d)", int(r))
	}
}

// Spec describes the capacity of one node.
type Spec struct {
	// Cores is the number of physical processing units (hyper-threading
	// disabled, as in the paper).
	Cores int
	// LLCWays is the number of ways per LLC set available to CAT.
	LLCWays int
	// MemBWUnits is the number of allocatable memory-bandwidth units.
	MemBWUnits int
	// MemBWGBps is the peak usable memory bandwidth in GB/s; one unit is
	// MemBWGBps/MemBWUnits.
	MemBWGBps float64
}

// DefaultSpec returns the node used throughout the paper's evaluation:
// 10 cores, a 20-way LLC, and DDR4-2400 main memory. The usable bandwidth is
// set to 40 GB/s so that a 10-thread STREAM instance saturates it, matching
// the paper's "severe interference" setup.
func DefaultSpec() Spec {
	return Spec{Cores: 10, LLCWays: 20, MemBWUnits: 10, MemBWGBps: 40}
}

// Capacity returns the node's capacity in the given resource dimension.
func (s Spec) Capacity(r Resource) int {
	switch r {
	case Cores:
		return s.Cores
	case LLCWays:
		return s.LLCWays
	case MemBW:
		return s.MemBWUnits
	default:
		return 0
	}
}

// Validate reports whether the spec describes a usable node.
func (s Spec) Validate() error {
	if s.Cores <= 0 {
		return fmt.Errorf("machine: spec has %d cores, need at least 1", s.Cores)
	}
	if s.LLCWays <= 0 {
		return fmt.Errorf("machine: spec has %d LLC ways, need at least 1", s.LLCWays)
	}
	if s.MemBWUnits <= 0 {
		return fmt.Errorf("machine: spec has %d membw units, need at least 1", s.MemBWUnits)
	}
	if s.MemBWGBps <= 0 {
		return fmt.Errorf("machine: spec has %.2f GB/s membw, need > 0", s.MemBWGBps)
	}
	return nil
}

// Shrink returns a copy of the spec restricted to the given number of cores
// and ways, used by the resource-amount sweeps (Fig. 2, Fig. 3). Values are
// clamped to [1, capacity].
func (s Spec) Shrink(cores, ways int) Spec {
	out := s
	out.Cores = clamp(cores, 1, s.Cores)
	out.LLCWays = clamp(ways, 1, s.LLCWays)
	return out
}

// ErrOverCommit is returned by Allocation.Validate when a partitioning
// assigns more of a resource than the node has.
var ErrOverCommit = errors.New("machine: allocation overcommits node")

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
