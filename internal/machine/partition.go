package machine

import "sort"

// EvenPartition builds the strict-isolation starting allocation used by
// PARTIES and CLITE: every application (LC and BE alike) gets its own
// isolated region, and the node's resources are split as evenly as integer
// units allow, with earlier applications receiving the remainder units.
// The returned region order is: LC apps in the given order, then BE apps.
//
// A node can only be strictly partitioned while it has at least one unit
// of every resource per application. When it does not (tiny nodes), the
// earlier applications keep isolated partitions and the surplus
// applications share one fair region with the leftover resources — the
// same compromise pinning two tasks to one core makes on real hardware.
func EvenPartition(spec Spec, lcApps, beApps []string) Allocation {
	apps := append(append([]string(nil), lcApps...), beApps...)
	n := len(apps)
	if n == 0 {
		return Allocation{}
	}
	maxParts := n
	for r := Cores; r < Resource(NumResources); r++ {
		if c := spec.Capacity(r); c < maxParts {
			maxParts = c
		}
	}
	if maxParts >= n {
		alloc := Allocation{Regions: make([]Region, 0, n)}
		cores := splitEven(spec.Cores, n)
		ways := splitEven(spec.LLCWays, n)
		bw := splitEven(spec.MemBWUnits, n)
		for i, app := range apps {
			alloc.Regions = append(alloc.Regions, Region{
				Name:    "iso:" + app,
				Kind:    Isolated,
				Cores:   cores[i],
				Ways:    ways[i],
				BWUnits: bw[i],
				Apps:    []string{app},
			})
		}
		return alloc
	}
	// Tiny node: isolate the first maxParts-1 applications, pool the rest.
	iso := maxParts - 1
	alloc := Allocation{Regions: make([]Region, 0, iso+1)}
	for i := 0; i < iso; i++ {
		alloc.Regions = append(alloc.Regions, Region{
			Name:    "iso:" + apps[i],
			Kind:    Isolated,
			Cores:   1,
			Ways:    1,
			BWUnits: 1,
			Apps:    []string{apps[i]},
		})
	}
	members := append([]string(nil), apps[iso:]...)
	sort.Strings(members)
	alloc.Regions = append(alloc.Regions, Region{
		Name:    "shared",
		Kind:    Shared,
		Policy:  FairShare,
		Cores:   spec.Cores - iso,
		Ways:    spec.LLCWays - iso,
		BWUnits: spec.MemBWUnits - iso,
		Apps:    members,
	})
	return alloc
}

// ARQInitial builds ARQ's starting allocation: no isolated resources at all;
// the whole node is one LC-priority shared region that every application may
// use. Isolated regions exist for each LC application but start empty, so
// the strategy can grow them without restructuring the allocation.
func ARQInitial(spec Spec, lcApps, beApps []string) Allocation {
	alloc := Allocation{}
	for _, app := range lcApps {
		alloc.Regions = append(alloc.Regions, Region{
			Name: "iso:" + app,
			Kind: Isolated,
			Apps: []string{app},
		})
	}
	members := append(append([]string(nil), lcApps...), beApps...)
	sort.Strings(members)
	alloc.Regions = append(alloc.Regions, Region{
		Name:    "shared",
		Kind:    Shared,
		Policy:  LCPriority,
		Cores:   spec.Cores,
		Ways:    spec.LLCWays,
		BWUnits: spec.MemBWUnits,
		Apps:    members,
	})
	return alloc
}

// splitEven divides total into n non-negative integer parts whose sum is
// total, differing by at most one, larger parts first.
func splitEven(total, n int) []int {
	parts := make([]int, n)
	if n == 0 {
		return parts
	}
	base, rem := total/n, total%n
	for i := range parts {
		parts[i] = base
		if i < rem {
			parts[i]++
		}
	}
	return parts
}
