package machine

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultSpecMatchesPaperPlatform(t *testing.T) {
	s := DefaultSpec()
	if s.Cores != 10 {
		t.Errorf("Cores = %d, want 10 (Xeon E5-2630 v4)", s.Cores)
	}
	if s.LLCWays != 20 {
		t.Errorf("LLCWays = %d, want 20 (Table III)", s.LLCWays)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"default", DefaultSpec(), true},
		{"zero cores", Spec{Cores: 0, LLCWays: 20, MemBWUnits: 10, MemBWGBps: 40}, false},
		{"zero ways", Spec{Cores: 10, LLCWays: 0, MemBWUnits: 10, MemBWGBps: 40}, false},
		{"zero bw units", Spec{Cores: 10, LLCWays: 20, MemBWUnits: 0, MemBWGBps: 40}, false},
		{"zero bw", Spec{Cores: 10, LLCWays: 20, MemBWUnits: 10, MemBWGBps: 0}, false},
		{"minimal", Spec{Cores: 1, LLCWays: 1, MemBWUnits: 1, MemBWGBps: 1}, true},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSpecCapacity(t *testing.T) {
	s := DefaultSpec()
	if got := s.Capacity(Cores); got != 10 {
		t.Errorf("Capacity(Cores) = %d", got)
	}
	if got := s.Capacity(LLCWays); got != 20 {
		t.Errorf("Capacity(LLCWays) = %d", got)
	}
	if got := s.Capacity(MemBW); got != 10 {
		t.Errorf("Capacity(MemBW) = %d", got)
	}
	if got := s.Capacity(Resource(99)); got != 0 {
		t.Errorf("Capacity(invalid) = %d, want 0", got)
	}
}

func TestSpecShrinkClamps(t *testing.T) {
	s := DefaultSpec()
	sh := s.Shrink(6, 12)
	if sh.Cores != 6 || sh.LLCWays != 12 {
		t.Errorf("Shrink(6,12) = %+v", sh)
	}
	if sh := s.Shrink(0, 0); sh.Cores != 1 || sh.LLCWays != 1 {
		t.Errorf("Shrink clamps low: %+v", sh)
	}
	if sh := s.Shrink(99, 99); sh.Cores != 10 || sh.LLCWays != 20 {
		t.Errorf("Shrink clamps high: %+v", sh)
	}
}

func TestShrinkNeverInvalid(t *testing.T) {
	f := func(cores, ways int16) bool {
		sh := DefaultSpec().Shrink(int(cores), int(ways))
		return sh.Validate() == nil &&
			sh.Cores >= 1 && sh.Cores <= 10 &&
			sh.LLCWays >= 1 && sh.LLCWays <= 20
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceString(t *testing.T) {
	for r, want := range map[Resource]string{
		Cores: "cores", LLCWays: "ways", MemBW: "membw",
	} {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(r), got, want)
		}
	}
	if got := Resource(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown resource String() = %q", got)
	}
}
