package machine

import (
	"testing"
	"testing/quick"
)

func TestEvenPartitionExactAndValid(t *testing.T) {
	spec := DefaultSpec()
	lc := []string{"xapian", "moses", "img-dnn"}
	be := []string{"stream"}
	a := EvenPartition(spec, lc, be)
	if err := a.Validate(spec, append(lc, be...)); err != nil {
		t.Fatalf("even partition invalid: %v", err)
	}
	if len(a.Regions) != 4 {
		t.Fatalf("got %d regions, want 4", len(a.Regions))
	}
	if a.Used(Cores) != spec.Cores || a.Used(LLCWays) != spec.LLCWays || a.Used(MemBW) != spec.MemBWUnits {
		t.Errorf("even partition does not use the whole node: %s", a)
	}
	for _, g := range a.Regions {
		if g.Kind != Isolated || len(g.Apps) != 1 {
			t.Errorf("region %q not an isolated singleton", g.Name)
		}
	}
}

func TestSplitEvenProperties(t *testing.T) {
	f := func(total uint8, n uint8) bool {
		if n == 0 {
			return true
		}
		parts := splitEven(int(total), int(n))
		sum, min, max := 0, int(total)+1, -1
		for _, p := range parts {
			sum += p
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
		return sum == int(total) && (len(parts) == 0 || max-min <= 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvenPartitionTinyNodeOverflows(t *testing.T) {
	// Two cores cannot host three strict partitions; the surplus
	// applications share a fair region instead of being stranded.
	spec := Spec{Cores: 2, LLCWays: 2, MemBWUnits: 2, MemBWGBps: 8}
	lc := []string{"xapian", "moses"}
	be := []string{"stream"}
	a := EvenPartition(spec, lc, be)
	if err := a.Validate(spec, append(lc, be...)); err != nil {
		t.Fatalf("tiny-node partition invalid: %v\n%s", err, a)
	}
	sh := a.SharedRegion()
	if sh == nil {
		t.Fatalf("no overflow shared region: %s", a)
	}
	if sh.Policy != FairShare {
		t.Error("overflow region must be fair-share")
	}
	// The first (LC) application keeps an isolated partition.
	if g := a.IsolatedRegionOf("xapian"); g == nil || g.Cores != 1 {
		t.Errorf("first app lost its partition: %v", g)
	}
	// Everything still sums to the node.
	for r := Cores; r < Resource(NumResources); r++ {
		if a.Used(r) != spec.Capacity(r) {
			t.Errorf("%s: used %d != capacity %d", r, a.Used(r), spec.Capacity(r))
		}
	}
}

func TestARQInitialShape(t *testing.T) {
	spec := DefaultSpec()
	lc := []string{"xapian", "moses"}
	be := []string{"stream"}
	a := ARQInitial(spec, lc, be)
	if err := a.Validate(spec, append(lc, be...)); err != nil {
		t.Fatalf("ARQ initial invalid: %v", err)
	}
	for _, app := range lc {
		g := a.IsolatedRegionOf(app)
		if g == nil {
			t.Fatalf("no isolated region for %s", app)
		}
		if !g.Empty() {
			t.Errorf("isolated region for %s not empty: %+v", app, g)
		}
	}
	sh := a.SharedRegion()
	if sh == nil {
		t.Fatal("no shared region")
	}
	if sh.Policy != LCPriority {
		t.Error("ARQ shared region must be LC-priority")
	}
	if sh.Cores != spec.Cores || sh.Ways != spec.LLCWays || sh.BWUnits != spec.MemBWUnits {
		t.Errorf("ARQ shared region does not hold the whole node: %+v", sh)
	}
	for _, app := range append(lc, be...) {
		if !sh.Has(app) {
			t.Errorf("shared region missing %s", app)
		}
	}
}
