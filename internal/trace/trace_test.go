package trace

import (
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	c := Constant(0.4)
	for _, tm := range []float64{0, 1, 1e9} {
		if got := c.At(tm); got != 0.4 {
			t.Errorf("At(%g) = %g", tm, got)
		}
	}
}

func TestStepsLookup(t *testing.T) {
	s, err := NewSteps(
		Step{StartMs: 10_000, Frac: 0.5},
		Step{StartMs: 0, Frac: 0.1}, // out of order on purpose
		Step{StartMs: 20_000, Frac: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t, want float64
	}{
		{-5, 0}, {0, 0.1}, {9_999, 0.1}, {10_000, 0.5}, {15_000, 0.5}, {25_000, 0.9},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestStepsValidation(t *testing.T) {
	if _, err := NewSteps(); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := NewSteps(Step{0, 1.5}); err == nil {
		t.Error("load > 1 accepted")
	}
	if _, err := NewSteps(Step{0, -0.1}); err == nil {
		t.Error("negative load accepted")
	}
}

func TestFig13Profile(t *testing.T) {
	p := Fig13Xapian()
	// The paper's narrative anchors: low start, 70% surge at 100 s, 90%
	// peak at 120 s, descent afterwards.
	if got := p.At(0); got != 0.10 {
		t.Errorf("At(0) = %g", got)
	}
	if got := p.At(110_000); got != 0.70 {
		t.Errorf("At(110s) = %g, want 0.70", got)
	}
	if got := p.At(130_000); got != 0.90 {
		t.Errorf("At(130s) = %g, want 0.90", got)
	}
	if got := p.At(240_000); got != 0.10 {
		t.Errorf("At(240s) = %g, want 0.10", got)
	}
}

func TestStepsAlwaysInRange(t *testing.T) {
	p := Fig13Xapian()
	f := func(tRaw uint32) bool {
		v := p.At(float64(tRaw))
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiurnalBounds(t *testing.T) {
	d := Diurnal{Lo: 0.2, Hi: 0.8, PeriodMs: 86_400_000}
	f := func(tRaw uint32) bool {
		v := d.At(float64(tRaw))
		return v >= 0.2-1e-9 && v <= 0.8+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if got := (Diurnal{Lo: 0.3, Hi: 0.9}).At(123); got != 0.3 {
		t.Errorf("zero-period diurnal At = %g, want Lo", got)
	}
}

func TestDiurnalSwingsFullRange(t *testing.T) {
	d := Diurnal{Lo: 0.1, Hi: 0.9, PeriodMs: 1000}
	min, max := 1.0, 0.0
	for tm := 0.0; tm < 1000; tm += 10 {
		v := d.At(tm)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min > 0.15 || max < 0.85 {
		t.Errorf("diurnal range [%g, %g] does not cover [0.1, 0.9]", min, max)
	}
}
