// Package trace provides load profiles for the experiments: constant loads
// for the steady-state figures and time-varying profiles for the
// fluctuating-load evaluation (Fig. 13) and diurnal patterns.
package trace

import (
	"fmt"
	"math"
	"sort"
)

// Load yields an application's offered load, as a fraction of its max load,
// at a given simulation time.
type Load interface {
	// At returns the load fraction in [0,1] at time tMs milliseconds.
	At(tMs float64) float64
}

// SparseLoad is implemented by Load profiles that can prove stretches of
// zero offered load. NextPositiveMs returns a time z >= tMs such that
// At(s) == 0 for every s in [tMs, z) — the earliest instant at which the
// load could be nonzero again — or +Inf if the load stays zero forever.
// Returning tMs itself (load may be positive right now) is always a valid,
// if useless, answer. The simulator's event-driven clock uses this to jump
// over provably arrival-free ticks; profiles that cannot prove anything
// simply do not implement it.
type SparseLoad interface {
	NextPositiveMs(tMs float64) float64
}

// NextPositive reports when ld could next offer load at or after tMs: the
// profile's own proof when it implements SparseLoad, else tMs (no proof, so
// the load must be treated as possibly positive immediately).
func NextPositive(ld Load, tMs float64) float64 {
	if s, ok := ld.(SparseLoad); ok {
		return s.NextPositiveMs(tMs)
	}
	return tMs
}

// Constant is a fixed load fraction.
type Constant float64

// At implements Load.
func (c Constant) At(float64) float64 { return float64(c) }

// NextPositiveMs implements SparseLoad: a zero constant never offers load,
// any other constant offers it immediately.
func (c Constant) NextPositiveMs(tMs float64) float64 {
	if c <= 0 {
		return math.Inf(1)
	}
	return tMs
}

// Step is one segment of a piecewise-constant profile.
type Step struct {
	// StartMs is the time the segment begins.
	StartMs float64
	// Frac is the load fraction from StartMs until the next segment.
	Frac float64
}

// Steps is a piecewise-constant load profile.
type Steps []Step

// NewSteps validates and sorts a piecewise-constant profile.
func NewSteps(steps ...Step) (Steps, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("trace: empty step profile")
	}
	out := append(Steps(nil), steps...)
	sort.Slice(out, func(i, j int) bool { return out[i].StartMs < out[j].StartMs })
	for _, s := range out {
		if s.Frac < 0 || s.Frac > 1 {
			return nil, fmt.Errorf("trace: step load %.3g outside [0,1]", s.Frac)
		}
	}
	return out, nil
}

// At implements Load: the fraction of the last segment that has started
// (0 before the first segment).
func (s Steps) At(tMs float64) float64 {
	frac := 0.0
	for _, st := range s {
		if tMs >= st.StartMs {
			frac = st.Frac
		} else {
			break
		}
	}
	return frac
}

// NextPositiveMs implements SparseLoad over the sorted segments: if the
// segment governing tMs is positive the load is positive now; otherwise the
// answer is the start of the next positive segment (+Inf when none
// follows).
func (s Steps) NextPositiveMs(tMs float64) float64 {
	if s.At(tMs) > 0 {
		return tMs
	}
	for _, st := range s {
		if st.StartMs > tMs && st.Frac > 0 {
			return st.StartMs
		}
	}
	return math.Inf(1)
}

// Fig13Xapian returns the 250-second Xapian load fluctuation of the paper's
// Fig. 13(a): a low start, a climb through mid loads, the 70% surge at
// 100 s, the 90% peak at 120 s, then a descent back to low load.
func Fig13Xapian() Steps {
	s, err := NewSteps(
		Step{0, 0.10},
		Step{40_000, 0.30},
		Step{70_000, 0.50},
		Step{100_000, 0.70},
		Step{120_000, 0.90},
		Step{140_000, 0.60},
		Step{170_000, 0.40},
		Step{200_000, 0.20},
		Step{225_000, 0.10},
	)
	if err != nil {
		panic(err) // static profile; cannot fail
	}
	return s
}

// Diurnal models a day/night load swing as a raised sinusoid between lo and
// hi with the given period.
type Diurnal struct {
	// Lo and Hi bound the load fraction.
	Lo, Hi float64
	// PeriodMs is the cycle length.
	PeriodMs float64
	// PhaseMs shifts the peak.
	PhaseMs float64
}

// At implements Load.
func (d Diurnal) At(tMs float64) float64 {
	if d.PeriodMs <= 0 {
		return d.Lo
	}
	phase := 2 * math.Pi * (tMs + d.PhaseMs) / d.PeriodMs
	frac := d.Lo + (d.Hi-d.Lo)*(0.5+0.5*math.Sin(phase))
	if frac < 0 {
		return 0
	}
	if frac > 1 {
		return 1
	}
	return frac
}
