package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV parses a load profile from CSV with a header and two columns:
//
//	time_s,load
//	0,0.10
//	40,0.30
//
// Times are seconds (converted to ms internally), loads are fractions of
// max load in [0,1]. Rows may be unordered; they are sorted. This is how
// recorded production load traces are replayed against the simulator
// (cmd/ahqd and the examples accept such files).
func ReadCSV(r io.Reader) (Steps, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("trace: need a header and at least one row")
	}
	timeCol, loadCol := -1, -1
	for i, h := range rows[0] {
		switch strings.ToLower(strings.TrimSpace(h)) {
		case "time_s", "time", "t":
			timeCol = i
		case "load", "frac", "fraction":
			loadCol = i
		}
	}
	if timeCol < 0 || loadCol < 0 {
		return nil, fmt.Errorf("trace: header must name a time_s and a load column, got %v", rows[0])
	}
	steps := make([]Step, 0, len(rows)-1)
	for n, row := range rows[1:] {
		if len(row) <= timeCol || len(row) <= loadCol {
			return nil, fmt.Errorf("trace: row %d too short", n+2)
		}
		ts, err := strconv.ParseFloat(strings.TrimSpace(row[timeCol]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad time %q", n+2, row[timeCol])
		}
		frac, err := strconv.ParseFloat(strings.TrimSpace(row[loadCol]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad load %q", n+2, row[loadCol])
		}
		steps = append(steps, Step{StartMs: ts * 1000, Frac: frac})
	}
	return NewSteps(steps...)
}

// WriteCSV renders a step profile in the ReadCSV format, so profiles can be
// captured from one run and replayed in another.
func (s Steps) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "load"}); err != nil {
		return err
	}
	for _, st := range s {
		if err := cw.Write([]string{
			strconv.FormatFloat(st.StartMs/1000, 'g', -1, 64),
			strconv.FormatFloat(st.Frac, 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
