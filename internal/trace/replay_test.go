package trace

import (
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	in := "time_s,load\n40,0.3\n0,0.1\n120,0.9\n"
	s, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(0); got != 0.1 {
		t.Errorf("At(0) = %g", got)
	}
	if got := s.At(50_000); got != 0.3 {
		t.Errorf("At(50s) = %g", got)
	}
	if got := s.At(200_000); got != 0.9 {
		t.Errorf("At(200s) = %g", got)
	}
}

func TestReadCSVAlternateHeaders(t *testing.T) {
	s, err := ReadCSV(strings.NewReader("t,frac\n0,0.5\n10,0.7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(5_000); got != 0.5 {
		t.Errorf("At(5s) = %g", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"header only": "time_s,load\n",
		"bad header":  "a,b\n1,0.5\n",
		"bad time":    "time_s,load\nxx,0.5\n",
		"bad load":    "time_s,load\n1,xx\n",
		"load range":  "time_s,load\n1,1.5\n",
	}
	for label, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := Fig13Xapian()
	var b strings.Builder
	if err := orig.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0, 50_000, 110_000, 130_000, 240_000} {
		if orig.At(tm) != back.At(tm) {
			t.Errorf("round trip differs at %g: %g vs %g", tm, orig.At(tm), back.At(tm))
		}
	}
}
