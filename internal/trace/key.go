package trace

import (
	"math"
	"strconv"
)

// Keyed is implemented by Load profiles that can serialise themselves into
// a canonical, bit-exact cache key. The fleet engine's node-outcome cache
// (internal/cluster) keys a completed node simulation on every input the
// simulation reads; the load profile is one of those inputs, and only the
// profile itself knows its full state. Implementations must emit a leading
// tag byte unique to their concrete type — the simulator's arrival
// classification switches on the dynamic type, so two profiles with equal
// At curves but different types are different simulations. Floats are
// encoded by their IEEE-754 bit patterns: two profiles key equal exactly
// when a simulation would compute on identical values.
//
// Profiles that do not implement Keyed are simply not key-serialisable;
// callers treat nodes carrying them as uncacheable rather than guessing.
type Keyed interface {
	// AppendLoadKey appends the profile's canonical encoding to b.
	AppendLoadKey(b []byte) []byte
}

// appendKeyBits encodes one float by its bit pattern (see Keyed).
func appendKeyBits(b []byte, v float64) []byte {
	b = strconv.AppendUint(b, math.Float64bits(v), 16)
	return append(b, ',')
}

// AppendLoadKey implements Keyed: tag 'C' plus the constant's bits.
func (c Constant) AppendLoadKey(b []byte) []byte {
	b = append(b, 'C')
	return appendKeyBits(b, float64(c))
}

// AppendLoadKey implements Keyed: tag 'S', the segment count, then each
// segment's start and fraction in profile order (NewSteps sorts segments,
// so equal profiles encode identically).
func (s Steps) AppendLoadKey(b []byte) []byte {
	b = append(b, 'S')
	b = strconv.AppendInt(b, int64(len(s)), 10)
	b = append(b, ':')
	for _, st := range s {
		b = appendKeyBits(b, st.StartMs)
		b = appendKeyBits(b, st.Frac)
	}
	return b
}

// AppendLoadKey implements Keyed: tag 'D' plus the four profile parameters.
func (d Diurnal) AppendLoadKey(b []byte) []byte {
	b = append(b, 'D')
	b = appendKeyBits(b, d.Lo)
	b = appendKeyBits(b, d.Hi)
	b = appendKeyBits(b, d.PeriodMs)
	return appendKeyBits(b, d.PhaseMs)
}
