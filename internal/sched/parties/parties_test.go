package parties

import (
	"math"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/workload"
)

func specs() []sched.AppSpec {
	return []sched.AppSpec{
		{Name: "xapian", Class: workload.LC, QoSTargetMs: 4.22, IdealP95Ms: 2.77},
		{Name: "moses", Class: workload.LC, QoSTargetMs: 10.53, IdealP95Ms: 2.80},
		{Name: "stream", Class: workload.BE, SoloIPC: 0.6},
	}
}

func tel(epoch int, xapianP95, mosesP95 float64) sched.Telemetry {
	return sched.Telemetry{
		TimeMs: float64(epoch) * 500,
		Epoch:  epoch,
		Apps: []sched.AppWindow{
			{Spec: specs()[0], P95Ms: xapianP95},
			{Spec: specs()[1], P95Ms: mosesP95},
			{Spec: specs()[2], IPC: 0.3},
		},
	}
}

func appNames() []string { return []string{"xapian", "moses", "stream"} }

func TestInitIsStrictEvenPartition(t *testing.T) {
	s := Default()
	alloc := s.Init(machine.DefaultSpec(), specs())
	if err := alloc.Validate(machine.DefaultSpec(), appNames()); err != nil {
		t.Fatal(err)
	}
	if alloc.SharedRegion() != nil {
		t.Error("PARTIES must not have a shared region")
	}
	for _, name := range appNames() {
		if alloc.IsolatedRegionOf(name) == nil {
			t.Errorf("no partition for %s", name)
		}
	}
	if alloc.Used(machine.Cores) != 10 {
		t.Errorf("partition does not use all cores: %s", alloc)
	}
}

func TestUpsizeTakesFromBE(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	beBefore := cur.IsolatedRegionOf("stream").Cores +
		cur.IsolatedRegionOf("stream").Ways + cur.IsolatedRegionOf("stream").BWUnits
	// Xapian violating: one unit moves into its partition, from the BE
	// partition.
	next := s.Decide(tel(0, 9.0, 3.0), cur)
	if next.Equal(cur) {
		t.Fatal("violation produced no adjustment")
	}
	xBefore := cur.IsolatedRegionOf("xapian")
	xAfter := next.IsolatedRegionOf("xapian")
	gained := (xAfter.Cores - xBefore.Cores) + (xAfter.Ways - xBefore.Ways) + (xAfter.BWUnits - xBefore.BWUnits)
	if gained != 1 {
		t.Errorf("beneficiary gained %d units, want 1", gained)
	}
	beAfter := next.IsolatedRegionOf("stream").Cores +
		next.IsolatedRegionOf("stream").Ways + next.IsolatedRegionOf("stream").BWUnits
	if beAfter != beBefore-1 {
		t.Errorf("BE partition lost %d units, want 1", beBefore-beAfter)
	}
}

func TestDownsizeWhenAllComfortable(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	// Both LC apps far below target (slack > 0.35): a unit flows to BE.
	next := s.Decide(tel(0, 1.0, 1.0), cur)
	if next.Equal(cur) {
		t.Fatal("over-provisioning produced no downsize")
	}
	beBefore := cur.IsolatedRegionOf("stream")
	beAfter := next.IsolatedRegionOf("stream")
	gained := (beAfter.Cores - beBefore.Cores) + (beAfter.Ways - beBefore.Ways) + (beAfter.BWUnits - beBefore.BWUnits)
	if gained != 1 {
		t.Errorf("BE gained %d units, want 1", gained)
	}
}

func TestNoChangeInDeadBand(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	// Slack between the thresholds for both apps: no adjustment. Slack
	// 0.2: p95 = 0.8 * target.
	next := s.Decide(tel(0, 0.8*4.22, 0.8*10.53), cur)
	if !next.Equal(cur) {
		t.Errorf("dead band adjusted anyway: %s", next)
	}
}

func TestPartitionsKeepFloors(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	for epoch := 0; epoch < 200; epoch++ {
		next := s.Decide(tel(epoch, 9.0, 9.0), cur)
		if err := next.Validate(machine.DefaultSpec(), appNames()); err != nil {
			t.Fatalf("epoch %d: %v\n%s", epoch, err, next)
		}
		cur = next
	}
	for _, name := range appNames() {
		g := cur.IsolatedRegionOf(name)
		if g.Cores < 1 || g.Ways < 1 || g.BWUnits < 1 {
			t.Errorf("%s partition below floor: %+v", name, g)
		}
	}
}

func TestFSMRotatesOnNoImprovement(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	// Repeated violations with unchanging latency: the FSM must cycle
	// through resource kinds rather than moving only cores.
	kinds := map[machine.Resource]bool{}
	for epoch := 0; epoch < 6; epoch++ {
		next := s.Decide(tel(epoch, 9.0, 3.0), cur)
		if next.Equal(cur) {
			break
		}
		xb, xa := cur.IsolatedRegionOf("xapian"), next.IsolatedRegionOf("xapian")
		for _, r := range []machine.Resource{machine.Cores, machine.LLCWays, machine.MemBW} {
			if xa.Amount(r) > xb.Amount(r) {
				kinds[r] = true
			}
		}
		cur = next
	}
	if len(kinds) < 2 {
		t.Errorf("FSM moved only %d resource kinds: %v", len(kinds), kinds)
	}
}

func TestIdleAppIsPreferredDonor(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	// Drain the BE partition to floors first so the LC donor path runs.
	for _, r := range []machine.Resource{machine.Cores, machine.LLCWays, machine.MemBW} {
		g := cur.IsolatedRegionOf("stream")
		x := cur.IsolatedRegionOf("xapian")
		for g.Amount(r) > 1 {
			g.SetAmount(r, g.Amount(r)-1)
			x.SetAmount(r, x.Amount(r)+1)
		}
	}
	// Moses idle (NaN p95, maximal slack) is the donor for violating
	// xapian.
	telIdle := sched.Telemetry{Apps: []sched.AppWindow{
		{Spec: specs()[0], P95Ms: 9.0},
		{Spec: specs()[1], P95Ms: math.NaN()},
		{Spec: specs()[2], IPC: 0.3},
	}}
	next := s.Decide(telIdle, cur)
	if next.Equal(cur) {
		t.Fatal("no adjustment with an idle donor available")
	}
	mb, ma := cur.IsolatedRegionOf("moses"), next.IsolatedRegionOf("moses")
	total := func(g *machine.Region) int { return g.Cores + g.Ways + g.BWUnits }
	if total(ma) != total(mb)-1 {
		t.Errorf("idle moses should donate: %d -> %d", total(mb), total(ma))
	}
}
