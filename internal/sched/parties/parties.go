// Package parties reproduces the PARTIES resource manager (Chen, Delimitrou,
// Martínez — ASPLOS 2019) as characterised in the Ah-Q paper: strict
// per-application partitioning of cores, LLC ways and memory bandwidth, with
// a slack-driven feedback loop that upsizes the partition of a QoS-violating
// LC application one resource unit per 500 ms interval and tentatively
// downsizes over-provisioned ones to grow the best-effort partition. A
// per-application finite state machine cycles through resource kinds when
// the previous adjustment of the current kind brought no improvement.
package parties

import (
	"math"

	"ahq/internal/machine"
	"ahq/internal/sched"
)

// Thresholds tune the slack bands of the controller.
type Thresholds struct {
	// Upsize is the slack below which an application is considered
	// violating and gets more resources (paper-style: at or below 0.05,
	// i.e. within 5% of its target or beyond it).
	Upsize float64
	// Downsize is the slack above which an application is considered
	// over-provisioned and may donate resources to best effort.
	Downsize float64
}

// DefaultThresholds mirror the bands used by PARTIES.
func DefaultThresholds() Thresholds { return Thresholds{Upsize: 0.05, Downsize: 0.35} }

// Strategy is the PARTIES controller. Create with New.
type Strategy struct {
	th Thresholds

	// fsm holds each LC application's current resource kind to adjust.
	fsm map[string]machine.Resource
	// lastP95 remembers the latency observed when the application was
	// last upsized, to detect "no improvement" and rotate the FSM.
	lastP95 map[string]float64
	// lastUpsized names the application adjusted in the previous epoch.
	lastUpsized string
}

// New returns a PARTIES controller with the given thresholds.
func New(th Thresholds) *Strategy {
	return &Strategy{
		th:      th,
		fsm:     make(map[string]machine.Resource),
		lastP95: make(map[string]float64),
	}
}

// Default returns a PARTIES controller with DefaultThresholds.
func Default() *Strategy { return New(DefaultThresholds()) }

// Name implements sched.Strategy.
func (s *Strategy) Name() string { return "parties" }

// Init implements sched.Strategy: strict even partitioning across every
// collocated application, LC and BE alike.
func (s *Strategy) Init(spec machine.Spec, apps []sched.AppSpec) machine.Allocation {
	return machine.EvenPartition(spec, sched.LCNamesOf(apps), sched.BENamesOf(apps))
}

// Decide implements sched.Strategy: at most one resource unit moves per
// monitoring interval.
func (s *Strategy) Decide(t sched.Telemetry, current machine.Allocation) machine.Allocation {
	next := current.Clone()

	// Rotate the FSM of the application upsized last epoch if the upsize
	// did not improve its latency.
	if s.lastUpsized != "" {
		if w := t.App(s.lastUpsized); w != nil && !math.IsNaN(w.P95Ms) {
			if prev, ok := s.lastP95[s.lastUpsized]; ok && w.P95Ms >= prev*0.98 {
				s.fsm[s.lastUpsized] = nextResource(s.fsm[s.lastUpsized])
			}
		}
		s.lastUpsized = ""
	}

	// Phase 1: the most violating LC application gets one more unit.
	if ben := s.mostViolating(t); ben != nil {
		res := s.fsm[ben.Spec.Name]
		for tries := 0; tries < machine.NumResources; tries++ {
			if s.upsize(&next, t, ben.Spec.Name, res) {
				s.lastUpsized = ben.Spec.Name
				s.lastP95[ben.Spec.Name] = ben.P95Ms
				s.fsm[ben.Spec.Name] = res
				return next
			}
			res = nextResource(res)
		}
		return current
	}

	// Phase 2: everyone satisfied with margin — tentatively shrink the
	// most over-provisioned LC application to grow best effort.
	if donor := s.mostOverProvisioned(t); donor != nil {
		res := s.fsm[donor.Spec.Name]
		for tries := 0; tries < machine.NumResources; tries++ {
			if s.downsize(&next, t, donor.Spec.Name, res) {
				return next
			}
			res = nextResource(res)
		}
	}
	return current
}

// mostViolating returns the LC window with the lowest slack if that slack
// is at or below the upsize threshold.
func (s *Strategy) mostViolating(t sched.Telemetry) *sched.AppWindow {
	var worst *sched.AppWindow
	worstSlack := math.Inf(1)
	lcs := t.LCApps()
	for i := range lcs {
		sl := lcs[i].Slack()
		if math.IsNaN(sl) {
			continue
		}
		if sl < worstSlack {
			worstSlack = sl
			worst = &lcs[i]
		}
	}
	if worst == nil || worstSlack > s.th.Upsize {
		return nil
	}
	return worst
}

// mostOverProvisioned returns the LC window with the highest slack if that
// slack exceeds the downsize threshold.
func (s *Strategy) mostOverProvisioned(t sched.Telemetry) *sched.AppWindow {
	var best *sched.AppWindow
	bestSlack := math.Inf(-1)
	lcs := t.LCApps()
	for i := range lcs {
		sl := lcs[i].Slack()
		if math.IsNaN(sl) {
			// Idle application: maximal slack, ideal donor.
			sl = 1
		}
		if sl > bestSlack {
			bestSlack = sl
			best = &lcs[i]
		}
	}
	if best == nil || bestSlack < s.th.Downsize {
		return nil
	}
	return best
}

// upsize moves one unit of res to the beneficiary from the best donor:
// first the BE partition with the most of that resource, then the LC
// application with the highest slack above the downsize threshold. It
// reports whether a move happened.
func (s *Strategy) upsize(a *machine.Allocation, t sched.Telemetry, beneficiary string, res machine.Resource) bool {
	ben := a.IsolatedRegionOf(beneficiary)
	if ben == nil {
		return false
	}
	if donor := s.richestBE(a, t, res); donor != nil {
		return moveUnit(donor, ben, res)
	}
	// Fall back to the most over-provisioned other LC application.
	if over := s.mostOverProvisioned(t); over != nil && over.Spec.Name != beneficiary {
		if donor := a.IsolatedRegionOf(over.Spec.Name); donor != nil {
			return moveUnit(donor, ben, res)
		}
	}
	return false
}

// downsize moves one unit of res from the donor LC application to the
// poorest BE partition. It reports whether a move happened.
func (s *Strategy) downsize(a *machine.Allocation, t sched.Telemetry, donor string, res machine.Resource) bool {
	don := a.IsolatedRegionOf(donor)
	if don == nil {
		return false
	}
	ben := s.poorestBE(a, t, res)
	if ben == nil {
		return false
	}
	return moveUnit(don, ben, res)
}

// richestBE returns the BE partition holding the most of res with spare to
// give (above the floor), or nil.
func (s *Strategy) richestBE(a *machine.Allocation, t sched.Telemetry, res machine.Resource) *machine.Region {
	var best *machine.Region
	for _, w := range t.BEApps() {
		g := a.IsolatedRegionOf(w.Spec.Name)
		if g == nil || g.Amount(res) <= floorOf(res) {
			continue
		}
		if best == nil || g.Amount(res) > best.Amount(res) {
			best = g
		}
	}
	return best
}

// poorestBE returns the BE partition holding the least of res, or nil.
func (s *Strategy) poorestBE(a *machine.Allocation, t sched.Telemetry, res machine.Resource) *machine.Region {
	var best *machine.Region
	for _, w := range t.BEApps() {
		g := a.IsolatedRegionOf(w.Spec.Name)
		if g == nil {
			continue
		}
		if best == nil || g.Amount(res) < best.Amount(res) {
			best = g
		}
	}
	return best
}

// moveUnit transfers one unit of res between regions, respecting the
// donor's floor (every partition keeps at least one core, one way and one
// bandwidth unit so its application can still run).
func moveUnit(from, to *machine.Region, res machine.Resource) bool {
	if from == nil || to == nil || from == to {
		return false
	}
	if from.Amount(res) <= floorOf(res) {
		return false
	}
	from.SetAmount(res, from.Amount(res)-1)
	to.SetAmount(res, to.Amount(res)+1)
	return true
}

// floorOf is the minimum a partition may hold of each resource.
func floorOf(machine.Resource) int { return 1 }

// nextResource cycles cores -> ways -> membw -> cores.
func nextResource(r machine.Resource) machine.Resource {
	return machine.Resource((int(r) + 1) % machine.NumResources)
}

var _ sched.Strategy = (*Strategy)(nil)
