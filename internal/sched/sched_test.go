package sched

import (
	"math"
	"testing"

	"ahq/internal/workload"
)

func lcWindow(name string, p95, target float64) AppWindow {
	return AppWindow{
		Spec:  AppSpec{Name: name, Class: workload.LC, QoSTargetMs: target, IdealP95Ms: target / 2},
		P95Ms: p95,
	}
}

func beWindow(name string, ipc, solo float64) AppWindow {
	return AppWindow{
		Spec: AppSpec{Name: name, Class: workload.BE, SoloIPC: solo},
		IPC:  ipc,
	}
}

func TestViolates(t *testing.T) {
	if !lcWindow("x", 5, 4).Violates() {
		t.Error("p95 > target should violate")
	}
	if lcWindow("x", 3, 4).Violates() {
		t.Error("p95 < target should not violate")
	}
	if lcWindow("x", math.NaN(), 4).Violates() {
		t.Error("idle app should not violate")
	}
	if beWindow("b", 1, 2).Violates() {
		t.Error("BE apps never violate")
	}
}

func TestSlack(t *testing.T) {
	if got := lcWindow("x", 3, 4).Slack(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Slack = %g, want 0.25", got)
	}
	if got := lcWindow("x", 5, 4).Slack(); math.Abs(got+0.25) > 1e-12 {
		t.Errorf("Slack = %g, want -0.25", got)
	}
	if !math.IsNaN(lcWindow("x", math.NaN(), 4).Slack()) {
		t.Error("idle slack should be NaN")
	}
}

func TestTelemetryAccessors(t *testing.T) {
	tel := Telemetry{Apps: []AppWindow{
		lcWindow("xapian", 3, 4),
		lcWindow("moses", 5, 10),
		beWindow("stream", 0.3, 0.6),
	}}
	if len(tel.LCApps()) != 2 || len(tel.BEApps()) != 1 {
		t.Fatalf("class split wrong: %d LC, %d BE", len(tel.LCApps()), len(tel.BEApps()))
	}
	if w := tel.App("moses"); w == nil || w.P95Ms != 5 {
		t.Errorf("App(moses) = %v", w)
	}
	if tel.App("ghost") != nil {
		t.Error("App(ghost) should be nil")
	}
}

func TestNamesOf(t *testing.T) {
	specs := []AppSpec{
		{Name: "a", Class: workload.LC},
		{Name: "b", Class: workload.BE},
		{Name: "c", Class: workload.LC},
	}
	lc := LCNamesOf(specs)
	if len(lc) != 2 || lc[0] != "a" || lc[1] != "c" {
		t.Errorf("LCNamesOf = %v", lc)
	}
	be := BENamesOf(specs)
	if len(be) != 1 || be[0] != "b" {
		t.Errorf("BENamesOf = %v", be)
	}
}
