package arq

import (
	"math"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/workload"
)

func specs() []sched.AppSpec {
	return []sched.AppSpec{
		{Name: "xapian", Class: workload.LC, QoSTargetMs: 4.22, IdealP95Ms: 2.77},
		{Name: "moses", Class: workload.LC, QoSTargetMs: 10.53, IdealP95Ms: 2.80},
		{Name: "stream", Class: workload.BE, SoloIPC: 0.6},
	}
}

func tel(epoch int, es, xapianP95, mosesP95 float64) sched.Telemetry {
	return sched.Telemetry{
		TimeMs: float64(epoch) * 500,
		Epoch:  epoch,
		ES:     es,
		Apps: []sched.AppWindow{
			{Spec: specs()[0], P95Ms: xapianP95},
			{Spec: specs()[1], P95Ms: mosesP95},
			{Spec: specs()[2], IPC: 0.3},
		},
	}
}

func TestInitIsAllSharedWithEmptyIsoRegions(t *testing.T) {
	s := Default()
	alloc := s.Init(machine.DefaultSpec(), specs())
	if err := alloc.Validate(machine.DefaultSpec(), []string{"xapian", "moses", "stream"}); err != nil {
		t.Fatal(err)
	}
	sh := alloc.SharedRegion()
	if sh == nil || sh.Cores != 10 {
		t.Fatalf("shared region = %+v", sh)
	}
	if g := alloc.IsolatedRegionOf("xapian"); g == nil || !g.Empty() {
		t.Fatalf("iso:xapian = %+v, want empty", g)
	}
}

func TestViolatingAppGainsIsolatedResources(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	// Xapian violating moderately (between target and twice the target),
	// moses comfortable: the beneficiary is iso:xapian, the victim the
	// shared region, and exactly one unit moves.
	next := s.Decide(tel(0, 0.3, 6.0, 3.0), cur)
	g := next.IsolatedRegionOf("xapian")
	if g == nil || g.Empty() {
		t.Fatalf("iso:xapian did not grow: %s", next)
	}
	total := 0
	for _, r := range []machine.Resource{machine.Cores, machine.LLCWays, machine.MemBW} {
		total += g.Amount(r)
	}
	if total != 1 {
		t.Errorf("exactly one unit should move, got %d", total)
	}
}

func TestHardViolationMovesPanicUnits(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	// Xapian's tail is beyond twice its 4.22 ms target: the fast path
	// moves PanicUnits (2) units this epoch.
	next := s.Decide(tel(0, 0.3, 9.0, 3.0), cur)
	g := next.IsolatedRegionOf("xapian")
	if g == nil {
		t.Fatal("no beneficiary region")
	}
	total := g.Cores + g.Ways + g.BWUnits
	if total != 2 {
		t.Errorf("panic path moved %d units, want 2", total)
	}
	// With the fast path disabled, one unit moves.
	cfg := DefaultConfig()
	cfg.PanicUnits = 1
	s2 := New(cfg)
	cur2 := s2.Init(machine.DefaultSpec(), specs())
	next2 := s2.Decide(tel(0, 0.3, 9.0, 3.0), cur2)
	g2 := next2.IsolatedRegionOf("xapian")
	if got := g2.Cores + g2.Ways + g2.BWUnits; got != 1 {
		t.Errorf("PanicUnits=1 moved %d units, want 1", got)
	}
}

func TestEquilibriumWhenEveryoneComfortable(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	// Both apps comfortable (ReT > 0.05) but with no isolated resources:
	// victim and beneficiary would both be the shared region -> no-op.
	next := s.Decide(tel(0, 0.05, 3.0, 3.0), cur)
	if !next.Equal(cur) {
		t.Errorf("expected equilibrium, got %s", next)
	}
}

func TestComfortableIsoRegionIsDrained(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	// Give xapian isolated resources, then make it comfortable: its iso
	// region becomes the victim, the shared region the beneficiary.
	cur.IsolatedRegionOf("xapian").Cores = 2
	cur.SharedRegion().Cores = 8
	next := s.Decide(tel(0, 0.05, 3.0, 3.0), cur)
	if g := next.IsolatedRegionOf("xapian"); g.Cores+g.Ways+g.BWUnits >= 2 {
		if next.Equal(cur) {
			t.Fatalf("comfortable iso region not drained: %s", next)
		}
	}
	if next.SharedRegion().Cores+next.SharedRegion().Ways+next.SharedRegion().BWUnits <=
		cur.SharedRegion().Cores+cur.SharedRegion().Ways+cur.SharedRegion().BWUnits-1 {
		t.Errorf("shared region should receive the drained unit")
	}
}

func TestRollbackOnEntropyIncrease(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	// Epoch 0: xapian violating -> adjustment happens.
	next := s.Decide(tel(0, 0.30, 9.0, 3.0), cur)
	if next.Equal(cur) {
		t.Fatal("no adjustment at epoch 0")
	}
	// Epoch 1: entropy jumped well past tolerance -> rollback to cur.
	rolled := s.Decide(tel(1, 0.60, 9.0, 3.0), next)
	if !rolled.Equal(cur) {
		t.Fatalf("expected rollback to the pre-adjustment allocation\n cur: %s\n got: %s", cur, rolled)
	}
	// The banned (shared, resource) pair must not be re-penalised: the
	// next adjustment must pick a different resource kind.
	after := s.Decide(tel(2, 0.30, 9.0, 3.0), rolled)
	if !after.Equal(rolled) {
		// Whatever moved must not be the banned pair from the shared
		// region.
		g := after.IsolatedRegionOf("xapian")
		if g == nil {
			t.Fatal("beneficiary vanished")
		}
	}
}

func TestNoRollbackWithinTolerance(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	next := s.Decide(tel(0, 0.30, 9.0, 3.0), cur)
	// Entropy wiggles up by less than the tolerance: keep adjusting, do
	// not undo.
	after := s.Decide(tel(1, 0.31, 9.0, 3.0), next)
	if after.Equal(cur) {
		t.Error("rolled back on noise within tolerance")
	}
}

func TestDisableRollback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableRollback = true
	s := New(cfg)
	cur := s.Init(machine.DefaultSpec(), specs())
	next := s.Decide(tel(0, 0.30, 9.0, 3.0), cur)
	after := s.Decide(tel(1, 0.90, 9.0, 3.0), next)
	if after.Equal(cur) {
		t.Error("rollback happened despite DisableRollback")
	}
}

func TestSharedRegionKeepsFloors(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	// Grind many epochs of hard violation; the shared region must never
	// drop below one core and one way (stream lives only there), and the
	// allocation must stay valid.
	apps := []string{"xapian", "moses", "stream"}
	for epoch := 0; epoch < 200; epoch++ {
		next := s.Decide(tel(epoch, 0.30, 9.0, 9.0), cur)
		if err := next.Validate(machine.DefaultSpec(), apps); err != nil {
			t.Fatalf("epoch %d: invalid allocation: %v\n%s", epoch, err, next)
		}
		cur = next
	}
	sh := cur.SharedRegion()
	if sh.Cores < 1 || sh.Ways < 1 {
		t.Errorf("shared region drained below floor: %+v", sh)
	}
}

func TestRemainingToleranceComputation(t *testing.T) {
	// Matches Eq. 3 on a Table II row: moses at 7 cores has ReT 0.36.
	tl := sched.Telemetry{Apps: []sched.AppWindow{{
		Spec:  sched.AppSpec{Name: "moses", Class: workload.LC, QoSTargetMs: 10.53, IdealP95Ms: 2.80},
		P95Ms: 6.78,
	}}}
	ret := remainingTolerances(tl)
	if len(ret) != 1 || math.Abs(ret[0].ret-0.356) > 0.01 {
		t.Errorf("ReT = %+v, want ~0.36 (Table II)", ret)
	}
	// Idle application reports its full tolerance A_i.
	tl.Apps[0].P95Ms = math.NaN()
	ret = remainingTolerances(tl)
	if math.Abs(ret[0].ret-(1-2.80/10.53)) > 1e-9 {
		t.Errorf("idle ReT = %g, want A_i", ret[0].ret)
	}
}

func TestZeroConfigGetsDefaults(t *testing.T) {
	s := New(Config{})
	if s.cfg.VictimReT != 0.1 || s.cfg.BanMs != 60_000 {
		t.Errorf("zero config not defaulted: %+v", s.cfg)
	}
}

// TestHeldTelemetryEpochIsBenign covers the controller's degraded epochs:
// when telemetry is held (TelemetryOK false, entropy repeated from the last
// healthy epoch) ARQ must neither roll back on the repeated entropy nor
// corrupt its rollback state, and a NaN entropy — possible before the first
// healthy epoch — must be ignored entirely.
func TestHeldTelemetryEpochIsBenign(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())

	// NaN ES before any healthy epoch: no rollback, lastES stays unset.
	next := s.Decide(tel(0, math.NaN(), 9.0, 3.0), cur)
	if next.Equal(cur) {
		t.Fatal("no adjustment for a violating app under NaN ES")
	}

	// Epoch 1 is healthy and establishes lastES.
	healthy := tel(1, 0.30, 9.0, 3.0)
	healthy.TelemetryOK = true
	after := s.Decide(healthy, next)

	// Epoch 2 is a held epoch: the controller repeats epoch 1's entropy
	// with TelemetryOK false. Identical entropy is within tolerance, so
	// the strategy must not roll back to the pre-adjustment allocation.
	held := tel(2, 0.30, 9.0, 3.0)
	held.TelemetryOK = false
	got := s.Decide(held, after)
	if got.Equal(next) && !after.Equal(next) {
		t.Error("held epoch triggered a rollback")
	}
	if err := got.Validate(machine.DefaultSpec(), []string{"xapian", "moses", "stream"}); err != nil {
		t.Fatalf("held epoch produced invalid allocation: %v", err)
	}
}
