// Package arq implements the ARQ scheduling strategy of the Ah-Q paper
// (Section IV, Algorithm 1). ARQ divides the node into per-LC-application
// isolated regions plus one shared region that every application — LC and
// BE — may use, with LC threads taking precedence inside it. Every
// monitoring interval it computes each LC application's remaining tolerance
// ReT and moves one resource unit from a victim region (an over-tolerant
// application's isolated region, or the shared region) to a beneficiary
// region (a pressed application's isolated region, or the shared region).
// The system entropy E_S is the accept/rollback signal: an adjustment that
// increased E_S is cancelled and its victim region is banned from being
// penalised again for 60 seconds.
package arq

import (
	"math"

	"ahq/internal/entropy"
	"ahq/internal/machine"
	"ahq/internal/sched"
)

// Config tunes ARQ. The defaults are the paper's constants.
type Config struct {
	// VictimReT is the remaining-tolerance floor above which an
	// application's isolated region may donate resources (paper: 0.1).
	VictimReT float64
	// BeneficiaryReT is the remaining tolerance below which an
	// application's isolated region receives resources (paper: 0.05).
	BeneficiaryReT float64
	// BanMs is how long a cancelled adjustment's victim region may not be
	// penalised again (paper: 60 s).
	BanMs float64
	// RollbackTolerance is the minimum E_S increase that counts as "the
	// adjustment made things worse". Windowed tail percentiles carry
	// sampling noise of a few hundredths, and rolling back (and banning a
	// region for 60 s) on noise freezes the controller.
	RollbackTolerance float64
	// DisableRollback turns off the entropy-feedback cancellation
	// (ablation).
	DisableRollback bool
	// DisableBan turns off the 60 s penalty ban (ablation).
	DisableBan bool
	// PanicUnits is how many resource units move in one epoch when the
	// beneficiary application is violating *hard* (its tail beyond twice
	// the target). The paper describes ARQ quickly preempting shared
	// resources to stop a tail-latency spike (Section VI-B); 1 disables
	// the fast path. Default 2.
	PanicUnits int
}

// DefaultConfig returns the paper's constants.
func DefaultConfig() Config {
	return Config{
		VictimReT:         0.1,
		BeneficiaryReT:    0.05,
		BanMs:             60_000,
		RollbackTolerance: 0.04,
		PanicUnits:        2,
	}
}

// move records one adjustment so it can be cancelled.
type move struct {
	from, to string
	res      machine.Resource
}

// Strategy is the ARQ controller. Create with New.
type Strategy struct {
	cfg Config

	isAdjust  bool
	lastES    float64
	lastMoves []move
	// fsm is the per-victim-region resource-kind state machine used by
	// findVictimResource, as in PARTIES.
	fsm map[string]machine.Resource
	// bannedUntil maps region/resource pairs to the time their penalty
	// ban ends. Banning the pair rather than the whole region keeps the
	// shared region — usually the only donor — usable in the other
	// resource dimensions after a rollback.
	bannedUntil map[banKey]float64
}

// banKey identifies one penalisable (region, resource) pair.
type banKey struct {
	region string
	res    machine.Resource
}

// New returns an ARQ controller.
func New(cfg Config) *Strategy {
	if cfg.VictimReT == 0 && cfg.BeneficiaryReT == 0 && cfg.BanMs == 0 {
		cfg = DefaultConfig()
	}
	return &Strategy{
		cfg:         cfg,
		lastES:      1, // Algorithm 1 line 2
		fsm:         make(map[string]machine.Resource),
		bannedUntil: make(map[banKey]float64),
	}
}

// Default returns an ARQ controller with the paper's constants.
func Default() *Strategy { return New(DefaultConfig()) }

// Name implements sched.Strategy.
func (s *Strategy) Name() string { return "arq" }

// Init implements sched.Strategy: empty isolated regions for each LC
// application and the whole node in one LC-priority shared region.
func (s *Strategy) Init(spec machine.Spec, apps []sched.AppSpec) machine.Allocation {
	return machine.ARQInitial(spec, sched.LCNamesOf(apps), sched.BENamesOf(apps))
}

// Decide implements sched.Strategy (Algorithm 1 main loop).
func (s *Strategy) Decide(t sched.Telemetry, current machine.Allocation) machine.Allocation {
	es := t.ES
	ret := remainingTolerances(t)

	// Rollback: the previous adjustment made things worse.
	if s.isAdjust && !s.cfg.DisableRollback && !math.IsNaN(es) && es > s.lastES+s.cfg.RollbackTolerance {
		next := current.Clone()
		undone := false
		for i := len(s.lastMoves) - 1; i >= 0; i-- {
			m := s.lastMoves[i]
			if undo(&next, m) {
				undone = true
				if !s.cfg.DisableBan {
					s.bannedUntil[banKey{m.from, m.res}] = t.TimeMs + s.cfg.BanMs
				}
			}
		}
		if undone {
			s.isAdjust = false
			s.lastES = es
			s.lastMoves = s.lastMoves[:0]
			return next
		}
	}
	if !math.IsNaN(es) {
		s.lastES = es
	}

	// Hard violation (tail beyond twice the target) triggers the fast
	// path: several units move in one epoch, quickly preempting shared
	// resources to stop the spike (Section VI-B).
	moves := 1
	if s.cfg.PanicUnits > 1 && hardViolation(t) {
		moves = s.cfg.PanicUnits
	}
	next := current.Clone()
	s.lastMoves = s.lastMoves[:0]
	for i := 0; i < moves; i++ {
		m, ok := s.adjustResource(&next, t, ret)
		if !ok {
			break
		}
		s.lastMoves = append(s.lastMoves, m)
	}
	if len(s.lastMoves) > 0 {
		s.isAdjust = true
		return next
	}
	s.isAdjust = false
	return current
}

// hardViolation reports whether any LC application's tail exceeds twice
// its target this epoch.
func hardViolation(t sched.Telemetry) bool {
	for _, w := range t.LCApps() {
		if !math.IsNaN(w.P95Ms) && w.P95Ms > 2*w.Spec.QoSTargetMs {
			return true
		}
	}
	return false
}

// appReT pairs an application with its remaining tolerance.
type appReT struct {
	name string
	ret  float64
}

// remainingTolerances computes ReT_i for every LC application from the
// epoch's telemetry (Eq. 3). Idle applications report their full tolerance.
func remainingTolerances(t sched.Telemetry) []appReT {
	var out []appReT
	for _, w := range t.LCApps() {
		smp := entropy.LCSample{
			Name:       w.Spec.Name,
			IdealMs:    w.Spec.IdealP95Ms,
			MeasuredMs: w.P95Ms,
			TargetMs:   w.Spec.QoSTargetMs,
		}
		ret := 0.0
		if math.IsNaN(w.P95Ms) {
			ret = smp.Tolerance()
		} else if smp.Validate() == nil {
			ret = smp.RemainingTolerance()
		}
		out = append(out, appReT{name: w.Spec.Name, ret: ret})
	}
	return out
}

// adjustResource implements AdjustResource of Algorithm 1: pick a victim
// region and a beneficiary region from the ReT array, pick the resource
// kind with the victim's FSM, and move one unit. It reports whether a move
// actually happened.
func (s *Strategy) adjustResource(a *machine.Allocation, t sched.Telemetry, ret []appReT) (move, bool) {
	victim := s.findVictimRegion(a, t.TimeMs, ret)
	beneficiary := s.findBeneficiaryRegion(a, ret)
	if victim == nil || beneficiary == nil || victim.Name == beneficiary.Name {
		// Equilibrium: nobody needs resources and nobody can donate.
		return move{}, false
	}
	res, ok := s.findVictimResource(victim, a, t.TimeMs)
	if !ok {
		return move{}, false
	}
	victim.SetAmount(res, victim.Amount(res)-1)
	beneficiary.SetAmount(res, beneficiary.Amount(res)+1)
	return move{from: victim.Name, to: beneficiary.Name, res: res}, true
}

// findVictimRegion walks the ReT array in descending order looking for an
// application with headroom (ReT above the victim threshold) whose isolated
// region holds penalisable resources and is not banned; failing that, the
// shared region (if not banned and penalisable).
func (s *Strategy) findVictimRegion(a *machine.Allocation, nowMs float64, ret []appReT) *machine.Region {
	orderered := append([]appReT(nil), ret...)
	// Insertion sort by descending ReT; the array is tiny.
	for i := 1; i < len(orderered); i++ {
		for j := i; j > 0 && orderered[j].ret > orderered[j-1].ret; j-- {
			orderered[j], orderered[j-1] = orderered[j-1], orderered[j]
		}
	}
	for _, ar := range orderered {
		if ar.ret <= s.cfg.VictimReT {
			break
		}
		g := a.IsolatedRegionOf(ar.name)
		if g == nil {
			continue
		}
		if s.penalisable(g, nowMs) {
			return g
		}
	}
	if g := a.SharedRegion(); g != nil && s.penalisable(g, nowMs) {
		return g
	}
	return nil
}

// findBeneficiaryRegion returns the isolated region of the application with
// the smallest ReT when that ReT is below the beneficiary threshold, else
// the shared region.
func (s *Strategy) findBeneficiaryRegion(a *machine.Allocation, ret []appReT) *machine.Region {
	if len(ret) == 0 {
		return a.SharedRegion()
	}
	minIdx := 0
	for i := range ret {
		if ret[i].ret < ret[minIdx].ret {
			minIdx = i
		}
	}
	if ret[minIdx].ret < s.cfg.BeneficiaryReT {
		if g := a.IsolatedRegionOf(ret[minIdx].name); g != nil {
			return g
		}
	}
	return a.SharedRegion()
}

// findVictimResource runs the region's resource FSM: starting from the
// region's current state, return the first resource kind the region can
// donate (and is not banned from donating), advancing the state. It reports
// false when nothing is movable.
func (s *Strategy) findVictimResource(g *machine.Region, a *machine.Allocation, nowMs float64) (machine.Resource, bool) {
	res := s.fsm[g.Name]
	for tries := 0; tries < machine.NumResources; tries++ {
		if s.canDonate(g, res, nowMs) {
			s.fsm[g.Name] = machine.Resource((int(res) + 1) % machine.NumResources)
			return res, true
		}
		res = machine.Resource((int(res) + 1) % machine.NumResources)
	}
	return 0, false
}

// canDonate reports whether region g can give up one unit of res without
// stranding an application and without violating a penalty ban. The shared
// region keeps at least one core and one way because BE applications live
// only there.
func (s *Strategy) canDonate(g *machine.Region, res machine.Resource, nowMs float64) bool {
	if s.banned(g.Name, res, nowMs) {
		return false
	}
	floor := 0
	if g.Kind == machine.Shared && (res == machine.Cores || res == machine.LLCWays) {
		floor = 1
	}
	return g.Amount(res) > floor
}

// penalisable reports whether the region can donate any resource at all.
func (s *Strategy) penalisable(g *machine.Region, nowMs float64) bool {
	for r := machine.Cores; r < machine.Resource(machine.NumResources); r++ {
		if s.canDonate(g, r, nowMs) {
			return true
		}
	}
	return false
}

func (s *Strategy) banned(region string, res machine.Resource, nowMs float64) bool {
	return nowMs < s.bannedUntil[banKey{region, res}]
}

// undo reverses a move on the allocation; it reports false when the regions
// no longer exist or the unit cannot be returned.
func undo(a *machine.Allocation, m move) bool {
	from := a.Region(m.to) // the unit currently sits in the beneficiary
	to := a.Region(m.from)
	if from == nil || to == nil || from.Amount(m.res) < 1 {
		return false
	}
	from.SetAmount(m.res, from.Amount(m.res)-1)
	to.SetAmount(m.res, to.Amount(m.res)+1)
	return true
}

var _ sched.Strategy = (*Strategy)(nil)
