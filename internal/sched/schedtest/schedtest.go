// Package schedtest provides a conformance harness that every scheduling
// strategy must pass: whatever telemetry sequence it observes, each
// allocation it returns must be valid for the node and application set,
// and it must behave sanely on degenerate inputs (idle telemetry, LC-only
// and BE-only mixes). Each strategy package runs the harness from its own
// tests.
package schedtest

import (
	"math"
	"math/rand"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/workload"
)

// Factory builds a fresh strategy instance for each scenario.
type Factory func() sched.Strategy

// Scenario seeds for the single-stream harness runs. Named so the
// telemetry streams are reproducible and visibly distinct per scenario;
// randomTelemetry sweeps its own seed range instead.
const (
	classSubsetSeed int64 = 9
	tinyNodeSeed    int64 = 4
)

// Run exercises the factory's strategy against the full conformance suite.
func Run(t *testing.T, factory Factory) {
	t.Helper()
	t.Run("RandomTelemetry", func(t *testing.T) { randomTelemetry(t, factory) })
	t.Run("IdleTelemetry", func(t *testing.T) { idleTelemetry(t, factory) })
	t.Run("LCOnly", func(t *testing.T) { classSubset(t, factory, true) })
	t.Run("BEOnly", func(t *testing.T) { classSubset(t, factory, false) })
	t.Run("TinyNode", func(t *testing.T) { tinyNode(t, factory) })
}

func standardSpecs() []sched.AppSpec {
	return []sched.AppSpec{
		{Name: "xapian", Class: workload.LC, Threads: 4, QoSTargetMs: 4.22, IdealP95Ms: 2.77},
		{Name: "moses", Class: workload.LC, Threads: 4, QoSTargetMs: 10.53, IdealP95Ms: 2.80},
		{Name: "img-dnn", Class: workload.LC, Threads: 4, QoSTargetMs: 3.98, IdealP95Ms: 1.41},
		{Name: "stream", Class: workload.BE, Threads: 10, SoloIPC: 0.6},
	}
}

func names(specs []sched.AppSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// synthTelemetry builds plausible random telemetry for the specs.
func synthTelemetry(rng *rand.Rand, specs []sched.AppSpec, epoch int) sched.Telemetry {
	tel := sched.Telemetry{
		TimeMs: float64(epoch) * 500,
		Epoch:  epoch,
	}
	for _, s := range specs {
		w := sched.AppWindow{Spec: s}
		if s.Class == workload.LC {
			// Latency between half the ideal and 5x the target, with an
			// occasional idle window.
			switch rng.Intn(10) {
			case 0:
				w.P95Ms = math.NaN()
			default:
				w.P95Ms = s.IdealP95Ms/2 + rng.Float64()*5*s.QoSTargetMs
				w.Completed = 1 + rng.Intn(500)
			}
			w.QueueLen = rng.Intn(64)
		} else {
			w.IPC = rng.Float64() * s.SoloIPC
		}
		tel.Apps = append(tel.Apps, w)
	}
	tel.ELC = rng.Float64()
	tel.EBE = rng.Float64()
	tel.ES = 0.8*tel.ELC + 0.2*tel.EBE
	return tel
}

// randomTelemetry drives 300 epochs of arbitrary observations and checks
// every returned allocation.
func randomTelemetry(t *testing.T, factory Factory) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := factory()
		spec := machine.DefaultSpec()
		specs := standardSpecs()
		cur := s.Init(spec, specs)
		if err := cur.Validate(spec, names(specs)); err != nil {
			t.Fatalf("seed %d: Init invalid: %v\n%s", seed, err, cur)
		}
		for epoch := 0; epoch < 300; epoch++ {
			next := s.Decide(synthTelemetry(rng, specs, epoch), cur)
			if err := next.Validate(spec, names(specs)); err != nil {
				t.Fatalf("seed %d epoch %d: Decide invalid: %v\n%s", seed, epoch, err, next)
			}
			cur = next
		}
	}
}

// idleTelemetry: a strategy must not crash or produce invalid allocations
// when nothing has run yet.
func idleTelemetry(t *testing.T, factory Factory) {
	s := factory()
	spec := machine.DefaultSpec()
	specs := standardSpecs()
	cur := s.Init(spec, specs)
	idle := sched.Telemetry{Apps: make([]sched.AppWindow, len(specs))}
	for i, sp := range specs {
		idle.Apps[i] = sched.AppWindow{Spec: sp, P95Ms: math.NaN()}
	}
	idle.ELC, idle.EBE, idle.ES = math.NaN(), math.NaN(), math.NaN()
	for epoch := 0; epoch < 10; epoch++ {
		idle.Epoch = epoch
		idle.TimeMs = float64(epoch) * 500
		next := s.Decide(idle, cur)
		if err := next.Validate(spec, names(specs)); err != nil {
			t.Fatalf("epoch %d: %v\n%s", epoch, err, next)
		}
		cur = next
	}
}

// classSubset runs with only one application class present.
func classSubset(t *testing.T, factory Factory, lcOnly bool) {
	var specs []sched.AppSpec
	for _, s := range standardSpecs() {
		if (s.Class == workload.LC) == lcOnly {
			specs = append(specs, s)
		}
	}
	s := factory()
	spec := machine.DefaultSpec()
	cur := s.Init(spec, specs)
	if err := cur.Validate(spec, names(specs)); err != nil {
		t.Fatalf("Init invalid: %v\n%s", err, cur)
	}
	rng := rand.New(rand.NewSource(classSubsetSeed))
	for epoch := 0; epoch < 60; epoch++ {
		next := s.Decide(synthTelemetry(rng, specs, epoch), cur)
		if err := next.Validate(spec, names(specs)); err != nil {
			t.Fatalf("epoch %d: %v\n%s", epoch, err, next)
		}
		cur = next
	}
}

// tinyNode uses the smallest legal node: strategies must respect floors.
func tinyNode(t *testing.T, factory Factory) {
	spec := machine.Spec{Cores: 2, LLCWays: 2, MemBWUnits: 2, MemBWGBps: 8}
	specs := standardSpecs()[:2] // two LC apps... plus stream keeps BE paths alive
	specs = append(specs, standardSpecs()[3])
	s := factory()
	cur := s.Init(spec, specs)
	if err := cur.Validate(spec, names(specs)); err != nil {
		t.Fatalf("Init invalid on tiny node: %v\n%s", err, cur)
	}
	rng := rand.New(rand.NewSource(tinyNodeSeed))
	for epoch := 0; epoch < 100; epoch++ {
		next := s.Decide(synthTelemetry(rng, specs, epoch), cur)
		if err := next.Validate(spec, names(specs)); err != nil {
			t.Fatalf("epoch %d: %v\n%s", epoch, err, next)
		}
		cur = next
	}
}
