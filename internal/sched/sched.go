// Package sched defines the contract between the Ah-Q controller and a
// resource-scheduling strategy: what a strategy can observe each monitoring
// epoch (Telemetry) and what it returns (a machine.Allocation). Concrete
// strategies live in the subpackages static (Unmanaged, LC-first), parties,
// clite and arq.
package sched

import (
	"math"

	"ahq/internal/machine"
	"ahq/internal/workload"
)

// AppSpec is the static, profiled description of one collocated application
// that a strategy is given at initialisation: class, QoS target and ideal
// tail latency for LC applications (both obtained offline, as in the paper),
// solo IPC for BE applications.
type AppSpec struct {
	Name    string
	Class   workload.Class
	Threads int
	// QoSTargetMs is M_i; LC only.
	QoSTargetMs float64
	// IdealP95Ms is TL_i0, profiled with ample resources; LC only.
	IdealP95Ms float64
	// MaxLoadQPS is the profiled maximum load; LC only.
	MaxLoadQPS float64
	// SoloIPC is the profiled solo IPC; BE only.
	SoloIPC float64
}

// AppWindow is what the monitor observed for one application over one epoch.
type AppWindow struct {
	Spec AppSpec
	// P95Ms is the epoch's p95 latency. When no request completed but the
	// queue is non-empty it is the age of the oldest queued request (a
	// lower bound); NaN only if the application was idle. LC only.
	P95Ms float64
	// MeanMs is the epoch's mean latency (NaN as above). LC only.
	MeanMs float64
	// Completed and Dropped count requests finished and rejected by
	// client backpressure during the epoch. LC only.
	Completed, Dropped int
	// QueueLen is the backlog at the end of the epoch. LC only.
	QueueLen int
	// OfferedQPS is the observed arrival rate over the epoch. LC only.
	OfferedQPS float64
	// IPC is the epoch's achieved IPC. BE only.
	IPC float64
}

// Violates reports whether an LC application's observed tail exceeded its
// QoS target this epoch. A starved application (bounded-below latency)
// counts as violating.
func (w AppWindow) Violates() bool {
	if w.Spec.Class != workload.LC {
		return false
	}
	return !math.IsNaN(w.P95Ms) && w.P95Ms > w.Spec.QoSTargetMs
}

// Slack returns the PARTIES-style latency slack (target - p95)/target;
// negative when violating, NaN when idle. LC only.
func (w AppWindow) Slack() float64 {
	if math.IsNaN(w.P95Ms) || w.Spec.QoSTargetMs <= 0 {
		return math.NaN()
	}
	return (w.Spec.QoSTargetMs - w.P95Ms) / w.Spec.QoSTargetMs
}

// Telemetry is one epoch's complete observation, handed to Strategy.Decide.
type Telemetry struct {
	// TimeMs is the simulation time at the end of the epoch.
	TimeMs float64
	// Epoch counts monitoring intervals from zero.
	Epoch int
	// Apps holds one window per application, in controller order (LC
	// applications first, then BE).
	Apps []AppWindow
	// ELC, EBE and ES are the epoch's entropy values, computed by the
	// controller; strategies using entropy feedback (ARQ) read ES.
	ELC, EBE, ES float64
	// TelemetryOK is true when this epoch's observation is fresh and its
	// entropy was computed from it. When false the controller is degraded
	// — the window was dropped, stale, or corrupt, or the entropy
	// computation failed — and Apps/ELC/EBE/ES hold the last healthy
	// epoch's values instead (NaN entropies and empty Apps only before
	// the first healthy epoch). Strategies therefore never observe a NaN
	// entropy that a healthy epoch preceded; conservative strategies may
	// additionally choose to hold their allocation while it is false.
	TelemetryOK bool
}

// App returns the window for the named application, or nil.
func (t *Telemetry) App(name string) *AppWindow {
	for i := range t.Apps {
		if t.Apps[i].Spec.Name == name {
			return &t.Apps[i]
		}
	}
	return nil
}

// LCApps returns the windows of the latency-critical applications.
func (t *Telemetry) LCApps() []AppWindow {
	var out []AppWindow
	for _, w := range t.Apps {
		if w.Spec.Class == workload.LC {
			out = append(out, w)
		}
	}
	return out
}

// BEApps returns the windows of the best-effort applications.
func (t *Telemetry) BEApps() []AppWindow {
	var out []AppWindow
	for _, w := range t.Apps {
		if w.Spec.Class == workload.BE {
			out = append(out, w)
		}
	}
	return out
}

// Strategy is a resource-scheduling policy. The controller calls Init once
// and Decide every monitoring epoch; Decide returns the allocation to apply
// for the next epoch (returning the current allocation unchanged is a
// no-op decision).
type Strategy interface {
	// Name identifies the strategy in results ("arq", "parties", ...).
	Name() string
	// Init returns the strategy's starting allocation.
	Init(spec machine.Spec, apps []AppSpec) machine.Allocation
	// Decide observes one epoch and returns the next allocation.
	Decide(t Telemetry, current machine.Allocation) machine.Allocation
}

// LCNamesOf returns the names of the LC applications in specs, in order.
func LCNamesOf(apps []AppSpec) []string {
	var out []string
	for _, a := range apps {
		if a.Class == workload.LC {
			out = append(out, a.Name)
		}
	}
	return out
}

// BENamesOf returns the names of the BE applications in specs, in order.
func BENamesOf(apps []AppSpec) []string {
	var out []string
	for _, a := range apps {
		if a.Class == workload.BE {
			out = append(out, a.Name)
		}
	}
	return out
}
