package static

import (
	"testing"

	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/workload"
)

func specs() []sched.AppSpec {
	return []sched.AppSpec{
		{Name: "xapian", Class: workload.LC, QoSTargetMs: 4.22, IdealP95Ms: 2.77},
		{Name: "stream", Class: workload.BE, SoloIPC: 0.6},
	}
}

func TestUnmanaged(t *testing.T) {
	s := Unmanaged{}
	if s.Name() != "unmanaged" {
		t.Errorf("Name = %q", s.Name())
	}
	alloc := s.Init(machine.DefaultSpec(), specs())
	if err := alloc.Validate(machine.DefaultSpec(), []string{"xapian", "stream"}); err != nil {
		t.Fatal(err)
	}
	g := alloc.SharedRegion()
	if g == nil || g.Policy != machine.FairShare {
		t.Fatalf("Unmanaged region = %+v, want fair-share shared", g)
	}
	next := s.Decide(sched.Telemetry{}, alloc)
	if !next.Equal(alloc) {
		t.Error("Unmanaged adjusted")
	}
}

func TestLCFirst(t *testing.T) {
	s := LCFirst{}
	alloc := s.Init(machine.DefaultSpec(), specs())
	g := alloc.SharedRegion()
	if g == nil || g.Policy != machine.LCPriority {
		t.Fatalf("LCFirst region = %+v, want lc-priority shared", g)
	}
	next := s.Decide(sched.Telemetry{}, alloc)
	if !next.Equal(alloc) {
		t.Error("LCFirst adjusted")
	}
}

func TestFixed(t *testing.T) {
	want := machine.AllShared(machine.DefaultSpec(), machine.LCPriority, []string{"xapian", "stream"})
	s := Fixed{Label: "strategy-A", Alloc: want}
	if s.Name() != "strategy-A" {
		t.Errorf("Name = %q", s.Name())
	}
	if (Fixed{}).Name() != "fixed" {
		t.Error("default label wrong")
	}
	got := s.Init(machine.DefaultSpec(), specs())
	if !got.Equal(want) {
		t.Error("Init does not return the configured allocation")
	}
	// Init must clone: mutating the returned allocation must not leak
	// into subsequent Inits.
	got.Regions[0].Cores = 1
	if s.Init(machine.DefaultSpec(), specs()).Regions[0].Cores == 1 {
		t.Error("Fixed.Init aliases its allocation")
	}
}
