// Package static provides the non-adaptive baseline strategies of the
// paper's evaluation: Unmanaged (the OS default — everything shared under
// CFS, no isolation), LC-first (real-time priority for LC applications,
// still no partitioning), and Fixed (a hand-built allocation held for the
// whole run, used by the Fig. 1 motivating example).
package static

import (
	"ahq/internal/machine"
	"ahq/internal/sched"
)

// Unmanaged is the Linux-CFS baseline: one fair-share region holding the
// whole node, never adjusted.
type Unmanaged struct{}

// Name implements sched.Strategy.
func (Unmanaged) Name() string { return "unmanaged" }

// Init implements sched.Strategy.
func (Unmanaged) Init(spec machine.Spec, apps []sched.AppSpec) machine.Allocation {
	return machine.AllShared(spec, machine.FairShare, names(apps))
}

// Decide implements sched.Strategy: never adjusts.
func (Unmanaged) Decide(_ sched.Telemetry, current machine.Allocation) machine.Allocation {
	return current
}

// LCFirst is the real-time-priority baseline: one shared region holding the
// whole node where LC threads preempt BE threads, never adjusted.
type LCFirst struct{}

// Name implements sched.Strategy.
func (LCFirst) Name() string { return "lc-first" }

// Init implements sched.Strategy.
func (LCFirst) Init(spec machine.Spec, apps []sched.AppSpec) machine.Allocation {
	return machine.AllShared(spec, machine.LCPriority, names(apps))
}

// Decide implements sched.Strategy: never adjusts.
func (LCFirst) Decide(_ sched.Telemetry, current machine.Allocation) machine.Allocation {
	return current
}

// Fixed holds an arbitrary allocation for the whole run.
type Fixed struct {
	// Label names the strategy in results (e.g. "strategy-A").
	Label string
	// Alloc is the allocation to hold.
	Alloc machine.Allocation
}

// Name implements sched.Strategy.
func (f Fixed) Name() string {
	if f.Label == "" {
		return "fixed"
	}
	return f.Label
}

// Init implements sched.Strategy.
func (f Fixed) Init(machine.Spec, []sched.AppSpec) machine.Allocation {
	return f.Alloc.Clone()
}

// Decide implements sched.Strategy: never adjusts.
func (f Fixed) Decide(_ sched.Telemetry, current machine.Allocation) machine.Allocation {
	return current
}

func names(apps []sched.AppSpec) []string {
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Name
	}
	return out
}
