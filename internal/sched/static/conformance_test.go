package static

import (
	"testing"

	"ahq/internal/sched"
	"ahq/internal/sched/schedtest"
)

func TestConformanceUnmanaged(t *testing.T) {
	schedtest.Run(t, func() sched.Strategy { return Unmanaged{} })
}

func TestConformanceLCFirst(t *testing.T) {
	schedtest.Run(t, func() sched.Strategy { return LCFirst{} })
}
