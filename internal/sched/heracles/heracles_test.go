package heracles

import (
	"math"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/workload"
)

func specs() []sched.AppSpec {
	return []sched.AppSpec{
		{Name: "xapian", Class: workload.LC, QoSTargetMs: 4.22, IdealP95Ms: 2.77},
		{Name: "moses", Class: workload.LC, QoSTargetMs: 10.53, IdealP95Ms: 2.80},
		{Name: "stream", Class: workload.BE, SoloIPC: 0.6},
	}
}

func appNames() []string { return []string{"xapian", "moses", "stream"} }

func tel(xapianP95, mosesP95 float64) sched.Telemetry {
	return sched.Telemetry{Apps: []sched.AppWindow{
		{Spec: specs()[0], P95Ms: xapianP95},
		{Spec: specs()[1], P95Ms: mosesP95},
		{Spec: specs()[2], IPC: 0.3},
	}}
}

func TestInitShape(t *testing.T) {
	s := Default()
	alloc := s.Init(machine.DefaultSpec(), specs())
	if err := alloc.Validate(machine.DefaultSpec(), appNames()); err != nil {
		t.Fatal(err)
	}
	lc, be := alloc.Region("lc"), alloc.Region("be")
	if lc == nil || be == nil {
		t.Fatalf("missing regions: %s", alloc)
	}
	if lc.Policy != machine.LCPriority {
		t.Error("LC region must be LC-priority")
	}
	if be.Cores != 1 || be.Ways != 1 || be.BWUnits != 1 {
		t.Errorf("BE starter partition = %+v", be)
	}
}

func TestInitDegenerateMixes(t *testing.T) {
	s := Default()
	lcOnly := s.Init(machine.DefaultSpec(), specs()[:2])
	if lcOnly.SharedRegion() == nil || len(lcOnly.Regions) != 1 {
		t.Errorf("LC-only init = %s", lcOnly)
	}
	beOnly := s.Init(machine.DefaultSpec(), specs()[2:])
	if beOnly.SharedRegion() == nil || len(beOnly.Regions) != 1 {
		t.Errorf("BE-only init = %s", beOnly)
	}
}

func TestGrowsBEWhenComfortable(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	next := s.Decide(tel(1.0, 2.0), cur) // both far below target
	be := next.Region("be")
	total := be.Cores + be.Ways + be.BWUnits
	if total != 4 {
		t.Errorf("BE total after growth = %d, want 4 (one unit moved)", total)
	}
}

func TestShrinksBEOnDanger(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	// Grow BE first.
	for i := 0; i < 9; i++ {
		cur = s.Decide(tel(1.0, 2.0), cur)
	}
	beBefore := cur.Region("be")
	totalBefore := beBefore.Cores + beBefore.Ways + beBefore.BWUnits
	if totalBefore <= 3 {
		t.Fatalf("BE did not grow during setup: %+v", beBefore)
	}
	// Danger: xapian violating.
	next := s.Decide(tel(9.0, 2.0), cur)
	beAfter := next.Region("be")
	totalAfter := beAfter.Cores + beAfter.Ways + beAfter.BWUnits
	if totalAfter >= totalBefore {
		t.Errorf("BE not shrunk on danger: %d -> %d", totalBefore, totalAfter)
	}
	// Shrink is aggressive: more than one unit per interval.
	if totalBefore-totalAfter < 2 {
		t.Errorf("shrink moved only %d units", totalBefore-totalAfter)
	}
}

func TestDeadBandHolds(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	// Slack between thresholds: ~0.15 for xapian.
	next := s.Decide(tel(0.85*4.22, 2.0), cur)
	if !next.Equal(cur) {
		t.Error("dead band adjusted")
	}
}

func TestFloorsAlwaysRespected(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	// Alternate hard violation and comfort for many epochs; allocation
	// must stay valid and both regions keep at least one unit of each.
	for epoch := 0; epoch < 120; epoch++ {
		var tl sched.Telemetry
		if epoch%3 == 0 {
			tl = tel(9.0, 9.0)
		} else {
			tl = tel(1.0, 1.0)
		}
		next := s.Decide(tl, cur)
		if err := next.Validate(machine.DefaultSpec(), appNames()); err != nil {
			t.Fatalf("epoch %d: %v\n%s", epoch, err, next)
		}
		cur = next
	}
	for _, name := range []string{"lc", "be"} {
		g := cur.Region(name)
		if g.Cores < 1 || g.Ways < 1 || g.BWUnits < 1 {
			t.Errorf("%s region below floor: %+v", name, g)
		}
	}
}

func TestIdleTelemetryIsNoOp(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	idle := sched.Telemetry{Apps: []sched.AppWindow{
		{Spec: specs()[0], P95Ms: math.NaN()},
		{Spec: specs()[1], P95Ms: math.NaN()},
		{Spec: specs()[2], IPC: 0.3},
	}}
	if next := s.Decide(idle, cur); !next.Equal(cur) {
		t.Error("idle telemetry adjusted")
	}
}
