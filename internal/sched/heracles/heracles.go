// Package heracles implements a Heracles-style controller (Lo et al.,
// ISCA 2015), the threshold-based ancestor of PARTIES that the Ah-Q paper
// discusses in related work. Heracles treats the best-effort class as one
// growable partition: when every latency-critical application has
// comfortable slack the BE partition grows one unit; when any LC
// application's slack falls below a danger threshold the BE partition is
// shrunk aggressively (two units per interval), and BE growth is disallowed
// until slack recovers. Unlike PARTIES it never rebalances resources
// *between* LC applications — which is exactly the limitation the later
// systems address — so it serves as an instructive extra baseline.
package heracles

import (
	"math"

	"ahq/internal/machine"
	"ahq/internal/sched"
)

// Config tunes the controller.
type Config struct {
	// DangerSlack is the slack below which BE is shrunk (default 0.05).
	DangerSlack float64
	// GrowSlack is the minimum slack of *every* LC application required
	// to grow BE (default 0.25).
	GrowSlack float64
	// ShrinkUnits is how many units move away from BE per violating
	// interval (default 2 — Heracles reacts fast on danger).
	ShrinkUnits int
}

// DefaultConfig returns the defaults above.
func DefaultConfig() Config {
	return Config{DangerSlack: 0.05, GrowSlack: 0.25, ShrinkUnits: 2}
}

// Strategy is the Heracles controller. Create with New.
type Strategy struct {
	cfg Config
	// fsm cycles the resource kind considered for growth, so BE gains a
	// balanced mix over time.
	fsm machine.Resource
}

// New returns a Heracles controller.
func New(cfg Config) *Strategy {
	if cfg.DangerSlack == 0 && cfg.GrowSlack == 0 {
		cfg = DefaultConfig()
	}
	if cfg.ShrinkUnits <= 0 {
		cfg.ShrinkUnits = 2
	}
	return &Strategy{cfg: cfg}
}

// Default returns a controller with DefaultConfig.
func Default() *Strategy { return New(DefaultConfig()) }

// Name implements sched.Strategy.
func (s *Strategy) Name() string { return "heracles" }

// Init implements sched.Strategy: the LC applications share one
// LC-priority region holding most of the node; the BE applications share a
// small starter partition (one unit of each resource kind).
func (s *Strategy) Init(spec machine.Spec, apps []sched.AppSpec) machine.Allocation {
	lc := sched.LCNamesOf(apps)
	be := sched.BENamesOf(apps)
	if len(be) == 0 {
		return machine.AllShared(spec, machine.LCPriority, lc)
	}
	if len(lc) == 0 {
		return machine.AllShared(spec, machine.FairShare, be)
	}
	return machine.Allocation{Regions: []machine.Region{
		{
			Name: "lc", Kind: machine.Shared, Policy: machine.LCPriority,
			Cores: spec.Cores - 1, Ways: spec.LLCWays - 1, BWUnits: spec.MemBWUnits - 1,
			Apps: sortedCopy(lc),
		},
		{
			Name: "be", Kind: machine.Shared, Policy: machine.FairShare,
			Cores: 1, Ways: 1, BWUnits: 1,
			Apps: sortedCopy(be),
		},
	}}
}

// Decide implements sched.Strategy.
func (s *Strategy) Decide(t sched.Telemetry, current machine.Allocation) machine.Allocation {
	lcRegion := current.Region("lc")
	beRegion := current.Region("be")
	if lcRegion == nil || beRegion == nil {
		return current // degenerate mixes have nothing to adjust
	}
	minSlack := math.Inf(1)
	any := false
	for _, w := range t.LCApps() {
		sl := w.Slack()
		if math.IsNaN(sl) {
			continue
		}
		any = true
		if sl < minSlack {
			minSlack = sl
		}
	}
	if !any {
		return current
	}
	next := current.Clone()
	lcN, beN := next.Region("lc"), next.Region("be")
	switch {
	case minSlack < s.cfg.DangerSlack:
		// Danger: claw resources back from BE, every kind, fast.
		moved := false
		for i := 0; i < s.cfg.ShrinkUnits; i++ {
			for r := machine.Cores; r < machine.Resource(machine.NumResources); r++ {
				if beN.Amount(r) > 1 {
					beN.SetAmount(r, beN.Amount(r)-1)
					lcN.SetAmount(r, lcN.Amount(r)+1)
					moved = true
				}
			}
		}
		if !moved {
			return current
		}
		return next
	case minSlack > s.cfg.GrowSlack:
		// Comfortable: grow BE by one unit of the FSM's kind.
		for tries := 0; tries < machine.NumResources; tries++ {
			r := s.fsm
			s.fsm = machine.Resource((int(s.fsm) + 1) % machine.NumResources)
			if lcN.Amount(r) > 1 {
				lcN.SetAmount(r, lcN.Amount(r)-1)
				beN.SetAmount(r, beN.Amount(r)+1)
				return next
			}
		}
		return current
	default:
		return current
	}
}

func sortedCopy(xs []string) []string {
	out := append([]string(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

var _ sched.Strategy = (*Strategy)(nil)
