package heracles

import (
	"testing"

	"ahq/internal/sched"
	"ahq/internal/sched/schedtest"
)

func TestConformance(t *testing.T) {
	schedtest.Run(t, func() sched.Strategy { return Default() })
}
