package clite

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/workload"
)

func specs() []sched.AppSpec {
	return []sched.AppSpec{
		{Name: "xapian", Class: workload.LC, QoSTargetMs: 4.22, IdealP95Ms: 2.77},
		{Name: "moses", Class: workload.LC, QoSTargetMs: 10.53, IdealP95Ms: 2.80},
		{Name: "stream", Class: workload.BE, SoloIPC: 0.6},
	}
}

func appNames() []string { return []string{"xapian", "moses", "stream"} }

func newTest() *Strategy {
	s := Default()
	s.Init(machine.DefaultSpec(), specs())
	return s
}

func TestInitIsValidPartition(t *testing.T) {
	s := Default()
	alloc := s.Init(machine.DefaultSpec(), specs())
	if err := alloc.Validate(machine.DefaultSpec(), appNames()); err != nil {
		t.Fatal(err)
	}
	if alloc.SharedRegion() != nil {
		t.Error("CLITE must partition strictly")
	}
}

func TestRandomConfigsAlwaysValid(t *testing.T) {
	s := newTest()
	for i := 0; i < 500; i++ {
		cfg := s.randomConfig()
		alloc := s.decodeAlloc(cfg)
		if err := alloc.Validate(machine.DefaultSpec(), appNames()); err != nil {
			t.Fatalf("random config %d invalid: %v\n%s", i, err, alloc)
		}
		n := s.nApps()
		for r := 0; r < machine.NumResources; r++ {
			sum := 0
			for a := 0; a < n; a++ {
				sum += cfg[r*n+a]
			}
			if sum != machine.DefaultSpec().Capacity(machine.Resource(r)) {
				t.Fatalf("config %d: resource %d sums to %d", i, r, sum)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := newTest()
	cfg := s.randomConfig()
	alloc := s.decodeAlloc(cfg)
	back := s.encodeAlloc(alloc)
	if len(back) != len(cfg) {
		t.Fatalf("length mismatch: %d vs %d", len(back), len(cfg))
	}
	for i := range cfg {
		if back[i] != cfg[i] {
			t.Fatalf("round trip differs at %d: %v vs %v", i, cfg, back)
		}
	}
}

func TestUnpointProducesValidConfigs(t *testing.T) {
	s := newTest()
	f := func(raw []uint16) bool {
		x := make([]float64, s.dim())
		for i := range x {
			if i < len(raw) {
				x[i] = float64(raw[i]%1000) / 999
			}
		}
		cfg := s.unpoint(x)
		n := s.nApps()
		for r := 0; r < machine.NumResources; r++ {
			sum := 0
			for a := 0; a < n; a++ {
				v := cfg[r*n+a]
				if v < 1 {
					return false
				}
				sum += v
			}
			if sum != machine.DefaultSpec().Capacity(machine.Resource(r)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPerturbKeepsInvariants(t *testing.T) {
	s := newTest()
	base := s.randomConfig()
	for i := 0; i < 200; i++ {
		p := s.perturb(base)
		alloc := s.decodeAlloc(p)
		if err := alloc.Validate(machine.DefaultSpec(), appNames()); err != nil {
			t.Fatalf("perturbed config invalid: %v", err)
		}
	}
}

func TestObjectiveOrdering(t *testing.T) {
	s := newTest()
	mk := func(xp95, ipc float64) sched.Telemetry {
		return sched.Telemetry{Apps: []sched.AppWindow{
			{Spec: specs()[0], P95Ms: xp95},
			{Spec: specs()[1], P95Ms: 3.0},
			{Spec: specs()[2], IPC: ipc},
		}}
	}
	okLow, _ := s.objective(mk(3.0, 0.1))
	okHigh, _ := s.objective(mk(3.0, 0.5))
	bad, violating := s.objective(mk(9.0, 0.6))
	if !violating {
		t.Error("violation not flagged")
	}
	if !(bad < okLow && okLow < okHigh) {
		t.Errorf("objective ordering wrong: violating %.3f, ok-low %.3f, ok-high %.3f",
			bad, okLow, okHigh)
	}
	if bad >= 1 {
		t.Errorf("violating score %.3f should be < 1", bad)
	}
	if okLow < 1 {
		t.Errorf("feasible score %.3f should be >= 1", okLow)
	}
}

func TestDecideAlwaysReturnsValidAllocations(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	for epoch := 0; epoch < 60; epoch++ {
		// Feed plausible telemetry: violate when xapian's partition is
		// small, satisfy otherwise.
		x := cur.IsolatedRegionOf("xapian")
		p95 := 3.0
		if x != nil && x.Cores < 3 {
			p95 = 6.0
		}
		tel := sched.Telemetry{
			TimeMs: float64(epoch) * 500,
			Epoch:  epoch,
			Apps: []sched.AppWindow{
				{Spec: specs()[0], P95Ms: p95},
				{Spec: specs()[1], P95Ms: 3.0},
				{Spec: specs()[2], IPC: 0.3},
			},
		}
		next := s.Decide(tel, cur)
		if err := next.Validate(machine.DefaultSpec(), appNames()); err != nil {
			t.Fatalf("epoch %d: invalid allocation: %v\n%s", epoch, err, next)
		}
		cur = next
	}
}

func TestConvergesToExploitation(t *testing.T) {
	s := Default()
	cur := s.Init(machine.DefaultSpec(), specs())
	// Constant feasible telemetry: after the budget the strategy should
	// stop moving.
	stable := 0
	for epoch := 0; epoch < 40; epoch++ {
		tel := sched.Telemetry{
			TimeMs: float64(epoch) * 500,
			Epoch:  epoch,
			Apps: []sched.AppWindow{
				{Spec: specs()[0], P95Ms: 3.0},
				{Spec: specs()[1], P95Ms: 3.0},
				{Spec: specs()[2], IPC: 0.3},
			},
		}
		next := s.Decide(tel, cur)
		if next.Equal(cur) {
			stable++
		} else {
			stable = 0
		}
		cur = next
	}
	if stable < 5 {
		t.Errorf("CLITE did not settle into exploitation (stable tail %d)", stable)
	}
}

func TestObjectiveIgnoresIdleApps(t *testing.T) {
	s := newTest()
	telIdle := sched.Telemetry{Apps: []sched.AppWindow{
		{Spec: specs()[0], P95Ms: math.NaN()},
		{Spec: specs()[1], P95Ms: 3.0},
		{Spec: specs()[2], IPC: 0.3},
	}}
	score, violating := s.objective(telIdle)
	if violating {
		t.Error("idle app flagged as violating")
	}
	if score < 1 {
		t.Errorf("score %.3f should be feasible", score)
	}
}

func TestInitialConfigsValid(t *testing.T) {
	s := newTest()
	for i := 0; i < 8; i++ {
		cfg := s.initialConfig(i)
		alloc := s.decodeAlloc(cfg)
		if err := alloc.Validate(machine.DefaultSpec(), appNames()); err != nil {
			t.Fatalf("initial config %d invalid: %v\n%s", i, err, alloc)
		}
		n := s.nApps()
		for r := 0; r < machine.NumResources; r++ {
			sum := 0
			for a := 0; a < n; a++ {
				sum += cfg[r*n+a]
			}
			if sum != machine.DefaultSpec().Capacity(machine.Resource(r)) {
				t.Fatalf("initial config %d: resource %d sums to %d", i, r, sum)
			}
		}
	}
	// The LC-weighted bootstrap gives LC applications more than BE ones.
	cfg := s.initialConfig(1)
	n := s.nApps()
	if cfg[0] <= cfg[n-1] { // cores: xapian vs stream
		t.Errorf("LC-weighted bootstrap not LC-weighted: %v", cfg[:n])
	}
}

// TestSolverFailureDegradesToHold is the regression test for the removed
// Init panic: when the optimizer cannot be built the strategy must hold its
// fallback partition through every Decide instead of crashing the
// controller, and a later successful Init must clear the degraded state.
func TestSolverFailureDegradesToHold(t *testing.T) {
	s := newTest()
	alloc := machine.EvenPartition(machine.DefaultSpec(),
		[]string{"xapian", "moses"}, []string{"stream"})
	// Simulate bayesopt.NewOptimizer failing during Init.
	s.opt = nil
	s.infeasible = true
	tel := sched.Telemetry{Apps: []sched.AppWindow{
		{Spec: specs()[0], P95Ms: 9.0},
		{Spec: specs()[1], P95Ms: 3.0},
		{Spec: specs()[2], IPC: 0.4},
	}}
	for epoch := 0; epoch < 5; epoch++ {
		tel.Epoch = epoch
		got := s.Decide(tel, alloc)
		if err := got.Validate(machine.DefaultSpec(), appNames()); err != nil {
			t.Fatalf("epoch %d: degraded Decide returned invalid allocation: %v", epoch, err)
		}
		if !reflect.DeepEqual(got, alloc) {
			t.Fatalf("epoch %d: degraded Decide did not hold the current allocation", epoch)
		}
	}
	// Re-initialising on a sane node recovers: the stale degraded flag
	// must not leak into the fresh run.
	s.Init(machine.DefaultSpec(), specs())
	if s.infeasible || s.opt == nil {
		t.Error("Init did not clear the degraded state")
	}
}

// TestInfeasibleSpecHoldsPartition: a node with fewer units than
// applications cannot be strictly partitioned; Init must mark the run
// infeasible (not panic) and Decide must hold.
func TestInfeasibleSpecHoldsPartition(t *testing.T) {
	s := Default()
	spec := machine.Spec{Cores: 2, LLCWays: 2, MemBWUnits: 2, MemBWGBps: 10}
	alloc := s.Init(spec, specs())
	if !s.infeasible {
		t.Fatal("2-unit node with 3 applications not marked infeasible")
	}
	got := s.Decide(sched.Telemetry{Apps: []sched.AppWindow{
		{Spec: specs()[0], P95Ms: 9.0},
		{Spec: specs()[1], P95Ms: 3.0},
		{Spec: specs()[2], IPC: 0.4},
	}}, alloc)
	if !reflect.DeepEqual(got, alloc) {
		t.Error("infeasible Decide did not hold the current allocation")
	}
}
