package clite

import (
	"testing"

	"ahq/internal/sched"
	"ahq/internal/sched/schedtest"
)

func TestConformance(t *testing.T) {
	seed := int64(0)
	schedtest.Run(t, func() sched.Strategy {
		seed++
		cfg := DefaultConfig()
		cfg.Seed = seed
		return New(cfg)
	})
}
