// Package clite reproduces CLITE (Patel & Tiwari, HPCA 2020): a strict
// resource-isolation scheduler that searches the partitioning space online
// with Bayesian optimisation. Each monitoring interval it scores the
// partitioning that was just in force (QoS satisfaction of the LC
// applications first, best-effort throughput second), adds the observation
// to a Gaussian-process model, and either explores the candidate
// partitioning with the highest expected improvement or exploits the best
// one found. A shift in load makes the exploited configuration start
// violating, which triggers a model reset and re-exploration.
package clite

import (
	"math"
	"math/rand"

	"ahq/internal/bayesopt"
	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/workload"
)

// Config tunes the CLITE controller.
type Config struct {
	// InitSamples is the number of random partitionings evaluated before
	// the GP drives the search.
	InitSamples int
	// Budget is the maximum number of observations before the controller
	// switches to pure exploitation.
	Budget int
	// Candidates is the size of the random candidate pool ranked by
	// expected improvement each step.
	Candidates int
	// MinEI stops exploration early once the best expected improvement
	// falls below it.
	MinEI float64
	// StaleAfter is the number of consecutive regressed epochs during
	// exploitation that triggers a model reset. An epoch counts as
	// regressed when its score falls well below the best the model ever
	// observed — the signature of a load shift that made the model stale.
	// (Merely violating QoS does not count: when no partitioning is
	// feasible, the best and current scores agree and resetting would
	// thrash.)
	StaleAfter int
	// Seed makes the random search reproducible.
	Seed int64
}

// DefaultConfig returns the parameters used in the evaluation.
func DefaultConfig() Config {
	return Config{InitSamples: 5, Budget: 18, Candidates: 200, MinEI: 1e-3, StaleAfter: 3, Seed: 1}
}

// Strategy is the CLITE controller. Create with New.
type Strategy struct {
	cfg  Config
	rng  *rand.Rand
	opt  *bayesopt.Optimizer
	apps []sched.AppSpec
	spec machine.Spec

	current    []int // the partitioning in force, flat encoding
	exploiting bool
	staleRuns  int
	// infeasible is set when the node has fewer units of some resource
	// than applications: strict per-application partitioning (CLITE's
	// search space) does not exist, so the controller holds the fallback
	// allocation from machine.EvenPartition.
	infeasible bool

	// Candidate-pool scratch, reused across decisions. candMem/ptMem back
	// the per-candidate configs and GP points; cands/pts are the slice
	// headers handed to Suggest. Only the chosen candidate escapes a
	// decision (copied), so the pool is safe to overwrite next time.
	candMem []int
	ptMem   []float64
	cands   [][]int
	pts     [][]float64
}

// New returns a CLITE controller.
func New(cfg Config) *Strategy {
	if cfg.InitSamples == 0 {
		cfg = DefaultConfig()
	}
	return &Strategy{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Default returns a CLITE controller with DefaultConfig.
func Default() *Strategy { return New(DefaultConfig()) }

// Name implements sched.Strategy.
func (s *Strategy) Name() string { return "clite" }

// Init implements sched.Strategy: an even strict partitioning, which is
// also the first observation of the search.
func (s *Strategy) Init(spec machine.Spec, apps []sched.AppSpec) machine.Allocation {
	s.spec = spec
	s.apps = apps
	s.infeasible = false
	opt, err := bayesopt.NewOptimizer(s.dim())
	if err != nil {
		// A pathological dimension (no applications, or a solver the model
		// cannot be built for) must degrade, not crash the controller:
		// without a model there is nothing to search, so hold the fallback
		// partition for the whole run (DESIGN.md §7).
		s.opt = nil
		s.infeasible = true
	} else {
		s.opt = opt
	}
	s.exploiting = false
	s.staleRuns = 0
	for r := 0; r < machine.NumResources; r++ {
		if spec.Capacity(machine.Resource(r)) < len(apps) {
			s.infeasible = true
		}
	}
	alloc := machine.EvenPartition(spec, sched.LCNamesOf(apps), sched.BENamesOf(apps))
	s.current = s.encodeAlloc(alloc)
	return alloc
}

// Decide implements sched.Strategy.
func (s *Strategy) Decide(t sched.Telemetry, current machine.Allocation) machine.Allocation {
	if s.infeasible || s.opt == nil {
		return current
	}
	score, _ := s.objective(t)
	_, bestScore, bestErr := s.opt.Best()
	if err := s.opt.Observe(s.point(s.current), score); err != nil {
		return current // singular model this step; keep the allocation
	}

	if s.exploiting {
		regressed := bestErr == nil && score < 0.8*bestScore
		if regressed {
			s.staleRuns++
			if s.staleRuns >= s.cfg.StaleAfter {
				// The workload shifted; the model is stale.
				s.opt.Reset()
				s.exploiting = false
				s.staleRuns = 0
				// Re-seed the search with the current point's score.
				_ = s.opt.Observe(s.point(s.current), score)
			}
		} else {
			s.staleRuns = 0
		}
		if s.exploiting {
			return current
		}
	}

	next := s.nextConfig()
	if next == nil {
		s.exploiting = true
		return current
	}
	s.current = next
	return s.decodeAlloc(next)
}

// nextConfig picks the next partitioning to evaluate, or nil to exploit the
// best-known one (in which case the caller keeps the current allocation if
// it already is the best; otherwise we move to the best).
func (s *Strategy) nextConfig() []int {
	n := s.opt.Len()
	if n < s.cfg.InitSamples {
		return s.initialConfig(n)
	}
	if n >= s.cfg.Budget {
		return s.bestConfig()
	}
	// Half of the candidate pool is global (random partitionings), half is
	// local (small perturbations of the best configuration found so far);
	// BO over resource partitionings converges much faster with a local
	// neighbourhood in the pool.
	cfgLen := machine.NumResources * s.nApps()
	dim := s.dim()
	if cap(s.candMem) < s.cfg.Candidates*cfgLen {
		s.candMem = make([]int, s.cfg.Candidates*cfgLen)
		s.ptMem = make([]float64, s.cfg.Candidates*dim)
		s.cands = make([][]int, 0, s.cfg.Candidates)
		s.pts = make([][]float64, 0, s.cfg.Candidates)
	}
	cands := s.cands[:0]
	pts := s.pts[:0]
	var best []int
	if x, _, err := s.opt.Best(); err == nil {
		best = s.unpoint(x)
	}
	for i := 0; i < s.cfg.Candidates; i++ {
		c := s.candMem[i*cfgLen : (i+1)*cfgLen : (i+1)*cfgLen]
		if best != nil && i%2 == 0 {
			s.perturbInto(c, best)
		} else {
			s.randomConfigInto(c)
		}
		cands = append(cands, c)
		pts = append(pts, s.pointInto(s.ptMem[i*dim:i*dim:(i+1)*dim], c))
	}
	s.cands, s.pts = cands, pts
	idx, ei, err := s.opt.Suggest(pts)
	if err != nil || idx < 0 {
		return s.randomConfig()
	}
	if ei < s.cfg.MinEI {
		return s.bestConfig()
	}
	// The winner outlives the pool (it becomes s.current); copy it out.
	return append([]int(nil), cands[idx]...)
}

// bestConfig switches to exploitation and returns the best observed
// partitioning (flagging the switch in the receiver).
func (s *Strategy) bestConfig() []int {
	s.exploiting = true
	x, _, err := s.opt.Best()
	if err != nil {
		return s.randomConfig()
	}
	return s.unpoint(x)
}

// objective scores an epoch: when every LC application meets its target the
// score is 1 plus the mean normalised BE IPC (maximising BE throughput);
// otherwise it is the product of the LC applications' QoS satisfaction
// ratios, which lies in [0,1) and steers the search back to feasibility.
func (s *Strategy) objective(t sched.Telemetry) (score float64, violating bool) {
	sat := 1.0
	for _, w := range t.LCApps() {
		if math.IsNaN(w.P95Ms) {
			continue
		}
		if w.P95Ms > w.Spec.QoSTargetMs {
			violating = true
		}
		sat *= math.Min(1, w.Spec.QoSTargetMs/w.P95Ms)
	}
	if violating {
		return sat, true
	}
	be := t.BEApps()
	if len(be) == 0 {
		return 1 + sat, false
	}
	sum := 0.0
	for _, w := range be {
		if w.Spec.SoloIPC > 0 {
			sum += w.IPC / w.Spec.SoloIPC
		}
	}
	return 1 + sum/float64(len(be)), false
}

// --- partitioning encoding ---------------------------------------------

// nApps returns the number of partitions (one per application).
func (s *Strategy) nApps() int { return len(s.apps) }

// dim is the GP dimensionality: per-application resource shares, last
// application implied.
func (s *Strategy) dim() int {
	d := machine.NumResources * (s.nApps() - 1)
	if d < 1 {
		d = 1
	}
	return d
}

// initialConfig returns the i-th bootstrap sample. Like CLITE's structured
// initialisation, the first samples cover characteristic corners of the
// space — LC-weighted splits at increasing intensity and one big-LC-app
// probe per application — rather than uniform noise, which anchors the GP
// where feasible configurations live. Later bootstrap indices fall back to
// random.
func (s *Strategy) initialConfig(i int) []int {
	lcIdx := make([]int, 0, len(s.apps))
	for k, a := range s.apps {
		if a.Class == workload.LC {
			lcIdx = append(lcIdx, k)
		}
	}
	switch {
	case i == 0:
		// The even partition is already observed as the Init allocation,
		// so probe a mildly LC-weighted split first.
		return s.weightedConfig(lcIdx, 2)
	case i == 1:
		return s.weightedConfig(lcIdx, 4)
	case i-2 < len(lcIdx):
		// One probe per LC application: give it half of everything.
		return s.appHeavyConfig(lcIdx[i-2])
	default:
		return s.randomConfig()
	}
}

// weightedConfig gives every LC application `weight` shares per BE share.
func (s *Strategy) weightedConfig(lcIdx []int, weight int) []int {
	n := s.nApps()
	cfg := make([]int, machine.NumResources*n)
	isLC := make([]bool, n)
	for _, k := range lcIdx {
		isLC[k] = true
	}
	for r := 0; r < machine.NumResources; r++ {
		total := s.spec.Capacity(machine.Resource(r))
		shares := 0
		for a := 0; a < n; a++ {
			if isLC[a] {
				shares += weight
			} else {
				shares++
			}
		}
		left := total
		for a := 0; a < n; a++ {
			w := 1
			if isLC[a] {
				w = weight
			}
			v := total * w / shares
			if v < 1 {
				v = 1
			}
			if a == n-1 {
				v = left
			}
			if v > left-(n-1-a) { // leave floors for the rest
				v = left - (n - 1 - a)
			}
			cfg[r*n+a] = v
			left -= v
		}
	}
	return cfg
}

// appHeavyConfig gives application `heavy` half of every resource and
// splits the rest evenly.
func (s *Strategy) appHeavyConfig(heavy int) []int {
	n := s.nApps()
	cfg := make([]int, machine.NumResources*n)
	for r := 0; r < machine.NumResources; r++ {
		total := s.spec.Capacity(machine.Resource(r))
		big := total / 2
		if big < 1 {
			big = 1
		}
		rest := total - big
		others := n - 1
		left := rest
		for a := 0; a < n; a++ {
			if a == heavy {
				cfg[r*n+a] = big
				continue
			}
			v := rest / others
			if v < 1 {
				v = 1
			}
			if left-v < others-1 { // keep floors available
				v = 1
			}
			cfg[r*n+a] = v
			left -= v
		}
		// Re-balance any rounding surplus onto the heavy application.
		sum := 0
		for a := 0; a < n; a++ {
			sum += cfg[r*n+a]
		}
		cfg[r*n+heavy] += total - sum
	}
	return cfg
}

// randomConfig draws a random integer partitioning with every application
// holding at least one unit of each resource.
func (s *Strategy) randomConfig() []int {
	cfg := make([]int, machine.NumResources*s.nApps())
	s.randomConfigInto(cfg)
	return cfg
}

// randomConfigInto is randomConfig writing into a caller-provided config.
func (s *Strategy) randomConfigInto(cfg []int) {
	n := s.nApps()
	for r := 0; r < machine.NumResources; r++ {
		total := s.spec.Capacity(machine.Resource(r))
		randomPartitionInto(s.rng, total, cfg[r*n:(r+1)*n])
	}
}

// perturb moves one to three random resource units between random
// partitions of a config, respecting the 1-unit floors.
func (s *Strategy) perturb(cfg []int) []int {
	out := make([]int, len(cfg))
	s.perturbInto(out, cfg)
	return out
}

// perturbInto is perturb writing into a caller-provided config.
func (s *Strategy) perturbInto(out, cfg []int) {
	n := s.nApps()
	copy(out, cfg)
	moves := 1 + s.rng.Intn(3)
	for m := 0; m < moves; m++ {
		r := s.rng.Intn(machine.NumResources)
		from := s.rng.Intn(n)
		to := s.rng.Intn(n)
		if from == to || out[r*n+from] <= 1 {
			continue
		}
		out[r*n+from]--
		out[r*n+to]++
	}
}

// randomPartition splits total units over n bins, each at least 1, by
// dealing the surplus with uniformly random bin choices.
func randomPartition(rng *rand.Rand, total, n int) []int {
	parts := make([]int, n)
	randomPartitionInto(rng, total, parts)
	return parts
}

// randomPartitionInto is randomPartition dealing into a caller-provided
// slice; the candidate loop partitions straight into the config it is
// building instead of allocating a scratch partition per resource.
func randomPartitionInto(rng *rand.Rand, total int, parts []int) {
	n := len(parts)
	for i := range parts {
		parts[i] = 1
	}
	for u := n; u < total; u++ {
		parts[rng.Intn(n)]++
	}
}

// point normalises a flat config into [0,1]^dim for the GP (dropping the
// last application's implied shares).
func (s *Strategy) point(cfg []int) []float64 {
	return s.pointInto(make([]float64, 0, s.dim()), cfg)
}

// pointInto is point appending into a caller-provided buffer (len 0, cap
// at least dim()).
func (s *Strategy) pointInto(pt []float64, cfg []int) []float64 {
	n := s.nApps()
	for r := 0; r < machine.NumResources; r++ {
		total := s.spec.Capacity(machine.Resource(r))
		for i := 0; i < n-1; i++ {
			pt = append(pt, float64(cfg[r*n+i])/float64(total))
		}
	}
	if len(pt) == 0 {
		pt = append(pt, 1)
	}
	return pt
}

// unpoint converts a GP point back to the nearest valid integer config:
// every application keeps at least one unit and each resource sums exactly
// to the node's capacity (the last application absorbs rounding, and the
// first applications are trimmed if the floors would overcommit).
func (s *Strategy) unpoint(x []float64) []int {
	n := s.nApps()
	cfg := make([]int, machine.NumResources*n)
	k := 0
	for r := 0; r < machine.NumResources; r++ {
		total := s.spec.Capacity(machine.Resource(r))
		budget := total - 1 // reserve the last application's floor
		for i := 0; i < n-1; i++ {
			v := 1
			if k < len(x) {
				v = int(math.Round(x[k] * float64(total)))
			}
			k++
			if v < 1 {
				v = 1
			}
			if max := budget - (n - 2 - i); v > max { // leave floors for the rest
				v = max
			}
			cfg[r*n+i] = v
			budget -= v
		}
		cfg[r*n+n-1] = budget + 1
	}
	return cfg
}

// decodeAlloc turns a flat config into a strict-isolation allocation.
func (s *Strategy) decodeAlloc(cfg []int) machine.Allocation {
	n := s.nApps()
	alloc := machine.Allocation{Regions: make([]machine.Region, 0, n)}
	for i, a := range s.apps {
		alloc.Regions = append(alloc.Regions, machine.Region{
			Name:    "iso:" + a.Name,
			Kind:    machine.Isolated,
			Cores:   cfg[int(machine.Cores)*n+i],
			Ways:    cfg[int(machine.LLCWays)*n+i],
			BWUnits: cfg[int(machine.MemBW)*n+i],
			Apps:    []string{a.Name},
		})
	}
	return alloc
}

// encodeAlloc flattens a strict-isolation allocation back to a config.
func (s *Strategy) encodeAlloc(a machine.Allocation) []int {
	n := s.nApps()
	cfg := make([]int, machine.NumResources*n)
	for i, app := range s.apps {
		g := a.IsolatedRegionOf(app.Name)
		if g == nil {
			continue
		}
		cfg[int(machine.Cores)*n+i] = g.Cores
		cfg[int(machine.LLCWays)*n+i] = g.Ways
		cfg[int(machine.MemBW)*n+i] = g.BWUnits
	}
	return cfg
}

var _ sched.Strategy = (*Strategy)(nil)
