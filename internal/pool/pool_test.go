package pool

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSubmissionOrderResults(t *testing.T) {
	p := New(4)
	var futs []*Future[int]
	for i := 0; i < 32; i++ {
		futs = append(futs, Submit(p, func() (int, error) { return i * i, nil }))
	}
	for i, f := range futs {
		v, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if v != i*i {
			t.Errorf("job %d returned %d, want %d", i, v, i*i)
		}
	}
}

func TestPropagatesErrors(t *testing.T) {
	p := New(2)
	boom := errors.New("boom")
	ok := Submit(p, func() (string, error) { return "fine", nil })
	bad := Submit(p, func() (string, error) { return "", boom })
	if v, err := ok.Wait(); err != nil || v != "fine" {
		t.Errorf("ok job: %q, %v", v, err)
	}
	if _, err := bad.Wait(); !errors.Is(err, boom) {
		t.Errorf("bad job err = %v", err)
	}
}

func TestBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := New(workers)
	if p.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", p.Workers(), workers)
	}
	var running, peak atomic.Int32
	var mu sync.Mutex
	var futs []*Future[struct{}]
	for i := 0; i < 24; i++ {
		futs = append(futs, Submit(p, func() (struct{}, error) {
			n := running.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			running.Add(-1)
			return struct{}{}, nil
		}))
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := peak.Load(); got > workers {
		t.Errorf("observed %d concurrent jobs, cap is %d", got, workers)
	}
}

func TestDefaultWorkersIsNumCPU(t *testing.T) {
	if got := New(0).Workers(); got < 1 {
		t.Errorf("New(0).Workers() = %d, want >= 1", got)
	}
	if got := New(-3).Workers(); got < 1 {
		t.Errorf("New(-3).Workers() = %d, want >= 1", got)
	}
}
