// Package pool is the bounded worker pool + future pattern shared by the
// experiment harness and the cluster fleet engine. Both call sites fan
// independent, seed-deterministic simulation jobs out over a fixed number
// of workers and read the results back in submission (declaration) order,
// so rendered output is byte-identical to a sequential run at any
// parallelism level. The pool only bounds concurrency; ordering is the
// caller's, by waiting on futures in the order it submitted them.
package pool

import "runtime"

// Pool bounds how many submitted jobs run simultaneously.
type Pool struct {
	sem chan struct{}
}

// New sizes the executor: workers jobs run at once, or runtime.NumCPU()
// when workers <= 0 (1 disables concurrency).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Future is the pending result of a submitted job. The result slots are
// published by the worker goroutine's deferred close(done): writes happen
// before the close, reads happen after a receive.
type Future[T any] struct {
	done chan struct{}
	val  T     // guarded by done
	err  error // guarded by done
}

// Submit schedules fn on the pool and returns its future. Jobs start in
// submission order as workers free up; results are read back with Wait.
func Submit[T any](p *Pool, fn func() (T, error)) *Future[T] {
	f := &Future[T]{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		f.val, f.err = fn()
	}()
	return f
}

// Wait blocks until the job finishes and returns its result.
func (f *Future[T]) Wait() (T, error) {
	<-f.done
	return f.val, f.err
}
