package rdt

import (
	"strings"
	"testing"
	"testing/quick"

	"ahq/internal/machine"
	"ahq/internal/sim"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

func arqStyleAlloc() machine.Allocation {
	return machine.Allocation{Regions: []machine.Region{
		{Name: "iso:xapian", Kind: machine.Isolated, Cores: 2, Ways: 5, BWUnits: 2, Apps: []string{"xapian"}},
		{Name: "iso:moses", Kind: machine.Isolated, Apps: []string{"moses"}}, // empty, skipped
		{Name: "shared", Kind: machine.Shared, Policy: machine.LCPriority, Cores: 8, Ways: 15, BWUnits: 8,
			Apps: []string{"moses", "stream", "xapian"}},
	}}
}

func TestBuildPlanLayout(t *testing.T) {
	plan, err := BuildPlan(machine.DefaultSpec(), arqStyleAlloc())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Classes) != 2 {
		t.Fatalf("got %d classes, want 2 (empty region skipped)", len(plan.Classes))
	}
	iso, shared := plan.Classes[0], plan.Classes[1]
	if iso.CoreList() != "0-1" {
		t.Errorf("iso cores = %q, want 0-1", iso.CoreList())
	}
	if shared.CoreList() != "2-9" {
		t.Errorf("shared cores = %q, want 2-9", shared.CoreList())
	}
	if iso.WayMask != 0x1f {
		t.Errorf("iso mask = %#x, want 0x1f", iso.WayMask)
	}
	if shared.WayMask != 0xfffe0 {
		t.Errorf("shared mask = %#x, want 0xfffe0", shared.WayMask)
	}
	if iso.WayMask&shared.WayMask != 0 {
		t.Error("way masks overlap")
	}
	if iso.MBAPercent != 20 || shared.MBAPercent != 80 {
		t.Errorf("MBA = %d%%, %d%%", iso.MBAPercent, shared.MBAPercent)
	}
}

func TestPlanAppViews(t *testing.T) {
	plan, err := BuildPlan(machine.DefaultSpec(), arqStyleAlloc())
	if err != nil {
		t.Fatal(err)
	}
	// Xapian touches its isolated ways plus the shared ways (CLOS mask
	// union, the ARQ semantics).
	if got := plan.AppMask("xapian"); got != 0x1f|0xfffe0 {
		t.Errorf("xapian mask = %#x", got)
	}
	if got := plan.AppMask("stream"); got != 0xfffe0 {
		t.Errorf("stream mask = %#x", got)
	}
	cores := plan.AppCores("xapian")
	if len(cores) != 10 {
		t.Errorf("xapian cores = %v, want all ten", cores)
	}
	if got := plan.AppCores("stream"); len(got) != 8 || got[0] != 2 {
		t.Errorf("stream cores = %v, want 2-9", got)
	}
}

func TestPlanMasksAlwaysContiguousAndDisjoint(t *testing.T) {
	spec := machine.DefaultSpec()
	f := func(c1, w1, c2 uint8) bool {
		cores1 := int(c1)%5 + 1
		ways1 := int(w1)%10 + 1
		cores2 := int(c2) % (spec.Cores - cores1)
		alloc := machine.Allocation{Regions: []machine.Region{
			{Name: "iso:a", Kind: machine.Isolated, Cores: cores1, Ways: ways1, BWUnits: 3, Apps: []string{"a"}},
			{Name: "shared", Kind: machine.Shared, Cores: spec.Cores - cores1 - cores2, Ways: spec.LLCWays - ways1,
				BWUnits: 7, Apps: []string{"a", "b"}},
		}}
		plan, err := BuildPlan(spec, alloc)
		if err != nil {
			return false
		}
		var union uint64
		for _, cl := range plan.Classes {
			if !ContiguousMask(cl.WayMask) {
				return false
			}
			if union&cl.WayMask != 0 {
				return false
			}
			union |= cl.WayMask
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBuildPlanRejectsOvercommit(t *testing.T) {
	alloc := machine.Allocation{Regions: []machine.Region{{
		Name: "shared", Kind: machine.Shared, Cores: 99, Ways: 20, BWUnits: 10, Apps: []string{"a"},
	}}}
	if _, err := BuildPlan(machine.DefaultSpec(), alloc); err == nil {
		t.Error("overcommitted allocation planned")
	}
}

func TestContiguousMask(t *testing.T) {
	for mask, want := range map[uint64]bool{
		0: true, 1: true, 0b111: true, 0b11100: true,
		0b101: false, 0b11011: false,
	} {
		if got := ContiguousMask(mask); got != want {
			t.Errorf("ContiguousMask(%#b) = %v", mask, got)
		}
	}
}

func TestCoreListFormatting(t *testing.T) {
	cases := []struct {
		cores []int
		want  string
	}{
		{nil, ""},
		{[]int{3}, "3"},
		{[]int{0, 1, 2}, "0-2"},
		{[]int{0, 2, 3, 7}, "0,2-3,7"},
	}
	for _, c := range cases {
		cl := CLOS{Cores: c.cores}
		if got := cl.CoreList(); got != c.want {
			t.Errorf("CoreList(%v) = %q, want %q", c.cores, got, c.want)
		}
	}
}

func TestPlanString(t *testing.T) {
	plan, err := BuildPlan(machine.DefaultSpec(), arqStyleAlloc())
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	for _, want := range []string{"CLOS0", "CLOS1", "L3=1f", "MBA=80%"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
}

func TestSimHostApplies(t *testing.T) {
	x := workload.MustLC("xapian")
	st := workload.MustBE("stream")
	engine, err := sim.New(sim.Config{
		Spec: machine.DefaultSpec(),
		Seed: 1,
		Apps: []sim.AppConfig{
			{LC: &x, Load: trace.Constant(0.2)},
			{BE: &st},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	host := NewSimHost(engine)
	if host.Spec() != machine.DefaultSpec() {
		t.Error("Spec mismatch")
	}
	good := machine.Allocation{Regions: []machine.Region{
		{Name: "iso:xapian", Kind: machine.Isolated, Cores: 4, Ways: 8, BWUnits: 4, Apps: []string{"xapian"}},
		{Name: "shared", Kind: machine.Shared, Cores: 6, Ways: 12, BWUnits: 6, Apps: []string{"stream", "xapian"}},
	}}
	if err := host.Apply(good); err != nil {
		t.Fatalf("valid allocation rejected: %v", err)
	}
	if !host.Engine().Allocation().Equal(good) {
		t.Error("allocation not installed")
	}
	bad := good.Clone()
	bad.Regions[0].Cores = 40
	if err := host.Apply(bad); err == nil {
		t.Error("overcommitted allocation applied")
	}
}
