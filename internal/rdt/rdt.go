// Package rdt is the resource-control host layer: the interface through
// which the Ah-Q controller applies an allocation to a machine, and a
// translation from region-based allocations to Intel RDT configuration —
// CAT classes of service with contiguous way bitmasks, MBA throttling
// percentages, and taskset-style core lists. On the paper's testbed this
// layer would shell out to resctrl; in this reproduction the simulator
// implements the same interface.
package rdt

import (
	"fmt"
	"sort"
	"strings"

	"ahq/internal/machine"
)

// Host abstracts whatever enforces an allocation: the simulator here, or a
// real resctrl/taskset backend on hardware.
type Host interface {
	// Spec describes the controllable node.
	Spec() machine.Spec
	// Apply enforces the allocation.
	Apply(machine.Allocation) error
}

// CLOS is one class of service in a CAT/MBA plan: the concrete hardware
// configuration for one region.
type CLOS struct {
	// ID is the class index (CLOS0, CLOS1, ... as in resctrl groups).
	ID int
	// Region is the region this class enforces.
	Region string
	// Cores lists the core IDs assigned to the class, ascending.
	Cores []int
	// WayMask is the CAT capacity bitmask; Intel CAT requires the set
	// bits to be contiguous.
	WayMask uint64
	// MBAPercent is the memory-bandwidth throttle (10-100 in steps of 10).
	MBAPercent int
	// Apps lists the member applications (whose tasks join the class).
	Apps []string
}

// MaskString renders the way mask in resctrl hex form.
func (c CLOS) MaskString() string { return fmt.Sprintf("%x", c.WayMask) }

// CoreList renders the cores in taskset list form, e.g. "0-2,5".
func (c CLOS) CoreList() string {
	if len(c.Cores) == 0 {
		return ""
	}
	var parts []string
	start, prev := c.Cores[0], c.Cores[0]
	flush := func() {
		if start == prev {
			parts = append(parts, fmt.Sprint(start))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, c := range c.Cores[1:] {
		if c == prev+1 {
			prev = c
			continue
		}
		flush()
		start, prev = c, c
	}
	flush()
	return strings.Join(parts, ",")
}

// Plan is a complete hardware configuration for one allocation.
type Plan struct {
	Classes []CLOS
}

// BuildPlan lays out an allocation onto concrete hardware resources:
// regions receive disjoint, ascending core ID ranges and disjoint,
// contiguous way masks (low bits first), in region order. Empty regions
// are skipped. ARQ-style membership (an application in both an isolated
// and a shared region) is expressed in resctrl by the union mask; the plan
// records per-region classes and the per-application effective mask can be
// obtained with AppMask.
func BuildPlan(spec machine.Spec, a machine.Allocation) (*Plan, error) {
	if err := a.Validate(spec, appsOf(a)); err != nil {
		return nil, err
	}
	plan := &Plan{}
	nextCore, nextWay := 0, 0
	id := 0
	for _, g := range a.Regions {
		if g.Empty() {
			continue
		}
		cl := CLOS{ID: id, Region: g.Name, Apps: append([]string(nil), g.Apps...)}
		for i := 0; i < g.Cores; i++ {
			cl.Cores = append(cl.Cores, nextCore)
			nextCore++
		}
		if g.Ways > 0 {
			cl.WayMask = ((uint64(1) << g.Ways) - 1) << nextWay
			nextWay += g.Ways
		}
		if spec.MemBWUnits > 0 {
			cl.MBAPercent = 100 * g.BWUnits / spec.MemBWUnits
			if cl.MBAPercent == 0 && g.BWUnits > 0 {
				cl.MBAPercent = 10
			}
		}
		plan.Classes = append(plan.Classes, cl)
		id++
	}
	return plan, nil
}

// AppMask returns the union way mask an application's tasks may touch: its
// isolated class's mask OR-ed with its shared class's mask.
func (p *Plan) AppMask(app string) uint64 {
	var mask uint64
	for _, cl := range p.Classes {
		for _, a := range cl.Apps {
			if a == app {
				mask |= cl.WayMask
			}
		}
	}
	return mask
}

// AppCores returns the sorted union of core IDs an application may run on.
func (p *Plan) AppCores(app string) []int {
	seen := map[int]bool{}
	for _, cl := range p.Classes {
		member := false
		for _, a := range cl.Apps {
			if a == app {
				member = true
				break
			}
		}
		if !member {
			continue
		}
		for _, c := range cl.Cores {
			seen[c] = true
		}
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// String renders the plan like a resctrl schemata dump.
func (p *Plan) String() string {
	var b strings.Builder
	for _, cl := range p.Classes {
		fmt.Fprintf(&b, "CLOS%d %-16s cores=%-8s L3=%s MBA=%d%% apps=%s\n",
			cl.ID, cl.Region, cl.CoreList(), cl.MaskString(), cl.MBAPercent,
			strings.Join(cl.Apps, ","))
	}
	return b.String()
}

// ContiguousMask reports whether a way mask satisfies CAT's contiguity
// requirement.
func ContiguousMask(mask uint64) bool {
	if mask == 0 {
		return true
	}
	for mask&1 == 0 {
		mask >>= 1
	}
	return mask&(mask+1) == 0
}

func appsOf(a machine.Allocation) []string {
	seen := map[string]bool{}
	var out []string
	for _, g := range a.Regions {
		for _, app := range g.Apps {
			if !seen[app] {
				seen[app] = true
				out = append(out, app)
			}
		}
	}
	return out
}
