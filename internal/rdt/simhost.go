package rdt

import (
	"ahq/internal/machine"
	"ahq/internal/sim"
)

// SimHost adapts the simulator to the Host interface, validating each
// allocation through the CLOS planner first so that anything the controller
// applies is also expressible as real CAT/MBA configuration.
type SimHost struct {
	engine *sim.Engine
}

// NewSimHost wraps an engine.
func NewSimHost(engine *sim.Engine) *SimHost { return &SimHost{engine: engine} }

// Spec implements Host.
func (h *SimHost) Spec() machine.Spec { return h.engine.Spec() }

// Apply implements Host: it first lays the allocation out as a CLOS plan
// (catching anything a real RDT host could not express) and then installs
// it into the simulator.
func (h *SimHost) Apply(a machine.Allocation) error {
	if _, err := BuildPlan(h.engine.Spec(), a); err != nil {
		return err
	}
	return h.engine.SetAllocation(a)
}

// Engine exposes the wrapped simulator.
func (h *SimHost) Engine() *sim.Engine { return h.engine }

var _ Host = (*SimHost)(nil)
