// Package queueing provides analytic M/M/c results (Erlang-C waiting
// probability, mean and tail sojourn times). The workload models are
// calibrated against these formulas, and the simulator's solo behaviour is
// validated against them in tests: an LC application with t worker threads
// on >= t cores behaves as an M/G/t queue, for which the M/M/t results are a
// close guide at the loads the paper uses.
package queueing

import (
	"errors"
	"math"
)

// ErrUnstable is returned when the offered load meets or exceeds capacity.
var ErrUnstable = errors.New("queueing: offered load >= capacity (rho >= 1)")

// ErlangC returns the probability that an arriving job must wait in an
// M/M/c queue with offered load a = lambda/mu (in Erlangs) and c servers.
func ErlangC(c int, a float64) (float64, error) {
	if c <= 0 {
		return 0, errors.New("queueing: need at least one server")
	}
	if a < 0 {
		return 0, errors.New("queueing: offered load must be non-negative")
	}
	rho := a / float64(c)
	if rho >= 1 {
		return 1, ErrUnstable
	}
	// Iterative Erlang-B, then convert to Erlang-C; numerically stable for
	// any c.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b / (1 - rho*(1-b)), nil
}

// MMc describes a stable M/M/c queue.
type MMc struct {
	// Servers is c, the number of servers.
	Servers int
	// ArrivalRate is lambda in jobs per millisecond.
	ArrivalRate float64
	// ServiceRate is mu in jobs per millisecond per server.
	ServiceRate float64
}

// Rho returns the per-server utilisation lambda/(c*mu).
func (q MMc) Rho() float64 {
	return q.ArrivalRate / (float64(q.Servers) * q.ServiceRate)
}

// WaitProbability returns the Erlang-C probability of queueing.
func (q MMc) WaitProbability() (float64, error) {
	return ErlangC(q.Servers, q.ArrivalRate/q.ServiceRate)
}

// MeanWait returns the mean time in queue (excluding service), ms.
func (q MMc) MeanWait() (float64, error) {
	pw, err := q.WaitProbability()
	if err != nil {
		return math.Inf(1), err
	}
	c := float64(q.Servers)
	return pw / (c*q.ServiceRate - q.ArrivalRate), nil
}

// MeanSojourn returns the mean total time in system, ms.
func (q MMc) MeanSojourn() (float64, error) {
	w, err := q.MeanWait()
	if err != nil {
		return math.Inf(1), err
	}
	return w + 1/q.ServiceRate, nil
}

// WaitTail returns P(Wq > t): the probability the queueing delay exceeds t
// ms. For M/M/c this is Pw * exp(-(c*mu-lambda) t).
func (q MMc) WaitTail(t float64) (float64, error) {
	pw, err := q.WaitProbability()
	if err != nil {
		return 1, err
	}
	c := float64(q.Servers)
	return pw * math.Exp(-(c*q.ServiceRate-q.ArrivalRate)*t), nil
}

// WaitPercentile returns the p-quantile of the queueing delay in ms
// (0 when the no-wait probability already exceeds p).
func (q MMc) WaitPercentile(p float64) (float64, error) {
	pw, err := q.WaitProbability()
	if err != nil {
		return math.Inf(1), err
	}
	if 1-pw >= p {
		return 0, nil
	}
	c := float64(q.Servers)
	return math.Log(pw/(1-p)) / (c*q.ServiceRate - q.ArrivalRate), nil
}

// SojournPercentileMM1 returns the exact p-quantile of total sojourn time
// for the single-server case (c == 1), where sojourn is exponential with
// rate mu - lambda.
func SojournPercentileMM1(lambda, mu, p float64) (float64, error) {
	if lambda >= mu {
		return math.Inf(1), ErrUnstable
	}
	return -math.Log(1-p) / (mu - lambda), nil
}

// MGc approximates an M/G/c queue via the Allen-Cunneen correction: the
// M/M/c waiting time scaled by (1 + CV^2)/2, where CV is the service-time
// coefficient of variation. Exact for exponential service (CV = 1), good to
// a few percent at the utilisations the evaluation uses.
type MGc struct {
	// Servers is c.
	Servers int
	// ArrivalRate is lambda in jobs per millisecond.
	ArrivalRate float64
	// MeanServiceMs is E[S].
	MeanServiceMs float64
	// ServiceCV2 is the squared coefficient of variation of S.
	ServiceCV2 float64
}

// base returns the underlying M/M/c with the same mean service.
func (q MGc) base() MMc {
	return MMc{Servers: q.Servers, ArrivalRate: q.ArrivalRate, ServiceRate: 1 / q.MeanServiceMs}
}

// Rho returns the per-server utilisation.
func (q MGc) Rho() float64 { return q.base().Rho() }

// MeanWait returns the Allen-Cunneen mean queueing delay in ms.
func (q MGc) MeanWait() (float64, error) {
	w, err := q.base().MeanWait()
	if err != nil {
		return math.Inf(1), err
	}
	return w * (1 + q.ServiceCV2) / 2, nil
}

// WaitPercentile approximates the p-quantile of the queueing delay by
// scaling the M/M/c percentile with the same Allen-Cunneen factor.
func (q MGc) WaitPercentile(p float64) (float64, error) {
	w, err := q.base().WaitPercentile(p)
	if err != nil {
		return math.Inf(1), err
	}
	return w * (1 + q.ServiceCV2) / 2, nil
}

// LogNormalCV2 returns the squared coefficient of variation of a
// log-normal with the given sigma: exp(sigma^2) - 1.
func LogNormalCV2(sigma float64) float64 {
	return math.Exp(sigma*sigma) - 1
}
