package queueing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestErlangCKnownValues(t *testing.T) {
	// Textbook values: C(c, a) for offered load a Erlangs on c servers.
	cases := []struct {
		c    int
		a    float64
		want float64
	}{
		{1, 0.5, 0.5},       // M/M/1: C = rho
		{2, 1.0, 1.0 / 3.0}, // classic two-server result
		{10, 8.0, 0.4092},   // tables
	}
	for _, c := range cases {
		got, err := ErlangC(c.c, c.a)
		if err != nil {
			t.Fatalf("ErlangC(%d, %g): %v", c.c, c.a, err)
		}
		if math.Abs(got-c.want) > 5e-4 {
			t.Errorf("ErlangC(%d, %g) = %.4f, want %.4f", c.c, c.a, got, c.want)
		}
	}
}

func TestErlangCErrors(t *testing.T) {
	if _, err := ErlangC(0, 1); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := ErlangC(2, -1); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := ErlangC(2, 2); !errors.Is(err, ErrUnstable) {
		t.Errorf("rho=1: err = %v, want ErrUnstable", err)
	}
}

func TestErlangCProperties(t *testing.T) {
	f := func(cRaw uint8, rhoRaw uint16) bool {
		c := int(cRaw)%32 + 1
		rho := float64(rhoRaw%999) / 1000 // [0, 0.998]
		a := rho * float64(c)
		p, err := ErlangC(c, a)
		if err != nil {
			return false
		}
		if p < 0 || p > 1 {
			return false
		}
		// More servers at equal utilisation queue less.
		p2, err := ErlangC(c+1, rho*float64(c+1))
		return err == nil && p2 <= p+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMM1ClosedForms(t *testing.T) {
	q := MMc{Servers: 1, ArrivalRate: 0.5, ServiceRate: 1}
	w, err := q.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	// M/M/1: Wq = rho/(mu-lambda) = 0.5/0.5 = 1.
	if math.Abs(w-1) > 1e-9 {
		t.Errorf("MeanWait = %g, want 1", w)
	}
	s, err := q.MeanSojourn()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-2) > 1e-9 {
		t.Errorf("MeanSojourn = %g, want 2", s)
	}
	p95, err := SojournPercentileMM1(0.5, 1, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	want := -math.Log(0.05) / 0.5
	if math.Abs(p95-want) > 1e-9 {
		t.Errorf("SojournPercentileMM1 = %g, want %g", p95, want)
	}
}

func TestWaitPercentileConsistentWithTail(t *testing.T) {
	q := MMc{Servers: 4, ArrivalRate: 3.0, ServiceRate: 1}
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		tp, err := q.WaitPercentile(p)
		if err != nil {
			t.Fatal(err)
		}
		if tp == 0 {
			pw, _ := q.WaitProbability()
			if 1-pw < p {
				t.Errorf("p=%g: percentile 0 but no-wait prob %g < p", p, 1-pw)
			}
			continue
		}
		tail, err := q.WaitTail(tp)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tail-(1-p)) > 1e-9 {
			t.Errorf("p=%g: P(W > t_p) = %g, want %g", p, tail, 1-p)
		}
	}
}

func TestUnstableQueues(t *testing.T) {
	q := MMc{Servers: 2, ArrivalRate: 3, ServiceRate: 1}
	if _, err := q.MeanWait(); !errors.Is(err, ErrUnstable) {
		t.Error("unstable MeanWait should error")
	}
	if _, err := q.WaitPercentile(0.95); !errors.Is(err, ErrUnstable) {
		t.Error("unstable WaitPercentile should error")
	}
	if _, err := SojournPercentileMM1(2, 1, 0.95); !errors.Is(err, ErrUnstable) {
		t.Error("unstable MM1 percentile should error")
	}
}

func TestRho(t *testing.T) {
	q := MMc{Servers: 4, ArrivalRate: 2, ServiceRate: 1}
	if got := q.Rho(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Rho = %g", got)
	}
}

func TestMGcReducesToMMcForExponential(t *testing.T) {
	// CV^2 = 1 (exponential service): Allen-Cunneen is exact and equals
	// the M/M/c result.
	mgc := MGc{Servers: 4, ArrivalRate: 3, MeanServiceMs: 1, ServiceCV2: 1}
	mmc := MMc{Servers: 4, ArrivalRate: 3, ServiceRate: 1}
	wg, err := mgc.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	wm, err := mmc.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wg-wm) > 1e-12 {
		t.Errorf("MGc(CV2=1) wait %g != MMc wait %g", wg, wm)
	}
}

func TestMGcVarianceScaling(t *testing.T) {
	// Doubling (1+CV^2) doubles the mean wait; deterministic service
	// (CV2=0) waits half as long as exponential.
	det := MGc{Servers: 2, ArrivalRate: 1.5, MeanServiceMs: 1, ServiceCV2: 0}
	exp := MGc{Servers: 2, ArrivalRate: 1.5, MeanServiceMs: 1, ServiceCV2: 1}
	wd, err := det.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	we, err := exp.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(2*wd-we) > 1e-12 {
		t.Errorf("deterministic wait %g not half of exponential %g", wd, we)
	}
}

func TestMGcUnstable(t *testing.T) {
	q := MGc{Servers: 1, ArrivalRate: 2, MeanServiceMs: 1, ServiceCV2: 1}
	if _, err := q.MeanWait(); !errors.Is(err, ErrUnstable) {
		t.Error("unstable MGc accepted")
	}
	if _, err := q.WaitPercentile(0.95); !errors.Is(err, ErrUnstable) {
		t.Error("unstable MGc percentile accepted")
	}
}

func TestLogNormalCV2(t *testing.T) {
	if got := LogNormalCV2(0); got != 0 {
		t.Errorf("CV2(0) = %g", got)
	}
	// sigma = 1: CV^2 = e - 1.
	if got := LogNormalCV2(1); math.Abs(got-(math.E-1)) > 1e-12 {
		t.Errorf("CV2(1) = %g", got)
	}
}
