package experiments

import (
	"fmt"

	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sched/arq"
)

func init() {
	register(Descriptor{
		ID:    "ablation-interval",
		Title: "Ablation: ARQ monitoring interval (250 ms / 500 ms / 1 s / 2 s)",
		Run:   runAblationInterval,
	})
	register(Descriptor{
		ID:    "ablation-arq",
		Title: "Ablation: ARQ design knobs (rollback, 60 s ban, shared region)",
		Run:   runAblationARQ,
	})
	register(Descriptor{
		ID:    "ablation-ri",
		Title: "Ablation: relative importance RI sweep",
		Run:   runAblationRI,
	})
}

// runAblationInterval sweeps the monitoring interval, the design choice
// discussed at the end of Section IV-B: shorter intervals react faster but
// measure noisier tails; longer ones stretch each violation.
func runAblationInterval(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "ablation-interval", Title: "Monitoring interval sweep"}
	tab := Table{
		Caption: "ARQ on Xapian 70% + Moses/Img-dnn 20% + Stream",
		Columns: []string{"interval (ms)", "violations", "adjustments", "mean E_LC", "mean E_S"},
	}
	// runMix fills the run mode's horizons even though only EpochMs is
	// customised here (it used to silently fall back to core defaults).
	epochs := []float64{250, 500, 1000, 2000}
	p := newPool(cfg)
	futs := make([]*future[*core.Result], len(epochs))
	for i, epoch := range epochs {
		f, err := StrategyByName("arq")
		if err != nil {
			return nil, err
		}
		futs[i] = runMixAsync(p, cfg, machine.DefaultSpec(),
			standardMix(0.70, 0.20, 0.20, "stream"), f,
			core.Options{EpochMs: epoch})
	}
	for i, epoch := range epochs {
		run, err := futs[i].wait()
		if err != nil {
			return nil, err
		}
		tab.AddRow(fmt.Sprintf("%.0f", epoch), run.TotalViolationEpochs, run.Adjustments,
			run.MeanELC, run.MeanES)
	}
	tab.Notes = append(tab.Notes, "paper settles on 500 ms (Section IV-B)")
	res.Tables = append(res.Tables, tab)
	return res, nil
}

// runAblationARQ toggles ARQ's three distinctive mechanisms: the entropy
// rollback, the 60 s penalty ban, and the shared region itself (without it
// ARQ degenerates into a strict partitioner).
func runAblationARQ(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "ablation-arq", Title: "ARQ design-knob ablation"}
	tab := Table{
		Caption: "Xapian 70% + Moses/Img-dnn 20% + Stream",
		Columns: []string{"variant", "violations", "adjustments", "mean E_LC", "mean E_BE", "mean E_S"},
	}
	variants := []struct {
		label string
		make  func() sched.Strategy
	}{
		{"arq (full)", func() sched.Strategy { return arq.Default() }},
		{"no rollback", func() sched.Strategy {
			c := arq.DefaultConfig()
			c.DisableRollback = true
			return arq.New(c)
		}},
		{"no 60s ban", func() sched.Strategy {
			c := arq.DefaultConfig()
			c.DisableBan = true
			return arq.New(c)
		}},
		{"no panic preemption", func() sched.Strategy {
			c := arq.DefaultConfig()
			c.PanicUnits = 1
			return arq.New(c)
		}},
		{"strict partitioning (parties)", nil}, // filled below
	}
	p := newPool(cfg)
	futs := make([]*future[*core.Result], len(variants))
	for i, v := range variants {
		var f StrategyFactory
		if v.make != nil {
			mk := v.make
			f = StrategyFactory{Name: v.label, New: func(int64) sched.Strategy { return mk() }}
		} else {
			var err error
			f, err = StrategyByName("parties")
			if err != nil {
				return nil, err
			}
		}
		futs[i] = runMixAsync(p, cfg, machine.DefaultSpec(),
			standardMix(0.70, 0.20, 0.20, "stream"), f, core.Options{})
	}
	for i, v := range variants {
		run, err := futs[i].wait()
		if err != nil {
			return nil, err
		}
		tab.AddRow(v.label, run.TotalViolationEpochs, run.Adjustments,
			run.MeanELC, run.MeanEBE, run.MeanES)
	}
	res.Tables = append(res.Tables, tab)
	return res, nil
}

// runAblationRI sweeps the relative importance of LC over BE applications
// (Eq. 7). The measured latencies and IPCs barely change — RI re-weights
// the report — but the *controller* behaviour does change for ARQ, because
// E_S is its rollback signal.
func runAblationRI(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "ablation-ri", Title: "Relative importance sweep"}
	tab := Table{
		Caption: "ARQ on Xapian 50% + Moses/Img-dnn 20% + Stream",
		Columns: []string{"RI", "mean E_LC", "mean E_BE", "mean E_S", "yield"},
	}
	ris := []float64{0.5, 0.65, 0.8, 0.95}
	p := newPool(cfg)
	futs := make([]*future[*core.Result], len(ris))
	for i, ri := range ris {
		f, err := StrategyByName("arq")
		if err != nil {
			return nil, err
		}
		futs[i] = runMixAsync(p, cfg, machine.DefaultSpec(),
			standardMix(0.50, 0.20, 0.20, "stream"), f,
			core.Options{EpochMs: 500, RI: ri})
	}
	for i, ri := range ris {
		run, err := futs[i].wait()
		if err != nil {
			return nil, err
		}
		tab.AddRow(fmt.Sprintf("%.2f", ri), run.MeanELC, run.MeanEBE, run.MeanES, fmtPct(run.Yield))
	}
	tab.Notes = append(tab.Notes, "paper fixes RI=0.8; scarcity restricts the sensible range to [0.5,1]")
	res.Tables = append(res.Tables, tab)
	return res, nil
}
