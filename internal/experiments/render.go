package experiments

import (
	"fmt"
	"math"
	"strings"
)

// shades maps a [0,1] value onto a density glyph, darkest = worst
// interference, matching the paper's heatmap orientation.
var shades = []rune{' ', '░', '▒', '▓', '█'}

// Shade returns the glyph for an entropy value in [0,1]; NaN renders '?'.
func Shade(v float64) rune {
	if math.IsNaN(v) {
		return '?'
	}
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	idx := int(v * float64(len(shades)))
	if idx >= len(shades) {
		idx = len(shades) - 1
	}
	return shades[idx]
}

// Heatmap renders a labelled grid of [0,1] values as an ASCII-art block,
// one glyph per cell (doubled horizontally for aspect ratio), with a
// legend. Rows and values must agree in shape.
func Heatmap(title string, rowLabels, colLabels []string, values [][]float64) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	labelW := 0
	for _, l := range rowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	fmt.Fprintf(&b, "%*s ", labelW, "")
	for _, c := range colLabels {
		fmt.Fprintf(&b, "%-2s", firstRune(c))
	}
	b.WriteByte('\n')
	for i, row := range values {
		label := ""
		if i < len(rowLabels) {
			label = rowLabels[i]
		}
		fmt.Fprintf(&b, "%*s ", labelW, label)
		for _, v := range row {
			g := Shade(v)
			b.WriteRune(g)
			b.WriteRune(g)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%*s legend:", labelW, "")
	for i, g := range shades {
		lo := float64(i) / float64(len(shades))
		fmt.Fprintf(&b, " %c=%.1f+", g, lo)
	}
	b.WriteByte('\n')
	return b.String()
}

// firstRune returns the first rune of a label (column headers are
// compressed to one glyph per cell).
func firstRune(s string) string {
	for _, r := range s {
		return string(r)
	}
	return " "
}

// Sparkline renders a series of [0,1] values as a one-line bar chart, used
// by the Fig. 13 timeline.
var sparks = []rune{'▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'}

// Spark maps a [0,1] value to a bar glyph; NaN renders ' '.
func Spark(v float64) rune {
	if math.IsNaN(v) {
		return ' '
	}
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	idx := int(v * float64(len(sparks)))
	if idx >= len(sparks) {
		idx = len(sparks) - 1
	}
	return sparks[idx]
}

// Sparkline renders the whole series.
func Sparkline(values []float64) string {
	var b strings.Builder
	for _, v := range values {
		b.WriteRune(Spark(v))
	}
	return b.String()
}
