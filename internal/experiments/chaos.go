package experiments

import (
	"fmt"

	"ahq/internal/core"
	"ahq/internal/faults"
	"ahq/internal/machine"
	"ahq/internal/sim"
)

func init() {
	register(Descriptor{
		ID:    "chaos",
		Title: "Graceful degradation under injected faults (robustness extension)",
		Run:   runChaos,
	})
}

// chaosScenario is one seeded fault schedule, expressed in the faults plan
// DSL over controller epochs (500 ms each). Epochs 5-11 are inside the
// measured horizon of both Quick and full runs.
type chaosScenario struct {
	name string
	plan string
}

var chaosScenarios = []chaosScenario{
	{"none", ""},
	{"apply-burst", "apply@6x3"},
	{"apply-persist", "apply@6+"},
	{"telemetry", "drop@5,stale@7,nan@9x2"},
	{"panic-storm", "panic@5x3"},
	{"combined", "panic@5x2,apply@7+,drop@9x2"},
}

// chaosRun pairs a degraded run with the faults actually injected into it.
type chaosRun struct {
	res   *core.Result
	stats faults.Stats
}

// runChaosMix drives one strategy through one fault scenario on the
// standard Stream mix: the engine and the strategy are wrapped by one
// injector, so the run's Result.Incidents must account exactly for the
// injector's Stats — checked by the caller.
func runChaosMix(cfg RunConfig, planSpec string, f StrategyFactory) (chaosRun, error) {
	plan, err := faults.Parse(planSpec)
	if err != nil {
		return chaosRun{}, err
	}
	engine, err := sim.New(sim.Config{
		Spec: machine.DefaultSpec(),
		Seed: cfg.Seed,
		Apps: standardMix(0.50, 0.20, 0.20, "stream"),
	})
	if err != nil {
		return chaosRun{}, err
	}
	warm, dur := horizons(cfg)
	inj := faults.NewInjector(plan)
	res, err := core.Run(inj.Engine(engine), inj.Strategy(f.New(cfg.Seed)),
		core.Options{WarmupMs: warm, DurationMs: dur})
	if err != nil {
		return chaosRun{}, err
	}
	return chaosRun{res: res, stats: inj.Stats()}, nil
}

// accountingError cross-checks that every injected fault surfaced as
// exactly one incident of the matching kind (degradation must be
// observable, not silent), returning a description of any mismatch.
func accountingError(r chaosRun) error {
	checks := []struct {
		label    string
		injected int
		recorded int
	}{
		{"strategy panics", r.stats.StrategyPanics,
			r.res.CountIncidents(core.IncidentStrategyPanic)},
		{"apply failures", r.stats.ApplyFailures,
			r.res.CountIncidents(core.IncidentAllocationRejected) +
				r.res.CountIncidents(core.IncidentFallbackRejected)},
		{"telemetry drops", r.stats.TelemetryDrops,
			r.res.CountIncidents(core.IncidentTelemetryDropped)},
		{"stale replays", r.stats.TelemetryStales,
			r.res.CountIncidents(core.IncidentTelemetryStale)},
		{"metric corruptions", r.stats.MetricCorruptions,
			r.res.CountIncidents(core.IncidentTelemetryCorrupt)},
	}
	for _, c := range checks {
		if c.injected != c.recorded {
			return fmt.Errorf("chaos: %s: injected %d but recorded %d",
				c.label, c.injected, c.recorded)
		}
	}
	return nil
}

// runChaos sweeps fault scenarios x strategies and reports how E_S and
// QoS-violation epochs degrade under faults, plus the incident accounting
// that proves the controller survived them observably.
func runChaos(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "chaos", Title: "Graceful degradation under injected faults"}

	plans := Table{
		Caption: "fault scenarios (plan DSL over 500 ms controller epochs; + = persistent)",
		Columns: []string{"scenario", "plan"},
	}
	for _, sc := range chaosScenarios {
		p, err := faults.Parse(sc.plan)
		if err != nil {
			return nil, err
		}
		plans.AddRow(sc.name, p.String())
	}
	res.Tables = append(res.Tables, plans)

	strategies := []string{"parties", "clite", "arq"}
	p := newPool(cfg)
	futs := make(map[string]map[string]*future[chaosRun], len(strategies))
	for _, name := range strategies {
		f, err := StrategyByName(name)
		if err != nil {
			return nil, err
		}
		futs[name] = make(map[string]*future[chaosRun], len(chaosScenarios))
		for _, sc := range chaosScenarios {
			sc := sc
			futs[name][sc.name] = submit(p, func() (chaosRun, error) {
				return runChaosMix(cfg, sc.plan, f)
			})
		}
	}

	deg := Table{
		Caption: "degradation under faults (deltas vs the fault-free run of the same strategy)",
		Columns: []string{"strategy", "scenario", "mean E_S", "dE_S", "viol", "dviol",
			"incidents", "degraded epochs", "final alloc"},
		Notes: []string{"every run completes: panics are recovered, rejected applies fall back to last-known-good, held telemetry replaces NaN"},
	}
	breakdown := Table{
		Caption: "combined-scenario incident accounting (recorded incidents vs faults injected)",
		Columns: []string{"strategy", "panic", "rejected", "fallback", "dropped", "stale",
			"corrupt", "entropy-held", "recorded", "injected"},
		Notes: []string{"recorded counts panic+rejected+fallback+dropped+stale+corrupt; every injected fault is recorded as exactly one incident"},
	}
	for _, name := range strategies {
		var base chaosRun
		for _, sc := range chaosScenarios {
			run, err := futs[name][sc.name].wait()
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, sc.name, err)
			}
			if err := accountingError(run); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, sc.name, err)
			}
			if sc.name == "none" {
				base = run
			}
			r := run.res
			finalOK := "ok"
			if err := r.FinalAllocation.Validate(machine.DefaultSpec(),
				[]string{"xapian", "moses", "img-dnn", "stream"}); err != nil {
				finalOK = "INVALID"
			}
			deg.AddRow(name, sc.name, r.MeanES,
				fmt.Sprintf("%+.3f", r.MeanES-base.res.MeanES),
				r.TotalViolationEpochs,
				fmt.Sprintf("%+d", r.TotalViolationEpochs-base.res.TotalViolationEpochs),
				len(r.Incidents), r.DegradedEpochs, finalOK)
			if sc.name == "combined" {
				panics := r.CountIncidents(core.IncidentStrategyPanic)
				rejected := r.CountIncidents(core.IncidentAllocationRejected)
				fallback := r.CountIncidents(core.IncidentFallbackRejected)
				dropped := r.CountIncidents(core.IncidentTelemetryDropped)
				stale := r.CountIncidents(core.IncidentTelemetryStale)
				corrupt := r.CountIncidents(core.IncidentTelemetryCorrupt)
				breakdown.AddRow(name, panics, rejected, fallback, dropped, stale, corrupt,
					r.CountIncidents(core.IncidentEntropyHeld),
					panics+rejected+fallback+dropped+stale+corrupt,
					run.stats.Total())
			}
		}
	}
	res.Tables = append(res.Tables, deg, breakdown)
	return res, nil
}
