package experiments

import (
	"fmt"

	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sim"
)

func init() {
	register(Descriptor{
		ID:    "ext-bignode",
		Title: "Extension: does the strategy ordering transfer to a larger node?",
		Run:   runExtBigNode,
	})
}

// bigNodeSpec models a roomier server generation than the paper's testbed:
// 28 cores, an 11-way 38.5 MB LLC (Skylake-SP-like CAT geometry) and more
// bandwidth headroom.
func bigNodeSpec() machine.Spec {
	return machine.Spec{Cores: 28, LLCWays: 11, MemBWUnits: 10, MemBWGBps: 90}
}

// runExtBigNode reruns the central comparison on the larger node with a
// larger collocation (five LC applications, two BE applications). The
// geometry is deliberately different in kind: core-rich but way-poor
// (Skylake-SP CAT exposes only 11 ways). Two findings transfer from the
// 10-core node — ARQ beats the strict partitioners at low load, and CLITE
// struggles with the bigger search space — and one does not: with cores
// ample and ways the scarce dimension, the all-shared baselines match or
// beat ARQ at high load, because every way moved into an isolated region
// starves the other six applications of cache, and E_S noise lets that
// drift accumulate faster than the rollback can catch it. The paper does
// not explore way-poor geometries; this is a genuine limitation of
// ReT-greedy isolation, documented in EXPERIMENTS.md.
func runExtBigNode(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "ext-bignode", Title: "Strategy ordering on a 28-core node"}
	mkApps := func(xapianLoad float64) []sim.AppConfig {
		apps := []sim.AppConfig{
			lcAt("xapian", xapianLoad),
			lcAt("moses", 0.30),
			lcAt("img-dnn", 0.30),
			lcAt("masstree", 0.30),
			lcAt("silo", 0.30),
			beApp("stream"),
			beApp("fluidanimate"),
		}
		return apps
	}
	loads := []float64{0.20, 0.60, 0.90}
	strategies := AllStrategies()
	if cfg.Quick {
		loads = []float64{0.20, 0.90}
		strategies = []StrategyFactory{strategies[0], strategies[4]} // unmanaged, arq
	}
	tab := Table{
		Caption: "mean E_LC / E_S per strategy (5 LC + 2 BE on 28 cores, 11 ways, 90 GB/s)",
		Columns: []string{"strategy"},
	}
	for _, l := range loads {
		tab.Columns = append(tab.Columns, fmtPct(l)+" E_LC", fmtPct(l)+" E_S")
	}
	p := newPool(cfg)
	futs := make([][]*future[*core.Result], len(strategies))
	for si, f := range strategies {
		futs[si] = make([]*future[*core.Result], len(loads))
		for li, l := range loads {
			futs[si][li] = runMixAsync(p, cfg, bigNodeSpec(), mkApps(l), f, core.Options{})
		}
	}
	for si, f := range strategies {
		row := []string{f.Name}
		for li, l := range loads {
			run, err := futs[si][li].wait()
			if err != nil {
				return nil, fmt.Errorf("%s at %.0f%%: %w", f.Name, 100*l, err)
			}
			row = append(row,
				fmt.Sprintf("%.3f", run.MeanELC), fmt.Sprintf("%.3f", run.MeanES))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes,
		"low-load ordering transfers (ARQ < PARTIES/CLITE); at high load on this way-poor geometry the all-shared baselines win — see the runner's doc comment")
	res.Tables = append(res.Tables, tab)
	return res, nil
}
