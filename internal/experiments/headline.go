package experiments

import (
	"fmt"

	"ahq/internal/core"
	"ahq/internal/machine"
)

func init() {
	register(Descriptor{
		ID:    "headline",
		Title: "Abstract headline numbers: yield, E_S and low-load BE IPC vs PARTIES/CLITE",
		Run:   runHeadline,
	})
}

// runHeadline aggregates the abstract's claims over the Stream collocation
// grid (the paper's "experiments above" refers to the Fig. 8/9 sweeps):
//
//   - yield: ratio of satisfied LC applications, averaged over the grid
//     (paper: ARQ 85% vs PARTIES 60% and CLITE 65%);
//   - mean E_S over the grid (paper: ARQ 0.14 vs 0.22/0.21, i.e. -36.4% and
//     -33.3%);
//   - BE IPC at low load (paper: +63.8% over PARTIES, +37.1% over CLITE).
func runHeadline(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "headline", Title: "Headline comparison"}
	grid := []struct {
		xapian, fixed float64
	}{
		{0.10, 0.20}, {0.30, 0.20}, {0.50, 0.20}, {0.70, 0.20}, {0.90, 0.20},
		{0.10, 0.40}, {0.30, 0.40}, {0.50, 0.40}, {0.70, 0.40}, {0.90, 0.40},
	}
	lowLoad := []bool{true, true, true, false, false, true, false, false, false, false}
	if cfg.Quick {
		grid = grid[:4]
		lowLoad = lowLoad[:4]
	}
	tab := Table{
		Caption: "aggregates over the Stream collocation grid (Xapian 10-90%, Moses/Img-dnn 20/40%)",
		Columns: []string{"strategy", "yield", "mean E_S", "low-load BE IPC"},
	}
	// Full runs repeat the grid over three seeds to damp simulation
	// noise in the headline aggregates.
	repeats := 3
	if cfg.Quick {
		repeats = 1
	}
	type agg struct {
		yield, es, ipc float64
		n, nIPC        int
	}
	results := map[string]*agg{}
	order := []string{"parties", "clite", "arq"}
	p := newPool(cfg)
	type cell struct {
		fut *future[*core.Result]
		low bool
	}
	futs := make(map[string][]cell, len(order))
	for _, name := range order {
		f, err := StrategyByName(name)
		if err != nil {
			return nil, err
		}
		for rep := 0; rep < repeats; rep++ {
			repCfg := cfg
			repCfg.Seed = cfg.Seed + int64(rep)*101
			for i, g := range grid {
				futs[name] = append(futs[name], cell{
					fut: runMixAsync(p, repCfg, machine.DefaultSpec(),
						standardMix(g.xapian, g.fixed, g.fixed, "stream"), f, core.Options{}),
					low: lowLoad[i],
				})
			}
		}
	}
	for _, name := range order {
		a := &agg{}
		for _, c := range futs[name] {
			run, err := c.fut.wait()
			if err != nil {
				return nil, err
			}
			a.yield += run.Yield
			a.es += run.MeanES
			a.n++
			if c.low {
				a.ipc += appIPC(run, "stream")
				a.nIPC++
			}
		}
		a.yield /= float64(a.n)
		a.es /= float64(a.n)
		if a.nIPC > 0 {
			a.ipc /= float64(a.nIPC)
		}
		results[name] = a
		tab.AddRow(name, fmtPct(a.yield), a.es, fmt.Sprintf("%.3f", a.ipc))
	}
	res.Tables = append(res.Tables, tab)

	cmp := Table{
		Caption: "ARQ relative to the baselines",
		Columns: []string{"baseline", "yield delta (pts)", "E_S reduction", "low-load IPC gain"},
	}
	arq := results["arq"]
	for _, base := range []string{"parties", "clite"} {
		b := results[base]
		esRed := "-"
		if b.es > 0 {
			esRed = fmtPct((b.es - arq.es) / b.es)
		}
		ipcGain := "-"
		if b.ipc > 0 {
			ipcGain = fmtPct((arq.ipc - b.ipc) / b.ipc)
		}
		cmp.AddRow(base,
			fmt.Sprintf("%+.0f", 100*(arq.yield-b.yield)),
			esRed, ipcGain)
	}
	cmp.Notes = append(cmp.Notes,
		"paper: +25/+20 yield points, -36.4%/-33.3% E_S, +63.8%/+37.1% low-load IPC vs PARTIES/CLITE")
	res.Tables = append(res.Tables, cmp)
	return res, nil
}
