package experiments

import (
	"fmt"

	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sched/arq"
	"ahq/internal/sched/clite"
	"ahq/internal/sched/parties"
	"ahq/internal/sched/static"
	"ahq/internal/sim"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

// lcAt builds one LC application at a constant load fraction.
func lcAt(name string, load float64) sim.AppConfig {
	app := workload.MustLC(name)
	return sim.AppConfig{LC: &app, Load: trace.Constant(load)}
}

// lcTrace builds one LC application driven by a load trace.
func lcTrace(name string, ld trace.Load) sim.AppConfig {
	app := workload.MustLC(name)
	return sim.AppConfig{LC: &app, Load: ld}
}

// beApp builds one BE application.
func beApp(name string) sim.AppConfig {
	app := workload.MustBE(name)
	return sim.AppConfig{BE: &app}
}

// StrategyFactory builds a fresh strategy instance (strategies are stateful,
// so sweeps must not share them across runs).
type StrategyFactory struct {
	Name string
	New  func(seed int64) sched.Strategy
}

// AllStrategies returns the five strategies of the evaluation in the
// paper's presentation order.
func AllStrategies() []StrategyFactory {
	return []StrategyFactory{
		{"unmanaged", func(int64) sched.Strategy { return static.Unmanaged{} }},
		{"lc-first", func(int64) sched.Strategy { return static.LCFirst{} }},
		{"parties", func(int64) sched.Strategy { return parties.Default() }},
		{"clite", func(seed int64) sched.Strategy {
			cfg := clite.DefaultConfig()
			cfg.Seed = seed
			return clite.New(cfg)
		}},
		{"arq", func(int64) sched.Strategy { return arq.Default() }},
	}
}

// StrategyByName returns one factory.
func StrategyByName(name string) (StrategyFactory, error) {
	for _, f := range AllStrategies() {
		if f.Name == name {
			return f, nil
		}
	}
	return StrategyFactory{}, fmt.Errorf("experiments: unknown strategy %q", name)
}

// horizons returns (warmupMs, durationMs) for the run mode.
func horizons(cfg RunConfig) (float64, float64) {
	if cfg.Quick {
		return 2_000, 6_000
	}
	return 5_000, 20_000
}

// runMix builds an engine for the spec and applications and drives it under
// the factory's strategy.
func runMix(cfg RunConfig, spec machine.Spec, apps []sim.AppConfig, f StrategyFactory, opts core.Options) (*core.Result, error) {
	engine, err := sim.New(sim.Config{Spec: spec, Seed: cfg.Seed, Apps: apps, SharedSolves: cfg.Solves})
	if err != nil {
		return nil, err
	}
	// Apply the run mode's horizons only when the caller set neither; a
	// custom epoch alone (e.g. a monitoring-interval sweep) must not make
	// the run silently ignore cfg.Quick.
	if opts.WarmupMs == 0 && opts.DurationMs == 0 {
		warm, dur := horizons(cfg)
		opts.WarmupMs, opts.DurationMs = warm, dur
	}
	return core.Run(engine, f.New(cfg.Seed), opts)
}

// standardMix is the paper's primary collocation: Xapian (variable load),
// Moses and Img-dnn (fixed loads), plus one BE application.
func standardMix(xapianLoad, mosesLoad, imgLoad float64, be string) []sim.AppConfig {
	return []sim.AppConfig{
		lcAt("xapian", xapianLoad),
		lcAt("moses", mosesLoad),
		lcAt("img-dnn", imgLoad),
		beApp(be),
	}
}

// fmtPct renders a ratio as a percentage string.
func fmtPct(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }

// fmtMs renders a latency.
func fmtMs(v float64) string { return fmt.Sprintf("%.2f", v) }
