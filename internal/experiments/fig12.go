package experiments

import (
	"fmt"

	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sim"
)

func init() {
	register(Descriptor{
		ID:    "fig12",
		Title: "Fig. 12: six LC + two BE applications collocated (scale-up)",
		Run:   runFig12,
	})
}

// runFig12 doubles the number of collocated applications: all six Tailbench
// LC applications at 20% load plus Fluidanimate and Streamcluster, under
// PARTIES and ARQ. The paper's headline for this mix: ARQ drastically
// reduces the tails of the applications PARTIES starves (Moses, Sphinx) at
// the cost of a slight increase on Xapian, cutting E_S by ~36%.
func runFig12(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "fig12", Title: "6 LC + 2 BE collocation"}
	apps := []sim.AppConfig{
		lcAt("moses", 0.20),
		lcAt("xapian", 0.20),
		lcAt("img-dnn", 0.20),
		lcAt("sphinx", 0.20),
		lcAt("masstree", 0.20),
		lcAt("silo", 0.20),
		beApp("fluidanimate"),
		beApp("streamcluster"),
	}
	// Sphinx's second-scale requests need a longer horizon to produce a
	// meaningful p95 under an 8-way collocation.
	opts := core.Options{EpochMs: 500, WarmupMs: 15_000, DurationMs: 45_000}
	if cfg.Quick {
		opts = core.Options{EpochMs: 500, WarmupMs: 4_000, DurationMs: 10_000}
	}

	lat := Table{
		Caption: "run-level p95 (ms) per LC application and IPC per BE application",
		Columns: []string{"strategy", "moses", "xapian", "img-dnn", "sphinx", "masstree", "silo", "fluid IPC", "strmclst IPC", "E_S", "yield"},
	}
	p := newPool(cfg)
	names := []string{"parties", "arq"}
	futs := make([]*future[*core.Result], len(names))
	for i, name := range names {
		f, err := StrategyByName(name)
		if err != nil {
			return nil, err
		}
		futs[i] = runMixAsync(p, cfg, machine.DefaultSpec(), apps, f, opts)
	}
	for i, name := range names {
		run, err := futs[i].wait()
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, lc := range []string{"moses", "xapian", "img-dnn", "sphinx", "masstree", "silo"} {
			row = append(row, fmtMs(appP95(run, lc)))
		}
		row = append(row,
			fmt.Sprintf("%.2f", appIPC(run, "fluidanimate")),
			fmt.Sprintf("%.2f", appIPC(run, "streamcluster")),
			fmt.Sprintf("%.3f", run.MeanES),
			fmtPct(run.Yield))
		lat.Rows = append(lat.Rows, row)
	}
	lat.Notes = append(lat.Notes,
		"paper: ARQ cuts Moses 29.88->5.75 ms and Sphinx 7904->2514 ms vs PARTIES; E_S 0.33->0.21 (-36.4%)")
	res.Tables = append(res.Tables, lat)
	return res, nil
}
