package experiments

import (
	"reflect"
	"testing"
)

// TestFleetChaosReplaceBeatsNoReplace pins the experiment's headline
// claim at quick scale: at every nonzero crash fraction, failure-aware
// re-placement yields strictly lower fleet E_S than leaving the victims'
// applications dead.
func TestFleetChaosReplaceBeatsNoReplace(t *testing.T) {
	cells, err := fleetChaosSweep(RunConfig{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	byCell := map[[2]string]*fleetChaosCell{}
	for i := range cells {
		c := &cells[i]
		byCell[[2]string{c.label, c.mode}] = c
	}
	for _, frac := range []string{"1%", "5%", "10%"} {
		none, replace := byCell[[2]string{frac, "none"}], byCell[[2]string{frac, "replace"}]
		if none == nil || replace == nil {
			t.Fatalf("sweep missing cells for crash fraction %s", frac)
		}
		if !(replace.run.GlobalES < none.run.GlobalES) {
			t.Errorf("%s crash: replace E_S %g not below no-replace %g",
				frac, replace.run.GlobalES, none.run.GlobalES)
		}
		if replace.run.Replacements == 0 {
			t.Errorf("%s crash: replace mode performed no re-placements", frac)
		}
		if none.run.Evictions != 0 {
			t.Errorf("%s crash: no-replace mode evicted %d apps", frac, none.run.Evictions)
		}
	}
	base := byCell[[2]string{"0%", "-"}]
	if base == nil || base.run.Stats.FailedNodes != 0 {
		t.Fatal("fault-free baseline missing or reporting failed nodes")
	}
}

// TestFleetChaosDeterministic: the sweep's printable numbers must be
// identical across runs and parallelism levels, crash victims included.
func TestFleetChaosDeterministic(t *testing.T) {
	type view struct {
		label, mode                        string
		es, yield                          float64
		failed, evicted, placed, abandoned int
	}
	sweep := func(parallel int) []view {
		cells, err := fleetChaosSweep(RunConfig{Seed: 42, Quick: true, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		var vs []view
		for _, c := range cells {
			vs = append(vs, view{c.label, c.mode, c.run.GlobalES, c.run.GlobalYield,
				c.run.Stats.FailedNodes, c.run.Evictions, c.run.Replacements, c.run.Abandoned})
		}
		return vs
	}
	a, b, c := sweep(1), sweep(7), sweep(0)
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
		t.Error("ext-fleetchaos sweep differs across -parallel 1/7/default")
	}
}
