package experiments

import "fmt"

func init() {
	register(Descriptor{
		ID:    "fig4",
		Title: "Fig. 4: space-time model — isolation vs. priority sharing of one resource slice",
		Run:   runFig4,
	})
}

// Fig. 4 of the paper is a deterministic illustration: three applications
// (LC1, LC2, BE) demand one resource slice over eight time slices, and
// three schemes are compared — (a) each running alone (demand pattern),
// (b) the slice isolated to LC1, and (c) the slice shared with LC
// priority, where every ownership change serves the new owner *with
// overhead* (the paper's triangle). The paper's counts: isolation denies
// 10 demands; sharing denies only 6, adds 4 overhead-served slices, and
// nearly doubles utilisation.

// fig4Demand encodes the demand pattern (1-based time slices).
var fig4Demand = map[string][]int{
	"LC1": {1, 2, 5, 6},
	"LC2": {2, 3, 4, 6, 7},
	"BE":  {1, 3, 5, 6, 8},
}

const fig4Slices = 8

// fig4Outcome tallies one scheme.
type fig4Outcome struct {
	served    int // full-speed served demands (ticks)
	overhead  int // served after an ownership change (triangles)
	denied    int // demands that could not use the slice (crosses)
	busySlice int // time slices in which the slice did useful work
}

func (o fig4Outcome) utilisation() float64 { return float64(o.busySlice) / fig4Slices }

// fig4Isolated: the slice belongs to owner exclusively.
func fig4Isolated(owner string) fig4Outcome {
	var out fig4Outcome
	demands := demandBySlice()
	for s := 1; s <= fig4Slices; s++ {
		for _, app := range []string{"LC1", "LC2", "BE"} {
			if !demands[s][app] {
				continue
			}
			if app == owner {
				out.served++
				out.busySlice++
			} else {
				out.denied++
			}
		}
	}
	return out
}

// fig4Shared: one app owns the slice per time slice — the highest-priority
// demander (LC1 > LC2 > BE). A new owner is served with overhead
// (triangle); a continuing owner at full speed (tick); other demanders are
// denied (cross).
func fig4Shared() fig4Outcome {
	var out fig4Outcome
	demands := demandBySlice()
	owner := "LC1"
	for s := 1; s <= fig4Slices; s++ {
		var winner string
		for _, app := range []string{"LC1", "LC2", "BE"} {
			if demands[s][app] {
				winner = app
				break
			}
		}
		for _, app := range []string{"LC1", "LC2", "BE"} {
			if demands[s][app] && app != winner {
				out.denied++
			}
		}
		if winner == "" {
			continue
		}
		out.busySlice++
		if winner == owner {
			out.served++
		} else {
			out.overhead++
			owner = winner
		}
	}
	return out
}

func demandBySlice() map[int]map[string]bool {
	m := make(map[int]map[string]bool, fig4Slices)
	for s := 1; s <= fig4Slices; s++ {
		m[s] = map[string]bool{}
	}
	for app, slices := range fig4Demand {
		for _, s := range slices {
			m[s][app] = true
		}
	}
	return m
}

func runFig4(RunConfig) (*Result, error) {
	res := &Result{ID: "fig4", Title: "Space-time resource model"}
	tab := Table{
		Caption: "one resource slice, eight time slices; LC1/LC2/BE demand as in Fig. 4(a)",
		Columns: []string{"scheme", "served (ticks)", "overhead (triangles)", "denied (crosses)", "utilisation"},
	}
	iso := fig4Isolated("LC1")
	tab.AddRow("(b) isolated to LC1", iso.served, iso.overhead, iso.denied, fmtPct(iso.utilisation()))
	sh := fig4Shared()
	tab.AddRow("(c) shared, LC priority", sh.served, sh.overhead, sh.denied, fmtPct(sh.utilisation()))
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("paper: crosses 10 -> 6, four triangles appear, utilisation nearly doubles (here %s -> %s)",
			fmtPct(iso.utilisation()), fmtPct(sh.utilisation())))
	res.Tables = append(res.Tables, tab)
	return res, nil
}
