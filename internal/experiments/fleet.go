package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"ahq/internal/cluster"
	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sim"
)

func init() {
	register(Descriptor{
		ID:    "ext-fleet",
		Title: "Extension: fleet-scale E_S — placement strategies from 100 to 5000 nodes",
		Run:   runExtFleet,
	})
}

// fleetSizes are the sweep points: large enough that placement quality is
// a fleet property, small enough that the sharded engine finishes on one
// box. Quick mode shrinks the fleet, not the methodology.
func fleetSizes(cfg RunConfig) []int {
	if cfg.Quick {
		return []int{20, 50}
	}
	return []int{100, 1000, 5000}
}

// fleetHorizons are deliberately shorter than the single-node sweeps:
// at 5000 nodes the statistic of interest is the cross-fleet aggregate,
// which converges over nodes rather than over simulated time.
func fleetHorizons(cfg RunConfig) (warm, dur float64) {
	if cfg.Quick {
		return 500, 1_500
	}
	return 1_000, 3_000
}

// fleetPopulation draws a synthetic datacenter workload: ~2.5 applications
// per node, ~70% latency-critical services from the Tailbench catalog at a
// small set of discrete loads, the rest best-effort batch. The discrete
// load grid is deliberate — real fleets run a handful of service templates
// at quantised autoscaler steps, which is exactly what makes cross-node
// solve sharing pay (identical mixes recur massively).
func fleetPopulation(seed int64, nodes int) []sim.AppConfig {
	rng := rand.New(rand.NewSource(seed))
	lcNames := []string{"xapian", "moses", "img-dnn", "silo", "masstree", "sphinx"}
	beNames := []string{"stream", "fluidanimate", "streamcluster"}
	loads := []float64{0.2, 0.35, 0.5, 0.7}
	count := nodes * 5 / 2
	apps := make([]sim.AppConfig, 0, count)
	for i := 0; i < count; i++ {
		if rng.Float64() < 0.7 {
			apps = append(apps, lcAt(lcNames[rng.Intn(len(lcNames))], loads[rng.Intn(len(loads))]))
		} else {
			apps = append(apps, beApp(beNames[rng.Intn(len(beNames))]))
		}
	}
	return apps
}

// runExtFleet is the datacenter-scale reading of the paper's thesis: E_S
// quantifies interference for a whole fleet, so it can rank placement
// strategies at 100, 1000 and 5000 nodes, not just schedulers on one box.
// Every fleet runs through the sharded cluster engine — nodes fan out over
// the worker pool and share one contention-solve cache — with per-node ARQ
// managing each box.
//
// The sweep is a screening comparison, so it runs under common random
// numbers: each node's seed derives from its (canonically ordered)
// application contents, not its index, which is the standard
// variance-reduction setup for comparing placements — two placements that
// put the same applications on a box see the identical box, and observed
// differences are placement differences, not seed noise. CRN is also what
// makes "simulate each unique node once per sweep" a theorem rather than a
// heuristic: identical contents are bit-identical simulations, collapsed
// within a fleet by DedupIdenticalNodes and across the whole sweep
// (placements and fleet sizes) by the sweep-scoped cluster.NodeCache,
// which replays completed node records by content-addressed key. Both
// layers are bit-exact by construction, so stdout is byte-identical with
// the node cache on or off and at every -parallel level (CI-enforced);
// wall-clock and cache traffic per row go to stderr.
func runExtFleet(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "ext-fleet", Title: "Fleet-scale placement comparison under per-node ARQ"}
	warm, dur := fleetHorizons(cfg)
	opts := core.Options{EpochMs: 500, WarmupMs: warm, DurationMs: dur}
	spec := machine.DefaultSpec()
	// One solve cache for the whole sweep: mixes recur across fleets as
	// well as within them, and sharing is bit-exact by construction.
	solves := sim.NewSolveCache()
	// One node-outcome cache for the whole sweep, same argument one level
	// up: node contents recur across placements and fleet sizes.
	var nodeCache *cluster.NodeCache
	if !cfg.FleetNodeCacheOff {
		nodeCache = cluster.NewNodeCache()
	}

	strategies := []struct {
		label string
		place func(apps []sim.AppConfig, nodes int) ([][]sim.AppConfig, error)
	}{
		{"random", func(a []sim.AppConfig, n int) ([][]sim.AppConfig, error) { return cluster.Random(a, n, cfg.Seed+1) }},
		{"round-robin", cluster.RoundRobin},
		{"pack", func(a []sim.AppConfig, n int) ([][]sim.AppConfig, error) { return cluster.Pack(a, n, 8) }},
		{"balanced", cluster.Balanced},
		{"scored", func(a []sim.AppConfig, n int) ([][]sim.AppConfig, error) { return cluster.Scored(a, n, spec) }},
	}

	tab := Table{
		Caption: "synthetic fleet (~2.5 apps/node, 70% LC) under per-node ARQ, sharded engine",
		Columns: []string{"nodes", "apps", "placement", "E_LC", "E_BE", "E_S", "yield", "viol rate"},
	}
	for _, nodes := range fleetSizes(cfg) {
		apps := fleetPopulation(cfg.Seed, nodes)
		for _, s := range strategies {
			start := time.Now() //ahqlint:allow detflow wall-clock timing goes to stderr only; stdout stays deterministic
			placement, err := s.place(apps, nodes)
			if err != nil {
				return nil, fmt.Errorf("%s at %d nodes: %w", s.label, nodes, err)
			}
			// A placement assigns a *set* of applications to each node;
			// the order its internals appended them in is an artifact.
			// Canonicalising intra-node order makes equal contents equal
			// simulations, which the CRN seeds, the dedup classing and
			// the sweep cache all key on.
			placement = cluster.CanonicalizePlacement(placement)
			seeds := make([]int64, len(placement))
			for i := range placement {
				seeds[i] = cluster.TemplateSeed(cfg.Seed, placement[i])
			}
			run, err := cluster.Run(cluster.Config{
				Spec:                spec,
				Seed:                cfg.Seed,
				NewStrategy:         func(int) sched.Strategy { return arqFactory() },
				Placement:           placement,
				Parallel:            cfg.Parallel,
				SharedSolves:        solves,
				NodeSeed:            func(i int) int64 { return seeds[i] },
				DedupIdenticalNodes: true,
				NodeCache:           nodeCache,
				StrategyDigest:      "arq:default",
			}, opts)
			if err != nil {
				return nil, fmt.Errorf("%s at %d nodes: %w", s.label, nodes, err)
			}
			tab.AddRow(nodes, len(apps), s.label,
				run.GlobalELC, run.GlobalEBE, run.GlobalES,
				fmtPct(run.GlobalYield), fmt.Sprintf("%.2f%%", 100*run.ViolationRate()))
			elapsed := time.Since(start).Round(time.Millisecond) //ahqlint:allow detflow wall-clock timing goes to stderr only; stdout stays deterministic
			fmt.Fprintf(os.Stderr, "(ext-fleet %d nodes %s: %v, %d/%d nodes simulated, %d node-cache hits, %d shared solve hits)\n",
				nodes, s.label, elapsed, run.Stats.NodesSimulated, run.Stats.NodesRun,
				run.Stats.NodeCacheHits, run.Stats.SharedSolveHits)
		}
	}
	tab.Notes = append(tab.Notes,
		"rows within a fleet size share one application population; only the placement differs",
		"common random numbers: node seeds derive from node contents, so equal contents are identical simulations across placements",
		"scored = interference-aware greedy (utilisation² + bandwidth² + LC/BE cross term); see DESIGN.md §10",
		"each unique node content simulates once per sweep (cluster.NodeCache, DESIGN.md §11); bit-exact, so the cache never moves a number")
	res.Tables = append(res.Tables, tab)
	return res, nil
}
