package experiments

import (
	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/workload"
)

func init() {
	register(Descriptor{
		ID:    "table2",
		Title: "Table II: LC, BE and system entropy under Unmanaged with 6-8 cores",
		Run:   runTable2,
	})
}

// runTable2 reproduces Table II: Xapian, Moses, Img-dnn at 20% load plus
// Fluidanimate under the Unmanaged strategy, with the node shrunk to 6, 7
// and 8 cores (all 20 LLC ways). For each core count it reports each LC
// application's TL_i0, TL_i1, M_i, A_i, R_i, ReT_i and Q_i, and the system
// row with E_LC, E_BE and E_S.
func runTable2(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "table2", Title: "Entropy vs processing units (Unmanaged)"}
	unmanaged, err := StrategyByName("unmanaged")
	if err != nil {
		return nil, err
	}
	tab := Table{
		Caption: "Xapian(20%) Moses(20%) Img-dnn(20%) + Fluidanimate, 20 LLC ways",
		Columns: []string{"Cores", "App", "TL_i0", "TL_i1", "M_i", "A_i", "R_i", "ReT_i", "Q_i", "E_LC", "E_BE", "E_S"},
	}
	p := newPool(cfg)
	coreCounts := []int{6, 7, 8}
	futs := make([]*future[*core.Result], len(coreCounts))
	for i, cores := range coreCounts {
		spec := machine.DefaultSpec().Shrink(cores, 20)
		futs[i] = runMixAsync(p, cfg, spec, standardMix(0.20, 0.20, 0.20, "fluidanimate"), unmanaged, core.Options{})
	}
	for i, cores := range coreCounts {
		run, err := futs[i].wait()
		if err != nil {
			return nil, err
		}
		var (
			sumA, sumR, sumReT float64
			nLC                int
		)
		for _, a := range run.Apps {
			if a.Spec.Class != workload.LC {
				continue
			}
			s := a.LCSample
			sumA += s.Tolerance()
			sumR += s.Interference()
			sumReT += s.RemainingTolerance()
			nLC++
			tab.AddRow(cores, a.Spec.Name,
				fmtMs(s.IdealMs), fmtMs(s.MeasuredMs), fmtMs(s.TargetMs),
				s.Tolerance(), s.Interference(), s.RemainingTolerance(), s.Intolerable(),
				"-", "-", "-")
		}
		if nLC > 0 {
			n := float64(nLC)
			tab.AddRow(cores, "System", "-", "-", "-",
				sumA/n, sumR/n, sumReT/n, "-",
				run.RunELC, run.RunEBE, run.RunES)
		}
	}
	tab.Notes = append(tab.Notes,
		"paper: E_S drops 0.55 -> 0.19 -> 0 as cores grow 6 -> 7 -> 8",
	)
	res.Tables = append(res.Tables, tab)
	return res, nil
}
