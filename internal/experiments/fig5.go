package experiments

import (
	"fmt"

	"ahq/internal/core"
	"ahq/internal/machine"
)

func init() {
	register(Descriptor{
		ID:    "fig5",
		Title: "Fig. 5: allocation snapshot, Xapian at 30% (PARTIES vs ARQ)",
		Run: func(cfg RunConfig) (*Result, error) {
			return runSnapshot(cfg, "fig5", 0.30)
		},
	})
	register(Descriptor{
		ID:    "fig6",
		Title: "Fig. 6: allocation snapshot, Xapian at 90% (PARTIES vs ARQ)",
		Run: func(cfg RunConfig) (*Result, error) {
			return runSnapshot(cfg, "fig6", 0.90)
		},
	})
}

// runSnapshot reproduces the allocation snapshots of Section IV-C: Xapian
// (30% or 90%), Moses and Img-dnn (20%) and Stream, under PARTIES and ARQ.
// It reports the converged allocation of each strategy — which share of
// cores and ways each application (or the shared region) ends up holding —
// plus the resulting entropies.
func runSnapshot(cfg RunConfig, id string, xapianLoad float64) (*Result, error) {
	res := &Result{ID: id, Title: fmt.Sprintf("Allocation snapshots, Xapian %s", fmtPct(xapianLoad))}
	spec := machine.DefaultSpec()
	p := newPool(cfg)
	names := []string{"parties", "arq"}
	futs := make([]*future[*core.Result], len(names))
	for i, name := range names {
		f, err := StrategyByName(name)
		if err != nil {
			return nil, err
		}
		futs[i] = runMixAsync(p, cfg, spec, standardMix(xapianLoad, 0.20, 0.20, "stream"), f, core.Options{})
	}
	for i, name := range names {
		run, err := futs[i].wait()
		if err != nil {
			return nil, err
		}
		tab := Table{
			Caption: fmt.Sprintf("%s converged allocation (E_LC=%.3f, E_BE=%.3f, E_S=%.3f)",
				name, run.MeanELC, run.MeanEBE, run.MeanES),
			Columns: []string{"region", "cores", "%cores", "ways", "%ways", "bw units"},
		}
		for _, g := range run.FinalAllocation.Regions {
			if g.Empty() {
				continue
			}
			tab.AddRow(g.Name,
				g.Cores, fmtPct(float64(g.Cores)/float64(spec.Cores)),
				g.Ways, fmtPct(float64(g.Ways)/float64(spec.LLCWays)),
				g.BWUnits)
		}
		res.Tables = append(res.Tables, tab)
	}
	if xapianLoad < 0.5 {
		res.Tables[len(res.Tables)-1].Notes = []string{
			"paper: at 30% ARQ isolates only Xapian (10% cores, 25% ways) and pools the rest; PARTIES isolates everyone and leaves the BE app 10% cores",
		}
	} else {
		res.Tables[len(res.Tables)-1].Notes = []string{
			"paper: at 90% ARQ gives Xapian 70% cores / 65% ways by sharing the other LC apps; PARTIES can only give 50%/40%",
		}
	}
	return res, nil
}
