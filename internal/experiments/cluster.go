package experiments

import (
	"fmt"

	"ahq/internal/cluster"
	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sim"
)

func init() {
	register(Descriptor{
		ID:    "ext-cluster",
		Title: "Extension: datacenter-level E_S across two nodes, placement comparison",
		Run:   runExtCluster,
	})
}

// runExtCluster reads the paper's "interference within a datacenter"
// definition at fleet scale: all six Tailbench services plus two BE
// applications spread over two 10-core nodes, each node managed by its own
// ARQ controller, with E_S computed over every application in the fleet.
// Three placements are compared — packed (consolidation-first),
// round-robin, and demand-balanced — showing that the same metric that
// ranks schedulers also ranks placements.
func runExtCluster(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "ext-cluster", Title: "Two-node placement comparison"}
	apps := []sim.AppConfig{
		lcAt("xapian", 0.50),
		lcAt("moses", 0.20),
		lcAt("img-dnn", 0.30),
		lcAt("masstree", 0.20),
		lcAt("silo", 0.20),
		lcAt("sphinx", 0.20),
		beApp("fluidanimate"),
		beApp("stream"),
	}
	warm, dur := horizons(cfg)
	opts := core.Options{EpochMs: 500, WarmupMs: warm, DurationMs: dur}

	placements := []struct {
		label string
		build func() ([][]sim.AppConfig, error)
	}{
		{"packed", func() ([][]sim.AppConfig, error) { return cluster.Pack(apps, 2, 12) }},
		{"round-robin", func() ([][]sim.AppConfig, error) { return cluster.RoundRobin(apps, 2) }},
		{"balanced", func() ([][]sim.AppConfig, error) { return cluster.Balanced(apps, 2) }},
	}
	tab := Table{
		Caption: "6 LC + 2 BE over two nodes under per-node ARQ",
		Columns: []string{"placement", "node0 apps", "node1 apps", "global E_LC", "global E_BE", "global E_S", "global yield"},
	}
	type clusterOut struct {
		placement [][]sim.AppConfig
		run       *cluster.Result
	}
	pl := newPool(cfg)
	futs := make([]*future[clusterOut], len(placements))
	for i, p := range placements {
		futs[i] = submit(pl, func() (clusterOut, error) {
			placement, err := p.build()
			if err != nil {
				return clusterOut{}, err
			}
			run, err := cluster.Run(cluster.Config{
				Spec:        machine.DefaultSpec(),
				Seed:        cfg.Seed,
				NewStrategy: func(int) sched.Strategy { return arqFactory() },
				Placement:   placement,
				// Nodes run inline: the experiment pool already bounds
				// concurrency across the three placements. The shared
				// solve cache is bit-exact, so threading it through
				// cannot change a printed byte.
				Parallel:     1,
				SharedSolves: pl.solves,
			}, opts)
			if err != nil {
				return clusterOut{}, err
			}
			return clusterOut{placement: placement, run: run}, nil
		})
	}
	for i, p := range placements {
		out, err := futs[i].wait()
		if err != nil {
			return nil, fmt.Errorf("placement %s: %w", p.label, err)
		}
		run := out.run
		tab.AddRow(p.label, len(out.placement[0]), len(out.placement[1]),
			run.GlobalELC, run.GlobalEBE, run.GlobalES, fmtPct(run.GlobalYield))
	}
	tab.Notes = append(tab.Notes,
		"the same E_S that ranks schedulers ranks placements: spreading demand beats consolidation under contention")
	res.Tables = append(res.Tables, tab)
	return res, nil
}

// arqFactory builds a fresh ARQ instance (kept separate for readability).
func arqFactory() sched.Strategy {
	f, err := StrategyByName("arq")
	if err != nil {
		panic(err) // registered statically; cannot fail
	}
	return f.New(0)
}
