package experiments

import (
	"fmt"
	"testing"

	"ahq/internal/sim"
)

// populationDigest serialises every application of a drawn population with
// the same canonical key encoding the node cache uses and folds it through
// FNV-1a, so any drift in the draw — RNG consumption order, catalog
// contents, load grid, LC fraction — moves the digest.
func populationDigest(apps []sim.AppConfig) string {
	h := uint64(14695981039346656037)
	mix := func(bs []byte) {
		for _, c := range bs {
			h ^= uint64(c)
			h *= 1099511628211
		}
	}
	for _, a := range apps {
		k, ok := sim.AppendAppKey(nil, a)
		if !ok {
			return "unserialisable"
		}
		mix(k)
	}
	return fmt.Sprintf("%016x", h)
}

// TestFleetPopulationGolden pins the synthetic datacenter draw. The
// ext-fleet sweep, the fleet benchmarks and the CI smoke all assume
// fleetPopulation(seed, nodes) is a pure function of its arguments; an
// accidental change to the draw silently invalidates every recorded
// number, so the digest is pinned here. If you changed the population on
// purpose, update the constants and rerun the ext-fleet figures.
func TestFleetPopulationGolden(t *testing.T) {
	cases := []struct {
		seed  int64
		nodes int
		count int
		want  string
	}{
		{42, 100, 250, "d00617be7caaa3c9"},
		{42, 1000, 2500, "9170953af3534960"},
		{7, 100, 250, "a67d310661bcc9e2"},
	}
	for _, c := range cases {
		apps := fleetPopulation(c.seed, c.nodes)
		if len(apps) != c.count {
			t.Errorf("fleetPopulation(%d, %d) drew %d apps, want %d", c.seed, c.nodes, len(apps), c.count)
		}
		if got := populationDigest(apps); got != c.want {
			t.Errorf("fleetPopulation(%d, %d) digest = %s, want %s", c.seed, c.nodes, got, c.want)
		}
	}
	// Same arguments, same draw — the purity the sweep relies on.
	if populationDigest(fleetPopulation(42, 100)) != populationDigest(fleetPopulation(42, 100)) {
		t.Error("fleetPopulation is not deterministic")
	}
}
