package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteCSV renders one table as CSV (header row then data rows), for
// plotting the heatmap and timeline figures.
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSVs writes every table of a result into dir as
// <id>_<n>_<slug>.csv and returns the file names written.
func (r *Result) SaveCSVs(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var files []string
	for i, tab := range r.Tables {
		name := fmt.Sprintf("%s_%02d_%s.csv", r.ID, i, slug(tab.Caption))
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return files, err
		}
		err = tab.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return files, fmt.Errorf("writing %s: %w", path, err)
		}
		files = append(files, name)
	}
	return files, nil
}

// slug derives a short file-name fragment from a caption.
func slug(caption string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(caption) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			b.WriteByte('-')
		}
		if b.Len() >= 40 {
			break
		}
	}
	s := strings.Trim(b.String(), "-")
	if s == "" {
		return "table"
	}
	return s
}
