package experiments

import (
	"fmt"

	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sim"
)

func init() {
	register(Descriptor{
		ID:    "ablation-tunables",
		Title: "Ablation: sensitivity of the Table II shape to the contention-model constants",
		Run:   runAblationTunables,
	})
}

// runAblationTunables perturbs each contention-model constant (the
// simulator's substitute physics for the paper's testbed) and re-measures
// the Table II ladder — Unmanaged E_S at 6, 7 and 8 cores. The reproduced
// *shape* (a steep monotone drop as cores grow) must survive halving or
// raising each constant; the absolute values may move. This is the
// robustness argument for the substitution in DESIGN.md §3.
func runAblationTunables(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "ablation-tunables", Title: "Contention-constant sensitivity"}
	base := sim.DefaultTunables()
	variants := []struct {
		label string
		mut   func(*sim.Tunables)
	}{
		{"default", func(*sim.Tunables) {}},
		{"batch drag 0.25", func(tu *sim.Tunables) { tu.BatchDrag = 0.25 }},
		{"batch drag 0.75", func(tu *sim.Tunables) { tu.BatchDrag = 0.75 }},
		{"timeslice 2 ms", func(tu *sim.Tunables) { tu.TimesliceMs = 2 }},
		{"timeslice 8 ms", func(tu *sim.Tunables) { tu.TimesliceMs = 8 }},
		{"no pollution", func(tu *sim.Tunables) { tu.PollutionOverhead = 0 }},
		{"pollution x2", func(tu *sim.Tunables) { tu.PollutionOverhead = 2 * base.PollutionOverhead }},
		{"no warm-up", func(tu *sim.Tunables) { tu.WarmupMissBoost = 0 }},
	}
	tab := Table{
		Caption: "Unmanaged mean E_S at 6/7/8 cores (Table II mix) per model variant",
		Columns: []string{"variant", "6 cores", "7 cores", "8 cores", "monotone drop"},
	}
	unmanaged, err := StrategyByName("unmanaged")
	if err != nil {
		return nil, err
	}
	warm, dur := horizons(cfg)
	coreCounts := []int{6, 7, 8}
	p := newPool(cfg)
	futs := make([][]*future[float64], len(variants))
	for vi, v := range variants {
		tun := base
		v.mut(&tun)
		futs[vi] = make([]*future[float64], len(coreCounts))
		for i, cores := range coreCounts {
			futs[vi][i] = submit(p, func() (float64, error) {
				engine, err := sim.New(sim.Config{
					Spec:     machine.DefaultSpec().Shrink(cores, 20),
					Seed:     cfg.Seed,
					Tunables: tun,
					Apps:     standardMix(0.20, 0.20, 0.20, "fluidanimate"),
				})
				if err != nil {
					return 0, err
				}
				run, err := core.Run(engine, unmanaged.New(cfg.Seed),
					core.Options{EpochMs: 500, WarmupMs: warm, DurationMs: dur})
				if err != nil {
					return 0, err
				}
				return run.MeanES, nil
			})
		}
	}
	for vi, v := range variants {
		var es [3]float64
		for i := range coreCounts {
			val, err := futs[vi][i].wait()
			if err != nil {
				return nil, err
			}
			es[i] = val
		}
		monotone := "yes"
		if !(es[0] > es[1] && es[1] > es[2]) {
			monotone = "NO"
		}
		tab.AddRow(v.label,
			fmt.Sprintf("%.3f", es[0]), fmt.Sprintf("%.3f", es[1]), fmt.Sprintf("%.3f", es[2]),
			monotone)
	}
	tab.Notes = append(tab.Notes,
		"the reproduced shape must not hinge on any single constant")
	res.Tables = append(res.Tables, tab)
	return res, nil
}
