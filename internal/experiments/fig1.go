package experiments

import (
	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sched/static"
)

func init() {
	register(Descriptor{
		ID:    "fig1",
		Title: "Fig. 1: two hand-built strategies, A vs B — E_S disambiguates",
		Run:   runFig1,
	})
}

// runFig1 reproduces the motivating example of Section II-C: two fixed
// allocations for Xapian/Moses/Img-dnn + Fluidanimate. Strategy B isolates
// everything with a large Img-dnn partition (its QoS is comfortably met but
// the BE application starves); strategy A shares most of the node (Img-dnn
// may exceed its target by a few percent while the BE application's IPC
// more than doubles). With 7 per-application numbers the two are hard to
// rank; E_S ranks them directly and prefers A.
func runFig1(cfg RunConfig) (*Result, error) {
	spec := machine.DefaultSpec()
	apps := standardMix(0.20, 0.20, 0.20, "fluidanimate")

	// Strategy A: modest isolated slices; the BE application shares a
	// large pool with the LC applications.
	strategyA := machine.Allocation{Regions: []machine.Region{
		{Name: "iso:xapian", Kind: machine.Isolated, Cores: 1, Ways: 3, BWUnits: 1, Apps: []string{"xapian"}},
		{Name: "iso:moses", Kind: machine.Isolated, Cores: 1, Ways: 2, BWUnits: 1, Apps: []string{"moses"}},
		{Name: "iso:img-dnn", Kind: machine.Isolated, Cores: 1, Ways: 2, BWUnits: 1, Apps: []string{"img-dnn"}},
		{Name: "shared", Kind: machine.Shared, Policy: machine.LCPriority, Cores: 7, Ways: 13, BWUnits: 7,
			Apps: []string{"fluidanimate", "img-dnn", "moses", "xapian"}},
	}}
	// Strategy B: strict isolation, big LC partitions, BE squeezed.
	strategyB := machine.Allocation{Regions: []machine.Region{
		{Name: "iso:xapian", Kind: machine.Isolated, Cores: 3, Ways: 5, BWUnits: 3, Apps: []string{"xapian"}},
		{Name: "iso:moses", Kind: machine.Isolated, Cores: 3, Ways: 5, BWUnits: 3, Apps: []string{"moses"}},
		{Name: "iso:img-dnn", Kind: machine.Isolated, Cores: 3, Ways: 8, BWUnits: 3, Apps: []string{"img-dnn"}},
		{Name: "iso:fluidanimate", Kind: machine.Isolated, Cores: 1, Ways: 2, BWUnits: 1, Apps: []string{"fluidanimate"}},
	}}

	res := &Result{ID: "fig1", Title: "Strategy A vs strategy B"}
	tab := Table{
		Caption: "Xapian/Moses/Img-dnn (20%) + Fluidanimate under two fixed allocations",
		Columns: []string{"strategy", "xapian p95", "moses p95", "img-dnn p95", "fluid IPC", "E_LC", "E_BE", "E_S"},
	}
	cases := []struct {
		label string
		alloc machine.Allocation
	}{
		{"A (partial sharing)", strategyA},
		{"B (strict isolation)", strategyB},
	}
	p := newPool(cfg)
	futs := make([]*future[*core.Result], len(cases))
	for i, c := range cases {
		f := StrategyFactory{Name: c.label, New: func(int64) sched.Strategy {
			return static.Fixed{Label: c.label, Alloc: c.alloc}
		}}
		futs[i] = runMixAsync(p, cfg, spec, apps, f, core.Options{})
	}
	for i, c := range cases {
		run, err := futs[i].wait()
		if err != nil {
			return nil, err
		}
		tab.AddRow(c.label,
			fmtMs(appP95(run, "xapian")), fmtMs(appP95(run, "moses")), fmtMs(appP95(run, "img-dnn")),
			appIPC(run, "fluidanimate"),
			run.RunELC, run.RunEBE, run.RunES)
	}
	tab.Notes = append(tab.Notes,
		"paper: B fixes Img-dnn's small (4.4% < 5% elasticity) violation but costs the BE app 128.7% IPC; E_S prefers A",
	)
	res.Tables = append(res.Tables, tab)
	return res, nil
}
