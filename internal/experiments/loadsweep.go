package experiments

import (
	"fmt"

	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sim"
	"ahq/internal/workload"
)

func init() {
	register(Descriptor{
		ID:    "fig8",
		Title: "Fig. 8: Xapian/Moses/Img-dnn + Fluidanimate, Xapian load sweep",
		Run: func(cfg RunConfig) (*Result, error) {
			return runLoadSweep(cfg, "fig8", sweepSpec{
				varApp:    "xapian",
				fixedApps: []string{"moses", "img-dnn"},
				be:        "fluidanimate",
			})
		},
	})
	register(Descriptor{
		ID:    "fig9",
		Title: "Fig. 9: Xapian/Moses/Img-dnn + Stream (severe interference)",
		Run: func(cfg RunConfig) (*Result, error) {
			return runLoadSweep(cfg, "fig9", sweepSpec{
				varApp:    "xapian",
				fixedApps: []string{"moses", "img-dnn"},
				be:        "stream",
			})
		},
	})
	register(Descriptor{
		ID:    "fig11",
		Title: "Fig. 11: Img-dnn/Moses/Sphinx + Stream, Img-dnn load sweep",
		Run: func(cfg RunConfig) (*Result, error) {
			return runLoadSweep(cfg, "fig11", sweepSpec{
				varApp:    "img-dnn",
				fixedApps: []string{"moses", "sphinx"},
				be:        "stream",
			})
		},
	})
}

// sweepSpec describes one load-sweep figure: one LC application whose load
// varies 10-90%, two LC applications at a fixed load (20% in the left half
// of the figure, 40% in the right), and one BE application.
type sweepSpec struct {
	varApp    string
	fixedApps []string
	be        string
}

func runLoadSweep(cfg RunConfig, id string, sw sweepSpec) (*Result, error) {
	res := &Result{ID: id, Title: fmt.Sprintf("%s load sweep with %s", sw.varApp, sw.be)}
	fixedLoads := []float64{0.20, 0.40}
	varLoads := []float64{0.10, 0.30, 0.50, 0.70, 0.90}
	strategies := AllStrategies()
	if cfg.Quick {
		fixedLoads = fixedLoads[:1]
		varLoads = []float64{0.10, 0.50, 0.90}
		strategies = strategies[:2]
	}
	// Sphinx's second-scale requests need longer epochs to measure.
	opts := core.Options{}
	if sw.fixedApps[1] == "sphinx" && !cfg.Quick {
		opts = core.Options{EpochMs: 500, WarmupMs: 10_000, DurationMs: 40_000}
	}

	p := newPool(cfg)
	for _, fixed := range fixedLoads {
		entTab := Table{
			Caption: fmt.Sprintf("entropy vs %s load (fixed LC loads %s)", sw.varApp, fmtPct(fixed)),
			Columns: []string{"strategy", "metric"},
		}
		latTab := Table{
			Caption: fmt.Sprintf("%s p95 (ms) and %s IPC vs %s load (fixed %s)",
				sw.varApp, sw.be, sw.varApp, fmtPct(fixed)),
			Columns: []string{"strategy", "metric"},
		}
		for _, l := range varLoads {
			entTab.Columns = append(entTab.Columns, fmtPct(l))
			latTab.Columns = append(latTab.Columns, fmtPct(l))
		}
		// One job per (strategy, load) cell of this fixed-load block.
		futs := make([][]*future[*core.Result], len(strategies))
		for si, f := range strategies {
			futs[si] = make([]*future[*core.Result], len(varLoads))
			for li, l := range varLoads {
				apps := []sim.AppConfig{
					lcAt(sw.varApp, l),
					lcAt(sw.fixedApps[0], fixed),
					lcAt(sw.fixedApps[1], fixed),
					beApp(sw.be),
				}
				futs[si][li] = runMixAsync(p, cfg, machine.DefaultSpec(), apps, f, opts)
			}
		}
		for si, f := range strategies {
			rows := map[string][]string{
				"E_LC": {f.Name, "E_LC"}, "E_BE": {f.Name, "E_BE"}, "E_S": {f.Name, "E_S"},
				"p95": {f.Name, "p95"}, "IPC": {f.Name, "IPC"},
			}
			for li, l := range varLoads {
				run, err := futs[si][li].wait()
				if err != nil {
					return nil, fmt.Errorf("%s %s load %.0f%%: %w", id, f.Name, 100*l, err)
				}
				rows["E_LC"] = append(rows["E_LC"], fmt.Sprintf("%.3f", run.MeanELC))
				rows["E_BE"] = append(rows["E_BE"], fmt.Sprintf("%.3f", run.MeanEBE))
				rows["E_S"] = append(rows["E_S"], fmt.Sprintf("%.3f", run.MeanES))
				rows["p95"] = append(rows["p95"], fmtMs(appP95(run, sw.varApp)))
				rows["IPC"] = append(rows["IPC"], fmt.Sprintf("%.2f", appIPC(run, sw.be)))
			}
			for _, key := range []string{"E_LC", "E_BE", "E_S"} {
				entTab.Rows = append(entTab.Rows, rows[key])
			}
			for _, key := range []string{"p95", "IPC"} {
				latTab.Rows = append(latTab.Rows, rows[key])
			}
		}
		res.Tables = append(res.Tables, entTab, latTab)
	}
	return res, nil
}

// appP95 extracts one application's run-level p95 from a result.
func appP95(run *core.Result, name string) float64 {
	for _, a := range run.Apps {
		if a.Spec.Name == name && a.Spec.Class == workload.LC {
			return a.MeanP95Ms
		}
	}
	return 0
}

// appIPC extracts one application's run-level IPC from a result.
func appIPC(run *core.Result, name string) float64 {
	for _, a := range run.Apps {
		if a.Spec.Name == name && a.Spec.Class == workload.BE {
			return a.MeanIPC
		}
	}
	return 0
}
