package experiments

import (
	"fmt"
	"math"

	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sim"
	"ahq/internal/trace"
)

func init() {
	register(Descriptor{
		ID:    "fig13",
		Title: "Fig. 13: fluctuating Xapian load — entropy timeline and violations",
		Run:   runFig13,
	})
}

// runFig13 reproduces the fluctuating-load evaluation: Xapian driven by the
// 250 s load profile of Fig. 13(a), Moses and Img-dnn at 20%, Stream as the
// BE application, under LC-first, PARTIES and ARQ. It reports per-strategy
// tail-latency violation counts (paper: ARQ 59 vs PARTIES 105), the mean
// entropies, the adjustment counts, and a down-sampled timeline of E_S and
// the shared/isolated core split.
func runFig13(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "fig13", Title: "Fluctuating load"}
	profile := trace.Fig13Xapian()
	opts := core.Options{
		EpochMs:        500,
		WarmupMs:       0,
		DurationMs:     250_000,
		RecordTimeline: true,
	}
	if cfg.Quick {
		opts.DurationMs = 40_000
	}
	// WarmupMs = 0 would be re-defaulted; run the whole profile as
	// "measured" by asking for a tiny warm-up instead.
	opts.WarmupMs = -1

	summary := Table{
		Caption: "250 s fluctuating Xapian load (Moses/Img-dnn 20%, Stream): totals per strategy",
		Columns: []string{"strategy", "violations", "adjustments", "mean E_LC", "mean E_BE", "mean E_S"},
	}
	var timelines []Table
	p := newPool(cfg)
	names := []string{"lc-first", "parties", "arq"}
	futs := make([]*future[*core.Result], len(names))
	for i, name := range names {
		f, err := StrategyByName(name)
		if err != nil {
			return nil, err
		}
		apps := []sim.AppConfig{
			lcTrace("xapian", profile),
			lcAt("moses", 0.20),
			lcAt("img-dnn", 0.20),
			beApp("stream"),
		}
		futs[i] = runMixAsync(p, cfg, machine.DefaultSpec(), apps, f, opts)
	}
	for i, name := range names {
		run, err := futs[i].wait()
		if err != nil {
			return nil, err
		}
		summary.AddRow(name, run.TotalViolationEpochs, run.Adjustments,
			run.MeanELC, run.MeanEBE, run.MeanES)

		tl := Table{
			Caption: fmt.Sprintf("%s timeline (10 s resolution)", name),
			Columns: []string{"t(s)", "xapian load", "E_LC", "E_BE", "E_S", "shared cores", "iso:xapian cores", "shared ways"},
		}
		step := 20 // epochs per printed row (10 s)
		if cfg.Quick {
			step = 8
		}
		for i := 0; i < len(run.Timeline); i += step {
			rec := run.Timeline[i]
			sharedCores, isoXapian, sharedWays := 0, 0, 0
			if g := rec.Allocation.SharedRegion(); g != nil {
				sharedCores, sharedWays = g.Cores, g.Ways
			}
			if g := rec.Allocation.IsolatedRegionOf("xapian"); g != nil {
				isoXapian = g.Cores
			}
			es := rec.ES
			if math.IsNaN(es) {
				es = 0
			}
			tl.AddRow(fmt.Sprintf("%.0f", rec.TimeMs/1000),
				fmtPct(profile.At(rec.TimeMs)),
				fmt.Sprintf("%.3f", rec.ELC), fmt.Sprintf("%.3f", rec.EBE), fmt.Sprintf("%.3f", es),
				sharedCores, isoXapian, sharedWays)
		}
		var esSeries []float64
		for _, rec := range run.Timeline {
			esSeries = append(esSeries, rec.ES)
		}
		tl.Freeform = fmt.Sprintf("E_S over time (one glyph per epoch):\n%s", Sparkline(esSeries))
		timelines = append(timelines, tl)
	}
	summary.Notes = append(summary.Notes, "paper: ARQ 59 violations vs PARTIES 105 over 500 epochs")
	res.Tables = append(res.Tables, summary)
	res.Tables = append(res.Tables, timelines...)
	return res, nil
}
