package experiments

import (
	"ahq/internal/core"
	"ahq/internal/machine"
	workpool "ahq/internal/pool"
	"ahq/internal/sim"
)

// The experiment harness is an embarrassingly parallel sweep: every row of
// every table is one independent, seed-deterministic engine + controller
// run (sim.Engine is "not safe for concurrent use" per engine, but separate
// engines share nothing mutable). The bounded worker pool itself lives in
// internal/pool — the cluster fleet engine shards over the same
// implementation — while this file binds it to the harness: sizing from
// RunConfig, plus the invocation-scoped solve cache.

// pool bounds how many simulation jobs run simultaneously for one runner
// invocation. It also owns the invocation's shared contention-solve cache:
// rows of one sweep differ in load level or strategy, not in the solve
// inputs, so engines running side by side (or sequentially) reuse each
// other's solves. Sharing is bit-exact (sim.SolveCache keys cover every
// resolver input), so results remain byte-identical at every parallelism
// level, with or without the cache.
type pool struct {
	ex     *workpool.Pool
	solves *sim.SolveCache
}

// newPool sizes the executor from the run configuration: Parallel workers,
// or runtime.NumCPU() when Parallel <= 0 (1 disables concurrency).
func newPool(cfg RunConfig) *pool {
	return &pool{ex: workpool.New(cfg.Parallel), solves: sim.NewSolveCache()}
}

// future is the pending result of a submitted job, read back with wait in
// declaration order by the runners.
type future[T any] struct {
	f *workpool.Future[T]
}

// submit schedules fn on the pool and returns its future. Jobs start in
// submission order as workers free up; results are read back with wait.
func submit[T any](p *pool, fn func() (T, error)) *future[T] {
	return &future[T]{f: workpool.Submit(p.ex, fn)}
}

// wait blocks until the job finishes and returns its result.
func (f *future[T]) wait() (T, error) {
	return f.f.Wait()
}

// runMixAsync submits one runMix invocation to the pool, wiring the pool's
// shared solve cache into the run.
func runMixAsync(p *pool, cfg RunConfig, spec machine.Spec, apps []sim.AppConfig, f StrategyFactory, opts core.Options) *future[*core.Result] {
	cfg.Solves = p.solves
	return submit(p, func() (*core.Result, error) {
		return runMix(cfg, spec, apps, f, opts)
	})
}
