package experiments

import (
	"runtime"

	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sim"
)

// The experiment harness is an embarrassingly parallel sweep: every row of
// every table is one independent, seed-deterministic engine + controller
// run (sim.Engine is "not safe for concurrent use" per engine, but separate
// engines share nothing mutable). A pool fans those runs out over a bounded
// set of workers while the runner collects the futures in declaration
// order, so the rendered output is byte-identical to a sequential run at
// any parallelism level.

// pool bounds how many simulation jobs run simultaneously for one runner
// invocation. It also owns the invocation's shared contention-solve cache:
// rows of one sweep differ in load level or strategy, not in the solve
// inputs, so engines running side by side (or sequentially) reuse each
// other's solves. Sharing is bit-exact (sim.SolveCache keys cover every
// resolver input), so results remain byte-identical at every parallelism
// level, with or without the cache.
type pool struct {
	sem    chan struct{}
	solves *sim.SolveCache
}

// newPool sizes the executor from the run configuration: Parallel workers,
// or runtime.NumCPU() when Parallel <= 0 (1 disables concurrency).
func newPool(cfg RunConfig) *pool {
	n := cfg.Parallel
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return &pool{sem: make(chan struct{}, n), solves: sim.NewSolveCache()}
}

// future is the pending result of a submitted job. The result slots are
// published by the worker goroutine's deferred close(done): writes happen
// before the close, reads happen after a receive.
type future[T any] struct {
	done chan struct{}
	val  T     // guarded by done
	err  error // guarded by done
}

// submit schedules fn on the pool and returns its future. Jobs start in
// submission order as workers free up; results are read back with wait.
func submit[T any](p *pool, fn func() (T, error)) *future[T] {
	f := &future[T]{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		f.val, f.err = fn()
	}()
	return f
}

// wait blocks until the job finishes and returns its result.
func (f *future[T]) wait() (T, error) {
	<-f.done
	return f.val, f.err
}

// runMixAsync submits one runMix invocation to the pool, wiring the pool's
// shared solve cache into the run.
func runMixAsync(p *pool, cfg RunConfig, spec machine.Spec, apps []sim.AppConfig, f StrategyFactory, opts core.Options) *future[*core.Result] {
	cfg.Solves = p.solves
	return submit(p, func() (*core.Result, error) {
		return runMix(cfg, spec, apps, f, opts)
	})
}
