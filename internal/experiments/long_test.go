package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// The heavier experiments get dedicated quick-mode smoke tests, kept out of
// the parallel sweep in experiments_test.go because each runs many
// controller instances.

func TestFig10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("not -short")
	}
	d, ok := Lookup("fig10")
	if !ok {
		t.Fatal("fig10 missing")
	}
	res, err := d.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Three metrics for each of two strategies.
	if len(res.Tables) != 6 {
		t.Fatalf("fig10 produced %d tables, want 6", len(res.Tables))
	}
	for _, tab := range res.Tables {
		if tab.Freeform == "" || !strings.Contains(tab.Freeform, "legend:") {
			t.Errorf("table %q missing heatmap", tab.Caption)
		}
	}
}

func TestFig11Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("not -short")
	}
	d, ok := Lookup("fig11")
	if !ok {
		t.Fatal("fig11 missing")
	}
	res, err := d.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 {
		t.Fatal("no tables")
	}
}

func TestFig12Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("not -short")
	}
	d, ok := Lookup("fig12")
	if !ok {
		t.Fatal("fig12 missing")
	}
	res, err := d.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("fig12 has %d strategy rows, want 2", len(tab.Rows))
	}
	// Eight applications are collocated: six LC latencies + two IPCs +
	// strategy + E_S + yield = 11 columns.
	if len(tab.Columns) != 11 {
		t.Errorf("fig12 has %d columns", len(tab.Columns))
	}
}

// TestARQBeatsPartiesInFig12Quick pins the scale-up claim end-to-end even
// in quick mode: ARQ's E_S must be below PARTIES' with 8 collocated apps.
func TestARQBeatsPartiesInFig12Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("not -short")
	}
	d, _ := Lookup("fig12")
	res, err := d.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	var parties, arq float64
	for _, row := range tab.Rows {
		esCol := len(row) - 2
		switch row[0] {
		case "parties":
			parties = atofOrFail(t, row[esCol])
		case "arq":
			arq = atofOrFail(t, row[esCol])
		}
	}
	if arq >= parties {
		t.Errorf("ARQ E_S %.3f >= PARTIES %.3f in the 8-app collocation", arq, parties)
	}
}

func atofOrFail(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float %q", s)
	}
	return v
}
