// Package experiments contains one runner per table and figure of the
// paper's evaluation (see DESIGN.md §4 for the index). Each runner rebuilds
// the workload mix, drives every strategy under the Ah-Q controller on the
// simulated node, and renders the same rows/series the paper reports as
// plain-text tables (and CSV, for the heatmap/timeline figures).
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode/utf8"

	"ahq/internal/sim"
)

// RunConfig parameterises a runner invocation.
type RunConfig struct {
	// Seed drives all randomness; equal seeds give identical results.
	Seed int64
	// Quick shortens warm-up and measurement horizons (used by unit
	// tests); the full horizons are used by default.
	Quick bool
	// Parallel bounds how many simulation runs a runner executes
	// simultaneously; <= 0 means runtime.NumCPU(), 1 runs sequentially.
	// Results are assembled in declaration order, so output is identical
	// at every parallelism level.
	Parallel int
	// Solves is the sweep's shared contention-solve cache, injected by
	// the pool (runMixAsync); nil runs each engine isolated. Sharing is
	// bit-exact, so it never changes results — only how often a row must
	// re-derive a solve a sibling row already computed.
	Solves *sim.SolveCache
	// FleetNodeCacheOff disables the ext-fleet sweep's node-outcome
	// cache (cluster.NodeCache), forcing every placement to re-simulate
	// node contents other placements already ran. The cache is bit-exact
	// by construction, so this changes wall time only; the CI smoke pins
	// stdout equality on vs off.
	FleetNodeCacheOff bool
}

// Result is a runner's output: one or more rendered tables.
type Result struct {
	ID     string
	Title  string
	Tables []Table
}

// Table is a printable grid with a caption and optional footnotes.
type Table struct {
	Caption string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Freeform is pre-rendered text (ASCII heatmaps, sparklines) printed
	// after the grid.
	Freeform string
}

// AddRow appends a row built from Sprint-ed cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if n := utf8.RuneCountInString(cell); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	if t.Caption != "" {
		fmt.Fprintf(w, "%s\n", t.Caption)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	if t.Freeform != "" {
		fmt.Fprintln(w, t.Freeform)
	}
}

// Fprint renders all of a result's tables.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n\n", r.ID, r.Title)
	for i := range r.Tables {
		r.Tables[i].Fprint(w)
		fmt.Fprintln(w)
	}
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Runner regenerates one paper artifact.
type Runner func(cfg RunConfig) (*Result, error)

// Descriptor registers a runner under its experiment id.
type Descriptor struct {
	ID    string
	Title string
	Run   Runner
}

var registry = map[string]Descriptor{}

// register adds a descriptor; duplicate ids are a programming error.
func register(d Descriptor) {
	if _, dup := registry[d.ID]; dup {
		panic("experiments: duplicate id " + d.ID)
	}
	registry[d.ID] = d
}

// Lookup returns the descriptor for an experiment id.
func Lookup(id string) (Descriptor, bool) {
	d, ok := registry[id]
	return d, ok
}

// All returns every registered descriptor sorted by id.
func All() []Descriptor {
	out := make([]Descriptor, 0, len(registry))
	for _, d := range registry {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
