package experiments

import (
	"fmt"
	"math"

	"ahq/internal/core"
	"ahq/internal/entropy"
	"ahq/internal/machine"
)

func init() {
	register(Descriptor{
		ID:    "fig2",
		Title: "Fig. 2: E_S vs available cores and LLC ways (Unmanaged, ARQ)",
		Run:   runFig2,
	})
	register(Descriptor{
		ID:    "fig3a",
		Title: "Fig. 3(a): E_S vs cores and the resource equivalence of ARQ",
		Run:   runFig3a,
	})
	register(Descriptor{
		ID:    "fig3b",
		Title: "Fig. 3(b): isentropic lines (cores needed per ways) at E_S=0.3",
		Run:   runFig3b,
	})
}

// esAt runs one strategy on a node shrunk to the given cores/ways and
// returns the measured mean system entropy.
func esAt(cfg RunConfig, f StrategyFactory, cores, ways int) (float64, error) {
	spec := machine.DefaultSpec().Shrink(cores, ways)
	run, err := runMix(cfg, spec, standardMix(0.20, 0.20, 0.20, "fluidanimate"), f, core.Options{})
	if err != nil {
		return 0, err
	}
	return run.MeanES, nil
}

// esAtAsync submits one esAt measurement to the pool.
func esAtAsync(p *pool, cfg RunConfig, f StrategyFactory, cores, ways int) *future[float64] {
	return submit(p, func() (float64, error) { return esAt(cfg, f, cores, ways) })
}

func runFig2(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "fig2", Title: "E_S surface over (cores, ways)"}
	coreRange := []int{4, 5, 6, 7, 8, 9, 10}
	wayRange := []int{4, 8, 12, 16, 20}
	strategies := []string{"unmanaged", "arq"}
	if cfg.Quick {
		coreRange = []int{4, 7, 10}
		wayRange = []int{4, 12, 20}
	}
	p := newPool(cfg)
	futs := make(map[string][][]*future[float64], len(strategies))
	for _, name := range strategies {
		f, err := StrategyByName(name)
		if err != nil {
			return nil, err
		}
		cells := make([][]*future[float64], len(coreRange))
		for i, c := range coreRange {
			cells[i] = make([]*future[float64], len(wayRange))
			for j, w := range wayRange {
				cells[i][j] = esAtAsync(p, cfg, f, c, w)
			}
		}
		futs[name] = cells
	}
	for _, name := range strategies {
		tab := Table{
			Caption: fmt.Sprintf("E_S under %s (rows: cores, cols: LLC ways); Xapian/Moses/Img-dnn 20%% + Fluidanimate", name),
			Columns: []string{"cores"},
		}
		for _, w := range wayRange {
			tab.Columns = append(tab.Columns, fmt.Sprintf("%d ways", w))
		}
		var grid [][]float64
		var rowLabels []string
		for i, c := range coreRange {
			row := []string{fmt.Sprint(c)}
			var vals []float64
			for j := range wayRange {
				es, err := futs[name][i][j].wait()
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.3f", es))
				vals = append(vals, es)
			}
			tab.Rows = append(tab.Rows, row)
			grid = append(grid, vals)
			rowLabels = append(rowLabels, fmt.Sprintf("%dc", c))
		}
		tab.Notes = append(tab.Notes, "paper property ②: E_S must not increase as resources grow")
		colLabels := make([]string, len(wayRange))
		for i, w := range wayRange {
			colLabels[i] = fmt.Sprint(w)
		}
		tab.Freeform = Heatmap("E_S heatmap (dark = severe interference; cols = ways)",
			rowLabels, colLabels, grid)
		res.Tables = append(res.Tables, tab)
	}
	return res, nil
}

func runFig3a(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "fig3a", Title: "Resource equivalence of ARQ vs Unmanaged"}
	coreRange := []int{4, 5, 6, 7, 8, 9, 10}
	if cfg.Quick {
		coreRange = []int{4, 6, 8, 10}
	}
	curves := map[string]*entropy.Curve{}
	tab := Table{
		Caption: "E_S vs cores (20 ways); Xapian/Moses/Img-dnn 20% + Fluidanimate",
		Columns: []string{"cores", "unmanaged", "arq"},
	}
	points := map[string][]entropy.Point{}
	rows := make([][]string, len(coreRange))
	for i, c := range coreRange {
		rows[i] = []string{fmt.Sprint(c)}
	}
	p := newPool(cfg)
	futs := make(map[string][]*future[float64], 2)
	for _, name := range []string{"unmanaged", "arq"} {
		f, err := StrategyByName(name)
		if err != nil {
			return nil, err
		}
		for _, c := range coreRange {
			futs[name] = append(futs[name], esAtAsync(p, cfg, f, c, 20))
		}
	}
	for _, name := range []string{"unmanaged", "arq"} {
		for i, c := range coreRange {
			es, err := futs[name][i].wait()
			if err != nil {
				return nil, err
			}
			points[name] = append(points[name], entropy.Point{Resource: float64(c), ES: es})
			rows[i] = append(rows[i], fmt.Sprintf("%.3f", es))
		}
		curve, err := entropy.NewCurve(points[name])
		if err != nil {
			return nil, err
		}
		curves[name] = curve
	}
	tab.Rows = rows
	res.Tables = append(res.Tables, tab)

	eq := Table{
		Caption: "resource equivalence of ARQ relative to Unmanaged (cores saved at equal E_S)",
		Columns: []string{"E_S", "unmanaged needs", "arq needs", "equivalence (cores)"},
	}
	for _, target := range []float64{0.25, 0.40} {
		ru, errU := curves["unmanaged"].ResourceFor(target)
		ra, errA := curves["arq"].ResourceFor(target)
		if errU != nil || errA != nil {
			eq.AddRow(fmt.Sprintf("%.2f", target), "-", "-", "unreached")
			continue
		}
		eq.AddRow(fmt.Sprintf("%.2f", target),
			fmt.Sprintf("%.2f", ru), fmt.Sprintf("%.2f", ra), fmt.Sprintf("%.2f", ru-ra))
	}
	eq.Notes = append(eq.Notes, "paper: ~2.0 cores saved at E_S=0.25 and ~1.83 at E_S=0.40")
	res.Tables = append(res.Tables, eq)
	return res, nil
}

func runFig3b(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "fig3b", Title: "Isentropic lines at E_S = 0.3"}
	const targetES = 0.3
	wayRange := []int{4, 6, 8, 10, 14, 20}
	strategies := []string{"unmanaged", "parties", "clite", "arq"}
	if cfg.Quick {
		wayRange = []int{8, 20}
		strategies = []string{"unmanaged", "arq"}
	}
	tab := Table{
		Caption: "cores required to reach E_S <= 0.3 at each way count (interpolated)",
		Columns: append([]string{"strategy"}, func() []string {
			var cs []string
			for _, w := range wayRange {
				cs = append(cs, fmt.Sprintf("%d ways", w))
			}
			return cs
		}()...),
	}
	p := newPool(cfg)
	futs := make(map[string][][]*future[float64], len(strategies))
	for _, name := range strategies {
		f, err := StrategyByName(name)
		if err != nil {
			return nil, err
		}
		cells := make([][]*future[float64], len(wayRange))
		for j, w := range wayRange {
			for c := 4; c <= 10; c++ {
				cells[j] = append(cells[j], esAtAsync(p, cfg, f, c, w))
			}
		}
		futs[name] = cells
	}
	for _, name := range strategies {
		row := []string{name}
		for j := range wayRange {
			var pts []entropy.Point
			for c := 4; c <= 10; c++ {
				es, err := futs[name][j][c-4].wait()
				if err != nil {
					return nil, err
				}
				pts = append(pts, entropy.Point{Resource: float64(c), ES: es})
			}
			curve, err := entropy.NewCurve(pts)
			if err != nil {
				return nil, err
			}
			need, err := curve.ResourceFor(targetES)
			if err != nil || math.IsNaN(need) {
				row = append(row, ">10")
			} else {
				row = append(row, fmt.Sprintf("%.2f", need))
			}
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes,
		"paper: with >=10 ways the lines converge; below, ARQ needs ~1 core fewer than PARTIES/CLITE and ~2 fewer than Unmanaged")
	res.Tables = append(res.Tables, tab)
	return res, nil
}
