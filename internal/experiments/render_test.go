package experiments

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestShadeBuckets(t *testing.T) {
	cases := map[float64]rune{
		0:    ' ',
		0.1:  ' ',
		0.25: '░',
		0.45: '▒',
		0.65: '▓',
		0.85: '█',
		1:    '█',
	}
	for v, want := range cases {
		if got := Shade(v); got != want {
			t.Errorf("Shade(%g) = %q, want %q", v, got, want)
		}
	}
	if Shade(math.NaN()) != '?' {
		t.Error("NaN shade")
	}
	if Shade(-1) != ' ' || Shade(2) != '█' {
		t.Error("clamping broken")
	}
}

func TestShadeMonotone(t *testing.T) {
	rank := func(r rune) int {
		for i, s := range shades {
			if s == r {
				return i
			}
		}
		return -1
	}
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw%1001) / 1000
		b := float64(bRaw%1001) / 1000
		if a > b {
			a, b = b, a
		}
		return rank(Shade(a)) <= rank(Shade(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeatmapLayout(t *testing.T) {
	out := Heatmap("title", []string{"r1", "r2"}, []string{"4", "20"},
		[][]float64{{0.1, 0.9}, {0.5, 0.0}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, 2 rows, legend
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "title") {
		t.Errorf("missing title: %q", lines[0])
	}
	if !strings.Contains(lines[2], "r1") || !strings.Contains(lines[3], "r2") {
		t.Errorf("row labels missing:\n%s", out)
	}
	// Cell glyphs doubled: r1 row should contain two '█' for 0.9.
	if !strings.Contains(lines[2], "██") {
		t.Errorf("high cell not dark:\n%s", out)
	}
	if !strings.Contains(lines[4], "legend:") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1, math.NaN()})
	runes := []rune(s)
	if len(runes) != 4 {
		t.Fatalf("len = %d", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' || runes[3] != ' ' {
		t.Errorf("sparkline = %q", s)
	}
	if Spark(0.5) == Spark(1.0) {
		t.Error("mid and max map to the same glyph")
	}
}
