package experiments

import (
	"fmt"

	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sim"
)

func init() {
	register(Descriptor{
		ID:    "fig10",
		Title: "Fig. 10: entropy heatmaps over (Xapian load x Img-dnn load)",
		Run:   runFig10,
	})
}

// runFig10 reproduces the load-grid heatmaps: Moses fixed at 20%, Stream as
// the BE application, and both Xapian's and Img-dnn's loads sweeping 10-90%,
// under PARTIES and ARQ. Each cell holds E_LC/E_BE/E_S; the expected shape
// is lower E_BE for ARQ in the low-load (top-left) region and lower E_LC in
// the high-load (bottom-right) region.
func runFig10(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "fig10", Title: "Entropy heatmaps, PARTIES vs ARQ"}
	loads := []float64{0.10, 0.30, 0.50, 0.70, 0.90}
	if cfg.Quick {
		loads = []float64{0.10, 0.50, 0.90}
	}
	p := newPool(cfg)
	for _, name := range []string{"parties", "arq"} {
		f, err := StrategyByName(name)
		if err != nil {
			return nil, err
		}
		for _, metric := range []string{"E_LC", "E_BE", "E_S"} {
			tab := Table{
				Caption: fmt.Sprintf("%s under %s (rows: Xapian load, cols: Img-dnn load); Moses 20%% + Stream", metric, name),
				Columns: []string{"xapian\\img-dnn"},
			}
			for _, l := range loads {
				tab.Columns = append(tab.Columns, fmtPct(l))
			}
			tab.Rows = make([][]string, len(loads))
			for i, xl := range loads {
				tab.Rows[i] = []string{fmtPct(xl)}
				_ = i
				_ = xl
			}
			res.Tables = append(res.Tables, tab)
		}
		// Fill all three tables in one sweep of runs, fanned out over the
		// pool and collected in row-major order.
		base := len(res.Tables) - 3
		grids := [3][][]float64{}
		for k := range grids {
			grids[k] = make([][]float64, len(loads))
		}
		cells := make([][]*future[*core.Result], len(loads))
		for i, xl := range loads {
			cells[i] = make([]*future[*core.Result], len(loads))
			for j, il := range loads {
				apps := []sim.AppConfig{
					lcAt("xapian", xl),
					lcAt("moses", 0.20),
					lcAt("img-dnn", il),
					beApp("stream"),
				}
				cells[i][j] = runMixAsync(p, cfg, machine.DefaultSpec(), apps, f, core.Options{})
			}
		}
		for i := range loads {
			for j := range loads {
				run, err := cells[i][j].wait()
				if err != nil {
					return nil, err
				}
				vals := []float64{run.MeanELC, run.MeanEBE, run.MeanES}
				for k := 0; k < 3; k++ {
					res.Tables[base+k].Rows[i] = append(res.Tables[base+k].Rows[i], fmt.Sprintf("%.3f", vals[k]))
					grids[k][i] = append(grids[k][i], vals[k])
				}
			}
		}
		rowLabels := make([]string, len(loads))
		colLabels := make([]string, len(loads))
		for i, l := range loads {
			rowLabels[i] = fmtPct(l)
			colLabels[i] = fmtPct(l)
		}
		for k, metric := range []string{"E_LC", "E_BE", "E_S"} {
			res.Tables[base+k].Freeform = Heatmap(
				fmt.Sprintf("%s %s heatmap (rows: Xapian load, cols: Img-dnn load)", name, metric),
				rowLabels, colLabels, grids[k])
		}
	}
	return res, nil
}
