package experiments

import "testing"

// TestFig4MatchesPaperCounts pins the space-time model to the paper's
// exact numbers: isolation denies 10 demands; LC-priority sharing denies 6,
// serves 4 with switch overhead, and doubles utilisation.
func TestFig4MatchesPaperCounts(t *testing.T) {
	iso := fig4Isolated("LC1")
	if iso.denied != 10 {
		t.Errorf("isolated crosses = %d, want 10", iso.denied)
	}
	if iso.overhead != 0 {
		t.Errorf("isolated triangles = %d, want 0", iso.overhead)
	}
	if iso.utilisation() != 0.5 {
		t.Errorf("isolated utilisation = %.2f, want 0.50", iso.utilisation())
	}

	sh := fig4Shared()
	if sh.denied != 6 {
		t.Errorf("shared crosses = %d, want 6", sh.denied)
	}
	if sh.overhead != 4 {
		t.Errorf("shared triangles = %d, want 4", sh.overhead)
	}
	if sh.utilisation() != 1.0 {
		t.Errorf("shared utilisation = %.2f, want 1.00 (doubled)", sh.utilisation())
	}
}

func TestFig4Runner(t *testing.T) {
	res, err := runFig4(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 2 {
		t.Fatalf("unexpected shape: %+v", res)
	}
}
