package experiments

import (
	"fmt"
	"os"
	"time"

	"ahq/internal/cluster"
	"ahq/internal/core"
	"ahq/internal/faults"
	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sim"
)

func init() {
	register(Descriptor{
		ID:    "ext-fleetchaos",
		Title: "Extension: fleet chaos — crash fractions vs failure-aware re-placement",
		Run:   runExtFleetChaos,
	})
}

// fleetChaosNodes sizes the chaos fleet: large enough that a percent-level
// crash fraction hits several nodes, quick enough for CI smoke runs.
func fleetChaosNodes(cfg RunConfig) int {
	if cfg.Quick {
		return 40
	}
	return 1000
}

// fleetChaosHorizons picks the controller horizon and the epoch the
// persistent crash wave lands on. The crash sits early in the measured
// window so most of the horizon exercises the failure (and the recovery),
// not the healthy prefix: quick runs 6 epochs (1 warm), full runs 12
// (2 warm), both at the standard 500 ms epoch.
func fleetChaosHorizons(cfg RunConfig) (warm, dur float64, crashEpoch int) {
	if cfg.Quick {
		return 500, 2_500, 2
	}
	return 1_000, 5_000, 4
}

// fleetChaosMixedPlan is the everything-at-once scenario: a restarting
// crash wave, a persistent capacity degrade and a telemetry blackout, all
// drawn on disjoint-by-chance victim sets from the run seed.
func fleetChaosMixedPlan(cfg RunConfig) string {
	if cfg.Quick {
		return "crash@2x2/nodes=5%,degrade@1+/nodes=10%,blackout@3x2/nodes=10%"
	}
	return "crash@4x4/nodes=5%,degrade@2+/nodes=10%,blackout@6x3/nodes=10%"
}

// fleetChaosCell is one measured cell of the chaos sweep.
type fleetChaosCell struct {
	label string // crash-fraction or scenario label
	mode  string // "-" (no faults), "none" (crash, no re-placement), "replace"
	run   *cluster.Result
}

// fleetChaosSweep runs the crash-fraction × re-placement grid plus the
// mixed scenario and returns the structured cells (the table rendering and
// the regression tests both consume them). Layout per fraction f ∈ {0, 1,
// 5, 10}%: a persistent crash wave `crash@E+/nodes=f%` under both
// supervisor modes; f = 0 is the fault-free baseline (legacy single-phase
// engine, CRN node seeds) and appears once.
func fleetChaosSweep(cfg RunConfig) ([]fleetChaosCell, error) {
	nodes := fleetChaosNodes(cfg)
	warm, dur, crashEpoch := fleetChaosHorizons(cfg)
	opts := core.Options{EpochMs: 500, WarmupMs: warm, DurationMs: dur}
	spec := machine.DefaultSpec()
	solves := sim.NewSolveCache()
	var nodeCache *cluster.NodeCache
	if !cfg.FleetNodeCacheOff {
		nodeCache = cluster.NewNodeCache()
	}

	apps := fleetPopulation(cfg.Seed, nodes)
	placement, err := cluster.Scored(apps, nodes, spec)
	if err != nil {
		return nil, fmt.Errorf("scored placement: %w", err)
	}
	placement = cluster.CanonicalizePlacement(placement)
	seeds := make([]int64, len(placement))
	for i := range placement {
		seeds[i] = cluster.TemplateSeed(cfg.Seed, placement[i])
	}

	runCell := func(label, mode, planSpec string, replace bool) (fleetChaosCell, error) {
		start := time.Now() //ahqlint:allow detflow wall-clock timing goes to stderr only; stdout stays deterministic
		c := cluster.Config{
			Spec:                spec,
			Seed:                cfg.Seed,
			NewStrategy:         func(int) sched.Strategy { return arqFactory() },
			Placement:           placement,
			Parallel:            cfg.Parallel,
			SharedSolves:        solves,
			DedupIdenticalNodes: true,
			NodeCache:           nodeCache,
			StrategyDigest:      "arq:default",
		}
		if planSpec == "" {
			// Fault-free baseline: the legacy single-phase engine under the
			// same content-wise CRN seeds the chaos phases use.
			c.NodeSeed = func(i int) int64 { return seeds[i] }
		} else {
			plan, err := faults.ParseFleet(planSpec)
			if err != nil {
				return fleetChaosCell{}, fmt.Errorf("%s: %w", label, err)
			}
			c.FleetPlan = plan
			c.ReplaceEvicted = replace
		}
		run, err := cluster.Run(c, opts)
		if err != nil {
			return fleetChaosCell{}, fmt.Errorf("%s/%s: %w", label, mode, err)
		}
		elapsed := time.Since(start).Round(time.Millisecond) //ahqlint:allow detflow wall-clock timing goes to stderr only; stdout stays deterministic
		fmt.Fprintf(os.Stderr, "(ext-fleetchaos %s %s: %v, %d failed nodes, %d evictions, %d node-cache hits)\n",
			label, mode, elapsed, run.Stats.FailedNodes, run.Stats.Evictions, run.Stats.NodeCacheHits)
		return fleetChaosCell{label: label, mode: mode, run: run}, nil
	}

	var cells []fleetChaosCell
	base, err := runCell("0%", "-", "", false)
	if err != nil {
		return nil, err
	}
	cells = append(cells, base)
	for _, frac := range []int{1, 5, 10} {
		planSpec := fmt.Sprintf("crash@%d+/nodes=%d%%", crashEpoch, frac)
		label := fmt.Sprintf("%d%%", frac)
		for _, mode := range []string{"none", "replace"} {
			cell, err := runCell(label, mode, planSpec, mode == "replace")
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	for _, mode := range []string{"none", "replace"} {
		cell, err := runCell("mixed", mode, fleetChaosMixedPlan(cfg), mode == "replace")
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// runExtFleetChaos is the robustness reading of the fleet extension: E_S
// aggregation stays meaningful when nodes crash, degrade or go dark, and
// it cleanly ranks the supervisor's two answers to a crash — leave the
// victims' applications dead (every dead LC app-epoch is a violation at
// saturated latency) or evict and re-place them onto survivors through the
// interference scorer. Crash victims are drawn from the run seed, so the
// whole sweep — phase schedule, re-placement decisions, every number — is
// byte-identical across runs and -parallel levels (CI-enforced).
func runExtFleetChaos(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "ext-fleetchaos", Title: "Fleet chaos: crash fractions vs failure-aware re-placement"}
	nodes := fleetChaosNodes(cfg)
	cells, err := fleetChaosSweep(cfg)
	if err != nil {
		return nil, err
	}
	tab := Table{
		Caption: fmt.Sprintf("%d-node scored fleet under per-node ARQ; persistent crash waves, mixed = crash+degrade+blackout", nodes),
		Columns: []string{"faults", "re-place", "E_LC", "E_BE", "E_S", "yield", "viol rate", "failed", "evicted", "placed", "abandoned", "recovery"},
	}
	for _, c := range cells {
		recovery := "-"
		if c.run.Replacements > 0 {
			recovery = fmt.Sprintf("%.1f ep", c.run.MeanRecoveryEpochs)
		}
		tab.AddRow(c.label, c.mode,
			c.run.GlobalELC, c.run.GlobalEBE, c.run.GlobalES,
			fmtPct(c.run.GlobalYield), fmt.Sprintf("%.2f%%", 100*c.run.ViolationRate()),
			c.run.Stats.FailedNodes, c.run.Evictions, c.run.Replacements, c.run.Abandoned, recovery)
	}
	tab.Notes = append(tab.Notes,
		"faults rows are crash fractions (crash@E+/nodes=f%, victims drawn from the run seed); 0% is the fault-free legacy-engine baseline",
		"re-place none: victims' apps stay dead — each dead LC app-epoch counts as a violation at saturated latency",
		"re-place replace: supervisor evicts crash victims' apps and re-places them via the interference scorer (churn-, retry- and utilisation-bounded; DESIGN.md §12)",
		"recovery = mean epochs from eviction to successful re-placement",
		"evicted - placed - abandoned = orphans still pending when the horizon ends (the churn bound re-places at most 16 per epoch)",
		"dead windows keep the sample set complete, so E_S comparisons across rows are apples-to-apples")
	res.Tables = append(res.Tables, tab)
	return res, nil
}
