package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolPreservesSubmissionOrderResults(t *testing.T) {
	p := newPool(RunConfig{Parallel: 4})
	var futs []*future[int]
	for i := 0; i < 32; i++ {
		futs = append(futs, submit(p, func() (int, error) { return i * i, nil }))
	}
	for i, f := range futs {
		v, err := f.wait()
		if err != nil {
			t.Fatal(err)
		}
		if v != i*i {
			t.Errorf("job %d returned %d, want %d", i, v, i*i)
		}
	}
}

func TestPoolPropagatesErrors(t *testing.T) {
	p := newPool(RunConfig{Parallel: 2})
	boom := errors.New("boom")
	ok := submit(p, func() (string, error) { return "fine", nil })
	bad := submit(p, func() (string, error) { return "", boom })
	if v, err := ok.wait(); err != nil || v != "fine" {
		t.Errorf("ok job: %q, %v", v, err)
	}
	if _, err := bad.wait(); !errors.Is(err, boom) {
		t.Errorf("bad job err = %v", err)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := newPool(RunConfig{Parallel: workers})
	var running, peak atomic.Int32
	var mu sync.Mutex
	var futs []*future[struct{}]
	for i := 0; i < 24; i++ {
		futs = append(futs, submit(p, func() (struct{}, error) {
			n := running.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			running.Add(-1)
			return struct{}{}, nil
		}))
	}
	for _, f := range futs {
		if _, err := f.wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := peak.Load(); got > workers {
		t.Errorf("observed %d concurrent jobs, cap is %d", got, workers)
	}
}

// The pool must not change what a runner renders: the same experiment at
// parallelism 1 and 4 yields byte-identical tables. (Runs under -race, this
// also exercises the fan-out for data races.)
func TestRunnerDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs controller sweeps; not -short")
	}
	for _, id := range []string{"table2", "fig5", "ablation-interval"} {
		d, ok := Lookup(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		render := func(parallel int) string {
			res, err := d.Run(RunConfig{Seed: 42, Quick: true, Parallel: parallel})
			if err != nil {
				t.Fatalf("%s parallel=%d: %v", id, parallel, err)
			}
			var b strings.Builder
			res.Fprint(&b)
			return b.String()
		}
		if seq, par := render(1), render(4); seq != par {
			t.Errorf("%s renders differently at parallel 1 vs 4:\n--- seq ---\n%s\n--- par ---\n%s", id, seq, par)
		}
	}
}

func TestTableRenderingAlignsRunes(t *testing.T) {
	tab := Table{
		Columns: []string{"app", "E_S"},
	}
	tab.AddRow("café-détour", "0.1") // 11 runes, 13 bytes
	tab.AddRow("plain-ascii", "0.2") // 11 runes, 11 bytes
	var b strings.Builder
	tab.Fprint(&b)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	// Both data rows pad the first column to the same rune width, so the
	// second column starts at the same rune offset in every row.
	var offsets []int
	for _, line := range lines[2:] {
		idx := strings.Index(line, "0.")
		if idx < 0 {
			t.Fatalf("row %q missing value cell", line)
		}
		offsets = append(offsets, len([]rune(line[:idx])))
	}
	if offsets[0] != offsets[1] {
		t.Errorf("value column misaligned: rune offsets %v\n%s", offsets, b.String())
	}
	if !strings.Contains(fmt.Sprint(lines), "café-détour") {
		t.Error("non-ASCII cell lost")
	}
}
