package experiments

import (
	"fmt"

	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sim"
	"ahq/internal/workload"
)

func init() {
	register(Descriptor{
		ID:    "fig7",
		Title: "Fig. 7: solo tail latency vs arrival rate with 1/2/4/8 cores",
		Run:   runFig7,
	})
}

// runFig7 reproduces the profiling methodology of Section V: each LC
// application runs alone with 1, 2, 4 and 8 cores while its arrival rate
// sweeps from 10% to 110% of max load, and the p95 is recorded. The curves
// must show the hockey-stick: flat at low load, exploding past the knee,
// with the knee moving right as cores are added (up to the 4-thread limit).
func runFig7(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "fig7", Title: "Solo latency-load profiles"}
	apps := []string{"xapian", "moses", "img-dnn", "sphinx"}
	loads := []float64{0.10, 0.30, 0.50, 0.70, 0.85, 1.00, 1.10}
	coreCounts := []int{1, 2, 4, 8}
	if cfg.Quick {
		apps = apps[:2]
		loads = []float64{0.10, 0.50, 0.85, 1.10}
		coreCounts = []int{1, 4}
	}
	p := newPool(cfg)
	futs := make(map[string][][]*future[float64], len(apps))
	for _, name := range apps {
		cells := make([][]*future[float64], len(loads))
		for i, load := range loads {
			cells[i] = make([]*future[float64], len(coreCounts))
			for j, cores := range coreCounts {
				cells[i][j] = submit(p, func() (float64, error) {
					return soloP95(cfg, name, load, cores)
				})
			}
		}
		futs[name] = cells
	}
	for _, name := range apps {
		app := workload.MustLC(name)
		tab := Table{
			Caption: fmt.Sprintf("%s: p95 (ms) vs load fraction of max (%.0f QPS); target M=%.2f ms",
				name, app.MaxLoadQPS, app.QoSTargetMs),
			Columns: []string{"load"},
		}
		for _, c := range coreCounts {
			tab.Columns = append(tab.Columns, fmt.Sprintf("%d cores", c))
		}
		for i, load := range loads {
			row := []string{fmtPct(load)}
			for j := range coreCounts {
				p95, err := futs[name][i][j].wait()
				if err != nil {
					return nil, err
				}
				row = append(row, fmtMs(p95))
			}
			tab.Rows = append(tab.Rows, row)
		}
		res.Tables = append(res.Tables, tab)
	}
	return res, nil
}

// soloP95 runs one LC application alone on the given core count (all ways,
// all bandwidth) and returns its run-level mean p95.
func soloP95(cfg RunConfig, name string, load float64, cores int) (float64, error) {
	spec := machine.DefaultSpec()
	spec.Cores = cores
	unmanaged, err := StrategyByName("unmanaged")
	if err != nil {
		return 0, err
	}
	// Sphinx requests run for ~1 s, so short horizons starve the
	// percentile; stretch the run for long-service applications.
	opts := core.Options{}
	if workload.MustLC(name).ServiceMeanMs > 100 {
		opts.EpochMs = 5_000
		opts.WarmupMs = 20_000
		opts.DurationMs = 120_000
		if cfg.Quick {
			opts.WarmupMs = 10_000
			opts.DurationMs = 40_000
		}
	}
	run, err := runMix(cfg, spec, []sim.AppConfig{lcAt(name, load)}, unmanaged, opts)
	if err != nil {
		return 0, err
	}
	return run.Apps[0].MeanP95Ms, nil
}
