package experiments

import (
	"testing"

	"ahq/internal/core"
	"ahq/internal/machine"
)

// TestARQAdvantageIsSeedRobust guards the reproduction's central comparison
// against seed luck: across several seeds, ARQ's mean E_S on the contended
// Stream mix must not lose to PARTIES by more than noise, and must win on
// average.
func TestARQAdvantageIsSeedRobust(t *testing.T) {
	if testing.Short() {
		t.Skip("not -short")
	}
	arqF, err := StrategyByName("arq")
	if err != nil {
		t.Fatal(err)
	}
	parF, err := StrategyByName("parties")
	if err != nil {
		t.Fatal(err)
	}
	var arqSum, parSum float64
	wins := 0
	seeds := []int64{11, 42, 97}
	for _, seed := range seeds {
		cfg := RunConfig{Seed: seed, Quick: true}
		apps := standardMix(0.50, 0.20, 0.20, "stream")
		arqRun, err := runMix(cfg, machine.DefaultSpec(), apps, arqF, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		parRun, err := runMix(cfg, machine.DefaultSpec(), apps, parF, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		arqSum += arqRun.MeanES
		parSum += parRun.MeanES
		if arqRun.MeanES < parRun.MeanES+0.02 {
			wins++
		}
	}
	if wins < len(seeds)-1 {
		t.Errorf("ARQ beat PARTIES (within noise) on only %d of %d seeds", wins, len(seeds))
	}
	if arqSum >= parSum {
		t.Errorf("mean E_S over seeds: ARQ %.3f >= PARTIES %.3f", arqSum/3, parSum/3)
	}
}

// TestEntropyResourceMonotoneAcrossSeeds guards property ② at experiment
// granularity: for each seed, Unmanaged E_S at 5 cores must exceed E_S at
// 9 cores by a clear margin.
func TestEntropyResourceMonotoneAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("not -short")
	}
	unmanaged, err := StrategyByName("unmanaged")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{5, 19} {
		cfg := RunConfig{Seed: seed, Quick: true}
		scarce, err := esAt(cfg, unmanaged, 5, 20)
		if err != nil {
			t.Fatal(err)
		}
		ample, err := esAt(cfg, unmanaged, 9, 20)
		if err != nil {
			t.Fatal(err)
		}
		if scarce < ample+0.1 {
			t.Errorf("seed %d: E_S(5 cores)=%.3f not clearly above E_S(9 cores)=%.3f",
				seed, scarce, ample)
		}
	}
}
