package experiments

import (
	"strings"
	"testing"
)

func quickCfg() RunConfig { return RunConfig{Seed: 42, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact must be registered (DESIGN.md §4).
	want := []string{
		"fig1", "table2", "fig2", "fig3a", "fig3b", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "headline",
		"ablation-interval", "ablation-arq", "ablation-ri", "ablation-tunables", "ext-weighted", "ext-heracles", "ext-cluster", "ext-bignode", "ext-fleet", "ext-fleetchaos", "fig4",
		"chaos",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	// All() is sorted by id.
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatal("All() not sorted")
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Caption: "cap",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("x", 1.5)
	tab.AddRow("longer-cell", "v")
	var b strings.Builder
	tab.Fprint(&b)
	out := b.String()
	for _, want := range []string{"cap", "long-column", "1.500", "longer-cell", "note: a note", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestStrategyFactories(t *testing.T) {
	if len(AllStrategies()) != 5 {
		t.Fatalf("want the paper's five strategies, got %d", len(AllStrategies()))
	}
	for _, f := range AllStrategies() {
		s := f.New(1)
		if s.Name() != f.Name {
			t.Errorf("factory %q builds strategy %q", f.Name, s.Name())
		}
		// Fresh instance each call (stateful strategies must not be
		// shared across sweep points).
		if f.Name == "arq" || f.Name == "parties" || f.Name == "clite" {
			if f.New(1) == s {
				t.Errorf("factory %q reuses instances", f.Name)
			}
		}
	}
	if _, err := StrategyByName("nope"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// The experiment smoke tests run every registered artifact in Quick mode:
// an integration pass over the entire stack (catalog -> engine -> controller
// -> strategies -> entropy -> rendering).
func TestExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not -short")
	}
	// fig13 and fig12 have their own tests below; keep this loop lean.
	skip := map[string]bool{"fig13": true, "fig12": true, "fig10": true, "fig11": true}
	for _, d := range All() {
		if skip[d.ID] {
			continue
		}
		d := d
		t.Run(d.ID, func(t *testing.T) {
			t.Parallel()
			res, err := d.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", d.ID, err)
			}
			if res.ID != d.ID {
				t.Errorf("result id %q", res.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s produced no tables", d.ID)
			}
			for _, tab := range res.Tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", d.ID, tab.Caption)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("%s: row width %d != %d columns", d.ID, len(row), len(tab.Columns))
					}
				}
			}
			var b strings.Builder
			res.Fprint(&b)
			if !strings.Contains(b.String(), d.ID) {
				t.Error("rendered result missing its id")
			}
		})
	}
}

func TestFig13Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("not -short")
	}
	res, err := Lookup("fig13")
	if !err {
		t.Fatal("fig13 missing")
	}
	out, errr := res.Run(quickCfg())
	if errr != nil {
		t.Fatal(errr)
	}
	// Summary plus three per-strategy timelines.
	if len(out.Tables) != 4 {
		t.Fatalf("fig13 produced %d tables, want 4", len(out.Tables))
	}
	if len(out.Tables[0].Rows) != 3 {
		t.Errorf("summary has %d strategies, want 3", len(out.Tables[0].Rows))
	}
}
