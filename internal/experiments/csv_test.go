package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	tab := Table{
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "x,y"}, {"2", "z"}},
	}
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n2,z\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestSaveCSVs(t *testing.T) {
	dir := t.TempDir()
	res := &Result{
		ID: "demo",
		Tables: []Table{
			{Caption: "First Table!", Columns: []string{"x"}, Rows: [][]string{{"1"}}},
			{Caption: "", Columns: []string{"y"}, Rows: [][]string{{"2"}}},
		},
	}
	files, err := res.SaveCSVs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("wrote %d files", len(files))
	}
	if !strings.HasPrefix(files[0], "demo_00_first-table") {
		t.Errorf("file name %q", files[0])
	}
	if !strings.Contains(files[1], "table") {
		t.Errorf("empty caption should fall back to 'table': %q", files[1])
	}
	data, err := os.ReadFile(filepath.Join(dir, files[0]))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "x\n1\n" {
		t.Errorf("content = %q", data)
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Hello, World":  "hello-world",
		"":              "table",
		"---":           "table",
		"E_S under arq": "e-s-under-arq",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
	long := strings.Repeat("abc ", 40)
	if got := slug(long); len(got) > 41 {
		t.Errorf("slug too long: %d chars", len(got))
	}
}
