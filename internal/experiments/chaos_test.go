package experiments

import (
	"strings"
	"testing"
)

// TestChaosDeterministicAcrossRuns: fault injection must not cost the
// harness its byte-identical-output guarantee — two seeded chaos runs (and
// any parallelism level) render exactly the same report.
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs controller sweeps; not -short")
	}
	d, ok := Lookup("chaos")
	if !ok {
		t.Fatal("chaos experiment not registered")
	}
	render := func(parallel int) string {
		res, err := d.Run(RunConfig{Seed: 42, Quick: true, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		res.Fprint(&b)
		return b.String()
	}
	first := render(1)
	if again := render(1); first != again {
		t.Error("two identical chaos runs rendered differently")
	}
	if par := render(4); first != par {
		t.Error("chaos renders differently at parallel 1 vs 4")
	}
	// The report must carry the accounting proof, and no run may end on
	// an invalid allocation.
	if !strings.Contains(first, "incident accounting") {
		t.Error("report missing the incident-accounting table")
	}
	if strings.Contains(first, "INVALID") {
		t.Error("a faulted run ended on an invalid allocation")
	}
}

// TestChaosScenariosParse keeps the scenario table honest: every plan spec
// must parse and round-trip through its canonical form.
func TestChaosScenariosParse(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range chaosScenarios {
		if seen[sc.name] {
			t.Errorf("duplicate scenario %q", sc.name)
		}
		seen[sc.name] = true
	}
	if !seen["none"] {
		t.Error("scenario table missing the fault-free baseline")
	}
}
