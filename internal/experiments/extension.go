package experiments

import (
	"fmt"

	"ahq/internal/core"
	"ahq/internal/entropy"
	"ahq/internal/machine"
	"ahq/internal/workload"
)

func init() {
	register(Descriptor{
		ID:    "ext-weighted",
		Title: "Extension: per-application RI weights within the LC class (paper §II-B)",
		Run:   runExtWeighted,
	})
}

// runExtWeighted exercises the extension the paper sketches at the end of
// Section II-B: different importance factors among applications of the
// same class. A contended run is scored three ways — evenly, with Xapian
// weighted as the business-critical service, and with Moses weighted up —
// showing how the same raw measurements produce different system verdicts
// (and which strategy each weighting favours).
func runExtWeighted(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "ext-weighted", Title: "Per-application RI weighting"}
	weightings := []struct {
		label   string
		weights map[string]float64
	}{
		{"even", map[string]float64{"xapian": 1, "moses": 1, "img-dnn": 1}},
		{"xapian-critical", map[string]float64{"xapian": 8, "moses": 1, "img-dnn": 1}},
		{"moses-critical", map[string]float64{"xapian": 1, "moses": 8, "img-dnn": 1}},
	}
	tab := Table{
		Caption: "weighted E_LC / E_S per strategy (Xapian 70%, Moses/Img-dnn 20%, Stream)",
		Columns: []string{"strategy"},
	}
	for _, w := range weightings {
		tab.Columns = append(tab.Columns, w.label+" E_LC", w.label+" E_S")
	}
	p := newPool(cfg)
	names := []string{"parties", "arq"}
	futs := make([]*future[*core.Result], len(names))
	for i, name := range names {
		f, err := StrategyByName(name)
		if err != nil {
			return nil, err
		}
		futs[i] = runMixAsync(p, cfg, machine.DefaultSpec(),
			standardMix(0.70, 0.20, 0.20, "stream"), f, core.Options{})
	}
	for i, name := range names {
		run, err := futs[i].wait()
		if err != nil {
			return nil, err
		}
		row := []string{name}
		var be []entropy.Weighted[entropy.BESample]
		var lcPlain []entropy.LCSample
		for _, a := range run.Apps {
			if a.Spec.Class == workload.LC {
				lcPlain = append(lcPlain, a.LCSample)
			} else if a.MeanIPC > 0 {
				be = append(be, entropy.Weighted[entropy.BESample]{Sample: a.BESample, Weight: 1})
			}
		}
		for _, w := range weightings {
			var lc []entropy.Weighted[entropy.LCSample]
			for _, s := range lcPlain {
				lc = append(lc, entropy.Weighted[entropy.LCSample]{Sample: s, Weight: w.weights[s.Name]})
			}
			elc, _, es, err := entropy.WeightedSystem{RI: entropy.DefaultRI}.Compute(lc, be)
			if err != nil {
				return nil, fmt.Errorf("weighting %s: %w", w.label, err)
			}
			row = append(row, fmt.Sprintf("%.3f", elc), fmt.Sprintf("%.3f", es))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes,
		"with equal weights this reduces exactly to Eq. 5/Eq. 7 (tested in internal/entropy)")
	res.Tables = append(res.Tables, tab)
	return res, nil
}
