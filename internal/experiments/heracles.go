package experiments

import (
	"fmt"

	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sched/heracles"
)

func init() {
	register(Descriptor{
		ID:    "ext-heracles",
		Title: "Extension: Heracles-style threshold baseline vs. PARTIES and ARQ",
		Run:   runExtHeracles,
	})
}

// runExtHeracles places the Heracles-style controller (related work the
// paper discusses but does not evaluate) between the evaluated strategies
// on the Stream collocation. Expected shape: Heracles protects LC tails by
// clawing resources back from the single BE partition, but because it
// cannot rebalance resources *between* LC applications it loses to both
// PARTIES and ARQ once the LC class itself is imbalanced (high Xapian
// load).
func runExtHeracles(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "ext-heracles", Title: "Heracles comparison"}
	strategies := []StrategyFactory{
		{Name: "heracles", New: func(int64) sched.Strategy { return heracles.Default() }},
	}
	parties, err := StrategyByName("parties")
	if err != nil {
		return nil, err
	}
	arq, err := StrategyByName("arq")
	if err != nil {
		return nil, err
	}
	strategies = append(strategies, parties, arq)

	loads := []float64{0.10, 0.50, 0.90}
	tab := Table{
		Caption: "Xapian sweep (Moses/Img-dnn 20%, Stream): mean E_LC / E_BE / E_S",
		Columns: []string{"strategy"},
	}
	for _, l := range loads {
		tab.Columns = append(tab.Columns,
			fmtPct(l)+" E_LC", fmtPct(l)+" E_BE", fmtPct(l)+" E_S")
	}
	p := newPool(cfg)
	futs := make([][]*future[*core.Result], len(strategies))
	for si, f := range strategies {
		futs[si] = make([]*future[*core.Result], len(loads))
		for li, l := range loads {
			futs[si][li] = runMixAsync(p, cfg, machine.DefaultSpec(),
				standardMix(l, 0.20, 0.20, "stream"), f, core.Options{})
		}
	}
	for si, f := range strategies {
		row := []string{f.Name}
		for li := range loads {
			run, err := futs[si][li].wait()
			if err != nil {
				return nil, err
			}
			row = append(row,
				fmt.Sprintf("%.3f", run.MeanELC),
				fmt.Sprintf("%.3f", run.MeanEBE),
				fmt.Sprintf("%.3f", run.MeanES))
		}
		tab.Rows = append(tab.Rows, row)
	}
	res.Tables = append(res.Tables, tab)
	return res, nil
}
