package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.25, 3.25}, {0.95, 9.55},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(p=%.2f) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPercentileEdges(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty slice should give NaN")
	}
	if got := Percentile([]float64{7}, 0.95); got != 7 {
		t.Errorf("single sample p95 = %g, want 7", got)
	}
	if got := Percentile([]float64{3, 1}, 1.5); got != 3 {
		t.Errorf("p>1 should clamp to max, got %g", got)
	}
	if got := Percentile([]float64{3, 1}, -1); got != 1 {
		t.Errorf("p<0 should clamp to min, got %g", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(pRaw) / 255
		got := Percentile(xs, p)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		// Bounded by the extremes and monotone in p.
		if got < sorted[0] || got > sorted[len(sorted)-1] {
			return false
		}
		return Percentile(xs, p) <= Percentile(xs, math.Min(1, p+0.1))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestP2AgainstExactOnLogNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []float64{0.5, 0.95, 0.99} {
		est := NewP2(p)
		var xs []float64
		for i := 0; i < 50_000; i++ {
			v := math.Exp(rng.NormFloat64() * 0.8)
			est.Add(v)
			xs = append(xs, v)
		}
		exact := Percentile(xs, p)
		got := est.Value()
		if rel := math.Abs(got-exact) / exact; rel > 0.05 {
			t.Errorf("p=%.2f: P2 = %g vs exact %g (rel err %.3f)", p, got, exact, rel)
		}
	}
}

func TestP2SmallSamples(t *testing.T) {
	est := NewP2(0.95)
	if !math.IsNaN(est.Value()) {
		t.Error("empty estimator should report NaN")
	}
	est.Add(3)
	est.Add(1)
	// With two samples the fallback is the exact interpolated quantile:
	// 1 + 0.95*(3-1) = 2.9.
	if got := est.Value(); math.Abs(got-2.9) > 1e-9 {
		t.Errorf("two-sample p95 = %g, want 2.9", got)
	}
	if est.Count() != 2 {
		t.Errorf("Count = %d", est.Count())
	}
	est.Reset()
	if est.Count() != 0 || !math.IsNaN(est.Value()) {
		t.Error("Reset did not clear estimator")
	}
}

func TestMeanAndMax(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Mean/Max should be NaN")
	}
	if got := Max([]float64{1, 5, 2}); got != 5 {
		t.Errorf("Max = %g", got)
	}
}
