// Package metrics provides the measurement substrate of the reproduction:
// tail-latency percentile estimation (exact and streaming), sliding
// measurement windows, and IPC accounting. It stands in for the performance
// counters and the Tailbench latency harness of the paper's testbed.
package metrics

import (
	"math"
	"sort"
)

// Percentile returns the p-quantile (p in [0,1]) of the samples using linear
// interpolation between closest ranks (the same convention as numpy's
// default). It returns NaN for an empty slice. The input is not modified.
func Percentile(samples []float64, p float64) float64 {
	n := len(samples)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return samples[0]
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is like Percentile but requires the input to be sorted
// ascending and does not copy it.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// P95 returns the 95th-percentile of the samples; the paper uses p95 as its
// tail-latency metric throughout.
func P95(samples []float64) float64 { return Percentile(samples, 0.95) }

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// Max returns the maximum, or NaN for an empty slice.
func Max(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	m := samples[0]
	for _, v := range samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
