// Package metrics provides the measurement substrate of the reproduction:
// tail-latency percentile estimation (exact and streaming), sliding
// measurement windows, and IPC accounting. It stands in for the performance
// counters and the Tailbench latency harness of the paper's testbed.
package metrics

import "math"

// Percentile returns the p-quantile (p in [0,1]) of the samples using linear
// interpolation between closest ranks (the same convention as numpy's
// default). It returns NaN for an empty slice. The input is not modified.
//
// The quantile is found by quickselect rather than a full sort: the two
// closest-rank order statistics are exact sample values whichever algorithm
// surfaces them, so the result is bit-identical to sorting first, at O(n)
// instead of O(n log n) — run-level latency streams reach tens of thousands
// of samples.
func Percentile(samples []float64, p float64) float64 {
	n := len(samples)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return samples[0]
	}
	work := append([]float64(nil), samples...)
	return PercentileInPlace(work, p)
}

// PercentileInPlace is Percentile over a scratch slice the caller allows to
// be reordered (it is partially partitioned, not sorted, on return).
func PercentileInPlace(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 || p <= 0 {
		m := xs[0]
		for _, v := range xs[1:] {
			if v < m {
				m = v
			}
		}
		return m
	}
	if p >= 1 {
		return Max(xs)
	}
	rank := p * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	selectFloat(xs, lo)
	v := xs[lo]
	if lo == hi {
		return v
	}
	// The next order statistic is the minimum of the suffix quickselect
	// left above position lo.
	w := xs[lo+1]
	for _, x := range xs[lo+2:] {
		if x < w {
			w = x
		}
	}
	frac := rank - float64(lo)
	return v*(1-frac) + w*frac
}

// selectFloat partially sorts xs so that xs[k] holds the k-th smallest
// element, everything before it is no larger and everything after it no
// smaller (Hoare quickselect with a median-of-three pivot; small ranges
// finish by insertion sort).
func selectFloat(xs []float64, k int) {
	lo, hi := 0, len(xs)-1
	for {
		if hi-lo < 16 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && xs[j] < xs[j-1]; j-- {
					xs[j], xs[j-1] = xs[j-1], xs[j]
				}
			}
			return
		}
		p := median3(xs[lo], xs[(lo+hi)/2], xs[hi])
		i, j := lo, hi
		for i <= j {
			for xs[i] < p {
				i++
			}
			for xs[j] > p {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return
		}
	}
}

// PercentileSorted is like Percentile but requires the input to be sorted
// ascending and does not copy it.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// P95 returns the 95th-percentile of the samples; the paper uses p95 as its
// tail-latency metric throughout.
func P95(samples []float64) float64 { return Percentile(samples, 0.95) }

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// Max returns the maximum, or NaN for an empty slice.
func Max(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	m := samples[0]
	for _, v := range samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
