package metrics

import "math"

// P2 is the Jain & Chlamtac P-squared streaming quantile estimator. The
// controller daemon uses it to track tail latency over long horizons without
// retaining every sample; the simulator's 500 ms windows use exact
// percentiles, and the two agree to within a few percent (see tests).
type P2 struct {
	p       float64
	n       int
	heights [5]float64 // marker heights
	pos     [5]float64 // marker positions (1-based)
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired position increments per observation
	initial []float64
}

// NewP2 returns an estimator for the p-quantile, p in (0,1).
func NewP2(p float64) *P2 {
	e := &P2{p: p}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Add observes one sample.
func (e *P2) Add(x float64) {
	if e.n < 5 {
		e.initial = append(e.initial, x)
		e.n++
		if e.n == 5 {
			sortFive(e.initial)
			for i := 0; i < 5; i++ {
				e.heights[i] = e.initial[i]
				e.pos[i] = float64(i + 1)
			}
			e.want = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
			e.initial = nil
		}
		return
	}
	e.n++

	// Find the cell k containing x and update extreme markers.
	var k int
	switch {
	case x < e.heights[0]:
		e.heights[0] = x
		k = 0
	case x >= e.heights[4]:
		e.heights[4] = x
		k = 3
	default:
		for i := 1; i < 5; i++ {
			if x < e.heights[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.inc[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := e.parabolic(i, sign)
			if e.heights[i-1] < h && h < e.heights[i+1] {
				e.heights[i] = h
			} else {
				e.heights[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

func (e *P2) parabolic(i int, d float64) float64 {
	return e.heights[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.heights[i+1]-e.heights[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.heights[i]-e.heights[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.heights[i] + d*(e.heights[j]-e.heights[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate. With fewer than five samples
// it falls back to the exact quantile of what it has seen; with none it
// returns NaN.
func (e *P2) Value() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	if e.n < 5 {
		tmp := append([]float64(nil), e.initial...)
		sortFive(tmp)
		return PercentileSorted(tmp, e.p)
	}
	return e.heights[2]
}

// Count returns the number of samples observed.
func (e *P2) Count() int { return e.n }

// Reset clears the estimator for reuse.
func (e *P2) Reset() {
	*e = *NewP2(e.p)
}

// sortFive is an insertion sort; inputs here are at most five elements.
func sortFive(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
