package metrics

import "math"

// LatencyWindow accumulates request latencies over one monitoring interval
// (500 ms in the paper) and yields the window's tail statistics. Snapshot
// resets it for the next window.
type LatencyWindow struct {
	samples []float64
	dropped int
}

// Observe records one completed request's latency in milliseconds.
func (w *LatencyWindow) Observe(latencyMs float64) {
	//ahqlint:allow hotpath amortized: the buffer grows to the steady window size once, then Reset reuses it
	w.samples = append(w.samples, latencyMs)
}

// Drop records one request rejected by client-side backpressure.
func (w *LatencyWindow) Drop() { w.dropped++ }

// Len returns the number of latencies recorded in the current window.
func (w *LatencyWindow) Len() int { return len(w.samples) }

// WindowStats summarises one monitoring interval for one application.
type WindowStats struct {
	// P50, P95, P99 and Mean are latency percentiles in milliseconds over
	// the window; NaN when no request completed.
	P50, P95, P99, Mean float64
	// Completed is the number of requests that finished in the window.
	Completed int
	// Dropped is the number of requests rejected by load-generator
	// backpressure (finite client connection pools).
	Dropped int
}

// Snapshot computes the window statistics and resets the window.
func (w *LatencyWindow) Snapshot() WindowStats {
	s := WindowStats{Completed: len(w.samples), Dropped: w.dropped}
	if len(w.samples) == 0 {
		s.P50, s.P95, s.P99, s.Mean = math.NaN(), math.NaN(), math.NaN(), math.NaN()
	} else {
		sorted := w.samples
		insertionOrQuick(sorted)
		s.P50 = PercentileSorted(sorted, 0.50)
		s.P95 = PercentileSorted(sorted, 0.95)
		s.P99 = PercentileSorted(sorted, 0.99)
		sum := 0.0
		for _, v := range sorted {
			sum += v
		}
		s.Mean = sum / float64(len(sorted))
	}
	w.samples = w.samples[:0]
	w.dropped = 0
	return s
}

// TailSnapshot computes the window statistics the engine's telemetry
// actually consumes — the p95 tail, the mean, and the counts — and resets
// the window. The tail comes from one quickselect pass instead of the full
// sort Snapshot pays, and the mean is summed in observation order before
// the samples are reordered; P50 and P99 are NaN. The p95 it returns is
// bit-identical to Snapshot's.
func (w *LatencyWindow) TailSnapshot() WindowStats {
	s := WindowStats{Completed: len(w.samples), Dropped: w.dropped}
	s.P50, s.P99 = math.NaN(), math.NaN()
	if len(w.samples) == 0 {
		s.P95, s.Mean = math.NaN(), math.NaN()
	} else {
		sum := 0.0
		for _, v := range w.samples {
			sum += v
		}
		s.Mean = sum / float64(len(w.samples))
		s.P95 = PercentileInPlace(w.samples, 0.95)
	}
	w.samples = w.samples[:0]
	w.dropped = 0
	return s
}

// WorkWindow accumulates best-effort work (core-milliseconds of effective
// progress) over one monitoring interval to derive IPC.
type WorkWindow struct {
	workMs float64
}

// Add records effective work done during one tick.
func (w *WorkWindow) Add(workMs float64) { w.workMs += workMs }

// Snapshot returns the accumulated work and resets the window.
func (w *WorkWindow) Snapshot() float64 {
	v := w.workMs
	w.workMs = 0
	return v
}

// insertionOrQuick sorts in place; windows are typically a few hundred to a
// few thousand samples, where the plain-comparison quicksort below beats
// the stdlib's generic sort (whose comparator pays a NaN check per
// compare; latencies are never NaN), and tiny windows are common in
// overload, so avoid even that overhead for them.
func insertionOrQuick(xs []float64) {
	if len(xs) <= 32 {
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		return
	}
	quickSort(xs)
}

func quickSort(xs []float64) {
	if len(xs) <= 32 {
		insertionOrQuick(xs)
		return
	}
	pivot := median3(xs[0], xs[len(xs)/2], xs[len(xs)-1])
	lo, hi := 0, len(xs)-1
	for lo <= hi {
		for xs[lo] < pivot {
			lo++
		}
		for xs[hi] > pivot {
			hi--
		}
		if lo <= hi {
			xs[lo], xs[hi] = xs[hi], xs[lo]
			lo++
			hi--
		}
	}
	quickSort(xs[:hi+1])
	quickSort(xs[lo:])
}

func median3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
