package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLatencyWindowSnapshot(t *testing.T) {
	var w LatencyWindow
	for _, v := range []float64{5, 1, 3, 2, 4} {
		w.Observe(v)
	}
	w.Drop()
	w.Drop()
	if w.Len() != 5 {
		t.Errorf("Len = %d", w.Len())
	}
	st := w.Snapshot()
	if st.Completed != 5 || st.Dropped != 2 {
		t.Errorf("Completed=%d Dropped=%d", st.Completed, st.Dropped)
	}
	if st.P50 != 3 || st.Mean != 3 {
		t.Errorf("P50=%g Mean=%g", st.P50, st.Mean)
	}
	if st.P95 < 4.5 || st.P95 > 5 {
		t.Errorf("P95 = %g", st.P95)
	}
	// Snapshot resets.
	st2 := w.Snapshot()
	if st2.Completed != 0 || !math.IsNaN(st2.P95) {
		t.Errorf("window not reset: %+v", st2)
	}
}

func TestLatencyWindowSortMatchesStdlib(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%2000 + 1
		var w LatencyWindow
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 10
			w.Observe(xs[i])
		}
		st := w.Snapshot()
		sort.Float64s(xs)
		want := PercentileSorted(xs, 0.95)
		return math.Abs(st.P95-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWorkWindow(t *testing.T) {
	var w WorkWindow
	w.Add(1.5)
	w.Add(2.5)
	if got := w.Snapshot(); got != 4 {
		t.Errorf("Snapshot = %g", got)
	}
	if got := w.Snapshot(); got != 0 {
		t.Errorf("second Snapshot = %g, want 0 (reset)", got)
	}
}
