package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestP2FallbackMatchesExactBelowFiveSamples: with fewer than five samples
// the estimator has no markers yet and must return the exact quantile of
// what it has seen — the same value Percentile computes.
func TestP2FallbackMatchesExactBelowFiveSamples(t *testing.T) {
	for _, p := range []float64{0.5, 0.95, 0.99} {
		samples := []float64{7.5, 1.25, 3.0, 9.75}
		est := NewP2(p)
		var seen []float64
		for _, x := range samples {
			est.Add(x)
			seen = append(seen, x)
			want := Percentile(seen, p)
			if got := est.Value(); got != want {
				t.Errorf("p=%.2f after %d samples: fallback %v, exact %v", p, len(seen), got, want)
			}
		}
	}
	if v := NewP2(0.95).Value(); !math.IsNaN(v) {
		t.Errorf("empty estimator returned %v, want NaN", v)
	}
}

// TestP2LongStreamsTrackExactPercentiles compares the streaming estimate
// against the exact percentile over long streams from several shapes —
// uniform, heavy-tailed and bimodal — at the quantiles the controller uses.
func TestP2LongStreamsTrackExactPercentiles(t *testing.T) {
	const n = 50_000
	gens := map[string]func(*rand.Rand) float64{
		"uniform":     func(r *rand.Rand) float64 { return 10 * r.Float64() },
		"exponential": func(r *rand.Rand) float64 { return r.ExpFloat64() * 3 },
		"bimodal": func(r *rand.Rand) float64 {
			if r.Float64() < 0.8 {
				return 1 + 0.1*r.NormFloat64()
			}
			return 20 + 2*r.NormFloat64()
		},
	}
	for name, gen := range gens {
		for _, p := range []float64{0.5, 0.95, 0.99} {
			rng := rand.New(rand.NewSource(1234))
			est := NewP2(p)
			xs := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				x := gen(rng)
				est.Add(x)
				xs = append(xs, x)
			}
			exact := Percentile(xs, p)
			got := est.Value()
			// The P² estimate converges to within a few percent of the
			// exact quantile; the bimodal p50 sits in a dense cluster
			// where relative error is tightest.
			rel := math.Abs(got-exact) / exact
			if rel > 0.08 {
				t.Errorf("%s p=%.2f: P2 %v vs exact %v (rel err %.3f)", name, p, got, exact, rel)
			}
		}
	}
}

// TestP2DuplicateHeavyInputs: latency streams quantised by a coarse clock
// are dominated by repeated values, which drive the marker-update parabola
// toward zero-width cells. The estimator must stay finite, stay inside the
// observed range, and land on (or near) the duplicated value when it is
// the true quantile.
func TestP2DuplicateHeavyInputs(t *testing.T) {
	t.Run("all-identical", func(t *testing.T) {
		est := NewP2(0.95)
		for i := 0; i < 10_000; i++ {
			est.Add(4.25)
		}
		if got := est.Value(); got != 4.25 {
			t.Errorf("constant stream: estimate %v, want 4.25", got)
		}
	})

	t.Run("ninety-percent-duplicates", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		est := NewP2(0.5)
		xs := make([]float64, 0, 40_000)
		for i := 0; i < 40_000; i++ {
			x := 2.0 // the duplicated mode
			if rng.Float64() > 0.9 {
				x = 2 + 8*rng.Float64()
			}
			est.Add(x)
			xs = append(xs, x)
		}
		got := est.Value()
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("duplicate-heavy stream produced %v", got)
		}
		sort.Float64s(xs)
		if got < xs[0] || got > xs[len(xs)-1] {
			t.Fatalf("estimate %v outside observed range [%v, %v]", got, xs[0], xs[len(xs)-1])
		}
		// The true median is exactly the mode; the estimator must sit on
		// top of it (the dense cell pins the middle marker).
		if math.Abs(got-2.0) > 0.05 {
			t.Errorf("median of 90%%-duplicate stream estimated %v, want ~2.0", got)
		}
	})

	t.Run("two-values", func(t *testing.T) {
		est := NewP2(0.95)
		for i := 0; i < 20_000; i++ {
			x := 1.0
			if i%10 == 9 {
				x = 5.0
			}
			est.Add(x)
		}
		got := est.Value()
		if got < 1 || got > 5 {
			t.Errorf("two-value stream estimate %v escaped [1, 5]", got)
		}
	})
}

// TestPercentileInPlaceMatchesSortedReference pins the quickselect path
// against the sort-based reference bit for bit: both surface exact order
// statistics, so interpolation sees identical inputs.
func TestPercentileInPlaceMatchesSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			switch trial % 3 {
			case 0:
				xs[i] = rng.NormFloat64()
			case 1: // duplicate-heavy
				xs[i] = float64(rng.Intn(5))
			default:
				xs[i] = rng.ExpFloat64()
			}
		}
		for _, p := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
			work := append([]float64(nil), xs...)
			got := PercentileInPlace(work, p)
			ref := append([]float64(nil), xs...)
			sort.Float64s(ref)
			want := PercentileSorted(ref, p)
			if got != want {
				t.Fatalf("trial %d n=%d p=%v: quickselect %v vs sorted %v", trial, n, p, got, want)
			}
		}
	}
}
