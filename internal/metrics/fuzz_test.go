package metrics

import (
	"math"
	"sort"
	"testing"
)

// FuzzP2VsExact feeds arbitrary byte-derived samples to the streaming
// estimator and cross-checks it against the exact percentile: the estimate
// must always lie within the observed range, and within the neighbouring
// exact quantiles for longer streams.
func FuzzP2VsExact(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{255, 0, 255, 0, 255, 0})
	f.Add([]byte{7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		est := NewP2(0.95)
		xs := make([]float64, 0, len(data))
		for _, b := range data {
			v := float64(b) + float64(b%7)/10
			est.Add(v)
			xs = append(xs, v)
		}
		got := est.Value()
		sort.Float64s(xs)
		lo, hi := xs[0], xs[len(xs)-1]
		if math.IsNaN(got) || got < lo-1e-9 || got > hi+1e-9 {
			t.Fatalf("P2 estimate %g outside observed range [%g, %g]", got, lo, hi)
		}
		if len(xs) >= 100 {
			// For long streams the estimate must sit between the p80 and
			// the max — a loose but absolute sanity band.
			p80 := PercentileSorted(xs, 0.80)
			if got < p80-1e-9 {
				t.Fatalf("P2 p95 estimate %g below exact p80 %g (n=%d)", got, p80, len(xs))
			}
		}
	})
}

// FuzzPercentile checks ordering and range invariants of the exact
// percentile under arbitrary inputs.
func FuzzPercentile(f *testing.F) {
	f.Add([]byte{10, 20, 30}, float64(0.5))
	f.Add([]byte{0}, float64(0.95))
	f.Fuzz(func(t *testing.T, data []byte, p float64) {
		if len(data) == 0 || math.IsNaN(p) {
			return
		}
		xs := make([]float64, len(data))
		for i, b := range data {
			xs[i] = float64(b)
		}
		got := Percentile(xs, p)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if got < sorted[0]-1e-9 || got > sorted[len(sorted)-1]+1e-9 {
			t.Fatalf("Percentile(%g) = %g outside [%g, %g]", p, got, sorted[0], sorted[len(sorted)-1])
		}
	})
}
