package cluster

// A placement-comparison sweep — the workload of every score-based
// scheduler in the related work (paws' temporal-utilisation scorer, Mage's
// online candidate evaluation) — runs many fleets over one application
// population. Node contents recur massively across those fleets: the
// population is a small catalog of service templates at quantised load
// steps, so two placements (and two fleet sizes) keep producing nodes
// whose simulations are bit-for-bit the same computation. Within a single
// cluster.Run the DedupIdenticalNodes classing already collapses them;
// across Runs every placement re-simulated everything.
//
// NodeCache extends the collapse to the whole sweep: a concurrency-safe,
// sharded, bounded, content-addressed cache of *completed node
// simulations*, in the mold of sim.SolveCache one level up. The key is a
// bit-exact serialisation of every input a node simulation reads — machine
// spec, core.Options, RI, the engine tunables, a caller-supplied strategy
// identity digest, the node seed, and the canonical application template
// list, floats encoded by their IEEE-754 bit patterns — and the value is
// the node's classOut (summary template plus entropy samples). A hit
// therefore replays the exact record the identical computation produced
// elsewhere, and output stays byte-identical by construction; only wall
// time changes. Entries are published through a single-flight protocol:
// the first goroutine to reach a key claims it and simulates, racers wait
// on the entry's done channel instead of duplicating the work.
//
// The strategy digest is the one key component the engine cannot derive
// itself: Config.NewStrategy is an opaque factory, so the caller must
// declare what it builds (Config.StrategyDigest) and Run refuses a
// NodeCache without one. Two sweeps sharing a cache across different
// strategies must use distinct digests or they would adopt each other's
// records.

import (
	"sort"
	"sync"

	"ahq/internal/core"
	"ahq/internal/sim"
)

// nodeCacheShardCount keeps parallel shard workers from serialising on one
// lock; a small power of two keeps the shard pick free.
const nodeCacheShardCount = 8

// nodeCacheShardMaxEntries bounds each shard. As with the solve cache the
// bound exists to cap memory under adversarial key diversity, not to
// evict: a full shard stops accepting inserts and keeps its early entries.
// 8 shards x 1024 entries covers every unique node content a fleet sweep
// of tens of thousands of nodes produces over a quantised population.
const nodeCacheShardMaxEntries = 1 << 10

// NodeCache is a sweep-scoped, concurrency-safe, bounded cache of
// completed node simulations. The zero value is not usable; construct
// with NewNodeCache. See the package comment above for the contract.
type NodeCache struct {
	shards [nodeCacheShardCount]nodeCacheShard
}

type nodeCacheShard struct {
	mu      sync.Mutex
	entries map[string]*nodeCacheEntry // guarded by mu
	hits    uint64                     // guarded by mu
	misses  uint64                     // guarded by mu
	full    uint64                     // guarded by mu
}

// nodeCacheEntry is one cached (or in-flight) node simulation. The
// claiming goroutine writes out/err exactly once and then closes done;
// everyone else waits on done before reading, so the fields need no lock.
type nodeCacheEntry struct {
	done chan struct{}
	out  classOut // guarded by done
	err  error    // guarded by done
}

// NodeCacheStats counts cache traffic. Hits and misses depend only on the
// sequence of Run invocations sharing the cache, but with racing callers
// the split between a hit and a single-flight wait depends on scheduling —
// so, like FleetStats, the counters are for logs and benchmarks, never for
// deterministic output.
type NodeCacheStats struct {
	// Hits counts lookups that found an entry (completed or in flight).
	Hits uint64
	// Misses counts claims: lookups that went on to simulate and publish.
	Misses uint64
	// Full counts lookups that found no entry and could not claim one
	// because the shard was at capacity; the caller simulated without
	// publishing.
	Full uint64
}

// NewNodeCache returns an empty cache ready for concurrent use.
func NewNodeCache() *NodeCache {
	c := &NodeCache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*nodeCacheEntry) //ahqlint:allow lockcheck construction precedes sharing; no other goroutine can hold the cache yet
	}
	return c
}

// Len reports the number of cached node simulations, including in-flight
// claims (for tests and telemetry).
func (c *NodeCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats returns the accumulated counters.
func (c *NodeCache) Stats() NodeCacheStats {
	var st NodeCacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Full += s.full
		s.mu.Unlock()
	}
	return st
}

// shardFor picks the shard by FNV-1a over the key.
func (c *NodeCache) shardFor(key string) *nodeCacheShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h%nodeCacheShardCount]
}

// lookup returns the entry under key, if any — completed or in flight; the
// caller waits on entry.done before reading. The fast path of every cached
// node in a warm sweep.
//
//ahq:hotpath
func (c *NodeCache) lookup(key string) (*nodeCacheEntry, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.hits++
	}
	s.mu.Unlock()
	return e, ok
}

// claim inserts an in-flight entry under key and returns it with
// claimed=true: the caller must simulate and publish via complete, or
// racers waiting on the entry would block forever. When a racer claimed
// the key first the existing entry is returned with claimed=false (wait on
// it like a lookup hit), and when the shard is full claim returns
// (nil, false): simulate without publishing.
func (c *NodeCache) claim(key string) (e *nodeCacheEntry, claimed bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.hits++
		s.mu.Unlock()
		return e, false
	}
	if len(s.entries) >= nodeCacheShardMaxEntries {
		s.full++
		s.mu.Unlock()
		return nil, false
	}
	e = &nodeCacheEntry{done: make(chan struct{})}
	s.entries[key] = e
	s.misses++
	s.mu.Unlock()
	return e, true
}

// complete publishes a claimed entry's simulation outcome and wakes every
// waiter.
func (e *nodeCacheEntry) complete(out classOut, err error) {
	e.out, e.err = out, err
	close(e.done)
}

// publish completes a claimed entry and, when the simulation errored,
// drops the entry from its shard after the waiters are released. Errors
// must not be cached: a permanently published error would poison the
// content-address for the whole sweep, replaying the failure as a hit on
// every later lookup, when the right behaviour is to let the class be
// re-simulated (the engine absorbs the failure into a dead record either
// way, but a transient claimant bug must not become a sweep-wide fact).
// The identity check keeps a racing re-claimant's fresh entry intact.
func (c *NodeCache) publish(key string, e *nodeCacheEntry, out classOut, err error) {
	e.complete(out, err)
	if err == nil {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	if s.entries[key] == e {
		delete(s.entries, key)
	}
	s.mu.Unlock()
}

// wait blocks until the entry is published and returns its outcome.
func (e *nodeCacheEntry) wait() (classOut, error) {
	<-e.done
	return e.out, e.err
}

// templateKey canonically serialises one node's application template — the
// Apps slice a node simulation would be constructed with, in order. It
// reports ok=false when some application is not key-serialisable (a load
// profile outside trace's catalog); such nodes are simulated uncached and,
// under DedupIdenticalNodes, never grouped with any other node.
func templateKey(apps []sim.AppConfig) (key []byte, ok bool) {
	b := make([]byte, 0, 96*len(apps))
	b = sim.AppendKeyInt(b, len(apps))
	for _, a := range apps {
		var aok bool
		if b, aok = sim.AppendAppKey(b, a); !aok {
			return nil, false
		}
	}
	return b, true
}

// nodeKeyPrefix serialises the per-Run node-simulation inputs shared by
// every node of the fleet: the machine spec, the controller options
// (post-default, so spelling a default explicitly cannot split the key),
// the aggregation RI, the engine tunables the cluster engine runs
// (DefaultTunables — cluster.Run constructs its engines without overrides,
// and the serialisation pins that assumption), and the caller's strategy
// identity digest. The per-node seed and template are appended by nodeKey.
func nodeKeyPrefix(cfg *Config, opts core.Options, ri float64) []byte {
	opts = opts.WithDefaults()
	b := make([]byte, 0, 256)
	b = sim.AppendKeyInt(b, cfg.Spec.Cores)
	b = sim.AppendKeyInt(b, cfg.Spec.LLCWays)
	b = sim.AppendKeyInt(b, cfg.Spec.MemBWUnits)
	b = sim.AppendKeyFloat(b, cfg.Spec.MemBWGBps)
	b = sim.AppendKeyFloat(b, opts.EpochMs)
	b = sim.AppendKeyFloat(b, opts.WarmupMs)
	b = sim.AppendKeyFloat(b, opts.DurationMs)
	b = sim.AppendKeyFloat(b, opts.RI)
	if opts.RecordTimeline {
		b = append(b, 'T')
	}
	b = sim.AppendKeyFloat(b, ri)
	b = sim.AppendTunablesKey(b, sim.DefaultTunables())
	b = sim.AppendKeyString(b, cfg.StrategyDigest)
	return append(b, '|')
}

// nodeKey completes a class's cache key: the Run-level prefix, the class
// seed, and the canonical template serialisation.
func nodeKey(prefix []byte, seed int64, template string) string {
	b := make([]byte, 0, len(prefix)+20+len(template))
	b = append(b, prefix...)
	b = sim.AppendKeyInt64(b, seed)
	b = append(b, template...)
	return string(b)
}

// TemplateSeed derives a node seed from the node's application template:
// equal templates get equal seeds, which is the common-random-numbers
// policy screening sweeps want — identical node contents become identical
// simulations, so DedupIdenticalNodes can collapse them within a Run and a
// NodeCache can replay them across Runs. The base seed perturbs the whole
// assignment, so distinct sweeps stay independent. Templates that are not
// key-serialisable fall back to a name-signature hash: still deterministic
// and still CRN across equal-looking nodes, merely coarser (seeds may
// coincide across templates that differ only in unserialisable state,
// which is harmless — the classing layer never groups such nodes).
func TemplateSeed(base int64, apps []sim.AppConfig) int64 {
	h := uint64(14695981039346656037)
	mix := func(bs []byte) {
		for _, c := range bs {
			h ^= uint64(c)
			h *= 1099511628211
		}
	}
	var seedBuf [8]byte
	for i := 0; i < 8; i++ {
		seedBuf[i] = byte(uint64(base) >> (8 * i))
	}
	mix(seedBuf[:])
	if k, ok := templateKey(apps); ok {
		mix(k)
	} else {
		for _, a := range apps {
			mix([]byte(a.Name()))
			mix([]byte{';'})
		}
	}
	return int64(h)
}

// CanonicalOrder returns the node's applications sorted into a canonical
// order (by their serialised template keys, name-tagged fallback for
// unserialisable apps, input order as the final tiebreak). Placement
// strategies emit the same node content in whatever order their internals
// happened to append it; a sweep that canonicalises each node before
// simulating makes "same multiset of applications" mean "same simulation",
// which is what lets dedup and the NodeCache recognise recurrences across
// placements. The input slice is not modified.
func CanonicalOrder(apps []sim.AppConfig) []sim.AppConfig {
	if len(apps) < 2 {
		return apps
	}
	type keyed struct {
		app sim.AppConfig
		key string
	}
	ks := make([]keyed, len(apps))
	for i, a := range apps {
		if k, ok := sim.AppendAppKey(nil, a); ok {
			ks[i] = keyed{a, string(k)}
		} else {
			// Unserialisable apps sort after serialisable ones, by name.
			ks[i] = keyed{a, "\xff" + a.Name()}
		}
	}
	if sort.SliceIsSorted(ks, func(i, j int) bool { return ks[i].key < ks[j].key }) {
		return apps
	}
	sort.SliceStable(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	out := make([]sim.AppConfig, len(apps))
	for i, k := range ks {
		out[i] = k.app
	}
	return out
}

// CanonicalizePlacement applies CanonicalOrder to every node of a
// placement, returning a new outer slice (shared inner slices when a node
// was already canonical).
func CanonicalizePlacement(placement [][]sim.AppConfig) [][]sim.AppConfig {
	out := make([][]sim.AppConfig, len(placement))
	for i, apps := range placement {
		out[i] = CanonicalOrder(apps)
	}
	return out
}
