package cluster

// Chaos-engine coverage: determinism of the phased fleet run at every
// parallelism level, conservation of the application multiset across
// evict/re-place, failure absorption (a broken node must not abort the
// fleet), future draining on shard errors, and the NodeCache
// negative-caching regression (errored entries must be dropped, not
// served as empty successes).

import (
	"errors"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"ahq/internal/faults"
	"ahq/internal/sim"
)

func chaosConfig(parallel int, plan string, replace bool) Config {
	p, err := faults.ParseFleet(plan)
	if err != nil {
		panic(err)
	}
	cfg := fleetConfig(parallel)
	cfg.FleetPlan = p
	cfg.ReplaceEvicted = replace
	return cfg
}

func TestChaosRejectsIncompatibleConfig(t *testing.T) {
	cfg := chaosConfig(1, "crash@6x3/nodes=2", true)
	cfg.NodeSeed = func(int) int64 { return 1 }
	if _, err := Run(cfg, quickOpts()); err == nil {
		t.Error("FleetPlan with NodeSeed accepted, want error")
	}
	cfg = chaosConfig(1, "crash@6x3/nodes=2", true)
	cfg.KeepResults = true
	if _, err := Run(cfg, quickOpts()); err == nil {
		t.Error("FleetPlan with KeepResults accepted, want error")
	}
}

// TestChaosDeterministicAcrossParallelism is the chaos analogue of the
// fleet determinism contract, with all three fault kinds and re-placement
// active: everything printable — samples, incident counters, supervisor
// counters — must be identical at -parallel 1, default, and 7.
func TestChaosDeterministicAcrossParallelism(t *testing.T) {
	const plan = "crash@6x3/nodes=2,degrade@5+/nodes=1,blackout@7x2/nodes=2"
	var views []Result
	for _, parallel := range []int{1, 0, 7} {
		cfg := chaosConfig(parallel, plan, true)
		cfg.DedupIdenticalNodes = true
		res, err := Run(cfg, quickOpts())
		if err != nil {
			t.Fatalf("parallel %d: %v", parallel, err)
		}
		v := deterministicView(res)
		// The incident counters are part of the deterministic contract,
		// unlike the solve counters deterministicView strips.
		v.Stats.FailedNodes = res.Stats.FailedNodes
		v.Stats.DownEpochs = res.Stats.DownEpochs
		v.Stats.Evictions = res.Stats.Evictions
		views = append(views, v)
	}
	for i := 1; i < len(views); i++ {
		if !reflect.DeepEqual(views[0], views[i]) {
			t.Errorf("chaos result differs between parallel settings 1 and %d", []int{1, 0, 7}[i])
		}
	}
	if views[0].Stats.FailedNodes == 0 || views[0].Evictions == 0 {
		t.Errorf("chaos run recorded no incidents (failed=%d evictions=%d); plan not applied?",
			views[0].Stats.FailedNodes, views[0].Evictions)
	}
}

// TestChaosDeterministicWithNodeCache runs the same chaos config twice
// against one shared NodeCache: the replay must be bit-identical to the
// original and actually come from the cache.
func TestChaosDeterministicWithNodeCache(t *testing.T) {
	cache := NewNodeCache()
	run := func() *Result {
		cfg := chaosConfig(3, "crash@6x3/nodes=2,blackout@7x2/nodes=2", true)
		cfg.DedupIdenticalNodes = true
		cfg.NodeCache = cache
		cfg.StrategyDigest = "arq:default"
		res, err := Run(cfg, quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(deterministicView(a), deterministicView(b)) {
		t.Error("NodeCache replay of a chaos run differs from the original")
	}
	if b.Stats.NodeCacheHits == 0 {
		t.Error("second chaos run hit the NodeCache zero times")
	}
}

// TestChaosReplaceBeatsNoReplace pins the headline robustness claim:
// under a persistent crash, failure-aware re-placement yields lower fleet
// E_S and violation rate than leaving the victims' applications dead.
func TestChaosReplaceBeatsNoReplace(t *testing.T) {
	const plan = "crash@5+/nodes=2"
	nr, err := Run(chaosConfig(0, plan, false), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(chaosConfig(0, plan, true), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if nr.Evictions != 0 || nr.Replacements != 0 {
		t.Errorf("no-replace run evicted: %d evictions, %d replacements", nr.Evictions, nr.Replacements)
	}
	if rp.Evictions == 0 || rp.Replacements == 0 {
		t.Fatalf("replace run did not re-place: %d evictions, %d replacements", rp.Evictions, rp.Replacements)
	}
	if rp.MeanRecoveryEpochs < 1 {
		t.Errorf("MeanRecoveryEpochs = %g, want >= 1 (orphans retry from the epoch after the crash)", rp.MeanRecoveryEpochs)
	}
	if !(rp.GlobalES < nr.GlobalES) {
		t.Errorf("re-placement did not improve fleet E_S: replace %g vs no-replace %g", rp.GlobalES, nr.GlobalES)
	}
	// Violation rate may go either way — a re-placed app running with some
	// violations still beats a dead window on severity — but both rates
	// must stay well-formed.
	for _, r := range []*Result{nr, rp} {
		if vr := r.ViolationRate(); vr <= 0 || vr > 1 {
			t.Errorf("violation rate = %g, want (0,1]", vr)
		}
	}
	for _, r := range []*Result{nr, rp} {
		if r.Stats.FailedNodes != 2 {
			t.Errorf("FailedNodes = %d, want 2", r.Stats.FailedNodes)
		}
	}
}

// TestChaosCrashAccounting pins the incident bookkeeping of a single
// bounded crash against hand-computed epoch math (quickOpts: 14 total
// epochs, 4 warm, 10 measured).
func TestChaosCrashAccounting(t *testing.T) {
	res, err := Run(chaosConfig(2, "crash@6x3/node=2", false), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summaries[2]
	if !s.Failed || s.DownEpochs != 3 {
		t.Errorf("victim summary: Failed=%v DownEpochs=%d, want true/3", s.Failed, s.DownEpochs)
	}
	// Phases [0,6) and [9,14): 2 + 5 measured epochs alive.
	if s.Epochs != 7 {
		t.Errorf("victim alive epochs = %d, want 7", s.Epochs)
	}
	// RoundRobin gives node 2 two LC apps; 3 dead epochs each, all
	// measured, all violations.
	if s.ViolationEpochs < 6 {
		t.Errorf("victim violation epochs = %d, want >= 6 from dead windows", s.ViolationEpochs)
	}
	if res.Stats.FailedNodes != 1 || res.Stats.DownEpochs != 3 || res.Stats.Evictions != 0 {
		t.Errorf("fleet incident counters = %+d/%d/%d, want 1/3/0",
			res.Stats.FailedNodes, res.Stats.DownEpochs, res.Stats.Evictions)
	}
	for i, sum := range res.Summaries {
		if i != 2 && sum.Failed {
			t.Errorf("node %d marked failed, only node 2 crashed", i)
		}
	}
	if res.LCAppEpochs == 0 {
		t.Fatal("chaos run left LCAppEpochs unset")
	}
	if vr := res.ViolationRate(); vr <= 0 || vr > 1 {
		t.Errorf("violation rate = %g, want (0,1]", vr)
	}
	if math.IsNaN(res.GlobalES) {
		t.Error("global E_S is NaN")
	}
}

// TestChaosBlackoutIncidents: a whole-node telemetry blackout must flow
// through to the node's controller as dropped-telemetry incidents without
// marking the node failed.
func TestChaosBlackoutIncidents(t *testing.T) {
	res, err := Run(chaosConfig(2, "blackout@6x2/node=3", false), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FailedNodes != 0 || res.Stats.DownEpochs != 0 {
		t.Errorf("blackout marked nodes down: %d failed, %d down epochs",
			res.Stats.FailedNodes, res.Stats.DownEpochs)
	}
	if res.Summaries[3].Incidents == 0 {
		t.Error("blacked-out node recorded no telemetry incidents")
	}
	base, err := Run(fleetConfig(2), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summaries[3].Incidents <= base.Summaries[3].Incidents {
		t.Errorf("blackout did not add incidents on node 3: %d vs baseline %d",
			res.Summaries[3].Incidents, base.Summaries[3].Incidents)
	}
}

// TestChaosDegradeRuns: a persistent degrade halves the victim's capacity
// mid-run; the node keeps running (not failed, fully measured) and the
// fleet aggregate stays finite.
func TestChaosDegradeRuns(t *testing.T) {
	res, err := Run(chaosConfig(2, "degrade@6+/node=1", false), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summaries[1]
	if s.Failed || s.DownEpochs != 0 {
		t.Errorf("degraded node marked down: Failed=%v DownEpochs=%d", s.Failed, s.DownEpochs)
	}
	if s.Epochs != 10 {
		t.Errorf("degraded node measured %d epochs, want all 10", s.Epochs)
	}
	if math.IsNaN(res.GlobalES) || math.IsInf(res.GlobalES, 0) {
		t.Errorf("global E_S = %g under degrade", res.GlobalES)
	}
}

// TestRunAbsorbsNodeError is the acceptance criterion that a single
// node's simulation error no longer aborts cluster.Run: the broken node
// becomes a failed summary with dead-window accounting and the healthy
// rest of the fleet aggregates normally.
func TestRunAbsorbsNodeError(t *testing.T) {
	cfg := fleetConfig(2)
	// An AppConfig with neither LC nor BE fails sim.New validation.
	cfg.Placement[3] = []sim.AppConfig{{}}
	res, err := Run(cfg, quickOpts())
	if err != nil {
		t.Fatalf("fleet run aborted on a single broken node: %v", err)
	}
	s := res.Summaries[3]
	if !s.Failed {
		t.Fatal("broken node not marked Failed")
	}
	if s.DownEpochs != 14 || s.Epochs != 10 {
		t.Errorf("broken node DownEpochs=%d Epochs=%d, want 14/10", s.DownEpochs, s.Epochs)
	}
	if res.Stats.FailedNodes != 1 {
		t.Errorf("FailedNodes = %d, want 1", res.Stats.FailedNodes)
	}
	if math.IsNaN(res.GlobalES) {
		t.Error("global E_S is NaN with one absorbed failure")
	}
}

// TestRunDrainsFuturesOnError pins the drain contract: when a shard
// fails, Run still waits for every submitted shard before returning the
// first error — no goroutine may outlive the call.
func TestRunDrainsFuturesOnError(t *testing.T) {
	var calls atomic.Int32
	shardFailHook = func(shard int) error {
		if shard != 0 {
			time.Sleep(10 * time.Millisecond)
		}
		calls.Add(1)
		return errors.New("injected shard failure")
	}
	defer func() { shardFailHook = nil }()
	cfg := fleetConfig(4)
	if _, err := Run(cfg, quickOpts()); err == nil {
		t.Fatal("injected shard failure did not surface")
	}
	// 8 single-node classes over 4 workers.
	want := int32(shardsFor(8, 4))
	if got := calls.Load(); got != want {
		t.Errorf("Run returned after %d of %d shards completed; futures not drained", got, want)
	}
}

// TestNodeCacheDropsErroredEntry is the negative-caching regression: an
// in-flight entry that completes with an error must release its waiters
// with that error and then leave the cache, so the class is re-simulated
// rather than replayed as an empty success.
func TestNodeCacheDropsErroredEntry(t *testing.T) {
	c := NewNodeCache()
	e, claimed := c.claim("k")
	if !claimed {
		t.Fatal("fresh key not claimable")
	}
	w, ok := c.lookup("k")
	if !ok || w != e {
		t.Fatal("in-flight entry not visible to lookup")
	}
	c.publish("k", e, classOut{}, errors.New("boom"))
	if _, err := w.wait(); err == nil {
		t.Error("waiter did not observe the publish error")
	}
	if _, ok := c.lookup("k"); ok {
		t.Fatal("errored entry still cached after publish")
	}
	if c.Len() != 0 {
		t.Errorf("cache Len = %d after dropping its only entry", c.Len())
	}
	// The key must be claimable again, and a successful publish sticks.
	e2, claimed := c.claim("k")
	if !claimed {
		t.Fatal("key not re-claimable after an errored publish")
	}
	c.publish("k", e2, classOut{sum: NodeSummary{Epochs: 7}}, nil)
	got, ok := c.lookup("k")
	if !ok {
		t.Fatal("successful publish not cached")
	}
	co, err := got.wait()
	if err != nil || co.sum.Epochs != 7 {
		t.Errorf("replayed entry = %+v, %v; want Epochs 7, nil", co.sum, err)
	}
}
