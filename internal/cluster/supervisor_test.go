package cluster

// Supervisor conformance: across every phase of a chaos schedule the
// multiset of applications must be conserved (assigned + dead == the
// initial population), surviving nodes must never be emptied, and the
// re-placement bounds (retries, backoff, abandonment) must engage when no
// node will accept an orphan.

import (
	"testing"

	"ahq/internal/faults"
	"ahq/internal/machine"
	"ahq/internal/sim"
)

// resolvedPlan parses and resolves a fleet plan for n nodes, failing the
// test on any error.
func resolvedPlan(t *testing.T, spec string, seed int64, n int) *faults.FleetPlan {
	t.Helper()
	p, err := faults.ParseFleet(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Resolve(seed, n)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// phaseAppCount tallies a phase's full application multiset: everything
// assigned to a live node plus everything dead. Down-node assignments are
// skipped — in no-replace mode they are exactly the phase's dead list (the
// apps stay assigned and resume on restart), so counting both would
// double-count them.
func phaseAppCount(ph *fleetPhase) map[string]int {
	got := map[string]int{}
	for nd, apps := range ph.assign {
		if ph.down[nd] {
			continue
		}
		for _, a := range apps {
			got[appKey(a)]++
		}
	}
	for _, d := range ph.dead {
		got[appKey(d.app)]++
	}
	delete(got, "empty")
	return got
}

func TestSupervisorConservation(t *testing.T) {
	const nodes, total = 6, 14
	placement, err := RoundRobin(conformanceApps(18), nodes)
	if err != nil {
		t.Fatal(err)
	}
	want := countApps(placement)
	for _, replace := range []bool{false, true} {
		plan := resolvedPlan(t, "crash@5x4/nodes=2,degrade@7+/nodes=1", 42, nodes)
		sched := supervise(plan, placement, machine.DefaultSpec(), replace, total)
		if len(sched.phases) < 2 {
			t.Fatalf("replace=%v: got %d phases, want a cut at least at the crash", replace, len(sched.phases))
		}
		prevEnd := 0
		for pi := range sched.phases {
			ph := &sched.phases[pi]
			if ph.start != prevEnd || ph.end <= ph.start {
				t.Fatalf("replace=%v: phase %d spans [%d,%d), previous ended at %d",
					replace, pi, ph.start, ph.end, prevEnd)
			}
			prevEnd = ph.end
			if got := phaseAppCount(ph); !equalCounts(got, want) {
				t.Errorf("replace=%v: phase %d [%d,%d) app multiset %v, want %v",
					replace, pi, ph.start, ph.end, got, want)
			}
			for nd := 0; nd < nodes; nd++ {
				if !sched.crashed[nd] && len(ph.assign[nd]) == 0 {
					t.Errorf("replace=%v: phase %d emptied surviving node %d", replace, pi, nd)
				}
				if replace && ph.down[nd] && len(ph.assign[nd]) != 0 {
					t.Errorf("replace=%v: phase %d keeps %d apps on down node %d",
						replace, pi, len(ph.assign[nd]), nd)
				}
			}
		}
		if prevEnd != total {
			t.Errorf("replace=%v: schedule ends at %d, want %d", replace, prevEnd, total)
		}
		if replace {
			if sched.evictions == 0 {
				t.Error("replace schedule evicted nothing despite two crashes")
			}
			if sched.replacements+sched.abandoned > sched.evictions {
				t.Errorf("placed %d + abandoned %d exceeds evicted %d",
					sched.replacements, sched.abandoned, sched.evictions)
			}
		} else if sched.evictions != 0 || sched.replacements != 0 {
			t.Errorf("no-replace schedule moved apps: %d evictions, %d replacements",
				sched.evictions, sched.replacements)
		}
	}
}

func equalCounts(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestSupervisorAbandonsWhenNoCandidates: crash the whole fleet
// persistently — every orphan exhausts its retries against an empty
// candidate set and is abandoned, staying dead to the end of the run.
func TestSupervisorAbandonsWhenNoCandidates(t *testing.T) {
	const nodes, total = 3, 14
	placement, err := RoundRobin(conformanceApps(6), nodes)
	if err != nil {
		t.Fatal(err)
	}
	plan := resolvedPlan(t, "crash@2+/nodes=3", 1, nodes)
	sched := supervise(plan, placement, machine.DefaultSpec(), true, total)
	if sched.evictions != 6 {
		t.Fatalf("evictions = %d, want all 6 apps", sched.evictions)
	}
	if sched.replacements != 0 {
		t.Errorf("replacements = %d with no surviving node", sched.replacements)
	}
	if sched.abandoned != 6 {
		t.Errorf("abandoned = %d, want all 6 orphans after %d attempts",
			sched.abandoned, maxReplaceAttempts)
	}
	last := &sched.phases[len(sched.phases)-1]
	if len(last.dead) != 6 {
		t.Errorf("final phase lists %d dead apps, want 6", len(last.dead))
	}
	for _, d := range last.dead {
		if d.node < 0 || d.node >= nodes {
			t.Errorf("dead app attributed to node %d outside the fleet", d.node)
		}
	}
}

// TestSupervisorRecoveryLatency: a single crash with healthy neighbours
// re-places every orphan on the first retry epoch.
func TestSupervisorRecoveryLatency(t *testing.T) {
	const nodes, total = 4, 14
	placement, err := RoundRobin(conformanceApps(8), nodes)
	if err != nil {
		t.Fatal(err)
	}
	plan := resolvedPlan(t, "crash@5+/node=1", 1, nodes)
	sched := supervise(plan, placement, machine.DefaultSpec(), true, total)
	if sched.evictions != len(placement[1]) {
		t.Fatalf("evictions = %d, want %d (node 1's apps)", sched.evictions, len(placement[1]))
	}
	if sched.replacements != sched.evictions || sched.abandoned != 0 {
		t.Fatalf("replacements=%d abandoned=%d, want %d/0",
			sched.replacements, sched.abandoned, sched.evictions)
	}
	// Orphans become eligible the epoch after the crash; with capacity to
	// spare they all land there: recovery latency exactly 1 epoch each.
	if sched.recoverySum != sched.replacements {
		t.Errorf("recoverySum = %d over %d replacements, want 1 epoch each",
			sched.recoverySum, sched.replacements)
	}
	// The re-placed apps live somewhere from epoch 6 on: final phase has
	// no dead apps and conserves the population.
	last := &sched.phases[len(sched.phases)-1]
	if len(last.dead) != 0 {
		t.Errorf("final phase still lists %d dead apps", len(last.dead))
	}
	want := countApps(placement)
	if got := phaseAppCount(last); !equalCounts(got, want) {
		t.Errorf("final phase multiset %v, want %v", got, want)
	}
	var onDead []sim.AppConfig
	if onDead = last.assign[1]; len(onDead) != 0 {
		t.Errorf("crashed node 1 still holds %d apps in the final phase", len(onDead))
	}
}
