package cluster

// The chaos engine is the fleet run under a faults.FleetPlan: node
// crashes, capacity degradations and telemetry blackouts at fleet scope,
// with optional failure-aware re-placement. It simulates the fleet as a
// sequence of *phases* — maximal epoch ranges over which the fleet's
// configuration is constant (supervisor.go cuts one at every crash,
// restart, degrade flip and re-placement) — and each (phase, node) becomes
// one independent simulation unit: the node's applications at that time,
// its (possibly degraded) capacity, and its blackout coverage lowered to a
// node-local telemetry-drop plan. A phase overlapping the warm-up window
// carries the overlap as its own warm-up; later phases run unwarmed.
//
// The phased model deliberately drops cross-phase node state (queue
// backlogs, strategy learning do not survive a boundary): a phase is a
// fresh steady-state estimate of the configuration it covers, which is
// exactly the quantity fleet-level E_S aggregation needs, and what keeps
// every unit a pure function of its content — so units dedup across
// phases, nodes, and whole sweeps through the same classing and NodeCache
// machinery as the legacy path, and output is byte-identical at every
// -parallel level.
//
// Aggregation pools run-level samples over every unit, weighted by the
// unit's measured epochs (entropy.WeightedSystem), and accounts dead
// windows explicitly: an application on a crashed node (no-replace), or
// evicted and not yet — or never — re-placed, contributes a saturated
// sample weighted by the phase's measured epochs, and each such LC
// app-epoch counts as a violation. The sample set never silently shrinks
// because a node died.

import (
	"fmt"
	"math"

	"ahq/internal/core"
	"ahq/internal/entropy"
	"ahq/internal/faults"
	"ahq/internal/sim"
)

// chaosClass is one unit equivalence class of a chaos run: the unit, its
// cache/dedup key ("" = singleton, never cached), the (phase, node) pairs
// it covers, and the phase's measured epochs (equal across members — the
// key includes the options, which pin the phase shape).
type chaosClass struct {
	key      string
	unit     simUnit
	members  []unitRef
	measured int
}

// unitRef addresses one (phase, node) slot of the schedule.
type unitRef struct {
	phase, node int
}

// runChaos drives the fleet under the configured FleetPlan. cfg has been
// validated by Run (placement non-empty, strategy present, no NodeSeed, no
// KeepResults, NodeCache implies StrategyDigest).
func runChaos(cfg Config, opts core.Options, ri float64, solves *sim.SolveCache) (*Result, error) {
	o := opts.WithDefaults()
	totalEpochs := int(math.Ceil((o.WarmupMs + o.DurationMs) / o.EpochMs))
	warmEpochs := int(math.Ceil(o.WarmupMs / o.EpochMs))
	n := len(cfg.Placement)

	// Resolve draws victims for unresolved events and validates resolved
	// ones against the fleet size; a pure function of (plan, Seed, n).
	plan, err := cfg.FleetPlan.Resolve(cfg.Seed, n)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	sched := supervise(plan, cfg.Placement, cfg.Spec, cfg.ReplaceEvicted, totalEpochs)

	// Build the unit list in (phase, node) order and group it into
	// classes. Down and empty nodes simulate nothing; phases entirely
	// inside warm-up measure nothing and are skipped whole.
	classes := make([]chaosClass, 0, n)
	index := make(map[string]int)
	phaseMeasured := make([]int, len(sched.phases))
	for pi := range sched.phases {
		ph := &sched.phases[pi]
		length := ph.end - ph.start
		warmIn := warmEpochs - ph.start
		if warmIn < 0 {
			warmIn = 0
		} else if warmIn > length {
			warmIn = length
		}
		measured := length - warmIn
		phaseMeasured[pi] = measured
		if measured == 0 {
			continue
		}
		phOpts := core.Options{
			EpochMs:    o.EpochMs,
			DurationMs: float64(measured) * o.EpochMs,
			RI:         o.RI,
		}
		if warmIn > 0 {
			phOpts.WarmupMs = float64(warmIn) * o.EpochMs
		} else {
			phOpts.WarmupMs = -1 // negative = no warm-up, 0 would mean the default
		}
		for nd := 0; nd < n; nd++ {
			if ph.down[nd] || len(ph.assign[nd]) == 0 {
				continue
			}
			// Canonical intra-node order: equal phase contents become
			// equal simulations, exactly as the sweeps do for placements.
			apps := CanonicalOrder(ph.assign[nd])
			spec := cfg.Spec
			if ph.degraded[nd] {
				spec = faults.DegradedSpec(spec)
			}
			u := simUnit{
				node: nd, apps: apps, spec: spec,
				seed:     TemplateSeed(cfg.Seed, apps),
				opts:     phOpts,
				blackout: plan.BlackoutPlan(nd, ph.start, ph.end),
			}
			key := ""
			if cfg.DedupIdenticalNodes || cfg.NodeCache != nil {
				key = chaosUnitKey(&cfg, u, ri)
			}
			if key != "" && cfg.DedupIdenticalNodes {
				if ci, dup := index[key]; dup {
					classes[ci].members = append(classes[ci].members, unitRef{pi, nd})
					continue
				}
				index[key] = len(classes)
			}
			cacheKey := key
			if cfg.NodeCache == nil {
				cacheKey = ""
			}
			classes = append(classes, chaosClass{
				key: cacheKey, unit: u,
				members: []unitRef{{pi, nd}}, measured: measured,
			})
		}
	}

	units := make([]shardUnit, len(classes))
	for ci := range classes {
		units[ci] = shardUnit{key: classes[ci].key, unit: classes[ci].unit}
	}
	outs, stats, err := runUnits(&cfg, units, solves)
	if err != nil {
		return nil, err
	}

	// Merge in class order, expanding to members in member order — fixed
	// before sharding, so identical at every parallelism level.
	res := &Result{Summaries: make([]NodeSummary, n)}
	nodeLC := make([][]entropy.Weighted[entropy.LCSample], n)
	nodeBE := make([][]entropy.Weighted[entropy.BESample], n)
	var allLC []entropy.Weighted[entropy.LCSample]
	var allBE []entropy.Weighted[entropy.BESample]
	for i := 0; i < n; i++ {
		s := &res.Summaries[i]
		s.Node = i
		for _, a := range cfg.Placement[i] {
			if a.LC != nil {
				s.LCApps++
			} else if a.BE != nil {
				s.BEApps++
			}
		}
		s.Failed = sched.crashed[i]
		s.DownEpochs = sched.downEpochsByNode[i]
		s.Evictions = sched.evictionsByNode[i]
	}
	for ci := range classes {
		cl := &classes[ci]
		co := &outs[ci]
		w := float64(cl.measured)
		for _, m := range cl.members {
			s := &res.Summaries[m.node]
			s.Epochs += co.sum.Epochs
			s.ViolationEpochs += co.sum.ViolationEpochs
			s.Incidents += co.sum.Incidents
			if co.sum.Failed {
				s.Failed = true
			}
			res.MeasuredEpochs += co.sum.Epochs
			res.TotalViolationEpochs += co.sum.ViolationEpochs
			res.LCAppEpochs += co.sum.LCApps * co.sum.Epochs
			for _, smp := range co.lc {
				ws := entropy.Weighted[entropy.LCSample]{Sample: smp, Weight: w}
				allLC = append(allLC, ws)
				nodeLC[m.node] = append(nodeLC[m.node], ws)
			}
			for _, smp := range co.be {
				ws := entropy.Weighted[entropy.BESample]{Sample: smp, Weight: w}
				allBE = append(allBE, ws)
				nodeBE[m.node] = append(nodeBE[m.node], ws)
			}
		}
	}
	// Dead windows: applications running nowhere during a measured phase
	// contribute saturated samples weighted by the phase's measured
	// epochs, attributed to their (home) node; every dead LC app-epoch is
	// a violation.
	for pi := range sched.phases {
		measured := phaseMeasured[pi]
		if measured == 0 {
			continue
		}
		w := float64(measured)
		for _, d := range sched.phases[pi].dead {
			s := &res.Summaries[d.node]
			switch {
			case d.app.LC != nil:
				ws := entropy.Weighted[entropy.LCSample]{Sample: deadLCSample(d.app), Weight: w}
				allLC = append(allLC, ws)
				nodeLC[d.node] = append(nodeLC[d.node], ws)
				s.ViolationEpochs += measured
				res.TotalViolationEpochs += measured
				res.LCAppEpochs += measured
			case d.app.BE != nil:
				ws := entropy.Weighted[entropy.BESample]{Sample: deadBESample(d.app), Weight: w}
				allBE = append(allBE, ws)
				nodeBE[d.node] = append(nodeBE[d.node], ws)
			}
		}
	}

	// Per-node entropies and epoch-weighted yield over each node's own
	// weighted samples (dead contributions included); a node with no
	// samples at all (everything moved away, nothing placed) reports NaN.
	for i := 0; i < n; i++ {
		s := &res.Summaries[i]
		elc, ebe, es, err := entropy.WeightedSystem{RI: ri}.Compute(nodeLC[i], nodeBE[i])
		if err == nil {
			s.ELC, s.EBE, s.ES = elc, ebe, es
		} else {
			s.ELC, s.EBE, s.ES = math.NaN(), math.NaN(), math.NaN()
		}
		if sat, tot := weightedSatisfied(nodeLC[i]); tot > 0 {
			s.Yield = sat / tot
		}
	}

	elc, ebe, es, err := entropy.WeightedSystem{RI: ri}.Compute(allLC, allBE)
	if err != nil {
		return nil, fmt.Errorf("cluster: global entropy: %w", err)
	}
	res.GlobalELC, res.GlobalEBE, res.GlobalES = elc, ebe, es
	if sat, tot := weightedSatisfied(allLC); tot > 0 {
		res.GlobalYield, res.YieldDefined = sat/tot, true
	}

	res.Evictions = sched.evictions
	res.Replacements = sched.replacements
	res.Abandoned = sched.abandoned
	if sched.replacements > 0 {
		res.MeanRecoveryEpochs = float64(sched.recoverySum) / float64(sched.replacements)
	}
	res.Stats = stats
	res.Stats.NodesRun = n
	addIncidentCounters(res)
	return res, nil
}

// weightedSatisfied returns the satisfied and total weight of a weighted
// LC sample set — the epoch-weighted yield numerator and denominator.
func weightedSatisfied(samples []entropy.Weighted[entropy.LCSample]) (sat, tot float64) {
	for _, s := range samples {
		tot += s.Weight
		if s.Sample.Satisfied() {
			sat += s.Weight
		}
	}
	return sat, tot
}

// chaosUnitKey serialises every input a chaos unit's simulation reads —
// capacity, per-phase controller options (post-default), aggregation RI,
// engine tunables, strategy digest, blackout plan, seed, and the canonical
// application template — into the unit's content address. The "chaos|"
// namespace keeps chaos keys disjoint from legacy node keys in a shared
// NodeCache. Returns "" when the template is not key-serialisable; such
// units are never grouped or cached.
func chaosUnitKey(cfg *Config, u simUnit, ri float64) string {
	tk, ok := templateKey(u.apps)
	if !ok {
		return ""
	}
	o := u.opts.WithDefaults()
	b := make([]byte, 0, 256+len(tk))
	b = append(b, "chaos|"...)
	b = sim.AppendKeyInt(b, u.spec.Cores)
	b = sim.AppendKeyInt(b, u.spec.LLCWays)
	b = sim.AppendKeyInt(b, u.spec.MemBWUnits)
	b = sim.AppendKeyFloat(b, u.spec.MemBWGBps)
	b = sim.AppendKeyFloat(b, o.EpochMs)
	b = sim.AppendKeyFloat(b, o.WarmupMs)
	b = sim.AppendKeyFloat(b, o.DurationMs)
	b = sim.AppendKeyFloat(b, o.RI)
	b = sim.AppendKeyFloat(b, ri)
	b = sim.AppendTunablesKey(b, sim.DefaultTunables())
	b = sim.AppendKeyString(b, cfg.StrategyDigest)
	b = sim.AppendKeyString(b, u.blackout.String())
	b = sim.AppendKeyInt64(b, u.seed)
	b = append(b, '|')
	b = append(b, tk...)
	return string(b)
}
