package cluster

// Fleet determinism: the sharded engine must produce identical results
// for the same seed regardless of worker count, shard boundaries, or
// solve-cache sharing. Only the FleetStats cache counters may vary with
// scheduling — everything a caller can print must not.

import (
	"reflect"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sched/arq"
	"ahq/internal/sim"
)

func fleetConfig(parallel int) Config {
	placement, err := RoundRobin(conformanceApps(24), 8)
	if err != nil {
		panic(err)
	}
	return Config{
		Spec:        machine.DefaultSpec(),
		Seed:        42,
		NewStrategy: func(int) sched.Strategy { return arq.Default() },
		Placement:   placement,
		Parallel:    parallel,
	}
}

// deterministicView strips the scheduling-dependent cache counters,
// leaving exactly the fields an experiment is allowed to print.
func deterministicView(r *Result) Result {
	v := *r
	v.Stats = FleetStats{}
	return v
}

func TestFleetDeterministicAcrossParallelism(t *testing.T) {
	var views []Result
	for _, parallel := range []int{1, 0, 7} {
		res, err := Run(fleetConfig(parallel), quickOpts())
		if err != nil {
			t.Fatalf("parallel %d: %v", parallel, err)
		}
		views = append(views, deterministicView(res))
	}
	for i := 1; i < len(views); i++ {
		if !reflect.DeepEqual(views[0], views[i]) {
			t.Errorf("fleet result differs between parallel settings 1 and %d", []int{1, 0, 7}[i])
		}
	}
}

func TestFleetDeterministicAcrossRuns(t *testing.T) {
	a, err := Run(fleetConfig(3), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fleetConfig(3), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(deterministicView(a), deterministicView(b)) {
		t.Error("identical fleet configs produced different results")
	}
}

// TestDedupMatchesFullSimulation pins the node-dedup contract: under a
// common-random-numbers seed policy, running one representative per node
// class and replicating it is bit-identical to simulating every node.
func TestDedupMatchesFullSimulation(t *testing.T) {
	build := func(dedup bool) Config {
		// Eight nodes drawn from two templates, all on one seed.
		a := []sim.AppConfig{lcAt("xapian", 0.5), beApp("stream")}
		b := []sim.AppConfig{lcAt("moses", 0.35), lcAt("silo", 0.2), beApp("fluidanimate")}
		placement := [][]sim.AppConfig{a, b, a, b, a, b, a, b}
		return Config{
			Spec:                machine.DefaultSpec(),
			Seed:                9,
			NewStrategy:         func(int) sched.Strategy { return arq.Default() },
			Placement:           placement,
			NodeSeed:            func(int) int64 { return 9 },
			DedupIdenticalNodes: dedup,
		}
	}
	full, err := Run(build(false), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	deduped, err := Run(build(true), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(deterministicView(full), deterministicView(deduped)) {
		t.Error("deduped fleet diverged from the fully simulated one")
	}
	if full.Stats.NodesSimulated != 8 {
		t.Errorf("full run simulated %d of 8 nodes", full.Stats.NodesSimulated)
	}
	if deduped.Stats.NodesSimulated != 2 {
		t.Errorf("dedup simulated %d classes, want 2", deduped.Stats.NodesSimulated)
	}
	if deduped.Stats.NodesRun != 8 {
		t.Errorf("dedup reports %d logical nodes, want 8", deduped.Stats.NodesRun)
	}
}

// TestDedupRespectsDistinctSeeds pins that the default seed policy keeps
// every node a singleton class even with dedup requested: distinct seeds
// mean distinct simulations, and dedup must never merge them.
func TestDedupRespectsDistinctSeeds(t *testing.T) {
	cfg := fleetConfig(2)
	cfg.DedupIdenticalNodes = true
	res, err := Run(cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NodesSimulated != res.Stats.NodesRun {
		t.Errorf("dedup merged nodes with distinct seeds: %d simulated of %d",
			res.Stats.NodesSimulated, res.Stats.NodesRun)
	}
}

// TestFleetSharingDoesNotChangeResults pins the SolveCache contract at
// fleet scale: cross-node sharing is a pure memoisation — bit-identical
// keys return bit-identical vectors — so disabling it must not move a
// single output value.
func TestFleetSharingDoesNotChangeResults(t *testing.T) {
	shared, err := Run(fleetConfig(4), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleetConfig(4)
	cfg.DisableSolveSharing = true
	private, err := Run(cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(deterministicView(shared), deterministicView(private)) {
		t.Error("solve sharing changed fleet results")
	}
	if shared.Stats.SharedSolveHits == 0 {
		t.Error("homogeneous fleet produced no shared solve hits; sharing is not wired")
	}
}
