// Package cluster scales the Ah-Q model from one node to a datacenter
// fleet: thousands of simulated nodes, each managed by its own controller
// and strategy instance, with the system entropy aggregated over every
// collocated application in the fleet. The paper defines E_S "in a
// datacenter"; this package is the multi-node reading of that definition,
// and shows how E_S ranks *placements* the same way it ranks schedulers.
//
// Run is a sharded fleet engine: the node index space is cut into
// contiguous shards, shards fan out over a bounded worker pool
// (internal/pool, the same implementation the experiment harness uses),
// and every node's engine threads one shared contention-solve cache —
// fleet mixes recur massively across nodes, so after the first few nodes
// almost every steady-state solve is a cache adoption rather than a
// fixed-point iteration. Aggregation is streaming: each shard accumulates
// run-level entropy samples and compact per-node summaries as its nodes
// finish, per-node core.Results are discarded by default (KeepResults
// retains them), and shard accumulators are merged in node order — so a
// 5000-node fleet fits comfortably in memory and the result is
// byte-identical at every parallelism level.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"ahq/internal/core"
	"ahq/internal/entropy"
	"ahq/internal/faults"
	"ahq/internal/machine"
	workpool "ahq/internal/pool"
	"ahq/internal/sched"
	"ahq/internal/sim"
	"ahq/internal/workload"
)

// Config describes a homogeneous cluster run.
type Config struct {
	// Spec is each node's capacity.
	Spec machine.Spec
	// Seed drives all nodes deterministically (node i uses Seed+i).
	Seed int64
	// NewStrategy builds one strategy instance per node. It is called from
	// shard workers, so it must be safe for concurrent calls and must
	// return a fresh instance every time (strategies are stateful).
	NewStrategy func(node int) sched.Strategy
	// Placement assigns the application set to nodes: Placement[i] holds
	// node i's applications. Every node needs at least one application.
	Placement [][]sim.AppConfig
	// RI is the relative importance for the global entropy; 0 means the
	// paper's 0.8.
	RI float64
	// Parallel bounds how many node simulations run simultaneously;
	// <= 0 means runtime.NumCPU(), 1 runs the shards sequentially.
	// Results are merged in node order, so the output is identical at
	// every parallelism level.
	Parallel int
	// NodeSeed optionally overrides the per-node seed policy; nil means
	// node i runs with Seed+i (independent stochastic streams per node).
	// Screening runs that want common random numbers across replicated
	// node templates supply a policy returning equal seeds for equal
	// templates.
	NodeSeed func(node int) int64
	// DedupIdenticalNodes opts into fleet-level node memoisation: nodes
	// whose seed and application template coincide — possible only under a
	// NodeSeed policy assigning equal seeds — are provably bit-identical
	// simulations, so the engine runs one representative per equivalence
	// class and replicates its summary and samples to every member. The
	// aggregate is byte-identical to simulating every node (pinned by
	// TestDedupMatchesFullSimulation); only wall time changes. Requires
	// NewStrategy to return node-index-agnostic strategies, and under
	// KeepResults the members of a class share one *core.Result.
	DedupIdenticalNodes bool
	// NodeCache optionally supplies a sweep-scoped cache of completed
	// node simulations (nodecache.go): before simulating a class
	// representative the engine looks up the class's content-addressed
	// key — every input the simulation reads, bit-exactly — and a hit
	// replays the record the identical computation produced in an earlier
	// Run (or in a racing shard, via single-flight). Byte-identical
	// output by construction; only wall time changes. Requires
	// StrategyDigest and is rejected together with KeepResults (cached
	// records deliberately do not retain full per-node results).
	NodeCache *NodeCache
	// StrategyDigest declares the identity of what NewStrategy builds —
	// the one node-simulation input the engine cannot serialise itself,
	// since the factory is opaque. Required when NodeCache is set; the
	// digest must change whenever the strategy's behaviour (type, config,
	// tunables) does, and the factory must return node-index-agnostic
	// instances, exactly as DedupIdenticalNodes already requires.
	StrategyDigest string
	// SharedSolves optionally supplies the cross-node contention-solve
	// cache. Nil means Run creates a fleet-private one; callers that sweep
	// several fleets over the same mixes (the experiment harness) pass a
	// sweep-scoped cache so solves carry across Run invocations too.
	// Sharing is bit-exact, so it never changes results.
	SharedSolves *sim.SolveCache
	// DisableSolveSharing runs every node engine with an isolated solve
	// memo — the pre-fleet sequential baseline path, kept for benchmark
	// comparison. It overrides SharedSolves.
	DisableSolveSharing bool
	// KeepResults retains the full per-node core.Result in Result.Nodes.
	// Off by default: at fleet scale the per-node results dominate memory,
	// and the compact NodeSummary carries everything aggregation needs.
	KeepResults bool
	// FleetPlan optionally schedules fleet-scope faults — node crashes,
	// capacity degradations, telemetry blackouts (faults.FleetPlan). A
	// non-empty plan switches Run to the phased chaos engine (chaos.go):
	// the supervisor cuts the horizon at every configuration change, each
	// phase simulates fresh, and aggregation weighs samples by measured
	// epochs with dead windows accounted explicitly. Unresolved plans are
	// resolved against (Seed, len(Placement)). Incompatible with NodeSeed
	// (chaos seeds content-wise via TemplateSeed) and KeepResults (phases
	// do not produce one core.Result per node).
	FleetPlan *faults.FleetPlan
	// ReplaceEvicted turns on failure-aware re-placement under a
	// FleetPlan: a crashed node's applications are evicted and re-placed
	// onto surviving nodes through the interference scorer, with capped
	// retries, exponential backoff and a churn bound (supervisor.go).
	// Off, a crashed node's applications stay assigned and dead until the
	// node restarts.
	ReplaceEvicted bool
}

// NodeResult pairs one node's full controller outcome with its index
// (retained only under Config.KeepResults).
type NodeResult struct {
	Node   int
	Result *core.Result
}

// NodeSummary is the compact per-node record the fleet engine keeps in
// place of a full core.Result: the node's run-level entropies and the
// counters fleet-level reporting aggregates.
type NodeSummary struct {
	Node int
	// ELC/EBE/ES are the node's run-level entropies (core.Result.RunELC
	// etc.); NaN-free only when the node had computable samples.
	ELC, EBE, ES float64
	// Yield is the node-local satisfied fraction of its LC applications.
	Yield float64
	// LCApps and BEApps count the node's applications by class.
	LCApps, BEApps int
	// ViolationEpochs sums LC violation epochs over the node's apps.
	ViolationEpochs int
	// Epochs counts the node's measured monitoring intervals (simulated
	// alive epochs only; dead windows are accounted via ViolationEpochs
	// and the fleet's LCAppEpochs, never as measured intervals).
	Epochs int
	// Incidents counts degradation events the node's controller survived.
	Incidents int
	// Failed marks a node that did not run healthy to completion: its
	// simulation errored (the fleet engine absorbs the error into
	// saturated dead-window samples instead of aborting the run), or a
	// FleetPlan crashed it at some epoch.
	Failed bool
	// DownEpochs counts epochs (warm-up included) the node was dead: the
	// whole horizon for an errored node, the crash coverage under a
	// FleetPlan.
	DownEpochs int
	// Evictions counts applications the supervisor evicted from this node
	// at its crash epochs (ReplaceEvicted only).
	Evictions int
}

// FleetStats aggregates fleet-wide counters. The solve/cache counters
// depend on worker scheduling (which engine reached a vector first), so
// they are for benchmarks and logs, never deterministic output. The
// incident counters (FailedNodes, DownEpochs, Evictions) are derived from
// the per-node summaries and ARE deterministic.
type FleetStats struct {
	// NodesRun counts the fleet's logical nodes.
	NodesRun int
	// NodesSimulated counts engines actually driven: equal to NodesRun
	// except under DedupIdenticalNodes, where it is the number of node
	// equivalence classes.
	NodesSimulated int
	// MemoHits are per-engine memo hits, Solves are full fixed-point
	// solves, SharedSolveHits are solves adopted from the cross-node cache.
	MemoHits, Solves, SharedSolveHits uint64
	// NodeCacheHits counts node classes whose simulation was replayed
	// from Config.NodeCache instead of being run.
	NodeCacheHits uint64
	// FailedNodes counts nodes with NodeSummary.Failed set; DownEpochs and
	// Evictions sum the corresponding per-node counters. Deterministic.
	FailedNodes, DownEpochs, Evictions int
}

// Result aggregates a cluster run.
type Result struct {
	// Summaries holds the compact per-node records, in node order.
	Summaries []NodeSummary
	// Nodes holds the full per-node controller results, only when
	// Config.KeepResults; empty otherwise.
	Nodes []NodeResult
	// GlobalELC/GlobalEBE/GlobalES are computed over the pooled run-level
	// samples of every application in the cluster — the datacenter-wide
	// E_S of the paper's definition.
	GlobalELC, GlobalEBE, GlobalES float64
	// GlobalYield is the satisfied fraction over all LC applications.
	// Meaningful only when YieldDefined; a fleet with no LC samples has no
	// yield (GlobalYield stays 0 and YieldDefined false).
	GlobalYield float64
	// YieldDefined reports whether GlobalYield was computable.
	YieldDefined bool
	// TotalViolationEpochs sums LC violation epochs over every node.
	TotalViolationEpochs int
	// MeasuredEpochs sums the per-node measured monitoring intervals.
	MeasuredEpochs int
	// LCAppEpochs is the explicit LC-application-epoch denominator the
	// chaos engine maintains: alive LC app-epochs plus dead LC app-epochs
	// (which all count as violations). Zero outside chaos runs — the
	// legacy path derives the denominator from the summaries.
	LCAppEpochs int
	// Evictions/Replacements/Abandoned count the supervisor's actions
	// under a FleetPlan with ReplaceEvicted; MeanRecoveryEpochs averages
	// eviction-to-re-placement latency over successful re-placements.
	Evictions, Replacements, Abandoned int
	MeanRecoveryEpochs                 float64
	// Stats carries fleet-wide solve-cache instrumentation.
	Stats FleetStats
}

// ViolationRate is the fleet's LC violation fraction: violation epochs per
// measured LC-application-epoch. Zero when the fleet has no LC epochs.
// Chaos runs carry the denominator explicitly (dead LC app-epochs count on
// both sides); otherwise it derives from the per-node summaries.
func (r *Result) ViolationRate() float64 {
	lcEpochs := r.LCAppEpochs
	if lcEpochs == 0 {
		for i := range r.Summaries {
			lcEpochs += r.Summaries[i].Epochs * r.Summaries[i].LCApps
		}
	}
	if lcEpochs == 0 {
		return 0
	}
	return float64(r.TotalViolationEpochs) / float64(lcEpochs)
}

// statsCollector accumulates FleetStats across shard workers.
type statsCollector struct {
	mu    sync.Mutex
	stats FleetStats // guarded by mu
}

// add merges one shard's counters.
func (c *statsCollector) add(simulated int, hits, solves, shared, nodeHits uint64) {
	c.mu.Lock()
	c.stats.NodesSimulated += simulated
	c.stats.MemoHits += hits
	c.stats.Solves += solves
	c.stats.SharedSolveHits += shared
	c.stats.NodeCacheHits += nodeHits
	c.mu.Unlock()
}

// snapshot returns the accumulated counters.
func (c *statsCollector) snapshot() FleetStats {
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	return s
}

// nodeClass is one simulation equivalence class: the representative node
// index, its seed, its canonical template serialisation (empty when the
// template is not key-serialisable or no consumer needs it), and every
// node the class covers. Without dedup each node is its own singleton
// class, so the class list IS the node list.
type nodeClass struct {
	rep      int
	seed     int64
	template string
	members  []int
}

// nodeSeed applies the configured per-node seed policy.
func nodeSeed(cfg *Config, i int) int64 {
	if cfg.NodeSeed != nil {
		return cfg.NodeSeed(i)
	}
	return cfg.Seed + int64(i)
}

// nodeClasses groups the fleet into simulation classes by canonical
// template digest: two nodes land in one class exactly when their seeds
// match and their templates serialise to the same full key — the digest IS
// the complete serialisation, compared by map-key equality, so grouping is
// collision-safe without any deep-equality confirmation pass and the scan
// is O(total template size) instead of the old quadratic within-bucket
// reflect.DeepEqual walk. Nodes whose template is not key-serialisable are
// never grouped (each stays a singleton class, the conservative reading).
// Grouping scans nodes in ascending order and always elects the lowest
// member as the representative, so the class list — and therefore
// everything downstream — is deterministic for a fixed configuration.
// Template keys are retained on the classes when the Run carries a
// NodeCache, which shares this exact serialisation machinery.
func nodeClasses(cfg *Config) []nodeClass {
	n := len(cfg.Placement)
	needKeys := cfg.NodeCache != nil
	classes := make([]nodeClass, 0, n)
	if !cfg.DedupIdenticalNodes {
		for i := 0; i < n; i++ {
			c := nodeClass{rep: i, seed: nodeSeed(cfg, i), members: []int{i}}
			if needKeys {
				if k, ok := templateKey(cfg.Placement[i]); ok {
					c.template = string(k)
				}
			}
			classes = append(classes, c)
		}
		return classes
	}
	type bucketKey struct {
		seed     int64
		template string
	}
	buckets := make(map[bucketKey]int, n)
	for i := 0; i < n; i++ {
		seed := nodeSeed(cfg, i)
		k, ok := templateKey(cfg.Placement[i])
		if !ok {
			classes = append(classes, nodeClass{rep: i, seed: seed, members: []int{i}})
			continue
		}
		bk := bucketKey{seed, string(k)}
		if ci, dup := buckets[bk]; dup {
			classes[ci].members = append(classes[ci].members, i)
			continue
		}
		buckets[bk] = len(classes)
		classes = append(classes, nodeClass{rep: i, seed: seed, template: bk.template, members: []int{i}})
	}
	if !needKeys {
		// The serialisations were only grouping scratch; do not retain
		// them past classing.
		for i := range classes {
			classes[i].template = ""
		}
	}
	return classes
}

// classOut is one simulated class's streaming record: the summary
// template (Node is stamped per member at merge), the class's valid
// entropy samples, and the full result when kept.
type classOut struct {
	sum NodeSummary
	lc  []entropy.LCSample
	be  []entropy.BESample
	res *core.Result // populated only under Config.KeepResults
}

// shardAccum is one shard's streaming accumulator: class records for a
// contiguous class range, appended in class order as each representative
// finishes and its full result is dropped.
type shardAccum struct {
	outs []classOut
}

// shardsFor picks the shard count: enough shards per worker that an
// unlucky slow shard cannot serialise the tail of the run, never more
// shards than nodes. The count never affects results — shard accumulators
// are merged in node order regardless of how the index space was cut.
func shardsFor(nodes, workers int) int {
	s := workers * 4
	if s > nodes {
		s = nodes
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Run drives every node of the fleet for the same horizon and aggregates.
// With a non-empty Config.FleetPlan the run goes through the phased chaos
// engine (chaos.go) instead of the single-segment path below.
func Run(cfg Config, opts core.Options) (*Result, error) {
	if len(cfg.Placement) == 0 {
		return nil, fmt.Errorf("cluster: empty placement")
	}
	if cfg.NewStrategy == nil {
		return nil, fmt.Errorf("cluster: no strategy factory")
	}
	for i, apps := range cfg.Placement {
		if len(apps) == 0 {
			return nil, fmt.Errorf("cluster: node %d has no applications", i)
		}
	}
	if cfg.NodeCache != nil {
		if cfg.StrategyDigest == "" {
			return nil, fmt.Errorf("cluster: NodeCache requires a StrategyDigest (the strategy factory is opaque; declare what it builds)")
		}
		if cfg.KeepResults {
			return nil, fmt.Errorf("cluster: NodeCache cannot be combined with KeepResults (cached records do not retain full per-node results)")
		}
	}
	if !cfg.FleetPlan.Empty() {
		if cfg.NodeSeed != nil {
			return nil, fmt.Errorf("cluster: FleetPlan cannot be combined with NodeSeed (chaos phases seed content-wise via TemplateSeed)")
		}
		if cfg.KeepResults {
			return nil, fmt.Errorf("cluster: FleetPlan cannot be combined with KeepResults (phases do not produce one core.Result per node)")
		}
	}
	ri := cfg.RI
	if ri == 0 {
		ri = entropy.DefaultRI
	}
	solves := cfg.SharedSolves
	if cfg.DisableSolveSharing {
		solves = nil
	} else if solves == nil {
		solves = sim.NewSolveCache()
	}
	if !cfg.FleetPlan.Empty() {
		return runChaos(cfg, opts, ri, solves)
	}

	n := len(cfg.Placement)
	classes := nodeClasses(&cfg)
	classOf := make([]int, n)
	for ci, c := range classes {
		for _, m := range c.members {
			classOf[m] = ci
		}
	}
	var keyPrefix []byte
	if cfg.NodeCache != nil {
		keyPrefix = nodeKeyPrefix(&cfg, opts, ri)
	}
	units := make([]shardUnit, len(classes))
	for ci, c := range classes {
		units[ci] = shardUnit{unit: simUnit{
			node: c.rep, apps: cfg.Placement[c.rep],
			spec: cfg.Spec, seed: c.seed, opts: opts,
		}}
		if cfg.NodeCache != nil && c.template != "" {
			units[ci].key = nodeKey(keyPrefix, c.seed, c.template)
		}
	}
	outs, stats, err := runUnits(&cfg, units, solves)
	if err != nil {
		return nil, err
	}

	// Expand class records to nodes in node order — the merge is invariant
	// to shard count and scheduling.
	res := &Result{Summaries: make([]NodeSummary, 0, n)}
	var lcAll []entropy.LCSample
	var beAll []entropy.BESample
	for i := 0; i < n; i++ {
		co := &outs[classOf[i]]
		sum := co.sum
		sum.Node = i
		res.Summaries = append(res.Summaries, sum)
		lcAll = append(lcAll, co.lc...)
		beAll = append(beAll, co.be...)
		res.TotalViolationEpochs += sum.ViolationEpochs
		res.MeasuredEpochs += sum.Epochs
		if cfg.KeepResults {
			res.Nodes = append(res.Nodes, NodeResult{Node: i, Result: co.res})
		}
	}

	elc, ebe, es, err := entropy.System{RI: ri}.Compute(lcAll, beAll)
	if err != nil {
		return nil, fmt.Errorf("cluster: global entropy: %w", err)
	}
	res.GlobalELC, res.GlobalEBE, res.GlobalES = elc, ebe, es
	// An absent-LC fleet legitimately has no yield; anything else failing
	// here is a real error and must not silently leave GlobalYield at 0.
	switch y, err := entropy.Yield(lcAll); {
	case err == nil:
		res.GlobalYield, res.YieldDefined = y, true
	case errors.Is(err, entropy.ErrNoSamples):
		// BE-only fleet: recorded explicitly via YieldDefined == false.
	default:
		return nil, fmt.Errorf("cluster: global yield: %w", err)
	}
	res.Stats = stats
	res.Stats.NodesRun = n
	addIncidentCounters(res)
	return res, nil
}

// addIncidentCounters derives the deterministic fleet incident counters
// from the merged per-node summaries.
func addIncidentCounters(res *Result) {
	for i := range res.Summaries {
		s := &res.Summaries[i]
		if s.Failed {
			res.Stats.FailedNodes++
		}
		res.Stats.DownEpochs += s.DownEpochs
		res.Stats.Evictions += s.Evictions
	}
}

// runUnits fans the unit list out over the worker pool in contiguous
// shards and returns the unit records in unit order. A failing shard no
// longer strands its siblings: every future is drained before the first
// error is returned, so no goroutine is left writing the collector after
// Run has handed control back to the caller.
func runUnits(cfg *Config, units []shardUnit, solves *sim.SolveCache) ([]classOut, FleetStats, error) {
	ex := workpool.New(cfg.Parallel)
	stats := &statsCollector{}
	shards := shardsFor(len(units), ex.Workers())
	futs := make([]*workpool.Future[*shardAccum], 0, shards)
	for s := 0; s < shards; s++ {
		// Contiguous ranges, remainder spread over the leading shards.
		lo := s * len(units) / shards
		hi := (s + 1) * len(units) / shards
		shard := s
		futs = append(futs, workpool.Submit(ex, func() (*shardAccum, error) {
			return runShard(*cfg, shard, units[lo:hi], solves, stats)
		}))
	}
	outs := make([]classOut, 0, len(units))
	var firstErr error
	for _, f := range futs {
		acc, err := f.Wait()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if firstErr == nil {
			outs = append(outs, acc.outs...)
		}
	}
	if firstErr != nil {
		return nil, FleetStats{}, firstErr
	}
	return outs, stats.snapshot(), nil
}

// uniquify disambiguates duplicate workload names on one node with an
// instance suffix ("xapian", "xapian#2", ...). Fleet populations replicate
// a small catalog of service templates, so placements routinely co-locate
// two instances of the same template; the engine requires distinct names.
// Renaming copies the workload struct — the name never enters the solve
// key or any numeric path, so instances share solves exactly like
// identically-named apps would. Placements with unique names pass through
// untouched.
func uniquify(apps []sim.AppConfig) []sim.AppConfig {
	seen := make(map[string]int, len(apps))
	out := apps
	for i, a := range apps {
		name := a.Name()
		seen[name]++
		n := seen[name]
		if n == 1 {
			continue
		}
		if &out[0] == &apps[0] {
			out = append([]sim.AppConfig(nil), apps...)
		}
		switch {
		case a.LC != nil:
			lc := *a.LC
			lc.Name = fmt.Sprintf("%s#%d", name, n)
			out[i].LC = &lc
		case a.BE != nil:
			be := *a.BE
			be.Name = fmt.Sprintf("%s#%d", name, n)
			out[i].BE = &be
		}
	}
	return out
}

// simUnit is one node simulation the engine must run: the node (for error
// labels and the strategy factory), its applications, capacity, seed,
// controller options, and an optional node-local telemetry-blackout plan.
// The legacy path builds one unit per node class over the run's shared
// spec and options; the chaos engine builds one per (phase, node).
type simUnit struct {
	node     int
	apps     []sim.AppConfig
	spec     machine.Spec
	seed     int64
	opts     core.Options
	blackout *faults.Plan
}

// shardUnit pairs a unit with its content-addressed NodeCache key; an
// empty key means uncached (no cache configured, or the template is not
// key-serialisable).
type shardUnit struct {
	key  string
	unit simUnit
}

// shardFailHook, when non-nil, injects a shard-level failure before the
// shard simulates anything. Set only by tests, to exercise runUnits'
// future-drain path — production shards have no error source of their own
// left (unit failures are absorbed into dead records).
var shardFailHook func(shard int) error

// runShard drives a contiguous range of units, streaming each unit's
// record into the shard accumulator. With a NodeCache configured each
// keyed unit first resolves its content-addressed key: a published entry
// replays the identical simulation's record, an in-flight entry is waited
// on (a racing shard — possibly of another Run sharing the cache — is
// computing this exact unit right now), and otherwise the shard simulates
// the unit itself, publishing the outcome when it claimed the key. A unit
// whose simulation errors no longer kills the fleet: the error is
// published (and its cache entry dropped, so the key can be re-simulated),
// then absorbed into a Failed record carrying saturated dead-window
// samples, and the run continues. Full per-node results are dropped unless
// the configuration keeps them.
func runShard(cfg Config, shard int, units []shardUnit, solves *sim.SolveCache, stats *statsCollector) (*shardAccum, error) {
	if shardFailHook != nil {
		if err := shardFailHook(shard); err != nil {
			return nil, err
		}
	}
	acc := &shardAccum{outs: make([]classOut, 0, len(units))}
	var hits, solvesN, shared, nodeHits uint64
	simulated := 0
	for _, su := range units {
		var entry *nodeCacheEntry
		if su.key != "" {
			if e, ok := cfg.NodeCache.lookup(su.key); ok {
				if co, err := e.wait(); err == nil {
					acc.outs = append(acc.outs, co)
					nodeHits++
					continue
				}
				// The claimant's simulation failed and its entry was
				// dropped; fall through and re-simulate locally.
			}
			if e, claimed := cfg.NodeCache.claim(su.key); claimed {
				entry = e
			} else if e != nil {
				// Lost the claim race: adopt the racer's record, unless
				// the racer failed — then simulate unpublished.
				if co, err := e.wait(); err == nil {
					acc.outs = append(acc.outs, co)
					nodeHits++
					continue
				}
			}
			// entry == nil here means the shard was full or a racer
			// failed: simulate without publishing.
		}
		co, cs, err := simulateUnit(&cfg, su.unit, solves)
		if entry != nil {
			cfg.NodeCache.publish(su.key, entry, co, err)
		}
		if err != nil {
			// Absorb the failure: the node is recorded dead for the whole
			// unit horizon instead of aborting every sibling simulation.
			co = deadUnitOut(su.unit)
		}
		acc.outs = append(acc.outs, co)
		simulated++
		hits += cs.memoHits
		solvesN += cs.solves
		shared += cs.sharedHits
	}
	stats.add(simulated, hits, solvesN, shared, nodeHits)
	return acc, nil
}

// classSolveStats carries one simulated unit's engine solve counters.
type classSolveStats struct {
	memoHits, solves, sharedHits uint64
}

// simulateUnit runs one unit's simulation end to end and condenses it into
// its record. A blackout plan wraps the engine with the PR 4 drop injector
// so every application's telemetry vanishes over the planned epochs.
func simulateUnit(cfg *Config, u simUnit, solves *sim.SolveCache) (classOut, classSolveStats, error) {
	engine, err := sim.New(sim.Config{
		Spec: u.spec, Seed: u.seed,
		Apps: uniquify(u.apps), SharedSolves: solves,
	})
	if err != nil {
		return classOut{}, classSolveStats{}, fmt.Errorf("cluster: node %d: %w", u.node, err)
	}
	var drive core.Engine = engine
	if !u.blackout.Empty() {
		drive = faults.NewInjector(u.blackout).Engine(engine)
	}
	nodeRes, err := core.Run(drive, cfg.NewStrategy(u.node), u.opts)
	if err != nil {
		return classOut{}, classSolveStats{}, fmt.Errorf("cluster: node %d: %w", u.node, err)
	}
	co := classOut{sum: NodeSummary{
		ELC: nodeRes.RunELC, EBE: nodeRes.RunEBE, ES: nodeRes.RunES,
		Yield:           nodeRes.Yield,
		ViolationEpochs: nodeRes.TotalViolationEpochs,
		Epochs:          nodeRes.Epochs,
		Incidents:       len(nodeRes.Incidents),
	}}
	for _, a := range nodeRes.Apps {
		if a.Spec.Class == workload.LC {
			co.sum.LCApps++
			if a.LCSample.Validate() == nil {
				co.lc = append(co.lc, a.LCSample)
			}
		} else {
			co.sum.BEApps++
			if a.BESample.Validate() == nil {
				co.be = append(co.be, a.BESample)
			}
		}
	}
	if cfg.KeepResults {
		co.res = nodeRes
	}
	var cs classSolveStats
	cs.memoHits, cs.solves, cs.sharedHits = engine.SolveStats()
	return co, cs, nil
}

// deadUnitOut condenses a unit that could not run into a Failed record
// with saturated dead-window samples, mirroring the clamps of
// core.SamplesFromWindows (a dead LC application pins its latency at
// 1000x its target, a dead BE application retains a sliver of its solo
// IPC), so fleet aggregation accounts the dead windows explicitly instead
// of silently shrinking the sample set. Every measured epoch of a dead LC
// application counts as a violation.
func deadUnitOut(u simUnit) classOut {
	o := u.opts.WithDefaults()
	total := int(math.Ceil((o.WarmupMs + o.DurationMs) / o.EpochMs))
	measured := total - int(math.Ceil(o.WarmupMs/o.EpochMs))
	co := classOut{sum: NodeSummary{
		Failed: true, DownEpochs: total, Epochs: measured,
	}}
	for _, a := range uniquify(u.apps) {
		if a.LC != nil {
			co.sum.LCApps++
			co.lc = append(co.lc, deadLCSample(a))
		} else if a.BE != nil {
			co.sum.BEApps++
			co.be = append(co.be, deadBESample(a))
		}
	}
	co.sum.ViolationEpochs = measured * co.sum.LCApps
	if elc, ebe, es, err := (entropy.System{RI: o.RI}).Compute(co.lc, co.be); err == nil {
		co.sum.ELC, co.sum.EBE, co.sum.ES = elc, ebe, es
	} else {
		co.sum.ELC, co.sum.EBE, co.sum.ES = math.NaN(), math.NaN(), math.NaN()
	}
	return co
}

// deadLCSample is the saturated entropy sample of an LC application whose
// node is dead: latency clamped at 1000x its target (the starvation clamp
// of core.SamplesFromWindows), so it maximally violates.
func deadLCSample(a sim.AppConfig) entropy.LCSample {
	return entropy.LCSample{
		Name: a.LC.Name, IdealMs: a.LC.IdealP95Ms,
		MeasuredMs: a.LC.QoSTargetMs * 1e3, TargetMs: a.LC.QoSTargetMs,
	}
}

// deadBESample is the saturated entropy sample of a BE application whose
// node is dead: a sliver of its solo IPC (the zero-IPC clamp of
// core.SamplesFromWindows), so E_BE saturates instead of erroring.
func deadBESample(a sim.AppConfig) entropy.BESample {
	return entropy.BESample{
		Name: a.BE.Name, SoloIPC: a.BE.SoloIPC, MeasuredIPC: a.BE.SoloIPC * 1e-3,
	}
}
