// Package cluster scales the Ah-Q model from one node to a datacenter
// fleet: thousands of simulated nodes, each managed by its own controller
// and strategy instance, with the system entropy aggregated over every
// collocated application in the fleet. The paper defines E_S "in a
// datacenter"; this package is the multi-node reading of that definition,
// and shows how E_S ranks *placements* the same way it ranks schedulers.
//
// Run is a sharded fleet engine: the node index space is cut into
// contiguous shards, shards fan out over a bounded worker pool
// (internal/pool, the same implementation the experiment harness uses),
// and every node's engine threads one shared contention-solve cache —
// fleet mixes recur massively across nodes, so after the first few nodes
// almost every steady-state solve is a cache adoption rather than a
// fixed-point iteration. Aggregation is streaming: each shard accumulates
// run-level entropy samples and compact per-node summaries as its nodes
// finish, per-node core.Results are discarded by default (KeepResults
// retains them), and shard accumulators are merged in node order — so a
// 5000-node fleet fits comfortably in memory and the result is
// byte-identical at every parallelism level.
package cluster

import (
	"errors"
	"fmt"
	"sync"

	"ahq/internal/core"
	"ahq/internal/entropy"
	"ahq/internal/machine"
	workpool "ahq/internal/pool"
	"ahq/internal/sched"
	"ahq/internal/sim"
	"ahq/internal/workload"
)

// Config describes a homogeneous cluster run.
type Config struct {
	// Spec is each node's capacity.
	Spec machine.Spec
	// Seed drives all nodes deterministically (node i uses Seed+i).
	Seed int64
	// NewStrategy builds one strategy instance per node. It is called from
	// shard workers, so it must be safe for concurrent calls and must
	// return a fresh instance every time (strategies are stateful).
	NewStrategy func(node int) sched.Strategy
	// Placement assigns the application set to nodes: Placement[i] holds
	// node i's applications. Every node needs at least one application.
	Placement [][]sim.AppConfig
	// RI is the relative importance for the global entropy; 0 means the
	// paper's 0.8.
	RI float64
	// Parallel bounds how many node simulations run simultaneously;
	// <= 0 means runtime.NumCPU(), 1 runs the shards sequentially.
	// Results are merged in node order, so the output is identical at
	// every parallelism level.
	Parallel int
	// NodeSeed optionally overrides the per-node seed policy; nil means
	// node i runs with Seed+i (independent stochastic streams per node).
	// Screening runs that want common random numbers across replicated
	// node templates supply a policy returning equal seeds for equal
	// templates.
	NodeSeed func(node int) int64
	// DedupIdenticalNodes opts into fleet-level node memoisation: nodes
	// whose seed and application template coincide — possible only under a
	// NodeSeed policy assigning equal seeds — are provably bit-identical
	// simulations, so the engine runs one representative per equivalence
	// class and replicates its summary and samples to every member. The
	// aggregate is byte-identical to simulating every node (pinned by
	// TestDedupMatchesFullSimulation); only wall time changes. Requires
	// NewStrategy to return node-index-agnostic strategies, and under
	// KeepResults the members of a class share one *core.Result.
	DedupIdenticalNodes bool
	// NodeCache optionally supplies a sweep-scoped cache of completed
	// node simulations (nodecache.go): before simulating a class
	// representative the engine looks up the class's content-addressed
	// key — every input the simulation reads, bit-exactly — and a hit
	// replays the record the identical computation produced in an earlier
	// Run (or in a racing shard, via single-flight). Byte-identical
	// output by construction; only wall time changes. Requires
	// StrategyDigest and is rejected together with KeepResults (cached
	// records deliberately do not retain full per-node results).
	NodeCache *NodeCache
	// StrategyDigest declares the identity of what NewStrategy builds —
	// the one node-simulation input the engine cannot serialise itself,
	// since the factory is opaque. Required when NodeCache is set; the
	// digest must change whenever the strategy's behaviour (type, config,
	// tunables) does, and the factory must return node-index-agnostic
	// instances, exactly as DedupIdenticalNodes already requires.
	StrategyDigest string
	// SharedSolves optionally supplies the cross-node contention-solve
	// cache. Nil means Run creates a fleet-private one; callers that sweep
	// several fleets over the same mixes (the experiment harness) pass a
	// sweep-scoped cache so solves carry across Run invocations too.
	// Sharing is bit-exact, so it never changes results.
	SharedSolves *sim.SolveCache
	// DisableSolveSharing runs every node engine with an isolated solve
	// memo — the pre-fleet sequential baseline path, kept for benchmark
	// comparison. It overrides SharedSolves.
	DisableSolveSharing bool
	// KeepResults retains the full per-node core.Result in Result.Nodes.
	// Off by default: at fleet scale the per-node results dominate memory,
	// and the compact NodeSummary carries everything aggregation needs.
	KeepResults bool
}

// NodeResult pairs one node's full controller outcome with its index
// (retained only under Config.KeepResults).
type NodeResult struct {
	Node   int
	Result *core.Result
}

// NodeSummary is the compact per-node record the fleet engine keeps in
// place of a full core.Result: the node's run-level entropies and the
// counters fleet-level reporting aggregates.
type NodeSummary struct {
	Node int
	// ELC/EBE/ES are the node's run-level entropies (core.Result.RunELC
	// etc.); NaN-free only when the node had computable samples.
	ELC, EBE, ES float64
	// Yield is the node-local satisfied fraction of its LC applications.
	Yield float64
	// LCApps and BEApps count the node's applications by class.
	LCApps, BEApps int
	// ViolationEpochs sums LC violation epochs over the node's apps.
	ViolationEpochs int
	// Epochs counts the node's measured monitoring intervals.
	Epochs int
	// Incidents counts degradation events the node's controller survived.
	Incidents int
}

// FleetStats aggregates solve-cache instrumentation over the fleet. The
// counters depend on worker scheduling (which engine reached a vector
// first), so they are for benchmarks and logs, never deterministic output.
type FleetStats struct {
	// NodesRun counts the fleet's logical nodes.
	NodesRun int
	// NodesSimulated counts engines actually driven: equal to NodesRun
	// except under DedupIdenticalNodes, where it is the number of node
	// equivalence classes.
	NodesSimulated int
	// MemoHits are per-engine memo hits, Solves are full fixed-point
	// solves, SharedSolveHits are solves adopted from the cross-node cache.
	MemoHits, Solves, SharedSolveHits uint64
	// NodeCacheHits counts node classes whose simulation was replayed
	// from Config.NodeCache instead of being run.
	NodeCacheHits uint64
}

// Result aggregates a cluster run.
type Result struct {
	// Summaries holds the compact per-node records, in node order.
	Summaries []NodeSummary
	// Nodes holds the full per-node controller results, only when
	// Config.KeepResults; empty otherwise.
	Nodes []NodeResult
	// GlobalELC/GlobalEBE/GlobalES are computed over the pooled run-level
	// samples of every application in the cluster — the datacenter-wide
	// E_S of the paper's definition.
	GlobalELC, GlobalEBE, GlobalES float64
	// GlobalYield is the satisfied fraction over all LC applications.
	// Meaningful only when YieldDefined; a fleet with no LC samples has no
	// yield (GlobalYield stays 0 and YieldDefined false).
	GlobalYield float64
	// YieldDefined reports whether GlobalYield was computable.
	YieldDefined bool
	// TotalViolationEpochs sums LC violation epochs over every node.
	TotalViolationEpochs int
	// MeasuredEpochs sums the per-node measured monitoring intervals.
	MeasuredEpochs int
	// Stats carries fleet-wide solve-cache instrumentation.
	Stats FleetStats
}

// ViolationRate is the fleet's LC violation fraction: violation epochs per
// measured LC-application-epoch. Zero when the fleet has no LC epochs.
func (r *Result) ViolationRate() float64 {
	lcEpochs := 0
	for i := range r.Summaries {
		lcEpochs += r.Summaries[i].Epochs * r.Summaries[i].LCApps
	}
	if lcEpochs == 0 {
		return 0
	}
	return float64(r.TotalViolationEpochs) / float64(lcEpochs)
}

// statsCollector accumulates FleetStats across shard workers.
type statsCollector struct {
	mu    sync.Mutex
	stats FleetStats // guarded by mu
}

// add merges one shard's counters.
func (c *statsCollector) add(simulated int, hits, solves, shared, nodeHits uint64) {
	c.mu.Lock()
	c.stats.NodesSimulated += simulated
	c.stats.MemoHits += hits
	c.stats.Solves += solves
	c.stats.SharedSolveHits += shared
	c.stats.NodeCacheHits += nodeHits
	c.mu.Unlock()
}

// snapshot returns the accumulated counters.
func (c *statsCollector) snapshot() FleetStats {
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	return s
}

// nodeClass is one simulation equivalence class: the representative node
// index, its seed, its canonical template serialisation (empty when the
// template is not key-serialisable or no consumer needs it), and every
// node the class covers. Without dedup each node is its own singleton
// class, so the class list IS the node list.
type nodeClass struct {
	rep      int
	seed     int64
	template string
	members  []int
}

// nodeSeed applies the configured per-node seed policy.
func nodeSeed(cfg *Config, i int) int64 {
	if cfg.NodeSeed != nil {
		return cfg.NodeSeed(i)
	}
	return cfg.Seed + int64(i)
}

// nodeClasses groups the fleet into simulation classes by canonical
// template digest: two nodes land in one class exactly when their seeds
// match and their templates serialise to the same full key — the digest IS
// the complete serialisation, compared by map-key equality, so grouping is
// collision-safe without any deep-equality confirmation pass and the scan
// is O(total template size) instead of the old quadratic within-bucket
// reflect.DeepEqual walk. Nodes whose template is not key-serialisable are
// never grouped (each stays a singleton class, the conservative reading).
// Grouping scans nodes in ascending order and always elects the lowest
// member as the representative, so the class list — and therefore
// everything downstream — is deterministic for a fixed configuration.
// Template keys are retained on the classes when the Run carries a
// NodeCache, which shares this exact serialisation machinery.
func nodeClasses(cfg *Config) []nodeClass {
	n := len(cfg.Placement)
	needKeys := cfg.NodeCache != nil
	classes := make([]nodeClass, 0, n)
	if !cfg.DedupIdenticalNodes {
		for i := 0; i < n; i++ {
			c := nodeClass{rep: i, seed: nodeSeed(cfg, i), members: []int{i}}
			if needKeys {
				if k, ok := templateKey(cfg.Placement[i]); ok {
					c.template = string(k)
				}
			}
			classes = append(classes, c)
		}
		return classes
	}
	type bucketKey struct {
		seed     int64
		template string
	}
	buckets := make(map[bucketKey]int, n)
	for i := 0; i < n; i++ {
		seed := nodeSeed(cfg, i)
		k, ok := templateKey(cfg.Placement[i])
		if !ok {
			classes = append(classes, nodeClass{rep: i, seed: seed, members: []int{i}})
			continue
		}
		bk := bucketKey{seed, string(k)}
		if ci, dup := buckets[bk]; dup {
			classes[ci].members = append(classes[ci].members, i)
			continue
		}
		buckets[bk] = len(classes)
		classes = append(classes, nodeClass{rep: i, seed: seed, template: bk.template, members: []int{i}})
	}
	if !needKeys {
		// The serialisations were only grouping scratch; do not retain
		// them past classing.
		for i := range classes {
			classes[i].template = ""
		}
	}
	return classes
}

// classOut is one simulated class's streaming record: the summary
// template (Node is stamped per member at merge), the class's valid
// entropy samples, and the full result when kept.
type classOut struct {
	sum NodeSummary
	lc  []entropy.LCSample
	be  []entropy.BESample
	res *core.Result // populated only under Config.KeepResults
}

// shardAccum is one shard's streaming accumulator: class records for a
// contiguous class range, appended in class order as each representative
// finishes and its full result is dropped.
type shardAccum struct {
	outs []classOut
}

// shardsFor picks the shard count: enough shards per worker that an
// unlucky slow shard cannot serialise the tail of the run, never more
// shards than nodes. The count never affects results — shard accumulators
// are merged in node order regardless of how the index space was cut.
func shardsFor(nodes, workers int) int {
	s := workers * 4
	if s > nodes {
		s = nodes
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Run drives every node of the fleet for the same horizon and aggregates.
func Run(cfg Config, opts core.Options) (*Result, error) {
	if len(cfg.Placement) == 0 {
		return nil, fmt.Errorf("cluster: empty placement")
	}
	if cfg.NewStrategy == nil {
		return nil, fmt.Errorf("cluster: no strategy factory")
	}
	for i, apps := range cfg.Placement {
		if len(apps) == 0 {
			return nil, fmt.Errorf("cluster: node %d has no applications", i)
		}
	}
	if cfg.NodeCache != nil {
		if cfg.StrategyDigest == "" {
			return nil, fmt.Errorf("cluster: NodeCache requires a StrategyDigest (the strategy factory is opaque; declare what it builds)")
		}
		if cfg.KeepResults {
			return nil, fmt.Errorf("cluster: NodeCache cannot be combined with KeepResults (cached records do not retain full per-node results)")
		}
	}
	ri := cfg.RI
	if ri == 0 {
		ri = entropy.DefaultRI
	}
	solves := cfg.SharedSolves
	if cfg.DisableSolveSharing {
		solves = nil
	} else if solves == nil {
		solves = sim.NewSolveCache()
	}

	ex := workpool.New(cfg.Parallel)
	n := len(cfg.Placement)
	classes := nodeClasses(&cfg)
	classOf := make([]int, n)
	for ci, c := range classes {
		for _, m := range c.members {
			classOf[m] = ci
		}
	}
	var keyPrefix []byte
	if cfg.NodeCache != nil {
		keyPrefix = nodeKeyPrefix(&cfg, opts, ri)
	}
	stats := &statsCollector{}
	shards := shardsFor(len(classes), ex.Workers())
	futs := make([]*workpool.Future[*shardAccum], 0, shards)
	for s := 0; s < shards; s++ {
		// Contiguous ranges, remainder spread over the leading shards.
		lo := s * len(classes) / shards
		hi := (s + 1) * len(classes) / shards
		futs = append(futs, workpool.Submit(ex, func() (*shardAccum, error) {
			return runShard(cfg, opts, keyPrefix, classes[lo:hi], solves, stats)
		}))
	}

	// Collect class records in class order, then expand to nodes in node
	// order — the merge is invariant to shard count and scheduling.
	outs := make([]classOut, 0, len(classes))
	for _, f := range futs {
		acc, err := f.Wait()
		if err != nil {
			return nil, err
		}
		outs = append(outs, acc.outs...)
	}
	res := &Result{Summaries: make([]NodeSummary, 0, n)}
	var lcAll []entropy.LCSample
	var beAll []entropy.BESample
	for i := 0; i < n; i++ {
		co := &outs[classOf[i]]
		sum := co.sum
		sum.Node = i
		res.Summaries = append(res.Summaries, sum)
		lcAll = append(lcAll, co.lc...)
		beAll = append(beAll, co.be...)
		res.TotalViolationEpochs += sum.ViolationEpochs
		res.MeasuredEpochs += sum.Epochs
		if cfg.KeepResults {
			res.Nodes = append(res.Nodes, NodeResult{Node: i, Result: co.res})
		}
	}

	elc, ebe, es, err := entropy.System{RI: ri}.Compute(lcAll, beAll)
	if err != nil {
		return nil, fmt.Errorf("cluster: global entropy: %w", err)
	}
	res.GlobalELC, res.GlobalEBE, res.GlobalES = elc, ebe, es
	// An absent-LC fleet legitimately has no yield; anything else failing
	// here is a real error and must not silently leave GlobalYield at 0.
	switch y, err := entropy.Yield(lcAll); {
	case err == nil:
		res.GlobalYield, res.YieldDefined = y, true
	case errors.Is(err, entropy.ErrNoSamples):
		// BE-only fleet: recorded explicitly via YieldDefined == false.
	default:
		return nil, fmt.Errorf("cluster: global yield: %w", err)
	}
	res.Stats = stats.snapshot()
	res.Stats.NodesRun = n
	return res, nil
}

// uniquify disambiguates duplicate workload names on one node with an
// instance suffix ("xapian", "xapian#2", ...). Fleet populations replicate
// a small catalog of service templates, so placements routinely co-locate
// two instances of the same template; the engine requires distinct names.
// Renaming copies the workload struct — the name never enters the solve
// key or any numeric path, so instances share solves exactly like
// identically-named apps would. Placements with unique names pass through
// untouched.
func uniquify(apps []sim.AppConfig) []sim.AppConfig {
	seen := make(map[string]int, len(apps))
	out := apps
	for i, a := range apps {
		name := a.Name()
		seen[name]++
		n := seen[name]
		if n == 1 {
			continue
		}
		if &out[0] == &apps[0] {
			out = append([]sim.AppConfig(nil), apps...)
		}
		switch {
		case a.LC != nil:
			lc := *a.LC
			lc.Name = fmt.Sprintf("%s#%d", name, n)
			out[i].LC = &lc
		case a.BE != nil:
			be := *a.BE
			be.Name = fmt.Sprintf("%s#%d", name, n)
			out[i].BE = &be
		}
	}
	return out
}

// runShard drives a contiguous range of node classes, streaming each
// class's record into the shard accumulator. With a NodeCache configured
// each class first resolves its content-addressed key: a published entry
// replays the identical simulation's record, an in-flight entry is waited
// on (a racing shard — possibly of another Run sharing the cache — is
// computing this exact class right now), and otherwise the shard simulates
// the representative itself, publishing the outcome when it claimed the
// key. Full per-node results are dropped unless the configuration keeps
// them.
func runShard(cfg Config, opts core.Options, keyPrefix []byte, classes []nodeClass, solves *sim.SolveCache, stats *statsCollector) (*shardAccum, error) {
	acc := &shardAccum{outs: make([]classOut, 0, len(classes))}
	var hits, solvesN, shared, nodeHits uint64
	simulated := 0
	for _, c := range classes {
		key := ""
		if cfg.NodeCache != nil && c.template != "" {
			key = nodeKey(keyPrefix, c.seed, c.template)
			if e, ok := cfg.NodeCache.lookup(key); ok {
				co, err := e.wait()
				if err != nil {
					return nil, fmt.Errorf("cluster: node %d: %w", c.rep, err)
				}
				acc.outs = append(acc.outs, co)
				nodeHits++
				continue
			}
		}
		var entry *nodeCacheEntry
		if key != "" {
			var claimed bool
			if entry, claimed = cfg.NodeCache.claim(key); entry != nil && !claimed {
				// Lost the claim race: adopt the racer's record.
				co, err := entry.wait()
				if err != nil {
					return nil, fmt.Errorf("cluster: node %d: %w", c.rep, err)
				}
				acc.outs = append(acc.outs, co)
				nodeHits++
				continue
			}
			// claimed, or the shard was full (entry == nil): simulate;
			// publish only when claimed.
		}
		co, cs, err := simulateClass(&cfg, opts, c, solves)
		if entry != nil {
			entry.complete(co, err)
		}
		if err != nil {
			return nil, err
		}
		acc.outs = append(acc.outs, co)
		simulated++
		hits += cs.memoHits
		solvesN += cs.solves
		shared += cs.sharedHits
	}
	stats.add(simulated, hits, solvesN, shared, nodeHits)
	return acc, nil
}

// classSolveStats carries one simulated class's engine solve counters.
type classSolveStats struct {
	memoHits, solves, sharedHits uint64
}

// simulateClass runs one node class's representative simulation end to end
// and condenses it into the class record.
func simulateClass(cfg *Config, opts core.Options, c nodeClass, solves *sim.SolveCache) (classOut, classSolveStats, error) {
	i := c.rep
	engine, err := sim.New(sim.Config{
		Spec: cfg.Spec, Seed: c.seed,
		Apps: uniquify(cfg.Placement[i]), SharedSolves: solves,
	})
	if err != nil {
		return classOut{}, classSolveStats{}, fmt.Errorf("cluster: node %d: %w", i, err)
	}
	nodeRes, err := core.Run(engine, cfg.NewStrategy(i), opts)
	if err != nil {
		return classOut{}, classSolveStats{}, fmt.Errorf("cluster: node %d: %w", i, err)
	}
	co := classOut{sum: NodeSummary{
		ELC: nodeRes.RunELC, EBE: nodeRes.RunEBE, ES: nodeRes.RunES,
		Yield:           nodeRes.Yield,
		ViolationEpochs: nodeRes.TotalViolationEpochs,
		Epochs:          nodeRes.Epochs,
		Incidents:       len(nodeRes.Incidents),
	}}
	for _, a := range nodeRes.Apps {
		if a.Spec.Class == workload.LC {
			co.sum.LCApps++
			if a.LCSample.Validate() == nil {
				co.lc = append(co.lc, a.LCSample)
			}
		} else {
			co.sum.BEApps++
			if a.BESample.Validate() == nil {
				co.be = append(co.be, a.BESample)
			}
		}
	}
	if cfg.KeepResults {
		co.res = nodeRes
	}
	var cs classSolveStats
	cs.memoHits, cs.solves, cs.sharedHits = engine.SolveStats()
	return co, cs, nil
}
