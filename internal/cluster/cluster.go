// Package cluster scales the Ah-Q model from one node to a small
// datacenter: several simulated nodes, each managed by its own controller
// and strategy instance, with the system entropy aggregated over every
// collocated application in the fleet. The paper defines E_S "in a
// datacenter"; this package is the multi-node reading of that definition,
// and shows how E_S ranks *placements* the same way it ranks schedulers.
package cluster

import (
	"fmt"

	"ahq/internal/core"
	"ahq/internal/entropy"
	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sim"
	"ahq/internal/workload"
)

// Config describes a homogeneous cluster run.
type Config struct {
	// Spec is each node's capacity.
	Spec machine.Spec
	// Seed drives all nodes deterministically (node i uses Seed+i).
	Seed int64
	// NewStrategy builds one strategy instance per node.
	NewStrategy func(node int) sched.Strategy
	// Placement assigns the application set to nodes: Placement[i] holds
	// node i's applications. Every node needs at least one application.
	Placement [][]sim.AppConfig
	// RI is the relative importance for the global entropy; 0 means the
	// paper's 0.8.
	RI float64
}

// NodeResult pairs one node's controller outcome with its index.
type NodeResult struct {
	Node   int
	Result *core.Result
}

// Result aggregates a cluster run.
type Result struct {
	// Nodes holds the per-node controller results.
	Nodes []NodeResult
	// GlobalELC/GlobalEBE/GlobalES are computed over the pooled run-level
	// samples of every application in the cluster — the datacenter-wide
	// E_S of the paper's definition.
	GlobalELC, GlobalEBE, GlobalES float64
	// GlobalYield is the satisfied fraction over all LC applications.
	GlobalYield float64
}

// Run drives every node for the same horizon and aggregates.
func Run(cfg Config, opts core.Options) (*Result, error) {
	if len(cfg.Placement) == 0 {
		return nil, fmt.Errorf("cluster: empty placement")
	}
	if cfg.NewStrategy == nil {
		return nil, fmt.Errorf("cluster: no strategy factory")
	}
	ri := cfg.RI
	if ri == 0 {
		ri = entropy.DefaultRI
	}
	res := &Result{}
	var lcAll []entropy.LCSample
	var beAll []entropy.BESample
	for i, apps := range cfg.Placement {
		if len(apps) == 0 {
			return nil, fmt.Errorf("cluster: node %d has no applications", i)
		}
		engine, err := sim.New(sim.Config{Spec: cfg.Spec, Seed: cfg.Seed + int64(i), Apps: apps})
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		nodeRes, err := core.Run(engine, cfg.NewStrategy(i), opts)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		res.Nodes = append(res.Nodes, NodeResult{Node: i, Result: nodeRes})
		for _, a := range nodeRes.Apps {
			if a.Spec.Class == workload.LC {
				if a.LCSample.Validate() == nil {
					lcAll = append(lcAll, a.LCSample)
				}
			} else if a.BESample.Validate() == nil {
				beAll = append(beAll, a.BESample)
			}
		}
	}
	elc, ebe, es, err := entropy.System{RI: ri}.Compute(lcAll, beAll)
	if err != nil {
		return nil, fmt.Errorf("cluster: global entropy: %w", err)
	}
	res.GlobalELC, res.GlobalEBE, res.GlobalES = elc, ebe, es
	if y, err := entropy.Yield(lcAll); err == nil {
		res.GlobalYield = y
	}
	return res, nil
}
