package cluster

import (
	"fmt"
	"sort"

	"ahq/internal/machine"
	"ahq/internal/sim"
)

// Scored is the interference-aware placement: instead of balancing a
// single demand scalar, every candidate node is scored by the co-location
// pressure the application would create there — utilisation headroom,
// memory-bandwidth saturation, and the LC↔BE cross-interference the Ah-Q
// model says dominates tail damage — and the app goes to the
// lowest-scoring node. The shape follows the scoring schedulers of the
// related work (paws' temporal-utilisation scorer, Mage's online
// interference-aware placement): predict the pressure of each fit, pick
// the least-interfering node, deterministically.
//
// Score terms, all dimensionless, lower is better:
//
//   - utilisation: ((demand+d)/cores)² — squared so near-saturated nodes
//     repel further load much harder than half-empty ones;
//   - bandwidth: ((bw+b)/memGBps)² — same shape for the memory bus, the
//     resource the paper's worst interference cases (Stream) saturate;
//   - cross-interference: for an LC candidate, the node's resident BE
//     bandwidth appetite (BE co-runners are what destroy LC tails); for a
//     BE candidate, its own appetite times the node's resident LC demand
//     (a bandwidth hog belongs on the LC-lightest node);
//   - spread: a small linear utilisation term so equal-interference ties
//     break toward the less-loaded node, and node order breaks exact ties.

// Scoring weights. Utilisation and bandwidth terms are already in [0,~1]²
// at sane packing; the cross term is the product of two such fractions,
// so it gets a heavier weight to stay audible.
const (
	scoreBWWeight     = 1.0
	scoreCrossWeight  = 2.0
	scoreSpreadWeight = 0.1
)

// appDemand is the per-application precomputation the scoring loop reads:
// core demand, class, and memory-bandwidth appetite.
type appDemand struct {
	idx  int
	d    float64
	gbps float64
	isLC bool
}

// nodeLoad is the running per-node state the greedy assignment updates.
type nodeLoad struct {
	demand   float64 // total estimated core demand
	lcDemand float64 // LC share of demand
	beGBps   float64 // resident BE bandwidth appetite
	lcGBps   float64 // resident LC bandwidth appetite
	count    int
}

// placementScore predicts the interference pressure of putting an
// application with demand d and bandwidth appetite gbps on a node in
// state st. Pure float math: this is the fleet placement hot loop,
// invoked O(apps × nodes) times at datacenter scale.
//
//ahq:hotpath
func placementScore(st *nodeLoad, d, gbps float64, isLC bool, cores, memGBps float64) float64 {
	u := (st.demand + d) / cores
	bw := (st.beGBps + st.lcGBps + gbps) / memGBps
	var cross float64
	if isLC {
		cross = st.beGBps / memGBps
	} else {
		cross = (gbps / memGBps) * (st.lcDemand / cores)
	}
	return u*u + scoreBWWeight*bw*bw + scoreCrossWeight*cross + scoreSpreadWeight*u
}

// bandwidthAppetite returns the application's worst-case memory-bandwidth
// draw in GB/s: threads times the per-thread appetite of its sensitivity
// model, elasticity-discounted for BE work like EstimateDemand.
func bandwidthAppetite(app sim.AppConfig) float64 {
	if app.LC != nil {
		return float64(app.LC.Threads) * app.LC.Sens.MemGBpsPerThread
	}
	if app.BE != nil {
		return BEElasticity * float64(app.BE.Threads) * app.BE.Sens.MemGBpsPerThread
	}
	return 0
}

// Scored assigns each application to the node where the interference
// score predicts the least co-location pressure. Applications are placed
// in descending demand order (largest first, like Balanced) so the big
// immovable objects land before the flexible small ones; ties in score
// break toward the lowest node index. Placement is fully deterministic.
//
// Every node must end non-empty, so len(apps) >= nodes is required: once
// the number of unplaced applications equals the number of still-empty
// nodes, candidates are restricted to the empty nodes.
func Scored(apps []sim.AppConfig, nodes int, spec machine.Spec) ([][]sim.AppConfig, error) {
	return scored(apps, nodes, float64(spec.Cores), spec.MemBWGBps)
}

func scored(apps []sim.AppConfig, nodes int, cores, memGBps float64) ([][]sim.AppConfig, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	if len(apps) < nodes {
		return nil, fmt.Errorf("cluster: %d applications cannot cover %d nodes", len(apps), nodes)
	}
	if cores <= 0 || memGBps <= 0 {
		return nil, fmt.Errorf("cluster: scored placement needs positive node capacity (cores %.3g, mem %.3g GB/s)", cores, memGBps)
	}
	demands := make([]appDemand, len(apps))
	for i, a := range apps {
		demands[i] = appDemand{idx: i, d: EstimateDemand(a), gbps: bandwidthAppetite(a), isLC: a.LC != nil}
	}
	sort.SliceStable(demands, func(a, b int) bool { return demands[a].d > demands[b].d })

	out := make([][]sim.AppConfig, nodes)
	load := make([]nodeLoad, nodes)
	empty := nodes
	for placed, ad := range demands {
		remaining := len(demands) - placed
		mustFill := remaining <= empty
		best, bestScore := -1, 0.0
		for n := range load {
			if mustFill && load[n].count > 0 {
				continue
			}
			s := placementScore(&load[n], ad.d, ad.gbps, ad.isLC, cores, memGBps)
			if best < 0 || s < bestScore {
				best, bestScore = n, s
			}
		}
		st := &load[best]
		out[best] = append(out[best], apps[ad.idx])
		st.demand += ad.d
		if st.count == 0 {
			empty--
		}
		st.count++
		if ad.isLC {
			st.lcDemand += ad.d
			st.lcGBps += ad.gbps
		} else {
			st.beGBps += ad.gbps
		}
	}
	return out, nil
}
