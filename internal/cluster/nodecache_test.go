package cluster

// NodeCache semantics: a hit must replay the bit-exact record a fresh
// simulation would produce; any differing key component (spec, options,
// seed policy, strategy digest, template) must miss; shards are bounded
// (a full shard stops inserting); and racing single-flight callers must
// resolve to exactly one simulation without tripping the race detector.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sched/arq"
	"ahq/internal/sched/static"
	"ahq/internal/sim"
)

// cachedFleetConfig is a small CRN fleet whose contents recur: four nodes
// over two templates, content-derived seeds, dedup on.
func cachedFleetConfig(cache *NodeCache) Config {
	a := []sim.AppConfig{lcAt("xapian", 0.5), beApp("stream")}
	b := []sim.AppConfig{lcAt("moses", 0.35), lcAt("silo", 0.2), beApp("fluidanimate")}
	placement := [][]sim.AppConfig{a, b, a, b}
	seeds := make([]int64, len(placement))
	for i := range placement {
		seeds[i] = TemplateSeed(11, placement[i])
	}
	return Config{
		Spec:                machine.DefaultSpec(),
		Seed:                11,
		NewStrategy:         func(int) sched.Strategy { return arq.Default() },
		Placement:           placement,
		NodeSeed:            func(i int) int64 { return seeds[i] },
		DedupIdenticalNodes: true,
		NodeCache:           cache,
		StrategyDigest:      "arq:default",
	}
}

// TestNodeCacheHitIsBitIdentical pins the core contract: a Run served from
// the cache equals — field for field, float bit for float bit (DeepEqual
// compares float64s exactly) — both the Run that populated the cache and
// an uncached Run.
func TestNodeCacheHitIsBitIdentical(t *testing.T) {
	cache := NewNodeCache()
	first, err := Run(cachedFleetConfig(cache), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.NodeCacheHits != 0 {
		t.Errorf("cold cache produced %d hits", first.Stats.NodeCacheHits)
	}
	second, err := Run(cachedFleetConfig(cache), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.NodeCacheHits != 2 {
		t.Errorf("warm run replayed %d classes, want 2", second.Stats.NodeCacheHits)
	}
	if second.Stats.NodesSimulated != 0 {
		t.Errorf("warm run simulated %d classes, want 0", second.Stats.NodesSimulated)
	}
	uncached, err := Run(cachedFleetConfig(nil), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(deterministicView(first), deterministicView(second)) {
		t.Error("cache hit diverged from the populating run")
	}
	if !reflect.DeepEqual(deterministicView(first), deterministicView(uncached)) {
		t.Error("cached run diverged from the uncached run")
	}
}

// TestNodeCacheDistinctInputsMiss pins the key: runs differing in machine
// spec, controller options, node seed, or strategy digest must not adopt
// each other's records — and, because every input is in the key, their
// results must equal a fresh uncached run of the same configuration.
func TestNodeCacheDistinctInputsMiss(t *testing.T) {
	cache := NewNodeCache()
	if _, err := Run(cachedFleetConfig(cache), quickOpts()); err != nil {
		t.Fatal(err)
	}
	variants := map[string]func() (Config, core.Options){
		"spec": func() (Config, core.Options) {
			cfg := cachedFleetConfig(cache)
			cfg.Spec = machine.Spec{Cores: 12, LLCWays: 20, MemBWUnits: 10, MemBWGBps: 40}
			return cfg, quickOpts()
		},
		"options": func() (Config, core.Options) {
			opts := quickOpts()
			opts.DurationMs += 500
			return cachedFleetConfig(cache), opts
		},
		"seed": func() (Config, core.Options) {
			cfg := cachedFleetConfig(cache)
			cfg.NodeSeed = func(i int) int64 { return 77 }
			return cfg, quickOpts()
		},
		"strategy-digest": func() (Config, core.Options) {
			cfg := cachedFleetConfig(cache)
			cfg.NewStrategy = func(int) sched.Strategy { return static.Unmanaged{} }
			cfg.StrategyDigest = "static:unmanaged"
			return cfg, quickOpts()
		},
	}
	for label, build := range variants {
		t.Run(label, func(t *testing.T) {
			cfg, opts := build()
			shared, err := Run(cfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			if shared.Stats.NodeCacheHits != 0 {
				t.Errorf("variant %q adopted %d cached records; key is too coarse",
					label, shared.Stats.NodeCacheHits)
			}
			cfg2, opts2 := build()
			cfg2.NodeCache = nil
			fresh, err := Run(cfg2, opts2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(deterministicView(shared), deterministicView(fresh)) {
				t.Errorf("variant %q with shared cache diverged from fresh run", label)
			}
		})
	}
}

// TestNodeCacheRequiresStrategyDigest pins the configuration contract.
func TestNodeCacheRequiresStrategyDigest(t *testing.T) {
	cfg := cachedFleetConfig(NewNodeCache())
	cfg.StrategyDigest = ""
	if _, err := Run(cfg, quickOpts()); err == nil {
		t.Error("NodeCache without StrategyDigest was accepted")
	}
	cfg = cachedFleetConfig(NewNodeCache())
	cfg.KeepResults = true
	if _, err := Run(cfg, quickOpts()); err == nil {
		t.Error("NodeCache with KeepResults was accepted")
	}
}

// TestNodeCacheBounded pins boundedness at the shard protocol level: once
// a shard reaches capacity, claim declines (nil, false) instead of
// inserting, and Len stops growing.
func TestNodeCacheBounded(t *testing.T) {
	c := NewNodeCache()
	// Drive one shard to capacity with synthetic keys routed to it.
	shard := c.shardFor("pin")
	inserted := 0
	for i := 0; inserted < nodeCacheShardMaxEntries; i++ {
		key := fmt.Sprintf("k%d", i)
		if c.shardFor(key) != shard {
			continue
		}
		e, claimed := c.claim(key)
		if !claimed {
			t.Fatalf("fresh key %q not claimed", key)
		}
		e.complete(classOut{}, nil)
		inserted++
	}
	before := c.Len()
	rejects := 0
	for i := 0; rejects < 3; i++ {
		key := fmt.Sprintf("overflow%d", i)
		if c.shardFor(key) != shard {
			continue
		}
		if e, claimed := c.claim(key); claimed || e != nil {
			t.Fatalf("full shard accepted key %q", key)
		}
		rejects++
	}
	if c.Len() != before {
		t.Errorf("full shard grew: %d -> %d", before, c.Len())
	}
	st := c.Stats()
	if st.Full < 3 {
		t.Errorf("Full counter = %d, want >= 3", st.Full)
	}
	// Existing entries still hit.
	if _, ok := c.lookup("k0"); c.shardFor("k0") == shard && !ok {
		t.Error("bounded shard lost an existing entry")
	}
}

// TestNodeCacheSingleFlight races many callers on one key: exactly one
// must claim, everyone else must wait and observe the claimant's record.
// Run under -race this also exercises the done-channel publication edge.
func TestNodeCacheSingleFlight(t *testing.T) {
	c := NewNodeCache()
	const callers = 16
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		claims  int
		results []float64 // guarded by mu
	)
	want := classOut{sum: NodeSummary{ES: 0.125}}
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			var co classOut
			if e, ok := c.lookup("contested"); ok {
				co, _ = e.wait()
			} else if e, claimed := c.claim("contested"); claimed {
				mu.Lock()
				claims++
				mu.Unlock()
				e.complete(want, nil)
				co = want
			} else if e != nil {
				co, _ = e.wait()
			} else {
				t.Error("claim returned full on an empty cache")
				return
			}
			mu.Lock()
			results = append(results, co.sum.ES)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	if claims != 1 {
		t.Errorf("%d callers claimed the key, want exactly 1", claims)
	}
	if len(results) != callers {
		t.Fatalf("%d results for %d callers", len(results), callers)
	}
	for _, es := range results {
		if es != want.sum.ES {
			t.Errorf("caller observed ES=%v, want %v", es, want.sum.ES)
		}
	}
}

// TestNodeCacheConcurrentRuns races two whole fleet Runs sharing one cache
// (the sweep shape) and checks both match the uncached result — under
// -race this exercises the production lookup/claim/wait paths end to end.
func TestNodeCacheConcurrentRuns(t *testing.T) {
	cache := NewNodeCache()
	type out struct {
		res *Result
		err error
	}
	outs := make(chan out, 2)
	for i := 0; i < 2; i++ {
		go func() {
			res, err := Run(cachedFleetConfig(cache), quickOpts())
			outs <- out{res, err}
		}()
	}
	baseline, err := Run(cachedFleetConfig(nil), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		o := <-outs
		if o.err != nil {
			t.Fatal(o.err)
		}
		if !reflect.DeepEqual(deterministicView(baseline), deterministicView(o.res)) {
			t.Error("concurrent cached run diverged from uncached baseline")
		}
	}
}

// TestNodeClassesDigestGrouping is the regression test for the classing
// rewrite: many templates sharing one name signature but differing in load
// — the shape that made the old within-bucket reflect.DeepEqual grouping
// quadratic — must stay distinct classes, while true duplicates group, in
// one linear digest pass.
func TestNodeClassesDigestGrouping(t *testing.T) {
	const distinct = 200
	placement := make([][]sim.AppConfig, 0, 2*distinct)
	for i := 0; i < distinct; i++ {
		placement = append(placement, []sim.AppConfig{lcAt("xapian", float64(i+1)/float64(distinct+1))})
	}
	// Second copy of every template: must merge with the first.
	for i := 0; i < distinct; i++ {
		placement = append(placement, []sim.AppConfig{lcAt("xapian", float64(i+1)/float64(distinct+1))})
	}
	cfg := Config{
		Placement:           placement,
		DedupIdenticalNodes: true,
		Seed:                3,
		NodeSeed:            func(int) int64 { return 3 },
	}
	classes := nodeClasses(&cfg)
	if len(classes) != distinct {
		t.Fatalf("grouped %d nodes into %d classes, want %d", len(placement), len(classes), distinct)
	}
	for ci, c := range classes {
		if len(c.members) != 2 {
			t.Errorf("class %d has %d members, want 2", ci, len(c.members))
		}
		if c.members[0] != ci || c.members[1] != ci+distinct {
			t.Errorf("class %d members = %v, want [%d %d]", ci, c.members, ci, ci+distinct)
		}
	}
}

// TestCanonicalOrderIsOrderInsensitive pins the placement canonicaliser:
// permutations of one node's contents canonicalise identically, distinct
// contents do not, and already-canonical input is returned unchanged.
func TestCanonicalOrderIsOrderInsensitive(t *testing.T) {
	a := []sim.AppConfig{lcAt("xapian", 0.5), beApp("stream"), lcAt("moses", 0.2)}
	b := []sim.AppConfig{a[2], a[0], a[1]}
	ca, cb := CanonicalOrder(a), CanonicalOrder(b)
	ka, oka := templateKey(ca)
	kb, okb := templateKey(cb)
	if !oka || !okb {
		t.Fatal("catalog templates must be key-serialisable")
	}
	if string(ka) != string(kb) {
		t.Error("permuted node contents canonicalised differently")
	}
	if kc, _ := templateKey(CanonicalOrder([]sim.AppConfig{lcAt("xapian", 0.7)})); string(kc) == string(ka) {
		t.Error("distinct contents share a canonical key")
	}
	again := CanonicalOrder(ca)
	if &again[0] != &ca[0] {
		t.Error("already-canonical input was copied")
	}
}

// TestTemplateSeedCRN pins the common-random-numbers seed policy: equal
// contents (after canonicalisation) get equal seeds, different contents or
// different base seeds get different ones.
func TestTemplateSeedCRN(t *testing.T) {
	a := CanonicalOrder([]sim.AppConfig{lcAt("xapian", 0.5), beApp("stream")})
	b := CanonicalOrder([]sim.AppConfig{beApp("stream"), lcAt("xapian", 0.5)})
	if TemplateSeed(42, a) != TemplateSeed(42, b) {
		t.Error("equal canonical contents got different seeds")
	}
	if TemplateSeed(42, a) == TemplateSeed(43, a) {
		t.Error("base seed does not perturb template seeds")
	}
	c := []sim.AppConfig{lcAt("xapian", 0.7), beApp("stream")}
	if TemplateSeed(42, a) == TemplateSeed(42, c) {
		t.Error("distinct contents got the same seed")
	}
}
