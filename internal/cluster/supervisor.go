package cluster

// The fleet supervisor turns a resolved faults.FleetPlan into a phase
// schedule the chaos engine (chaos.go) can simulate: it walks the run's
// epochs, applies every crash, restart and degrade the plan dictates, and
// — under Config.ReplaceEvicted — evicts a crashed node's applications and
// re-places them onto surviving nodes through the same interference scorer
// the Scored placement uses. The walk is pure sequential float/int math
// over the plan and the initial placement, so the schedule (and everything
// simulated from it) is a deterministic function of the configuration.
//
// Re-placement is bounded on three axes, mirroring what a production
// control plane does to avoid thrashing a degraded fleet:
//
//   - churn bound: at most replaceChurnPerEpoch orphans move per epoch;
//     the rest simply wait for the next epoch.
//   - capped retries with exponential backoff: an orphan no node will
//     accept retries after 1, 2, 4, 8 epochs (capped), and after
//     maxReplaceAttempts failed attempts it is abandoned for the rest of
//     the run (it keeps contributing dead-window samples).
//   - utilisation cap: a candidate node already loaded past
//     replaceUtilCap estimated demand per core refuses the orphan —
//     re-placement must not turn one dead node into three drowning ones.

import (
	"ahq/internal/faults"
	"ahq/internal/machine"
	"ahq/internal/sim"
)

// Supervisor re-placement bounds (DESIGN.md §12).
const (
	// maxReplaceAttempts is the number of failed placement attempts after
	// which an orphan is abandoned.
	maxReplaceAttempts = 4
	// replaceBackoffCapEpochs caps the exponential retry backoff.
	replaceBackoffCapEpochs = 8
	// replaceChurnPerEpoch bounds successful re-placements per epoch
	// across the whole fleet.
	replaceChurnPerEpoch = 16
	// replaceUtilCap is the estimated-demand-per-core level above which a
	// candidate node refuses an orphan.
	replaceUtilCap = 2.0
)

// orphan is one evicted application awaiting re-placement.
type orphan struct {
	app        sim.AppConfig
	home       int // node it was evicted from (absorbs its dead accounting)
	evictEpoch int
	attempts   int
	nextTry    int
}

// deadApp is one application that is not running anywhere during a phase:
// resident on a crashed node (no-replace), or evicted and not yet (or
// never) re-placed. Its dead windows are attributed to node.
type deadApp struct {
	app  sim.AppConfig
	node int
}

// fleetPhase is one maximal epoch range [start, end) over which the
// fleet's configuration is constant: no crash, restart, degrade flip or
// re-placement happens strictly inside it. assign/down/degraded are
// per-node snapshots valid for the whole range; dead lists the
// applications running nowhere during it.
type fleetPhase struct {
	start, end int
	assign     [][]sim.AppConfig
	down       []bool
	degraded   []bool
	dead       []deadApp
}

// fleetSchedule is the supervisor's output: the phase list plus the
// deterministic incident and recovery counters the fleet result reports.
type fleetSchedule struct {
	phases []fleetPhase
	// evictions counts applications evicted from crashing nodes;
	// replacements counts successful re-placements; abandoned counts
	// orphans given up on after maxReplaceAttempts.
	evictions, replacements, abandoned int
	// recoverySum accumulates (placement epoch - eviction epoch) over
	// every successful re-placement.
	recoverySum int
	// evictionsByNode and downEpochsByNode split the counters per node;
	// crashed marks nodes that were down at any epoch.
	evictionsByNode  []int
	downEpochsByNode []int
	crashed          []bool
}

// addAppLoad accumulates one application into a node's scoring state.
func addAppLoad(st *nodeLoad, app sim.AppConfig) {
	d, g := EstimateDemand(app), bandwidthAppetite(app)
	st.demand += d
	st.count++
	if app.LC != nil {
		st.lcDemand += d
		st.lcGBps += g
	} else {
		st.beGBps += g
	}
}

// supervise walks the run's epochs under the resolved plan and returns the
// phase schedule. The plan must be resolved; totalEpochs covers warm-up
// plus the measured horizon (the supervisor is warm-up-agnostic — the
// chaos engine weighs phases by their measured overlap).
func supervise(plan *faults.FleetPlan, placement [][]sim.AppConfig, spec machine.Spec, replace bool, totalEpochs int) *fleetSchedule {
	n := len(placement)
	cur := append([][]sim.AppConfig(nil), placement...)
	load := make([]nodeLoad, n)
	for i, apps := range placement {
		for _, a := range apps {
			addAppLoad(&load[i], a)
		}
	}
	down := make([]bool, n)
	degraded := make([]bool, n)
	var pending []orphan
	var abandoned []deadApp
	sched := &fleetSchedule{
		evictionsByNode:  make([]int, n),
		downEpochsByNode: make([]int, n),
		crashed:          make([]bool, n),
	}
	degSpec := faults.DegradedSpec(spec)

	phaseStart := 0
	snapshot := func(end int) {
		if end <= phaseStart {
			return
		}
		ph := fleetPhase{
			start:    phaseStart,
			end:      end,
			assign:   append([][]sim.AppConfig(nil), cur...),
			down:     append([]bool(nil), down...),
			degraded: append([]bool(nil), degraded...),
		}
		if replace {
			for _, o := range pending {
				ph.dead = append(ph.dead, deadApp{o.app, o.home})
			}
			ph.dead = append(ph.dead, abandoned...)
		} else {
			for i := range cur {
				if !down[i] {
					continue
				}
				for _, a := range cur[i] {
					ph.dead = append(ph.dead, deadApp{a, i})
				}
			}
		}
		sched.phases = append(sched.phases, ph)
		phaseStart = end
	}

	for e := 0; e < totalEpochs; e++ {
		// cut closes the running phase at e with the pre-transition state;
		// every mutation below calls it first, and the guard makes the
		// first caller win, so one epoch's transitions share one boundary.
		cutDone := false
		cut := func() {
			if !cutDone {
				snapshot(e)
				cutDone = true
			}
		}

		// Crash, restart and degrade flips dictated by the plan.
		for i := 0; i < n; i++ {
			if nd := plan.DownAt(i, e); nd != down[i] {
				cut()
				if nd {
					sched.crashed[i] = true
					if replace && len(cur[i]) > 0 {
						for _, a := range cur[i] {
							pending = append(pending, orphan{app: a, home: i, evictEpoch: e, nextTry: e + 1})
						}
						sched.evictions += len(cur[i])
						sched.evictionsByNode[i] += len(cur[i])
						cur[i] = nil
						load[i] = nodeLoad{}
					}
					// No-replace: the applications stay assigned (and
					// dead) and resume if the node restarts.
				}
				down[i] = nd
			}
			if dg := plan.DegradedAt(i, e); dg != degraded[i] {
				cut()
				degraded[i] = dg
			}
			if down[i] {
				sched.downEpochsByNode[i]++
			}
		}

		// Re-placement attempts, in eviction order, within this epoch's
		// churn budget. A successful placement mutates the assignment (and
		// cuts the phase); a refused attempt only backs the orphan off.
		if replace && len(pending) > 0 {
			budget := replaceChurnPerEpoch
			kept := make([]orphan, 0, len(pending))
			for idx, o := range pending {
				if o.nextTry > e {
					kept = append(kept, o)
					continue
				}
				if budget == 0 {
					// Out of churn: everything else waits untouched.
					kept = append(kept, pending[idx:]...)
					break
				}
				d, g := EstimateDemand(o.app), bandwidthAppetite(o.app)
				isLC := o.app.LC != nil
				best, bestScore := -1, 0.0
				for nd := 0; nd < n; nd++ {
					if down[nd] {
						continue
					}
					sp := spec
					if degraded[nd] {
						sp = degSpec
					}
					cores, mem := float64(sp.Cores), sp.MemBWGBps
					if (load[nd].demand+d)/cores > replaceUtilCap {
						continue
					}
					s := placementScore(&load[nd], d, g, isLC, cores, mem)
					if best < 0 || s < bestScore {
						best, bestScore = nd, s
					}
				}
				if best < 0 {
					o.attempts++
					if o.attempts >= maxReplaceAttempts {
						sched.abandoned++
						abandoned = append(abandoned, deadApp{o.app, o.home})
						continue
					}
					backoff := 1 << (o.attempts - 1)
					if backoff > replaceBackoffCapEpochs {
						backoff = replaceBackoffCapEpochs
					}
					o.nextTry = e + backoff
					kept = append(kept, o)
					continue
				}
				cut()
				// Copy-on-write: earlier phases hold references to the
				// node's previous slice.
				cur[best] = append(append([]sim.AppConfig(nil), cur[best]...), o.app)
				addAppLoad(&load[best], o.app)
				sched.replacements++
				sched.recoverySum += e - o.evictEpoch
				budget--
			}
			pending = kept
		}
	}
	snapshot(totalEpochs)
	return sched
}
