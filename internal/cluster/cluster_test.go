package cluster

import (
	"math"
	"testing"

	"ahq/internal/core"
	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sched/arq"
	"ahq/internal/sched/static"
	"ahq/internal/sim"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

func lcAt(name string, load float64) sim.AppConfig {
	app := workload.MustLC(name)
	return sim.AppConfig{LC: &app, Load: trace.Constant(load)}
}

func beApp(name string) sim.AppConfig {
	app := workload.MustBE(name)
	return sim.AppConfig{BE: &app}
}

func fleetApps() []sim.AppConfig {
	return []sim.AppConfig{
		lcAt("xapian", 0.5),
		lcAt("moses", 0.2),
		lcAt("img-dnn", 0.2),
		lcAt("silo", 0.2),
		beApp("fluidanimate"),
		beApp("stream"),
	}
}

func quickOpts() core.Options {
	return core.Options{EpochMs: 500, WarmupMs: 2_000, DurationMs: 5_000}
}

func TestEstimateDemand(t *testing.T) {
	x := lcAt("xapian", 0.5)
	// 0.5 * 3400 QPS * 1 ms = 1.7 cores.
	if d := EstimateDemand(x); math.Abs(d-1.7) > 0.05 {
		t.Errorf("xapian demand = %g, want ~1.7", d)
	}
	if d := EstimateDemand(beApp("stream")); math.Abs(d-3) > 1e-9 {
		t.Errorf("stream demand = %g, want 3 (10 threads x elasticity)", d)
	}
	if d := EstimateDemand(sim.AppConfig{}); d != 0 {
		t.Errorf("empty demand = %g", d)
	}
}

func TestPlacementsCoverAllApps(t *testing.T) {
	apps := fleetApps()
	for label, place := range map[string]func() ([][]sim.AppConfig, error){
		"round-robin": func() ([][]sim.AppConfig, error) { return RoundRobin(apps, 2) },
		"pack":        func() ([][]sim.AppConfig, error) { return Pack(apps, 2, 8) },
		"balanced":    func() ([][]sim.AppConfig, error) { return Balanced(apps, 2) },
	} {
		got, err := place()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		total := 0
		for _, node := range got {
			total += len(node)
		}
		if total != len(apps) {
			t.Errorf("%s placed %d of %d apps", label, total, len(apps))
		}
	}
	if _, err := RoundRobin(apps, 0); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestBalancedBalances(t *testing.T) {
	apps := fleetApps()
	placement, err := Balanced(apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	var loads [2]float64
	for n, node := range placement {
		for _, a := range node {
			loads[n] += EstimateDemand(a)
		}
	}
	// LPT keeps the imbalance below the largest single item.
	if diff := math.Abs(loads[0] - loads[1]); diff > 10 {
		t.Errorf("balanced placement imbalance = %g (%v)", diff, loads)
	}
}

func TestClusterRunAggregates(t *testing.T) {
	placement, err := Balanced(fleetApps(), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Spec:        machine.DefaultSpec(),
		Seed:        1,
		NewStrategy: func(int) sched.Strategy { return arq.Default() },
		Placement:   placement,
	}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Summaries) != 2 {
		t.Fatalf("got %d node summaries", len(res.Summaries))
	}
	if len(res.Nodes) != 0 {
		t.Fatalf("full results retained without KeepResults: %d", len(res.Nodes))
	}
	for i, s := range res.Summaries {
		if s.Node != i {
			t.Errorf("summary %d is for node %d; merge order broken", i, s.Node)
		}
		if s.LCApps+s.BEApps != len(placement[i]) {
			t.Errorf("node %d summary counts %d+%d apps, placed %d",
				i, s.LCApps, s.BEApps, len(placement[i]))
		}
		if s.Epochs <= 0 {
			t.Errorf("node %d measured no epochs", i)
		}
	}
	for _, v := range []float64{res.GlobalELC, res.GlobalEBE, res.GlobalES} {
		if math.IsNaN(v) || v < 0 || v > 1 {
			t.Errorf("global entropy out of range: %g", v)
		}
	}
	if !res.YieldDefined {
		t.Error("fleet with LC apps must have a defined yield")
	}
	if res.GlobalYield < 0 || res.GlobalYield > 1 {
		t.Errorf("global yield = %g", res.GlobalYield)
	}
	if res.MeasuredEpochs <= 0 || res.Stats.NodesRun != 2 {
		t.Errorf("fleet counters: epochs %d, nodes run %d", res.MeasuredEpochs, res.Stats.NodesRun)
	}
	if v := res.ViolationRate(); v < 0 || v > 1 {
		t.Errorf("violation rate = %g", v)
	}
}

// TestKeepResultsMatchesSummaries pins that the streaming summaries carry
// the same values callers previously read off the full per-node results.
func TestKeepResultsMatchesSummaries(t *testing.T) {
	placement, err := Balanced(fleetApps(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Spec:        machine.DefaultSpec(),
		Seed:        1,
		NewStrategy: func(int) sched.Strategy { return arq.Default() },
		Placement:   placement,
		KeepResults: true,
	}
	res, err := Run(cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 {
		t.Fatalf("KeepResults retained %d node results", len(res.Nodes))
	}
	for i, nr := range res.Nodes {
		if nr.Node != i {
			t.Errorf("node result %d is for node %d", i, nr.Node)
		}
		s := res.Summaries[i]
		if s.ES != nr.Result.RunES || s.Yield != nr.Result.Yield ||
			s.ViolationEpochs != nr.Result.TotalViolationEpochs || s.Epochs != nr.Result.Epochs {
			t.Errorf("node %d summary diverges from its full result: %+v", i, s)
		}
	}
}

// TestYieldUndefinedOnBEOnlyFleet pins the Yield-error bugfix: a fleet
// without LC applications reports the yield as undefined instead of
// silently leaving a zero that reads as "every app violated".
func TestYieldUndefinedOnBEOnlyFleet(t *testing.T) {
	res, err := Run(Config{
		Spec:        machine.DefaultSpec(),
		Seed:        3,
		NewStrategy: func(int) sched.Strategy { return static.Unmanaged{} },
		Placement:   [][]sim.AppConfig{{beApp("stream")}, {beApp("fluidanimate")}},
	}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.YieldDefined {
		t.Error("BE-only fleet reported a defined yield")
	}
	if res.GlobalYield != 0 {
		t.Errorf("undefined yield must stay 0, got %g", res.GlobalYield)
	}
	if math.IsNaN(res.GlobalEBE) || res.GlobalEBE < 0 || res.GlobalEBE > 1 {
		t.Errorf("BE-only fleet E_BE = %g, want in [0,1]", res.GlobalEBE)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := Run(Config{}, quickOpts()); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{
		Placement:   [][]sim.AppConfig{{}},
		NewStrategy: func(int) sched.Strategy { return static.Unmanaged{} },
		Spec:        machine.DefaultSpec(),
	}, quickOpts()); err == nil {
		t.Error("empty node accepted")
	}
	if _, err := Run(Config{
		Placement: [][]sim.AppConfig{{lcAt("xapian", 0.2)}},
		Spec:      machine.DefaultSpec(),
	}, quickOpts()); err == nil {
		t.Error("missing strategy factory accepted")
	}
}

// TestPlacementMattersForGlobalES is the extension's point: the same
// applications and scheduler produce different datacenter entropy under
// different placements, and E_S ranks them. Packing everything onto one
// node while the other idles must not beat a balanced spread.
func TestPlacementMattersForGlobalES(t *testing.T) {
	apps := fleetApps()
	packed, err := Pack(apps, 2, 1e9) // everything on node 0... but node 1 empty is invalid
	if err != nil {
		t.Fatal(err)
	}
	// Keep node 1 non-empty: move the last app over.
	if len(packed[1]) == 0 {
		last := packed[0][len(packed[0])-1]
		packed[0] = packed[0][:len(packed[0])-1]
		packed[1] = append(packed[1], last)
	}
	balanced, err := Balanced(apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p [][]sim.AppConfig) float64 {
		res, err := Run(Config{
			Spec:        machine.DefaultSpec(),
			Seed:        5,
			NewStrategy: func(int) sched.Strategy { return arq.Default() },
			Placement:   p,
		}, quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		return res.GlobalES
	}
	esPacked, esBalanced := run(packed), run(balanced)
	if esBalanced > esPacked+0.02 {
		t.Errorf("balanced placement E_S %.3f worse than packed %.3f", esBalanced, esPacked)
	}
}
