package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"ahq/internal/sim"
)

// BEElasticity discounts best-effort thread counts when estimating
// placement demand: BE work is compressible (it absorbs leftover capacity
// rather than demanding it), so a 10-thread STREAM should not outweigh the
// hard arrival-driven demand of the latency-critical services.
const BEElasticity = 0.3

// EstimateDemand approximates an application's steady-state core demand:
// offered work for LC applications (arrival rate times mean service time at
// its initial load), elasticity-discounted thread count for BE
// applications. Placement heuristics rank by it.
func EstimateDemand(app sim.AppConfig) float64 {
	if app.LC != nil {
		load := 0.0
		if app.Load != nil {
			load = app.Load.At(0)
		}
		return load * app.LC.MaxLoadQPS / 1000 * app.LC.ServiceMeanMs
	}
	if app.BE != nil {
		return BEElasticity * float64(app.BE.Threads)
	}
	return 0
}

// Random scatters applications over nodes from a seeded stream — the
// placement-oblivious baseline every scoring strategy is measured against.
// The first len(nodes) draws of a shuffled application order seed one
// application per node (no node may run empty), the rest land uniformly at
// random. Deterministic for a fixed seed.
func Random(apps []sim.AppConfig, nodes int, seed int64) ([][]sim.AppConfig, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	if len(apps) < nodes {
		return nil, fmt.Errorf("cluster: %d applications cannot cover %d nodes", len(apps), nodes)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(apps))
	out := make([][]sim.AppConfig, nodes)
	for n := 0; n < nodes; n++ {
		out[n] = append(out[n], apps[perm[n]])
	}
	for _, i := range perm[nodes:] {
		n := rng.Intn(nodes)
		out[n] = append(out[n], apps[i])
	}
	return out, nil
}

// RoundRobin deals applications across nodes in order.
func RoundRobin(apps []sim.AppConfig, nodes int) ([][]sim.AppConfig, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	out := make([][]sim.AppConfig, nodes)
	for i, a := range apps {
		out[i%nodes] = append(out[i%nodes], a)
	}
	return out, nil
}

// Pack fills nodes sequentially: the first node receives applications
// until its estimated demand reaches budget cores, then the next — the
// consolidation-maximising placement.
func Pack(apps []sim.AppConfig, nodes int, budget float64) ([][]sim.AppConfig, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	out := make([][]sim.AppConfig, nodes)
	node := 0
	used := 0.0
	for _, a := range apps {
		d := EstimateDemand(a)
		if used+d > budget && len(out[node]) > 0 && node < nodes-1 {
			node++
			used = 0
		}
		out[node] = append(out[node], a)
		used += d
	}
	// A node cannot run with nothing on it; when the budget packs
	// everything early, peel trailing applications off the fullest nodes.
	for n := nodes - 1; n >= 1; n-- {
		if len(out[n]) > 0 {
			continue
		}
		donor := 0
		for i := 1; i < n; i++ {
			if len(out[i]) > len(out[donor]) {
				donor = i
			}
		}
		if len(out[donor]) <= 1 {
			return nil, fmt.Errorf("cluster: %d applications cannot cover %d nodes", len(apps), nodes)
		}
		last := out[donor][len(out[donor])-1]
		out[donor] = out[donor][:len(out[donor])-1]
		out[n] = append(out[n], last)
	}
	return out, nil
}

// Balanced greedily assigns the largest applications first, each to the
// currently least-loaded node — longest-processing-time bin packing.
func Balanced(apps []sim.AppConfig, nodes int) ([][]sim.AppConfig, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	idx := make([]int, len(apps))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return EstimateDemand(apps[idx[a]]) > EstimateDemand(apps[idx[b]])
	})
	out := make([][]sim.AppConfig, nodes)
	load := make([]float64, nodes)
	for _, i := range idx {
		best := 0
		for n := 1; n < nodes; n++ {
			if load[n] < load[best] {
				best = n
			}
		}
		out[best] = append(out[best], apps[i])
		load[best] += EstimateDemand(apps[i])
	}
	return out, nil
}
