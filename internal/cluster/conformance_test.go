package cluster

// The placement conformance suite: every strategy — random, round-robin,
// pack, balanced, scored — must place every application exactly once,
// leave no node empty (given at least as many applications as nodes),
// reject a non-positive node count, and be deterministic for a fixed
// input. New strategies join by adding one entry to placementStrategies.

import (
	"fmt"
	"reflect"
	"testing"

	"ahq/internal/machine"
	"ahq/internal/sim"
)

// placementStrategies enumerates every placement under its experiment
// label, normalised to the (apps, nodes) signature.
func placementStrategies() []struct {
	name  string
	place func(apps []sim.AppConfig, nodes int) ([][]sim.AppConfig, error)
} {
	spec := machine.DefaultSpec()
	return []struct {
		name  string
		place func(apps []sim.AppConfig, nodes int) ([][]sim.AppConfig, error)
	}{
		{"random", func(a []sim.AppConfig, n int) ([][]sim.AppConfig, error) { return Random(a, n, 11) }},
		{"round-robin", RoundRobin},
		{"pack", func(a []sim.AppConfig, n int) ([][]sim.AppConfig, error) { return Pack(a, n, 8) }},
		{"balanced", Balanced},
		{"scored", func(a []sim.AppConfig, n int) ([][]sim.AppConfig, error) { return Scored(a, n, spec) }},
	}
}

// conformanceApps builds a population large enough to exercise multi-app
// nodes: count apps cycling through LC services at varied loads plus BE
// co-runners.
func conformanceApps(count int) []sim.AppConfig {
	lcNames := []string{"xapian", "moses", "img-dnn", "silo", "masstree", "sphinx"}
	beNames := []string{"stream", "fluidanimate", "streamcluster"}
	loads := []float64{0.2, 0.35, 0.5, 0.7}
	var apps []sim.AppConfig
	for i := 0; len(apps) < count; i++ {
		if i%3 == 2 {
			apps = append(apps, beApp(beNames[i%len(beNames)]))
		} else {
			apps = append(apps, lcAt(lcNames[i%len(lcNames)], loads[i%len(loads)]))
		}
	}
	return apps
}

// appKey identifies an AppConfig well enough to count multiset coverage.
func appKey(a sim.AppConfig) string {
	if a.LC != nil {
		load := 0.0
		if a.Load != nil {
			load = a.Load.At(0)
		}
		return fmt.Sprintf("lc:%s@%.3f", a.LC.Name, load)
	}
	if a.BE != nil {
		return "be:" + a.BE.Name
	}
	return "empty"
}

func countApps(placement [][]sim.AppConfig) map[string]int {
	got := map[string]int{}
	for _, node := range placement {
		for _, a := range node {
			got[appKey(a)]++
		}
	}
	return got
}

func TestPlacementConformance(t *testing.T) {
	for _, nodes := range []int{1, 2, 5, 16} {
		apps := conformanceApps(nodes * 3)
		want := countApps([][]sim.AppConfig{apps})
		for _, s := range placementStrategies() {
			t.Run(fmt.Sprintf("%s/%dnodes", s.name, nodes), func(t *testing.T) {
				got, err := s.place(apps, nodes)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != nodes {
					t.Fatalf("returned %d nodes, want %d", len(got), nodes)
				}
				for n, node := range got {
					if len(node) == 0 {
						t.Errorf("node %d left empty with %d apps over %d nodes", n, len(apps), nodes)
					}
				}
				if counts := countApps(got); !reflect.DeepEqual(counts, want) {
					t.Errorf("placement does not cover the population exactly once:\n got %v\nwant %v", counts, want)
				}
			})
		}
	}
}

func TestPlacementRejectsNonPositiveNodes(t *testing.T) {
	apps := conformanceApps(6)
	for _, s := range placementStrategies() {
		for _, nodes := range []int{0, -1} {
			if _, err := s.place(apps, nodes); err == nil {
				t.Errorf("%s accepted %d nodes", s.name, nodes)
			}
		}
	}
}

func TestPlacementDeterministic(t *testing.T) {
	apps := conformanceApps(24)
	for _, s := range placementStrategies() {
		a, errA := s.place(apps, 6)
		b, errB := s.place(apps, 6)
		if errA != nil || errB != nil {
			t.Fatalf("%s: %v / %v", s.name, errA, errB)
		}
		if !reflect.DeepEqual(placementShape(a), placementShape(b)) {
			t.Errorf("%s placement differs across identical invocations", s.name)
		}
	}
}

// placementShape renders a placement as node → app keys, comparable
// across invocations without comparing pointers.
func placementShape(p [][]sim.AppConfig) [][]string {
	out := make([][]string, len(p))
	for n, node := range p {
		for _, a := range node {
			out[n] = append(out[n], appKey(a))
		}
	}
	return out
}

// TestScoredSpreadsMixes sanity-checks the scoring objective: with two
// nodes, bandwidth-hungry BE applications must not all pile onto the node
// holding the LC applications when an emptier one is available.
func TestScoredSpreadsMixes(t *testing.T) {
	apps := []sim.AppConfig{
		lcAt("xapian", 0.6),
		lcAt("moses", 0.4),
		beApp("stream"),
		beApp("stream"),
	}
	placement, err := Scored(apps, 2, machine.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	for n, node := range placement {
		lc, be := 0, 0
		for _, a := range node {
			if a.LC != nil {
				lc++
			} else {
				be++
			}
		}
		if be == 2 && lc == 2 {
			t.Errorf("node %d took every app; scoring failed to spread", n)
		}
	}
}

func TestScoredRejectsUncoverableFleet(t *testing.T) {
	if _, err := Scored(conformanceApps(3), 5, machine.DefaultSpec()); err == nil {
		t.Error("scored accepted 3 apps over 5 nodes")
	}
	if _, err := Random(conformanceApps(3), 5, 1); err == nil {
		t.Error("random accepted 3 apps over 5 nodes")
	}
}
