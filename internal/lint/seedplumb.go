package lint

import (
	"go/ast"
)

// SeedPlumb requires RNG seeds to be named: the argument of
// rand.NewSource must flow from a constant with a declaration site, a
// config/struct field, or a function parameter — never an inline
// literal. An anonymous 0x5EED buried in a function body cannot be
// found, documented, or varied from configuration, and duplicating one
// silently correlates streams that were meant to be independent.
var SeedPlumb = &Analyzer{
	Name: "seedplumb",
	Doc: "require rand.NewSource seeds to come from a named constant, " +
		"field, or parameter instead of an inline literal",
	Run: runSeedPlumb,
}

func runSeedPlumb(pass *Pass) {
	walk(pass.Pkg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Name() != "NewSource" {
			return true
		}
		if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
			return true
		}
		if len(call.Args) >= 1 && isInlineLiteral(pass, call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(),
				"inline literal seed; plumb it through a named constant, config field, or parameter")
		}
		return true
	})
}

// isInlineLiteral reports whether e is built purely from literals —
// 0x5EED, -1, 40*1000, int64(7) — with no named value anywhere inside.
// A named constant is an *ast.Ident and therefore not inline.
func isInlineLiteral(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return isInlineLiteral(pass, e.X)
	case *ast.UnaryExpr:
		return isInlineLiteral(pass, e.X)
	case *ast.BinaryExpr:
		return isInlineLiteral(pass, e.X) && isInlineLiteral(pass, e.Y)
	case *ast.CallExpr:
		// Conversions like int64(123) stay literal; real function calls
		// (seedFor("x")) produce a value with provenance and do not.
		if len(e.Args) == 1 {
			if tv, ok := pass.Pkg.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
				return isInlineLiteral(pass, e.Args[0])
			}
		}
	}
	return false
}
