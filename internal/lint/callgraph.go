package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the whole-program view the program analyzers run over:
// every function declared in the loaded packages, plus a static call graph
// between them. Edges come from two sources:
//
//   - Direct calls: plain function calls (f(), pkg.F()) and method calls
//     on concrete receivers (x.M() where x is a named type or a pointer to
//     one) resolve to the declared *types.Func.
//   - Interface dispatch: a method call through an interface declared in
//     this module (the repo's small interface vocabulary — sched.Strategy,
//     core.Engine, rdt.Host, trace.Load, ... ) fans out to the same-named
//     method of every module-declared concrete type whose method set
//     satisfies the interface. Interfaces declared outside the module
//     (error, io.Writer) are not resolved: their implementation sets are
//     open-ended and resolving them would drown the graph in noise.
//
// The graph is deliberately conservative in the other known ways too, all
// documented in DESIGN.md: function values passed around (the experiments
// pool's submitted closures, strategy factories) and calls of function-
// typed fields are not edges, and function literals are attributed to the
// function whose body lexically contains them (a closure's statements are
// analyzed as part of its enclosing declaration). For the invariants these
// analyzers guard that attribution is what we want — the allocation and
// nondeterminism behaviour of a closure bills to the function that built
// and ran it.

// A CallSite is one resolved outgoing call from a function body.
type CallSite struct {
	// Pos is the position of the call expression.
	Pos token.Pos
	// Callee is the invoked function or method. It may be declared
	// outside the program (standard library); Program.Node returns nil
	// for those.
	Callee *types.Func
	// Iface is true when the edge came from interface method-set
	// resolution rather than a direct call: Callee is one of possibly
	// many implementations the dynamic dispatch could reach.
	Iface bool
}

// A FuncNode is one declared function or method with its body.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists the resolved outgoing calls in body order (interface
	// dispatch expands one call expression into one CallSite per
	// implementation).
	Calls []CallSite
}

// Name returns the node's diagnostic-friendly name: "pkg.Func" for
// functions, "pkg.(Type).Method" / "pkg.(*Type).Method" for methods.
func (n *FuncNode) Name() string {
	if recv := n.Fn.Type().(*types.Signature).Recv(); recv != nil {
		return n.Fn.Pkg().Name() + ".(" + types.TypeString(recv.Type(), func(p *types.Package) string { return "" }) + ")." + n.Fn.Name()
	}
	return n.Fn.Pkg().Name() + "." + n.Fn.Name()
}

// A Program is the whole-module view: every loaded package, their declared
// functions, and the static call graph between them.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
	// Nodes lists every declared function with a body, in deterministic
	// (package, file, declaration) order.
	Nodes []*FuncNode

	funcs   map[string]*FuncNode
	filePkg map[string]*Package
}

// Node returns the graph node of a declared function, or nil when fn was
// declared outside the loaded packages (standard library) or has no body.
//
// The lookup is keyed by FullName rather than object identity: the loader
// type-checks each target package from source but resolves its imports
// from compiler export data, so the *types.Func for a function seen from
// its importers is a different object than the one from its own
// type-check. FullName ("pkg/path.Func", "(pkg/path.Type).Method") is
// stable across both views.
func (p *Program) Node(fn *types.Func) *FuncNode { return p.funcs[fn.FullName()] }

// PackageOf returns the loaded package that contains the given file, or
// nil.
func (p *Program) PackageOf(filename string) *Package { return p.filePkg[filename] }

// Callers returns the reverse adjacency of the call graph: for every
// declared function, the nodes that (may) call it. Callees without a node
// (standard library) are omitted.
func (p *Program) Callers() map[*FuncNode][]*FuncNode {
	rev := make(map[*FuncNode][]*FuncNode)
	for _, n := range p.Nodes {
		seen := make(map[*FuncNode]bool, len(n.Calls))
		for _, c := range n.Calls {
			callee := p.Node(c.Callee)
			if callee == nil || seen[callee] {
				continue
			}
			seen[callee] = true
			rev[callee] = append(rev[callee], n)
		}
	}
	return rev
}

// BuildProgram constructs the program view and its call graph over the
// loaded packages. All packages must share one FileSet (Load guarantees
// this).
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		funcs:   make(map[string]*FuncNode),
		filePkg: make(map[string]*Package),
		Pkgs:    pkgs,
	}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}

	// Pass 1: register every declared function/method with a body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			p.filePkg[pkg.Fset.Position(f.Pos()).Filename] = pkg
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				p.funcs[fn.FullName()] = node
				p.Nodes = append(p.Nodes, node)
			}
		}
	}

	resolver := newIfaceResolver(pkgs)

	// Pass 2: resolve every call expression in every body.
	for _, node := range p.Nodes {
		n := node
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			n.Calls = append(n.Calls, resolveCall(n.Pkg, call, resolver)...)
			return true
		})
	}
	return p
}

// resolveCall maps one call expression to its CallSites: one direct edge,
// or one edge per implementation for interface dispatch, or none for
// conversions, builtins, and dynamic calls of function values.
func resolveCall(pkg *Package, call *ast.CallExpr, r *ifaceResolver) []CallSite {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.TypesInfo.Uses[fun].(*types.Func); ok {
			return []CallSite{{Pos: call.Pos(), Callee: fn}}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				var out []CallSite
				for _, impl := range r.implementations(sel.Recv(), m) {
					out = append(out, CallSite{Pos: call.Pos(), Callee: impl, Iface: true})
				}
				return out
			}
			return []CallSite{{Pos: call.Pos(), Callee: m}}
		}
		// No selection: a qualified identifier (pkg.F).
		if fn, ok := pkg.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return []CallSite{{Pos: call.Pos(), Callee: fn}}
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ifaceResolver answers "which declared methods could this interface call
// dispatch to". It considers only interfaces declared in the loaded
// packages and only concrete named types declared in them, which is the
// closed world the module controls.
type ifaceResolver struct {
	// concrete lists every non-interface named type declared in the
	// program, in deterministic order.
	concrete []types.Type
	cache    map[ifaceKey][]*types.Func
}

type ifaceKey struct {
	iface  *types.Interface
	method string
}

func newIfaceResolver(pkgs []*Package) *ifaceResolver {
	r := &ifaceResolver{cache: make(map[ifaceKey][]*types.Func)}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			r.concrete = append(r.concrete, t)
		}
	}
	return r
}

// implementations returns the declared methods matching the interface
// method m on every program type satisfying the interface. Interfaces
// declared outside the program resolve to nothing (open world).
func (r *ifaceResolver) implementations(recv types.Type, m *types.Func) []*types.Func {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	if named, ok := recv.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg == nil || !moduleLocal(pkg.Path()) {
			return nil
		}
	} else {
		// Anonymous interface types: resolve only when they come from a
		// module source file, which we cannot cheaply prove — skip.
		return nil
	}
	key := ifaceKey{iface: iface, method: m.Name()}
	if out, ok := r.cache[key]; ok {
		return out
	}
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	for _, t := range r.concrete {
		if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
			continue
		}
		// m.Pkg() scopes the lookup so unexported interface methods match
		// only same-package implementations, as the language requires.
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	r.cache[key] = out
	return out
}

// moduleLocal reports whether an import path belongs to this module (or a
// fixture loaded from it) rather than the standard library.
func moduleLocal(path string) bool {
	return path == "ahq" || pathIn(path, "ahq")
}
