package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// DetFlow is the whole-program successor of the original per-package
// `determinism` analyzer. The old analyzer blocklisted nondeterminism
// roots — wall-clock reads, the ambient global math/rand functions,
// environment lookups — but only inside the deterministic packages
// themselves, so a root laundered through a helper package (a utility in
// internal/workload calling time.Now, reached from internal/sim) shipped
// undetected. DetFlow instead marks every function in the module that
// can reach such a root through the static call graph (callgraph.go,
// including interface dispatch over the module's interface vocabulary)
// and reports, inside the deterministic packages:
//
//   - direct root calls, exactly as before, and
//   - calls into tainted out-of-scope functions, with the propagation
//     chain in the message.
//
// A call to a tainted function that is itself in scope is not re-reported
// — that function carries its own finding at the point where the taint
// enters it, so each laundering path is reported exactly once, where it
// crosses into unchecked territory.
//
// The map-iteration output check also gains flow awareness: a map-range
// body may not call fmt print/Fprint functions directly (as before), nor
// any module function that transitively reaches one — iteration order
// would leak into output through the helper. Writer-method sinks
// (Write/WriteString/...) remain direct-only: writer methods are
// ubiquitous and almost always order-preserving buffers, so chasing them
// through the graph would drown the signal.
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc: "taint-propagate nondeterminism roots (time.Now, global math/rand, " +
		"os.Getenv, printing inside map iteration) through the call graph " +
		"into the deterministic packages",
	AppliesTo:  detFlowInScope,
	RunProgram: runDetFlow,
}

// detFlowInScope lists the packages whose behaviour feeds simulation
// output. The detflow fixture root is deliberately included — and its
// helper subpackage deliberately excluded — because laundering detection
// is defined by this boundary: the fixture packages lay out a scope edge
// the golden test can exercise. Fixture packages are never loaded by the
// production `ahq/...` / `./...` patterns (the go tool skips testdata).
func detFlowInScope(pkgPath string) bool {
	return pathIn(pkgPath,
		"ahq/internal/sim",
		"ahq/internal/core",
		"ahq/internal/entropy",
		"ahq/internal/sched",
		"ahq/internal/experiments",
		"ahq/internal/faults",
		"ahq/internal/cluster",
		"ahq/internal/pool",
		"ahq/cmd/ahqbench",
	) || pkgPath == "ahq/internal/lint/testdata/src/detflow"
}

// rootCall is one direct nondeterminism root found in a function body.
type rootCall struct {
	call *ast.CallExpr
	msg  string
}

// detFacts carries the per-function flow facts.
type detFacts struct {
	roots []rootCall
	// tainted is non-nil when the function can reach a root; it holds the
	// human-readable chain suffix from this function to the root, e.g.
	// "workload.wallClock → time.Now".
	tainted *taintInfo
	// prints is true when the function transitively calls a fmt print
	// function (fan-in for the map-range sink check).
	prints bool
}

type taintInfo struct {
	chain string
}

func runDetFlow(pass *ProgramPass) {
	prog := pass.Prog
	facts := make(map[*FuncNode]*detFacts, len(prog.Nodes))
	for _, n := range prog.Nodes {
		f := &detFacts{}
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if msg, root := forbiddenRoot(n.Pkg, call); root {
				f.roots = append(f.roots, rootCall{call: call, msg: msg})
			}
			if fn := pkgFunc(n.Pkg, call); fn != nil && fn.Pkg().Path() == "fmt" && printFuncs[fn.Name()] {
				f.prints = true
			}
			return true
		})
		facts[n] = f
	}

	// Propagate taint and print-reachability backward over the call graph
	// to a fixed point (the graph is tiny; iterate until stable, which
	// also handles cycles).
	callers := prog.Callers()
	var work []*FuncNode
	for _, n := range prog.Nodes {
		f := facts[n]
		if len(f.roots) > 0 {
			f.tainted = &taintInfo{chain: rootName(n.Pkg, f.roots[0].call)}
		}
		if f.tainted != nil || f.prints {
			work = append(work, n)
		}
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		nf := facts[n]
		for _, caller := range callers[n] {
			cf := facts[caller]
			changed := false
			if nf.tainted != nil && cf.tainted == nil && len(cf.roots) == 0 {
				cf.tainted = &taintInfo{chain: n.Name() + " → " + nf.tainted.chain}
				changed = true
			}
			if nf.prints && !cf.prints {
				cf.prints = true
				changed = true
			}
			if changed {
				work = append(work, caller)
			}
		}
	}

	// Report inside the deterministic packages. The driver re-filters by
	// AppliesTo; the analyzer needs the same boundary itself because the
	// "callee carries its own finding" logic depends on it.
	for _, n := range prog.Nodes {
		if !detFlowInScope(n.Pkg.PkgPath) {
			continue
		}
		f := facts[n]
		for _, r := range f.roots {
			pass.Reportf(r.call.Pos(), "%s", r.msg)
		}
		reportLaundering(pass, prog, n, facts)
		checkMapRangeSinks(pass, prog, n, facts)
	}
}

// reportLaundering flags calls from an in-scope function into tainted
// functions that no in-scope finding covers.
func reportLaundering(pass *ProgramPass, prog *Program, n *FuncNode, facts map[*FuncNode]*detFacts) {
	seen := make(map[*FuncNode]bool)
	for _, c := range n.Calls {
		callee := prog.Node(c.Callee)
		if callee == nil || seen[callee] {
			continue
		}
		cf := facts[callee]
		if cf == nil || cf.tainted == nil {
			continue
		}
		if detFlowInScope(callee.Pkg.PkgPath) {
			// The callee is checked itself; its own finding marks where
			// taint enters it.
			continue
		}
		seen[callee] = true
		via := ""
		if c.Iface {
			via = " (reached via interface dispatch)"
		}
		pass.Reportf(c.Pos,
			"call to %s reaches a nondeterminism source outside the checked packages (%s)%s; plumb the value in from configuration instead",
			callee.Name(), cf.tainted.chain, via)
	}
}

// printFuncs is the fmt print family whose output depends on call order.
var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// sinkMethods are writer-method names that serialise data; reached from
// inside a map-range they emit in nondeterministic order.
var sinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

// checkMapRangeSinks flags output produced inside map iteration: direct
// fmt print calls, direct writer-method calls, and calls to module
// functions that transitively print.
func checkMapRangeSinks(pass *ProgramPass, prog *Program, n *FuncNode, facts map[*FuncNode]*detFacts) {
	pkg := n.Pkg
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		rng, ok := x.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pkg.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(y ast.Node) bool {
			call, ok := y.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := pkgFunc(pkg, call); fn != nil && fn.Pkg().Path() == "fmt" && printFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"fmt.%s inside map iteration emits in nondeterministic order; collect keys and sort first", fn.Name())
				return true
			}
			// Writer methods: buf.WriteString(...) and friends.
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if m, ok := pkg.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
					if sig, ok := m.Type().(*types.Signature); ok && sig.Recv() != nil && sinkMethods[m.Name()] {
						pass.Reportf(call.Pos(),
							"%s inside map iteration writes in nondeterministic order; collect keys and sort first", m.Name())
						return true
					}
				}
			}
			// Module functions that transitively print.
			for _, c := range resolveNodeCalls(prog, n, call) {
				callee := prog.Node(c.Callee)
				if callee == nil {
					continue
				}
				if f := facts[callee]; f != nil && f.prints {
					pass.Reportf(call.Pos(),
						"%s prints (transitively) inside map iteration, emitting in nondeterministic order; collect keys and sort first",
						callee.Name())
					break
				}
			}
			return true
		})
		return false // ranges nested in ranges are revisited by the outer Inspect
	})
}

// resolveNodeCalls returns the node's recorded call sites at the position
// of the given call expression.
func resolveNodeCalls(prog *Program, n *FuncNode, call *ast.CallExpr) []CallSite {
	var out []CallSite
	for _, c := range n.Calls {
		if c.Pos == call.Pos() {
			out = append(out, c)
		}
	}
	return out
}

// randConstructors are the top-level math/rand functions that build an
// explicitly seeded generator; they are the approved pattern, everything
// else at rand package scope draws from the ambient global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// pkgFunc resolves a call to the package-level function it invokes, or
// nil for methods, locals, conversions, and builtins.
func pkgFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// forbiddenRoot classifies a call as a direct nondeterminism root,
// returning the diagnostic message to use when it sits in a deterministic
// package.
func forbiddenRoot(pkg *Package, call *ast.CallExpr) (string, bool) {
	fn := pkgFunc(pkg, call)
	if fn == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			return fmt.Sprintf("time.%s reads the wall clock; simulation time must come from the engine (NowMs)", fn.Name()), true
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			return fmt.Sprintf("rand.%s draws from the ambient global source; use a rand.New(rand.NewSource(seed)) stream plumbed from config", fn.Name()), true
		}
	case "os":
		if fn.Name() == "Getenv" || fn.Name() == "LookupEnv" {
			return fmt.Sprintf("os.%s makes behaviour depend on the environment; thread configuration through flags or Config fields", fn.Name()), true
		}
	}
	return "", false
}

// rootName renders the root of a taint chain ("time.Now").
func rootName(pkg *Package, call *ast.CallExpr) string {
	if fn := pkgFunc(pkg, call); fn != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return "a nondeterminism source"
}
