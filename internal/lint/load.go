package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists the packages matching the patterns (relative to dir), parses
// their non-test sources, and type-checks them against compiler export
// data produced by `go list -export`. This keeps the loader entirely
// offline and dependency-free: imports — including the standard library —
// are resolved from the build cache rather than from source.
//
// Test files are deliberately excluded: the invariants ahqlint enforces
// guard production simulation paths, and tests legitimately use literal
// seeds and wall-clock timing.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p listPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   t.ImportPath,
			Dir:       t.Dir,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}
