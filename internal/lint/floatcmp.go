package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp forbids == and != between floating-point operands in the
// numeric core. Epoch-level latencies, entropies, and IPC values are
// accumulated floats; exact equality on them is at best fragile and at
// worst load-order dependent. The one idiomatic exception is comparing
// against an exact zero sentinel (counters that are precisely 0.0 when
// nothing happened), which stays allowed.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "forbid ==/!= between floating-point expressions unless one side " +
		"is a constant zero sentinel",
	AppliesTo: func(pkgPath string) bool {
		return pathIn(pkgPath,
			"ahq/internal/entropy",
			"ahq/internal/metrics",
			"ahq/internal/sim",
		)
	},
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	walk(pass.Pkg, func(n ast.Node) bool {
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
			return true
		}
		if !isFloat(pass, cmp.X) || !isFloat(pass, cmp.Y) {
			return true
		}
		if isConstZero(pass, cmp.X) || isConstZero(pass, cmp.Y) {
			return true
		}
		pass.Reportf(cmp.Pos(),
			"%s between floating-point values; compare against an epsilon or restructure the check", cmp.Op)
		return true
	})
}

func isFloat(pass *Pass, e ast.Expr) bool {
	t := pass.Pkg.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstZero reports whether e is a compile-time constant equal to zero.
func isConstZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.Kind() != constant.Unknown && constant.Sign(tv.Value) == 0
}
