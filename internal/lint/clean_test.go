package lint_test

import (
	"testing"

	"ahq/internal/lint"
)

// TestModuleIsClean is the smoke test behind `make lint`: the full
// analyzer suite over the real module (fixtures under testdata/ are
// outside the ... pattern) must report nothing. Every historical
// violation was either remediated or carries a justified
// //ahqlint:allow annotation; a failure here means a new one crept in.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := lint.Load(".", "ahq/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern ahq/... should cover the module", len(pkgs))
	}
	for _, d := range lint.RunAnalyzers(pkgs, lint.All()) {
		t.Errorf("violation: %s", d)
	}
}
