package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LockCheck enforces documented lock discipline. A struct field whose
// declaration carries the comment
//
//	// guarded by <name>
//
// (trailing on the field line, or in the doc comment above it) may only
// be read or written inside function bodies that visibly acquire the
// guard. <name> must be a sibling field of the same struct; three guard
// disciplines are recognised from the sibling's type:
//
//   - sync.Mutex / sync.RWMutex: the body must call <recv>.<name>.Lock()
//     or, for reads only, <recv>.<name>.RLock(). Writes under RLock are
//     reported.
//   - sync.Once: the access must occur lexically inside the callback
//     passed to <recv>.<name>.Do(...), or the body must call it — the
//     once-body is the only writer, and readers are safe only after Do
//     returns, which the analyzer approximates by requiring the Do call
//     in the same body.
//   - channels: the body must close(<recv>.<name>) (the publisher) or
//     receive from it (<-<recv>.<name>, the synchronised reader) before
//     the access — the happens-before edge of a close/receive pair.
//
// The analysis is intraprocedural: a function that takes the lock and
// calls a helper that touches the field does not transfer the guard to
// the helper. Helpers that rely on "caller holds mu" document it with an
// //ahqlint:allow lockcheck annotation, which keeps the convention
// greppable.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "fields commented `// guarded by <mu>` may only be accessed in " +
		"function bodies that acquire <mu> (intraprocedural)",
	Run: runLockCheck,
}

var guardedByRe = regexp.MustCompile(`//\s*guarded by (\w+)\b`)

// guardKind is the synchronisation discipline a guard field implies.
type guardKind int

const (
	guardMutex   guardKind = iota // sync.Mutex: Lock only
	guardRWMutex                  // sync.RWMutex: Lock, or RLock for reads
	guardOnce                     // sync.Once: inside or after Do
	guardChan                     // channel: close/receive happens-before
)

// guardedField records one `// guarded by` declaration.
type guardedField struct {
	structType *types.Struct
	field      *types.Var // the protected field
	guard      *types.Var // the sibling guard field
	guardName  string
	kind       guardKind
}

func runLockCheck(pass *Pass) {
	guards := collectGuardedFields(pass)
	if len(guards) == 0 {
		return
	}
	byField := make(map[*types.Var]*guardedField, len(guards))
	for _, g := range guards {
		byField[g.field] = g
	}

	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockBody(pass, fd, byField)
		}
	}
}

// collectGuardedFields finds every `// guarded by <name>` field comment in
// the package and resolves the protected field and its guard sibling.
func collectGuardedFields(pass *Pass) []*guardedField {
	var out []*guardedField
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(x ast.Node) bool {
			st, ok := x.(*ast.StructType)
			if !ok {
				return true
			}
			tv, ok := pass.Pkg.TypesInfo.Types[st]
			if !ok {
				return true
			}
			styp, ok := tv.Type.(*types.Struct)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				guardName := fieldGuardName(fld)
				if guardName == "" {
					continue
				}
				guard := lookupStructField(styp, guardName)
				if guard == nil {
					pass.Reportf(fld.Pos(),
						"`// guarded by %s` names no sibling field of this struct", guardName)
					continue
				}
				kind, ok := classifyGuard(guard.Type())
				if !ok {
					pass.Reportf(fld.Pos(),
						"guard field %s has type %s; guards must be sync.Mutex, sync.RWMutex, sync.Once, or a channel",
						guardName, guard.Type())
					continue
				}
				// One ast field entry may declare several names (a, b T).
				for _, name := range fld.Names {
					v := structVarNamed(styp, name.Name)
					if v == nil {
						continue
					}
					out = append(out, &guardedField{
						structType: styp, field: v, guard: guard,
						guardName: guardName, kind: kind,
					})
				}
			}
			return true
		})
	}
	return out
}

// fieldGuardName extracts the guard name from a field's trailing or doc
// comment, or "".
func fieldGuardName(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Comment, fld.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardedByRe.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

func lookupStructField(s *types.Struct, name string) *types.Var {
	return structVarNamed(s, name)
}

func structVarNamed(s *types.Struct, name string) *types.Var {
	for i := 0; i < s.NumFields(); i++ {
		if s.Field(i).Name() == name {
			return s.Field(i)
		}
	}
	return nil
}

// classifyGuard maps a guard field's type to its discipline.
func classifyGuard(t types.Type) (guardKind, bool) {
	if _, ok := t.Underlying().(*types.Chan); ok {
		return guardChan, true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return 0, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return 0, false
	}
	switch obj.Name() {
	case "Mutex":
		return guardMutex, true
	case "RWMutex":
		return guardRWMutex, true
	case "Once":
		return guardOnce, true
	}
	return 0, false
}

// fieldAccess is one guarded-field selector found in a body.
type fieldAccess struct {
	sel   *ast.SelectorExpr
	g     *guardedField
	base  string // rendered base expression, e.g. "s" or "c.shards[i]"
	write bool
}

// checkLockBody verifies every guarded-field access in one function body.
func checkLockBody(pass *Pass, fd *ast.FuncDecl, byField map[*types.Var]*guardedField) {
	info := pass.Pkg.TypesInfo

	// Collect accesses and classify reads vs writes.
	writes := collectWriteTargets(fd.Body)
	var accesses []fieldAccess
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		v, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		// Origin maps a field of an instantiated generic struct back to the
		// declared field the `// guarded by` comment sits on.
		g, ok := byField[v.Origin()]
		if !ok {
			return true
		}
		accesses = append(accesses, fieldAccess{
			sel:   sel,
			g:     g,
			base:  exprString(sel.X),
			write: writes[sel],
		})
		return true
	})
	if len(accesses) == 0 {
		return
	}

	// Guard-acquisition evidence per (base, guardName), gathered once.
	body := fd.Body
	for _, a := range accesses {
		held, readOnly := guardHeld(pass, body, a)
		switch {
		case !held:
			verb := "read"
			if a.write {
				verb = "write to"
			}
			pass.Reportf(a.sel.Pos(),
				"%s %s.%s without holding %s (%s)", verb, a.base, a.g.field.Name(),
				a.g.guardName, guardHint(a.g.kind))
		case a.write && readOnly:
			pass.Reportf(a.sel.Pos(),
				"write to %s.%s under %s.%s.RLock; writes need the full Lock",
				a.base, a.g.field.Name(), a.base, a.g.guardName)
		}
	}
}

func guardHint(k guardKind) string {
	switch k {
	case guardRWMutex:
		return "call Lock, or RLock for reads"
	case guardOnce:
		return "access it inside or after the sync.Once Do call"
	case guardChan:
		return "close the channel before writing, or receive from it before reading"
	default:
		return "call Lock first"
	}
}

// guardHeld reports whether the body shows acquisition of the access's
// guard for its base expression. readOnly is true when the only evidence
// is an RLock (shared, read-only) acquisition.
func guardHeld(pass *Pass, body *ast.BlockStmt, a fieldAccess) (held, readOnly bool) {
	guardExpr := a.base + "." + a.g.guardName
	switch a.g.kind {
	case guardMutex, guardRWMutex:
		var sawLock, sawRLock bool
		ast.Inspect(body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if exprString(sel.X) != guardExpr {
				return true
			}
			switch sel.Sel.Name {
			case "Lock":
				sawLock = true
			case "RLock":
				sawRLock = true
			}
			return true
		})
		if sawLock {
			return true, false
		}
		if sawRLock && a.g.kind == guardRWMutex {
			return true, true
		}
		return false, false

	case guardOnce:
		found := false
		ast.Inspect(body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "Do" && exprString(sel.X) == guardExpr {
				found = true
			}
			return true
		})
		return found, false

	case guardChan:
		found := false
		ast.Inspect(body, func(x ast.Node) bool {
			switch node := x.(type) {
			case *ast.CallExpr:
				// close(x.done) — the publisher side. A deferred close
				// counts: the write happens before the deferred close runs.
				if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "close" && len(node.Args) == 1 {
					if exprString(node.Args[0]) == guardExpr {
						found = true
					}
				}
			case *ast.UnaryExpr:
				// <-x.done — the synchronised reader.
				if node.Op == token.ARROW && exprString(node.X) == guardExpr {
					found = true
				}
			}
			return true
		})
		return found, false
	}
	return false, false
}

// collectWriteTargets marks selector expressions that are assignment
// targets (including op-assign and ++/--) or have their address taken.
func collectWriteTargets(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	writes := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		e = unparen(e)
		// Writing through an index (m[k] = v on a guarded map or slice
		// field) mutates the guarded structure just the same.
		for {
			idx, ok := e.(*ast.IndexExpr)
			if !ok {
				break
			}
			e = unparen(idx.X)
		}
		if sel, ok := e.(*ast.SelectorExpr); ok {
			writes[sel] = true
		}
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch node := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(node.X)
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				mark(node.X)
			}
		}
		return true
	})
	return writes
}

// exprString renders a small expression (selector chains, index
// expressions, identifiers) to a canonical string for base-expression
// matching. Expressions it cannot render return a unique placeholder so
// they never spuriously match.
func exprString(e ast.Expr) string {
	var b strings.Builder
	if !writeExpr(&b, e) {
		return "<complex>"
	}
	return b.String()
}

func writeExpr(b *strings.Builder, e ast.Expr) bool {
	switch node := unparen(e).(type) {
	case *ast.Ident:
		b.WriteString(node.Name)
		return true
	case *ast.SelectorExpr:
		if !writeExpr(b, node.X) {
			return false
		}
		b.WriteByte('.')
		b.WriteString(node.Sel.Name)
		return true
	case *ast.IndexExpr:
		if !writeExpr(b, node.X) {
			return false
		}
		b.WriteByte('[')
		if !writeExpr(b, node.Index) {
			return false
		}
		b.WriteByte(']')
		return true
	case *ast.BasicLit:
		b.WriteString(node.Value)
		return true
	case *ast.UnaryExpr:
		if node.Op != token.AND {
			return false
		}
		return writeExpr(b, node.X)
	case *ast.StarExpr:
		return writeExpr(b, node.X)
	case *ast.CallExpr:
		return false
	}
	return false
}
