// Package linttest runs an analyzer over a golden fixture package and
// compares its findings against `// want` expectations embedded in the
// fixture source, in the style of golang.org/x/tools' analysistest (which
// this module cannot depend on — the build is fully offline).
//
// A fixture line expecting a finding carries a trailing comment:
//
//	_ = time.Now() // want `time\.Now`
//
// Each backquoted or double-quoted string is a regular expression that
// must match the message of exactly one finding reported on that line.
// Lines with //ahqlint:allow annotations exercise the suppression path
// and must therefore produce no finding.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"ahq/internal/lint"
)

// wantRe pulls the expectation strings out of a `// want` comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run loads the fixture package at pattern (relative to dir, typically
// "./testdata/src/<analyzer>"), applies the analyzer with annotation
// filtering but without package scoping, and reports any mismatch
// between findings and `// want` expectations as test failures.
func Run(t *testing.T, dir string, a *lint.Analyzer, pattern string) {
	t.Helper()
	pkgs, err := lint.Load(dir, pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pattern, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s loaded %d packages, want 1", pattern, len(pkgs))
	}
	pkg := pkgs[0]

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, expr, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}

	for _, d := range lint.RunAnalyzerFiltered(pkg, a) {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected finding matching %q, got none", key, w.re)
			}
		}
	}
}
