// Package linttest runs an analyzer over a golden fixture package and
// compares its findings against `// want` expectations embedded in the
// fixture source, in the style of golang.org/x/tools' analysistest (which
// this module cannot depend on — the build is fully offline).
//
// A fixture line expecting a finding carries a trailing comment:
//
//	_ = time.Now() // want `time\.Now`
//
// Each backquoted or double-quoted string is a regular expression that
// must match the message of exactly one finding reported on that line.
// Lines with //ahqlint:allow annotations exercise the suppression path
// and must therefore produce no finding.
//
// Package analyzers use Run, which checks one fixture package ignoring
// the analyzer's AppliesTo scope. Program analyzers use RunProgram, which
// loads several fixture packages into one call graph and does honour
// AppliesTo — cross-package analyses like detflow define their behaviour
// by a scope boundary, so the fixture layout encodes which packages are
// inside it.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"ahq/internal/lint"
)

// wantRe pulls the expectation strings out of a `// want` comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants parses every `// want` expectation in the packages, keyed
// by "file:line".
func collectWants(t *testing.T, pkgs []*lint.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
						expr := m[1]
						if expr == "" {
							expr = m[2]
						}
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, expr, err)
						}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants
}

// compare matches findings against expectations, reporting both
// unexpected findings and unmatched expectations.
func compare(t *testing.T, wants map[string][]*want, diags []lint.Diagnostic) {
	t.Helper()
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected finding matching %q, got none", key, w.re)
			}
		}
	}
}

// Run loads the fixture package at pattern (relative to dir, typically
// "./testdata/src/<analyzer>"), applies the package analyzer with
// annotation filtering but without package scoping, and reports any
// mismatch between findings and `// want` expectations as test failures.
func Run(t *testing.T, dir string, a *lint.Analyzer, pattern string) {
	t.Helper()
	pkgs, err := lint.Load(dir, pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pattern, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s loaded %d packages, want 1", pattern, len(pkgs))
	}
	compare(t, collectWants(t, pkgs), lint.RunAnalyzerFiltered(pkgs[0], a))
}

// RunProgram loads all fixture packages matched by the patterns into one
// program, applies the program analyzer through the full driver — so
// AppliesTo scoping, //ahqlint:allow filtering, and suppression-hygiene
// diagnostics all behave exactly as in production — and compares against
// the `// want` expectations of every loaded package.
func RunProgram(t *testing.T, dir string, a *lint.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("patterns %v loaded no packages", patterns)
	}
	compare(t, collectWants(t, pkgs), lint.RunAnalyzers(pkgs, []*lint.Analyzer{a}))
}
