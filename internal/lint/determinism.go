package lint

import (
	"go/ast"
	"go/types"
)

// Determinism forbids sources of run-to-run nondeterminism in the
// simulation, controller, and experiment packages: wall-clock reads,
// the global (ambiently seeded) math/rand functions, environment
// lookups, and map iteration feeding an output sink. PR 1's guarantee —
// ahqbench stdout is byte-identical at every -parallel level — holds
// only while these stay out of the simulated paths.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/time.Since, global math/rand functions, os.Getenv, " +
		"and map-iteration feeding print/write sinks in deterministic packages",
	AppliesTo: func(pkgPath string) bool {
		return pathIn(pkgPath,
			"ahq/internal/sim",
			"ahq/internal/core",
			"ahq/internal/entropy",
			"ahq/internal/sched",
			"ahq/internal/experiments",
			"ahq/internal/faults",
			"ahq/cmd/ahqbench",
		)
	},
	Run: runDeterminism,
}

// randConstructors are the top-level math/rand functions that build an
// explicitly seeded generator; they are the approved pattern, everything
// else at rand package scope draws from the ambient global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDeterminism(pass *Pass) {
	walk(pass.Pkg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkForbiddenCall(pass, n)
		case *ast.RangeStmt:
			checkMapRangeSink(pass, n)
		}
		return true
	})
}

// calleeFunc resolves a call expression to the package-level function it
// invokes, or nil for methods, locals, conversions, and builtins.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.Pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; simulation time must come from the engine (NowMs)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"rand.%s draws from the ambient global source; use a rand.New(rand.NewSource(seed)) stream plumbed from config", fn.Name())
		}
	case "os":
		if fn.Name() == "Getenv" || fn.Name() == "LookupEnv" {
			pass.Reportf(call.Pos(),
				"os.%s makes behaviour depend on the environment; thread configuration through flags or Config fields", fn.Name())
		}
	}
}

// sinkMethods are writer-method names that serialise data; reached from
// inside a map-range they emit in nondeterministic order.
var sinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

func checkMapRangeSink(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Pkg.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg().Path() == "fmt" &&
			(fn.Name() == "Print" || fn.Name() == "Printf" || fn.Name() == "Println" ||
				fn.Name() == "Fprint" || fn.Name() == "Fprintf" || fn.Name() == "Fprintln") {
			pass.Reportf(call.Pos(),
				"fmt.%s inside map iteration emits in nondeterministic order; collect keys and sort first", fn.Name())
			return true
		}
		// Writer methods: buf.WriteString(...) and friends.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if m, ok := pass.Pkg.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
				if sig, ok := m.Type().(*types.Signature); ok && sig.Recv() != nil && sinkMethods[m.Name()] {
					pass.Reportf(call.Pos(),
						"%s inside map iteration writes in nondeterministic order; collect keys and sort first", m.Name())
				}
			}
		}
		return true
	})
}
