// Package seedplumb is a golden fixture for the seedplumb analyzer.
package seedplumb

import "math/rand"

const namedSeed int64 = 42

type cfg struct{ Seed int64 }

func inline() {
	_ = rand.New(rand.NewSource(0x5EED)) // want `inline literal seed`
	_ = rand.NewSource(40 * 1000)        // want `inline literal seed`
	_ = rand.NewSource(int64(7))         // want `inline literal seed`
	_ = rand.NewSource(-(1 << 10))       // want `inline literal seed`
}

func plumbed(c cfg, seed int64) {
	_ = rand.NewSource(namedSeed)
	_ = rand.NewSource(c.Seed)
	_ = rand.NewSource(seed)
	_ = rand.NewSource(seed + 1)
	_ = rand.NewSource(int64(c.Seed) ^ namedSeed)
}

// allowed exercises the suppression path: no finding expected.
func allowed() {
	_ = rand.NewSource(99) //ahqlint:allow seedplumb fixture-sanctioned literal
}
