// Package detflow is the golden fixture for the detflow analyzer. This
// package is INSIDE the checked scope; its helper subpackage is outside,
// so calls into helper exercise the cross-package laundering detection
// the analyzer exists for. Every seeded violation carries a `// want`
// expectation; the approved patterns must stay silent.
package detflow

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"ahq/internal/lint/testdata/src/detflow/helper"
)

const namedSeed int64 = 7

// Direct roots are reported exactly as the original determinism analyzer
// reported them.
func clocks() time.Duration {
	t0 := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func globals() {
	_ = rand.Int()     // want `ambient global source`
	_ = rand.Float64() // want `ambient global source`
	_ = os.Getenv("X") // want `environment`
}

// seeded is the approved pattern: an explicit generator from a named seed.
func seeded() float64 {
	rng := rand.New(rand.NewSource(namedSeed))
	return rng.Float64()
}

// Laundering: the roots live in helper, outside the checked scope; the
// finding lands on the call that imports the taint.
func laundered() int64 {
	direct := helper.WallMs()  // want `helper\.WallMs reaches a nondeterminism source .* \(time\.Now\)`
	hop := helper.Indirect()   // want `helper\.Indirect reaches a nondeterminism source .* \(helper\.WallMs → time\.Now\)`
	_ = helper.Jitter()        // want `helper\.Jitter reaches a nondeterminism source .* \(rand\.Float64\)`
	_ = helper.Region()        // want `helper\.Region reaches a nondeterminism source .* \(os\.Getenv\)`
	clean := helper.Clean(777) // deterministic helper: silent
	return direct + hop + clean
}

// Source is part of the fixture's interface vocabulary; dispatch through
// it resolves to wall.Value below.
type Source interface {
	Value() int64
}

type wall struct{}

// Value launders helper.WallMs; the finding lands HERE, where taint
// enters checked code, not at the dynamic call site in viaInterface.
func (wall) Value() int64 {
	return helper.WallMs() // want `helper\.WallMs reaches a nondeterminism source`
}

// viaInterface dispatches to an in-scope tainted method: that method
// carries its own finding, so this call stays silent.
func viaInterface(s Source) int64 {
	return s.Value()
}

var _ Source = wall{}

// Map-iteration sinks, direct and transitive.
func mapSinks(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `map iteration`
	}
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want `map iteration`
	}
	for k, v := range m {
		helper.Render(k, v) // want `helper\.Render prints \(transitively\) inside map iteration`
	}
	// Sorting the keys first is the approved pattern.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k, m[k])
	}
}

// timingAllowed exercises the suppression path: no finding expected.
func timingAllowed() time.Time {
	return time.Now() //ahqlint:allow detflow fixture-sanctioned wall-clock read
}
