// Package helper sits OUTSIDE detflow's checked scope: its functions are
// laundering vessels. None of the roots here are reported directly —
// detflow must instead flag the calls that pull them into the checked
// fixture package next door.
package helper

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

// WallMs reads the wall clock; unreported here, tainted in the graph.
func WallMs() int64 { return time.Now().UnixMilli() }

// Indirect launders WallMs through one more hop.
func Indirect() int64 { return WallMs() + 1 }

// Jitter draws from the ambient global source.
func Jitter() float64 { return rand.Float64() }

// Region reads the environment.
func Region() string { return os.Getenv("REGION") }

// Clean is genuinely deterministic; calls to it must stay silent.
func Clean(x int64) int64 { return x * 3 }

// Render prints; calling it from inside a map range in the checked
// package leaks iteration order into output.
func Render(k string, v int) { fmt.Println(k, v) }
