// Package unitcheck is a golden fixture for the unitcheck analyzer.
package unitcheck

import "time"

type cfg struct {
	EpochMs float64
	WindowS float64
}

func mixes(durMs, timeS float64, c cfg) {
	_ = durMs + timeS          // want `mixing durMs \(milliseconds\) with timeS \(seconds\)`
	_ = durMs < timeS          // want `mixing`
	if c.EpochMs > c.WindowS { // want `mixing EpochMs \(milliseconds\) with WindowS \(seconds\)`
		return
	}
	durMs = timeS // want `assigning timeS \(seconds\) to durMs \(milliseconds\)`
	_ = durMs

	// Compound right-hand sides are how conversions are written; they
	// stay unclassified and unflagged.
	_ = durMs + 1000*timeS
	sameMs := durMs
	_ = sameMs

	// QPS is an initialism, not a seconds suffix.
	var loadQPS float64
	_ = durMs + loadQPS
}

func durations(ms float64) {
	_ = time.Duration(ms)              // want `bare time\.Duration conversion`
	_ = time.Duration(5) * time.Second // constant conversions are fine
}

// allowed exercises the suppression path: no finding expected.
func allowed(ms float64) time.Duration {
	return time.Duration(ms) //ahqlint:allow unitcheck fixture-sanctioned bare conversion
}
