// Package floatcmp is a golden fixture for the floatcmp analyzer.
package floatcmp

const eps = 1e-9

func compares(a, b float64, n int) bool {
	if a == b { // want `== between floating-point values`
		return true
	}
	if a != b { // want `!= between floating-point values`
		return true
	}
	if a == eps { // want `== between floating-point values`
		return true
	}
	// Zero sentinel checks are the sanctioned exception.
	if a == 0 {
		return true
	}
	if 0.0 != b {
		return true
	}
	// Integer equality is out of scope.
	if n == 3 {
		return true
	}
	// Epsilon comparison is the approved pattern.
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

// allowed exercises the suppression path: no finding expected.
func allowed(a, b float64) bool {
	//ahqlint:allow floatcmp fixture-sanctioned exact comparison
	return a == b
}
