// Package errwrap is a golden fixture for the errwrap analyzer.
package errwrap

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("boom")

func bad(err error) error {
	if err != nil {
		return fmt.Errorf("loading: %v", err) // want `error formatted with %v`
	}
	return fmt.Errorf("row %d: %s", 3, errSentinel) // want `error formatted with %s`
}

func widthFlags(err error) error {
	// The * consumes an argument slot; the error is still matched to %v.
	return fmt.Errorf("%*d: %v", 5, 3, err) // want `error formatted with %v`
}

func good(err error, name string) error {
	_ = fmt.Errorf("ctx: %w", err)
	_ = fmt.Errorf("%w: detail %s", errSentinel, name)
	_ = fmt.Errorf("just text %d%%", 4)
	return nil
}

// allowed exercises the suppression path: no finding expected.
func allowed(err error) error {
	return fmt.Errorf("flattened deliberately: %v", err) //ahqlint:allow errwrap fixture-sanctioned flatten
}
