// Package determinism is a golden fixture for the determinism analyzer.
// It compiles but deliberately violates every rule once, with // want
// expectations on each offending line.
package determinism

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"
)

const namedSeed int64 = 7

func clocks() time.Duration {
	t0 := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func globals() {
	_ = rand.Int()     // want `ambient global source`
	_ = rand.Float64() // want `ambient global source`
	rand.Seed(1)       // want `ambient global source`
	_ = os.Getenv("X") // want `environment`
}

// seeded is the approved pattern: an explicit generator from a named seed.
func seeded() float64 {
	rng := rand.New(rand.NewSource(namedSeed))
	return rng.Float64()
}

func mapSinks(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `map iteration`
	}
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want `map iteration`
	}
	// Sorting the keys first is the approved pattern.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k, m[k])
	}
}

// timingAllowed exercises the suppression path: no finding expected.
func timingAllowed() time.Time {
	return time.Now() //ahqlint:allow determinism fixture-sanctioned wall-clock read
}
