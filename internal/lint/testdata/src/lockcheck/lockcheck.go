// Package lockcheck is the golden fixture for the lockcheck analyzer:
// each of the three guard disciplines (mutex/rwmutex, sync.Once, channel
// happens-before) appears with a compliant access and a violation.
package lockcheck

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) badInc() {
	c.n++ // want `write to c\.n without holding mu`
}

func (c *counter) badRead() int {
	return c.n // want `read c\.n without holding mu`
}

// bump documents a caller-holds-the-lock contract; the annotation keeps
// the contract greppable and exercises the suppression path.
func bump(c *counter) {
	c.n++ //ahqlint:allow lockcheck caller holds mu (see inc)
}

type table struct {
	mu      sync.RWMutex
	entries map[string]int // guarded by mu
}

func (t *table) get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.entries[k]
}

func (t *table) put(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[k] = v
}

func (t *table) badPut(k string, v int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.entries[k] = v // want `write to t\.entries under t\.mu\.RLock`
}

type lazy struct {
	once sync.Once
	val  int // guarded by once
}

func (l *lazy) get() int {
	l.once.Do(func() { l.val = 42 })
	return l.val
}

func (l *lazy) peek() int {
	return l.val // want `read l\.val without holding once`
}

type future struct {
	done chan struct{}
	val  int // guarded by done
}

func (f *future) run() {
	defer close(f.done)
	f.val = 7
}

func (f *future) wait() int {
	<-f.done
	return f.val
}

func (f *future) poll() int {
	return f.val // want `read f\.val without holding done`
}

// Malformed guard comments are themselves diagnosed. The guard comment
// sits in doc position so the `// want` expectation can ride the field
// line the diagnostic lands on.
type broken struct {
	// guarded by missing
	n int // want `names no sibling field`
}

type weird struct {
	g int
	// guarded by g
	n int // want `guards must be sync\.Mutex`
}
