// Package hotpath is the golden fixture for the hotpath analyzer. The
// //ahq:hotpath marker roots the allocation-freedom check, which then
// follows the static call graph: helper below is unannotated but reached
// from a hot function, so its allocations are flagged too, while cold
// contains the same constructs unflagged.
package hotpath

import "fmt"

type item struct{ k, v int }

type ring struct {
	buf []item
	str string
}

//ahq:hotpath
func (r *ring) step(x item) {
	r.buf = append(r.buf, x) // want `append \(may grow the backing array\)`
	m := make(map[int]int)   // want `make`
	m[x.k] = x.v
	r.str = r.str + "y" // want `string concatenation`
	p := &item{k: 1}    // want `escaping composite literal`
	p.v++
	f := func() { p.v-- } // want `function literal`
	f()
	r.helper(x)
}

// helper is reached from the hot path; it is checked even without the
// marker, and the diagnostic names the path that reached it.
func (r *ring) helper(x item) {
	s := []int{x.k, x.v} // want `slice literal`
	r.buf[0].k = s[0]
}

// cold is on no hot path; the same constructs stay silent.
func cold() []int {
	s := []int{1, 2, 3}
	s = append(s, 4)
	return s
}

//ahq:hotpath
func reuse(dst, src []item) []item {
	// The recognised reset-and-reuse idiom keeps existing capacity.
	return append(dst[:0], src...)
}

//ahq:hotpath
func amortized(r *ring, x item) {
	r.buf = append(r.buf, x) //ahqlint:allow hotpath amortized growth; the buffer is reused across windows
}

func sink(v any) { _ = v }

//ahq:hotpath
func boxes(x item, p *ring) {
	sink(x) // want `interface boxing of .*item argument`
	sink(p) // pointers fit the interface word: silent
}

//ahq:hotpath
func prints(x item) {
	fmt.Println(x.k) // want `fmt\.Println call \(boxes operands\)`
}
