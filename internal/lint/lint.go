// Package lint implements ahqlint, the project's static-analysis suite.
//
// The reproduction's headline guarantee — every paper table and figure is
// bit-reproducible at any -parallel level — rests on a handful of coding
// invariants: no wall-clock reads or ambient randomness in simulation
// paths, no map-iteration order leaking into output, explicit seed
// plumbing, no exact float equality on computed epoch values, no unit
// confusion between milliseconds and seconds, no allocation re-entering
// the //ahq:hotpath tick loop, and no unlocked access to fields a
// `// guarded by` comment protects. This package enforces those
// invariants mechanically with a small go/analysis-style framework built
// on the standard library (go/ast, go/types, and `go list -export`
// export data), so the checks run offline with no external dependencies.
//
// Analyzers come in two shapes. A package analyzer (Run) inspects one
// type-checked package at a time. A program analyzer (RunProgram) runs
// once over every loaded package together with a module-wide static call
// graph (callgraph.go), so it can follow facts across package boundaries
// — detflow's nondeterminism taint and hotpath's transitive
// allocation-freedom both need that view.
//
// A finding can be suppressed with a justification comment on the
// offending line or the line directly above it:
//
//	//ahqlint:allow <analyzer> <reason>
//
// The driver checks the annotations themselves: naming an analyzer that
// does not exist, or suppressing a finding that is no longer reported,
// is itself a diagnostic (analyzer name "suppress"), so typo'd and stale
// allowances cannot silently linger. See docs/lint.md for the analyzer
// catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one named check. Exactly one of Run (per-package)
// and RunProgram (whole-program) must be set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ahqlint:allow annotations. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports
	// and why the invariant matters.
	Doc string
	// AppliesTo reports whether the analyzer reports findings in the
	// package with the given import path; nil means every package. For
	// package analyzers the driver skips out-of-scope packages entirely;
	// for program analyzers every package still contributes to the call
	// graph, but diagnostics landing in out-of-scope packages are
	// dropped. Test harnesses for package analyzers bypass this so
	// fixtures under testdata/ are always checked; program-analyzer
	// fixtures instead carry their scope in their package layout.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// RunProgram inspects the whole loaded program at once.
	RunProgram func(*ProgramPass)
}

// A Pass carries one package analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A ProgramPass carries one program analyzer's view of the whole program.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	diags    *[]Diagnostic
}

// Reportf records a finding at pos. All packages of a program share one
// FileSet, so positions resolve regardless of which package they fall in.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// SuppressName is the analyzer name under which the driver reports
// problems with //ahqlint:allow annotations themselves (unknown analyzer
// names, stale suppressions). It is not a real analyzer and cannot itself
// be allowed — fix the annotation instead.
const SuppressName = "suppress"

// allowRe matches suppression annotations, with or without a space after
// `//`. The analyzer name is captured; everything after it is the
// (required by convention, unchecked) reason.
var allowRe = regexp.MustCompile(`^// ?ahqlint:allow (\S+)\b`)

// allowAnn is one parsed //ahqlint:allow annotation. used flips when the
// annotation actually suppresses a finding, which the driver checks after
// every analyzer has run: an unused annotation is stale.
type allowAnn struct {
	analyzer string
	pos      token.Position
	used     bool
}

// collectAllows parses every suppression annotation in the packages, in
// deterministic (package, file, comment) order.
func collectAllows(pkgs []*Package) []*allowAnn {
	var anns []*allowAnn
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					anns = append(anns, &allowAnn{
						analyzer: m[1],
						pos:      pkg.Fset.Position(c.Pos()),
					})
				}
			}
		}
	}
	return anns
}

// indexAllows maps analyzer name -> file:line -> annotation. An annotation
// suppresses its own line and the next one, so it works both as a trailing
// comment and on a line of its own above the finding.
func indexAllows(anns []*allowAnn) map[string]map[string]*allowAnn {
	idx := make(map[string]map[string]*allowAnn)
	for _, ann := range anns {
		lines := idx[ann.analyzer]
		if lines == nil {
			lines = make(map[string]*allowAnn)
			idx[ann.analyzer] = lines
		}
		for _, line := range []int{ann.pos.Line, ann.pos.Line + 1} {
			key := fmt.Sprintf("%s:%d", ann.pos.Filename, line)
			if _, taken := lines[key]; !taken {
				lines[key] = ann
			}
		}
	}
	return idx
}

// suppressed consumes the annotation covering d, if any, marking it used.
func suppressed(idx map[string]map[string]*allowAnn, d Diagnostic) bool {
	key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
	if ann := idx[d.Analyzer][key]; ann != nil {
		ann.used = true
		return true
	}
	return false
}

// RunAnalyzers applies every analyzer to every package it covers, filters
// out annotated findings, validates the annotations themselves, and
// returns the remainder sorted by position. Analyzer scoping (AppliesTo)
// is honoured here; use RunAnalyzer / RunProgramAnalyzer to check
// packages unconditionally.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram != nil {
			prog = BuildProgram(pkgs)
			break
		}
	}
	allows := collectAllows(pkgs)
	idx := indexAllows(allows)
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if a.AppliesTo != nil && !a.AppliesTo(pkg.PkgPath) {
				continue
			}
			for _, d := range RunAnalyzer(pkg, a) {
				if !suppressed(idx, d) {
					out = append(out, d)
				}
			}
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		for _, d := range RunProgramAnalyzer(prog, a) {
			if a.AppliesTo != nil {
				pkg := prog.PackageOf(d.Pos.Filename)
				if pkg == nil || !a.AppliesTo(pkg.PkgPath) {
					continue
				}
			}
			if !suppressed(idx, d) {
				out = append(out, d)
			}
		}
	}

	// Suppression hygiene: a typo'd analyzer name would otherwise make the
	// annotation silently inert, and an annotation whose finding was fixed
	// would linger as false documentation of a violation.
	for _, ann := range allows {
		switch {
		case !known[ann.analyzer]:
			out = append(out, Diagnostic{
				Pos:      ann.pos,
				Analyzer: SuppressName,
				Message: fmt.Sprintf("allow annotation names unknown analyzer %q (known: %s)",
					ann.analyzer, strings.Join(sortedNames(known), ", ")),
			})
		case !ann.used:
			out = append(out, Diagnostic{
				Pos:      ann.pos,
				Analyzer: SuppressName,
				Message: fmt.Sprintf("stale suppression: no %s finding on this or the next line; remove the annotation",
					ann.analyzer),
			})
		}
	}
	sortDiagnostics(out)
	return out
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// RunAnalyzer applies one package analyzer to one package, ignoring
// AppliesTo and //ahqlint:allow annotations. Test fixtures use it
// directly.
func RunAnalyzer(pkg *Package, a *Analyzer) []Diagnostic {
	var diags []Diagnostic
	a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
	return diags
}

// RunProgramAnalyzer applies one program analyzer to a built program,
// ignoring AppliesTo (the analyzer sees every package; scope filtering is
// the driver's job) and //ahqlint:allow annotations.
func RunProgramAnalyzer(prog *Program, a *Analyzer) []Diagnostic {
	var diags []Diagnostic
	a.RunProgram(&ProgramPass{Analyzer: a, Prog: prog, diags: &diags})
	return diags
}

// RunAnalyzerFiltered applies one package analyzer to one package,
// ignoring AppliesTo but honouring //ahqlint:allow annotations — the
// single-package filtering the fixture harness composes.
func RunAnalyzerFiltered(pkg *Package, a *Analyzer) []Diagnostic {
	idx := indexAllows(collectAllows([]*Package{pkg}))
	var out []Diagnostic
	for _, d := range RunAnalyzer(pkg, a) {
		if !suppressed(idx, d) {
			out = append(out, d)
		}
	}
	return out
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DetFlow,
		UnitCheck,
		FloatCmp,
		SeedPlumb,
		ErrWrap,
		HotPath,
		LockCheck,
	}
}

// pathIn reports whether pkgPath is one of the listed import paths or a
// sub-package of one.
func pathIn(pkgPath string, roots ...string) bool {
	for _, r := range roots {
		if pkgPath == r || strings.HasPrefix(pkgPath, r+"/") {
			return true
		}
	}
	return false
}

// walk visits every node of every file in the package.
func walk(pkg *Package, visit func(ast.Node) bool) {
	for _, f := range pkg.Syntax {
		ast.Inspect(f, visit)
	}
}

// calleeFunc resolves a call expression to the package-level function it
// invokes, or nil for methods, locals, conversions, and builtins.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.Pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}
