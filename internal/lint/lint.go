// Package lint implements ahqlint, the project's static-analysis suite.
//
// The reproduction's headline guarantee — every paper table and figure is
// bit-reproducible at any -parallel level — rests on a handful of coding
// invariants: no wall-clock reads or ambient randomness in simulation
// paths, no map-iteration order leaking into output, explicit seed
// plumbing, no exact float equality on computed epoch values, and no unit
// confusion between milliseconds and seconds. This package enforces those
// invariants mechanically with a small go/analysis-style framework built
// on the standard library (go/ast, go/types, and `go list -export`
// export data), so the checks run offline with no external dependencies.
//
// A finding can be suppressed with a justification comment on the
// offending line or the line directly above it:
//
//	//ahqlint:allow <analyzer> <reason>
//
// See docs/lint.md for the analyzer catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ahqlint:allow annotations. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports
	// and why the invariant matters.
	Doc string
	// AppliesTo reports whether the analyzer checks the package with
	// the given import path; nil means every package. Test harnesses
	// bypass this so fixtures under testdata/ are always checked.
	AppliesTo func(pkgPath string) bool
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// allowRe matches suppression annotations. The analyzer name is captured;
// everything after it is the (required by convention, unchecked) reason.
var allowRe = regexp.MustCompile(`^//ahqlint:allow ([a-z]+)\b`)

// allowedLines maps analyzer name -> file:line keys on which findings are
// suppressed. An annotation suppresses its own line and the next one, so
// it works both as a trailing comment and on a line of its own above the
// finding.
func allowedLines(pkg *Package) map[string]map[string]bool {
	allowed := make(map[string]map[string]bool)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := allowed[m[1]]
				if lines == nil {
					lines = make(map[string]bool)
					allowed[m[1]] = lines
				}
				lines[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = true
				lines[fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)] = true
			}
		}
	}
	return allowed
}

// RunAnalyzers applies every analyzer to every package it covers,
// filters out annotated findings, and returns the remainder sorted by
// position. Analyzer scoping (AppliesTo) is honoured here; use
// RunAnalyzer to check one package unconditionally.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.PkgPath) {
				continue
			}
			out = append(out, RunAnalyzerFiltered(pkg, a)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// RunAnalyzer applies one analyzer to one package, ignoring AppliesTo and
// //ahqlint:allow annotations. Test fixtures use it directly.
func RunAnalyzer(pkg *Package, a *Analyzer) []Diagnostic {
	var diags []Diagnostic
	a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
	return diags
}

// RunAnalyzerFiltered applies one analyzer to one package, ignoring
// AppliesTo but honouring //ahqlint:allow annotations — the behaviour the
// driver composes over every package/analyzer pair.
func RunAnalyzerFiltered(pkg *Package, a *Analyzer) []Diagnostic {
	allowed := allowedLines(pkg)
	var out []Diagnostic
	for _, d := range RunAnalyzer(pkg, a) {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if !allowed[a.Name][key] {
			out = append(out, d)
		}
	}
	return out
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		UnitCheck,
		FloatCmp,
		SeedPlumb,
		ErrWrap,
	}
}

// pathIn reports whether pkgPath is one of the listed import paths or a
// sub-package of one.
func pathIn(pkgPath string, roots ...string) bool {
	for _, r := range roots {
		if pkgPath == r || strings.HasPrefix(pkgPath, r+"/") {
			return true
		}
	}
	return false
}

// walk visits every node of every file in the package.
func walk(pkg *Package, visit func(ast.Node) bool) {
	for _, f := range pkg.Syntax {
		ast.Inspect(f, visit)
	}
}
