package lint_test

import (
	"testing"

	"ahq/internal/lint"
	"ahq/internal/lint/linttest"
)

// Each analyzer is checked against its golden fixture package: every
// deliberately seeded violation must be reported (with a message the
// fixture's `// want` regexp matches) and every allowlisted or clean
// line must stay silent.

// TestDetFlowFixture loads the fixture root AND its helper subpackage
// into one program: the helper is outside detflow's scope, so its roots
// are reported only at the laundering call sites in the root package.
func TestDetFlowFixture(t *testing.T) {
	linttest.RunProgram(t, ".", lint.DetFlow,
		"./testdata/src/detflow", "./testdata/src/detflow/helper")
}

func TestHotPathFixture(t *testing.T) {
	linttest.RunProgram(t, ".", lint.HotPath, "./testdata/src/hotpath")
}

func TestLockCheckFixture(t *testing.T) {
	linttest.Run(t, ".", lint.LockCheck, "./testdata/src/lockcheck")
}

func TestUnitCheckFixture(t *testing.T) {
	linttest.Run(t, ".", lint.UnitCheck, "./testdata/src/unitcheck")
}

func TestFloatCmpFixture(t *testing.T) {
	linttest.Run(t, ".", lint.FloatCmp, "./testdata/src/floatcmp")
}

func TestSeedPlumbFixture(t *testing.T) {
	linttest.Run(t, ".", lint.SeedPlumb, "./testdata/src/seedplumb")
}

func TestErrWrapFixture(t *testing.T) {
	linttest.Run(t, ".", lint.ErrWrap, "./testdata/src/errwrap")
}

// TestEachFixtureViolationHasOneAnalyzer runs the FULL suite over every
// fixture and checks that each seeded violation is reported by exactly
// one analyzer: fixtures encode the expectations of their own analyzer,
// so any cross-analyzer report would surface as an unexpected finding in
// the per-analyzer runs above, and any overlap would double-report here.
func TestEachFixtureViolationHasOneAnalyzer(t *testing.T) {
	pkgs, err := lint.Load(".", "./testdata/src/...")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunAnalyzers(pkgs, lint.All())
	seen := make(map[string]string) // file:line:col -> analyzer
	for _, d := range diags {
		key := d.Pos.String()
		if prev, dup := seen[key]; dup {
			t.Errorf("%s reported by both %s and %s", key, prev, d.Analyzer)
		}
		seen[key] = d.Analyzer
	}
	if len(diags) == 0 {
		t.Fatal("full suite found no violations in fixtures; expected the seeded ones")
	}
}

// TestScoping pins the AppliesTo package scoping: detflow and floatcmp
// are restricted to the simulation core (plus, for detflow, the fixture
// root — but not its helper — so the golden test can exercise the scope
// boundary), unitcheck exempts internal/units, and the rest are
// module-wide.
func TestScoping(t *testing.T) {
	cases := []struct {
		analyzer *lint.Analyzer
		pkgPath  string
		want     bool
	}{
		{lint.DetFlow, "ahq/internal/sim", true},
		{lint.DetFlow, "ahq/internal/sched/clite", true},
		{lint.DetFlow, "ahq/cmd/ahqbench", true},
		{lint.DetFlow, "ahq/internal/cluster", true},
		{lint.DetFlow, "ahq/internal/pool", true},
		{lint.DetFlow, "ahq/internal/workload", false},
		{lint.DetFlow, "ahq/cmd/ahqd", false},
		{lint.DetFlow, "ahq/internal/lint/testdata/src/detflow", true},
		{lint.DetFlow, "ahq/internal/lint/testdata/src/detflow/helper", false},
		{lint.FloatCmp, "ahq/internal/metrics", true},
		{lint.FloatCmp, "ahq/internal/cluster", false},
		{lint.UnitCheck, "ahq/internal/units", false},
		{lint.UnitCheck, "ahq/cmd/ahqd", true},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.pkgPath); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.pkgPath, got, c.want)
		}
	}
	for _, a := range []*lint.Analyzer{lint.SeedPlumb, lint.ErrWrap, lint.HotPath, lint.LockCheck} {
		if a.AppliesTo != nil {
			t.Errorf("%s should be module-wide (AppliesTo == nil)", a.Name)
		}
	}
}
