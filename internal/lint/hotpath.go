package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPath enforces the repo's 0 allocs/op steady-state claim as a
// compile-gated invariant instead of a benchmark hope. A function whose
// doc comment carries the line
//
//	//ahq:hotpath
//
// — together with every module function it statically reaches through the
// call graph — must be allocation-free. The analyzer flags the constructs
// the Go compiler turns into heap allocations on these paths:
//
//   - composite literals whose address escapes (&T{...}) and slice/map
//     composite literals
//   - append without a visible capacity reserve (an inline reslice
//     append(x[:0], ...) is the recognised reuse idiom and is exempt)
//   - make of slices, maps, and channels, and new(T)
//   - string concatenation with + and []byte<->string conversions
//     (except the map-index special case m[string(b)], which the
//     compiler optimises to no allocation)
//   - function literals (closure headers allocate when they capture)
//   - interface boxing: passing or returning a concrete non-pointer
//     value where an interface is expected
//   - fmt.* calls (their ...any parameters box every operand)
//
// Amortised allocations — an append into a slice that a freelist or
// reset-and-reuse pattern keeps warm — are legitimate on hot paths; they
// are annotated with //ahqlint:allow hotpath <why> at the site, which the
// stale-suppression check keeps honest.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //ahq:hotpath, and everything they statically " +
		"call in the module, must not contain allocating constructs",
	RunProgram: runHotPath,
}

// hotPathMarker is the doc-comment annotation that roots the analysis.
const hotPathMarker = "//ahq:hotpath"

func runHotPath(pass *ProgramPass) {
	prog := pass.Prog

	// Roots: functions whose doc comment carries the marker.
	roots := make([]*FuncNode, 0, 8)
	for _, n := range prog.Nodes {
		if n.Decl.Doc == nil {
			continue
		}
		for _, c := range n.Decl.Doc.List {
			if strings.TrimSpace(c.Text) == hotPathMarker {
				roots = append(roots, n)
				break
			}
		}
	}
	if len(roots) == 0 {
		return
	}

	// Closure: everything a root statically reaches inside the module.
	// why records, for diagnostics, how each function entered the hot set.
	why := make(map[*FuncNode]string, len(roots)*4)
	queue := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if _, ok := why[r]; ok {
			continue
		}
		why[r] = "annotated //ahq:hotpath"
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Calls {
			callee := prog.Node(c.Callee)
			if callee == nil {
				continue // outside the module; stdlib calls are vetted by hand
			}
			if _, ok := why[callee]; ok {
				continue
			}
			why[callee] = "reached from hot path via " + n.Name()
			queue = append(queue, callee)
		}
	}

	// Deterministic reporting order: Nodes is already ordered.
	for _, n := range prog.Nodes {
		reason, hot := why[n]
		if !hot {
			continue
		}
		checkAllocFree(pass, n, reason)
	}
}

// checkAllocFree walks one hot function body and reports every allocating
// construct.
func checkAllocFree(pass *ProgramPass, n *FuncNode, reason string) {
	pkg := n.Pkg
	info := pkg.TypesInfo
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in %s (%s); hot paths must be allocation-free", what, n.Name(), reason)
	}

	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch node := x.(type) {
		case *ast.FuncLit:
			report(node.Pos(), "function literal (closure allocation)")
			return true // still check the closure body: it runs on the hot path

		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := unparen(node.X).(*ast.CompositeLit); ok {
					report(node.Pos(), "escaping composite literal (&T{...})")
					return false
				}
			}

		case *ast.CompositeLit:
			if tv, ok := info.Types[node]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(node.Pos(), "slice literal")
				case *types.Map:
					report(node.Pos(), "map literal")
				}
			}

		case *ast.BinaryExpr:
			if node.Op == token.ADD && isStringExpr(info, node.X) {
				report(node.Pos(), "string concatenation")
			}

		case *ast.CallExpr:
			checkAllocCall(pass, n, node, report)
		}
		return true
	})
}

// checkAllocCall classifies one call expression on a hot path.
func checkAllocCall(pass *ProgramPass, n *FuncNode, call *ast.CallExpr, report func(token.Pos, string)) {
	info := n.Pkg.TypesInfo

	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				if !isReuseAppend(call) {
					report(call.Pos(), "append (may grow the backing array)")
				}
			case "make":
				report(call.Pos(), "make")
			case "new":
				report(call.Pos(), "new")
			}
			return
		}
	}

	// Conversions: string(b) / []byte(s) allocate a copy, except the
	// compiler-recognised map-index form m[string(b)].
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		if from, ok := info.Types[call.Args[0]]; ok {
			if isStringByteConv(to, from.Type.Underlying()) && !isMapIndexKey(n, call) {
				report(call.Pos(), "string<->[]byte conversion")
			}
		}
		return
	}

	// fmt.* boxes every operand into ...any.
	if fn := pkgFunc(n.Pkg, call); fn != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt."+fn.Name()+" call (boxes operands)")
		return
	}

	// Interface boxing at argument positions: a concrete non-pointer,
	// non-interface value passed where the parameter is an interface.
	sigTV, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok {
			continue
		}
		if types.IsInterface(at.Type) {
			continue // interface-to-interface: no new box
		}
		if _, isPtr := at.Type.Underlying().(*types.Pointer); isPtr {
			continue // pointers fit in the iface word without allocating
		}
		if at.IsNil() {
			continue
		}
		report(arg.Pos(), "interface boxing of "+at.Type.String()+" argument")
	}
}

// isReuseAppend recognises the reset-and-reuse idiom append(x[:0], ...):
// the destination visibly reuses existing capacity.
func isReuseAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	sl, ok := unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok {
		return false
	}
	// x[:0] — any slice whose high bound is the literal 0.
	if lit, ok := sl.High.(*ast.BasicLit); ok && lit.Value == "0" && sl.Low == nil {
		return true
	}
	return false
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringByteConv reports whether a conversion between to and from is a
// string <-> []byte copy.
func isStringByteConv(to, from types.Type) bool {
	return (isStringType(to) && isByteSlice(from)) || (isByteSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isMapIndexKey reports whether the conversion call is the index operand
// of a map index expression (m[string(b)]), which Go compiles without a
// copy.
func isMapIndexKey(n *FuncNode, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		idx, ok := x.(*ast.IndexExpr)
		if !ok || found {
			return !found
		}
		if unparen(idx.Index) != call {
			return true
		}
		if tv, ok := n.Pkg.TypesInfo.Types[idx.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				found = true
			}
		}
		return !found
	})
	return found
}
