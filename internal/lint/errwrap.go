package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ErrWrap requires fmt.Errorf to wrap error operands with %w. Formatting
// an error with %v or %s flattens it to text, severing errors.Is/As
// chains; the rendered message is identical either way, so %w is a
// strict improvement.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf must use %w, not %v or %s, for error operands",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	walk(pass.Pkg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
			return true
		}
		format, ok := constFormat(pass, call.Args[0])
		if !ok {
			return true
		}
		verbs := parseVerbs(format)
		for i, verb := range verbs {
			argIdx := 1 + i
			if argIdx >= len(call.Args) || verb == 'w' {
				continue
			}
			arg := call.Args[argIdx]
			t := pass.Pkg.TypesInfo.TypeOf(arg)
			if t == nil || !types.Implements(t, errType) {
				continue
			}
			if verb == 'v' || verb == 's' || verb == 'q' {
				pass.Reportf(arg.Pos(),
					"error formatted with %%%c; use %%w so errors.Is/As can unwrap it", verb)
			}
		}
		return true
	})
}

// constFormat extracts a compile-time constant format string.
func constFormat(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// parseVerbs returns the argument-consuming verbs of a format string in
// order, expanding `*` width/precision into their own slots so verb i
// always lines up with variadic argument i. Explicit argument indexes
// (%[n]v) are rare enough here that the parser bails on them.
func parseVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		if format[i] == '[' {
			return nil // explicit index: give up rather than misattribute
		}
		// Flags, width, precision; '*' consumes an argument slot.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || (c >= '1' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}
