package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// UnitCheck flags arithmetic, comparisons, and assignments that mix
// identifiers carrying a milliseconds suffix (WarmupMs, epochMs) with
// ones carrying a seconds suffix (timeS, durSec), and bare
// time.Duration conversions that bypass the shared helpers in
// internal/units. This is the bug class behind PR 1's runMix horizon
// fix, where an epoch count was gated against a milliseconds budget.
var UnitCheck = &Analyzer{
	Name: "unitcheck",
	Doc: "flag expressions mixing Ms- and Sec-suffixed identifiers and bare " +
		"time.Duration conversions that skip internal/units helpers",
	AppliesTo: func(pkgPath string) bool {
		// internal/units hosts the one sanctioned bare conversion.
		return pkgPath != "ahq/internal/units"
	},
	Run: runUnitCheck,
}

type unit int

const (
	unitNone unit = iota
	unitMs
	unitSec
)

func (u unit) String() string {
	switch u {
	case unitMs:
		return "milliseconds"
	case unitSec:
		return "seconds"
	}
	return "unitless"
}

// unitOfName classifies an identifier by naming convention. Milliseconds:
// a trailing "Ms" or "_ms". Seconds: trailing "Sec"/"Secs"/"_s"/"_sec",
// or a trailing capital S preceded by a lowercase letter (timeS) — the
// lowercase guard keeps initialisms like QPS out.
func unitOfName(name string) unit {
	switch {
	case strings.HasSuffix(name, "Ms") || strings.HasSuffix(name, "_ms"):
		return unitMs
	case strings.HasSuffix(name, "Sec") || strings.HasSuffix(name, "Secs"),
		strings.HasSuffix(name, "_s") || strings.HasSuffix(name, "_sec"):
		return unitSec
	case len(name) >= 2 && name[len(name)-1] == 'S' &&
		unicode.IsLower(rune(name[len(name)-2])):
		return unitSec
	}
	return unitNone
}

// unitOf classifies an expression: a plain identifier or a field selector
// carries its name's unit; parentheses are transparent. Compound
// expressions are deliberately left unclassified — a conversion like
// x*1000 is exactly how units are meant to change.
func unitOf(e ast.Expr) unit {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return unitOf(e.X)
	case *ast.Ident:
		return unitOfName(e.Name)
	case *ast.SelectorExpr:
		return unitOfName(e.Sel.Name)
	}
	return unitNone
}

var unitMixOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

func runUnitCheck(pass *Pass) {
	walk(pass.Pkg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if !unitMixOps[n.Op] {
				return true
			}
			ux, uy := unitOf(n.X), unitOf(n.Y)
			if ux != unitNone && uy != unitNone && ux != uy {
				pass.Reportf(n.Pos(),
					"mixing %s (%s) with %s (%s); convert explicitly before combining",
					exprName(n.X), ux, exprName(n.Y), uy)
			}
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				ul, ur := unitOf(n.Lhs[i]), unitOf(n.Rhs[i])
				if ul != unitNone && ur != unitNone && ul != ur {
					pass.Reportf(n.Pos(),
						"assigning %s (%s) to %s (%s); convert explicitly",
						exprName(n.Rhs[i]), ur, exprName(n.Lhs[i]), ul)
				}
			}
		case *ast.CallExpr:
			checkDurationConversion(pass, n)
		}
		return true
	})
}

// checkDurationConversion flags time.Duration(x) for non-constant x.
// Constant conversions (time.Duration(5)) are fine; converting a runtime
// value is where ms-vs-ns confusion bites, and internal/units owns that.
func checkDurationConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Pkg.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "time" || named.Obj().Name() != "Duration" {
		return
	}
	if arg, ok := pass.Pkg.TypesInfo.Types[call.Args[0]]; ok && arg.Value != nil {
		return // constant conversion
	}
	pass.Reportf(call.Pos(),
		"bare time.Duration conversion; use units.MsToDuration (internal/units) so the scale is named")
}

func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return exprName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return "expression"
}
