// The benchmark harness: one Benchmark per table and figure of the paper's
// evaluation (DESIGN.md §4), plus micro-benchmarks of the hot paths.
//
// Each figure benchmark regenerates its artifact end-to-end — workload
// generation, simulation, scheduling, entropy — in the quick configuration
// and reports the experiment's key quantity as a custom metric. The full
// horizons (the exact rows in EXPERIMENTS.md) are produced by
//
//	go run ./cmd/ahqbench -run <id>
package ahq_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ahq/internal/cluster"
	"ahq/internal/core"
	"ahq/internal/entropy"
	"ahq/internal/experiments"
	"ahq/internal/machine"
	"ahq/internal/metrics"
	"ahq/internal/sched"
	"ahq/internal/sched/arq"
	"ahq/internal/sim"
	"ahq/internal/trace"
	"ahq/internal/workload"

	"ahq"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	d, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(experiments.RunConfig{Seed: int64(i + 1), Quick: true}); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkFig1(b *testing.B)     { benchExperiment(b, "fig1") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkFig2(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig3a(b *testing.B)    { benchExperiment(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)    { benchExperiment(b, "fig3b") }
func BenchmarkFig4(b *testing.B)     { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkHeadline(b *testing.B) { benchExperiment(b, "headline") }

func BenchmarkAblationInterval(b *testing.B) { benchExperiment(b, "ablation-interval") }
func BenchmarkAblationARQ(b *testing.B)      { benchExperiment(b, "ablation-arq") }
func BenchmarkAblationRI(b *testing.B)       { benchExperiment(b, "ablation-ri") }
func BenchmarkAblationTunables(b *testing.B) { benchExperiment(b, "ablation-tunables") }
func BenchmarkExtWeighted(b *testing.B)      { benchExperiment(b, "ext-weighted") }
func BenchmarkExtHeracles(b *testing.B)      { benchExperiment(b, "ext-heracles") }
func BenchmarkExtCluster(b *testing.B)       { benchExperiment(b, "ext-cluster") }
func BenchmarkExtBigNode(b *testing.B)       { benchExperiment(b, "ext-bignode") }

// --- fleet engine benchmarks --------------------------------------------

// fleetBenchPlacement builds the 500-node screening fleet: a catalog of
// 10 node templates (LC services at discrete loads plus BE co-runners, the
// datacenter shape ext-fleet sweeps) replicated 50×. Real fleets run a
// handful of service templates, so this replication is the honest shape —
// and it is exactly what the fleet engine's cross-node sharing exploits.
func fleetBenchPlacement(b *testing.B, nodes int) [][]sim.AppConfig {
	b.Helper()
	lcNames := []string{"xapian", "moses", "img-dnn", "silo", "masstree", "sphinx"}
	beNames := []string{"stream", "fluidanimate", "streamcluster"}
	loads := []float64{0.2, 0.35, 0.5, 0.7}
	const templates = 10
	catalog := make([][]sim.AppConfig, templates)
	k := 0
	for t := range catalog {
		for len(catalog[t]) < 2+t%2 {
			if k%3 == 2 {
				be := workload.MustBE(beNames[k%len(beNames)])
				catalog[t] = append(catalog[t], sim.AppConfig{BE: &be})
			} else {
				lc := workload.MustLC(lcNames[k%len(lcNames)])
				catalog[t] = append(catalog[t], sim.AppConfig{LC: &lc, Load: trace.Constant(loads[k%len(loads)])})
			}
			k++
		}
	}
	placement := make([][]sim.AppConfig, nodes)
	for i := range placement {
		placement[i] = catalog[i%templates]
	}
	return placement
}

// benchFleet drives the 500-node screening fleet at the quick horizon
// under a common-random-numbers seed policy (every node template runs the
// same seed, the standard variance-reduction setup for comparing
// placements). fleetEngine=true is the sharded production path: node
// classes dedup to one simulation each, solves are shared cross-node, and
// shards fan out over the worker pool. fleetEngine=false is the
// sequential seed path — every node simulated in full with an isolated
// solve memo, exactly as the pre-fleet cluster.Run ran it. Both paths
// produce bit-identical Results (pinned by TestDedupMatchesFullSimulation
// and TestFleetSharingDoesNotChangeResults); only the wall time differs.
func benchFleet(b *testing.B, fleetEngine bool) {
	const nodes = 500
	placement := fleetBenchPlacement(b, nodes)
	opts := core.Options{EpochMs: 500, WarmupMs: 500, DurationMs: 1_500}
	b.ReportAllocs()
	b.ResetTimer()
	var stats cluster.FleetStats
	for n := 0; n < b.N; n++ {
		cfg := cluster.Config{
			Spec:        machine.DefaultSpec(),
			Seed:        int64(n + 1),
			NewStrategy: func(int) sched.Strategy { return arq.Default() },
			Placement:   placement,
			NodeSeed:    func(int) int64 { return int64(n + 1) },
		}
		if fleetEngine {
			cfg.DedupIdenticalNodes = true
		} else {
			cfg.Parallel = 1
			cfg.DisableSolveSharing = true
		}
		res, err := cluster.Run(cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		stats = res.Stats
	}
	b.ReportMetric(float64(stats.NodesSimulated), "nodesims/op")
	b.ReportMetric(float64(stats.SharedSolveHits), "sharedhits/op")
}

// BenchmarkFleet is the sharded fleet engine: node-class dedup plus
// cross-node solve sharing — the fleet screening production path.
func BenchmarkFleet(b *testing.B) { benchFleet(b, true) }

// BenchmarkFleetSequential is the seed baseline: the same 500 nodes
// simulated one by one with isolated solve memos, as the pre-sharding
// cluster.Run ran them.
func BenchmarkFleetSequential(b *testing.B) { benchFleet(b, false) }

// fleetSweepCandidates builds the candidate-evaluation workload for the
// sweep benchmarks: an incumbent placement (interference-unaware Pack over
// a drawn population, the worst sharer within a single Run) plus
// local-search neighbours that each swap a handful of applications between
// node pairs — the shape an online placement optimiser scores (Mage-style
// candidate evaluation). Neighbours share the overwhelming majority of
// their node contents with the incumbent, which is precisely the recurrence
// the sweep-scoped NodeCache collapses and within-Run dedup cannot see.
func fleetSweepCandidates(b *testing.B, nodes, candidates, swaps int) [][][]sim.AppConfig {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	lcNames := []string{"xapian", "moses", "img-dnn", "silo", "masstree", "sphinx"}
	beNames := []string{"stream", "fluidanimate", "streamcluster"}
	loads := []float64{0.2, 0.35, 0.5, 0.7}
	apps := make([]sim.AppConfig, nodes*5/2)
	for i := range apps {
		if rng.Float64() < 0.7 {
			lc := workload.MustLC(lcNames[rng.Intn(len(lcNames))])
			apps[i] = sim.AppConfig{LC: &lc, Load: trace.Constant(loads[rng.Intn(len(loads))])}
		} else {
			be := workload.MustBE(beNames[rng.Intn(len(beNames))])
			apps[i] = sim.AppConfig{BE: &be}
		}
	}
	base, err := cluster.Pack(apps, nodes, 8)
	if err != nil {
		b.Fatal(err)
	}
	out := make([][][]sim.AppConfig, candidates)
	out[0] = cluster.CanonicalizePlacement(base)
	for c := 1; c < candidates; c++ {
		cand := make([][]sim.AppConfig, len(base))
		for i, n := range base {
			cand[i] = append([]sim.AppConfig(nil), n...)
		}
		for s := 0; s < swaps; s++ {
			i, j := rng.Intn(len(cand)), rng.Intn(len(cand))
			if i == j || len(cand[i]) == 0 || len(cand[j]) == 0 {
				continue
			}
			ii, jj := rng.Intn(len(cand[i])), rng.Intn(len(cand[j]))
			cand[i][ii], cand[j][jj] = cand[j][jj], cand[i][ii]
		}
		out[c] = cluster.CanonicalizePlacement(cand)
	}
	return out
}

// benchFleetSweep scores 5 candidate placements of one 100-node population
// per iteration, exactly as a sweep does: common-random-numbers node seeds
// (cluster.TemplateSeed), canonical intra-node order, within-Run dedup and
// a shared solve cache in BOTH variants — the only difference is whether a
// sweep-scoped cluster.NodeCache carries completed node simulations across
// the candidate Runs. Both variants produce bit-identical tables (pinned by
// TestNodeCacheHitIsBitIdentical and the CI ext-fleet smoke); the benchmark
// measures the wall-time wedge, which is bounded by cross-candidate content
// overlap: here neighbours share ~95% of their nodes with the incumbent, so
// the cached sweep simulates each unique node roughly once while the
// uncached sweep re-simulates the unchanged majority for every candidate.
// The ext-fleet production sweep (5 unrelated strategies, so far lower
// overlap) measures ~1.4x end-to-end; this benchmark pins the
// candidate-evaluation regime the cache is built for.
func benchFleetSweep(b *testing.B, cached bool) {
	const (
		nodes      = 100
		candidates = 5
		swaps      = 4
	)
	placements := fleetSweepCandidates(b, nodes, candidates, swaps)
	opts := core.Options{EpochMs: 500, WarmupMs: 500, DurationMs: 1_500}
	b.ReportAllocs()
	b.ResetTimer()
	var sims, hits uint64
	for n := 0; n < b.N; n++ {
		var nodeCache *cluster.NodeCache
		if cached {
			nodeCache = cluster.NewNodeCache()
		}
		solves := sim.NewSolveCache()
		sims, hits = 0, 0
		for _, placement := range placements {
			seeds := make([]int64, len(placement))
			for i := range placement {
				seeds[i] = cluster.TemplateSeed(1, placement[i])
			}
			res, err := cluster.Run(cluster.Config{
				Spec:                machine.DefaultSpec(),
				Seed:                1,
				NewStrategy:         func(int) sched.Strategy { return arq.Default() },
				Placement:           placement,
				SharedSolves:        solves,
				NodeSeed:            func(i int) int64 { return seeds[i] },
				DedupIdenticalNodes: true,
				NodeCache:           nodeCache,
				StrategyDigest:      "arq:default",
			}, opts)
			if err != nil {
				b.Fatal(err)
			}
			sims += uint64(res.Stats.NodesSimulated)
			hits += res.Stats.NodeCacheHits
		}
	}
	b.ReportMetric(float64(sims), "nodesims/op")
	b.ReportMetric(float64(hits), "nodehits/op")
}

// BenchmarkFleetSweep is the candidate-evaluation sweep with the
// sweep-scoped node cache: each unique node content simulates once.
func BenchmarkFleetSweep(b *testing.B) { benchFleetSweep(b, true) }

// BenchmarkFleetSweepUncached is the same sweep without the node cache:
// every candidate re-simulates the contents its siblings already ran.
func BenchmarkFleetSweepUncached(b *testing.B) { benchFleetSweep(b, false) }

// --- micro-benchmarks of the substrate hot paths ------------------------

// BenchmarkEngineTick measures the simulator's cost per tick under the
// paper's standard four-application mix.
func BenchmarkEngineTick(b *testing.B) {
	x, m, i := workload.MustLC("xapian"), workload.MustLC("moses"), workload.MustLC("img-dnn")
	s := workload.MustBE("stream")
	e, err := sim.New(sim.Config{
		Spec: machine.DefaultSpec(),
		Seed: 1,
		Apps: []sim.AppConfig{
			{LC: &x, Load: trace.Constant(0.5)},
			{LC: &m, Load: trace.Constant(0.2)},
			{LC: &i, Load: trace.Constant(0.2)},
			{BE: &s},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.Step()
	}
}

// denseEngine builds the dense-node configuration the ROADMAP targets: a
// node ten times the paper's Xeon (100 cores, 200 LLC ways) running 16
// applications — 12 latency-critical catalog clones plus 4 best-effort —
// under the allocation shape ARQ converges to on such a node: one
// isolated slice per LC application (12 regions) plus one LC-priority
// shared region holding everyone. Thirteen regions over sixteen
// applications is exactly where per-tick membership scans scale worst
// and the compiled topology index pays off. loadFrac sets every LC
// application's offered load as a fraction of its max.
func denseEngine(b *testing.B, loadFrac float64) *sim.Engine {
	b.Helper()
	spec := machine.Spec{Cores: 100, LLCWays: 200, MemBWUnits: 100, MemBWGBps: 400}
	lcBase := []string{"xapian", "moses", "img-dnn", "silo"}
	beBase := []string{"stream", "fluidanimate", "streamcluster", "stream"}
	var apps []sim.AppConfig
	var names []string
	for i := 0; i < 12; i++ {
		lc := workload.MustLC(lcBase[i%len(lcBase)])
		lc.Name = fmt.Sprintf("%s-%d", lc.Name, i)
		names = append(names, lc.Name)
		apps = append(apps, sim.AppConfig{LC: &lc, Load: trace.Constant(loadFrac)})
	}
	for i := 0; i < 4; i++ {
		be := workload.MustBE(beBase[i])
		be.Name = fmt.Sprintf("%s-%d", be.Name, i)
		names = append(names, be.Name)
		apps = append(apps, sim.AppConfig{BE: &be})
	}
	e, err := sim.New(sim.Config{Spec: spec, Seed: 1, Apps: apps})
	if err != nil {
		b.Fatal(err)
	}
	regions := make([]machine.Region, 0, 13)
	for i := 0; i < 12; i++ {
		regions = append(regions, machine.Region{
			Name: "iso:" + names[i], Kind: machine.Isolated,
			Cores: 4, Ways: 8, BWUnits: 4, Apps: []string{names[i]},
		})
	}
	regions = append(regions, machine.Region{
		Name: "shared", Kind: machine.Shared, Policy: machine.LCPriority,
		Cores: spec.Cores - 48, Ways: spec.LLCWays - 96, BWUnits: spec.MemBWUnits - 48,
		Apps: append([]string(nil), names...),
	})
	if err := e.SetAllocation(machine.Allocation{Regions: regions}); err != nil {
		b.Fatal(err)
	}
	// Run past cache warm-up into steady state before timing.
	for e.NowMs() < 500 {
		e.Step()
	}
	return e
}

// benchDenseTicks measures Engine.Step at the dense node, like
// BenchmarkEngineTick does at the paper's node. The engine is driven at the
// production cadence — 500 ticks, then a window snapshot and stats reset —
// but only the Steps are timed: the drain is per-window accounting, not
// tick-loop cost, and draining (untimed) keeps the window accumulators at
// their realistic steady-state size instead of growing without bound over
// b.N ticks.
func benchDenseTicks(b *testing.B, loadFrac float64) {
	e := denseEngine(b, loadFrac)
	b.ReportAllocs()
	b.ResetTimer()
	ticks := 0
	for n := 0; n < b.N; n++ {
		e.Step()
		if ticks++; ticks == 500 {
			ticks = 0
			b.StopTimer()
			e.RunWindow(0) // drain the window accumulators only
			e.ResetRunStats()
			b.StartTimer()
		}
	}
}

// BenchmarkEngineTickDense measures the per-tick cost at the dense-node
// configuration under moderate steady load, the common case the resolver
// memo targets.
func BenchmarkEngineTickDense(b *testing.B) { benchDenseTicks(b, 0.6) }

// BenchmarkEngineTickDenseOverload measures the per-tick cost at the dense
// configuration with every LC application past saturation: queues are deep,
// so request dispatch dominates the tick.
func BenchmarkEngineTickDenseOverload(b *testing.B) { benchDenseTicks(b, 1.2) }

// BenchmarkEngineTickDenseLight measures the tick loop's fixed overhead:
// at light load most ticks carry little request traffic, so the cost is
// dominated by contention resolution — the membership scans, fixed-point
// iteration, and slowdown math that the topology index and solve memo
// remove. This is the paper-agnostic cost every simulated millisecond pays
// regardless of traffic, and the dense-node scaling bottleneck.
func BenchmarkEngineTickDenseLight(b *testing.B) { benchDenseTicks(b, 0.15) }

// BenchmarkEntropyCompute measures the metric itself: the per-epoch cost a
// production controller would pay.
func BenchmarkEntropyCompute(b *testing.B) {
	lc := []entropy.LCSample{
		{IdealMs: 2.77, MeasuredMs: 6.2, TargetMs: 4.22},
		{IdealMs: 2.80, MeasuredMs: 3.9, TargetMs: 10.53},
		{IdealMs: 1.41, MeasuredMs: 2.2, TargetMs: 3.98},
		{IdealMs: 0.70, MeasuredMs: 1.2, TargetMs: 1.05},
		{IdealMs: 1500, MeasuredMs: 1900, TargetMs: 2682},
		{IdealMs: 0.85, MeasuredMs: 0.9, TargetMs: 1.27},
	}
	be := []entropy.BESample{
		{SoloIPC: 2.7, MeasuredIPC: 1.3},
		{SoloIPC: 0.6, MeasuredIPC: 0.2},
	}
	sys := entropy.System{RI: 0.8}
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if _, _, _, err := sys.Compute(lc, be); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkARQDecide measures one scheduling decision.
func BenchmarkARQDecide(b *testing.B) {
	s := arq.Default()
	engine, err := ahq.NewEngine(ahq.EngineConfig{
		Spec: ahq.DefaultSpec(),
		Seed: 1,
		Apps: []ahq.AppConfig{
			ahq.LCAppAt("xapian", 0.5),
			ahq.LCAppAt("moses", 0.2),
			ahq.LCAppAt("img-dnn", 0.2),
			ahq.BEApp("stream"),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	alloc := s.Init(engine.Spec(), engine.AppSpecs())
	if err := engine.SetAllocation(alloc); err != nil {
		b.Fatal(err)
	}
	windows := engine.RunWindow(500)
	tel := ahq.Telemetry{TimeMs: 500, Apps: windows, ES: 0.3}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		alloc = s.Decide(tel, alloc)
		tel.TimeMs += 500
	}
}

// BenchmarkWindowPercentile measures tail extraction for a realistic
// window volume (one epoch of img-dnn near max load).
func BenchmarkWindowPercentile(b *testing.B) {
	var w metrics.LatencyWindow
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		for i := 0; i < 2500; i++ {
			w.Observe(float64((i*2654435761)%1000) / 100)
		}
		b.StartTimer()
		w.Snapshot()
	}
}
