package ahq_test

import (
	"math"
	"testing"

	"ahq"
)

func TestEntropyFacade(t *testing.T) {
	lc := []ahq.LCSample{{Name: "xapian", IdealMs: 2.77, MeasuredMs: 23.99, TargetMs: 4.22}}
	be := []ahq.BESample{{Name: "stream", SoloIPC: 0.6, MeasuredIPC: 0.3}}
	elc, ebe, es, err := ahq.SystemEntropy{RI: ahq.DefaultRI}.Compute(lc, be)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(elc-0.824) > 0.01 {
		t.Errorf("E_LC = %.3f, want ~0.82 (Table II xapian row)", elc)
	}
	if math.Abs(ebe-0.5) > 1e-9 {
		t.Errorf("E_BE = %.3f", ebe)
	}
	if es <= 0 || es >= 1 {
		t.Errorf("E_S = %.3f", es)
	}
	y, err := ahq.Yield(lc)
	if err != nil || y != 0 {
		t.Errorf("Yield = %g (%v)", y, err)
	}
}

func TestEndToEndARQBeatsUnmanagedUnderStream(t *testing.T) {
	// The paper's bottom line, through the public API alone: with STREAM
	// interference at moderate load, ARQ achieves lower system entropy
	// than the OS default.
	run := func(s ahq.Strategy) *ahq.RunResult {
		engine, err := ahq.NewEngine(ahq.EngineConfig{
			Spec: ahq.DefaultSpec(),
			Seed: 99,
			Apps: []ahq.AppConfig{
				ahq.LCAppAt("xapian", 0.50),
				ahq.LCAppAt("moses", 0.20),
				ahq.BEApp("stream"),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ahq.Run(engine, s, ahq.RunOptions{WarmupMs: 4_000, DurationMs: 10_000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unmanaged := run(ahq.NewUnmanaged())
	arq := run(ahq.NewARQ())
	if arq.MeanES >= unmanaged.MeanES {
		t.Errorf("ARQ E_S %.3f >= Unmanaged E_S %.3f", arq.MeanES, unmanaged.MeanES)
	}
	if arq.Yield < unmanaged.Yield {
		t.Errorf("ARQ yield %.2f < Unmanaged %.2f", arq.Yield, unmanaged.Yield)
	}
}

func TestResourceEquivalenceFacade(t *testing.T) {
	base, err := ahq.NewEquivalenceCurve([]ahq.EquivalencePoint{
		{Resource: 4, ES: 0.8}, {Resource: 8, ES: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	better, err := ahq.NewEquivalenceCurve([]ahq.EquivalencePoint{
		{Resource: 4, ES: 0.4}, {Resource: 8, ES: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	eq, err := ahq.ResourceEquivalence(base, better, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if eq <= 0 {
		t.Errorf("equivalence = %g, want positive", eq)
	}
}

func TestWorkloadCatalogFacade(t *testing.T) {
	app, err := ahq.LCWorkloadByName("xapian")
	if err != nil {
		t.Fatal(err)
	}
	if app.QoSTargetMs != 4.22 {
		t.Errorf("xapian target = %g", app.QoSTargetMs)
	}
	if _, err := ahq.LCWorkloadByName("nope"); err == nil {
		t.Error("unknown LC accepted")
	}
	be, err := ahq.BEWorkloadByName("stream")
	if err != nil {
		t.Fatal(err)
	}
	if be.Threads != 10 {
		t.Errorf("stream threads = %d", be.Threads)
	}
	if got := ahq.ConstantLoad(0.4).At(123); got != 0.4 {
		t.Errorf("ConstantLoad.At = %g", got)
	}
}

func TestAllStrategiesRunThroughFacade(t *testing.T) {
	for _, s := range []ahq.Strategy{
		ahq.NewUnmanaged(), ahq.NewLCFirst(), ahq.NewPARTIES(), ahq.NewCLITE(1), ahq.NewARQ(),
	} {
		engine, err := ahq.NewEngine(ahq.EngineConfig{
			Spec: ahq.DefaultSpec(),
			Seed: 5,
			Apps: []ahq.AppConfig{
				ahq.LCAppAt("img-dnn", 0.30),
				ahq.BEApp("fluidanimate"),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ahq.Run(engine, s, ahq.RunOptions{WarmupMs: 1_500, DurationMs: 4_000})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Epochs == 0 || math.IsNaN(res.MeanES) {
			t.Errorf("%s: empty result", s.Name())
		}
	}
}
