# Ah-Q reproduction build targets.
#
#   all        - tier-1 gate: build + vet + lint + test + race
#   build      - compile every package
#   vet        - go vet
#   lint       - project static analysis (cmd/ahqlint): determinism,
#                unitcheck, floatcmp, seedplumb, errwrap (docs/lint.md)
#   test       - full test suite
#   test-short - skip the long-horizon tests
#   race       - test suite under the race detector
#   bench      - run the benchmark suite and emit BENCH_<n>.json
#                (benchmark name -> ns/op, B/op, allocs/op via cmd/benchjson)
#   results    - regenerate every paper artifact into results/
#   fuzz       - fuzz the percentile estimators
#   clean      - remove generated results

GO ?= go

.PHONY: all build vet lint test test-short race bench results fuzz clean

all: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific invariants; see docs/lint.md for the analyzer list.
lint:
	$(GO) run ./cmd/ahqlint ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass; exercises the parallel experiment harness.
race:
	$(GO) test -race ./...

# One testing.B entry per paper table/figure plus the engine
# microbenchmarks; the run is summarised into the next free BENCH_<n>.json
# so successive runs accumulate a history instead of overwriting it.
bench:
	@n=1; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; \
	$(GO) test -run '^$$' -bench . -benchmem . | $(GO) run ./cmd/benchjson -o BENCH_$$n.json && \
	echo "wrote BENCH_$$n.json"

# Regenerate every paper artifact at full horizons into results/.
results:
	mkdir -p results
	$(GO) run ./cmd/ahqbench -all -csv results/csv | tee results/full_run.txt

fuzz:
	$(GO) test -fuzz FuzzP2VsExact -fuzztime 20s ./internal/metrics/
	$(GO) test -fuzz FuzzPercentile -fuzztime 20s ./internal/metrics/

clean:
	rm -rf results
