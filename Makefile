# Ah-Q reproduction build targets.

GO ?= go

.PHONY: all build vet test test-short bench results fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One testing.B entry per paper table/figure (quick horizons).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper artifact at full horizons into results/.
results:
	mkdir -p results
	$(GO) run ./cmd/ahqbench -all -csv results/csv | tee results/full_run.txt

fuzz:
	$(GO) test -fuzz FuzzP2VsExact -fuzztime 20s ./internal/metrics/
	$(GO) test -fuzz FuzzPercentile -fuzztime 20s ./internal/metrics/

clean:
	rm -rf results
