# Ah-Q reproduction build targets.

GO ?= go

.PHONY: all build vet test test-short race bench results fuzz clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass; exercises the parallel experiment harness.
race:
	$(GO) test -race ./...

# One testing.B entry per paper table/figure (quick horizons).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper artifact at full horizons into results/.
results:
	mkdir -p results
	$(GO) run ./cmd/ahqbench -all -csv results/csv | tee results/full_run.txt

fuzz:
	$(GO) test -fuzz FuzzP2VsExact -fuzztime 20s ./internal/metrics/
	$(GO) test -fuzz FuzzPercentile -fuzztime 20s ./internal/metrics/

clean:
	rm -rf results
