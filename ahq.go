// Package ahq is the public API of the Ah-Q reproduction: the system
// entropy theory (E_S) for quantifying datacenter interference, the ARQ
// scheduling strategy that uses it as a feedback signal, the baseline
// strategies it is evaluated against (Unmanaged, LC-first, PARTIES, CLITE),
// and the simulated node + workload models the evaluation runs on.
//
// # Quantifying interference
//
// Build entropy samples from measurements of any system — real or
// simulated — and fold them into a single dimensionless figure of merit:
//
//	lc := []ahq.LCSample{{Name: "xapian", IdealMs: 2.77, MeasuredMs: 6.1, TargetMs: 4.22}}
//	be := []ahq.BESample{{Name: "stream", SoloIPC: 0.60, MeasuredIPC: 0.31}}
//	elc, ebe, es, err := ahq.SystemEntropy{RI: 0.8}.Compute(lc, be)
//
// # Running a collocation under a strategy
//
//	engine, _ := ahq.NewEngine(ahq.EngineConfig{
//		Spec: ahq.DefaultSpec(),
//		Seed: 1,
//		Apps: []ahq.AppConfig{
//			ahq.LCAppAt("xapian", 0.5),
//			ahq.BEApp("stream"),
//		},
//	})
//	res, _ := ahq.Run(engine, ahq.NewARQ(), ahq.RunOptions{})
//	fmt.Println(res.MeanES, res.Yield)
//
// The subpackages under internal/ hold the implementation; this package
// re-exports the stable surface.
package ahq

import (
	"ahq/internal/cluster"
	"ahq/internal/core"
	"ahq/internal/entropy"
	"ahq/internal/machine"
	"ahq/internal/sched"
	"ahq/internal/sched/arq"
	"ahq/internal/sched/clite"
	"ahq/internal/sched/heracles"
	"ahq/internal/sched/parties"
	"ahq/internal/sched/static"
	"ahq/internal/sim"
	"ahq/internal/trace"
	"ahq/internal/workload"
)

// Entropy theory (paper Section II).
type (
	// LCSample is one latency-critical application's (TL_i0, TL_i1, M_i).
	LCSample = entropy.LCSample
	// BESample is one best-effort application's (IPC_solo, IPC_real).
	BESample = entropy.BESample
	// SystemEntropy combines class entropies with a relative importance.
	SystemEntropy = entropy.System
	// EquivalenceCurve is an empirical E_S(resource) relation.
	EquivalenceCurve = entropy.Curve
	// EquivalencePoint is one (resource, E_S) measurement.
	EquivalencePoint = entropy.Point
)

// DefaultRI is the paper's relative importance of LC over BE (0.8).
const DefaultRI = entropy.DefaultRI

// ELC returns the LC entropy (Eq. 5).
func ELC(samples []LCSample) (float64, error) { return entropy.ELC(samples) }

// EBE returns the BE entropy (Eq. 6).
func EBE(samples []BESample) (float64, error) { return entropy.EBE(samples) }

// Yield returns the ratio of satisfied LC applications.
func Yield(samples []LCSample) (float64, error) { return entropy.Yield(samples) }

// NewEquivalenceCurve builds a curve for resource-equivalence queries.
func NewEquivalenceCurve(points []EquivalencePoint) (*EquivalenceCurve, error) {
	return entropy.NewCurve(points)
}

// ResourceEquivalence is entropy.Equivalence: the resources the baseline
// curve needs beyond the better curve at equal E_S.
func ResourceEquivalence(baseline, better *EquivalenceCurve, es float64) (float64, error) {
	return entropy.Equivalence(baseline, better, es)
}

// Machine model.
type (
	// Spec is a node's capacity (cores, LLC ways, memory bandwidth).
	Spec = machine.Spec
	// Allocation partitions a node into isolated and shared regions.
	Allocation = machine.Allocation
	// Region is one resource region.
	Region = machine.Region
	// Resource identifies a schedulable resource kind.
	Resource = machine.Resource
)

// DefaultSpec returns the paper's 10-core, 20-way evaluation node.
func DefaultSpec() Spec { return machine.DefaultSpec() }

// Workloads.
type (
	// LCWorkload models a Tailbench-style latency-critical service.
	LCWorkload = workload.LCApp
	// BEWorkload models a PARSEC/STREAM-style best-effort program.
	BEWorkload = workload.BEApp
	// LoadTrace yields an LC application's offered load over time.
	LoadTrace = trace.Load
)

// LCWorkloadByName returns a calibrated catalog model ("xapian", "moses",
// "img-dnn", "masstree", "sphinx", "silo").
func LCWorkloadByName(name string) (LCWorkload, error) { return workload.LCByName(name) }

// BEWorkloadByName returns a catalog model ("fluidanimate", "stream",
// "streamcluster").
func BEWorkloadByName(name string) (BEWorkload, error) { return workload.BEByName(name) }

// ConstantLoad is a fixed load fraction.
func ConstantLoad(frac float64) LoadTrace { return trace.Constant(frac) }

// Simulation engine.
type (
	// EngineConfig configures a simulated node.
	EngineConfig = sim.Config
	// Engine simulates the node.
	Engine = sim.Engine
	// AppConfig attaches one workload to the node.
	AppConfig = sim.AppConfig
)

// NewEngine builds a simulated node.
func NewEngine(cfg EngineConfig) (*Engine, error) { return sim.New(cfg) }

// LCAppAt is a convenience constructor: a catalog LC application at a
// constant fraction of its max load. It panics on unknown names; use
// LCWorkloadByName for error handling.
func LCAppAt(name string, load float64) AppConfig {
	app := workload.MustLC(name)
	return AppConfig{LC: &app, Load: trace.Constant(load)}
}

// BEApp is a convenience constructor for a catalog BE application. It
// panics on unknown names.
func BEApp(name string) AppConfig {
	app := workload.MustBE(name)
	return AppConfig{BE: &app}
}

// Strategies.
type (
	// Strategy is a resource-scheduling policy.
	Strategy = sched.Strategy
	// Telemetry is one monitoring epoch's observation.
	Telemetry = sched.Telemetry
)

// NewARQ returns the paper's ARQ strategy with default constants.
func NewARQ() Strategy { return arq.Default() }

// NewPARTIES returns the PARTIES baseline.
func NewPARTIES() Strategy { return parties.Default() }

// NewCLITE returns the CLITE baseline with the given search seed.
func NewCLITE(seed int64) Strategy {
	cfg := clite.DefaultConfig()
	cfg.Seed = seed
	return clite.New(cfg)
}

// NewHeracles returns the Heracles-style threshold baseline (extension;
// discussed in the paper's related work).
func NewHeracles() Strategy { return heracles.Default() }

// NewUnmanaged returns the OS-default baseline (CFS, no isolation).
func NewUnmanaged() Strategy { return static.Unmanaged{} }

// NewLCFirst returns the real-time-priority baseline.
func NewLCFirst() Strategy { return static.LCFirst{} }

// Controller.
type (
	// RunOptions configure a controlled run.
	RunOptions = core.Options
	// RunResult is the outcome of a controlled run.
	RunResult = core.Result
)

// Run drives an engine under a strategy through the Ah-Q controller.
func Run(engine *Engine, strategy Strategy, opts RunOptions) (*RunResult, error) {
	return core.Run(engine, strategy, opts)
}

// Multi-node fleet (extension; see internal/cluster).
type (
	// ClusterConfig describes a homogeneous multi-node run.
	ClusterConfig = cluster.Config
	// ClusterResult aggregates per-node results and the fleet-wide E_S.
	ClusterResult = cluster.Result
)

// RunCluster drives several nodes, each under its own controller, and
// aggregates the datacenter-level entropy.
func RunCluster(cfg ClusterConfig, opts RunOptions) (*ClusterResult, error) {
	return cluster.Run(cfg, opts)
}

// BalancedPlacement spreads applications over nodes by estimated demand
// (longest-processing-time bin packing).
func BalancedPlacement(apps []AppConfig, nodes int) ([][]AppConfig, error) {
	return cluster.Balanced(apps, nodes)
}
