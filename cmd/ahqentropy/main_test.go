package main

import (
	"math"
	"strings"
	"testing"
)

const sampleCSV = `class,name,ideal_ms,measured_ms,target_ms,solo_ipc,measured_ipc
lc,xapian,2.77,6.10,4.22,,
lc,moses,2.80,3.90,10.53,,
be,stream,,,,0.60,0.31
`

func TestParseCSV(t *testing.T) {
	lc, be, err := parseCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(lc) != 2 || len(be) != 1 {
		t.Fatalf("got %d LC, %d BE", len(lc), len(be))
	}
	if lc[0].Name != "xapian" || lc[0].MeasuredMs != 6.10 {
		t.Errorf("lc[0] = %+v", lc[0])
	}
	if math.Abs(be[0].Slowdown()-0.60/0.31) > 1e-9 {
		t.Errorf("stream slowdown = %g", be[0].Slowdown())
	}
}

func TestParseCSVColumnOrderIndependent(t *testing.T) {
	csv := `name,class,target_ms,ideal_ms,measured_ms,solo_ipc,measured_ipc
xapian,lc,4.22,2.77,6.10,,
`
	lc, _, err := parseCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if len(lc) != 1 || lc[0].TargetMs != 4.22 {
		t.Fatalf("lc = %+v", lc)
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := map[string]string{
		"no rows":        "class,name\n",
		"missing header": "foo,bar\nlc,xapian\n",
		"bad class":      "class,name,ideal_ms,measured_ms,target_ms\nxx,app,1,2,3\n",
		"missing value":  "class,name,ideal_ms,measured_ms,target_ms\nlc,app,1,,3\n",
		"invalid sample": "class,name,ideal_ms,measured_ms,target_ms\nlc,app,5,6,3\n",
		"bad be":         "class,name,solo_ipc,measured_ipc\nbe,app,0,1\n",
	}
	for label, csv := range cases {
		if _, _, err := parseCSV(strings.NewReader(csv)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}
