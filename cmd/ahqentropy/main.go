// Command ahqentropy computes the system entropy report from a CSV of
// measurements, so the metric can be applied to any system — not just the
// bundled simulator.
//
// Input format (header required; class is "lc" or "be"):
//
//	class,name,ideal_ms,measured_ms,target_ms,solo_ipc,measured_ipc
//	lc,xapian,2.77,6.10,4.22,,
//	lc,moses,2.80,3.90,10.53,,
//	be,stream,,,,0.60,0.31
//
// Usage:
//
//	ahqentropy -ri 0.8 measurements.csv
//	cat measurements.csv | ahqentropy
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"ahq/internal/entropy"
)

func main() {
	ri := flag.Float64("ri", entropy.DefaultRI, "relative importance of LC applications, in [0,1]")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatalf("ahqentropy: %v", err)
		}
		defer f.Close()
		in = f
	}
	lc, be, err := parseCSV(in)
	if err != nil {
		log.Fatalf("ahqentropy: %v", err)
	}

	sys := entropy.System{RI: *ri}
	elc, ebe, es, err := sys.Compute(lc, be)
	if err != nil {
		log.Fatalf("ahqentropy: %v", err)
	}

	fmt.Printf("%-12s %8s %8s %8s %8s %8s\n", "LC app", "TL_i0", "TL_i1", "M_i", "ReT_i", "Q_i")
	for _, s := range lc {
		fmt.Printf("%-12s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			s.Name, s.IdealMs, s.MeasuredMs, s.TargetMs, s.RemainingTolerance(), s.Intolerable())
	}
	fmt.Printf("%-12s %8s %8s %8s\n", "BE app", "solo", "real", "slowdn")
	for _, s := range be {
		fmt.Printf("%-12s %8.3f %8.3f %8.3f\n", s.Name, s.SoloIPC, s.MeasuredIPC, s.Slowdown())
	}
	fmt.Printf("\nE_LC = %.4f\nE_BE = %.4f\nE_S  = %.4f (RI %.2f)\n", elc, ebe, es, *ri)
	if y, err := entropy.Yield(lc); err == nil {
		fmt.Printf("yield = %.0f%%\n", 100*y)
	}
}

// parseCSV reads the measurement file.
func parseCSV(in io.Reader) ([]entropy.LCSample, []entropy.BESample, error) {
	r := csv.NewReader(in)
	r.TrimLeadingSpace = true
	rows, err := r.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(rows) < 2 {
		return nil, nil, fmt.Errorf("need a header row and at least one measurement")
	}
	col := map[string]int{}
	for i, h := range rows[0] {
		col[strings.ToLower(strings.TrimSpace(h))] = i
	}
	for _, need := range []string{"class", "name"} {
		if _, ok := col[need]; !ok {
			return nil, nil, fmt.Errorf("missing column %q", need)
		}
	}
	get := func(row []string, name string) (float64, error) {
		i, ok := col[name]
		if !ok || i >= len(row) || strings.TrimSpace(row[i]) == "" {
			return 0, fmt.Errorf("missing value %q", name)
		}
		return strconv.ParseFloat(strings.TrimSpace(row[i]), 64)
	}
	var lc []entropy.LCSample
	var be []entropy.BESample
	for n, row := range rows[1:] {
		class := strings.ToLower(strings.TrimSpace(row[col["class"]]))
		name := strings.TrimSpace(row[col["name"]])
		switch class {
		case "lc":
			ideal, err := get(row, "ideal_ms")
			if err != nil {
				return nil, nil, fmt.Errorf("row %d (%s): %w", n+2, name, err)
			}
			meas, err := get(row, "measured_ms")
			if err != nil {
				return nil, nil, fmt.Errorf("row %d (%s): %w", n+2, name, err)
			}
			target, err := get(row, "target_ms")
			if err != nil {
				return nil, nil, fmt.Errorf("row %d (%s): %w", n+2, name, err)
			}
			s := entropy.LCSample{Name: name, IdealMs: ideal, MeasuredMs: meas, TargetMs: target}
			if err := s.Validate(); err != nil {
				return nil, nil, fmt.Errorf("row %d: %w", n+2, err)
			}
			lc = append(lc, s)
		case "be":
			solo, err := get(row, "solo_ipc")
			if err != nil {
				return nil, nil, fmt.Errorf("row %d (%s): %w", n+2, name, err)
			}
			meas, err := get(row, "measured_ipc")
			if err != nil {
				return nil, nil, fmt.Errorf("row %d (%s): %w", n+2, name, err)
			}
			s := entropy.BESample{Name: name, SoloIPC: solo, MeasuredIPC: meas}
			if err := s.Validate(); err != nil {
				return nil, nil, fmt.Errorf("row %d: %w", n+2, err)
			}
			be = append(be, s)
		default:
			return nil, nil, fmt.Errorf("row %d: class %q must be lc or be", n+2, class)
		}
	}
	return lc, be, nil
}
