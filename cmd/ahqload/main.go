// Command ahqload synthesises load-trace CSV files for replay against the
// simulator (sim via trace.ReadCSV, or ahqd's "app:@file.csv" mix syntax).
//
// Usage:
//
//	ahqload -kind fig13 > xapian.csv
//	ahqload -kind diurnal -period 120 -lo 0.1 -hi 0.9 -duration 600 > day.csv
//	ahqload -kind spike -base 0.2 -peak 0.9 -at 60 -width 30 -duration 300
//	ahqload -kind steps -levels 0.1,0.5,0.9,0.3 -hold 30
//
// Times are seconds, loads are fractions of each application's max load.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"ahq/internal/trace"
)

func main() {
	var (
		kind     = flag.String("kind", "fig13", "trace kind: fig13|diurnal|spike|steps")
		duration = flag.Float64("duration", 300, "trace length in seconds")
		period   = flag.Float64("period", 120, "diurnal period in seconds")
		lo       = flag.Float64("lo", 0.1, "diurnal low load")
		hi       = flag.Float64("hi", 0.9, "diurnal high load")
		base     = flag.Float64("base", 0.2, "spike baseline load")
		peak     = flag.Float64("peak", 0.9, "spike peak load")
		at       = flag.Float64("at", 60, "spike start in seconds")
		width    = flag.Float64("width", 30, "spike width in seconds")
		levels   = flag.String("levels", "0.1,0.5,0.9,0.3", "steps: comma-separated loads")
		hold     = flag.Float64("hold", 30, "steps: seconds per level")
		step     = flag.Float64("step", 5, "sampling interval in seconds for smooth kinds")
	)
	flag.Parse()

	profile, err := build(*kind, buildParams{
		duration: *duration, period: *period, lo: *lo, hi: *hi,
		base: *base, peak: *peak, at: *at, width: *width,
		levels: *levels, hold: *hold, step: *step,
	})
	if err != nil {
		log.Fatalf("ahqload: %v", err)
	}
	if err := profile.WriteCSV(os.Stdout); err != nil {
		log.Fatalf("ahqload: %v", err)
	}
}

type buildParams struct {
	duration, period, lo, hi float64
	base, peak, at, width    float64
	hold, step               float64
	levels                   string
}

// build synthesises the requested profile as a step trace.
func build(kind string, p buildParams) (trace.Steps, error) {
	switch kind {
	case "fig13":
		return trace.Fig13Xapian(), nil
	case "diurnal":
		if p.step <= 0 || p.duration <= 0 {
			return nil, fmt.Errorf("diurnal needs positive -step and -duration")
		}
		d := trace.Diurnal{Lo: p.lo, Hi: p.hi, PeriodMs: p.period * 1000}
		var steps []trace.Step
		for t := 0.0; t < p.duration; t += p.step {
			steps = append(steps, trace.Step{StartMs: t * 1000, Frac: d.At(t * 1000)})
		}
		return trace.NewSteps(steps...)
	case "spike":
		if p.at < 0 || p.width <= 0 {
			return nil, fmt.Errorf("spike needs -at >= 0 and -width > 0")
		}
		return trace.NewSteps(
			trace.Step{StartMs: 0, Frac: p.base},
			trace.Step{StartMs: p.at * 1000, Frac: p.peak},
			trace.Step{StartMs: (p.at + p.width) * 1000, Frac: p.base},
		)
	case "steps":
		parts := strings.Split(p.levels, ",")
		if len(parts) == 0 || p.hold <= 0 {
			return nil, fmt.Errorf("steps needs -levels and positive -hold")
		}
		var steps []trace.Step
		for i, part := range parts {
			frac, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, fmt.Errorf("bad level %q", part)
			}
			steps = append(steps, trace.Step{StartMs: float64(i) * p.hold * 1000, Frac: frac})
		}
		return trace.NewSteps(steps...)
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
