package main

import (
	"strings"
	"testing"

	"ahq/internal/trace"
)

func params() buildParams {
	return buildParams{
		duration: 300, period: 120, lo: 0.1, hi: 0.9,
		base: 0.2, peak: 0.9, at: 60, width: 30,
		levels: "0.1,0.5,0.9", hold: 30, step: 5,
	}
}

func TestBuildFig13(t *testing.T) {
	s, err := build("fig13", params())
	if err != nil {
		t.Fatal(err)
	}
	if s.At(130_000) != 0.9 {
		t.Errorf("fig13 peak = %g", s.At(130_000))
	}
}

func TestBuildSpike(t *testing.T) {
	s, err := build("spike", params())
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0) != 0.2 || s.At(70_000) != 0.9 || s.At(100_000) != 0.2 {
		t.Errorf("spike profile wrong: %g %g %g", s.At(0), s.At(70_000), s.At(100_000))
	}
}

func TestBuildSteps(t *testing.T) {
	s, err := build("steps", params())
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0) != 0.1 || s.At(35_000) != 0.5 || s.At(65_000) != 0.9 {
		t.Errorf("steps profile wrong")
	}
}

func TestBuildDiurnalRoundTrips(t *testing.T) {
	s, err := build("diurnal", params())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0, 60_000, 150_000} {
		if s.At(tm) != back.At(tm) {
			t.Errorf("round trip differs at %g", tm)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("nope", params()); err == nil {
		t.Error("unknown kind accepted")
	}
	p := params()
	p.levels = "xx"
	if _, err := build("steps", p); err == nil {
		t.Error("bad level accepted")
	}
	p = params()
	p.width = 0
	if _, err := build("spike", p); err == nil {
		t.Error("zero-width spike accepted")
	}
	p = params()
	p.step = 0
	if _, err := build("diurnal", p); err == nil {
		t.Error("zero-step diurnal accepted")
	}
}
