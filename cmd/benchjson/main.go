// Command benchjson converts `go test -bench` output into a stable JSON
// artifact: benchmark name → ns/op, B/op, allocs/op. The Makefile's bench
// target pipes into it to produce the repo's BENCH_<n>.json files.
//
// With -count>1 runs, the per-benchmark median is reported (lower-middle
// for even counts, so the value is always one that was actually measured).
// An optional -before file — a previous benchjson artifact — adds
// before_ns_per_op and speedup fields, which is how before/after
// comparisons are recorded.
//
//	go test -run '^$' -bench . -benchmem -count 6 . | benchjson -o BENCH_1.json
//
// -in replays an already-written artifact instead of reading stdin, and
// -gate name=pct exits nonzero when that benchmark's median ns/op sits more
// than pct percent above its -before value — the CI bench-regression smoke:
//
//	benchjson -in BENCH_2.json -before BENCH_1.json -gate BenchmarkHeadline=20
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's aggregated result.
type Entry struct {
	NsPerOp       float64  `json:"ns_per_op"`
	BPerOp        *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp   *float64 `json:"allocs_per_op,omitempty"`
	Samples       int      `json:"samples"`
	BeforeNsPerOp *float64 `json:"before_ns_per_op,omitempty"`
	Speedup       *float64 `json:"speedup,omitempty"`
}

// Artifact is the emitted file: a schema tag plus name → entry.
type Artifact struct {
	Schema     string           `json:"schema"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches one result line, e.g.
//
//	BenchmarkEngineTick-8   1537214   782.3 ns/op   253 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+(.*)$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	before := flag.String("before", "", "previous benchjson artifact to compare against")
	in := flag.String("in", "", "replay an existing artifact instead of reading bench output on stdin")
	gate := flag.String("gate", "", "name=pct: fail if that benchmark's ns/op exceeds its -before value by more than pct percent")
	flag.Parse()

	var prior map[string]Entry
	if *before != "" {
		prior = loadArtifact(*before).Benchmarks
	}

	art := Artifact{Schema: "ahq-bench-v1", Benchmarks: map[string]Entry{}}
	if *in != "" {
		art.Benchmarks = loadArtifact(*in).Benchmarks
		for name, e := range art.Benchmarks {
			e.BeforeNsPerOp, e.Speedup = nil, nil
			if p, ok := prior[name]; ok && e.NsPerOp > 0 {
				e.BeforeNsPerOp = ptr(p.NsPerOp)
				e.Speedup = ptr(math.Round(p.NsPerOp/e.NsPerOp*100) / 100)
			}
			art.Benchmarks[name] = e
		}
	} else {
		samples := map[string]map[string][]float64{}
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			m := benchLine.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			name, metrics := m[1], strings.Fields(m[2])
			for i := 0; i+1 < len(metrics); i += 2 {
				v, err := strconv.ParseFloat(metrics[i], 64)
				if err != nil {
					continue
				}
				if samples[name] == nil {
					samples[name] = map[string][]float64{}
				}
				unit := metrics[i+1]
				samples[name][unit] = append(samples[name][unit], v)
			}
		}
		if err := sc.Err(); err != nil {
			fatal(err)
		}
		if len(samples) == 0 {
			fatal(fmt.Errorf("no benchmark result lines on stdin"))
		}
		for name, units := range samples {
			ns, ok := units["ns/op"]
			if !ok {
				continue
			}
			e := Entry{NsPerOp: median(ns), Samples: len(ns)}
			if b, ok := units["B/op"]; ok {
				e.BPerOp = ptr(median(b))
			}
			if a, ok := units["allocs/op"]; ok {
				e.AllocsPerOp = ptr(median(a))
			}
			if p, ok := prior[name]; ok && e.NsPerOp > 0 {
				e.BeforeNsPerOp = ptr(p.NsPerOp)
				e.Speedup = ptr(math.Round(p.NsPerOp/e.NsPerOp*100) / 100)
			}
			art.Benchmarks[name] = e
		}
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	switch {
	case *out == "":
		os.Stdout.Write(data)
	case *out != os.DevNull:
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
	}

	if *gate != "" {
		if err := checkGate(*gate, art.Benchmarks, prior); err != nil {
			fatal(err)
		}
	}
}

// checkGate enforces a name=pct regression bound against the -before file.
// A missing benchmark on either side is a hard failure: a gate that cannot
// find its subject must not pass silently.
func checkGate(spec string, now, prior map[string]Entry) error {
	name, pctStr, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("-gate wants name=pct, got %q", spec)
	}
	pct, err := strconv.ParseFloat(pctStr, 64)
	if err != nil || pct < 0 {
		return fmt.Errorf("-gate percentage %q is not a non-negative number", pctStr)
	}
	if prior == nil {
		return fmt.Errorf("-gate requires -before")
	}
	cur, ok := now[name]
	if !ok {
		return fmt.Errorf("gate benchmark %s missing from this run", name)
	}
	old, ok := prior[name]
	if !ok {
		return fmt.Errorf("gate benchmark %s missing from -before artifact", name)
	}
	limit := old.NsPerOp * (1 + pct/100)
	if cur.NsPerOp > limit {
		return fmt.Errorf("%s regressed: %.0f ns/op vs %.0f before (bound %.0f, +%g%%)",
			name, cur.NsPerOp, old.NsPerOp, limit, pct)
	}
	fmt.Fprintf(os.Stderr, "benchjson: gate ok: %s %.0f ns/op vs %.0f before (bound %.0f)\n",
		name, cur.NsPerOp, old.NsPerOp, limit)
	return nil
}

func loadArtifact(path string) Artifact {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return a
}

// median returns the lower-middle order statistic, so the reported value is
// always one that was actually measured.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

func ptr(v float64) *float64 { return &v }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
