// Command benchjson converts `go test -bench` output into a stable JSON
// artifact: benchmark name → ns/op, B/op, allocs/op. The Makefile's bench
// target pipes into it to produce the repo's BENCH_<n>.json files.
//
// With -count>1 runs, the per-benchmark median is reported (lower-middle
// for even counts, so the value is always one that was actually measured).
// An optional -before file — a previous benchjson artifact — adds
// before_ns_per_op and speedup fields, which is how before/after
// comparisons are recorded.
//
//	go test -run '^$' -bench . -benchmem -count 6 . | benchjson -o BENCH_1.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's aggregated result.
type Entry struct {
	NsPerOp       float64  `json:"ns_per_op"`
	BPerOp        *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp   *float64 `json:"allocs_per_op,omitempty"`
	Samples       int      `json:"samples"`
	BeforeNsPerOp *float64 `json:"before_ns_per_op,omitempty"`
	Speedup       *float64 `json:"speedup,omitempty"`
}

// Artifact is the emitted file: a schema tag plus name → entry.
type Artifact struct {
	Schema     string           `json:"schema"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches one result line, e.g.
//
//	BenchmarkEngineTick-8   1537214   782.3 ns/op   253 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+(.*)$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	before := flag.String("before", "", "previous benchjson artifact to compare against")
	flag.Parse()

	samples := map[string]map[string][]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, metrics := m[1], strings.Fields(m[2])
		for i := 0; i+1 < len(metrics); i += 2 {
			v, err := strconv.ParseFloat(metrics[i], 64)
			if err != nil {
				continue
			}
			if samples[name] == nil {
				samples[name] = map[string][]float64{}
			}
			unit := metrics[i+1]
			samples[name][unit] = append(samples[name][unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}

	var prior map[string]Entry
	if *before != "" {
		data, err := os.ReadFile(*before)
		if err != nil {
			fatal(err)
		}
		var a Artifact
		if err := json.Unmarshal(data, &a); err != nil {
			fatal(fmt.Errorf("%s: %w", *before, err))
		}
		prior = a.Benchmarks
	}

	art := Artifact{Schema: "ahq-bench-v1", Benchmarks: map[string]Entry{}}
	for name, units := range samples {
		ns, ok := units["ns/op"]
		if !ok {
			continue
		}
		e := Entry{NsPerOp: median(ns), Samples: len(ns)}
		if b, ok := units["B/op"]; ok {
			e.BPerOp = ptr(median(b))
		}
		if a, ok := units["allocs/op"]; ok {
			e.AllocsPerOp = ptr(median(a))
		}
		if p, ok := prior[name]; ok && e.NsPerOp > 0 {
			e.BeforeNsPerOp = ptr(p.NsPerOp)
			e.Speedup = ptr(math.Round(p.NsPerOp/e.NsPerOp*100) / 100)
		}
		art.Benchmarks[name] = e
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

// median returns the lower-middle order statistic, so the reported value is
// always one that was actually measured.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

func ptr(v float64) *float64 { return &v }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
