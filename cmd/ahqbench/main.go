// Command ahqbench regenerates the paper's tables and figures on the
// simulated node.
//
// Usage:
//
//	ahqbench -list
//	ahqbench -run table2
//	ahqbench -run fig8 -seed 7
//	ahqbench -all
//
// Output is plain text; heatmap/timeline experiments additionally emit CSV
// rows suitable for plotting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ahq/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiment ids and exit")
		runID  = flag.String("run", "", "experiment id to run (see -list)")
		all    = flag.Bool("all", false, "run every experiment")
		seed   = flag.Int64("seed", 42, "simulation seed")
		quick  = flag.Bool("quick", false, "short horizons (smoke test)")
		csvDir = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	if *list {
		for _, d := range experiments.All() {
			fmt.Printf("%-10s %s\n", d.ID, d.Title)
		}
		return
	}

	cfg := experiments.RunConfig{Seed: *seed, Quick: *quick}
	var ids []string
	switch {
	case *all:
		for _, d := range experiments.All() {
			ids = append(ids, d.ID)
		}
	case *runID != "":
		ids = []string{*runID}
	default:
		fmt.Fprintln(os.Stderr, "ahqbench: need -run <id>, -all or -list")
		flag.Usage()
		os.Exit(2)
	}

	if err := runAll(os.Stdout, ids, cfg, *csvDir); err != nil {
		fmt.Fprintf(os.Stderr, "ahqbench: %v\n", err)
		os.Exit(1)
	}
}

// runAll executes the experiments in order, printing each result (and CSV
// files when csvDir is set) to w.
func runAll(w io.Writer, ids []string, cfg experiments.RunConfig, csvDir string) error {
	for _, id := range ids {
		d, ok := experiments.Lookup(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", id)
		}
		start := time.Now()
		res, err := d.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		res.Fprint(w)
		if csvDir != "" {
			files, err := res.SaveCSVs(csvDir)
			if err != nil {
				return fmt.Errorf("%s: csv: %w", id, err)
			}
			fmt.Fprintf(w, "(csv: %s)\n", strings.Join(files, ", "))
		}
		fmt.Fprintf(w, "(%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
