// Command ahqbench regenerates the paper's tables and figures on the
// simulated node.
//
// Usage:
//
//	ahqbench -list
//	ahqbench -run table2
//	ahqbench -run fig8 -seed 7
//	ahqbench -all
//	ahqbench -all -parallel 8
//
// Output is plain text; heatmap/timeline experiments additionally emit CSV
// rows suitable for plotting. Each experiment fans its independent
// simulation runs out over -parallel workers (NumCPU by default) and
// reassembles them in declaration order, so stdout is byte-identical at
// every parallelism level; timings are printed to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ahq/internal/experiments"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiment ids and exit")
		runID     = flag.String("run", "", "experiment id to run (see -list)")
		all       = flag.Bool("all", false, "run every experiment")
		seed      = flag.Int64("seed", 42, "simulation seed")
		quick     = flag.Bool("quick", false, "short horizons (smoke test)")
		csvDir    = flag.String("csv", "", "also write each table as CSV into this directory")
		parallel  = flag.Int("parallel", 0, "simulation runs to execute concurrently per experiment (0 = NumCPU, 1 = sequential); output is identical at any level")
		nodeCache = flag.Bool("fleet-node-cache", true, "share completed node simulations across the ext-fleet sweep's placements (bit-exact; disable to benchmark the uncached path)")
	)
	flag.Parse()

	if *list {
		for _, d := range experiments.All() {
			fmt.Printf("%-10s %s\n", d.ID, d.Title)
		}
		return
	}

	cfg := experiments.RunConfig{Seed: *seed, Quick: *quick, Parallel: *parallel, FleetNodeCacheOff: !*nodeCache}
	var ids []string
	switch {
	case *all:
		for _, d := range experiments.All() {
			ids = append(ids, d.ID)
		}
	case *runID != "":
		ids = []string{*runID}
	default:
		fmt.Fprintln(os.Stderr, "ahqbench: need -run <id>, -all or -list")
		flag.Usage()
		os.Exit(2)
	}

	if err := runAll(os.Stdout, os.Stderr, ids, cfg, *csvDir); err != nil {
		fmt.Fprintf(os.Stderr, "ahqbench: %v\n", err)
		os.Exit(1)
	}
}

// runAll executes the experiments in order, printing each result (and CSV
// files when csvDir is set) to w. Per-experiment wall-clock timings go to
// timings so that w stays byte-identical across runs and -parallel levels.
func runAll(w, timings io.Writer, ids []string, cfg experiments.RunConfig, csvDir string) error {
	for _, id := range ids {
		d, ok := experiments.Lookup(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", id)
		}
		start := time.Now() //ahqlint:allow detflow wall-clock timing goes to stderr only; stdout stays deterministic
		res, err := d.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		res.Fprint(w)
		if csvDir != "" {
			files, err := res.SaveCSVs(csvDir)
			if err != nil {
				return fmt.Errorf("%s: csv: %w", id, err)
			}
			fmt.Fprintf(w, "(csv: %s)\n", strings.Join(files, ", "))
		}
		fmt.Fprintln(w)
		//ahqlint:allow detflow wall-clock timing goes to stderr only; stdout stays deterministic
		fmt.Fprintf(timings, "(%s finished in %v)\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
