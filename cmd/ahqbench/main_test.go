package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ahq/internal/experiments"
)

func TestRunAllUnknownID(t *testing.T) {
	var b strings.Builder
	err := runAll(&b, io.Discard, []string{"nope"}, experiments.RunConfig{Seed: 1, Quick: true}, "")
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunAllFig4(t *testing.T) {
	var b, timings strings.Builder
	if err := runAll(&b, &timings, []string{"fig4"}, experiments.RunConfig{Seed: 1, Quick: true}, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fig4", "isolated to LC1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Wall-clock timings go to the timings writer, not the result stream,
	// so the result stream stays reproducible.
	if !strings.Contains(timings.String(), "finished in") {
		t.Errorf("timings missing duration line: %q", timings.String())
	}
	if strings.Contains(out, "finished in") {
		t.Error("result stream contains wall-clock timing")
	}
}

func TestRunAllWithCSV(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := runAll(&b, io.Discard, []string{"fig4"}, experiments.RunConfig{Seed: 1, Quick: true}, dir); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "fig4_*.csv"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no CSV written (%v)", err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "scheme") {
		t.Errorf("csv content: %q", data)
	}
}

// TestRunAllDeterministicAcrossParallelism is the -all -quick determinism
// gate: the full experiment suite must render byte-identical output at
// -parallel 1 and -parallel 8 for the same seed.
func TestRunAllDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full -all -quick suite twice; not -short")
	}
	var ids []string
	for _, d := range experiments.All() {
		ids = append(ids, d.ID)
	}
	render := func(parallel int) string {
		var b strings.Builder
		cfg := experiments.RunConfig{Seed: 42, Quick: true, Parallel: parallel}
		if err := runAll(&b, io.Discard, ids, cfg, ""); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return b.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("-all -quick output differs between -parallel 1 and -parallel 8; first differing line:\n%s",
			firstDiffLine(seq, par))
	}
}

// firstDiffLine locates the first line where two renderings diverge.
func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "seq: " + al[i] + "\npar: " + bl[i]
		}
	}
	return "(outputs are prefixes of each other)"
}
