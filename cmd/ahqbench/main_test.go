package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ahq/internal/experiments"
)

func TestRunAllUnknownID(t *testing.T) {
	var b strings.Builder
	err := runAll(&b, []string{"nope"}, experiments.RunConfig{Seed: 1, Quick: true}, "")
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunAllFig4(t *testing.T) {
	var b strings.Builder
	if err := runAll(&b, []string{"fig4"}, experiments.RunConfig{Seed: 1, Quick: true}, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fig4", "isolated to LC1", "finished in"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllWithCSV(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := runAll(&b, []string{"fig4"}, experiments.RunConfig{Seed: 1, Quick: true}, dir); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "fig4_*.csv"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no CSV written (%v)", err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "scheme") {
		t.Errorf("csv content: %q", data)
	}
}
