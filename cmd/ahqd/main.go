// Command ahqd runs the Ah-Q controller as a daemon over a simulated node
// and exposes its state through an HTTP JSON API — the deployment shape a
// production Ah-Q would have, with the simulator standing in for the
// RDT-capable host.
//
// Usage:
//
//	ahqd -listen :8080 -strategy arq -mix xapian:0.5,moses:0.2,img-dnn:0.2+stream
//
// Endpoints:
//
//	GET /v1/status      controller status: epoch, entropies, mean E_S
//	GET /v1/telemetry   last epoch's per-application windows
//	GET /v1/allocation  current allocation and its RDT (CAT/MBA) plan
//	GET /v1/entropy     last epoch's entropy report
//	GET /v1/contention  per-application cores/ways/slowdown snapshot
//	GET /v1/history     ring buffer of the last 256 epochs
//	GET /metrics        Prometheus text exposition of the same signals
//	POST /v1/load?app=xapian&frac=0.7   change an application's offered load
//
// An LC load of the form "@file.csv" in -mix replays a recorded trace
// (see cmd/ahqload). The daemon advances simulated time in real time (one
// 500 ms epoch per 500 ms of wall clock) unless -fast is given, in which
// case it free-runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"ahq/internal/core"
	"ahq/internal/entropy"
	"ahq/internal/faults"
	"ahq/internal/machine"
	"ahq/internal/rdt"
	"ahq/internal/sched"
	"ahq/internal/sched/arq"
	"ahq/internal/sched/clite"
	"ahq/internal/sched/heracles"
	"ahq/internal/sched/parties"
	"ahq/internal/sched/static"
	"ahq/internal/sim"
	"ahq/internal/trace"
	"ahq/internal/units"
	"ahq/internal/workload"
)

func main() {
	var (
		listen  = flag.String("listen", ":8080", "HTTP listen address")
		strat   = flag.String("strategy", "arq", "strategy: arq|parties|clite|heracles|unmanaged|lc-first")
		mix     = flag.String("mix", "xapian:0.5,moses:0.2,img-dnn:0.2+stream", "workload mix: lc:load,...+be,...")
		seed    = flag.Int64("seed", 1, "simulation seed")
		epochMs = flag.Float64("epoch", 500, "monitoring interval in ms")
		fast    = flag.Bool("fast", false, "free-run instead of real time")
		ri      = flag.Float64("ri", entropy.DefaultRI, "relative importance of LC applications")

		chaosPlan = flag.String("chaos-plan", "", "fault plan spec (kind@epoch[xN|+],... with kinds apply|drop|stale|nan|panic)")
		chaosSeed = flag.Int64("chaos-seed", 0, "generate a random fault plan from this seed (0 = no faults; -chaos-plan wins)")
		fleetPlan = flag.String("fleet-plan", "", "fleet fault plan spec (crash|degrade|blackout@epoch[xN|+]) applied to this node as a one-node fleet")
	)
	flag.Parse()

	plan, err := faults.Parse(*chaosPlan)
	if err != nil {
		log.Fatalf("ahqd: %v", err)
	}
	if plan.Empty() && *chaosSeed != 0 {
		// Schedule the generated faults over the first minute of epochs.
		plan = faults.Generate(*chaosSeed, 120)
	}
	fp, err := faults.ParseFleet(*fleetPlan)
	if err != nil {
		log.Fatalf("ahqd: %v", err)
	}
	// The daemon is a one-node fleet: resolving over n=1 pins every event
	// to this node (and rejects selectors that name anything else).
	fp, err = fp.Resolve(*seed, 1)
	if err != nil {
		log.Fatalf("ahqd: %v", err)
	}

	d, err := newDaemon(*strat, *mix, *seed, *epochMs, *ri, plan, fp)
	if err != nil {
		log.Fatalf("ahqd: %v", err)
	}
	if !plan.Empty() {
		log.Printf("ahqd: chaos plan active: %s", plan)
	}
	if !fp.Empty() {
		log.Printf("ahqd: fleet plan active: %s", fp)
	}
	go d.loop(*fast)

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", d.handleStatus)
	mux.HandleFunc("/v1/telemetry", d.handleTelemetry)
	mux.HandleFunc("/v1/allocation", d.handleAllocation)
	mux.HandleFunc("/v1/entropy", d.handleEntropy)
	mux.HandleFunc("/v1/contention", d.handleContention)
	mux.HandleFunc("/v1/history", d.handleHistory)
	mux.HandleFunc("/v1/load", d.handleLoad)
	mux.HandleFunc("/metrics", d.handleMetrics)
	log.Printf("ahqd: %s strategy on %s, serving %s", *strat, *mix, *listen)
	log.Fatal(http.ListenAndServe(*listen, mux))
}

// mutableLoad is a trace the daemon can retarget at runtime.
type mutableLoad struct {
	mu   sync.RWMutex
	frac float64
}

func (m *mutableLoad) At(float64) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.frac
}

func (m *mutableLoad) Set(frac float64) {
	m.mu.Lock()
	m.frac = frac
	m.mu.Unlock()
}

// historyLen bounds the in-memory epoch ring buffer served by /v1/history.
const historyLen = 256

// epochSummary is one epoch's compact record for the history endpoint.
type epochSummary struct {
	Epoch      int     `json:"epoch"`
	SimMs      float64 `json:"sim_ms"`
	ELC        float64 `json:"e_lc"`
	EBE        float64 `json:"e_be"`
	ES         float64 `json:"e_s"`
	Violations int     `json:"violations"`
	Allocation string  `json:"allocation"`
}

type daemon struct {
	mu       sync.Mutex
	engine   *sim.Engine
	node     core.Engine
	host     rdt.Host
	fhost    *faults.Host
	strategy sched.Strategy
	sys      entropy.System
	epochMs  float64
	loads    map[string]*mutableLoad

	epoch     int
	lastTel   sched.Telemetry
	lastELC   float64
	lastEBE   float64
	lastES    float64
	sumES     float64
	measured  int
	incidents int
	degraded  int
	history   []epochSummary

	// Fleet-plan state: the daemon is a one-node fleet, so crash events
	// freeze the node (down counts, no strategy turn) and blackout events
	// drop its telemetry. Degrades are logged and ignored — the engine's
	// capacity is fixed at construction.
	fleetPlan  *faults.FleetPlan
	appCount   int
	wasDown    bool
	failed     bool
	downEpochs int
	evictions  int
}

// newDaemon builds the controller stack; a non-empty fault plan wraps the
// node, the host and the strategy with the injector so the daemon's
// degradation paths can be exercised end to end.
func newDaemon(stratName, mix string, seed int64, epochMs, ri float64, plan *faults.Plan, fleet *faults.FleetPlan) (*daemon, error) {
	apps, loads, err := parseMix(mix)
	if err != nil {
		return nil, err
	}
	engine, err := sim.New(sim.Config{Spec: machine.DefaultSpec(), Seed: seed, Apps: apps})
	if err != nil {
		return nil, err
	}
	strategy, err := makeStrategy(stratName, seed)
	if err != nil {
		return nil, err
	}
	d := &daemon{
		engine:    engine,
		node:      engine,
		host:      rdt.NewSimHost(engine),
		strategy:  strategy,
		sys:       entropy.System{RI: ri},
		epochMs:   epochMs,
		loads:     loads,
		fleetPlan: fleet,
		appCount:  len(apps),
	}
	if !fleet.Empty() {
		for _, ev := range fleet.Events {
			if ev.Kind == faults.NodeDegrade {
				log.Printf("ahqd: fleet plan degrade %s ignored: a live node cannot shrink its machine spec", ev)
			}
		}
	}
	if !plan.Empty() {
		inj := faults.NewInjector(plan)
		d.node = inj.Engine(engine)
		d.fhost = inj.Host(rdt.NewSimHost(engine))
		// The initial apply below predates epoch 0; plans only schedule
		// faults from epoch 0 on, so the daemon always comes up healthy.
		d.fhost.SetEpoch(-1)
		d.host = d.fhost
		d.strategy = inj.Strategy(strategy)
	}
	if err := d.host.Apply(d.strategy.Init(engine.Spec(), engine.AppSpecs())); err != nil {
		return nil, err
	}
	return d, nil
}

func makeStrategy(name string, seed int64) (sched.Strategy, error) {
	switch name {
	case "arq":
		return arq.Default(), nil
	case "parties":
		return parties.Default(), nil
	case "clite":
		cfg := clite.DefaultConfig()
		cfg.Seed = seed
		return clite.New(cfg), nil
	case "heracles":
		return heracles.Default(), nil
	case "unmanaged":
		return static.Unmanaged{}, nil
	case "lc-first":
		return static.LCFirst{}, nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", name)
	}
}

// parseMix parses "xapian:0.5,moses:0.2+stream,fluidanimate". An LC load
// of the form "@file.csv" replays a recorded load trace (trace.ReadCSV
// format) instead of holding a constant; such applications cannot be
// retargeted via /v1/load.
func parseMix(s string) ([]sim.AppConfig, map[string]*mutableLoad, error) {
	lcPart := s
	bePart := ""
	if i := strings.IndexByte(s, '+'); i >= 0 {
		lcPart, bePart = s[:i], s[i+1:]
	}
	var apps []sim.AppConfig
	loads := map[string]*mutableLoad{}
	for _, item := range strings.Split(lcPart, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, fracStr, ok := strings.Cut(item, ":")
		if !ok {
			return nil, nil, fmt.Errorf("LC app %q needs name:load", item)
		}
		app, err := workload.LCByName(name)
		if err != nil {
			return nil, nil, err
		}
		if path, isTrace := strings.CutPrefix(fracStr, "@"); isTrace {
			f, err := os.Open(path)
			if err != nil {
				return nil, nil, fmt.Errorf("LC app %q: %w", name, err)
			}
			profile, err := trace.ReadCSV(f)
			f.Close()
			if err != nil {
				return nil, nil, fmt.Errorf("LC app %q: %w", name, err)
			}
			apps = append(apps, sim.AppConfig{LC: &app, Load: profile})
			continue
		}
		frac, err := strconv.ParseFloat(fracStr, 64)
		if err != nil || frac < 0 || frac > 1 {
			return nil, nil, fmt.Errorf("LC app %q: bad load %q", name, fracStr)
		}
		ld := &mutableLoad{frac: frac}
		loads[name] = ld
		apps = append(apps, sim.AppConfig{LC: &app, Load: ld})
	}
	for _, name := range strings.Split(bePart, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		app, err := workload.BEByName(name)
		if err != nil {
			return nil, nil, err
		}
		apps = append(apps, sim.AppConfig{BE: &app})
	}
	if len(apps) == 0 {
		return nil, nil, fmt.Errorf("empty mix %q", s)
	}
	return apps, loads, nil
}

// loop advances one monitoring epoch at a time.
func (d *daemon) loop(fast bool) {
	interval := units.MsToDuration(d.epochMs)
	for {
		if !fast {
			time.Sleep(interval)
		}
		d.stepEpoch()
	}
}

// decideSafe isolates Decide the way core.Run does: a panicking strategy
// loses its turn instead of taking the daemon down.
func decideSafe(s sched.Strategy, t sched.Telemetry, cur machine.Allocation) (next machine.Allocation, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprint(r)
		}
	}()
	return s.Decide(t, cur), ""
}

// blackoutAt reports whether the fleet plan blacks out this node's
// telemetry at the given epoch.
func (d *daemon) blackoutAt(epoch int) bool {
	if d.fleetPlan.Empty() {
		return false
	}
	for _, ev := range d.fleetPlan.Events {
		if ev.Kind == faults.NodeBlackout && ev.ActiveAt(epoch) && ev.Hits(0) {
			return true
		}
	}
	return false
}

func (d *daemon) stepEpoch() {
	d.mu.Lock()
	defer d.mu.Unlock()
	// A fleet-plan crash freezes the node: no simulated time, no telemetry,
	// no strategy turn — only the down accounting the fleet engine keeps.
	if d.fleetPlan.DownAt(0, d.epoch) {
		if !d.wasDown {
			log.Printf("ahqd: fleet plan crashed the node at epoch %d", d.epoch)
			d.failed = true
			d.wasDown = true
			d.evictions += d.appCount
		}
		d.downEpochs++
		d.degraded++
		d.history = append(d.history, epochSummary{
			Epoch:      d.epoch,
			SimMs:      d.engine.NowMs(),
			ELC:        -1,
			EBE:        -1,
			ES:         -1,
			Allocation: d.engine.Allocation().String(),
		})
		if len(d.history) > historyLen {
			d.history = d.history[len(d.history)-historyLen:]
		}
		d.epoch++
		return
	}
	if d.wasDown {
		log.Printf("ahqd: node restarted at epoch %d after %d down epochs", d.epoch, d.downEpochs)
		d.wasDown = false
	}
	epochOK := true
	windows := d.node.RunWindow(d.epochMs)
	if d.blackoutAt(d.epoch) {
		// Whole-node telemetry blackout: the node keeps running but the
		// controller sees nothing this epoch.
		windows = nil
	}
	tel := sched.Telemetry{TimeMs: d.node.NowMs(), Epoch: d.epoch, Apps: windows}
	if len(windows) == 0 {
		// Dropped telemetry: hold the previous observation rather than
		// deciding on nothing.
		log.Printf("ahqd: telemetry dropped at epoch %d, holding previous window", d.epoch)
		tel.Apps = d.lastTel.Apps
		tel.TimeMs = d.lastTel.TimeMs
		tel.ELC, tel.EBE, tel.ES = d.lastELC, d.lastEBE, d.lastES
		d.incidents++
		epochOK = false
	} else {
		lc, be := core.SamplesFromWindows(windows)
		if elc, ebe, es, err := d.sys.Compute(lc, be); err == nil {
			tel.ELC, tel.EBE, tel.ES = elc, ebe, es
			d.lastELC, d.lastEBE, d.lastES = elc, ebe, es
			d.sumES += es
			d.measured++
		} else {
			tel.ELC, tel.EBE, tel.ES = math.NaN(), math.NaN(), math.NaN()
		}
	}
	tel.TelemetryOK = epochOK
	d.lastTel = tel
	// The engine reuses the slice behind RunWindow's result on the next
	// call; lastTel outlives this epoch (the HTTP handlers read it), so it
	// needs its own copy.
	d.lastTel.Apps = append([]sched.AppWindow(nil), tel.Apps...)
	violations := 0
	for _, w := range tel.Apps {
		if w.Violates() {
			violations++
		}
	}
	if d.fhost != nil {
		d.fhost.SetEpoch(d.epoch)
	}
	next, panicMsg := decideSafe(d.strategy, tel, d.engine.Allocation())
	if panicMsg != "" {
		log.Printf("ahqd: strategy panicked at epoch %d, holding allocation: %s", d.epoch, panicMsg)
		d.incidents++
		epochOK = false
		next = d.engine.Allocation()
	}
	if err := d.host.Apply(next); err != nil {
		// The host rejects atomically, so the previous allocation is
		// still in force; hold it and carry on.
		log.Printf("ahqd: allocation rejected at epoch %d: %v", d.epoch, err)
		d.incidents++
		epochOK = false
	}
	if !epochOK {
		d.degraded++
	}
	d.history = append(d.history, epochSummary{
		Epoch:      d.epoch,
		SimMs:      d.engine.NowMs(),
		ELC:        sanitize(tel.ELC),
		EBE:        sanitize(tel.EBE),
		ES:         sanitize(tel.ES),
		Violations: violations,
		Allocation: d.engine.Allocation().String(),
	})
	if len(d.history) > historyLen {
		d.history = d.history[len(d.history)-historyLen:]
	}
	d.epoch++
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (d *daemon) handleStatus(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	defer d.mu.Unlock()
	mean := 0.0
	if d.measured > 0 {
		mean = d.sumES / float64(d.measured)
	}
	writeJSON(w, map[string]interface{}{
		"strategy":        d.strategy.Name(),
		"epoch":           d.epoch,
		"sim_ms":          d.engine.NowMs(),
		"e_lc":            d.lastELC,
		"e_be":            d.lastEBE,
		"e_s":             d.lastES,
		"mean_e_s":        mean,
		"incidents":       d.incidents,
		"degraded_epochs": d.degraded,
		"failed_nodes":    boolToInt(d.failed),
		"down_epochs":     d.downEpochs,
		"evictions":       d.evictions,
	})
}

func (d *daemon) handleTelemetry(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	defer d.mu.Unlock()
	type appJSON struct {
		Name      string  `json:"name"`
		Class     string  `json:"class"`
		P95Ms     float64 `json:"p95_ms,omitempty"`
		TargetMs  float64 `json:"target_ms,omitempty"`
		QueueLen  int     `json:"queue_len,omitempty"`
		Completed int     `json:"completed,omitempty"`
		Dropped   int     `json:"dropped,omitempty"`
		IPC       float64 `json:"ipc,omitempty"`
		SoloIPC   float64 `json:"solo_ipc,omitempty"`
	}
	var out []appJSON
	for _, a := range d.lastTel.Apps {
		j := appJSON{Name: a.Spec.Name, Class: a.Spec.Class.String()}
		if a.Spec.Class == workload.LC {
			j.P95Ms, j.TargetMs = sanitize(a.P95Ms), a.Spec.QoSTargetMs
			j.QueueLen, j.Completed, j.Dropped = a.QueueLen, a.Completed, a.Dropped
		} else {
			j.IPC, j.SoloIPC = a.IPC, a.Spec.SoloIPC
		}
		out = append(out, j)
	}
	writeJSON(w, out)
}

func (d *daemon) handleAllocation(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	alloc := d.engine.Allocation()
	spec := d.engine.Spec()
	d.mu.Unlock()
	plan, err := rdt.BuildPlan(spec, alloc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]interface{}{
		"allocation": alloc.String(),
		"rdt_plan":   plan.String(),
	})
}

func (d *daemon) handleEntropy(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	defer d.mu.Unlock()
	writeJSON(w, map[string]interface{}{
		"e_lc": sanitize(d.lastELC),
		"e_be": sanitize(d.lastEBE),
		"e_s":  sanitize(d.lastES),
		"ri":   d.sys.RI,
	})
}

func (d *daemon) handleContention(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	snap := d.engine.Contention()
	d.mu.Unlock()
	type conJSON struct {
		Name            string  `json:"name"`
		Class           string  `json:"class"`
		ActiveThreads   int     `json:"active_threads"`
		IsolatedCores   int     `json:"isolated_cores"`
		SharedShare     float64 `json:"shared_share"`
		TotalCoreShare  float64 `json:"total_core_share"`
		EffectiveWays   float64 `json:"effective_ways"`
		Slowdown        float64 `json:"slowdown"`
		DispatchDelayMs float64 `json:"dispatch_delay_ms"`
		QueueLen        int     `json:"queue_len"`
	}
	out := make([]conJSON, 0, len(snap))
	for _, c := range snap {
		out = append(out, conJSON{
			Name: c.Name, Class: c.Class.String(),
			ActiveThreads: c.ActiveThreads, IsolatedCores: c.IsolatedCores,
			SharedShare: c.SharedShare, TotalCoreShare: c.TotalCoreShare,
			EffectiveWays: c.EffectiveWays, Slowdown: c.Slowdown,
			DispatchDelayMs: c.DispatchDelayMs, QueueLen: c.QueueLen,
		})
	}
	writeJSON(w, out)
}

// handleMetrics exposes the entropy signals and per-application telemetry
// in Prometheus text exposition format, so a scraper can chart the
// controller the way the paper's Fig. 13 does.
func (d *daemon) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP ahq_entropy System entropy components (dimensionless, 0-1).\n")
	fmt.Fprintf(w, "# TYPE ahq_entropy gauge\n")
	fmt.Fprintf(w, "ahq_entropy{component=\"lc\"} %g\n", sanitize(d.lastELC))
	fmt.Fprintf(w, "ahq_entropy{component=\"be\"} %g\n", sanitize(d.lastEBE))
	fmt.Fprintf(w, "ahq_entropy{component=\"system\"} %g\n", sanitize(d.lastES))
	fmt.Fprintf(w, "# HELP ahq_epoch Monitoring epochs completed.\n")
	fmt.Fprintf(w, "# TYPE ahq_epoch counter\n")
	fmt.Fprintf(w, "ahq_epoch %d\n", d.epoch)
	fmt.Fprintf(w, "# HELP ahq_p95_ms Per-application p95 latency last epoch.\n")
	fmt.Fprintf(w, "# TYPE ahq_p95_ms gauge\n")
	for _, a := range d.lastTel.Apps {
		if a.Spec.Class == workload.LC {
			fmt.Fprintf(w, "ahq_p95_ms{app=%q} %g\n", a.Spec.Name, sanitize(a.P95Ms))
		}
	}
	fmt.Fprintf(w, "# HELP ahq_ipc Per-application IPC last epoch.\n")
	fmt.Fprintf(w, "# TYPE ahq_ipc gauge\n")
	for _, a := range d.lastTel.Apps {
		if a.Spec.Class == workload.BE {
			fmt.Fprintf(w, "ahq_ipc{app=%q} %g\n", a.Spec.Name, sanitize(a.IPC))
		}
	}
}

func (d *daemon) handleHistory(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	out := append([]epochSummary(nil), d.history...)
	d.mu.Unlock()
	writeJSON(w, out)
}

func (d *daemon) handleLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	app := r.URL.Query().Get("app")
	frac, err := strconv.ParseFloat(r.URL.Query().Get("frac"), 64)
	if err != nil || frac < 0 || frac > 1 {
		http.Error(w, "frac must be in [0,1]", http.StatusBadRequest)
		return
	}
	ld, ok := d.loads[app]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown LC app %q", app), http.StatusNotFound)
		return
	}
	ld.Set(frac)
	writeJSON(w, map[string]interface{}{"app": app, "frac": frac})
}

// boolToInt renders a flag as the 0/1 counter the fleet endpoints use.
func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// sanitize maps NaN to -1 for JSON encoding.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	return v
}

var _ trace.Load = (*mutableLoad)(nil)
